// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark runs the corresponding experiment and
// reports the paper-comparable quantities as custom metrics:
//
//	BenchmarkTable1  — study summary (race-report counts per program)
//	BenchmarkTable2  — detection results (attacks found / OWL reports)
//	BenchmarkTable3  — report reduction (the 94.3% headline, full noise)
//	BenchmarkTable4  — known-attack exploit repetitions
//	BenchmarkFig1/2/6/7/8 — the per-figure end-to-end case studies
//	BenchmarkAblation* — design-choice ablations from DESIGN.md §5
//
// Run with: go test -bench=. -benchmem .
package conanalysis

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/audit"
	"github.com/conanalysis/owl/internal/eval"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/workloads"
)

// buildTablesOnce caches the expensive full-noise evaluation so Table
// benchmarks share one run.
var (
	tablesOnce sync.Once
	tablesFull *eval.Tables
	tablesErr  error
)

func fullTables(b *testing.B) *eval.Tables {
	b.Helper()
	tablesOnce.Do(func() {
		tablesFull, tablesErr = eval.BuildTables(eval.Config{Noise: workloads.NoiseFull})
	})
	if tablesErr != nil {
		b.Fatal(tablesErr)
	}
	return tablesFull
}

func BenchmarkTable1(b *testing.B) {
	var raw int
	for i := 0; i < b.N; i++ {
		t := fullTables(b)
		raw = 0
		for _, pe := range t.Programs {
			raw += pe.RawReports
		}
	}
	b.ReportMetric(float64(raw), "raw-reports")
}

func BenchmarkTable2(b *testing.B) {
	var found, modelled int
	for i := 0; i < b.N; i++ {
		t := fullTables(b)
		found, modelled = t.AttacksFoundTotal()
	}
	b.ReportMetric(float64(found), "attacks-found")
	b.ReportMetric(float64(modelled), "attacks-modelled")
	if found != modelled {
		b.Errorf("found %d of %d attacks (paper: 10/10)", found, modelled)
	}
}

func BenchmarkTable3(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := fullTables(b)
		ratio = t.ReductionRatio()
	}
	b.ReportMetric(100*ratio, "reduction-%")
	if ratio < 0.80 {
		b.Errorf("reduction ratio %.1f%%, paper reports 94.3%%", 100*ratio)
	}
}

func BenchmarkTable4(b *testing.B) {
	var within20, total int
	for i := 0; i < b.N; i++ {
		t := fullTables(b)
		within20, total = 0, 0
		for _, exs := range t.Exploits {
			for _, ex := range exs {
				total++
				if ex.Succeeded && ex.Runs <= 20 {
					within20++
				}
			}
		}
	}
	b.ReportMetric(float64(within20), "within-20-reps")
	b.ReportMetric(float64(total), "attacks")
}

func benchFigure(b *testing.B, id string) {
	var f *eval.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.Figure(id, eval.Config{Noise: workloads.NoiseLight})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !eval.FigureOK(f) {
		b.Errorf("figure reproduction failed: %s", f)
	}
	b.ReportMetric(float64(f.Reps), "exploit-reps")
}

// BenchmarkFig1 reproduces Figure 1: the Libsafe dying-flag race letting a
// strcpy bypass the overflow check (code injection).
func BenchmarkFig1(b *testing.B) { benchFigure(b, "fig1") }

// BenchmarkFig2 reproduces Figure 2: the Linux uselib/msync f_op race and
// its NULL function-pointer dereference, under the SKI-style explorer.
func BenchmarkFig2(b *testing.B) { benchFigure(b, "fig2") }

// BenchmarkFig6 reproduces Figure 6: the SSDB binlog use-after-free
// (CVE-2016-1000324).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7 reproduces Figure 7: the Apache #25520 buffered-log
// overflow and HTML integrity violation.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 reproduces Figure 8: the Apache #46215 busy-counter
// underflow DoS.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// runPipeline runs the application pipeline over one workload recipe with
// the given options; used by the ablations.
func runPipeline(b *testing.B, name, recipe string, opts owl.Options) *owl.Result {
	b.Helper()
	w := workloads.Get(name, workloads.NoiseLight)
	rec := w.Recipe(recipe)
	res, err := owl.Run(owl.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// strcpyFound reports whether the Libsafe strcpy site is among findings.
func strcpyFound(res *owl.Result) bool {
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if f.Site.IsCall() && f.Site.Callee().Name == "strcpy" {
				return true
			}
		}
	}
	return false
}

// BenchmarkAblationControlDep shows that disabling control-flow tracking
// (the Livshits-style analysis of §9) loses the Libsafe attack while
// full Algorithm 1 keeps it.
func BenchmarkAblationControlDep(b *testing.B) {
	var with, without bool
	for i := 0; i < b.N; i++ {
		with = strcpyFound(runPipeline(b, "libsafe", "attack", owl.Options{}))
		without = strcpyFound(runPipeline(b, "libsafe", "attack", owl.Options{DisableCtrlFlow: true}))
	}
	if !with || without {
		b.Errorf("ctrl-dep ablation wrong: with=%v without=%v (want true/false)", with, without)
	}
}

// BenchmarkAblationInterProcedural shows that an intra-procedural analysis
// (the Conseq/Yamaguchi limitation of §9) loses the cross-function Libsafe
// site.
func BenchmarkAblationInterProcedural(b *testing.B) {
	var with, without bool
	for i := 0; i < b.N; i++ {
		with = strcpyFound(runPipeline(b, "libsafe", "attack", owl.Options{}))
		without = strcpyFound(runPipeline(b, "libsafe", "attack", owl.Options{DisableInterProc: true}))
	}
	if !with || without {
		b.Errorf("inter-proc ablation wrong: with=%v without=%v (want true/false)", with, without)
	}
}

// BenchmarkAblationAdhoc measures the §5.1 schedule-reduction stage:
// disabling it leaves the ad-hoc sync reports in the output.
func BenchmarkAblationAdhoc(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		with = len(runPipeline(b, "mysql", "flush-attack", owl.Options{}).Annotated)
		without = len(runPipeline(b, "mysql", "flush-attack", owl.Options{DisableAdhoc: true}).Annotated)
	}
	b.ReportMetric(float64(with), "reports-with-adhoc")
	b.ReportMetric(float64(without), "reports-without")
	if with >= without {
		b.Errorf("adhoc annotation did not reduce reports: %d vs %d", with, without)
	}
}

// BenchmarkAblationRaceVerify measures the §5.2 verification stage:
// disabling it keeps the ordered-in-practice false positives.
func BenchmarkAblationRaceVerify(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		with = runPipeline(b, "memcached", "benign", owl.Options{}).Stats.Remaining
		without = runPipeline(b, "memcached", "benign", owl.Options{DisableRaceVerify: true}).Stats.Remaining
	}
	b.ReportMetric(float64(with), "remaining-with-verify")
	b.ReportMetric(float64(without), "remaining-without")
	if with >= without {
		b.Errorf("race verification did not reduce reports: %d vs %d", with, without)
	}
}

// BenchmarkPipelineLibsafe times the end-to-end pipeline on the smallest
// workload (throughput reference).
func BenchmarkPipelineLibsafe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runPipeline(b, "libsafe", "attack", owl.Options{})
	}
}

// BenchmarkParallelPipeline is the DESIGN.md §5 parallel-speedup ablation:
// the full workload registry built sequentially (BuildTables) versus
// fanned out over 1, 4, and NumCPU workers (BuildTablesParallel, which
// also overlaps the §3 study with the pool). The workers=4 run is the
// acceptance gate — it must be at least ~2x faster than sequential on a
// 4-core machine. Run with -benchtime=1x: one build per variant is the
// comparison the ablation wants.
func BenchmarkParallelPipeline(b *testing.B) {
	cfg := eval.Config{Noise: workloads.NoiseFull}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.BuildTables(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BuildTablesParallel(cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// explorationWorkloads lists the application workloads the exploration
// ablation compares on (kernel workloads run under the SKI-style
// detector, which has its own exploration loop).
func explorationWorkloads() []*workloads.Workload {
	var out []*workloads.Workload
	for _, name := range workloads.Names() {
		w := workloads.Get(name, workloads.NoiseLight)
		if w.Kernel || len(w.Attacks) == 0 {
			continue
		}
		out = append(out, w)
	}
	return out
}

// BenchmarkExploration is the detect-stage exploration ablation behind
// `make bench-explore`: the fixed-seed loop versus the coverage-guided
// portfolio engine at the same run budget, pure detection only (the later
// stages are disabled so the comparison isolates schedule exploration).
// Each variant reports the total deduplicated races found across the
// application workloads and the runs actually spent — coverage mode may
// spend fewer when the search saturates. The acceptance gate: coverage
// must find at least as many races as fixed on every workload, and
// strictly more on at least one (or have stopped early with the same
// findings). Run with -benchtime=1x.
func BenchmarkExploration(b *testing.B) {
	const budget = 24
	detectOnly := owl.Options{
		DetectRuns: budget, Budget: budget,
		DisableAdhoc: true, DisableRaceVerify: true, DisableVulnVerify: true,
	}
	races := map[owl.ExploreMode]map[string]int{}
	runsSpent := map[owl.ExploreMode]int{}
	earlyStops := 0
	for _, mode := range []owl.ExploreMode{owl.ExploreFixed, owl.ExploreCoverage} {
		b.Run(string(mode), func(b *testing.B) {
			var perWL map[string]int
			var runs, early int
			for i := 0; i < b.N; i++ {
				perWL, runs, early = map[string]int{}, 0, 0
				for _, w := range explorationWorkloads() {
					rec := w.Recipe(w.Attacks[0].InputRecipe)
					mc := metrics.New()
					opts := detectOnly
					opts.Explore = mode
					opts.Metrics = mc
					res, err := owl.Run(owl.Program{
						Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
					}, opts)
					if err != nil {
						b.Fatal(err)
					}
					perWL[w.Name] = len(res.Raw)
					for _, c := range mc.Snapshot().Counters {
						if c.Name == "owl.detect_runs" {
							runs += int(c.Value)
						}
					}
					for _, g := range mc.Snapshot().Gauges {
						if g.Name == "sched.early_stop" && g.Value == 1 {
							early++
						}
					}
				}
			}
			total := 0
			for _, n := range perWL {
				total += n
			}
			b.ReportMetric(float64(total), "races")
			b.ReportMetric(float64(runs), "runs")
			races[mode] = perWL
			runsSpent[mode] = runs
			earlyStops = early
		})
	}
	fixed, cov := races[owl.ExploreFixed], races[owl.ExploreCoverage]
	if fixed == nil || cov == nil {
		return // sub-benchmark filtered out; nothing to compare
	}
	strictlyMore := 0
	for name, nf := range fixed {
		nc := cov[name]
		if nc < nf {
			b.Errorf("%s: coverage found %d races, fixed found %d at equal budget", name, nc, nf)
		}
		if nc > nf {
			strictlyMore++
		}
	}
	if strictlyMore == 0 && !(earlyStops > 0 && runsSpent[owl.ExploreCoverage] < runsSpent[owl.ExploreFixed]) {
		b.Errorf("coverage mode showed no win: races %v vs %v, runs %d vs %d",
			cov, fixed, runsSpent[owl.ExploreCoverage], runsSpent[owl.ExploreFixed])
	}
}

// BenchmarkEngineAblation is the interpreter-engine ablation behind
// `make bench-interp`: the tree-walking oracle versus the compiled
// bytecode engine on the bench-explore corpus at an identical fixed-seed
// budget, pure detection only so the comparison isolates instruction
// dispatch. The engines are required to be observably identical
// (docs/BYTECODE.md), so the gate asserts both variants find exactly the
// same deduplicated races per workload; the wall-clock ratio is the
// claim. Run with -benchtime=1x; the microbenchmark companion is
// BenchmarkBaselineNoDetector{,Bytecode} in internal/race.
func BenchmarkEngineAblation(b *testing.B) {
	const budget = 24
	detectOnly := owl.Options{
		DetectRuns:   budget,
		DisableAdhoc: true, DisableRaceVerify: true, DisableVulnVerify: true,
	}
	races := map[interp.Engine]map[string]int{}
	for _, engine := range []interp.Engine{interp.EngineTree, interp.EngineBytecode} {
		b.Run(string(engine), func(b *testing.B) {
			var perWL map[string]int
			for i := 0; i < b.N; i++ {
				perWL = map[string]int{}
				for _, w := range explorationWorkloads() {
					rec := w.Recipe(w.Attacks[0].InputRecipe)
					opts := detectOnly
					opts.Engine = engine
					res, err := owl.Run(owl.Program{
						Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
					}, opts)
					if err != nil {
						b.Fatal(err)
					}
					perWL[w.Name] = len(res.Raw)
				}
			}
			total := 0
			for _, n := range perWL {
				total += n
			}
			b.ReportMetric(float64(total), "races")
			races[engine] = perWL
		})
	}
	tree, bc := races[interp.EngineTree], races[interp.EngineBytecode]
	if tree == nil || bc == nil {
		return // sub-benchmark filtered out; nothing to compare
	}
	for name, nt := range tree {
		if nb := bc[name]; nb != nt {
			b.Errorf("%s: bytecode found %d races, tree found %d — engines must be observably identical", name, nb, nt)
		}
	}
}

// BenchmarkPrediction is the predictive-detection ablation behind
// `make bench-predict`: plain coverage-guided exploration versus
// predict-then-confirm at the same run budget on the same application
// corpus as BenchmarkExploration, pure detection only. Prediction spends
// roughly half the budget on seed schedules, reads candidate race pairs
// out of their traces, and spends executions only on steered replays
// confirming them — so it must find at least as many races per workload
// while executing measurably fewer schedules in total. Both quantities
// are asserted here and land in BENCH_predict.json for the perf record.
// Run with -benchtime=1x.
func BenchmarkPrediction(b *testing.B) {
	const budget = 24
	detectOnly := owl.Options{
		DetectRuns: budget, Budget: budget,
		DisableAdhoc: true, DisableRaceVerify: true, DisableVulnVerify: true,
	}
	type arm struct {
		name    string
		predict bool
	}
	races := map[string]map[string]int{}
	runsSpent := map[string]int{}
	saved := map[string]int{}
	for _, a := range []arm{{"coverage", false}, {"predict", true}} {
		b.Run(a.name, func(b *testing.B) {
			var perWL map[string]int
			var runs, sv int
			for i := 0; i < b.N; i++ {
				perWL, runs, sv = map[string]int{}, 0, 0
				for _, w := range explorationWorkloads() {
					rec := w.Recipe(w.Attacks[0].InputRecipe)
					mc := metrics.New()
					opts := detectOnly
					opts.Metrics = mc
					if a.predict {
						opts.Predict, opts.PredictReversal = true, true
					} else {
						opts.Explore = owl.ExploreCoverage
					}
					res, err := owl.Run(owl.Program{
						Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
					}, opts)
					if err != nil {
						b.Fatal(err)
					}
					perWL[w.Name] = len(res.Raw)
					for _, c := range mc.Snapshot().Counters {
						switch c.Name {
						case "owl.detect_runs":
							runs += int(c.Value)
						case "predict.schedules_saved":
							sv += int(c.Value)
						}
					}
				}
			}
			total := 0
			for _, n := range perWL {
				total += n
			}
			b.ReportMetric(float64(total), "races")
			b.ReportMetric(float64(runs), "runs")
			races[a.name] = perWL
			runsSpent[a.name] = runs
			saved[a.name] = sv
		})
	}
	plain, pred := races["coverage"], races["predict"]
	if plain == nil || pred == nil {
		return // sub-benchmark filtered out; nothing to compare
	}
	for name, np := range plain {
		if pred[name] < np {
			b.Errorf("%s: predict-then-confirm found %d races, plain coverage found %d at equal budget",
				name, pred[name], np)
		}
	}
	if runsSpent["predict"] >= runsSpent["coverage"] {
		b.Errorf("prediction spent %d schedules, plain coverage spent %d — no execution saving",
			runsSpent["predict"], runsSpent["coverage"])
	}
	if saved["predict"] <= 0 {
		b.Errorf("predict.schedules_saved = %d, want > 0", saved["predict"])
	}
}

// BenchmarkAuditScope measures the paper's §7.2 application: restricting
// runtime auditing to OWL-identified vulnerable paths. Reports the
// fraction of events the scope filters out versus a full monitor.
func BenchmarkAuditScope(b *testing.B) {
	w := workloads.Get("libsafe", workloads.NoiseLight)
	rec := w.Recipe("attack")
	res, err := owl.Run(owl.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, owl.Options{DisableVulnVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	var findings []*vuln.Finding
	for _, fs := range res.FindingsByReport {
		findings = append(findings, fs...)
	}
	scope := audit.NewScope(findings)
	var reduction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := audit.NewMonitor(scope)
		mon.KeepRecords = false
		m, err := interp.New(interp.Config{
			Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
			Sched: sched.NewRandom(uint64(i + 1)), Observers: []interp.Observer{mon},
		})
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
		reduction = mon.Reduction()
	}
	b.ReportMetric(100*reduction, "audit-reduction-%")
}

// The snapshot-ablation portfolio. Prefix-sharing pays off when the
// explored schedules share an expensive deterministic prefix: the
// archetype is a server that builds its tables single-threaded and only
// then opens the concurrency window exploration actually branches in.
// The two fixtures below model that shape (a flat init loop and a
// nested compute loop feeding a short racy section); the two smallest
// real workloads ride along as a no-regression check — their racy
// kernels start almost immediately, so they are the cache's worst case
// and keep the measured speedup honest.
const snapBenchInitTable = `
global @table [512]
global @sum = 0
global @mu = 0

func @worker(%base) {
entry:
  call @io_delay(2)
  %p = addr @table
  %q = gep %p, %base
  %v = load %q
  %v2 = add %v, 1
  store %v2, %q
  call @mutex_lock(@mu)
  %s = load @sum
  %s2 = add %s, %v2
  store %s2, @sum
  call @mutex_unlock(@mu)
  ret %v2
}

func @main() {
entry:
  %p = addr @table
  jmp loop
loop:
  %i = phi [entry: 0], [loop: %next]
  %q = gep %p, %i
  %v = mul %i, 3
  store %v, %q
  %next = add %i, 1
  %c = icmp lt %next, 512
  br %c, loop, done
done:
  %t1 = call @spawn(@worker, 7)
  %t2 = call @spawn(@worker, 9)
  %m = load @sum
  call @yield()
  %j1 = call @join(%t1)
  %j2 = call @join(%t2)
  %s = load @sum
  call @print(%s)
  call @print(%m)
  ret 0
}
`

const snapBenchWarmCache = `
global @acc = 0
global @flag = 0
global @mu = 0
global @cells [64]

func @worker(%k) {
entry:
  call @io_delay(%k)
  %f = load @flag
  store %k, @flag
  call @mutex_lock(@mu)
  %a = load @acc
  %a2 = add %a, %f
  store %a2, @acc
  call @mutex_unlock(@mu)
  ret %f
}

func @main() {
entry:
  %p = addr @cells
  jmp outer
outer:
  %i = phi [entry: 0], [inner_done: %inext]
  jmp inner
inner:
  %j = phi [outer: 0], [inner: %jnext]
  %x = mul %i, %j
  %q = gep %p, %j
  %old = load %q
  %nv = add %old, %x
  store %nv, %q
  %jnext = add %j, 1
  %jc = icmp lt %jnext, 64
  br %jc, inner, inner_done
inner_done:
  %inext = add %i, 1
  %ic = icmp lt %inext, 32
  br %ic, outer, done
done:
  %t1 = call @spawn(@worker, 1)
  %t2 = call @spawn(@worker, 2)
  %t3 = call @spawn(@worker, 3)
  %j1 = call @join(%t1)
  %j2 = call @join(%t2)
  %j3 = call @join(%t3)
  %s = load @acc
  call @print(%s)
  ret 0
}
`

// snapBenchCase is one member of the ablation portfolio: a base config
// (module, entry, inputs, step bound) the run-specific parts are layered
// onto.
type snapBenchCase struct {
	name string
	base interp.Config
}

func snapBenchPortfolio(b *testing.B) []snapBenchCase {
	b.Helper()
	cases := []snapBenchCase{}
	for _, f := range []struct{ name, src string }{
		{"init-table", snapBenchInitTable},
		{"warm-cache", snapBenchWarmCache},
	} {
		mod, err := ir.Parse(f.name+".oir", f.src)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, snapBenchCase{name: f.name, base: interp.Config{Module: mod, MaxSteps: 50000}})
	}
	for _, name := range []string{"libsafe", "ssdb"} {
		w := workloads.Get(name, workloads.NoiseLight)
		rec := w.Recipe(w.Attacks[0].InputRecipe)
		cases = append(cases, snapBenchCase{name: name, base: interp.Config{
			Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
		}})
	}
	return cases
}

// ipbPortfolio runs the systematic IPB exploration over one portfolio
// member — race detector and coverage recorder attached, exactly the
// observer set the coverage-guided detect stage uses — and returns how
// many schedules ran plus an order-sensitive digest of what they
// produced. With snap == nil every schedule replays from step 0; with a
// cache, schedules resume from the deepest snapshotted ancestor prefix.
func ipbPortfolio(c snapBenchCase, budget int, snap *sched.SnapCache) (int, string, error) {
	gc := sched.NewCoverage()
	var digest strings.Builder
	var d *race.Detector
	var cov *sched.RunCoverage
	ex := &sched.Explorer{MaxRuns: budget, Snap: snap}
	res, err := ex.ExploreIPBRun(
		func() interp.Config {
			d, cov = race.NewDetector(), gc.NewRun()
			cfg := c.base
			cfg.Observers = []interp.Observer{d}
			cfg.SwitchObservers = []interp.SwitchObserver{cov}
			return cfg
		},
		func(m *interp.Machine, ds *sched.DecisionSched) error {
			r := m.Result()
			ids := make([]string, 0, len(d.Reports()))
			for _, rep := range d.Reports() {
				ids = append(ids, fmt.Sprintf("%s x%d", rep.ID(), rep.Count))
			}
			sort.Strings(ids)
			fmt.Fprintf(&digest, "exit=%d steps=%d faults=%d out=%q races=%v new=%d\n",
				r.ExitCode, r.Steps, len(r.Faults), strings.Join(r.Output, "|"), ids, gc.Merge(cov))
			return nil
		},
	)
	if err != nil {
		return 0, "", err
	}
	fmt.Fprintf(&digest, "pairs=%d\n", gc.Pairs())
	return res.Runs, digest.String(), nil
}

// BenchmarkExplorationSnapshots is the prefix-sharing ablation behind
// `make bench-explore`: the IPB portfolio at an equal schedule budget,
// replay-from-root versus copy-on-write snapshot resume. It asserts the
// two variants explore the same schedule count with identical outcomes
// (the determinism contract), then gates on the speedup: snapshotting
// must cut the portfolio's wall clock by >= 1.5x. Run with -benchtime=1x.
func BenchmarkExplorationSnapshots(b *testing.B) {
	const budget = 24
	portfolio := snapBenchPortfolio(b)
	var replay, snapshot time.Duration
	for i := 0; i < b.N; i++ {
		replay, snapshot = 0, 0
		for _, c := range portfolio {
			start := time.Now()
			runs0, digest0, err := ipbPortfolio(c, budget, nil)
			if err != nil {
				b.Fatal(err)
			}
			replay += time.Since(start)

			start = time.Now()
			runs1, digest1, err := ipbPortfolio(c, budget, sched.NewSnapCache(1024))
			if err != nil {
				b.Fatal(err)
			}
			snapshot += time.Since(start)

			if runs0 != runs1 {
				b.Fatalf("%s: snapshotting changed the schedule count: %d vs %d", c.name, runs0, runs1)
			}
			if digest0 != digest1 {
				b.Fatalf("%s: snapshotting changed exploration outcomes:\n--- replay\n%s--- snapshot\n%s",
					c.name, digest0, digest1)
			}
		}
	}
	speedup := float64(replay) / float64(snapshot)
	b.ReportMetric(float64(replay.Microseconds()), "replay-us")
	b.ReportMetric(float64(snapshot.Microseconds()), "snapshot-us")
	b.ReportMetric(speedup, "speedup")
	if speedup < 1.5 {
		b.Errorf("snapshot resume speedup = %.2fx, want >= 1.5x (replay %v, snapshot %v)",
			speedup, replay, snapshot)
	}
}
