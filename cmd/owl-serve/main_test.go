package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/serve"
)

// TestFsckFlagValidation pins the offline mode's argument contract.
func TestFsckFlagValidation(t *testing.T) {
	if err := run([]string{"-fsck"}); err == nil || !strings.Contains(err.Error(), "-state-dir") {
		t.Errorf("-fsck without -state-dir: err = %v, want state-dir complaint", err)
	}
	// An empty directory is a valid (trivially healthy) state dir.
	if err := run([]string{"-fsck", "-state-dir", t.TempDir()}); err != nil {
		t.Errorf("-fsck on empty dir: %v", err)
	}
}

// TestKillRestartSmoke exercises the real binary end to end: submit a
// job over HTTP, SIGKILL the process (a genuine crash, not a drain),
// fsck the state directory, restart, and verify the resubmission
// resumes from the recovered state. This is the process-level
// counterpart of the in-package recovery tests.
func TestKillRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "owl-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stateDir := t.TempDir()

	// Round 1: serve, submit, wait for done, then SIGKILL.
	addr, proc := startServe(t, bin, stateDir)
	first := submitAndWait(t, addr)
	if first.Resume {
		t.Fatal("first submission claims to resume")
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	// The crash left a valid store: fsck must pass without quarantining.
	fsck := exec.Command(bin, "-fsck", "-state-dir", stateDir)
	if out, err := fsck.CombinedOutput(); err != nil {
		t.Fatalf("fsck after kill: %v\n%s", err, out)
	}

	// Round 2: restart against the same directory; the resubmission
	// must resume the recovered exploration.
	addr2, proc2 := startServe(t, bin, stateDir)
	second := submitAndWait(t, addr2)
	if !second.Resume {
		t.Error("resubmission after restart did not resume")
	}
	if second.Result.Submissions != 2 {
		t.Errorf("recovered submission count = %d, want 2", second.Result.Submissions)
	}
	if second.Result.ExecutedSchedules >= first.Result.ExecutedSchedules {
		t.Errorf("resumed run executed %d schedules, want fewer than first run's %d",
			second.Result.ExecutedSchedules, first.Result.ExecutedSchedules)
	}

	// SIGTERM drains cleanly.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		proc2.Process.Kill()
		t.Fatal("SIGTERM drain never exited")
	}
}

// startServe launches the binary on a fresh port and waits for /healthz.
func startServe(t *testing.T, bin, stateDir string) (string, *exec.Cmd) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-shards", "1", "-state-dir", stateDir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return addr, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server on %s never became healthy (last: %v)", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitAndWait posts a fixed inline racy program and polls to done.
func submitAndWait(t *testing.T, addr string) serve.JobStatus {
	t.Helper()
	spec := map[string]any{
		"program": `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`,
		"options": map[string]any{"explore": "coverage", "budget": 24, "seed": 3},
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != serve.StateDone {
		if st.State == serve.StateFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", addr, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.Result == nil {
		t.Fatal("done without result")
	}
	return st
}
