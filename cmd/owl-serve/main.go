// Command owl-serve runs the always-on OWL analysis service: an
// HTTP/JSON API over the owl.Run pipeline with a bounded sharded job
// queue, per-tenant quotas, SSE progress streams, and a content-hash
// keyed store that accumulates exploration state so repeat submissions
// of a program resume its schedule search instead of restarting it.
//
// Usage:
//
//	owl-serve [-addr :8080] [-shards 4] [-queue 64] [-workers 1]
//	          [-snap-entries 64] [-tenant-quota 16] [-drain-timeout 30s]
//	          [-state-dir DIR] [-checkpoint-every 8] [-max-programs 0]
//	          [-peers http://replica-2:8080,...] [-peer-timeout 2s]
//	owl-serve -fsck -state-dir DIR
//
// With -peers the replica joins a fleet: a cold submission first asks
// the listed peers for the program's accumulated state (so only one
// replica ever pays a program's cold-start), and after each checkpoint
// fold the replica pushes its newest state back out (anti-entropy). A
// peer being down, slow, or corrupt never fails a submission — it only
// costs warmth. See docs/SERVE.md.
//
// With -state-dir the store is crash-safe: every completed job is
// WAL-appended under the directory before its status publishes, boot
// replays checkpoint+WAL (quarantining anything damaged), and a repeat
// submission after a restart resumes exactly where the dead process
// left off. -fsck validates and repairs a state directory offline and
// exits (nonzero when programs had to be quarantined).
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops
// accepting, queued and running jobs finish, state is checkpointed,
// then the process exits. See docs/SERVE.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/conanalysis/owl/internal/cliflags"
	"github.com/conanalysis/owl/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("owl-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 4, "shard queues (jobs for one program serialize on one shard)")
	queue := fs.Int("queue", 64, "per-shard queue depth (full queue → 429 + Retry-After)")
	workers := fs.Int("workers", 1, "default per-job pipeline worker-pool size")
	snapEntries := fs.Int("snap-entries", 64, "persistent snapshot-cache entries per stored program (0 = off)")
	tenantQuota := fs.Int("tenant-quota", 16, "max queued+running jobs per tenant")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight jobs on shutdown")
	stateDir := fs.String("state-dir", "", "state directory for crash-safe persistence (empty = in-memory only)")
	checkpointEvery := fs.Int("checkpoint-every", 8, "fold a program's WAL into a checkpoint after this many records")
	maxPrograms := fs.Int("max-programs", 0, "max in-memory program states; LRU-evict beyond this (0 = unlimited)")
	peers := fs.String("peers", "", "comma-separated base URLs of the other fleet replicas (fleet warm-start; empty = off)")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "per-request timeout against a fleet peer")
	fsck := fs.Bool("fsck", false, "validate and repair -state-dir, print a report, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	peerURLs, err := cliflags.ParsePeers(*peers)
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}

	if *fsck {
		if *stateDir == "" {
			return fmt.Errorf("-fsck requires -state-dir")
		}
		rep, err := serve.Fsck(*stateDir)
		if err != nil {
			return err
		}
		rep.Write(os.Stdout)
		if rep.Quarantined > 0 {
			return fmt.Errorf("%d program(s) quarantined", rep.Quarantined)
		}
		return nil
	}

	srv, err := serve.New(serve.Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		Workers:         *workers,
		SnapEntries:     *snapEntries,
		TenantQuota:     *tenantQuota,
		RetryAfter:      *retryAfter,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
		MaxPrograms:     *maxPrograms,
		Peers:           peerURLs,
		PeerTimeout:     *peerTimeout,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "owl-serve: %s: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener first so no new submissions land, then let the
	// shard queues run dry.
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "owl-serve: drained")
	return nil
}
