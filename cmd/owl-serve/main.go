// Command owl-serve runs the always-on OWL analysis service: an
// HTTP/JSON API over the owl.Run pipeline with a bounded sharded job
// queue, per-tenant quotas, SSE progress streams, and a content-hash
// keyed store that accumulates exploration state so repeat submissions
// of a program resume its schedule search instead of restarting it.
//
// Usage:
//
//	owl-serve [-addr :8080] [-shards 4] [-queue 64] [-workers 1]
//	          [-snap-entries 64] [-tenant-quota 16] [-drain-timeout 30s]
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops
// accepting, queued and running jobs finish, then the process exits.
// See docs/SERVE.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/conanalysis/owl/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("owl-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 4, "shard queues (jobs for one program serialize on one shard)")
	queue := fs.Int("queue", 64, "per-shard queue depth (full queue → 429 + Retry-After)")
	workers := fs.Int("workers", 1, "default per-job pipeline worker-pool size")
	snapEntries := fs.Int("snap-entries", 64, "persistent snapshot-cache entries per stored program (0 = off)")
	tenantQuota := fs.Int("tenant-quota", 16, "max queued+running jobs per tenant")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		Workers:     *workers,
		SnapEntries: *snapEntries,
		TenantQuota: *tenantQuota,
		RetryAfter:  *retryAfter,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "owl-serve: %s: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener first so no new submissions land, then let the
	// shard queues run dry.
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "owl-serve: drained")
	return nil
}
