package main

import (
	"testing"

	"github.com/conanalysis/owl/internal/cliflags"
)

// TestSharedFlagParity pins this binary to the canonical shared flag set:
// every flag in cliflags.Names() must exist here. This binary is the one
// that drifted (no -seed, -fail-fast, or -max-steps before the shared
// helper existed), so the gate lives on both binaries.
func TestSharedFlagParity(t *testing.T) {
	fs, _, _ := flags()
	for _, name := range cliflags.Names() {
		if fs.Lookup(name) == nil {
			t.Errorf("cmd/owl-tables is missing shared flag -%s", name)
		}
	}
}

// TestOwnDefaults pins the per-binary defaults the golden fixture depends
// on: full noise, NumCPU fan-out, and fail-fast evaluation (a degraded
// stage would silently skew a table row).
func TestOwnDefaults(t *testing.T) {
	fs, shared, own := flags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if shared.Noise != "full" {
		t.Errorf("noise default = %q, want full", shared.Noise)
	}
	if shared.Workers != 0 {
		t.Errorf("workers default = %d, want 0 (NumCPU)", shared.Workers)
	}
	if !shared.FailFast {
		t.Error("fail-fast must default on for owl-tables (golden tables cannot degrade)")
	}
	if shared.Predict || shared.PredictReversal {
		t.Error("prediction must default off (golden output is prediction-free)")
	}
	if *own.table != "all" || *own.stable {
		t.Errorf("table/stable defaults wrong: %q %v", *own.table, *own.stable)
	}
	if shared.Engine != "tree" {
		t.Errorf("engine default = %q, want tree (the golden fixture pins the oracle engine)", shared.Engine)
	}
}
