// Command owl-tables regenerates the paper's evaluation tables (1-4) from
// the workload models, printing each next to the corresponding paper
// numbers where the comparison is meaningful (the models are ~1/10-scale
// syntheses, so the shape — ratios and orderings — is the claim, not the
// absolute counts).
//
// Usage:
//
//	owl-tables [-table all|1|2|3|4] [-noise full|light] [-workers N] [-metrics out.json]
//	owl-tables [-explore fixed|coverage] [-budget N] [-stable]
//
// -stable elides the non-deterministic timing fields so the output can be
// diffed byte-for-byte against the committed golden fixture (make golden).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/conanalysis/owl/internal/eval"
	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl-tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("owl-tables", flag.ContinueOnError)
	var (
		table      = fs.String("table", "all", "which table to print: all, 1, 2, 3, 4")
		noise      = fs.String("noise", "full", "workload noise level: light or full")
		workers    = fs.Int("workers", 0, "parallel workload evaluations (0 = NumCPU)")
		metricsOut = fs.String("metrics", "", `write per-stage metrics JSON to this file ("-" = stdout)`)
		explore    = fs.String("explore", "fixed", "detect-stage schedule exploration: fixed or coverage")
		budget     = fs.Int("budget", 0, "run budget for -explore=coverage (0 = detect runs)")
		snapCache  = fs.Int("snap-cache", 0, "snapshot-cache entries per coverage stage for prefix-sharing exploration (0 = off)")
		stable     = fs.Bool("stable", false, "deterministic output: elide timing fields (golden-fixture mode)")
		stageTO    = fs.Duration("stage-timeout", 0, "per-stage deadline inside each workload's pipeline (0 = none)")
		retries    = fs.Int("retries", 0, "extra attempts a faulted pipeline run gets before quarantine")
		faultsPath = fs.String("faults", "", "deterministic fault-injection plan JSON (see docs/ROBUSTNESS.md)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl := workloads.NoiseFull
	if *noise == "light" {
		lvl = workloads.NoiseLight
	}
	mode := owl.ExploreMode(*explore)
	if mode != owl.ExploreFixed && mode != owl.ExploreCoverage {
		return fmt.Errorf("unknown -explore mode %q (want fixed or coverage)", *explore)
	}
	var mc *metrics.Collector
	if *metricsOut != "" {
		mc = metrics.New()
	}

	var plan *faultinject.Plan
	if *faultsPath != "" {
		var err error
		plan, err = faultinject.Load(*faultsPath)
		if err != nil {
			return err
		}
	}

	fmt.Printf("building tables (noise=%s)...\n\n", *noise)
	t, err := eval.BuildTablesParallel(eval.Config{
		Noise: lvl, Metrics: mc, Explore: mode, Budget: *budget, SnapCache: *snapCache,
		StageTimeout: *stageTO, Retries: *retries, Faults: plan,
	}, *workers)
	if err != nil {
		return err
	}
	t.Stable = *stable
	if err := emitMetrics(mc, *metricsOut); err != nil {
		return err
	}

	show := func(n string) bool { return *table == "all" || *table == n }
	if show("1") {
		fmt.Println("Table 1: Concurrency attacks study results")
		fmt.Print(report.Table(t.Table1()))
		fmt.Println()
	}
	if show("2") {
		fmt.Println("Table 2: OWL concurrency attack detection results")
		fmt.Print(report.Table(t.Table2()))
		found, modelled := t.AttacksFoundTotal()
		fmt.Printf("OWL detected %d of %d modelled attacks (paper: 10 of 10 evaluated)\n\n",
			found, modelled)
	}
	if show("3") {
		fmt.Println("Table 3: OWL's reduction on race detector reports")
		fmt.Print(report.Table(t.Table3()))
		fmt.Printf("overall reduction: %.1f%% (paper: 94.3%%)\n\n", 100*t.ReductionRatio())
	}
	if show("4") {
		fmt.Println("Table 4: OWL's detection results on known concurrency attacks")
		fmt.Print(report.Table(t.Table4()))
		fmt.Println()
	}
	if !*stable {
		fmt.Printf("total evaluation time: %s\n", t.Elapsed.Round(1e8))
	}
	return nil
}

// emitMetrics writes the collector snapshot to path ("-" = stdout); a nil
// collector (no -metrics flag) is a no-op.
func emitMetrics(mc *metrics.Collector, path string) error {
	if mc == nil {
		return nil
	}
	if path == "-" {
		return mc.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	return mc.WriteJSON(f)
}
