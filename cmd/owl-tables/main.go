// Command owl-tables regenerates the paper's evaluation tables (1-4) from
// the workload models, printing each next to the corresponding paper
// numbers where the comparison is meaningful (the models are ~1/10-scale
// syntheses, so the shape — ratios and orderings — is the claim, not the
// absolute counts).
//
// Usage:
//
//	owl-tables [-table all|1|2|3|4] [-noise full|light] [-workers N] [-metrics out.json]
//	owl-tables [-engine tree|bytecode] [-explore fixed|coverage] [-budget N] [-seed N] [-stable]
//	owl-tables [-predict [-predict-reversal]] [-max-steps N] [-fail-fast=false]
//
// -stable elides the non-deterministic timing fields so the output can be
// diffed byte-for-byte against the committed golden fixture (make golden).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/conanalysis/owl/internal/cliflags"
	"github.com/conanalysis/owl/internal/eval"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl-tables:", err)
		os.Exit(1)
	}
}

// flags builds the binary's flag set: the shared set (cliflags) plus the
// tables-only flags. Split out so the parity test can inspect it.
func flags() (*flag.FlagSet, *cliflags.Shared, *ownFlags) {
	fs := flag.NewFlagSet("owl-tables", flag.ContinueOnError)
	shared := cliflags.Register(fs, cliflags.Defaults{
		Noise:        "full",
		Workers:      0,
		WorkersUsage: "parallel workload evaluations (0 = NumCPU)",
		// The tables pipeline fails fast by default: a degraded stage would
		// silently skew a table row (see eval.Config.AllowDegraded).
		FailFast: true,
	})
	own := &ownFlags{
		table:  fs.String("table", "all", "which table to print: all, 1, 2, 3, 4"),
		stable: fs.Bool("stable", false, "deterministic output: elide timing fields (golden-fixture mode)"),
	}
	return fs, shared, own
}

type ownFlags struct {
	table  *string
	stable *bool
}

func run(args []string) error {
	fs, shared, own := flags()
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl := workloads.NoiseFull
	if shared.Noise == "light" {
		lvl = workloads.NoiseLight
	}
	mode, err := shared.Mode()
	if err != nil {
		return err
	}
	engine, err := shared.EngineVal()
	if err != nil {
		return err
	}
	var mc *metrics.Collector
	if shared.MetricsOut != "" {
		mc = metrics.New()
	}

	plan, err := shared.Plan()
	if err != nil {
		return err
	}

	fmt.Printf("building tables (noise=%s)...\n\n", shared.Noise)
	t, err := eval.BuildTablesParallel(eval.Config{
		Noise: lvl, Metrics: mc, Engine: engine, Explore: mode, Budget: shared.Budget,
		Seed: shared.Seed, SnapCache: shared.SnapCache, MaxSteps: shared.MaxSteps,
		Predict: shared.Predict, PredictReversal: shared.PredictReversal,
		StageTimeout: shared.StageTimeout, Retries: shared.Retries, Faults: plan,
		AllowDegraded: !shared.FailFast,
	}, shared.Workers)
	if err != nil {
		return err
	}
	t.Stable = *own.stable
	if err := emitMetrics(mc, shared.MetricsOut); err != nil {
		return err
	}

	show := func(n string) bool { return *own.table == "all" || *own.table == n }
	if show("1") {
		fmt.Println("Table 1: Concurrency attacks study results")
		fmt.Print(report.Table(t.Table1()))
		fmt.Println()
	}
	if show("2") {
		fmt.Println("Table 2: OWL concurrency attack detection results")
		fmt.Print(report.Table(t.Table2()))
		found, modelled := t.AttacksFoundTotal()
		fmt.Printf("OWL detected %d of %d modelled attacks (paper: 10 of 10 evaluated)\n\n",
			found, modelled)
	}
	if show("3") {
		fmt.Println("Table 3: OWL's reduction on race detector reports")
		fmt.Print(report.Table(t.Table3()))
		fmt.Printf("overall reduction: %.1f%% (paper: 94.3%%)\n\n", 100*t.ReductionRatio())
	}
	if show("4") {
		fmt.Println("Table 4: OWL's detection results on known concurrency attacks")
		fmt.Print(report.Table(t.Table4()))
		fmt.Println()
	}
	if !*own.stable {
		fmt.Printf("total evaluation time: %s\n", t.Elapsed.Round(1e8))
	}
	return nil
}

// emitMetrics writes the collector snapshot to path ("-" = stdout); a nil
// collector (no -metrics flag) is a no-op.
func emitMetrics(mc *metrics.Collector, path string) error {
	if mc == nil {
		return nil
	}
	if path == "-" {
		return mc.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	return mc.WriteJSON(f)
}
