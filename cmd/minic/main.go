// Command minic compiles the small concurrent C-like language to OWL IR
// (the "Source Code → clang → LLVM" edge of the paper's Figure 3) and can
// run the result or push it straight through the OWL pipeline.
//
// Usage:
//
//	minic prog.mc                      # compile, print the .oir
//	minic -o prog.oir prog.mc          # compile to a file
//	minic -run [-inputs 1,2] prog.mc   # compile and execute
//	minic -owl prog.mc                 # compile and run the OWL pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/minic"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "minic:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("minic", flag.ContinueOnError)
	var (
		out        = fs.String("o", "", "write the compiled .oir here (default: stdout)")
		execute    = fs.Bool("run", false, "compile and execute")
		pipeline   = fs.Bool("owl", false, "compile and run the OWL pipeline")
		inputsFlag = fs.String("inputs", "", "comma-separated input words")
		seed       = fs.Uint64("seed", 1, "scheduler seed for -run")
		maxSteps   = fs.Int("max", 500000, "step bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: minic [flags] prog.mc")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	mod, err := minic.Compile(fs.Arg(0), string(src))
	if err != nil {
		return err
	}

	var inputs []int64
	if *inputsFlag != "" {
		for _, p := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
			if err != nil {
				return fmt.Errorf("bad input %q: %w", p, err)
			}
			inputs = append(inputs, v)
		}
	}

	switch {
	case *execute:
		m, err := interp.New(interp.Config{
			Module: mod, Inputs: inputs, MaxSteps: *maxSteps,
			Sched: sched.NewRandom(*seed),
		})
		if err != nil {
			return err
		}
		res := m.Run()
		for _, line := range res.Output {
			fmt.Println(line)
		}
		fmt.Printf("-- exit=%d steps=%d stall=%s\n", res.ExitCode, res.Steps, res.Stall)
		for _, f := range res.Faults {
			fmt.Printf("FAULT: %v\n", f)
		}
		return nil

	case *pipeline:
		res, err := owl.Run(owl.Program{Module: mod, Inputs: inputs, MaxSteps: *maxSteps},
			owl.Options{DetectRuns: 12})
		if err != nil {
			return err
		}
		fmt.Print(report.Summary(fs.Arg(0), res))
		ids := make([]string, 0, len(res.FindingsByReport))
		for id := range res.FindingsByReport {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("\nfor race %s:\n", id)
			for _, f := range res.FindingsByReport[id] {
				fmt.Print(report.Finding(f))
			}
		}
		return nil

	default:
		text := mod.Format()
		if *out == "" {
			fmt.Print(text)
			return nil
		}
		return os.WriteFile(*out, []byte(text), 0o644)
	}
}
