// Command owl runs the OWL directed concurrency-attack detection pipeline
// (detection → ad-hoc sync annotation → dynamic race verification →
// static vulnerability analysis → dynamic vulnerability verification)
// over one of the built-in workload models, or over a user-supplied .oir
// program.
//
// Usage:
//
//	owl -workload libsafe [-recipe attack] [-noise light|full] [-workers 4] [-v]
//	owl -workload mysql -explore coverage -budget 32 [-seed 7]
//	owl -workload libsafe -predict [-predict-reversal] -budget 16 [-seed 7]
//	owl -file prog.oir [-inputs 1,2,3] [-v]
//	owl -workload ssdb -metrics - [-workers 0]
//	owl -workload libsafe -faults plan.json [-stage-timeout 30s] [-retries 1] [-fail-fast]
//	owl -workload mysql -engine bytecode [-cpuprofile cpu.out] [-memprofile mem.out]
//	owl -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"github.com/conanalysis/owl/internal/cliflags"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl:", err)
		os.Exit(1)
	}
}

// flags builds the binary's flag set: the shared set (cliflags) plus the
// owl-only flags. Split out so the parity test can inspect it.
func flags() (*flag.FlagSet, *cliflags.Shared, *ownFlags) {
	fs := flag.NewFlagSet("owl", flag.ContinueOnError)
	shared := cliflags.Register(fs, cliflags.Defaults{
		Workers:      1,
		WorkersUsage: "pipeline worker pool size (0 = NumCPU, 1 = sequential)",
	})
	own := &ownFlags{
		workload:   fs.String("workload", "", "built-in workload to analyze (see -list)"),
		recipe:     fs.String("recipe", "", "input recipe (default: first attack recipe)"),
		file:       fs.String("file", "", ".oir program to analyze instead of a workload"),
		inputsFlag: fs.String("inputs", "", "comma-separated input words for -file"),
		detectRuns: fs.Int("runs", 8, "seeded detection executions"),
		cpuProfile: fs.String("cpuprofile", "", "write a pprof CPU profile of the pipeline to this file"),
		memProfile: fs.String("memprofile", "", "write a pprof heap profile (after the pipeline) to this file"),
		list:       fs.Bool("list", false, "list built-in workloads and exit"),
		verbose:    fs.Bool("v", false, "print per-report details"),
	}
	return fs, shared, own
}

type ownFlags struct {
	workload, recipe, file, inputsFlag *string
	detectRuns                         *int
	cpuProfile, memProfile             *string
	list, verbose                      *bool
}

func run(args []string) error {
	fs, shared, own := flags()
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *own.list {
		for _, name := range workloads.Names() {
			w := workloads.Get(name, workloads.NoiseLight)
			fmt.Printf("%-10s %-28s attacks=%d recipes=%s\n",
				name, w.RealName, len(w.Attacks), recipeNames(w))
		}
		return nil
	}

	prog, name, err := resolveProgram(*own.workload, *own.recipe, *own.file, *own.inputsFlag, shared.Noise)
	if err != nil {
		return err
	}

	if shared.MaxSteps > 0 {
		prog.MaxSteps = shared.MaxSteps
	}

	nWorkers := shared.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.NumCPU()
	}
	// The collector always runs (it also backs the truncation warning
	// below); the JSON snapshot is emitted only when -metrics is set.
	mc := metrics.New()
	mode, err := shared.Mode()
	if err != nil {
		return err
	}
	engine, err := shared.EngineVal()
	if err != nil {
		return err
	}
	plan, err := shared.Plan()
	if err != nil {
		return err
	}
	stopProfile, err := startCPUProfile(*own.cpuProfile)
	if err != nil {
		return err
	}
	res, err := owl.Run(prog, owl.Options{
		DetectRuns: *own.detectRuns, Workers: nWorkers, Metrics: mc,
		Engine:  engine,
		Explore: mode, Budget: shared.Budget, Seed: shared.Seed, SnapCache: shared.SnapCache,
		Predict: shared.Predict, PredictReversal: shared.PredictReversal,
		StageTimeout: shared.StageTimeout, Retries: shared.Retries,
		Faults: plan, FailFast: shared.FailFast,
	})
	stopProfile()
	if err != nil {
		return err
	}
	if err := writeMemProfile(*own.memProfile); err != nil {
		return err
	}
	if shared.MetricsOut != "" {
		if err := emitMetrics(mc, shared.MetricsOut); err != nil {
			return err
		}
	}
	warnTruncation(mc)
	for _, d := range res.Degraded {
		fmt.Fprintf(os.Stderr, "owl: warning: %s\n", d.String())
	}

	fmt.Print(report.Text(name, res))
	if !*own.verbose {
		return nil
	}
	fmt.Println("\n== raw race reports ==")
	for _, r := range res.Raw {
		fmt.Println(report.Race(r))
	}
	if len(res.PredictedConfirmed) > 0 {
		fmt.Println("== confirmed predicted races ==")
		for _, id := range res.PredictedConfirmed {
			fmt.Println(" ", id)
		}
	}
	fmt.Println("== adhoc synchronizations ==")
	for _, s := range res.Syncs {
		fmt.Println(" ", s)
	}
	fmt.Println("== verification hints ==")
	for _, h := range res.Hints {
		fmt.Println(report.Hint(h))
	}
	fmt.Println("== vulnerable input hints ==")
	ids := make([]string, 0, len(res.FindingsByReport))
	for id := range res.FindingsByReport {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("for race %s:\n", id)
		for _, f := range res.FindingsByReport[id] {
			fmt.Println(report.Finding(f))
		}
	}
	fmt.Println("== dynamic vulnerability verification ==")
	for _, o := range res.Outcomes {
		fmt.Println(report.Outcome(o))
	}
	return nil
}

// startCPUProfile begins a pprof CPU profile ("" = off) and returns the
// stop function; the profile covers only the pipeline run, not flag
// parsing or report printing, so flame graphs start at owl.Run.
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile writes a heap profile after a GC ("" = off), so the
// numbers reflect live pipeline state rather than collectible garbage.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// warnTruncation surfaces silent step-budget truncation: any detection
// run that hit MaxSteps bumps interp.max_steps_hit, and the operator
// should know the raw report set may be incomplete.
func warnTruncation(mc *metrics.Collector) {
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "interp.max_steps_hit" && c.Value > 0 {
			fmt.Fprintf(os.Stderr,
				"owl: warning: %d run(s) hit the interpreter step budget and were truncated (raise -max-steps)\n",
				c.Value)
		}
	}
}

// emitMetrics writes the collector snapshot to path ("-" = stdout); a nil
// collector (no -metrics flag) is a no-op.
func emitMetrics(mc *metrics.Collector, path string) error {
	if mc == nil {
		return nil
	}
	if path == "-" {
		return mc.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	return mc.WriteJSON(f)
}

func recipeNames(w *workloads.Workload) string {
	names := make([]string, len(w.Recipes))
	for i, r := range w.Recipes {
		names[i] = r.Name
	}
	return strings.Join(names, ",")
}

func resolveProgram(workload, recipe, file, inputsFlag, noise string) (owl.Program, string, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return owl.Program{}, "", err
		}
		mod, err := ir.Parse(file, string(src))
		if err != nil {
			return owl.Program{}, "", err
		}
		inputs, err := parseInputs(inputsFlag)
		if err != nil {
			return owl.Program{}, "", err
		}
		return owl.Program{Module: mod, Inputs: inputs, MaxSteps: 500000}, file, nil
	}
	if workload == "" {
		return owl.Program{}, "", fmt.Errorf("need -workload or -file (use -list)")
	}
	lvl := workloads.NoiseLight
	if noise == "full" {
		lvl = workloads.NoiseFull
	}
	w := workloads.Get(workload, lvl)
	if w == nil {
		return owl.Program{}, "", fmt.Errorf("unknown workload %q (use -list)", workload)
	}
	if recipe == "" {
		if len(w.Attacks) > 0 {
			recipe = w.Attacks[0].InputRecipe
		} else if len(w.Recipes) > 0 {
			recipe = w.Recipes[0].Name
		}
	}
	rec := w.Recipe(recipe)
	name := fmt.Sprintf("%s/%s", w.Name, rec.Name)
	return owl.Program{
		Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, name, nil
}

func parseInputs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
