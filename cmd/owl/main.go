// Command owl runs the OWL directed concurrency-attack detection pipeline
// (detection → ad-hoc sync annotation → dynamic race verification →
// static vulnerability analysis → dynamic vulnerability verification)
// over one of the built-in workload models, or over a user-supplied .oir
// program.
//
// Usage:
//
//	owl -workload libsafe [-recipe attack] [-noise light|full] [-workers 4] [-v]
//	owl -workload mysql -explore coverage -budget 32 [-seed 7]
//	owl -file prog.oir [-inputs 1,2,3] [-v]
//	owl -workload ssdb -metrics - [-workers 0]
//	owl -workload libsafe -faults plan.json [-stage-timeout 30s] [-retries 1] [-fail-fast]
//	owl -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("owl", flag.ContinueOnError)
	var (
		workload   = fs.String("workload", "", "built-in workload to analyze (see -list)")
		recipe     = fs.String("recipe", "", "input recipe (default: first attack recipe)")
		file       = fs.String("file", "", ".oir program to analyze instead of a workload")
		inputsFlag = fs.String("inputs", "", "comma-separated input words for -file")
		noise      = fs.String("noise", "light", "workload noise level: light or full")
		detectRuns = fs.Int("runs", 8, "seeded detection executions")
		explore    = fs.String("explore", "fixed", "detect-stage schedule exploration: fixed or coverage")
		budget     = fs.Int("budget", 0, "run budget for -explore=coverage (0 = same as -runs)")
		seed       = fs.Uint64("seed", 0, "base seed for -explore=coverage")
		snapCache  = fs.Int("snap-cache", 0, "snapshot-cache entries per coverage stage for prefix-sharing exploration (0 = off)")
		workers    = fs.Int("workers", 1, "pipeline worker pool size (0 = NumCPU, 1 = sequential)")
		metricsOut = fs.String("metrics", "", `write per-stage metrics JSON to this file ("-" = stdout)`)
		maxSteps   = fs.Int("max-steps", 0, "interpreter step budget per run (0 = program default)")
		stageTO    = fs.Duration("stage-timeout", 0, "per-stage deadline; an overrunning stage degrades (0 = none)")
		retries    = fs.Int("retries", 0, "extra attempts a faulted run gets before quarantine")
		faultsPath = fs.String("faults", "", "deterministic fault-injection plan JSON (see docs/ROBUSTNESS.md)")
		failFast   = fs.Bool("fail-fast", false, "error out on the first faulted stage instead of degrading")
		list       = fs.Bool("list", false, "list built-in workloads and exit")
		verbose    = fs.Bool("v", false, "print per-report details")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range workloads.Names() {
			w := workloads.Get(name, workloads.NoiseLight)
			fmt.Printf("%-10s %-28s attacks=%d recipes=%s\n",
				name, w.RealName, len(w.Attacks), recipeNames(w))
		}
		return nil
	}

	prog, name, err := resolveProgram(*workload, *recipe, *file, *inputsFlag, *noise)
	if err != nil {
		return err
	}

	if *maxSteps > 0 {
		prog.MaxSteps = *maxSteps
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.NumCPU()
	}
	// The collector always runs (it also backs the truncation warning
	// below); the JSON snapshot is emitted only when -metrics is set.
	mc := metrics.New()
	mode := owl.ExploreMode(*explore)
	if mode != owl.ExploreFixed && mode != owl.ExploreCoverage {
		return fmt.Errorf("unknown -explore mode %q (want fixed or coverage)", *explore)
	}
	var plan *faultinject.Plan
	if *faultsPath != "" {
		plan, err = faultinject.Load(*faultsPath)
		if err != nil {
			return err
		}
	}
	res, err := owl.Run(prog, owl.Options{
		DetectRuns: *detectRuns, Workers: nWorkers, Metrics: mc,
		Explore: mode, Budget: *budget, Seed: *seed, SnapCache: *snapCache,
		StageTimeout: *stageTO, Retries: *retries,
		Faults: plan, FailFast: *failFast,
	})
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := emitMetrics(mc, *metricsOut); err != nil {
			return err
		}
	}
	warnTruncation(mc)
	for _, d := range res.Degraded {
		fmt.Fprintf(os.Stderr, "owl: warning: %s\n", d.String())
	}

	fmt.Print(report.Summary(name, res))
	if rb := report.Robustness(res); rb != "" {
		fmt.Print(rb)
	}
	if !*verbose {
		return nil
	}
	fmt.Println("\n== raw race reports ==")
	for _, r := range res.Raw {
		fmt.Println(report.Race(r))
	}
	fmt.Println("== adhoc synchronizations ==")
	for _, s := range res.Syncs {
		fmt.Println(" ", s)
	}
	fmt.Println("== verification hints ==")
	for _, h := range res.Hints {
		fmt.Println(report.Hint(h))
	}
	fmt.Println("== vulnerable input hints ==")
	for id, findings := range res.FindingsByReport {
		fmt.Printf("for race %s:\n", id)
		for _, f := range findings {
			fmt.Println(report.Finding(f))
		}
	}
	fmt.Println("== dynamic vulnerability verification ==")
	for _, o := range res.Outcomes {
		fmt.Println(report.Outcome(o))
	}
	return nil
}

// warnTruncation surfaces silent step-budget truncation: any detection
// run that hit MaxSteps bumps interp.max_steps_hit, and the operator
// should know the raw report set may be incomplete.
func warnTruncation(mc *metrics.Collector) {
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "interp.max_steps_hit" && c.Value > 0 {
			fmt.Fprintf(os.Stderr,
				"owl: warning: %d run(s) hit the interpreter step budget and were truncated (raise -max-steps)\n",
				c.Value)
		}
	}
}

// emitMetrics writes the collector snapshot to path ("-" = stdout); a nil
// collector (no -metrics flag) is a no-op.
func emitMetrics(mc *metrics.Collector, path string) error {
	if mc == nil {
		return nil
	}
	if path == "-" {
		return mc.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	return mc.WriteJSON(f)
}

func recipeNames(w *workloads.Workload) string {
	names := make([]string, len(w.Recipes))
	for i, r := range w.Recipes {
		names[i] = r.Name
	}
	return strings.Join(names, ",")
}

func resolveProgram(workload, recipe, file, inputsFlag, noise string) (owl.Program, string, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return owl.Program{}, "", err
		}
		mod, err := ir.Parse(file, string(src))
		if err != nil {
			return owl.Program{}, "", err
		}
		inputs, err := parseInputs(inputsFlag)
		if err != nil {
			return owl.Program{}, "", err
		}
		return owl.Program{Module: mod, Inputs: inputs, MaxSteps: 500000}, file, nil
	}
	if workload == "" {
		return owl.Program{}, "", fmt.Errorf("need -workload or -file (use -list)")
	}
	lvl := workloads.NoiseLight
	if noise == "full" {
		lvl = workloads.NoiseFull
	}
	w := workloads.Get(workload, lvl)
	if w == nil {
		return owl.Program{}, "", fmt.Errorf("unknown workload %q (use -list)", workload)
	}
	if recipe == "" {
		if len(w.Attacks) > 0 {
			recipe = w.Attacks[0].InputRecipe
		} else if len(w.Recipes) > 0 {
			recipe = w.Recipes[0].Name
		}
	}
	rec := w.Recipe(recipe)
	name := fmt.Sprintf("%s/%s", w.Name, rec.Name)
	return owl.Program{
		Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, name, nil
}

func parseInputs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
