package main

import (
	"testing"

	"github.com/conanalysis/owl/internal/cliflags"
)

// TestSharedFlagParity pins this binary to the canonical shared flag set:
// every flag in cliflags.Names() must exist here, so the binaries cannot
// drift apart again (cmd/owl-tables once lacked -seed, -fail-fast, and
// -max-steps).
func TestSharedFlagParity(t *testing.T) {
	fs, _, _ := flags()
	for _, name := range cliflags.Names() {
		if fs.Lookup(name) == nil {
			t.Errorf("cmd/owl is missing shared flag -%s", name)
		}
	}
}

// TestOwnDefaults pins the per-binary defaults golden output depends on.
func TestOwnDefaults(t *testing.T) {
	fs, shared, own := flags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if shared.Noise != "light" {
		t.Errorf("noise default = %q, want light", shared.Noise)
	}
	if shared.Workers != 1 {
		t.Errorf("workers default = %d, want 1 (sequential)", shared.Workers)
	}
	if shared.FailFast {
		t.Error("fail-fast must default off for cmd/owl (pipeline degrades)")
	}
	if shared.Predict || shared.PredictReversal {
		t.Error("prediction must default off")
	}
	if *own.detectRuns != 8 {
		t.Errorf("runs default = %d, want 8", *own.detectRuns)
	}
	if shared.Engine != "tree" {
		t.Errorf("engine default = %q, want tree (the differential oracle)", shared.Engine)
	}
	if *own.cpuProfile != "" || *own.memProfile != "" {
		t.Error("profiling must default off")
	}
}
