// Command irrun parses and executes a .oir program under a chosen
// scheduler — the quickest way to experiment with the IR and to reproduce
// a racy schedule by seed.
//
// Usage:
//
//	irrun prog.oir [-entry main] [-sched random|rr|pct] [-seed 1]
//	      [-inputs 1,2,3] [-max 1000000] [-races] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "irrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("irrun", flag.ContinueOnError)
	var (
		entry      = fs.String("entry", "main", "entry function")
		schedName  = fs.String("sched", "random", "scheduler: random, rr, pct")
		seed       = fs.Uint64("seed", 1, "scheduler seed")
		inputsFlag = fs.String("inputs", "", "comma-separated input words")
		maxSteps   = fs.Int("max", 1_000_000, "step bound")
		races      = fs.Bool("races", false, "attach the race detector and print reports")
		traceEv    = fs.Bool("trace", false, "print every event")
		record     = fs.String("record", "", "save the run's schedule to a JSON recording")
		replay     = fs.String("replay", "", "replay a JSON recording instead of scheduling")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: irrun [flags] prog.oir")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	mod, err := ir.Parse(fs.Arg(0), string(src))
	if err != nil {
		return err
	}

	var s interp.Scheduler
	switch *schedName {
	case "random":
		s = sched.NewRandom(*seed)
	case "rr":
		s = sched.NewRoundRobin(1)
	case "pct":
		s = sched.NewPCT(*seed, 3, *maxSteps)
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}

	var inputs []int64
	if *inputsFlag != "" {
		for _, p := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 0, 64)
			if err != nil {
				return fmt.Errorf("bad input %q: %w", p, err)
			}
			inputs = append(inputs, v)
		}
	}

	var replayer *sched.Replay
	if *replay != "" {
		rec, err := trace.Load(*replay)
		if err != nil {
			return err
		}
		cfg, rep, err := rec.Config(mod)
		if err != nil {
			return err
		}
		// Replays carry their own entry/inputs/bounds.
		*entry, inputs = cfg.Entry, cfg.Inputs
		if cfg.MaxSteps > 0 {
			*maxSteps = cfg.MaxSteps
		}
		s, replayer = cfg.Sched, rep
	}

	var observers []interp.Observer
	det := race.NewDetector()
	if *races {
		observers = append(observers, det)
	}
	if *traceEv {
		observers = append(observers, interp.ObserverFunc(func(m *interp.Machine, e interp.Event) {
			fmt.Println(e)
		}))
	}

	cfg := interp.Config{
		Module: mod, Entry: *entry, Inputs: inputs, MaxSteps: *maxSteps,
		Sched: s, Observers: observers,
	}
	m, err := interp.New(cfg)
	if err != nil {
		return err
	}
	res := m.Run()

	if replayer != nil && replayer.Diverged {
		fmt.Println("WARNING: replay diverged from the recording")
	}
	if *record != "" {
		note := fmt.Sprintf("irrun -sched %s -seed %d", *schedName, *seed)
		if err := trace.FromRun(cfg, res, note).Save(*record); err != nil {
			return err
		}
		fmt.Printf("-- recording saved to %s\n", *record)
	}

	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("-- exit=%d steps=%d stall=%s uid=%d\n",
		res.ExitCode, res.Steps, res.Stall, res.UID)
	for _, f := range res.Faults {
		fmt.Printf("FAULT: %v\n", f)
		fmt.Println(f.Stack)
	}
	if *races {
		fmt.Printf("-- %d race report(s)\n", len(det.Reports()))
		for _, r := range det.Reports() {
			fmt.Println(r)
		}
	}
	return nil
}
