// Command owl-study reproduces the paper's quantitative study (§3):
// per-attack exploitability, repetition counts, cross-function spread,
// call-stack prefix property, race detectability, and report burial.
//
// Usage:
//
//	owl-study [-noise light|full] [-runs 100] [-workers N] [-metrics out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owl-study:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("owl-study", flag.ContinueOnError)
	var (
		noise      = fs.String("noise", "light", "workload noise level: light or full")
		maxRuns    = fs.Int("runs", 100, "exploit campaign budget per attack")
		workers    = fs.Int("workers", 1, "study worker pool size (0 = NumCPU, 1 = sequential)")
		metricsOut = fs.String("metrics", "", `write per-stage metrics JSON to this file ("-" = stdout)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl := workloads.NoiseLight
	if *noise == "full" {
		lvl = workloads.NoiseFull
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	var mc *metrics.Collector
	if *metricsOut != "" {
		mc = metrics.New()
	}
	res, err := study.Run(study.Config{Noise: lvl, MaxRuns: *maxRuns, Workers: *workers, Metrics: mc})
	if err != nil {
		return err
	}
	if mc != nil {
		if *metricsOut == "-" {
			if err := mc.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return fmt.Errorf("metrics: %w", err)
			}
			if err := mc.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	rows := [][]string{{
		"Workload", "Attack", "Consequence", "Exploited", "Reps",
		"CrossFn", "StackPrefix", "RaceDetected", "BuriedAmong",
	}}
	for _, r := range res.Rows {
		prefix := "n/a"
		if r.PrefixChecked {
			prefix = fmt.Sprintf("%v", r.PrefixStacks)
		}
		rows = append(rows, []string{
			r.Workload, r.Spec.ID, r.Spec.Consequence.String(),
			fmt.Sprintf("%v", r.Exploited), fmt.Sprintf("%d", r.Repetitions),
			fmt.Sprintf("%v", r.CrossFunction), prefix,
			fmt.Sprintf("%v", r.RaceDetected), fmt.Sprintf("%d", r.BuriedAmong),
		})
	}
	fmt.Print(report.Table(rows))
	fmt.Println()
	fmt.Print(res.String())
	return nil
}
