// Package conanalysis is the public API of the OWL concurrency-attack
// analysis framework — a Go reproduction of "Understanding and Detecting
// Concurrency Attacks" (DSN 2018).
//
// The framework bundles:
//
//   - an SSA-form IR with a textual format (.oir), plus a deterministic
//     concurrent interpreter whose schedules replay exactly;
//   - a ThreadSanitizer-style happens-before race detector and a SKI-style
//     systematic kernel schedule explorer;
//   - OWL's pipeline: ad-hoc synchronization mining and annotation (§5.1),
//     racing-moment race verification with security hints (§5.2),
//     call-stack-directed static vulnerability analysis (Algorithm 1,
//     §6.1), and dynamic vulnerability verification (§6.2);
//   - models of the programs the paper studies (Libsafe, Linux, MySQL,
//     SSDB, Apache, Chrome, Memcached) with exploit drivers, and the
//     harness regenerating the paper's study and evaluation tables.
//
// Quick start — run the pipeline on your own program:
//
//	mod, err := conanalysis.ParseIR("prog.oir", src)
//	res, err := conanalysis.Run(conanalysis.Program{Module: mod}, conanalysis.Options{})
//	for _, atk := range res.Attacks { fmt.Println(atk) }
//
// Or analyze a built-in workload model:
//
//	w := conanalysis.Workload("libsafe", conanalysis.NoiseLight)
//	rec := w.Recipe("attack")
//	res, _ := conanalysis.Run(conanalysis.Program{
//		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
//	}, conanalysis.Options{})
package conanalysis

import (
	"github.com/conanalysis/owl/internal/atomicity"
	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/eval"
	"github.com/conanalysis/owl/internal/inputsearch"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/minic"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/trace"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/workloads"
)

// Core pipeline types (internal/owl).
type (
	// Program is the unit OWL analyzes: a frozen IR module plus workload
	// configuration.
	Program = owl.Program
	// Options tunes the pipeline stages (ablation switches included).
	Options = owl.Options
	// Result is the full pipeline output.
	Result = owl.Result
	// Stats is the Table-3-style reduction accounting.
	Stats = owl.Stats
	// Attack is a confirmed bug-to-attack propagation.
	Attack = owl.Attack
)

// Run executes the OWL pipeline (Figure 3 of the paper) over the program.
func Run(p Program, opts Options) (*Result, error) { return owl.Run(p, opts) }

// IR types and helpers (internal/ir).
type (
	// Module is a compilation unit of OWL IR.
	Module = ir.Module
	// Builder constructs modules programmatically.
	Builder = ir.Builder
)

// ParseIR parses a module from its textual .oir representation.
func ParseIR(filename, src string) (*Module, error) { return ir.Parse(filename, src) }

// NewBuilder returns a Builder for a new module.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// Operand is a value use inside an instruction (Builder API).
type Operand = ir.Operand

// ConstOp returns an immediate operand.
func ConstOp(v int64) Operand { return ir.ConstOp(v) }

// RegOp returns a virtual-register operand.
func RegOp(name string) Operand { return ir.RegOp(name) }

// GlobalOp returns a global-variable operand.
func GlobalOp(name string) Operand { return ir.GlobalOp(name) }

// FuncOp returns a function-reference operand.
func FuncOp(name string) Operand { return ir.FuncOp(name) }

// Interpreter surface (internal/interp, internal/sched).
type (
	// Machine executes a program deterministically.
	Machine = interp.Machine
	// MachineConfig configures a machine run.
	MachineConfig = interp.Config
	// MachineResult summarizes a run.
	MachineResult = interp.Result
	// Scheduler picks the next thread each step.
	Scheduler = interp.Scheduler
	// Observer consumes runtime events (attach via MachineConfig).
	Observer = interp.Observer
	// Event is one runtime event delivered to observers.
	Event = interp.Event
)

// NewMachine builds an interpreter for the configuration.
func NewMachine(cfg MachineConfig) (*Machine, error) { return interp.New(cfg) }

// NewRandomScheduler returns a seeded uniformly random scheduler.
func NewRandomScheduler(seed uint64) Scheduler { return sched.NewRandom(seed) }

// NewRoundRobinScheduler returns a round-robin scheduler.
func NewRoundRobinScheduler(quantum int) Scheduler { return sched.NewRoundRobin(quantum) }

// Race detection (internal/race).
type (
	// RaceDetector is the TSAN-style happens-before detector; attach it as
	// an interpreter observer.
	RaceDetector = race.Detector
	// RaceReport is one deduplicated data race.
	RaceReport = race.Report
)

// NewRaceDetector returns a fresh detector.
func NewRaceDetector() *RaceDetector { return race.NewDetector() }

// Vulnerability analysis (internal/vuln).
type (
	// Analyzer runs Algorithm 1 (§6.1).
	Analyzer = vuln.Analyzer
	// Finding is a potential bug-to-attack propagation.
	Finding = vuln.Finding
	// SiteRegistry maps operations to the five vulnerable-site types.
	SiteRegistry = vuln.Registry
)

// NewAnalyzer returns an Algorithm-1 analyzer over the module.
func NewAnalyzer(mod *Module) *Analyzer { return vuln.NewAnalyzer(mod) }

// DefaultSites returns the paper's five vulnerable-site types.
func DefaultSites() *SiteRegistry { return vuln.DefaultRegistry() }

// Workload models and exploit drivers (internal/workloads, internal/attack).
type (
	// WorkloadModel is one modelled program from the paper's study.
	WorkloadModel = workloads.Workload
	// AttackSpec describes a known concurrency attack a model reproduces.
	AttackSpec = workloads.AttackSpec
	// ExploitDriver runs exploit campaigns (the paper's exploit scripts).
	ExploitDriver = attack.Driver
	// NoiseLevel scales a model's benign-race noise.
	NoiseLevel = workloads.NoiseLevel
)

// Noise levels for workload construction.
const (
	NoiseLight = workloads.NoiseLight
	NoiseFull  = workloads.NoiseFull
)

// Workload builds a named workload model ("apache", "chrome", "libsafe",
// "linux", "memcached", "mysql", "ssdb"); nil if unknown.
func Workload(name string, lvl NoiseLevel) *WorkloadModel { return workloads.Get(name, lvl) }

// WorkloadNames lists the built-in workload models.
func WorkloadNames() []string { return workloads.Names() }

// NewExploitDriver returns an exploit driver for the workload.
func NewExploitDriver(w *WorkloadModel) *ExploitDriver { return attack.NewDriver(w) }

// Source front end (internal/minic).

// CompileC compiles the small concurrent C-like language (minic) to a
// frozen IR module — the "Source Code -> clang -> LLVM" edge of the
// paper's Figure 3. Reports then point at the original source lines.
func CompileC(filename, src string) (*Module, error) { return minic.Compile(filename, src) }

// Atomicity violations (internal/atomicity) — the CTrigger-style detector
// the paper lists as integration future work (§8.3). Enable it in the
// pipeline via Options.EnableAtomicity.
type (
	// AtomicityDetector flags unserializable access triples; attach it as
	// an interpreter observer.
	AtomicityDetector = atomicity.Detector
	// AtomicityReport is one deduplicated violation.
	AtomicityReport = atomicity.Report
)

// NewAtomicityDetector returns a fresh atomicity-violation detector.
func NewAtomicityDetector() *AtomicityDetector { return atomicity.NewDetector() }

// Schedule recordings (internal/trace).
type (
	// Recording is a replayable run description (module, inputs, exact
	// schedule) serializable as JSON.
	Recording = trace.Recording
)

// RecordRun captures a finished run as a Recording.
func RecordRun(cfg MachineConfig, res *MachineResult, note string) *Recording {
	return trace.FromRun(cfg, res, note)
}

// LoadRecording reads a Recording from a file.
func LoadRecording(path string) (*Recording, error) { return trace.Load(path) }

// Input-hint concretization (internal/inputsearch) — the paper's
// symbolic-execution augmentation, implemented as budgeted guided search.
type (
	// InputSearcher concretizes a Finding's input hints into concrete
	// input vectors that reach the vulnerable site.
	InputSearcher = inputsearch.Searcher
	// InputSlot bounds one input word; InputSpace is the whole vector.
	InputSlot  = inputsearch.Slot
	InputSpace = inputsearch.Space
)

// Evaluation harness (internal/eval, internal/study).
type (
	// EvalConfig tunes the evaluation harness.
	EvalConfig = eval.Config
	// EvalTables bundles the regenerated paper tables.
	EvalTables = eval.Tables
	// StudyResult aggregates the §3 study findings.
	StudyResult = study.Result
	// StudyConfig tunes the §3 study run.
	StudyConfig = study.Config
)

// BuildTables regenerates the paper's Tables 1-4 from the models.
func BuildTables(cfg EvalConfig) (*EvalTables, error) { return eval.BuildTables(cfg) }

// RunStudy reproduces the §3 quantitative study.
func RunStudy(cfg StudyConfig) (*StudyResult, error) { return study.Run(cfg) }

// BuildTablesParallel is BuildTables with per-workload evaluation fanned
// out over a bounded worker pool and the §3 study overlapped with it.
func BuildTablesParallel(cfg EvalConfig, workers int) (*EvalTables, error) {
	return eval.BuildTablesParallel(cfg, workers)
}

// Pipeline instrumentation (internal/metrics).
type (
	// MetricsCollector accumulates per-stage wall/busy timings, counters,
	// and worker-utilization gauges; thread one through Options.Metrics,
	// EvalConfig.Metrics, or StudyConfig.Metrics.
	MetricsCollector = metrics.Collector
	// MetricsReport is a deterministic point-in-time snapshot.
	MetricsReport = metrics.Report
)

// NewMetricsCollector returns an empty metrics collector.
func NewMetricsCollector() *MetricsCollector { return metrics.New() }

// FormatTable renders rows as a fixed-width text table (first row is the
// header).
func FormatTable(rows [][]string) string { return report.Table(rows) }

// FormatFinding renders a vulnerable-input hint in the paper's Figure-5
// format.
func FormatFinding(f *Finding) string { return report.Finding(f) }

// FormatSummary renders a pipeline result overview.
func FormatSummary(name string, res *Result) string { return report.Summary(name, res) }
