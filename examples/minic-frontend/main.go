// minic-frontend shows the full Figure-3 flow starting from source code:
// a C-like program (the bank-balance TOCTOU classic) is compiled by the
// minic front end to OWL IR, and the pipeline reports the attack against
// the original source lines. The bug: check_and_pay checks the balance,
// then debits it after an input-controlled delay; a concurrent payment
// double-spends and the account goes negative — and because the payout
// path exec()s the shipping job, OWL flags a process-forking vulnerable
// site controlled by the corrupted branch.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
	"github.com/conanalysis/owl/internal/minic"
)

const src = `int balance = 100;
int paid = 0;

void check_and_pay(int amount) {
    int b = balance;
    if (b >= amount) {
        io_delay(4);
        balance = b - amount;
        paid = paid + 1;
        exec("/usr/bin/ship-order");
    }
}

void customer(int amount) {
    check_and_pay(amount);
}

void main() {
    int t1 = spawn customer(80);
    int t2 = spawn customer(80);
    join(t1);
    join(t2);
    print(balance);
    print(paid);
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minic-frontend:", err)
		os.Exit(1)
	}
}

func run() error {
	mod, err := minic.Compile("bank.mc", src)
	if err != nil {
		return err
	}

	// Show the double spend happening at all: find a schedule where both
	// customers pass the balance check.
	for seed := uint64(1); seed <= 50; seed++ {
		m, err := conanalysis.NewMachine(conanalysis.MachineConfig{
			Module: mod, Sched: conanalysis.NewRandomScheduler(seed), MaxSteps: 100000,
		})
		if err != nil {
			return err
		}
		res := m.Run()
		if len(res.Output) == 2 && res.Output[1] == "2" {
			fmt.Printf("double spend on seed %d: balance=%s, paid=%s (both orders shipped)\n",
				seed, res.Output[0], res.Output[1])
			break
		}
	}

	// And OWL explaining it.
	res, err := conanalysis.Run(conanalysis.Program{Module: mod, MaxSteps: 100000},
		conanalysis.Options{DetectRuns: 16})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(conanalysis.FormatSummary("bank.mc", res))
	fmt.Println("\n-- findings against the minic source:")
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if f.Site.IsCall() && f.Site.Callee().Name == "exec" {
				fmt.Print(conanalysis.FormatFinding(f))
			}
		}
	}
	return nil
}
