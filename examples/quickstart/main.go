// Quickstart: run OWL's full pipeline on the Libsafe model (the paper's
// Figure 1 attack) and print what each stage produced — the raw races, the
// racing-moment verification hints, the Figure-5-style vulnerable input
// hint, and the dynamically confirmed attack.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The Libsafe model: a security library whose `dying` flag is read
	// without a lock, letting an attacker bypass the stack-overflow check.
	w := conanalysis.Workload("libsafe", conanalysis.NoiseLight)
	rec := w.Recipe("attack") // long payload + widened dying->exit window

	res, err := conanalysis.Run(conanalysis.Program{
		Module:   w.Module,
		Inputs:   rec.Inputs,
		MaxSteps: w.MaxSteps,
	}, conanalysis.Options{})
	if err != nil {
		return err
	}

	fmt.Print(conanalysis.FormatSummary("libsafe/attack", res))

	fmt.Println("\n-- the vulnerable input hint OWL computed (compare paper Figure 5):")
	for _, findings := range res.FindingsByReport {
		for _, f := range findings {
			if f.Site.IsCall() && f.Site.Callee().Name == "strcpy" {
				fmt.Print(conanalysis.FormatFinding(f))
			}
		}
	}

	fmt.Println("\n-- and the exploit itself (the paper's exploit scripts):")
	d := conanalysis.NewExploitDriver(w)
	ex, err := d.Exploit(w.Attacks[0])
	if err != nil {
		return err
	}
	fmt.Println(ex)
	return nil
}
