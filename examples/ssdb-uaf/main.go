// ssdb-uaf reproduces the paper's Figure 6 end to end: the previously
// unknown SSDB-1.9.2 use-after-free (CVE-2016-1000324) in the binlog
// cleaner's shutdown path. The workload races ~BinlogQueue against
// log_clean_thread_func; OWL flags the db->Write function-pointer
// dereference in del_range as a control-dependent pointer dereference and
// the dynamic stages confirm the freed-memory access.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssdb-uaf:", err)
		os.Exit(1)
	}
}

func run() error {
	w := conanalysis.Workload("ssdb", conanalysis.NoiseLight)
	spec := w.Attacks[0] // CVE-2016-1000324

	fmt.Println("== triggering the use-after-free ==")
	d := conanalysis.NewExploitDriver(w)
	ex, err := d.Exploit(spec)
	if err != nil {
		return err
	}
	fmt.Println(ex)
	if ex.Fault != nil {
		fmt.Println("witnessing fault:", ex.Fault)
		fmt.Println(ex.Fault.Stack)
	}

	fmt.Println("\n== OWL pipeline ==")
	rec := w.Recipe(spec.InputRecipe)
	res, err := conanalysis.Run(conanalysis.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, conanalysis.Options{})
	if err != nil {
		return err
	}
	fmt.Print(conanalysis.FormatSummary("ssdb/attack", res))

	fmt.Println("\n-- the Figure-6 site OWL flagged (db->Write in del_range):")
	for _, findings := range res.FindingsByReport {
		for _, f := range findings {
			if f.Site.Fn.Name == "del_range" {
				fmt.Print(conanalysis.FormatFinding(f))
				return nil
			}
		}
	}
	return nil
}
