// input-hints shows the step the paper leaves to future work: turning
// OWL's vulnerable input hints into concrete attack inputs. The pipeline
// produces the Figure-5-style hint (site + corrupted branches) for the
// Libsafe attack; the guided searcher then hunts the input space (payload
// length, dying->exit window, victim delay) for a vector that actually
// drives execution to the strcpy site.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "input-hints:", err)
		os.Exit(1)
	}
}

func run() error {
	w := conanalysis.Workload("libsafe", conanalysis.NoiseLight)
	rec := w.Recipe("attack")

	// Step 1: the pipeline computes the hint.
	res, err := conanalysis.Run(conanalysis.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, conanalysis.Options{})
	if err != nil {
		return err
	}
	var finding *conanalysis.Finding
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			// The unchecked copy: the strcpy in the raw_copy arm that only
			// executes when stack_check was bypassed.
			if f.Site.IsCall() && f.Site.Callee().Name == "strcpy" &&
				f.Site.Block.Name == "raw_copy" {
				finding = f
			}
		}
	}
	if finding == nil {
		return fmt.Errorf("pipeline produced no strcpy finding")
	}
	fmt.Println("-- the hint OWL computed:")
	fmt.Print(conanalysis.FormatFinding(finding))

	// Step 2: concretize it. The Libsafe model reads three input words:
	// payload length, dying->exit window, victim delay.
	s := &conanalysis.InputSearcher{
		Module:   w.Module,
		MaxSteps: w.MaxSteps,
		Space: conanalysis.InputSpace{
			{Min: 0, Max: 30}, // payload length
			{Min: 0, Max: 40}, // window between dying=1 and exit
			{Min: 0, Max: 10}, // victim delay
		},
		Budget: 200,
		Seeds:  4,
	}
	found, err := s.Search(finding)
	if err != nil {
		return err
	}
	fmt.Println("\n-- concretized:")
	fmt.Println(found)
	if found.Found {
		fmt.Println("(paper §1: \"can be done via symbolic execution\" — here by guided search)")
	}
	return nil
}
