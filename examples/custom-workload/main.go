// custom-workload shows how to point OWL at your own program: write it in
// the textual .oir IR (or build it with the Builder API), hand it to the
// pipeline, and read the hints. The embedded program is a small job queue
// whose "drained" flag is read without synchronization; on the racy
// schedule a worker exec()s a job path after the queue memory was
// repurposed — a process-forking vulnerable site reached through a
// corrupted branch, found by Algorithm 1 without any workload-specific
// knowledge.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
)

const src = `
module jobqueue

global @drained = 0
global @jobs [4]
global @njobs = 0
global @shell = "/bin/jobrunner"

func @enqueue(%what) {
entry:
  %n = load @njobs
  %p = addr @jobs
  %q = gep %p, %n
  store %what, %q
  %n2 = add %n, 1
  store %n2, @njobs
  ret 0
}

func @worker() {
entry:
  %d = load @drained
  %c = icmp ne %d, 0
  br %c, out, work
work:
  %n = load @njobs
  %has = icmp gt %n, 0
  br %has, runjob, out
runjob:
  %sh = addr @shell
  call @exec(%sh)
  ret 1
out:
  ret 0
}

func @drainer() {
entry:
  call @io_delay(2)
  store 1, @drained
  store 0, @njobs
  ret 0
}

func @main() {
entry:
  %r = call @enqueue(42)
  %t1 = call @spawn(@worker)
  %t2 = call @spawn(@drainer)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  ret 0
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-workload:", err)
		os.Exit(1)
	}
}

func run() error {
	mod, err := conanalysis.ParseIR("jobqueue.oir", src)
	if err != nil {
		return err
	}
	res, err := conanalysis.Run(conanalysis.Program{
		Module: mod, MaxSteps: 100000,
	}, conanalysis.Options{DetectRuns: 16})
	if err != nil {
		return err
	}
	fmt.Print(conanalysis.FormatSummary("jobqueue", res))

	fmt.Println("\n-- findings:")
	for id, findings := range res.FindingsByReport {
		fmt.Printf("race: %s\n", id)
		for _, f := range findings {
			fmt.Print(conanalysis.FormatFinding(f))
		}
	}
	return nil
}
