// apache-dos reproduces the paper's Figure 8 end to end: the Apache
// #46215 busy-counter data race, the unsigned underflow it enables, and
// the denial of service on the starved worker — then shows OWL detecting
// the race, flagging the control-dependent pointer assignment in
// find_best_bybusyness, and confirming the site dynamically.
package main

import (
	"fmt"
	"os"

	conanalysis "github.com/conanalysis/owl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "apache-dos:", err)
		os.Exit(1)
	}
}

func run() error {
	w := conanalysis.Workload("apache", conanalysis.NoiseLight)

	var spec conanalysis.AttackSpec
	for _, a := range w.Attacks {
		if a.ID == "Apache-46215" {
			spec = a
		}
	}

	// Step 1: exploit the race directly — two request-finish threads both
	// pass the `if (worker->s->busy)` check and drive the unsigned
	// counter to ~2^64, so the balancer never assigns to that worker.
	fmt.Println("== exploiting the busy-counter underflow ==")
	d := conanalysis.NewExploitDriver(w)
	ex, err := d.Exploit(spec)
	if err != nil {
		return err
	}
	fmt.Println(ex)

	// Witness the corrupted state on a successful run: find a seed where
	// the DoS oracle fires and print the counter the paper saw as
	// 18,446,744,073,709,551,614.
	rec := w.Recipe(spec.InputRecipe)
	for seed := uint64(1); seed <= 50; seed++ {
		m, err := conanalysis.NewMachine(conanalysis.MachineConfig{
			Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
			Sched: conanalysis.NewRandomScheduler(seed),
		})
		if err != nil {
			return err
		}
		m.Run()
		busy0 := uint64(m.Mem().Peek(m.GlobalAddr("busy")))
		if busy0 > 1<<62 {
			served0 := m.Mem().Peek(m.GlobalAddr("served"))
			served1 := m.Mem().Peek(m.GlobalAddr("served") + 1)
			fmt.Printf("\nworker 0 busy counter: %d (underflowed)\n", busy0)
			fmt.Printf("assignments after underflow: worker0=%d worker1=%d -> DoS on worker 0\n",
				served0, served1)
			break
		}
	}

	// Step 2: the OWL pipeline detecting and confirming it.
	fmt.Println("\n== OWL pipeline ==")
	res, err := conanalysis.Run(conanalysis.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, conanalysis.Options{})
	if err != nil {
		return err
	}
	fmt.Print(conanalysis.FormatSummary("apache/dos-attack", res))
	for _, findings := range res.FindingsByReport {
		for _, f := range findings {
			if f.Site.Fn.Name == "find_best_bybusyness" {
				fmt.Println("\n-- the Figure-8 site OWL flagged:")
				fmt.Print(conanalysis.FormatFinding(f))
				return nil
			}
		}
	}
	return nil
}
