module github.com/conanalysis/owl

go 1.22
