package conanalysis_test

import (
	"strings"
	"testing"

	conanalysis "github.com/conanalysis/owl"
)

// TestPublicAPIQuickstart exercises the README quick-start path through
// the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	w := conanalysis.Workload("libsafe", conanalysis.NoiseLight)
	if w == nil {
		t.Fatal("workload registry empty")
	}
	rec := w.Recipe("attack")
	res, err := conanalysis.Run(conanalysis.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, conanalysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attacks) == 0 {
		t.Fatal("no confirmed attacks via public API")
	}
	sum := conanalysis.FormatSummary("libsafe", res)
	if !strings.Contains(sum, "CONFIRMED ATTACK") {
		t.Errorf("summary missing confirmation:\n%s", sum)
	}
}

func TestPublicAPICompileAndRun(t *testing.T) {
	mod, err := conanalysis.CompileC("t.mc", `
void main() {
    print(6 * 7);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := conanalysis.NewMachine(conanalysis.MachineConfig{
		Module: mod, Sched: conanalysis.NewRoundRobinScheduler(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Output) != 1 || res.Output[0] != "42" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestPublicAPIIRAndDetector(t *testing.T) {
	mod, err := conanalysis.ParseIR("t.oir", `
global @x = 0
func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d := conanalysis.NewRaceDetector()
	m, err := conanalysis.NewMachine(conanalysis.MachineConfig{
		Module: mod, Sched: conanalysis.NewRoundRobinScheduler(1),
		Observers: []conanalysis.Observer{d},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if len(d.Reports()) != 1 {
		t.Errorf("reports = %d, want 1", len(d.Reports()))
	}
}

func TestPublicAPIWorkloadNames(t *testing.T) {
	names := conanalysis.WorkloadNames()
	if len(names) != 7 {
		t.Errorf("names = %v", names)
	}
	if conanalysis.Workload("nope", conanalysis.NoiseLight) != nil {
		t.Error("unknown workload should be nil")
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := conanalysis.NewBuilder("api")
	b.Global("g", 1, 7)
	f := b.Func("main")
	f.Block("entry")
	f.Ret(f.Load(conanalysis.GlobalOp("g")))
	mod, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if mod.Func("main") == nil {
		t.Error("builder module missing main")
	}
}
