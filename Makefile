# Tier-1 gate and benchmark targets for the OWL reproduction.
#
#   make ci              build + vet + test -race (the tier-1 gate)
#   make test            plain test run
#   make bench           full benchmark suite (tables, figures, ablations)
#   make bench-pipeline  parallel-speedup ablation -> BENCH_pipeline.json
#   make bench-detector  race-detector ablation    -> BENCH_detector.json

GO ?= go

.PHONY: ci build vet test race bench bench-pipeline bench-detector clean

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One build per variant (-benchtime 1x): the ablation compares sequential
# vs workers={1,4,NumCPU} wall clock on the full workload registry. The
# -json stream (newline-delimited test2json) lands in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -json -run '^$$' -bench 'BenchmarkParallelPipeline' -benchtime 1x . > BENCH_pipeline.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_pipeline.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Detector ablation (DESIGN.md §5 entry 6): epoch shadow words + lazy
# stack capture (DetectorOverhead) vs full vector clocks + eager stacks
# (DetectorFullVC) vs epoch words + eager stacks (DetectorEagerStacks),
# against the no-detector baseline; -benchmem records allocs/op so the
# zero-allocation hot-path claim is visible in the numbers. The -json
# stream (newline-delimited test2json) lands in BENCH_detector.json.
bench-detector:
	$(GO) test -json -run '^$$' -bench 'BenchmarkDetector|BenchmarkBaselineNoDetector' -benchmem ./internal/race > BENCH_detector.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_detector.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

clean:
	rm -f BENCH_pipeline.json BENCH_detector.json
