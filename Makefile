# Tier-1 gate and benchmark targets for the OWL reproduction.
#
#   make ci              build + vet + test -race + faults + predict (the tier-1 gate)
#   make test            plain test run (-shuffle=on; seed echoed into the log)
#   make serve-gate      analysis-service gate under -race (drain, backpressure, resume)
#   make persist-gate    durable-store gate: persistence + disk faults under -race,
#                        plus the process-level kill-and-restart smoke
#   make replica-gate    fleet-replication gate: peer state exchange + network-fault
#                        matrix under -race
#   make loadtest        in-process serve load harness -> BENCH_serve.json
#                        (includes the multi-replica warm-start scenario)
#   make faults          fault-injection suite under -race + canned-plan CLI runs
#   make predict         predictor suites under -race + confirm-differential gate
#   make engine-diff     cross-engine differential gate (tree vs bytecode)
#   make fmt-check       fail if any file needs gofmt (CI lint job)
#   make golden          diff `owl-tables -stable` against the committed fixture
#   make golden-bytecode same diff with -engine=bytecode (engines must agree)
#   make golden-update   refresh the fixture after an intentional output change
#   make profile         CPU+heap pprof of the pipeline -> cpu.pprof/mem.pprof
#   make bench           full benchmark suite (tables, figures, ablations)
#   make bench-smoke     every benchmark once     -> BENCH_smoke.json (CI)
#   make bench-pipeline  parallel-speedup ablation -> BENCH_pipeline.json
#   make bench-detector  race-detector ablation    -> BENCH_detector.json
#   make bench-explore   exploration ablation      -> BENCH_explore.json
#   make bench-predict   prediction ablation       -> BENCH_predict.json
#   make bench-interp    engine ablation           -> BENCH_interp.json
#   make bench-summary   fold BENCH_*.json streams -> BENCH_summary.json

GO ?= go
GOFMT ?= gofmt

.PHONY: ci build vet test race serve-gate persist-gate replica-gate loadtest faults predict engine-diff \
	fmt-check golden golden-bytecode golden-update profile bench bench-smoke \
	bench-pipeline bench-detector bench-explore bench-predict bench-interp \
	bench-summary clean

ci: build vet race serve-gate persist-gate replica-gate faults predict engine-diff golden-bytecode

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test and subtest execution order so hidden
# inter-test coupling surfaces instead of fossilizing; the chosen seed is
# printed at the top of each package's output (`-test.shuffle N`), so a
# CI failure is reproducible with `go test -shuffle=N`.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Analysis-service gate (docs/SERVE.md): the serve suite under -race —
# queue backpressure (429 + Retry-After), tenant quotas, graceful drain
# finishing in-flight jobs, cross-submission resume determinism, and the
# cmd/owl output-parity check — plus the live-scrape contract of the
# metrics collector the /metrics endpoint depends on.
serve-gate:
	$(GO) test -race -count=1 -shuffle=on ./internal/serve/ ./internal/metrics/
	@echo "serve gate passed"

# Durable-store gate (docs/SERVE.md, docs/ROBUSTNESS.md): the persist
# layer's checkpoint+WAL frame suite and the serve-level crash-recovery
# tests under -race — restart-resume parity against a never-restarted
# server, kill-without-drain WAL replay, the disk-fault matrix (torn
# write, bit flip, short write, fsync error), LRU eviction with and
# without rehydration, drain racing live SSE subscribers, and
# checkpoint-while-absorbing — then the process-level smoke: the real
# binary SIGKILLed mid-life, fsck'd, restarted, and resumed.
persist-gate:
	$(GO) test -race -count=1 -shuffle=on ./internal/serve/persist/
	$(GO) test -race -count=1 ./internal/serve/ \
		-run 'Persist|Restart|Kill|DiskFault|Eviction|Drain|Checkpoint|Fsck'
	$(GO) test -count=1 ./cmd/owl-serve/
	@echo "durable-store gate passed"

# Fleet-replication gate (docs/SERVE.md): the peer-client suite under
# -race (retry/backoff, health cooldown, gzip negotiation, latest-wins
# offer queue), then the serve-level state-exchange tests — endpoint
# error paths, fleet warm-start end to end, anti-entropy convergence,
# the network-fault matrix (peer down, slow, truncated, corrupt blob,
# stale seq — a submission must never fail because of a peer), and
# concurrent fetch-vs-evict — plus the faultinject suite the network
# fault plans ride on.
replica-gate:
	$(GO) test -race -count=1 -shuffle=on ./internal/serve/replicate/
	$(GO) test -race -count=1 ./internal/serve/ \
		-run 'Replica|State|Peer|Fleet|AntiEntropy|StaleSeq|JobsAndMetricsMethods'
	$(GO) test -race -count=1 ./internal/faultinject/
	@echo "fleet-replication gate passed"

# In-process load harness (tools/loadgen): ~1000 concurrent submissions
# through the full HTTP path of the analysis service; p50/p99/mean
# latency and sustained throughput land in BENCH_serve.json as a
# test2json stream bench-summary folds in with the other benchmarks.
# CI runs the short profile: make loadtest LOADGEN_FLAGS="-profile short".
LOADGEN_FLAGS ?= -profile full
loadtest:
	$(GO) run ./tools/loadgen $(LOADGEN_FLAGS) > BENCH_serve.json

# Fault-injection gate (docs/ROBUSTNESS.md): the supervisor/fault suites
# under -race, then the three canned plans in testdata/faults/ driven
# through the owl CLI — a degraded pipeline must exit 0 with partial
# results, a -fail-fast one must error naming the faulted stage, and the
# transient plan must be fully absorbed by one retry.
faults:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/supervise/ \
		-run .
	$(GO) test -race -count=1 ./internal/owl/ \
		-run 'Fault|Timeout|Retr|StepBudget|Canned'
	$(GO) run ./cmd/owl -workload libsafe \
		-faults testdata/faults/detect-panic-vulnverify-timeout.json \
		-stage-timeout 5s -metrics /dev/null > /dev/null
	@if $(GO) run ./cmd/owl -workload libsafe \
		-faults testdata/faults/detect-panic-vulnverify-timeout.json \
		-stage-timeout 5s -fail-fast > /dev/null 2>&1; then \
		echo "fail-fast run unexpectedly succeeded"; exit 1; fi
	$(GO) run ./cmd/owl -workload libsafe \
		-faults testdata/faults/transient-retry.json -retries 1 > /dev/null
	$(GO) run ./cmd/owl -workload libsafe \
		-faults testdata/faults/max-steps-squeeze.json > /dev/null
	@echo "fault-injection gate passed"

# Prediction gate (docs/PREDICTION.md): the predictor, recorder, and
# confirmation suites under -race (vclock rides along for the epoch
# range guards the predictor leans on), then the pipeline-level predict
# tests — including the confirm-differential gate asserting every
# confirmed prediction is also reported by plain exploration at 4x the
# budget (zero confirmed false positives) and the determinism gate
# across worker counts and snapshot-cache settings.
predict:
	$(GO) test -race -count=1 ./internal/predict/ ./internal/vclock/
	$(GO) test -race -count=1 ./internal/owl/ -run 'Predict'
	@echo "prediction gate passed"

# Cross-engine differential gate (docs/BYTECODE.md): the bytecode
# compiler suite, the randomized program × schedule transcript grid
# (byte-identical events, faults, output, schedule, arena fingerprint,
# and stacks across engines), the zero-allocation compiled-step pins,
# the cross-engine snapshot interchange, and the engine-parity flag
# tests on both binaries.
engine-diff:
	$(GO) test -race -count=1 ./internal/bytecode/
	$(GO) test -race -count=1 ./internal/race/ -run 'Differential|Bytecode'
	$(GO) test -race -count=1 ./internal/interp/ -run 'Engine|Snapshot'
	$(GO) test -count=1 ./internal/vulnverify/ ./internal/cliflags/ ./cmd/owl/ ./cmd/owl-tables/ -run 'Engine|Parity|Defaults'
	@echo "cross-engine differential gate passed"

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The golden gate: the stable (timing-elided) owl-tables output is
# committed under testdata/golden and must reproduce byte for byte.
GOLDEN := testdata/golden/owl-tables.txt

golden:
	$(GO) run ./cmd/owl-tables -noise light -stable > BENCH_golden_actual.txt
	diff -u $(GOLDEN) BENCH_golden_actual.txt
	@rm -f BENCH_golden_actual.txt
	@echo "golden output matches"

# The engines are observably identical, so the bytecode engine must
# reproduce the same committed fixture byte for byte — no separate
# golden file exists on purpose.
golden-bytecode:
	$(GO) run ./cmd/owl-tables -noise light -stable -engine bytecode > BENCH_golden_bytecode.txt
	diff -u $(GOLDEN) BENCH_golden_bytecode.txt
	@rm -f BENCH_golden_bytecode.txt
	@echo "golden output matches under -engine=bytecode"

golden-update:
	mkdir -p testdata/golden
	$(GO) run ./cmd/owl-tables -noise light -stable > $(GOLDEN)

# Flame-graph starting point for perf work: CPU + heap pprof profiles of
# the pipeline on a mid-size workload under the compiled engine.
# Inspect with `go tool pprof cpu.pprof` (see README).
PROFILE_ARGS ?= -workload mysql -engine bytecode -runs 64
profile:
	$(GO) run ./cmd/owl $(PROFILE_ARGS) -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof"

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Every benchmark in the repo exactly once: a cheap CI smoke proving the
# harnesses still run; the -json stream lands in BENCH_smoke.json.
bench-smoke:
	$(GO) test -json -run '^$$' -bench . -benchtime 1x -benchmem ./... > BENCH_smoke.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_smoke.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# One build per variant (-benchtime 1x): the ablation compares sequential
# vs workers={1,4,NumCPU} wall clock on the full workload registry. The
# -json stream (newline-delimited test2json) lands in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -json -run '^$$' -bench 'BenchmarkParallelPipeline' -benchtime 1x . > BENCH_pipeline.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_pipeline.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Detector ablation (DESIGN.md §5 entry 6): epoch shadow words + lazy
# stack capture (DetectorOverhead) vs full vector clocks + eager stacks
# (DetectorFullVC) vs epoch words + eager stacks (DetectorEagerStacks),
# against the no-detector baseline; -benchmem records allocs/op so the
# zero-allocation hot-path claim is visible in the numbers. The -json
# stream (newline-delimited test2json) lands in BENCH_detector.json.
bench-detector:
	$(GO) test -json -run '^$$' -bench 'BenchmarkDetector|BenchmarkBaselineNoDetector' -benchmem ./internal/race > BENCH_detector.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_detector.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Exploration ablation (docs/EXPLORATION.md): the fixed-seed detect loop
# vs the coverage-guided portfolio engine at the same run budget. The
# benchmark itself asserts the acceptance gate (coverage finds >= races
# everywhere and strictly more somewhere, or early-stops cheaper). The
# -json stream (newline-delimited test2json) lands in BENCH_explore.json.
bench-explore:
	$(GO) test -json -run '^$$' -bench 'BenchmarkExploration' -benchtime 1x . > BENCH_explore.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_explore.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Prediction ablation (docs/PREDICTION.md): plain coverage-guided
# exploration vs predict-then-confirm at the same run budget on the same
# corpus as bench-explore. The benchmark asserts the acceptance gate
# (prediction finds >= races per workload while executing measurably
# fewer schedules). The -json stream lands in BENCH_predict.json.
bench-predict:
	$(GO) test -json -run '^$$' -bench 'BenchmarkPrediction' -benchtime 1x . > BENCH_predict.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_predict.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Interpreter-engine ablation (docs/BYTECODE.md): the tree-walking
# oracle vs the compiled bytecode engine — the per-step microbenchmark
# pair (BenchmarkBaselineNoDetector{,Bytecode}, plus the detector-attached
# variants) and the pipeline-level corpus ablation asserting identical
# findings. The -json stream lands in BENCH_interp.json.
bench-interp:
	$(GO) test -json -run '^$$' -bench 'BenchmarkBaselineNoDetector|BenchmarkDetectorOverhead' -benchmem ./internal/race > BENCH_interp.json
	$(GO) test -json -run '^$$' -bench 'BenchmarkEngineAblation' -benchtime 1x . >> BENCH_interp.json
	@sed -n 's/.*"Output":"\(.*\)"}$$/\1/p' BENCH_interp.json | tr -d '\n' | xargs -0 printf '%b' | grep -E 'Benchmark.*op' || true

# Distill whatever BENCH_*.json test2json streams exist into one
# machine-readable BENCH_summary.json: {source, name, ns/op, B/op,
# allocs/op} rows (internal/benchfmt). CI runs it after the bench
# targets so the artifact carries the summary alongside the raw streams.
bench-summary:
	$(GO) run ./tools/benchsummary

clean:
	rm -f BENCH_pipeline.json BENCH_detector.json BENCH_explore.json \
		BENCH_predict.json BENCH_interp.json BENCH_smoke.json BENCH_serve.json \
		BENCH_summary.json BENCH_golden_actual.txt BENCH_golden_bytecode.txt \
		cpu.pprof mem.pprof
