# Tier-1 gate and benchmark targets for the OWL reproduction.
#
#   make ci              build + vet + test -race (the tier-1 gate)
#   make test            plain test run
#   make bench           full benchmark suite (tables, figures, ablations)
#   make bench-pipeline  parallel-speedup ablation -> BENCH_pipeline.json

GO ?= go

.PHONY: ci build vet test race bench bench-pipeline clean

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One build per variant (-benchtime 1x): the ablation compares sequential
# vs workers={1,4,NumCPU} wall clock on the full workload registry. The
# -json stream (newline-delimited test2json) lands in BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -json -run '^$$' -bench 'BenchmarkParallelPipeline' -benchtime 1x . > BENCH_pipeline.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_pipeline.json | sed 's/"Output":"//;s/\\n//' || true

clean:
	rm -f BENCH_pipeline.json
