// Command loadgen is the in-process load harness behind `make loadtest`:
// it stands up the serve API (handler-level, no sockets), drives
// thousands of concurrent submissions through the full HTTP path —
// submit, 429-with-Retry-After backoff, poll to completion — and emits
// a test2json-compatible stream of BenchmarkServeLoadtest rows (p50/p99/
// mean submit-to-done latency and sustained throughput) plus the serve
// counter totals, so `make bench-summary` folds BENCH_serve.json in
// with the other benchmark streams unchanged.
//
// The workload mix deliberately resubmits a small program set over and
// over: that is the service's design center (accumulated exploration
// state), so the steady state measures *resumed* analyses and the
// serve.resume_hits counter must come back hot.
//
// After the load phase the harness runs the fleet warm-start scenario
// (unless -fleet=false): the same repeat-heavy program mix is routed
// across N replicas three times — one single server (the byte-identity
// reference), N isolated replicas, and N replicas peered via -peers
// style replication — and the run fails unless the peered fleet
// executes at least 30% fewer schedules than the isolated one, at
// least one program was warmed by a peer fetch, and every job's
// analysis summary is byte-identical to the single-server reference.
// The totals land as BenchmarkServeFleet rows in the same stream.
//
// Usage:
//
//	loadgen [-submissions 5000] [-concurrency 1000] [-profile full|short]
//	        [-shards 8] [-queue 256] [-quota 0] [-tcp] [-fleet]
//	        [-replicas 3] > BENCH_serve.json
//
// By default everything runs in-process at the handler level (the CI
// default: no ports, no flaky socket limits). -tcp binds every server
// — load phase, restart phase, and all fleet replicas — to real
// 127.0.0.1 listeners and drives them through net/http clients, so the
// same harness doubles as a smoke test of the wire path.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/conanalysis/owl/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type counters struct {
	completed   atomic.Int64
	failed      atomic.Int64
	rejected429 atomic.Int64
	retries     atomic.Int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	submissions := fs.Int("submissions", 5000, "total jobs to push through the service")
	concurrency := fs.Int("concurrency", 1000, "concurrent submitter goroutines")
	profile := fs.String("profile", "full", "full | short (short halves the job count for CI)")
	shards := fs.Int("shards", 8, "server shard count")
	queue := fs.Int("queue", 256, "per-shard queue depth")
	quota := fs.Int("quota", 0, "per-tenant quota (0 = effectively unlimited for the load mix)")
	tenants := fs.Int("tenants", 16, "distinct tenants in the submission mix")
	restart := fs.Bool("restart", true, "after the load phase, simulate kill -9 and verify resume hits continue from disk")
	tcp := fs.Bool("tcp", false, "drive real 127.0.0.1 listeners instead of in-process handlers")
	fleet := fs.Bool("fleet", true, "run the multi-replica warm-start scenario after the load phase")
	replicas := fs.Int("replicas", 3, "replica count for the fleet scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := *submissions
	if *profile == "short" {
		n = 1200
	} else if *profile != "full" {
		return fmt.Errorf("unknown profile %q", *profile)
	}
	conc := *concurrency
	if conc > n {
		conc = n
	}
	q := *quota
	if q == 0 {
		// The point of the harness is queue backpressure, not quota
		// starvation: give every tenant room for its share of the fleet.
		q = conc
	}
	if *replicas < 2 {
		return fmt.Errorf("-replicas must be at least 2")
	}

	stateDir := ""
	if *restart {
		dir, err := os.MkdirTemp("", "owl-serve-load-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	cfg := serve.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		TenantQuota: q,
		SnapEntries: 64,
		RetryAfter:  10 * time.Millisecond,
		StateDir:    stateDir,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	tg, stop, err := newTarget(srv.Handler(), *tcp)
	if err != nil {
		return err
	}

	// The submission mix: a handful of distinct programs cycled across
	// all jobs, so nearly every job after the warmup is a resume hit.
	specs := mix()

	var c counters
	latencies := make([]time.Duration, n)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				spec := specs[i%len(specs)]
				spec.Tenant = "tenant-" + strconv.Itoa(i%*tenants)
				_, d, err := submitAndWait(tg, spec, &c)
				if err != nil {
					c.failed.Add(1)
					continue
				}
				latencies[i] = d
				c.completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	stop()

	// The kill/restart scenario deliberately skips srv.Shutdown: the
	// first server is abandoned mid-flight (the in-process analogue of
	// kill -9, no drain-time checkpoint), so recovery must come from the
	// WAL. The second server boots from the same state dir and every
	// program in the mix must come back as a resume hit.
	var rs *restartStats
	if *restart {
		rs, err = restartScenario(cfg, specs, *tcp)
		if err != nil {
			return err
		}
	} else if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}

	var fst *fleetStats
	if *fleet {
		fst, err = fleetScenario(*replicas, *tcp)
		if err != nil {
			return err
		}
	}

	return report(os.Stdout, srv, &c, latencies, wall, n, conc, rs, fst)
}

// target is one server the harness can drive: an in-process handler
// (the CI default) or, with -tcp, a real listener's base URL.
type target struct {
	h      http.Handler
	base   string
	client *http.Client
}

// newTarget wraps a handler for the harness. With tcp it binds a real
// 127.0.0.1 listener and returns a closer that tears it down; in
// handler mode the closer is a no-op.
func newTarget(h http.Handler, tcp bool) (*target, func(), error) {
	if !tcp {
		return &target{h: h}, func() {}, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	tr := &http.Transport{MaxIdleConnsPerHost: 256}
	tg := &target{base: "http://" + ln.Addr().String(), client: &http.Client{Transport: tr}}
	return tg, func() { hs.Close(); tr.CloseIdleConnections() }, nil
}

// do pushes one request at the target and returns status and body. The
// body is fully drained before returning, so an SSE stream blocks until
// the server closes it at the terminal event — same semantics as the
// recorder path.
func (t *target) do(method, path string, body []byte) (int, []byte, error) {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	if t.h != nil {
		rec := httptest.NewRecorder()
		t.h.ServeHTTP(rec, httptest.NewRequest(method, path, r))
		return rec.Code, rec.Body.Bytes(), nil
	}
	req, err := http.NewRequest(method, t.base+path, r)
	if err != nil {
		return 0, nil, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// restartStats is what the kill/restart phase measures: how long boot
// recovery took and whether the warm state survived the crash.
type restartStats struct {
	recovery  time.Duration
	resumed   int
	submitted int
}

// restartScenario boots a fresh server over the dead one's state dir,
// resubmits every program in the mix, and requires each to resume from
// the recovered state.
func restartScenario(cfg serve.Config, specs []serve.Spec, tcp bool) (*restartStats, error) {
	cfg.Metrics = nil // fresh collector: count only post-restart activity
	bootStart := time.Now()
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	rs := &restartStats{recovery: time.Since(bootStart)}
	tg, stop, err := newTarget(srv.Handler(), tcp)
	if err != nil {
		return nil, err
	}
	defer stop()
	var c counters
	for _, spec := range specs {
		spec.Tenant = "restart-check"
		if _, _, err := submitAndWait(tg, spec, &c); err != nil {
			return nil, fmt.Errorf("restart resubmission: %w", err)
		}
		rs.submitted++
	}
	for _, cr := range srv.Metrics().Snapshot().Counters {
		if cr.Name == "serve.resume_hits" {
			rs.resumed = int(cr.Value)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	if rs.resumed != rs.submitted {
		return rs, fmt.Errorf("restart: %d/%d resubmissions resumed — state did not survive the crash", rs.resumed, rs.submitted)
	}
	return rs, nil
}

// mix returns the program rotation. Mostly built-in workloads at small
// coverage budgets (seed fixed so repeat submissions resume
// deterministically), plus one inline module exercising the -file path.
func mix() []serve.Spec {
	cov := func(workload string) serve.Spec {
		return serve.Spec{
			Workload: workload,
			Options:  serve.SpecOptions{Explore: "coverage", Budget: 16, Seed: 7},
		}
	}
	const inline = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`
	return []serve.Spec{
		cov("libsafe"),
		cov("apache"),
		cov("ssdb"),
		{Program: inline, Options: serve.SpecOptions{Explore: "coverage", Budget: 16, Seed: 7}},
	}
}

// submitAndWait pushes one job through the HTTP path: POST with
// Retry-After-honoring backoff, then a blocking GET of the job's SSE
// stream — the stream handler parks in a channel select until the job
// reaches a terminal state, so a thousand concurrent waiters cost no
// CPU (busy-polling the status endpoint starves the shard workers on
// small machines). The returned duration is first-submit-attempt to
// done — queueing and backpressure time counts, exactly what a client
// experiences.
func submitAndWait(tg *target, spec serve.Spec, c *counters) (serve.JobStatus, time.Duration, error) {
	var st serve.JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, 0, err
	}
	start := time.Now()
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		code, resp, err := tg.do("POST", "/v1/jobs", body)
		if err != nil {
			return st, 0, err
		}
		if code == http.StatusAccepted {
			if err := json.Unmarshal(resp, &st); err != nil {
				return st, 0, err
			}
			break
		}
		if code == http.StatusTooManyRequests {
			c.rejected429.Add(1)
			c.retries.Add(1)
			if attempt > 10_000 {
				return st, 0, fmt.Errorf("starved after %d attempts", attempt)
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return st, 0, fmt.Errorf("submit: status %d: %s", code, resp)
	}
	code, resp, err := tg.do("GET", "/v1/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		return st, 0, err
	}
	if code != http.StatusOK {
		return st, 0, fmt.Errorf("stream: status %d", code)
	}
	final, err := lastSSEData(string(resp))
	if err != nil {
		return st, 0, err
	}
	if err := json.Unmarshal([]byte(final), &st); err != nil {
		return st, 0, err
	}
	switch st.State {
	case serve.StateDone:
		return st, time.Since(start), nil
	case serve.StateFailed:
		return st, 0, fmt.Errorf("job failed: %s", st.Error)
	default:
		return st, 0, fmt.Errorf("stream ended in state %q", st.State)
	}
}

// lastSSEData returns the data payload of the final event in a complete
// SSE body.
func lastSSEData(body string) (string, error) {
	var last string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "data: ") {
			last = strings.TrimPrefix(line, "data: ")
		}
	}
	if last == "" {
		return "", fmt.Errorf("stream carried no events")
	}
	return last, nil
}

// ---------------------------------------------------------------------------
// Fleet warm-start scenario
// ---------------------------------------------------------------------------

// fleetStats is what the multi-replica scenario measures: total
// executed schedules per topology, how the warmth moved, and whether
// the analysis results stayed byte-identical.
type fleetStats struct {
	replicas     int
	programs     int
	jobs         int
	single       int64 // one server, whole schedule — byte-identity reference
	isolated     int64 // N replicas, no peers
	fleet        int64 // N replicas peered
	fetchHits    int64 // cold misses warmed by a peer fetch
	serveHits    int64 // state blobs served to peers
	savings      float64
	identical    bool
	isolatedWall time.Duration
	fleetWall    time.Duration
}

// fleetMix is the repeat-heavy program set the fleet scenario routes
// across replicas. Heavier on programs whose exploration saturates
// (libsafe at both noise levels and two small inline modules resume to
// a fixed dry-round floor no matter the budget) with two larger
// workloads for diversity. apache and ssdb are deliberately absent:
// their high-budget summaries are not stable across resumed runs, and
// the scenario demands byte-identity.
func fleetMix() []serve.Spec {
	cov := func(workload, noise string, budget int) serve.Spec {
		return serve.Spec{
			Workload: workload,
			Noise:    noise,
			Options:  serve.SpecOptions{Explore: "coverage", Budget: budget, Seed: 7},
		}
	}
	const inlineA = `
global @x = 0
global @y = 0

func @worker() {
entry:
  store 1, @x
  %a = load @y
  store 2, @y
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  store 5, @y
  %w = load @y
  %r = call @join(%t)
  ret 0
}
`
	const inlineB = `
global @a = 0
global @b = 0

func @writer() {
entry:
  store 7, @a
  store 8, @b
  %x = load @a
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@writer)
  %p = load @b
  store 9, @a
  %q = load @a
  %r = call @join(%t)
  ret 0
}
`
	return []serve.Spec{
		cov("libsafe", "", 48),
		cov("libsafe", "full", 48),
		{Program: inlineA, Options: serve.SpecOptions{Explore: "coverage", Budget: 48, Seed: 7}},
		{Program: inlineB, Options: serve.SpecOptions{Explore: "coverage", Budget: 48, Seed: 7}},
		cov("memcached", "", 24),
		cov("mysql", "", 24),
	}
}

// fleetSlot is one submission in the fleet schedule: which program and
// which replica receives it.
type fleetSlot struct{ spec, replica int }

// fleetSchedule routes every program to every replica exactly once —
// the repeat-heavy shape the fleet exists for — in a seeded random
// order, so the replica that pays a program's cold start varies across
// programs but is identical between the isolated and peered passes.
func fleetSchedule(nspecs, replicas int) []fleetSlot {
	slots := make([]fleetSlot, 0, nspecs*replicas)
	for p := 0; p < nspecs; p++ {
		for r := 0; r < replicas; r++ {
			slots = append(slots, fleetSlot{p, (p + r) % replicas})
		}
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return slots
}

// fleetTransport routes peer requests between in-process replicas: the
// host part of a peer URL ("replica-0") selects a registered handler.
// This is the handler-level analogue of the real wire — the replicate
// client still builds full HTTP requests and parses full responses.
type fleetTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
}

func (ft *fleetTransport) register(host string, h http.Handler) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.handlers[host] = h
}

func (ft *fleetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	h := ft.handlers[req.URL.Host]
	ft.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("no such replica %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// timingLine matches the one wall-clock line in an analysis summary; it
// differs between any two runs, so byte-identity is checked modulo it
// (same normalization as the serve parity tests).
var timingLine = regexp.MustCompile(`(?m)^(static analysis time:\s*).*$`)

func normalizeTiming(s string) string {
	return timingLine.ReplaceAllString(s, "${1}X")
}

// fleetScenario proves the warm-start claim end to end. It runs the
// same routed schedule three times — single server, N isolated
// replicas, N peered replicas — and fails the run unless the peered
// fleet executed ≥30% fewer schedules than the isolated one, at least
// one replica was warmed by a peer fetch, and every job's summary is
// byte-identical to the single-server reference.
func fleetScenario(replicas int, tcp bool) (*fleetStats, error) {
	specs := fleetMix()
	slots := fleetSchedule(len(specs), replicas)
	singleSlots := make([]fleetSlot, len(slots))
	for i, sl := range slots {
		singleSlots[i] = fleetSlot{sl.spec, 0}
	}

	single, err := runFleetPass(1, false, tcp, specs, singleSlots)
	if err != nil {
		return nil, fmt.Errorf("fleet reference pass: %w", err)
	}
	isolated, err := runFleetPass(replicas, false, tcp, specs, slots)
	if err != nil {
		return nil, fmt.Errorf("fleet isolated pass: %w", err)
	}
	peered, err := runFleetPass(replicas, true, tcp, specs, slots)
	if err != nil {
		return nil, fmt.Errorf("fleet peered pass: %w", err)
	}

	fst := &fleetStats{
		replicas:     replicas,
		programs:     len(specs),
		jobs:         len(slots),
		single:       single.schedules,
		isolated:     isolated.schedules,
		fleet:        peered.schedules,
		fetchHits:    peered.fetchHits,
		serveHits:    peered.serveHits,
		isolatedWall: isolated.wall,
		fleetWall:    peered.wall,
		identical:    true,
	}
	for i := range slots {
		if peered.summaries[i] != single.summaries[i] {
			fst.identical = false
			break
		}
	}
	fst.savings = 1 - float64(fst.fleet)/float64(fst.isolated)

	if fst.fleet >= fst.isolated {
		return fst, fmt.Errorf("fleet: peered replicas executed %d schedules, isolated %d — replication saved nothing", fst.fleet, fst.isolated)
	}
	if fst.savings < 0.30 {
		return fst, fmt.Errorf("fleet: savings %.1f%% below the 30%% warm-start target (peered %d vs isolated %d)", 100*fst.savings, fst.fleet, fst.isolated)
	}
	if fst.fetchHits == 0 {
		return fst, fmt.Errorf("fleet: no replica cold start was warmed by a peer fetch")
	}
	if !fst.identical {
		return fst, fmt.Errorf("fleet: analysis summaries diverged from the single-server reference")
	}
	return fst, nil
}

// passResult is one topology's run of the fleet schedule.
type passResult struct {
	schedules int64
	summaries []string
	fetchHits int64
	serveHits int64
	wall      time.Duration
}

// runFleetPass stands up n replicas (peered or not), drives the routed
// schedule through them sequentially, and sums executed schedules and
// replication counters. Every replica gets its own state directory:
// with persistence on, anti-entropy pushes ride the checkpoint-fold and
// drain cadence only, so mid-pass warmth must arrive via the cold-miss
// fetch path — the thing the scenario is proving.
func runFleetPass(n int, peered, tcp bool, specs []serve.Spec, slots []fleetSlot) (pr passResult, err error) {
	urls := make([]string, n)
	var ft *fleetTransport
	var lns []net.Listener
	if tcp {
		lns = make([]net.Listener, n)
		for i := range lns {
			if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
				return pr, err
			}
			urls[i] = "http://" + lns[i].Addr().String()
		}
	} else {
		ft = &fleetTransport{handlers: map[string]http.Handler{}}
		for i := range urls {
			urls[i] = fmt.Sprintf("http://replica-%d", i)
		}
	}

	servers := make([]*serve.Server, n)
	targets := make([]*target, n)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		dir, derr := os.MkdirTemp("", "owl-fleet-")
		if derr != nil {
			return pr, derr
		}
		stops = append(stops, func() { os.RemoveAll(dir) })
		cfg := serve.Config{
			Shards:      2,
			QueueDepth:  64,
			TenantQuota: 64,
			SnapEntries: 64,
			RetryAfter:  5 * time.Millisecond,
			StateDir:    dir,
		}
		if peered {
			for j, u := range urls {
				if j != i {
					cfg.Peers = append(cfg.Peers, u)
				}
			}
			cfg.PeerBackoff = time.Millisecond
			if !tcp {
				cfg.PeerClient = &http.Client{Transport: ft}
			}
		}
		srv, serr := serve.New(cfg)
		if serr != nil {
			return pr, serr
		}
		servers[i] = srv
		h := srv.Handler()
		if tcp {
			hs := &http.Server{Handler: h}
			ln := lns[i]
			go hs.Serve(ln)
			stops = append(stops, func() { hs.Close() })
			targets[i] = &target{base: urls[i], client: &http.Client{}}
		} else {
			ft.register("replica-"+strconv.Itoa(i), h)
			targets[i] = &target{h: h}
		}
	}

	var c counters
	start := time.Now()
	for _, sl := range slots {
		spec := specs[sl.spec]
		spec.Tenant = "fleet"
		st, _, serr := submitAndWait(targets[sl.replica], spec, &c)
		if serr != nil {
			return pr, serr
		}
		pr.schedules += int64(st.Result.ExecutedSchedules)
		pr.summaries = append(pr.summaries, normalizeTiming(st.Result.SummaryText))
	}
	pr.wall = time.Since(start)

	// Counters are read before shutdown: the drain-time anti-entropy
	// sweep would otherwise add pushes that the pass never relied on.
	for _, srv := range servers {
		for _, cr := range srv.Metrics().Snapshot().Counters {
			switch cr.Name {
			case "serve.replica_fetch_hits":
				pr.fetchHits += cr.Value
			case "serve.replica_serve_hits":
				pr.serveHits += cr.Value
			}
		}
	}
	for _, srv := range servers {
		if err := srv.Shutdown(context.Background()); err != nil {
			return pr, err
		}
	}
	return pr, nil
}

// report writes the BENCH_serve.json stream: benchmark result rows the
// benchfmt parser ingests, wrapped as test2json output events, plus a
// human-readable summary line carrying the counter totals.
func report(w *os.File, srv *serve.Server, c *counters, latencies []time.Duration, wall time.Duration, n, conc int, rs *restartStats, fst *fleetStats) error {
	done := make([]time.Duration, 0, len(latencies))
	for _, d := range latencies {
		if d > 0 {
			done = append(done, d)
		}
	}
	if len(done) == 0 {
		return fmt.Errorf("no submissions completed")
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(done)-1))
		return done[i]
	}
	var sum time.Duration
	for _, d := range done {
		sum += d
	}
	mean := sum / time.Duration(len(done))
	perJob := wall / time.Duration(len(done)) // sustained ns per completed job

	serveCounters := map[string]int64{}
	for _, cr := range srv.Metrics().Snapshot().Counters {
		serveCounters[cr.Name] = cr.Value
	}

	emit := func(format string, args ...any) error {
		ev := struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}{"output", fmt.Sprintf(format, args...)}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(data))
		return err
	}
	rows := []struct {
		name string
		ns   int64
	}{
		{"BenchmarkServeLoadtest/submit_to_done_p50", pct(0.50).Nanoseconds()},
		{"BenchmarkServeLoadtest/submit_to_done_p99", pct(0.99).Nanoseconds()},
		{"BenchmarkServeLoadtest/submit_to_done_mean", mean.Nanoseconds()},
		{"BenchmarkServeLoadtest/sustained_per_job", perJob.Nanoseconds()},
	}
	if rs != nil {
		rows = append(rows, struct {
			name string
			ns   int64
		}{"BenchmarkServeLoadtest/recovery_boot", rs.recovery.Nanoseconds()})
	}
	if fst != nil {
		// Schedule counts ride the ns/op column (benchfmt folds only that
		// unit); the row names carry the real meaning.
		rows = append(rows, []struct {
			name string
			ns   int64
		}{
			{"BenchmarkServeFleet/isolated_total_schedules", fst.isolated},
			{"BenchmarkServeFleet/fleet_total_schedules", fst.fleet},
			{"BenchmarkServeFleet/isolated_wall", fst.isolatedWall.Nanoseconds()},
			{"BenchmarkServeFleet/fleet_wall", fst.fleetWall.Nanoseconds()},
		}...)
	}
	for _, r := range rows {
		if err := emit("%s 1 %d ns/op\n", r.name, r.ns); err != nil {
			return err
		}
	}
	summary := fmt.Sprintf(
		"loadtest: submissions=%d concurrency=%d completed=%d failed=%d throughput=%.1f/s p50=%s p99=%s retries_429=%d resume_hits=%d resume_misses=%d programs=%d",
		n, conc, c.completed.Load(), c.failed.Load(),
		float64(len(done))/wall.Seconds(), pct(0.50), pct(0.99),
		c.rejected429.Load(),
		serveCounters["serve.resume_hits"], serveCounters["serve.resume_misses"],
		len(srv.Programs()),
	)
	if rs != nil {
		summary += fmt.Sprintf(" restart_recovery=%s restart_resumed=%d/%d", rs.recovery, rs.resumed, rs.submitted)
	}
	if err := emit("%s\n", summary); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, summary)
	if fst != nil {
		fsum := fmt.Sprintf(
			"fleet: replicas=%d programs=%d jobs=%d single=%d isolated=%d fleet=%d savings=%.1f%% fetch_hits=%d serve_hits=%d identical=%v",
			fst.replicas, fst.programs, fst.jobs, fst.single, fst.isolated, fst.fleet,
			100*fst.savings, fst.fetchHits, fst.serveHits, fst.identical,
		)
		if err := emit("%s\n", fsum); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, fsum)
	}
	if c.failed.Load() > 0 {
		return fmt.Errorf("%d submissions failed", c.failed.Load())
	}
	if serveCounters["serve.resume_hits"] == 0 {
		return fmt.Errorf("no resume hits — the store is not accumulating state")
	}
	return nil
}
