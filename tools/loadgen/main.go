// Command loadgen is the in-process load harness behind `make loadtest`:
// it stands up the serve API (handler-level, no sockets), drives
// thousands of concurrent submissions through the full HTTP path —
// submit, 429-with-Retry-After backoff, poll to completion — and emits
// a test2json-compatible stream of BenchmarkServeLoadtest rows (p50/p99/
// mean submit-to-done latency and sustained throughput) plus the serve
// counter totals, so `make bench-summary` folds BENCH_serve.json in
// with the other benchmark streams unchanged.
//
// The workload mix deliberately resubmits a small program set over and
// over: that is the service's design center (accumulated exploration
// state), so the steady state measures *resumed* analyses and the
// serve.resume_hits counter must come back hot.
//
// Usage:
//
//	loadgen [-submissions 5000] [-concurrency 1000] [-profile full|short]
//	        [-shards 8] [-queue 256] [-quota 0] > BENCH_serve.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/conanalysis/owl/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type counters struct {
	completed   atomic.Int64
	failed      atomic.Int64
	rejected429 atomic.Int64
	retries     atomic.Int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	submissions := fs.Int("submissions", 5000, "total jobs to push through the service")
	concurrency := fs.Int("concurrency", 1000, "concurrent submitter goroutines")
	profile := fs.String("profile", "full", "full | short (short halves the job count for CI)")
	shards := fs.Int("shards", 8, "server shard count")
	queue := fs.Int("queue", 256, "per-shard queue depth")
	quota := fs.Int("quota", 0, "per-tenant quota (0 = effectively unlimited for the load mix)")
	tenants := fs.Int("tenants", 16, "distinct tenants in the submission mix")
	restart := fs.Bool("restart", true, "after the load phase, simulate kill -9 and verify resume hits continue from disk")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := *submissions
	if *profile == "short" {
		n = 1200
	} else if *profile != "full" {
		return fmt.Errorf("unknown profile %q", *profile)
	}
	conc := *concurrency
	if conc > n {
		conc = n
	}
	q := *quota
	if q == 0 {
		// The point of the harness is queue backpressure, not quota
		// starvation: give every tenant room for its share of the fleet.
		q = conc
	}

	stateDir := ""
	if *restart {
		dir, err := os.MkdirTemp("", "owl-serve-load-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	cfg := serve.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		TenantQuota: q,
		SnapEntries: 64,
		RetryAfter:  10 * time.Millisecond,
		StateDir:    stateDir,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	handler := srv.Handler()

	// The submission mix: a handful of distinct programs cycled across
	// all jobs, so nearly every job after the warmup is a resume hit.
	specs := mix()

	var c counters
	latencies := make([]time.Duration, n)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				spec := specs[i%len(specs)]
				spec.Tenant = "tenant-" + strconv.Itoa(i%*tenants)
				d, err := submitAndWait(handler, spec, &c)
				if err != nil {
					c.failed.Add(1)
					continue
				}
				latencies[i] = d
				c.completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// The kill/restart scenario deliberately skips srv.Shutdown: the
	// first server is abandoned mid-flight (the in-process analogue of
	// kill -9, no drain-time checkpoint), so recovery must come from the
	// WAL. The second server boots from the same state dir and every
	// program in the mix must come back as a resume hit.
	var rs *restartStats
	if *restart {
		rs, err = restartScenario(cfg, specs)
		if err != nil {
			return err
		}
	} else if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}

	return report(os.Stdout, srv, &c, latencies, wall, n, conc, rs)
}

// restartStats is what the kill/restart phase measures: how long boot
// recovery took and whether the warm state survived the crash.
type restartStats struct {
	recovery  time.Duration
	resumed   int
	submitted int
}

// restartScenario boots a fresh server over the dead one's state dir,
// resubmits every program in the mix, and requires each to resume from
// the recovered state.
func restartScenario(cfg serve.Config, specs []serve.Spec) (*restartStats, error) {
	cfg.Metrics = nil // fresh collector: count only post-restart activity
	bootStart := time.Now()
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	rs := &restartStats{recovery: time.Since(bootStart)}
	handler := srv.Handler()
	var c counters
	for _, spec := range specs {
		spec.Tenant = "restart-check"
		if _, err := submitAndWait(handler, spec, &c); err != nil {
			return nil, fmt.Errorf("restart resubmission: %w", err)
		}
		rs.submitted++
	}
	for _, cr := range srv.Metrics().Snapshot().Counters {
		if cr.Name == "serve.resume_hits" {
			rs.resumed = int(cr.Value)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	if rs.resumed != rs.submitted {
		return rs, fmt.Errorf("restart: %d/%d resubmissions resumed — state did not survive the crash", rs.resumed, rs.submitted)
	}
	return rs, nil
}

// mix returns the program rotation. Mostly built-in workloads at small
// coverage budgets (seed fixed so repeat submissions resume
// deterministically), plus one inline module exercising the -file path.
func mix() []serve.Spec {
	cov := func(workload string) serve.Spec {
		return serve.Spec{
			Workload: workload,
			Options:  serve.SpecOptions{Explore: "coverage", Budget: 16, Seed: 7},
		}
	}
	const inline = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`
	return []serve.Spec{
		cov("libsafe"),
		cov("apache"),
		cov("ssdb"),
		{Program: inline, Options: serve.SpecOptions{Explore: "coverage", Budget: 16, Seed: 7}},
	}
}

// submitAndWait pushes one job through the HTTP handler: POST with
// Retry-After-honoring backoff, then a blocking GET of the job's SSE
// stream — the stream handler parks in a channel select until the job
// reaches a terminal state, so a thousand concurrent waiters cost no
// CPU (busy-polling the status endpoint starves the shard workers on
// small machines). The returned duration is first-submit-attempt to
// done — queueing and backpressure time counts, exactly what a client
// experiences.
func submitAndWait(h http.Handler, spec serve.Spec, c *counters) (time.Duration, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var st serve.JobStatus
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusAccepted {
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				return 0, err
			}
			break
		}
		if rec.Code == http.StatusTooManyRequests {
			c.rejected429.Add(1)
			c.retries.Add(1)
			if attempt > 10_000 {
				return 0, fmt.Errorf("starved after %d attempts", attempt)
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return 0, fmt.Errorf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/stream", nil))
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("stream: status %d", rec.Code)
	}
	final, err := lastSSEData(rec.Body.String())
	if err != nil {
		return 0, err
	}
	if err := json.Unmarshal([]byte(final), &st); err != nil {
		return 0, err
	}
	switch st.State {
	case serve.StateDone:
		return time.Since(start), nil
	case serve.StateFailed:
		return 0, fmt.Errorf("job failed: %s", st.Error)
	default:
		return 0, fmt.Errorf("stream ended in state %q", st.State)
	}
}

// lastSSEData returns the data payload of the final event in a complete
// SSE body.
func lastSSEData(body string) (string, error) {
	var last string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "data: ") {
			last = strings.TrimPrefix(line, "data: ")
		}
	}
	if last == "" {
		return "", fmt.Errorf("stream carried no events")
	}
	return last, nil
}

// report writes the BENCH_serve.json stream: benchmark result rows the
// benchfmt parser ingests, wrapped as test2json output events, plus a
// human-readable summary line carrying the counter totals.
func report(w *os.File, srv *serve.Server, c *counters, latencies []time.Duration, wall time.Duration, n, conc int, rs *restartStats) error {
	done := make([]time.Duration, 0, len(latencies))
	for _, d := range latencies {
		if d > 0 {
			done = append(done, d)
		}
	}
	if len(done) == 0 {
		return fmt.Errorf("no submissions completed")
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(done)-1))
		return done[i]
	}
	var sum time.Duration
	for _, d := range done {
		sum += d
	}
	mean := sum / time.Duration(len(done))
	perJob := wall / time.Duration(len(done)) // sustained ns per completed job

	serveCounters := map[string]int64{}
	for _, cr := range srv.Metrics().Snapshot().Counters {
		serveCounters[cr.Name] = cr.Value
	}

	emit := func(format string, args ...any) error {
		ev := struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}{"output", fmt.Sprintf(format, args...)}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(data))
		return err
	}
	rows := []struct {
		name string
		ns   int64
	}{
		{"BenchmarkServeLoadtest/submit_to_done_p50", pct(0.50).Nanoseconds()},
		{"BenchmarkServeLoadtest/submit_to_done_p99", pct(0.99).Nanoseconds()},
		{"BenchmarkServeLoadtest/submit_to_done_mean", mean.Nanoseconds()},
		{"BenchmarkServeLoadtest/sustained_per_job", perJob.Nanoseconds()},
	}
	if rs != nil {
		rows = append(rows, struct {
			name string
			ns   int64
		}{"BenchmarkServeLoadtest/recovery_boot", rs.recovery.Nanoseconds()})
	}
	for _, r := range rows {
		if err := emit("%s 1 %d ns/op\n", r.name, r.ns); err != nil {
			return err
		}
	}
	summary := fmt.Sprintf(
		"loadtest: submissions=%d concurrency=%d completed=%d failed=%d throughput=%.1f/s p50=%s p99=%s retries_429=%d resume_hits=%d resume_misses=%d programs=%d",
		n, conc, c.completed.Load(), c.failed.Load(),
		float64(len(done))/wall.Seconds(), pct(0.50), pct(0.99),
		c.rejected429.Load(),
		serveCounters["serve.resume_hits"], serveCounters["serve.resume_misses"],
		len(srv.Programs()),
	)
	if rs != nil {
		summary += fmt.Sprintf(" restart_recovery=%s restart_resumed=%d/%d", rs.recovery, rs.resumed, rs.submitted)
	}
	if err := emit("%s\n", summary); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, summary)
	if c.failed.Load() > 0 {
		return fmt.Errorf("%d submissions failed", c.failed.Load())
	}
	if serveCounters["serve.resume_hits"] == 0 {
		return fmt.Errorf("no resume hits — the store is not accumulating state")
	}
	return nil
}
