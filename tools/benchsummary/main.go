// benchsummary folds the repo's BENCH_*.json test2json streams into
// BENCH_summary.json (see internal/benchfmt). It lives under tools/ —
// run via `make bench-summary` — to keep the repo's command surface
// (cmd/owl, cmd/owl-tables) limited to the pipeline itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/conanalysis/owl/internal/benchfmt"
)

func main() {
	out := flag.String("out", "BENCH_summary.json", "summary output path")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fatal(err)
		}
	}
	// Never fold a previous summary back into itself.
	in := paths[:0]
	for _, p := range paths {
		if filepath.Base(p) == filepath.Base(*out) || strings.HasPrefix(filepath.Base(p), "BENCH_summary") {
			continue
		}
		in = append(in, p)
	}
	// Lenient on purpose: a bench target that never ran (missing file) or
	// was interrupted (truncated stream) must not zero out the summary —
	// it is skipped, counted, and reported.
	rows, skipped := benchfmt.SummarizeLenient(in)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := benchfmt.WriteSummary(f, rows); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("benchsummary: %d rows from %d streams -> %s\n", len(rows), len(in), *out)
	if skipped.Any() {
		fmt.Printf("benchsummary: skipped %s\n", skipped)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsummary:", err)
	os.Exit(1)
}
