package atomicity

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
)

// detect runs src under the scheduler with the detector attached.
func detect(t *testing.T, src string, s interp.Scheduler) (*Detector, *interp.Machine) {
	t.Helper()
	mod := ir.MustParse("atom_test.oir", src)
	d := NewDetector()
	m, err := interp.New(interp.Config{
		Module: mod, Sched: s, Observers: []interp.Observer{d}, MaxSteps: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	return d, m
}

// rwrSrc is the classic check-then-act: main reads @x twice (check, use);
// the worker's write can land in between.
const rwrSrc = `
global @x = 0

func @worker() {
entry:
  store 5, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %a = load @x
  %b = load @x
  %c = icmp eq %a, %b
  %r = call @join(%t)
  ret 0
}
`

func TestDetectsRWRViolation(t *testing.T) {
	found := false
	for seed := uint64(1); seed <= 40 && !found; seed++ {
		d, _ := detect(t, rwrSrc, sched.NewRandom(seed))
		for _, r := range d.Reports() {
			if r.Kind == KindRWR && r.AddrName == "@x" {
				found = true
			}
		}
	}
	if !found {
		t.Error("R-W-R violation never detected")
	}
}

// wwwSrc: main writes @x twice (intermediate then final); the worker's
// write can clobber the intermediate one.
const wwwSrc = `
global @x = 0

func @worker() {
entry:
  store 9, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @x
  store 2, @x
  %r = call @join(%t)
  ret 0
}
`

func TestDetectsWWWViolation(t *testing.T) {
	found := false
	for seed := uint64(1); seed <= 40 && !found; seed++ {
		d, _ := detect(t, wwwSrc, sched.NewRandom(seed))
		for _, r := range d.Reports() {
			if r.Kind == KindWWW {
				found = true
			}
		}
	}
	if !found {
		t.Error("W-W-W violation never detected")
	}
}

// serializableSrc: only reads race with reads — never a violation.
const serializableSrc = `
global @x = 7

func @worker() {
entry:
  %v = load @x
  ret %v
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %a = load @x
  %b = load @x
  %r = call @join(%t)
  ret 0
}
`

func TestReadOnlyTriplesAreSerializable(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		d, _ := detect(t, serializableSrc, sched.NewRandom(seed))
		if len(d.Reports()) != 0 {
			t.Fatalf("seed %d: read-only triple flagged: %v", seed, d.Reports()[0])
		}
	}
}

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		w1, wr, w2 bool
		want       Kind
		ok         bool
	}{
		{false, true, false, KindRWR, true},
		{true, true, true, KindWWW, true},
		{true, false, true, KindWRW, true},
		{false, true, true, KindRWW, true},
		{false, false, false, 0, false},
		{true, false, false, 0, false}, // W-R-R: remote read after write is serializable
		{false, false, true, 0, false}, // R-R-W: serializable
		{true, true, false, 0, false},  // W-W-R: reads final value, serializable
	}
	for _, c := range cases {
		got, ok := classify(c.w1, c.wr, c.w2)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("classify(%v,%v,%v) = %v,%v want %v,%v",
				c.w1, c.wr, c.w2, got, ok, c.want, c.ok)
		}
	}
}

// TestFeedsAlgorithmOne: the check-then-act violation's read side starts
// Algorithm 1 and reaches the guarded memcpy — the paper's "OWL can
// integrate atomicity detectors to detect more concurrency attacks".
const attackSrc = `
global @len = 0

func @worker() {
entry:
  store 99, @len
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %a = load @len
  %ok = icmp lt %a, 8
  br %ok, copy, out
copy:
  %b = load @len
  %dst = call @malloc(8)
  %src = call @malloc(128)
  %r = call @memcpy(%dst, %src, %b)
  %j1 = call @join(%t)
  ret 0
out:
  %j2 = call @join(%t)
  ret 0
}
`

func TestFeedsAlgorithmOne(t *testing.T) {
	var rep *Report
	for seed := uint64(1); seed <= 60 && rep == nil; seed++ {
		d, _ := detect(t, attackSrc, sched.NewRandom(seed))
		for _, r := range d.Reports() {
			if r.AddrName == "@len" && !r.Second.IsWrite {
				rep = r
			}
		}
	}
	if rep == nil {
		t.Skip("check-then-act interleaving not observed")
	}
	in, stack, ok := ReadSideOf(rep)
	if !ok {
		t.Fatal("no read side")
	}
	mod := in.Fn.Mod
	a := vuln.NewAnalyzer(mod)
	findings := a.Analyze(in, stack)
	found := false
	for _, f := range findings {
		if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc &&
			f.Site.Callee().Name == "memcpy" {
			found = true
		}
	}
	if !found {
		t.Errorf("Algorithm 1 did not reach the memcpy from the violation's read side")
	}
	// The adapter shape must be a usable race report.
	if rr := rep.AsRace(); rr.AddrName != "@len" || rr.ID() == "" {
		t.Errorf("AsRace adapter broken: %+v", rr)
	}
}
