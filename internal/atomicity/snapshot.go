package atomicity

import "github.com/conanalysis/owl/internal/interp"

// Snapshot is an immutable copy of the detector's dynamic state
// (per-address last-local tracking, deduplicated reports with counts).
// MaxGap is configuration, not state, and is not captured. Paired with
// interp.Snapshot it lets schedule exploration fork a run — atomicity
// detector included — at a decision point.
type Snapshot struct {
	state   map[int64]map[interp.ThreadID]lastLocal
	reports []Report
}

// SnapshotState captures the detector's state; the return value
// satisfies the any-typed contract of sched.StateForker without this
// package importing sched.
func (d *Detector) SnapshotState() any {
	s := &Snapshot{
		state:   make(map[int64]map[interp.ThreadID]lastLocal, len(d.state)),
		reports: make([]Report, len(d.order)),
	}
	for addr, perThread := range d.state {
		c := make(map[interp.ThreadID]lastLocal, len(perThread))
		for tid, ll := range perThread {
			c[tid] = *ll
		}
		s.state[addr] = c
	}
	for i, r := range d.order {
		s.reports[i] = *r
	}
	return s
}

// RestoreState replaces the detector's dynamic state with the
// snapshot's (MaxGap is left as configured). It reports false when the
// value is not an atomicity snapshot.
func (d *Detector) RestoreState(state any) bool {
	s, ok := state.(*Snapshot)
	if !ok {
		return false
	}
	d.state = make(map[int64]map[interp.ThreadID]*lastLocal, len(s.state))
	for addr, perThread := range s.state {
		c := make(map[interp.ThreadID]*lastLocal, len(perThread))
		for tid, ll := range perThread {
			v := ll
			c[tid] = &v
		}
		d.state[addr] = c
	}
	// Reports are mutable (Count grows on dedup hits): each restore
	// materializes fresh values and rebuilds the triple-key index.
	d.order = make([]*Report, len(s.reports))
	d.byKey = make(map[tripleKey]*Report, len(s.reports))
	for i := range s.reports {
		r := s.reports[i]
		d.order[i] = &r
		d.byKey[tripleKey{r.First.Instr, r.Remote.Instr, r.Second.Instr, r.Kind}] = &r
	}
	return true
}
