// Package atomicity implements a CTrigger-style atomicity-violation
// detector. The paper names atomicity violations as the other major
// concurrency-bug class and explicitly leaves the integration to future
// work ("Atomicity violations can be detected by other detectors (e.g.,
// CTrigger). By integrating these detectors (future work), OWL's analysis
// and verifier components can detect more concurrency attacks", §8.3).
// This package closes that gap: it watches the interpreter event stream
// for the classic unserializable interleavings of two local accesses to a
// shared location split by a remote access —
//
//	R_local .. W_remote .. R_local   (non-repeatable read)
//	W_local .. W_remote .. W_local   (intermediate write clobbered)
//	W_local .. R_remote .. W_local   (remote sees intermediate state)
//	R_local .. W_remote .. W_local   (stale-premise write)
//
// — and emits reports shaped like race reports, so OWL's Algorithm 1 can
// consume their read side unchanged (see Report.AsRace).
package atomicity

import (
	"fmt"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
)

// Kind classifies the unserializable interleaving.
type Kind int

// Violation kinds, named by the access triple (local, remote, local).
const (
	KindRWR Kind = iota + 1
	KindWWW
	KindWRW
	KindRWW
)

func (k Kind) String() string {
	switch k {
	case KindRWR:
		return "R-W-R (non-repeatable read)"
	case KindWWW:
		return "W-W-W (clobbered intermediate write)"
	case KindWRW:
		return "W-R-W (remote read of intermediate state)"
	case KindRWW:
		return "R-W-W (write from stale premise)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Report is one deduplicated atomicity violation.
type Report struct {
	Kind Kind
	// First/Remote/Second are the three accesses of the triple.
	First, Remote, Second race.Access
	// AddrName labels the shared memory.
	AddrName string
	Count    int
}

// ID identifies the static triple.
func (r *Report) ID() string {
	return fmt.Sprintf("%s | %s | %s | %d",
		r.First.Instr.FullName(), r.Remote.Instr.FullName(),
		r.Second.Instr.FullName(), r.Kind)
}

func (r *Report) String() string {
	return fmt.Sprintf("atomicity violation %s on %s (x%d)\n  local  %s\n  remote %s\n  local  %s",
		r.Kind, r.AddrName, r.Count, r.First, r.Remote, r.Second)
}

// AsRace adapts the violation to a race.Report so OWL's downstream
// components (race verifier input shape, Algorithm 1's read side) can
// consume it: the remote access and the second local access form the
// conflicting pair.
func (r *Report) AsRace() *race.Report {
	return &race.Report{
		Prev:     r.Remote,
		Cur:      r.Second,
		AddrName: r.AddrName,
		Count:    r.Count,
	}
}

// accRec is a stored access: the report-side fields plus a lazily
// materializable call-stack handle. Stacks are only built for the rare
// access that ends up in a new report.
type accRec struct {
	acc  race.Access // Stack stays nil until materialize
	sref interp.StackRef
}

func (a accRec) materialize() race.Access {
	acc := a.acc
	acc.Stack = a.sref.Materialize()
	return acc
}

// lastLocal tracks the most recent access to an address per thread.
type lastLocal struct {
	acc   accRec
	valid bool
	// remote holds an intervening remote access since the local one.
	remote      accRec
	remoteValid bool
}

// tripleKey identifies a static violation for in-run dedup without
// building the ID string: instruction identity is pointer identity
// within one module.
type tripleKey struct {
	first, remote, second *ir.Instr
	kind                  Kind
}

// Detector is an interpreter observer detecting unserializable triples.
// Accesses inside the same mutex critical section as the remote write are
// still reported — like CTrigger, the detector approximates atomicity
// intent from access adjacency, and the dynamic verifier downstream is
// what prunes false alarms.
type Detector struct {
	state map[int64]map[interp.ThreadID]*lastLocal
	byKey map[tripleKey]*Report
	order []*Report
	// MaxGap bounds (in steps) how far apart the first and second local
	// access may be for the triple to count (default 2000); local
	// accesses further apart rarely encode an atomicity assumption.
	MaxGap int
}

var _ interp.Observer = (*Detector)(nil)
var _ interp.StackPolicy = (*Detector)(nil)

// NeedsStack implements interp.StackPolicy: only memory accesses can end
// up in a report.
func (d *Detector) NeedsStack(k interp.EventKind) bool {
	return k == interp.EvRead || k == interp.EvWrite
}

// NewDetector returns a fresh detector.
func NewDetector() *Detector {
	return &Detector{
		state:  make(map[int64]map[interp.ThreadID]*lastLocal),
		byKey:  make(map[tripleKey]*Report),
		MaxGap: 2000,
	}
}

// Reports returns deduplicated violations in first-seen order.
func (d *Detector) Reports() []*Report { return d.order }

// OnEvent implements interp.Observer.
func (d *Detector) OnEvent(m *interp.Machine, e interp.Event) {
	if e.Kind != interp.EvRead && e.Kind != interp.EvWrite {
		return
	}
	isWrite := e.Kind == interp.EvWrite
	acc := accRec{
		acc: race.Access{
			TID: e.TID, IsWrite: isWrite, Addr: e.Addr, Val: e.Val,
			Instr: e.Instr, Step: e.Step,
		},
		sref: e.StackRef(),
	}
	perThread := d.state[e.Addr]
	if perThread == nil {
		perThread = make(map[interp.ThreadID]*lastLocal)
		d.state[e.Addr] = perThread
	}

	// This access is "remote" for every other thread with a pending local
	// access to the same address.
	for tid, ll := range perThread {
		if tid == e.TID || !ll.valid {
			continue
		}
		ll.remote = acc
		ll.remoteValid = true
	}

	// And it is the second local access for this thread, if a remote
	// access intervened.
	ll := perThread[e.TID]
	if ll == nil {
		ll = &lastLocal{}
		perThread[e.TID] = ll
	}
	if ll.valid && ll.remoteValid && e.Step-ll.acc.acc.Step <= d.maxGap() {
		if kind, ok := classify(ll.acc.acc.IsWrite, ll.remote.acc.IsWrite, isWrite); ok {
			d.report(m, kind, ll.acc, ll.remote, acc)
		}
	}
	ll.acc = acc
	ll.valid = true
	ll.remoteValid = false
}

func (d *Detector) maxGap() int {
	if d.MaxGap > 0 {
		return d.MaxGap
	}
	return 2000
}

// classify maps the access triple to a violation kind. The serializable
// triples (R-R-*, *-R-R patterns where the remote access is a read next
// to local reads) are not violations.
func classify(w1, wr, w2 bool) (Kind, bool) {
	switch {
	case !w1 && wr && !w2:
		return KindRWR, true
	case w1 && wr && w2:
		return KindWWW, true
	case w1 && !wr && w2:
		return KindWRW, true
	case !w1 && wr && w2:
		return KindRWW, true
	default:
		return 0, false
	}
}

func (d *Detector) report(m *interp.Machine, kind Kind, first, remote, second accRec) {
	key := tripleKey{first.acc.Instr, remote.acc.Instr, second.acc.Instr, kind}
	if existing, ok := d.byKey[key]; ok {
		existing.Count++
		return
	}
	r := &Report{
		Kind: kind, First: first.materialize(), Remote: remote.materialize(),
		Second:   second.materialize(),
		AddrName: m.Mem().NameFor(second.acc.Addr), Count: 1,
	}
	d.byKey[key] = r
	d.order = append(d.order, r)
}

// ReadSideOf returns the Algorithm-1 starting point for a violation: the
// second local access when it is a read, else the first.
func ReadSideOf(r *Report) (*ir.Instr, callstack.Stack, bool) {
	if !r.Second.IsWrite && r.Second.Instr != nil {
		return r.Second.Instr, r.Second.Stack, true
	}
	if !r.First.IsWrite && r.First.Instr != nil {
		return r.First.Instr, r.First.Stack, true
	}
	return nil, nil, false
}
