package interp

import (
	"fmt"

	"github.com/conanalysis/owl/internal/bytecode"
	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// This file is the compiled execution engine: the token-threaded
// dispatch over internal/bytecode words, the batched run loop, and the
// compiled counterparts of exec's call paths. Fidelity contract: for
// the same scheduler decisions, every observable — events, faults,
// output, schedule trace, step count, arena contents — is identical to
// the tree walker's. exec() is the specification; each case of
// execWord mirrors the corresponding exec case including its fault
// texts and its order of evaluation, emission, and PC advance.

// evalRef resolves a 16-bit value reference in a compiled frame. Slot,
// constant, and global references can never fault; RefOther falls back
// to the operand evaluator for the lazy cases (string interning,
// intrinsic reference ids, unresolvable operands).
func (m *Machine) evalRef(t *Thread, fr *Frame, ref uint16) (int64, *Fault) {
	idx := int(ref & bytecode.RefIdxMask)
	switch ref >> bytecode.RefTagShift {
	case bytecode.RefSlot:
		return fr.Slots[idx], nil
	case bytecode.RefConst:
		return fr.BC.Consts[idx], nil
	case bytecode.RefGlobal:
		return m.globalBase[idx], nil
	}
	// Split out so evalRef stays within the inlining budget: the three
	// hot tags resolve with no call at all.
	return m.evalOther(t, fr, idx)
}

// evalOther is kept out of line (it is the rare, already-expensive
// path) so evalRef itself fits the inliner's budget.
//
//go:noinline
func (m *Machine) evalOther(t *Thread, fr *Frame, idx int) (int64, *Fault) {
	return m.eval(t, fr.BC.Others[idx])
}

// refFast resolves the three never-faulting reference tags with no
// call at all; ok is false for RefOther, which the caller must route
// through evalRef (the slow path's side effects — lazy string
// interning, intrinsic reference ids — must still happen). evalRef
// itself is beyond the inlining budget, so the dispatch loop pairs
// this with an explicit fallback.
func refFast(m *Machine, fr *Frame, ref uint16) (int64, bool) {
	idx := ref & bytecode.RefIdxMask
	switch ref >> bytecode.RefTagShift {
	case bytecode.RefSlot:
		return fr.Slots[idx], true
	case bytecode.RefConst:
		return fr.BC.Consts[idx], true
	case bytecode.RefGlobal:
		return m.globalBase[idx], true
	}
	return 0, false
}

// takeEdge transfers control along a precompiled edge: the target
// block's phi moves for this predecessor as a parallel copy (all
// sources read before any destination is written, like enterBlock),
// then the jump.
func (m *Machine) takeEdge(t *Thread, fr *Frame, e *bytecode.Edge) {
	if len(e.Moves) == 1 {
		// One move needs no buffering to be a parallel copy.
		v, ok := refFast(m, fr, e.Moves[0].Src)
		if !ok {
			v, _ = m.evalRef(t, fr, e.Moves[0].Src)
		}
		fr.Slots[e.Moves[0].Dst] = v
	} else if len(e.Moves) > 0 {
		vals := m.moveBuf[:0]
		for i := range e.Moves {
			// Eval faults are discarded, exactly like enterBlock's phis.
			v, _ := m.evalRef(t, fr, e.Moves[i].Src)
			vals = append(vals, v)
		}
		for i := range e.Moves {
			fr.Slots[e.Moves[i].Dst] = vals[i]
		}
		m.moveBuf = vals[:0]
	}
	fr.prevEdge = e.Idx
	fr.FPC = e.PC
}

// faultAt faults at the frame's current instruction, materializing it
// when the fast path passed nil (fault paths are cold; the hot path
// skips the Instrs load entirely when no observer wants instructions).
func (m *Machine) faultAt(t *Thread, fr *Frame, in *ir.Instr, f *Fault) {
	if in == nil {
		in = fr.BC.Instrs[fr.FPC]
	}
	m.fault(t, in, f)
}

// execWord executes one compiled word for thread t (whose top frame is
// fr). in is the current instruction, or nil when the caller skipped
// loading it (no observers attached): the cold paths that need it —
// faults, calls, allocas — materialize it from fr.BC.Instrs[fr.FPC]
// themselves. Whenever m.hasObs is set the caller passes it non-nil,
// so event emission never sees nil.
func (m *Machine) execWord(t *Thread, fr *Frame, in *ir.Instr, w uint64) {
	bc := fr.BC
	dst := int(w >> bytecode.DstShift & bytecode.DstMask)
	a := uint16(w >> bytecode.AShift)
	b := uint16(w >> bytecode.BShift)

	switch byte(w) {
	case bytecode.OpMove: // const, addr, func
		v, f := m.evalRef(t, fr, a)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		fr.Slots[dst] = v
		fr.FPC++

	case bytecode.OpLoad:
		addr, f := m.evalRef(t, fr, a)
		if f == nil {
			var v int64
			v, f = m.mem.Load(addr)
			if f == nil {
				fr.Slots[dst] = v
				if m.hasObs {
					m.emit(Event{Kind: EvRead, TID: t.ID, Addr: addr, Val: v, Instr: in})
				}
				fr.FPC++
				return
			}
			f.Addr = addr
		}
		m.faultAt(t, fr, in, f)

	case bytecode.OpLoadG:
		// A live global block at offset 0: provably in bounds, never
		// freed — no check needed.
		gb := m.globalBlock[a]
		v := gb.Words[0]
		fr.Slots[dst] = v
		if m.hasObs {
			m.emit(Event{Kind: EvRead, TID: t.ID, Addr: gb.Base, Val: v, Instr: in})
		}
		fr.FPC++

	case bytecode.OpStore:
		val, f := m.evalRef(t, fr, a)
		if f == nil {
			var addr int64
			addr, f = m.evalRef(t, fr, b)
			if f == nil {
				if f = m.mem.Store(addr, val); f == nil {
					if m.hasObs {
						m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: addr, Val: val, Instr: in})
					}
					fr.FPC++
					return
				}
				f.Addr = addr
			}
		}
		m.faultAt(t, fr, in, f)

	case bytecode.OpStoreG:
		val, f := m.evalRef(t, fr, a)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		gb := m.globalBlock[b]
		// Through wordsForWrite so copy-on-write snapshots stay correct.
		m.mem.wordsForWrite(gb)[0] = val
		if m.hasObs {
			m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: gb.Base, Val: val, Instr: in})
		}
		fr.FPC++

	case bytecode.OpBin:
		av, f := m.evalRef(t, fr, a)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		bv, f := m.evalRef(t, fr, b)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		v, f := binOp(ir.BinKind(w>>bytecode.SubShift&bytecode.SubMask), av, bv)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		fr.Slots[dst] = v
		fr.FPC++

	case bytecode.OpCmp:
		av, _ := m.evalRef(t, fr, a)
		bv, _ := m.evalRef(t, fr, b)
		if cmpOp(ir.CmpPred(w>>bytecode.SubShift&bytecode.SubMask), av, bv) {
			fr.Slots[dst] = 1
		} else {
			fr.Slots[dst] = 0
		}
		fr.FPC++

	case bytecode.OpBr:
		c, _ := m.evalRef(t, fr, a)
		taken := c != 0
		if m.hasObs {
			m.emit(Event{Kind: EvBranch, TID: t.ID, Val: boolToInt(taken), Instr: in})
		}
		if taken {
			m.takeEdge(t, fr, &bc.Edges[dst])
		} else {
			m.takeEdge(t, fr, &bc.Edges[b])
		}

	case bytecode.OpJmp:
		m.takeEdge(t, fr, &bc.Edges[dst])

	case bytecode.OpRet:
		var v int64
		if w>>bytecode.SubShift&1 != 0 {
			v, _ = m.evalRef(t, fr, a)
		}
		m.ret(t, v)

	case bytecode.OpAlloca:
		if in == nil {
			in = bc.Instrs[fr.FPC]
		}
		n, _ := m.evalRef(t, fr, a)
		blk := m.mem.Alloc(n, BlockStack, fmt.Sprintf("alloca@%s:%d", fr.Fn.Name, in.Pos.Line), t.Stack())
		fr.Allocas = append(fr.Allocas, blk)
		fr.Slots[dst] = blk.Base
		if m.hasObs {
			m.emit(Event{Kind: EvAlloc, TID: t.ID, Addr: blk.Base, Aux: n, Instr: in})
		}
		fr.FPC++

	case bytecode.OpGep:
		base, f := m.evalRef(t, fr, a)
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		off, _ := m.evalRef(t, fr, b)
		fr.Slots[dst] = base + off
		fr.FPC++

	case bytecode.OpCall:
		m.execCallSite(t, fr, in, &bc.Calls[dst])

	default:
		// OpNop with a non-nil instr encodes an op the compiler does not
		// know; fault exactly like exec's default. (The nil-instr sentinel
		// never reaches execWord — the step loops fault on it first.)
		if in == nil {
			in = bc.Instrs[fr.FPC]
		}
		m.fault(t, in, &Fault{Kind: FaultBadCall, Msg: fmt.Sprintf("unknown op %s", in.Op)})
	}
}

func (m *Machine) execCallSite(t *Thread, fr *Frame, in *ir.Instr, cs *bytecode.CallSite) {
	switch cs.Kind {
	case bytecode.CallLock:
		// Compile-time-recognized single-argument mutex_lock: the body of
		// intrinsic's "mutex_lock" case with the call machinery (argument
		// buffer, string dispatch) stripped.
		addr, f := m.evalRef(t, fr, cs.Args[0])
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		if owner, held := m.lockOwner(addr); held {
			if owner == t.ID {
				m.faultAt(t, fr, in, &Fault{Kind: FaultAbort, Addr: addr,
					Msg: "recursive lock of non-recursive mutex (self deadlock)"})
				return
			}
			t.Status = StatusBlockedMutex
			t.WaitAddr = addr
			m.schedDirty = true
			return // retry when woken
		}
		m.lockAcquire(addr, t.ID)
		if m.hasObs {
			m.emit(Event{Kind: EvAcquire, TID: t.ID, Addr: addr, Instr: in})
		}
		if cs.DstSlot >= 0 {
			fr.Slots[cs.DstSlot] = 0
		}
		fr.FPC++
	case bytecode.CallUnlock:
		// Likewise for mutex_unlock (release event before the wake loop,
		// exactly like the intrinsic body).
		addr, f := m.evalRef(t, fr, cs.Args[0])
		if f != nil {
			m.faultAt(t, fr, in, f)
			return
		}
		if owner, held := m.lockOwner(addr); held && owner == t.ID {
			m.lockRelease(addr)
			if m.hasObs {
				m.emit(Event{Kind: EvRelease, TID: t.ID, Addr: addr, Instr: in})
			}
			for _, w := range m.threads {
				if w.Status == StatusBlockedMutex && w.WaitAddr == addr {
					w.Status = StatusRunnable
					m.schedDirty = true
				}
			}
		}
		if cs.DstSlot >= 0 {
			fr.Slots[cs.DstSlot] = 0
		}
		fr.FPC++
	case bytecode.CallFunc:
		if in == nil {
			in = fr.BC.Instrs[fr.FPC]
		}
		m.callFuncCompiled(t, fr, in, cs, cs.Fn)
	case bytecode.CallIntrinsic:
		if in == nil {
			in = fr.BC.Instrs[fr.FPC]
		}
		m.callIntrinsicCompiled(t, fr, in, cs, cs.Name)
	case bytecode.CallIndirect:
		if in == nil {
			in = fr.BC.Instrs[fr.FPC]
		}
		v := fr.Slots[cs.CalleeSlot]
		if v == 0 {
			m.fault(t, in, &Fault{Kind: FaultNullFuncPtr, Addr: 0,
				Msg: fmt.Sprintf("indirect call through %%%s == NULL", cs.Name)})
			return
		}
		if name, ok := m.intrinsicByRef[v]; ok {
			m.callIntrinsicCompiled(t, fr, in, cs, name)
			return
		}
		fn := m.FuncForRef(v)
		if fn == nil {
			m.fault(t, in, &Fault{Kind: FaultBadCall, Addr: v,
				Msg: fmt.Sprintf("indirect call through %%%s = %d is not a function", cs.Name, v)})
			return
		}
		m.callFuncCompiled(t, fr, in, cs, fn)
	default:
		m.faultAt(t, fr, in, &Fault{Kind: FaultBadCall, Msg: "bad callee operand"})
	}
}

func (m *Machine) callFuncCompiled(t *Thread, fr *Frame, in *ir.Instr, cs *bytecode.CallSite, fn *ir.Func) {
	args := m.argBuf[:0]
	for _, ar := range cs.Args {
		v, f := m.evalRef(t, fr, ar)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		args = append(args, v)
	}
	if m.hasObs {
		m.emit(Event{Kind: EvCall, TID: t.ID, Instr: in})
	}
	fc := m.prog.Funcs[fn]
	nf := &Frame{
		Fn: fn, Block: fn.Entry(), BC: fc, code: fc.Code,
		FPC: fc.EntryPC, Slots: make([]int64, fc.NumSlots),
		prevEdge:  -1,
		CallInstr: in,
		chain:     callstack.PushNode(fr.chain, callstack.Entry{Fn: fr.Fn.Name, Pos: in.Pos}),
	}
	for i, s := range fc.ParamSlots {
		if i < len(args) {
			nf.Slots[s] = args[i]
		}
	}
	m.argBuf = args[:0]
	t.Frames = append(t.Frames, nf)
	t.top = nf
}

func (m *Machine) callIntrinsicCompiled(t *Thread, fr *Frame, in *ir.Instr, cs *bytecode.CallSite, name string) {
	args := m.argBuf[:0]
	for _, ar := range cs.Args {
		v, f := m.evalRef(t, fr, ar)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		args = append(args, v)
	}
	m.argBuf = args[:0]
	m.intrinsic(t, in, name, args, cs.DstSlot)
}

// runBytecode is the batched dispatch loop: Step's protocol — runnable
// scan, scheduler choice, trace append, switch notification, execute —
// unrolled so that the per-step overheads (runnable recomputation,
// interface dispatch on Thread lookup, breakpoint checks) disappear
// from the hot path. With a PlanningScheduler and a calm machine,
// whole windows of choices are planned in one scheduler call and run
// by runPlanned; otherwise each step consults the scheduler
// individually, and superinstruction heads keep control inside
// fusedRun for as long as the scheduler keeps picking the same thread.
// Only entered when no breakpoint is attached; a machine with a
// breakpoint goes through Step.
func (m *Machine) runBytecode() {
	maxSteps := m.cfg.MaxSteps
	sched := m.cfg.Sched
	planner, _ := sched.(PlanningScheduler)
	needInstr := m.hasObs || m.hasSwitch
	pend := ThreadID(-1)
	for {
		if m.exited || m.step >= maxSteps {
			return
		}
		if planner != nil && pend < 0 && !m.schedDirty && !m.anySleeping {
			// A planner that declines to plan (k=0) falls through to one
			// per-step pick, so a run can never spin without progress.
			if len(m.runnableCached()) > 0 && m.runPlanned(planner, needInstr, maxSteps) > 0 {
				continue
			}
			// Empty runnable with nothing sleeping: the slow path below
			// concludes the run.
		}
		var t *Thread
		if pend >= 0 {
			// The scheduler already chose this thread during a fused batch;
			// honor the choice without consulting it again.
			t = m.Thread(pend)
			pend = -1
			if t == nil || !t.Runnable(m.step) {
				// Defensive, mirroring Step: a misbehaving choice falls back
				// to the first runnable thread (the set is still clean).
				t = m.Thread(m.runnableCached()[0])
			}
		} else {
			runnable := m.runnableCached()
			if len(runnable) == 0 {
				wake := -1
				for _, th := range m.threads {
					if th.Status == StatusSleeping && !th.Suspended {
						if wake < 0 || th.SleepUntil < wake {
							wake = th.SleepUntil
						}
					}
				}
				if wake < 0 || wake > maxSteps {
					return
				}
				m.step = wake
				runnable = m.runnableIDs()
				if len(runnable) == 0 {
					return
				}
			}
			tid := sched.Next(runnable, m.step)
			t = m.Thread(tid)
			if t == nil || !t.Runnable(m.step) {
				t = m.Thread(runnable[0])
			}
		}
		if t.Status == StatusSleeping {
			t.Status = StatusRunnable
		}
		m.traceAppend(t.ID)
		fr := t.Top()
		pc := fr.FPC
		w := fr.code[pc]
		var in *ir.Instr
		// Only sentinel words (end-of-block) and unknown-op words encode
		// OpNop, so the opcode alone distinguishes the one nil-instruction
		// case; the hot path skips the Instrs load unless an observer
		// wants instructions.
		if byte(w) == bytecode.OpNop {
			if in = fr.BC.Instrs[pc]; in == nil {
				m.fault(t, nil, &Fault{Kind: FaultBadCall, Msg: "fell off end of block"})
				continue
			}
		} else if needInstr {
			in = fr.BC.Instrs[pc]
		}
		if m.hasSwitch {
			if m.prevTID >= 0 && m.prevTID != t.ID {
				for _, so := range m.cfg.SwitchObservers {
					so.OnSwitch(m, m.prevTID, t.ID, m.prevInstr, in)
				}
			}
			m.prevTID, m.prevInstr = t.ID, in
		}
		m.execWord(t, fr, in, w)
		m.step++
		if n := int(w >> bytecode.FusedShift & bytecode.FusedMask); n > 0 {
			pend = m.fusedRun(t, fr, pc, n)
		}
	}
}

// runPlanned executes one pre-planned window of scheduler choices.
// Preconditions (checked by the caller): machine not exited, below the
// step bound, schedule state clean (no pending status transition, no
// sleeping thread), runnable set non-empty. The window ends at the
// first status transition — the next choice must then see the new
// runnable set, exactly as the per-step protocol would — and the
// consumed prefix is committed to the scheduler via Advance.
//
// Dispatch for the frequent ops is inlined here, mirroring the
// corresponding execWord cases exactly (execWord is the specification;
// any change there must be mirrored here): the inlining elides the
// call and redundant decode on ~80% of steps.
func (m *Machine) runPlanned(ps PlanningScheduler, needInstr bool, maxSteps int) int {
	if m.planBuf == nil {
		m.planBuf = make([]ThreadID, 128)
		m.planSize = 8
	}
	n := m.planSize
	if left := maxSteps - m.step; n > left {
		n = left
	}
	runnable := m.runnableBuf
	startStep := m.step
	k := ps.Plan(runnable, startStep, m.planBuf[:n])
	consumed := 0
	// Superinstruction accounting mirrors fusedRun: a head's batch
	// counts once every component runs back-to-back on the same thread
	// with no disturbance.
	batchLeft, batchN, batchPC := 0, 0, 0
	var batchT *Thread
	var batchFr *Frame
	for consumed < k {
		if m.exited || m.schedDirty || m.anySleeping {
			break
		}
		tid := m.planBuf[consumed]
		t := m.Thread(tid)
		if t == nil || !t.Runnable(m.step) {
			// Defensive, mirroring Step: the set is still clean, so
			// runnable[0] is a live runnable thread.
			t = m.Thread(runnable[0])
		}
		consumed++
		if batchLeft > 0 {
			kth := batchN - batchLeft + 1
			if tid != batchT.ID || batchT.Status != StatusRunnable || batchT.Suspended ||
				batchT.Top() != batchFr || batchFr.FPC != batchPC+kth {
				batchLeft = 0
			}
		}
		m.traceAppend(t.ID)
		fr := t.top
		pc := fr.FPC
		w := fr.code[pc]
		bc := fr.BC
		var in *ir.Instr
		// Only sentinel words (end-of-block) and unknown-op words encode
		// OpNop, so the opcode alone distinguishes the one nil-instruction
		// case; the hot path skips the Instrs load unless an observer
		// wants instructions.
		if byte(w) == bytecode.OpNop {
			if in = bc.Instrs[pc]; in == nil {
				m.fault(t, nil, &Fault{Kind: FaultBadCall, Msg: "fell off end of block"})
				continue
			}
		} else if needInstr {
			in = bc.Instrs[pc]
		}
		if m.hasSwitch {
			if m.prevTID >= 0 && m.prevTID != t.ID {
				for _, so := range m.cfg.SwitchObservers {
					so.OnSwitch(m, m.prevTID, t.ID, m.prevInstr, in)
				}
			}
			m.prevTID, m.prevInstr = t.ID, in
		}
		switch byte(w) {
		case bytecode.OpLoadG:
			gb := m.globalBlock[uint16(w>>bytecode.AShift)]
			v := gb.Words[0]
			fr.Slots[w>>bytecode.DstShift&bytecode.DstMask] = v
			if m.hasObs {
				m.emit(Event{Kind: EvRead, TID: t.ID, Addr: gb.Base, Val: v, Instr: in})
			}
			fr.FPC++
		case bytecode.OpStoreG:
			val, ok := refFast(m, fr, uint16(w>>bytecode.AShift))
			if !ok {
				var f *Fault
				if val, f = m.evalRef(t, fr, uint16(w>>bytecode.AShift)); f != nil {
					m.faultAt(t, fr, in, f)
					break
				}
			}
			gb := m.globalBlock[uint16(w>>bytecode.BShift)]
			m.mem.wordsForWrite(gb)[0] = val
			if m.hasObs {
				m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: gb.Base, Val: val, Instr: in})
			}
			fr.FPC++
		case bytecode.OpBin:
			av, ok := refFast(m, fr, uint16(w>>bytecode.AShift))
			var f *Fault
			if !ok {
				av, f = m.evalRef(t, fr, uint16(w>>bytecode.AShift))
			}
			if f == nil {
				bv, ok := refFast(m, fr, uint16(w>>bytecode.BShift))
				if !ok {
					bv, f = m.evalRef(t, fr, uint16(w>>bytecode.BShift))
				}
				if f == nil {
					var v int64
					if v, f = binOp(ir.BinKind(w>>bytecode.SubShift&bytecode.SubMask), av, bv); f == nil {
						fr.Slots[w>>bytecode.DstShift&bytecode.DstMask] = v
						fr.FPC++
						break
					}
				}
			}
			m.faultAt(t, fr, in, f)
		case bytecode.OpCmp:
			av, ok := refFast(m, fr, uint16(w>>bytecode.AShift))
			if !ok {
				av, _ = m.evalRef(t, fr, uint16(w>>bytecode.AShift))
			}
			bv, ok := refFast(m, fr, uint16(w>>bytecode.BShift))
			if !ok {
				bv, _ = m.evalRef(t, fr, uint16(w>>bytecode.BShift))
			}
			if cmpOp(ir.CmpPred(w>>bytecode.SubShift&bytecode.SubMask), av, bv) {
				fr.Slots[w>>bytecode.DstShift&bytecode.DstMask] = 1
			} else {
				fr.Slots[w>>bytecode.DstShift&bytecode.DstMask] = 0
			}
			fr.FPC++
		case bytecode.OpBr:
			c, ok := refFast(m, fr, uint16(w>>bytecode.AShift))
			if !ok {
				c, _ = m.evalRef(t, fr, uint16(w>>bytecode.AShift))
			}
			taken := c != 0
			if m.hasObs {
				m.emit(Event{Kind: EvBranch, TID: t.ID, Val: boolToInt(taken), Instr: in})
			}
			e := &bc.Edges[uint16(w>>bytecode.BShift)]
			if taken {
				e = &bc.Edges[w>>bytecode.DstShift&bytecode.DstMask]
			}
			if len(e.Moves) == 0 {
				fr.prevEdge = e.Idx
				fr.FPC = e.PC
			} else {
				m.takeEdge(t, fr, e)
			}
		case bytecode.OpJmp:
			e := &bc.Edges[w>>bytecode.DstShift&bytecode.DstMask]
			if len(e.Moves) == 0 {
				fr.prevEdge = e.Idx
				fr.FPC = e.PC
			} else {
				m.takeEdge(t, fr, e)
			}
		default:
			m.execWord(t, fr, in, w)
		}
		m.step++
		if batchLeft > 0 {
			if batchLeft--; batchLeft == 0 {
				m.superinstrHits++
			}
		}
		if bn := int(w >> bytecode.FusedShift & bytecode.FusedMask); bn > 0 && batchLeft == 0 {
			batchLeft, batchN, batchPC = bn, bn, pc
			batchT, batchFr = t, fr
		}
	}
	ps.Advance(runnable, startStep, consumed)
	// Adapt the window to the observed calm interval: a fully-consumed
	// plan doubles it, one cut short shrinks toward what survived, so
	// transition-heavy phases don't pay for discarded plan entries.
	if consumed == k {
		if m.planSize *= 2; m.planSize > len(m.planBuf) {
			m.planSize = len(m.planBuf)
		}
	} else {
		m.planSize = 2 * consumed
		if m.planSize < 8 {
			m.planSize = 8
		}
	}
	return consumed
}

// fusedRun tries to execute the n component words following a
// superinstruction head back-to-back. The scheduler is still consulted
// before every component (schedulers are stateful; traces must be
// identical), so fusion only elides the runnable-set and dispatch
// overhead. Any disturbance — a status change, a control transfer out
// of the straight-line sequence, the scheduler preferring another
// thread — abandons the batch. Returns the thread the scheduler chose
// for another thread (-1 if none), whose choice the caller must honor.
func (m *Machine) fusedRun(t *Thread, fr *Frame, pc, n int) ThreadID {
	sched := m.cfg.Sched
	for k := 1; k <= n; k++ {
		if m.exited || m.step >= m.cfg.MaxSteps || m.schedDirty || m.anySleeping ||
			t.Status != StatusRunnable || t.Suspended || t.Top() != fr || fr.FPC != pc+k {
			return -1
		}
		tid := sched.Next(m.runnableBuf, m.step)
		if tid != t.ID {
			return tid
		}
		m.traceAppend(t.ID)
		var in *ir.Instr
		if m.hasObs || m.hasSwitch {
			in = fr.BC.Instrs[fr.FPC]
		}
		if m.hasSwitch {
			m.prevTID, m.prevInstr = t.ID, in // same thread: no OnSwitch
		}
		m.execWord(t, fr, in, fr.code[fr.FPC])
		m.step++
	}
	m.superinstrHits++
	return -1
}
