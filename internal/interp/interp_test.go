package interp

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

// rr is a minimal round-robin scheduler local to this package's tests (the
// real schedulers live in internal/sched, which depends on this package).
type rr struct{ last ThreadID }

func (s *rr) Next(runnable []ThreadID, step int) ThreadID {
	for _, id := range runnable {
		if id > s.last {
			s.last = id
			return id
		}
	}
	s.last = runnable[0]
	return runnable[0]
}

// firstSched always runs the lowest-id runnable thread.
type firstSched struct{}

func (firstSched) Next(runnable []ThreadID, step int) ThreadID { return runnable[0] }

func run(t *testing.T, src string, cfg Config) (*Machine, *Result) {
	t.Helper()
	m, r, err := tryRun(src, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, r
}

func tryRun(src string, cfg Config) (*Machine, *Result, error) {
	mod, err := ir.Parse("test.oir", src)
	if err != nil {
		return nil, nil, err
	}
	cfg.Module = mod
	if cfg.Sched == nil {
		cfg.Sched = &rr{last: -1}
	}
	m, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, m.Run(), nil
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
func @main() {
entry:
  %a = const 6
  %b = mul %a, 7
  %c = icmp eq %b, 42
  br %c, yes, no
yes:
  call @print(%b)
  ret 0
no:
  call @print(0)
  ret 1
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 1 || r.Output[0] != "42" {
		t.Errorf("output = %v, want [42]", r.Output)
	}
	if len(r.Faults) != 0 {
		t.Errorf("unexpected faults: %v", r.Faults)
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	src := `
global @g = 5
global @arr [4]

func @main() {
entry:
  %v = load @g
  %v2 = add %v, 1
  store %v2, @g
  %p = addr @arr
  %p3 = gep %p, 3
  store 99, %p3
  %w = load %p3
  call @print(%w)
  ret 0
}
`
	m, r := run(t, src, Config{})
	if r.Output[0] != "99" {
		t.Errorf("output = %v", r.Output)
	}
	if got := m.Mem().Peek(m.GlobalAddr("g")); got != 6 {
		t.Errorf("@g = %d, want 6", got)
	}
}

func TestPhiLoop(t *testing.T) {
	src := `
func @main() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [head2: %i2]
  %s = phi [entry: 0], [head2: %s2]
  %c = icmp lt %i, 5
  br %c, head2, done
head2:
  %s2 = add %s, %i
  %i2 = add %i, 1
  jmp head
done:
  call @print(%s)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "10" {
		t.Errorf("sum 0..4 = %v, want 10", r.Output)
	}
}

func TestCallsAndReturns(t *testing.T) {
	src := `
func @twice(%x) {
entry:
  %y = add %x, %x
  ret %y
}
func @main() {
entry:
  %a = call @twice(21)
  call @print(%a)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "42" {
		t.Errorf("output = %v", r.Output)
	}
}

func TestIndirectCallAndNullFuncPtr(t *testing.T) {
	src := `
global @fptr = 0

func @handler() {
entry:
  call @print(7)
  ret 0
}
func @main() {
entry:
  %f = func @handler
  store %f, @fptr
  %g = load @fptr
  call %g()
  store 0, @fptr
  %h = load @fptr
  call %h()
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 1 || r.Output[0] != "7" {
		t.Errorf("output = %v, want [7]", r.Output)
	}
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultNullFuncPtr {
		t.Fatalf("faults = %v, want one null-func-ptr fault", r.Faults)
	}
}

func TestMemoryFaults(t *testing.T) {
	tests := []struct {
		name string
		body string
		want FaultKind
	}{
		{"null deref", "%v = load 0\n  ret 0", FaultNilDeref},
		{"oob", "%p = call @malloc(2)\n  %q = gep %p, 2\n  store 1, %q\n  ret 0", FaultOOB},
		{"uaf", "%p = call @malloc(2)\n  call @free(%p)\n  %v = load %p\n  ret 0", FaultUseAfterFree},
		{"double free", "%p = call @malloc(2)\n  call @free(%p)\n  call @free(%p)\n  ret 0", FaultDoubleFree},
		{"div zero", "%z = const 0\n  %v = div 1, %z\n  ret 0", FaultDivZero},
		{"assert", "call @assert(0)\n  ret 0", FaultAssert},
		{"bad free", "%p = const 12345\n  call @free(%p)\n  ret 0", FaultBadFree},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "func @main() {\nentry:\n  " + tt.body + "\n}\n"
			_, r := run(t, src, Config{})
			if len(r.Faults) != 1 {
				t.Fatalf("faults = %v, want exactly 1", r.Faults)
			}
			if r.Faults[0].Kind != tt.want {
				t.Errorf("fault kind = %v, want %v", r.Faults[0].Kind, tt.want)
			}
			if r.Faults[0].Stack == nil {
				t.Errorf("fault has no stack")
			}
		})
	}
}

func TestStrcpyAndOverflow(t *testing.T) {
	src := `
global @long = "AAAAAAAAAA"

func @main() {
entry:
  %dst = call @malloc(4)
  %src = addr @long
  call @strcpy(%dst, %src)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultOOB {
		t.Fatalf("faults = %v, want buffer overflow", r.Faults)
	}
}

func TestSpawnJoin(t *testing.T) {
	src := `
global @counter = 0

func @worker(%n) {
entry:
  %v = load @counter
  %v2 = add %v, %n
  store %v2, @counter
  ret %n
}
func @main() {
entry:
  %t1 = call @spawn(@worker, 10)
  %t2 = call @spawn(@worker, 20)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %s = add %r1, %r2
  call @print(%s)
  %c = load @counter
  call @print(%c)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 2 || r.Output[0] != "30" {
		t.Errorf("output = %v, want [30 30]", r.Output)
	}
}

func TestMutexExclusionAndDeadlock(t *testing.T) {
	src := `
global @m = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@m)
  %v = load @x
  %v2 = add %v, 1
  store %v2, @x
  call @mutex_unlock(@m)
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker)
  %t2 = call @spawn(@worker)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %v = load @x
  call @print(%v)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[len(r.Output)-1] != "2" {
		t.Errorf("output = %v, want final 2", r.Output)
	}

	dead := `
global @m = 0
func @main() {
entry:
  call @mutex_lock(@m)
  call @mutex_lock(@m)
  ret 0
}
`
	_, r = run(t, dead, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultAbort {
		t.Errorf("recursive lock: faults = %v, want abort", r.Faults)
	}
}

func TestMutexBlocksUntilUnlock(t *testing.T) {
	src := `
global @m = 0
global @order [4]
global @idx = 0

func @mark(%who) {
entry:
  %i = load @idx
  %p = addr @order
  %q = gep %p, %i
  store %who, %q
  %i2 = add %i, 1
  store %i2, @idx
  ret 0
}
func @worker() {
entry:
  call @mutex_lock(@m)
  call @mark(2)
  call @mutex_unlock(@m)
  ret 0
}
func @main() {
entry:
  call @mutex_lock(@m)
  %t = call @spawn(@worker)
  call @mark(1)
  call @io_delay(5)
  call @mark(1)
  call @mutex_unlock(@m)
  %r = call @join(%t)
  ret 0
}
`
	m, r := run(t, src, Config{})
	if r.Stall != StallDone {
		t.Fatalf("stall = %v, want done", r.Stall)
	}
	base := m.GlobalAddr("order")
	got := []int64{m.Mem().Peek(base), m.Mem().Peek(base + 1), m.Mem().Peek(base + 2)}
	want := []int64{1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v (mutex failed to exclude)", got, want)
		}
	}
}

func TestExitKillsAllThreads(t *testing.T) {
	src := `
func @spinner() {
entry:
  jmp loop
loop:
  call @yield()
  jmp loop
}
func @main() {
entry:
  %t = call @spawn(@spinner)
  call @io_delay(3)
  call @exit(5)
  ret 0
}
`
	_, r := run(t, src, Config{MaxSteps: 10000})
	if r.ExitCode != 5 {
		t.Errorf("exit code = %d, want 5", r.ExitCode)
	}
	if r.MaxStepsHit {
		t.Errorf("exit did not stop the spinner")
	}
}

func TestInputsAndIODelay(t *testing.T) {
	src := `
func @main() {
entry:
  %a = call @input()
  %b = call @input()
  %c = call @input()
  %s = add %a, %b
  %s2 = add %s, %c
  call @print(%s2)
  ret 0
}
`
	_, r := run(t, src, Config{Inputs: []int64{10, 20, 0}})
	if r.Output[0] != "30" {
		t.Errorf("output = %v", r.Output)
	}
}

func TestUIDAndFS(t *testing.T) {
	src := `
func @main() {
entry:
  %u = call @getuid()
  call @print(%u)
  call @setuid(0)
  %fd = call @open("index.html")
  %buf = call @malloc(3)
  call @memset(%buf, 65, 3)
  %n = call @write(%fd, %buf, 3)
  call @print(%n)
  %ok = call @access("index.html")
  call @print(%ok)
  call @exec("/bin/sh")
  ret 0
}
`
	m, r := run(t, src, Config{})
	if r.UID != 0 {
		t.Errorf("uid = %d, want 0 after setuid", r.UID)
	}
	if r.Output[0] != "1000" || r.Output[1] != "3" || r.Output[2] != "1" {
		t.Errorf("output = %v", r.Output)
	}
	f := m.FS().Lookup("index.html")
	if f == nil || len(f.Data) != 3 || f.Data[0] != 65 {
		t.Errorf("file = %+v, want 3 words of 65", f)
	}
	if len(m.ExecLog()) != 1 || m.ExecLog()[0] != "/bin/sh" {
		t.Errorf("exec log = %v", m.ExecLog())
	}
}

func TestScheduleReplayIsDeterministic(t *testing.T) {
	src := `
global @x = 0

func @worker(%v) {
entry:
  store %v, @x
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker, 1)
  %t2 = call @spawn(@worker, 2)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %v = load @x
  call @print(%v)
  ret 0
}
`
	mod := ir.MustParse("test.oir", src)
	first, err := New(Config{Module: mod, Sched: &rr{last: -1}})
	if err != nil {
		t.Fatal(err)
	}
	r1 := first.Run()

	replayer := &traceReplay{trace: r1.Schedule}
	second, err := New(Config{Module: mod, Sched: replayer})
	if err != nil {
		t.Fatal(err)
	}
	r2 := second.Run()
	if len(r1.Output) == 0 || len(r2.Output) == 0 || r1.Output[0] != r2.Output[0] {
		t.Errorf("replay output %v != original %v", r2.Output, r1.Output)
	}
	if len(r1.Schedule) != len(r2.Schedule) {
		t.Errorf("replay schedule length %d != %d", len(r2.Schedule), len(r1.Schedule))
	}
}

type traceReplay struct {
	trace []ThreadID
	pos   int
}

func (s *traceReplay) Next(runnable []ThreadID, step int) ThreadID {
	if s.pos < len(s.trace) {
		want := s.trace[s.pos]
		s.pos++
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
	}
	return runnable[0]
}

func TestEventsEmitted(t *testing.T) {
	src := `
global @g = 0
func @main() {
entry:
  %v = load @g
  store 1, @g
  %c = icmp eq %v, 0
  br %c, a, b
a:
  ret 0
b:
  ret 1
}
`
	var kinds []EventKind
	obs := ObserverFunc(func(m *Machine, e Event) { kinds = append(kinds, e.Kind) })
	mod := ir.MustParse("test.oir", src)
	m, err := New(Config{Module: mod, Sched: firstSched{}, Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	want := []EventKind{EvRead, EvWrite, EvBranch}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestBreakpointSuspendsOneThread(t *testing.T) {
	src := `
global @g = 0
func @worker() {
entry:
  store 7, @g
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  call @io_delay(2)
  store 1, @g
  %r = call @join(%t)
  %v = load @g
  call @print(%v)
  ret 0
}
`
	mod := ir.MustParse("test.oir", src)
	var storeInstr *ir.Instr
	for _, in := range mod.Func("worker").Instrs() {
		if in.Op == ir.OpStore {
			storeInstr = in
		}
	}
	hit := false
	bp := func(m *Machine, th *Thread, in *ir.Instr) BPAction {
		if in == storeInstr && !hit {
			hit = true
			return BPSuspend
		}
		return BPContinue
	}
	m, err := New(Config{Module: mod, Sched: &rr{last: -1}, Breakpoint: bp})
	if err != nil {
		t.Fatal(err)
	}
	for m.Step() {
	}
	if !hit {
		t.Fatal("breakpoint never hit")
	}
	// Main is blocked in join on the suspended worker.
	if got := m.Stall(); got != StallSuspended {
		t.Fatalf("stall = %v, want suspended", got)
	}
	// The suspended worker has not stored yet; the pending access must be
	// visible for hint extraction.
	pa, ok := m.Pending(1)
	if !ok || !pa.IsWrite || pa.Val != 7 {
		t.Fatalf("pending = %+v ok=%v, want write of 7", pa, ok)
	}
	m.Resume(1)
	r := m.Run()
	if r.Stall != StallDone {
		t.Fatalf("stall after resume = %v, want done", r.Stall)
	}
	if r.Output[0] != "7" {
		t.Errorf("output = %v, want [7]", r.Output)
	}
}

func TestAllocaFreedOnReturn(t *testing.T) {
	src := `
global @leak = 0

func @f() {
entry:
  %p = alloca 2
  store 1, %p
  store %p, @leak
  ret 0
}
func @main() {
entry:
  %r = call @f()
  %p = load @leak
  %v = load %p
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultUseAfterFree {
		t.Errorf("faults = %v, want dangling-stack-pointer UAF", r.Faults)
	}
}

func TestStringLiteralArgs(t *testing.T) {
	src := `
func @main() {
entry:
  call @print_str("hello owl")
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 1 || r.Output[0] != "hello owl" {
		t.Errorf("output = %v", r.Output)
	}
}

func TestUnknownFunctionFaults(t *testing.T) {
	src := `
func @main() {
entry:
  call @no_such_fn()
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultUnknownIntrinsic {
		t.Errorf("faults = %v, want unknown function", r.Faults)
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	src := `
func @main() {
entry:
  jmp loop
loop:
  jmp loop
}
`
	_, r := run(t, src, Config{MaxSteps: 50})
	if !r.MaxStepsHit {
		t.Error("expected MaxStepsHit")
	}
	if r.Steps != 50 {
		t.Errorf("steps = %d, want 50", r.Steps)
	}
}

func TestConfigValidation(t *testing.T) {
	mod := ir.MustParse("t.oir", "func @main() {\nentry:\n  ret 0\n}")
	if _, err := New(Config{Module: mod}); err == nil {
		t.Error("want error for missing scheduler")
	}
	if _, err := New(Config{Module: mod, Sched: firstSched{}, Entry: "nope"}); err == nil {
		t.Error("want error for missing entry")
	}
	if _, err := New(Config{Sched: firstSched{}}); err == nil {
		t.Error("want error for missing module")
	}
	unfrozen := ir.NewModule("x")
	if _, err := New(Config{Module: unfrozen, Sched: firstSched{}}); err == nil {
		t.Error("want error for unfrozen module")
	}
}

func TestUnsignedUnderflowSemantics(t *testing.T) {
	// The Apache Figure 8 attack: an unsigned counter decremented past
	// zero becomes 2^64-1-ish and wins every "ult" comparison.
	src := `
global @busy = 0

func @main() {
entry:
  %v = load @busy
  %v2 = sub %v, 2
  store %v2, @busy
  %w = load @busy
  %c = icmp ult 5, %w
  br %c, huge, small
huge:
  call @print(1)
  ret 0
small:
  call @print(0)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "1" {
		t.Errorf("underflowed counter should compare huge; output %v", r.Output)
	}
}

func TestStallDeadlockDetection(t *testing.T) {
	src := `
global @m1 = 0
global @m2 = 0

func @worker() {
entry:
  call @mutex_lock(@m2)
  call @io_delay(10)
  call @mutex_lock(@m1)
  ret 0
}
func @main() {
entry:
  call @mutex_lock(@m1)
  %t = call @spawn(@worker)
  call @io_delay(10)
  call @mutex_lock(@m2)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Stall != StallDeadlock {
		t.Errorf("stall = %v, want deadlock", r.Stall)
	}
}

func TestArenaNameFor(t *testing.T) {
	src := `
global @dying = 0
func @main() {
entry:
  ret 0
}
`
	m, _ := run(t, src, Config{})
	addr := m.GlobalAddr("dying")
	if got := m.Mem().NameFor(addr); got != "@dying" {
		t.Errorf("NameFor = %q, want @dying", got)
	}
	if got := m.Mem().NameFor(0xdeadbeef); !strings.HasPrefix(got, "0x") {
		t.Errorf("NameFor unmapped = %q", got)
	}
}

func TestPhiWithoutMatchingEdgeYieldsZero(t *testing.T) {
	// Entering a block from a predecessor with no phi edge gives 0 (the
	// IR analogue of an undef).
	src := `
func @main() {
entry:
  jmp mid
mid:
  jmp target
target:
  %x = phi [entry: 7]
  call @print(%x)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 1 || r.Output[0] != "0" {
		t.Errorf("output = %v, want [0]", r.Output)
	}
}

func TestGepThroughCorruptedPointerFaults(t *testing.T) {
	src := `
func @main() {
entry:
  %p = call @malloc(2)
  %bogus = gep %p, 100
  %v = load %bogus
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultOOB {
		t.Errorf("faults = %v", r.Faults)
	}
}

func TestMachineAccessors(t *testing.T) {
	src := `
global @g = 3
func @main() {
entry:
  call @print(1)
  ret 0
}
`
	mod := ir.MustParse("acc.oir", src)
	m, err := New(Config{Module: mod, Sched: firstSched{}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mod() != mod {
		t.Error("Mod accessor broken")
	}
	m.Run()
	if len(m.Output()) != 1 || m.Output()[0] != "1" {
		t.Errorf("Output = %v", m.Output())
	}
	if len(m.Faults()) != 0 {
		t.Errorf("Faults = %v", m.Faults())
	}
	if m.UID() != 1000 {
		t.Errorf("UID = %d", m.UID())
	}
	if m.GlobalAddr("g") == 0 || m.GlobalAddr("nope") != 0 {
		t.Error("GlobalAddr lookups wrong")
	}
	if m.FuncRef("main") == 0 {
		t.Error("FuncRef(main) = 0")
	}
	if m.FuncForRef(m.FuncRef("main")) != mod.Func("main") {
		t.Error("FuncForRef round trip broken")
	}
	if last, ok := m.LastScheduled(); !ok || last != 0 {
		t.Errorf("LastScheduled = %v, %v", last, ok)
	}
}

// switchRecorder records context-switch notifications.
type switchRecorder struct {
	switches [][2]ThreadID
	nilInstr bool
}

func (r *switchRecorder) OnSwitch(m *Machine, from, to ThreadID, fromInstr, toInstr *ir.Instr) {
	r.switches = append(r.switches, [2]ThreadID{from, to})
	if fromInstr == nil || toInstr == nil {
		r.nilInstr = true
	}
}

func TestSwitchObserverSeesContextSwitches(t *testing.T) {
	src := `
global @counter = 0
func @worker(%n) {
entry:
  %v = load @counter
  %v2 = add %v, %n
  store %v2, @counter
  ret %n
}
func @main() {
entry:
  %t1 = call @spawn(@worker, 10)
  %t2 = call @spawn(@worker, 20)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  ret 0
}
`
	rec := &switchRecorder{}
	mod, err := ir.Parse("test.oir", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Module: mod, Sched: &rr{last: -1},
		SwitchObservers: []SwitchObserver{rec}})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(rec.switches) == 0 {
		t.Fatal("round-robin over three threads produced no context switches")
	}
	if rec.nilInstr {
		t.Error("switch notification carried a nil instruction")
	}
	for i, sw := range rec.switches {
		if sw[0] == sw[1] {
			t.Errorf("switch %d: from == to == %d", i, sw[0])
		}
	}
	// Cross-check against the recorded schedule: the notifications must
	// be exactly the thread-boundary transitions of the executed trace.
	want := 0
	for i := 1; i < len(res.Schedule); i++ {
		if res.Schedule[i] != res.Schedule[i-1] {
			want++
		}
	}
	if len(rec.switches) != want {
		t.Errorf("got %d switch notifications, schedule has %d boundaries", len(rec.switches), want)
	}
}

func TestNoSwitchObserverNoTracking(t *testing.T) {
	src := `
func @main() {
entry:
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.ExitCode != 0 {
		t.Errorf("exit = %d", r.ExitCode)
	}
}
