package interp

import (
	"fmt"

	"github.com/conanalysis/owl/internal/bytecode"
	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// ThreadID identifies a thread within one machine run. The main thread is
// always 0; spawned threads get increasing IDs in spawn order, which is
// deterministic for a fixed schedule.
type ThreadID int

// ThreadStatus is a thread's scheduling state.
type ThreadStatus int

// Thread statuses.
const (
	StatusRunnable ThreadStatus = iota + 1
	StatusBlockedMutex
	StatusBlockedJoin
	StatusSleeping
	StatusDone
	StatusFaulted
)

func (s ThreadStatus) String() string {
	switch s {
	case StatusRunnable:
		return "runnable"
	case StatusBlockedMutex:
		return "blocked-mutex"
	case StatusBlockedJoin:
		return "blocked-join"
	case StatusSleeping:
		return "sleeping"
	case StatusDone:
		return "done"
	case StatusFaulted:
		return "faulted"
	default:
		return fmt.Sprintf("ThreadStatus(%d)", int(s))
	}
}

// Frame is one activation record. A frame belongs to exactly one
// engine: tree frames use Block/PC/Regs and keep Block/PrevBlock
// current at every transfer; compiled frames use BC/FPC/Slots and do
// NOT update Block/PrevBlock while running (Block stays at the value
// set on frame construction) — their current block is derived from
// FPC via BC.BlockOfPC and their previous block from prevEdge, which
// snapshotThread folds back into the canonical image.
type Frame struct {
	Fn        *ir.Func
	Block     *ir.Block
	PC        int // index into Block.Instrs
	PrevBlock string
	Regs      map[string]int64

	// BC/FPC/Slots are the compiled engine's frame state: the function's
	// bytecode, the program counter into BC.Code, and the dense register
	// file (BC.SlotOf maps names to indices). code aliases BC.Code so
	// the dispatch loop's fetch skips one pointer hop. prevEdge is the
	// index of the last edge taken (-1 if none): an integer stands in
	// for the tree engine's PrevBlock string so control transfers store
	// no pointers (and incur no GC write barriers).
	BC       *bytecode.FuncCode
	FPC      int
	Slots    []int64
	code     []uint64
	prevEdge int32
	// CallInstr is the call instruction in the caller that created this
	// frame (nil for the bottom frame); its Dst receives the return value.
	CallInstr *ir.Instr
	// Allocas tracks blocks allocated by alloca in this frame; freed on
	// return (function-lifetime storage).
	Allocas []*MemBlock

	// chain is the immutable call chain of this frame's callers: the
	// entries of every outer frame, which are fixed the moment the call
	// executes. Capturing a stack is then one StackRef copy (chain plus
	// the moving innermost position) instead of a per-event walk.
	chain *callstack.Node
}

// CurBlock returns the block the frame is executing. Engine-neutral,
// unlike reading Block directly: compiled frames derive the block from
// the pc (Block is not maintained while running, see above).
func (fr *Frame) CurBlock() *ir.Block {
	if fr.BC != nil {
		return fr.BC.BlockOfPC[fr.FPC]
	}
	return fr.Block
}

// Cur returns the instruction the frame is about to execute, or nil at
// end-of-block (which the verifier treats as malformed IR).
func (fr *Frame) Cur() *ir.Instr {
	if fr.BC != nil {
		// The pc is always in range: every block ends in a sentinel word
		// and execution faults there without advancing.
		return fr.BC.Instrs[fr.FPC]
	}
	if fr.Block == nil || fr.PC >= len(fr.Block.Instrs) {
		return nil
	}
	return fr.Block.Instrs[fr.PC]
}

// Thread is one thread of execution.
type Thread struct {
	ID     ThreadID
	Status ThreadStatus
	Frames []*Frame
	// top caches Frames[len(Frames)-1] (nil when empty) so the
	// dispatch loop reaches the active frame in one load instead of a
	// slice-header chase. Every site that grows or shrinks Frames
	// refreshes it.
	top *Frame

	// Suspended marks the thread halted by a thread-specific breakpoint
	// (§5.2): the rest of the machine keeps running. A suspended thread is
	// not offered to the scheduler until resumed.
	Suspended bool

	// WaitAddr is the mutex address for StatusBlockedMutex.
	WaitAddr int64
	// JoinTarget is the thread waited for in StatusBlockedJoin.
	JoinTarget ThreadID
	// SleepUntil is the machine step at which a sleeping thread wakes.
	SleepUntil int

	// Result is the thread's return value once done.
	Result int64

	// SpawnInstr is the call that created the thread (nil for main).
	SpawnInstr *ir.Instr
}

// Top returns the innermost frame, or nil if the thread has exited.
func (t *Thread) Top() *Frame { return t.top }

// Cur returns the instruction the thread would execute next, or nil.
func (t *Thread) Cur() *ir.Instr {
	fr := t.Top()
	if fr == nil {
		return nil
	}
	return fr.Cur()
}

// stackRef captures the thread's call stack as a zero-allocation
// handle: the top frame's immutable caller chain plus the currently
// executing function and position.
func (t *Thread) stackRef() StackRef {
	fr := t.Top()
	if fr == nil {
		return StackRef{}
	}
	pos := ir.Pos{}
	if in := fr.Cur(); in != nil {
		pos = in.Pos
	}
	return StackRef{chain: fr.chain, fn: fr.Fn.Name, pos: pos}
}

// Stack captures the thread's call stack, outermost first. The innermost
// entry's position is the currently executing instruction, matching how
// TSAN and LLDB print stacks.
func (t *Thread) Stack() callstack.Stack {
	return t.stackRef().Materialize()
}

// Runnable reports whether the scheduler may pick this thread.
func (t *Thread) Runnable(step int) bool {
	if t.Suspended {
		return false
	}
	switch t.Status {
	case StatusRunnable:
		return true
	case StatusSleeping:
		return step >= t.SleepUntil
	default:
		return false
	}
}
