package interp

import (
	"errors"
	"fmt"
	"sort"

	"github.com/conanalysis/owl/internal/bytecode"
	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// Snapshot is an immutable copy of a machine's execution state, taken
// between steps. Arena memory is captured copy-on-write (see
// Arena.Snapshot), so the cost of a snapshot is proportional to what
// changed since the previous one, not to the heap. A snapshot can be
// restored any number of times; each Restore yields an independent
// machine that continues from the captured point.
//
// Snapshots exist so schedule exploration can fork execution at a
// decision point instead of replaying the whole prefix from step 0 —
// the prefix-sharing optimization used by sched.SnapCache.
type Snapshot struct {
	cfg Config // scheduler/observer/breakpoint fields are not retained

	mem *ArenaSnap
	fs  *fsSnap

	step    int
	threads []threadImage

	globals        map[string]int64 // immutable after New; shared
	funcIDs        map[string]int64
	funcs          []*ir.Func
	interns        map[string]int64
	locks          []lockEntry // sorted by addr: images are canonical
	intrinsicByRef map[int64]string

	inputPos  int
	uid       int64
	output    []string
	faults    []*Fault
	execLog   []string
	trace     []ThreadID
	forkCount int
	exited    bool
	exitCode  int
	rngState  uint64
	prevTID   ThreadID
	prevInstr *ir.Instr
}

type threadImage struct {
	id         ThreadID
	status     ThreadStatus
	suspended  bool
	waitAddr   int64
	joinTarget ThreadID
	sleepUntil int
	result     int64
	spawnInstr *ir.Instr
	frames     []frameImage
}

type frameImage struct {
	fn        *ir.Func
	block     *ir.Block
	pc        int
	prevBlock string
	regs      map[string]int64
	callInstr *ir.Instr
	allocas   []int // arena block IDs; remapped on restore
	chain     *callstack.Node
}

type fileImage struct {
	name     string
	data     []int64 // clipped view; both sides copy on append
	readOnly bool
}

type fdImage struct {
	file   int // index into fsSnap.images, -1 for none
	closed bool
}

// fsSnap captures the FS preserving *File identity: a file reachable
// both by name and through stale descriptors (the Apache log-fd
// corruption scenario) restores as one object again.
type fsSnap struct {
	images []*fileImage
	names  map[string]int
	fds    []fdImage
}

func (f *FS) snapshot() *fsSnap {
	s := &fsSnap{names: make(map[string]int, len(f.files))}
	idx := make(map[*File]int, len(f.files)+len(f.fds))
	add := func(file *File) int {
		if file == nil {
			return -1
		}
		if i, ok := idx[file]; ok {
			return i
		}
		i := len(s.images)
		idx[file] = i
		s.images = append(s.images, &fileImage{
			name:     file.Name,
			data:     file.Data[:len(file.Data):len(file.Data)],
			readOnly: file.ReadOnly,
		})
		return i
	}
	for _, name := range f.Names() {
		s.names[name] = add(f.files[name])
	}
	for _, d := range f.fds {
		s.fds = append(s.fds, fdImage{file: add(d.file), closed: d.closed})
	}
	return s
}

func (s *fsSnap) restore() *FS {
	files := make([]*File, len(s.images))
	for i, img := range s.images {
		files[i] = &File{Name: img.name, Data: img.data, ReadOnly: img.readOnly}
	}
	f := &FS{files: make(map[string]*File, len(s.names))}
	for name, i := range s.names {
		f.files[name] = files[i]
	}
	f.fds = make([]*fd, len(s.fds))
	for i, d := range s.fds {
		nfd := &fd{closed: d.closed}
		if d.file >= 0 {
			nfd.file = files[d.file]
		}
		f.fds[i] = nfd
	}
	return f
}

func snapshotThread(t *Thread) threadImage {
	ti := threadImage{
		id: t.ID, status: t.Status, suspended: t.Suspended,
		waitAddr: t.WaitAddr, joinTarget: t.JoinTarget,
		sleepUntil: t.SleepUntil, result: t.Result, spawnInstr: t.SpawnInstr,
		frames: make([]frameImage, len(t.Frames)),
	}
	for i, fr := range t.Frames {
		fi := frameImage{
			fn: fr.Fn, block: fr.Block, pc: fr.PC, prevBlock: fr.PrevBlock,
			callInstr: fr.CallInstr, chain: fr.chain,
		}
		if fr.BC != nil {
			// Compiled frames snapshot in canonical (tree) form, so a
			// snapshot restores under either engine. The running engine
			// does not maintain Block/PrevBlock; both are derived here —
			// the current block from the pc, the previous block from the
			// last edge taken (a restored frame that has taken no edge yet
			// keeps the PrevBlock its image carried). pc: the word's
			// position within its block (phis included); sentinel words
			// map to end-of-block. regs: the named slot values — extra
			// zero-valued names a tree frame wouldn't carry are harmless,
			// a missing map entry reads 0 either way.
			fi.block = fr.BC.BlockOfPC[fr.FPC]
			if fr.prevEdge >= 0 {
				fi.prevBlock = fr.BC.Edges[fr.prevEdge].Src.Name
			}
			if in := fr.BC.Instrs[fr.FPC]; in != nil {
				fi.pc = in.Index - fi.block.Instrs[0].Index
			} else {
				fi.pc = len(fi.block.Instrs)
			}
			fi.regs = make(map[string]int64, len(fr.Slots))
			for s, name := range fr.BC.SlotNames {
				fi.regs[name] = fr.Slots[s]
			}
		} else {
			fi.regs = make(map[string]int64, len(fr.Regs))
			for k, v := range fr.Regs {
				fi.regs[k] = v
			}
		}
		if len(fr.Allocas) > 0 {
			fi.allocas = make([]int, len(fr.Allocas))
			for j, b := range fr.Allocas {
				fi.allocas[j] = b.ID
			}
		}
		ti.frames[i] = fi
	}
	return ti
}

func (ti threadImage) restore(m *Machine) *Thread {
	t := &Thread{
		ID: ti.id, Status: ti.status, Suspended: ti.suspended,
		WaitAddr: ti.waitAddr, JoinTarget: ti.joinTarget,
		SleepUntil: ti.sleepUntil, Result: ti.result, SpawnInstr: ti.spawnInstr,
		Frames: make([]*Frame, len(ti.frames)),
	}
	blocks := m.mem.Blocks()
	for i, fi := range ti.frames {
		var fr *Frame
		if m.prog != nil {
			// Rebuild a compiled frame from the canonical image: the
			// block-relative pc maps back to a word pc (end-of-block maps
			// to the sentinel), named registers map to slots. Names
			// without a slot can only be ones the function never reads;
			// dropping them is value-preserving.
			fc := m.prog.Funcs[fi.fn]
			fr = &Frame{
				Fn: fi.fn, Block: fi.block, PrevBlock: fi.prevBlock,
				CallInstr: fi.callInstr, chain: fi.chain,
				BC: fc, code: fc.Code, Slots: make([]int64, fc.NumSlots),
				prevEdge: -1,
			}
			if fi.pc >= len(fi.block.Instrs) {
				fr.FPC = fc.EndPC[fi.block]
			} else {
				fr.FPC = fc.PCofInstr[fi.block.Instrs[fi.pc].Index]
			}
			for k, v := range fi.regs {
				if s, ok := fc.SlotOf[k]; ok {
					fr.Slots[s] = v
				}
			}
		} else {
			fr = &Frame{
				Fn: fi.fn, Block: fi.block, PC: fi.pc, PrevBlock: fi.prevBlock,
				CallInstr: fi.callInstr, chain: fi.chain,
				Regs: make(map[string]int64, len(fi.regs)),
			}
			for k, v := range fi.regs {
				fr.Regs[k] = v
			}
		}
		if len(fi.allocas) > 0 {
			fr.Allocas = make([]*MemBlock, len(fi.allocas))
			for j, id := range fi.allocas {
				fr.Allocas[j] = blocks[id]
			}
		}
		t.Frames[i] = fr
	}
	if n := len(t.Frames); n > 0 {
		t.top = t.Frames[n-1]
	}
	return t
}

// Snapshot captures the machine's complete execution state between
// steps. The machine remains usable; its arena pages go copy-on-write
// and are copied back lazily as either side writes.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		cfg:       m.cfg,
		mem:       m.mem.Snapshot(),
		fs:        m.fs.snapshot(),
		step:      m.step,
		threads:   make([]threadImage, len(m.threads)),
		globals:   m.globals,
		funcIDs:   copyMap(m.funcIDs),
		funcs:     m.funcs[:len(m.funcs):len(m.funcs)],
		interns:   copyMap(m.interns),
		inputPos:  m.inputPos,
		uid:       m.uid,
		output:    m.output[:len(m.output):len(m.output)],
		faults:    m.faults[:len(m.faults):len(m.faults)],
		execLog:   m.execLog[:len(m.execLog):len(m.execLog)],
		trace:     m.trace[:len(m.trace):len(m.trace)],
		forkCount: m.forkCount,
		exited:    m.exited,
		exitCode:  m.exitCode,
		rngState:  m.rngState,
		prevTID:   m.prevTID,
		prevInstr: m.prevInstr,
	}
	// Scheduler, observers, and breakpoints belong to a particular run,
	// not to the captured state: Restore installs the new run's own.
	s.cfg.Sched = nil
	s.cfg.Observers = nil
	s.cfg.SwitchObservers = nil
	s.cfg.Breakpoint = nil
	s.locks = append([]lockEntry(nil), m.locks...)
	sort.Slice(s.locks, func(i, j int) bool { return s.locks[i].addr < s.locks[j].addr })
	if m.intrinsicByRef != nil {
		s.intrinsicByRef = make(map[int64]string, len(m.intrinsicByRef))
		for k, v := range m.intrinsicByRef {
			s.intrinsicByRef[k] = v
		}
	}
	for i, t := range m.threads {
		s.threads[i] = snapshotThread(t)
	}
	return s
}

func copyMap(src map[string]int64) map[string]int64 {
	dst := make(map[string]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Restore builds a new machine continuing from the snapshot. cfg
// supplies the run-specific parts — Sched (required), Observers,
// SwitchObservers, Breakpoint, and optionally MaxSteps (0 keeps the
// snapshot's bound; the bound stays absolute, counted from step 0, so a
// restored run truncates exactly where a from-scratch run would).
// Module, Entry, Args, Inputs, and HaltOnFault come from the snapshot:
// they are part of the captured execution, not of the resuming run.
func Restore(s *Snapshot, cfg Config) (*Machine, error) {
	if s == nil {
		return nil, ErrNilSnapshot
	}
	if cfg.Sched == nil {
		return nil, ErrNoScheduler
	}
	mcfg := s.cfg
	mcfg.Sched = cfg.Sched
	mcfg.Observers = cfg.Observers
	mcfg.SwitchObservers = cfg.SwitchObservers
	mcfg.Breakpoint = cfg.Breakpoint
	if cfg.MaxSteps > 0 {
		mcfg.MaxSteps = cfg.MaxSteps
	}
	// Frames snapshot in canonical form, so the resuming run may choose
	// its own engine; by default it keeps the snapshot's.
	if cfg.Engine != "" {
		mcfg.Engine = cfg.Engine
	}
	var prog *bytecode.Program
	switch mcfg.Engine {
	case "", EngineTree:
	case EngineBytecode:
		var err error
		if prog, err = bytecode.Compile(mcfg.Module); err != nil {
			return nil, fmt.Errorf("interp: %w", err)
		}
	default:
		return nil, fmt.Errorf("interp: unknown engine %q", mcfg.Engine)
	}
	m := &Machine{
		prog:           prog,
		schedDirty:     true,
		cfg:            mcfg,
		mod:            mcfg.Module,
		mem:            s.mem.restore(),
		fs:             s.fs.restore(),
		step:           s.step,
		globals:        s.globals,
		funcIDs:        copyMap(s.funcIDs),
		funcs:          s.funcs,
		interns:        copyMap(s.interns),
		inputPos:       s.inputPos,
		uid:            s.uid,
		output:         s.output,
		faults:         s.faults,
		execLog:        s.execLog,
		trace:          s.trace,
		forkCount:      s.forkCount,
		exited:         s.exited,
		exitCode:       s.exitCode,
		rngState:       s.rngState,
		prevTID:        s.prevTID,
		prevInstr:      s.prevInstr,
		hasObs:         len(mcfg.Observers) > 0,
		hasSwitch:      len(mcfg.SwitchObservers) > 0,
		stackMemoStep:  -1,
		intrinsicByRef: nil,
	}
	if s.intrinsicByRef != nil {
		m.intrinsicByRef = make(map[int64]string, len(s.intrinsicByRef))
		for k, v := range s.intrinsicByRef {
			m.intrinsicByRef[k] = v
		}
	}
	m.locks = append([]lockEntry(nil), s.locks...)
	for _, o := range mcfg.Observers {
		sp, declared := o.(StackPolicy)
		for k := EvRead; k < evKindCount; k++ {
			if !declared || sp.NeedsStack(k) {
				m.needStack[k] = true
			}
		}
	}
	if m.prog != nil {
		// The restored arena has fresh block objects; rebuild the
		// ordinal-indexed tables against it.
		m.initGlobalTables()
	}
	m.threads = make([]*Thread, len(s.threads))
	for i, ti := range s.threads {
		m.threads[i] = ti.restore(m)
	}
	// The live list is the threads not yet done/faulted: the original's
	// lazily-compacted list may still hold finished threads, but those
	// are filtered on every scheduling pass, so dropping them here is
	// behavior-preserving.
	for _, t := range m.threads {
		if t.Status != StatusDone && t.Status != StatusFaulted {
			m.live = append(m.live, t)
		}
	}
	return m, nil
}

// ErrNilSnapshot is returned by Restore for a nil snapshot.
var ErrNilSnapshot = errors.New("interp: nil snapshot")
