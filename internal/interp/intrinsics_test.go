package interp

import (
	"testing"
)

func TestStrlenAndMemset(t *testing.T) {
	src := `
global @s = "hello"
func @main() {
entry:
  %p = addr @s
  %n = call @strlen(%p)
  call @print(%n)
  %buf = call @malloc(4)
  call @memset(%buf, 9, 4)
  %v = load %buf
  %q = gep %buf, 3
  %w = load %q
  %sum = add %v, %w
  call @print(%sum)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "5" || r.Output[1] != "18" {
		t.Errorf("output = %v, want [5 18]", r.Output)
	}
}

func TestMemcpyCopiesAndFaultsOnShortDst(t *testing.T) {
	src := `
func @main() {
entry:
  %src = call @malloc(4)
  call @memset(%src, 7, 4)
  %dst = call @malloc(4)
  %r = call @memcpy(%dst, %src, 4)
  %v = load %dst
  call @print(%v)
  %small = call @malloc(2)
  %r2 = call @memcpy(%small, %src, 4)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "7" {
		t.Errorf("copy failed: %v", r.Output)
	}
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultOOB {
		t.Errorf("short-dst memcpy faults = %v", r.Faults)
	}
}

func TestForkAndThreadID(t *testing.T) {
	src := `
func @main() {
entry:
  %pid = call @fork()
  call @print(%pid)
  %tid = call @thread_id()
  call @print(%tid)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "1001" || r.Output[1] != "0" {
		t.Errorf("output = %v", r.Output)
	}
}

func TestRandDeterministicPerMachine(t *testing.T) {
	src := `
func @main() {
entry:
  %a = call @rand(100)
  %b = call @rand(100)
  call @print(%a)
  call @print(%b)
  ret 0
}
`
	_, r1 := run(t, src, Config{})
	_, r2 := run(t, src, Config{})
	if r1.Output[0] != r2.Output[0] || r1.Output[1] != r2.Output[1] {
		t.Errorf("rand not deterministic: %v vs %v", r1.Output, r2.Output)
	}
	if r1.Output[0] == r1.Output[1] {
		t.Logf("note: consecutive rand values equal (%v) — acceptable but unusual", r1.Output)
	}
}

func TestInputAvail(t *testing.T) {
	src := `
func @main() {
entry:
  %n = call @input_avail()
  call @print(%n)
  %v = call @input()
  %n2 = call @input_avail()
  call @print(%n2)
  ret 0
}
`
	_, r := run(t, src, Config{Inputs: []int64{5, 6, 7}})
	if r.Output[0] != "3" || r.Output[1] != "2" {
		t.Errorf("output = %v", r.Output)
	}
}

func TestFSCloseAndBadWrites(t *testing.T) {
	src := `
func @main() {
entry:
  %fd = call @open("f.txt")
  call @print(%fd)
  call @close(%fd)
  %buf = call @malloc(1)
  %n = call @write(%fd, %buf, 1)
  call @print(%n)
  %m = call @write(999, %buf, 1)
  call @print(%m)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if r.Output[0] != "3" {
		t.Errorf("first fd = %v, want 3 (0-2 reserved)", r.Output[0])
	}
	if r.Output[1] != "0" || r.Output[2] != "0" {
		t.Errorf("writes to closed/bad fds = %v, want 0", r.Output[1:])
	}
}

func TestHaltOnFault(t *testing.T) {
	src := `
func @crasher() {
entry:
  %v = load 0
  ret 0
}
func @spinner() {
entry:
  jmp loop
loop:
  call @yield()
  jmp loop
}
func @main() {
entry:
  %t1 = call @spawn(@spinner)
  %t2 = call @spawn(@crasher)
  %r = call @join(%t2)
  call @exit(0)
  ret 0
}
`
	_, r := run(t, src, Config{MaxSteps: 5000, HaltOnFault: true})
	if r.MaxStepsHit {
		t.Error("HaltOnFault did not stop the machine")
	}
	if r.ExitCode != 139 {
		t.Errorf("exit code = %d, want 139", r.ExitCode)
	}
	// Without HaltOnFault the spinner keeps the machine alive until exit.
	_, r = run(t, src, Config{MaxSteps: 5000})
	if r.ExitCode == 139 {
		t.Error("fault halted the machine without HaltOnFault")
	}
}

func TestMutexUnlockByNonOwnerIsNoop(t *testing.T) {
	src := `
global @m = 0
func @main() {
entry:
  call @mutex_unlock(@m)
  call @mutex_lock(@m)
  call @mutex_unlock(@m)
  call @print(1)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 0 || r.Output[0] != "1" {
		t.Errorf("faults=%v output=%v", r.Faults, r.Output)
	}
}

func TestSpawnNonFunctionFaults(t *testing.T) {
	src := `
func @main() {
entry:
  %bogus = const 12345
  %t = call @spawn(%bogus)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultBadCall {
		t.Errorf("faults = %v", r.Faults)
	}
}

func TestJoinUnknownThreadFaults(t *testing.T) {
	src := `
func @main() {
entry:
  %r = call @join(99)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 1 || r.Faults[0].Kind != FaultBadCall {
		t.Errorf("faults = %v", r.Faults)
	}
}

func TestJoinFaultedThreadReturnsZero(t *testing.T) {
	src := `
func @crasher() {
entry:
  %v = load 0
  ret 7
}
func @main() {
entry:
  %t = call @spawn(@crasher)
  %r = call @join(%t)
  call @print(%r)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Output) != 1 || r.Output[0] != "0" {
		t.Errorf("join of faulted thread = %v, want 0", r.Output)
	}
	if len(r.Faults) != 1 {
		t.Errorf("faults = %v", r.Faults)
	}
}

func TestIndirectIntrinsicCall(t *testing.T) {
	// A function-pointer to an intrinsic (print) resolved at call time.
	src := `
global @fp = 0
func @main() {
entry:
  %f = func @print
  store %f, @fp
  %g = load @fp
  call %g(42)
  ret 0
}
`
	_, r := run(t, src, Config{})
	if len(r.Faults) != 0 {
		t.Fatalf("faults = %v", r.Faults)
	}
	if len(r.Output) != 1 || r.Output[0] != "42" {
		t.Errorf("output = %v", r.Output)
	}
}
