package interp

import (
	"fmt"
	"sort"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// BlockKind classifies arena blocks.
type BlockKind int

// Arena block kinds.
const (
	BlockGlobal BlockKind = iota + 1
	BlockHeap
	BlockStack
)

func (k BlockKind) String() string {
	switch k {
	case BlockGlobal:
		return "global"
	case BlockHeap:
		return "heap"
	case BlockStack:
		return "stack"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// MemBlock is one allocation in the arena. Blocks are word granular: the
// IR's unit of memory is a 64-bit word, so "one byte" in the modelled C
// programs maps to one word here. Freed blocks keep their contents so
// use-after-free reads can be reported with the stale value, like a real
// allocator with poisoning would.
type MemBlock struct {
	ID    int
	Base  int64
	Size  int64
	Words []int64
	Kind  BlockKind
	Name  string // e.g. "@dying", "malloc@log_clean", "alloca@main"
	Freed bool

	// AllocStack and FreeStack record where the block was allocated and
	// freed, enriching use-after-free reports.
	AllocStack callstack.Stack
	FreeStack  callstack.Stack

	// cow marks Words as shared with a snapshot image: the next write
	// must copy the slice first. dirty marks the block as mutated since
	// the arena's last snapshot image of it was taken.
	cow   bool
	dirty bool
}

// Contains reports whether addr falls inside the block's range.
func (b *MemBlock) Contains(addr int64) bool {
	return addr >= b.Base && addr < b.Base+b.Size
}

// FaultKind classifies runtime memory/control faults. These are the
// consequences the attack oracles look for: a buffer overflow fault at the
// strcpy site is the Libsafe code injection; a null function pointer call
// is the Linux uselib attack; a use-after-free is the SSDB CVE.
type FaultKind int

// Fault kinds.
const (
	FaultNilDeref FaultKind = iota + 1
	FaultOOB
	FaultUseAfterFree
	FaultDoubleFree
	FaultBadFree
	FaultDivZero
	FaultNullFuncPtr
	FaultBadCall
	FaultAssert
	FaultAbort
	FaultUnknownIntrinsic
)

var faultNames = map[FaultKind]string{
	FaultNilDeref:         "null pointer dereference",
	FaultOOB:              "out-of-bounds access (buffer overflow)",
	FaultUseAfterFree:     "use after free",
	FaultDoubleFree:       "double free",
	FaultBadFree:          "free of non-heap pointer",
	FaultDivZero:          "division by zero",
	FaultNullFuncPtr:      "null function pointer call",
	FaultBadCall:          "call through non-function value",
	FaultAssert:           "assertion failure",
	FaultAbort:            "abort",
	FaultUnknownIntrinsic: "unknown function",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is a runtime fault. It implements error.
type Fault struct {
	Kind  FaultKind
	TID   ThreadID
	Addr  int64
	Instr *ir.Instr
	Stack callstack.Stack
	Msg   string
	Step  int
}

func (f *Fault) Error() string {
	loc := "?"
	if f.Instr != nil {
		loc = f.Instr.Loc()
	}
	s := fmt.Sprintf("thread %d: %s at %s", f.TID, f.Kind, loc)
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	return s
}

// Arena is the machine's word-addressed memory. Addresses are dense and
// allocated deterministically, so identical schedules produce identical
// addresses — the property OWL's replay-based verifiers depend on.
// Address 0 is NULL and never allocated; the first block starts at
// ArenaBase to keep small integers distinguishable from pointers in
// reports.
type Arena struct {
	blocks []*MemBlock // sorted by Base
	next   int64

	// Copy-on-write snapshot support. tracking turns on at the first
	// Snapshot call: from then on the arena maintains a per-block image
	// of the last snapshot and a list of blocks dirtied since, so the
	// next snapshot re-images only the dirty set (O(dirty), not
	// O(heap)). Until the first snapshot none of this costs anything on
	// the write path beyond two flag checks.
	tracking  bool
	images    []*blockImage // last-snapshot image per block ID; nil when stale
	dirtyIDs  []int         // block IDs whose image entry is stale
	cowCopied int64         // blocks ("pages") copied by copy-on-write writes
}

// blockImage is an immutable view of a MemBlock at snapshot time. words
// is shared with the live block until either side writes (the live side
// copies via wordsForWrite; restored machines start with cow set).
type blockImage struct {
	base, size int64
	kind       BlockKind
	name       string
	words      []int64
	freed      bool
	allocStack callstack.Stack
	freeStack  callstack.Stack
}

// ArenaSnap is a copy-on-write snapshot of an arena. It is immutable and
// can be restored any number of times.
type ArenaSnap struct {
	images []*blockImage
	next   int64
}

// ArenaBase is the lowest address the arena hands out. Addresses are
// dense above it, which lets flat (array-indexed) shadow memories map
// an address to a slot with one subtraction.
const ArenaBase = 0x10000

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{next: ArenaBase}
}

// Alloc allocates a block of size words.
func (a *Arena) Alloc(size int64, kind BlockKind, name string, stack callstack.Stack) *MemBlock {
	if size < 1 {
		size = 1
	}
	b := &MemBlock{
		ID:         len(a.blocks),
		Base:       a.next,
		Size:       size,
		Words:      make([]int64, size),
		Kind:       kind,
		Name:       name,
		AllocStack: stack.Clone(),
	}
	// Leave a one-word unaddressable gap between blocks so off-by-one
	// overflows fault instead of silently landing in the next block.
	a.next += size + 1
	a.blocks = append(a.blocks, b)
	if a.tracking {
		b.dirty = true
		a.images = append(a.images, nil)
		a.dirtyIDs = append(a.dirtyIDs, b.ID)
	}
	return b
}

// touch records that b's snapshot image (if any) is stale.
func (a *Arena) touch(b *MemBlock) {
	if a.tracking && !b.dirty {
		b.dirty = true
		a.images[b.ID] = nil
		a.dirtyIDs = append(a.dirtyIDs, b.ID)
	}
}

// wordsForWrite returns b.Words ready for mutation: if the slice is
// shared with a snapshot image it is copied first (copy-on-write), and
// the block is marked dirty for the next snapshot.
func (a *Arena) wordsForWrite(b *MemBlock) []int64 {
	if b.cow {
		w := make([]int64, len(b.Words))
		copy(w, b.Words)
		b.Words = w
		b.cow = false
		a.cowCopied++
	}
	a.touch(b)
	return b.Words
}

// Find returns the block containing addr, freed or not, or nil. Lookup is
// binary search over the base-sorted block list.
func (a *Arena) Find(addr int64) *MemBlock {
	i := sort.Search(len(a.blocks), func(i int) bool {
		return a.blocks[i].Base > addr
	})
	if i == 0 {
		return nil
	}
	b := a.blocks[i-1]
	if b.Contains(addr) {
		return b
	}
	return nil
}

// check validates an access of [addr, addr+n) and returns the block.
func (a *Arena) check(addr, n int64) (*MemBlock, *Fault) {
	if addr == 0 {
		return nil, &Fault{Kind: FaultNilDeref, Addr: addr}
	}
	b := a.Find(addr)
	if b == nil {
		return nil, &Fault{Kind: FaultOOB, Addr: addr,
			Msg: fmt.Sprintf("address 0x%x maps to no allocation", addr)}
	}
	if b.Freed {
		return b, &Fault{Kind: FaultUseAfterFree, Addr: addr,
			Msg: fmt.Sprintf("block %q freed earlier", b.Name)}
	}
	if addr+n > b.Base+b.Size {
		return b, &Fault{Kind: FaultOOB, Addr: addr,
			Msg: fmt.Sprintf("access of %d words at offset %d overflows block %q (size %d)",
				n, addr-b.Base, b.Name, b.Size)}
	}
	return b, nil
}

// Load reads one word. The returned fault (if any) has only Kind/Addr/Msg
// populated; the machine fills in thread context.
func (a *Arena) Load(addr int64) (int64, *Fault) {
	b, f := a.check(addr, 1)
	if f != nil {
		if f.Kind == FaultUseAfterFree && b != nil {
			// Report the stale value the UAF would have observed.
			f.Msg += fmt.Sprintf(" (stale value %d)", b.Words[addr-b.Base])
		}
		return 0, f
	}
	return b.Words[addr-b.Base], nil
}

// Store writes one word.
func (a *Arena) Store(addr, val int64) *Fault {
	b, f := a.check(addr, 1)
	if f != nil {
		return f
	}
	a.wordsForWrite(b)[addr-b.Base] = val
	return nil
}

// Peek reads a word without fault semantics (for verifier introspection
// and oracles); returns 0 for unmapped addresses, stale values for freed
// blocks.
func (a *Arena) Peek(addr int64) int64 {
	b := a.Find(addr)
	if b == nil {
		return 0
	}
	return b.Words[addr-b.Base]
}

// Poke writes a word without fault semantics (for test setup).
func (a *Arena) Poke(addr, val int64) bool {
	b := a.Find(addr)
	if b == nil {
		return false
	}
	a.wordsForWrite(b)[addr-b.Base] = val
	return true
}

// Free releases a heap block.
func (a *Arena) Free(addr int64, stack callstack.Stack) *Fault {
	if addr == 0 {
		return &Fault{Kind: FaultNilDeref, Addr: addr, Msg: "free(NULL)"}
	}
	b := a.Find(addr)
	if b == nil || addr != b.Base {
		return &Fault{Kind: FaultBadFree, Addr: addr}
	}
	if b.Kind != BlockHeap {
		return &Fault{Kind: FaultBadFree, Addr: addr,
			Msg: fmt.Sprintf("free of %s block %q", b.Kind, b.Name)}
	}
	if b.Freed {
		return &Fault{Kind: FaultDoubleFree, Addr: addr,
			Msg: fmt.Sprintf("block %q already freed", b.Name)}
	}
	b.Freed = true
	b.FreeStack = stack.Clone()
	a.touch(b)
	return nil
}

// Release marks a stack (alloca) block freed on scope exit. No fault
// semantics — the interpreter owns the block — but routed through the
// arena so snapshot dirty-tracking observes the mutation.
func (a *Arena) Release(b *MemBlock, stack callstack.Stack) {
	b.Freed = true
	b.FreeStack = stack
	a.touch(b)
}

// Blocks returns all blocks (live and freed), base-ordered.
func (a *Arena) Blocks() []*MemBlock { return a.blocks }

// Snapshot captures the arena as copy-on-write block images. The first
// snapshot images every block; subsequent snapshots re-image only blocks
// dirtied since the previous one. Word slices are shared between image
// and live block until either side writes.
func (a *Arena) Snapshot() *ArenaSnap {
	if !a.tracking {
		a.tracking = true
		a.images = make([]*blockImage, len(a.blocks))
		a.dirtyIDs = a.dirtyIDs[:0]
		for _, b := range a.blocks {
			b.dirty = true
			a.dirtyIDs = append(a.dirtyIDs, b.ID)
		}
	}
	for _, id := range a.dirtyIDs {
		b := a.blocks[id]
		b.cow = true
		b.dirty = false
		a.images[id] = &blockImage{
			base: b.Base, size: b.Size, kind: b.Kind, name: b.Name,
			words: b.Words, freed: b.Freed,
			allocStack: b.AllocStack, freeStack: b.FreeStack,
		}
	}
	a.dirtyIDs = a.dirtyIDs[:0]
	return &ArenaSnap{images: append([]*blockImage(nil), a.images...), next: a.next}
}

// restore materializes a new arena from the snapshot. Every block shares
// words with its image (copy-on-write on both sides), and the restored
// arena starts fully imaged so an immediate re-snapshot is cheap.
func (s *ArenaSnap) restore() *Arena {
	a := &Arena{
		next:     s.next,
		tracking: true,
		blocks:   make([]*MemBlock, len(s.images)),
		images:   append([]*blockImage(nil), s.images...),
	}
	for id, img := range s.images {
		a.blocks[id] = &MemBlock{
			ID: id, Base: img.base, Size: img.size, Words: img.words,
			Kind: img.kind, Name: img.name, Freed: img.freed,
			AllocStack: img.allocStack, FreeStack: img.freeStack,
			cow: true,
		}
	}
	return a
}

// CowPagesCopied reports how many blocks were copied by copy-on-write
// writes since the arena was created (or restored).
func (a *Arena) CowPagesCopied() int64 { return a.cowCopied }

// Fingerprint hashes the arena's observable state (block geometry, freed
// flags, words) with FNV-1a: equal states hash equal. Used by the
// snapshot-fidelity tests to compare restored and from-scratch machines.
func (a *Arena) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	for _, b := range a.blocks {
		mix(int64(b.ID))
		mix(b.Base)
		mix(b.Size)
		mix(int64(b.Kind))
		if b.Freed {
			mix(1)
		} else {
			mix(0)
		}
		for _, w := range b.Words {
			mix(w)
		}
	}
	mix(a.next)
	return h
}

// NameFor returns a human label for an address: "@global+off" or
// "heapname+off", falling back to hex.
func (a *Arena) NameFor(addr int64) string {
	b := a.Find(addr)
	if b == nil {
		return fmt.Sprintf("0x%x", addr)
	}
	off := addr - b.Base
	if off == 0 {
		return b.Name
	}
	return fmt.Sprintf("%s+%d", b.Name, off)
}
