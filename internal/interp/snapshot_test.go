package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

// snapRand is a seeded scheduler picking uniformly among runnable
// threads (xorshift64*, local so this package needn't import sched).
type snapRand struct{ state uint64 }

func (s *snapRand) Next(runnable []ThreadID, step int) ThreadID {
	s.state ^= s.state >> 12
	s.state ^= s.state << 25
	s.state ^= s.state >> 27
	v := s.state * 0x2545f4914f6cdd1d
	return runnable[v%uint64(len(runnable))]
}

// snapReplay serves a recorded schedule tape from a starting offset.
type snapReplay struct {
	tape []ThreadID
	pos  int
}

func (s *snapReplay) Next(runnable []ThreadID, step int) ThreadID {
	if s.pos >= len(s.tape) {
		return runnable[0]
	}
	id := s.tape[s.pos]
	s.pos++
	return id
}

// genSnapProgram emits a random program exercising every piece of state
// a snapshot must carry: global and heap memory, mutexes, sleeping
// threads (io_delay), the input tape, the rng, output, the FS (open/
// write/close with stale-fd potential), exec log, and — in some
// variants — a use-after-free fault so restores after a thread death
// are covered.
func genSnapProgram(r *rand.Rand) (string, []int64) {
	nWorkers := 1 + r.Intn(3)
	nGlobals := 2 + r.Intn(2)

	var b strings.Builder
	for g := 0; g < nGlobals; g++ {
		fmt.Fprintf(&b, "global @g%d = %d\n", g, r.Intn(5))
	}
	b.WriteString("global @mu = 0\n\n")

	ops := func(tag string, n int) string {
		var w strings.Builder
		reg := 0
		locked := false
		for i := 0; i < n; i++ {
			g := r.Intn(nGlobals)
			switch r.Intn(10) {
			case 0:
				fmt.Fprintf(&w, "  %%%s%d = load @g%d\n", tag, reg, g)
				reg++
			case 1:
				fmt.Fprintf(&w, "  store %d, @g%d\n", r.Intn(100), g)
			case 2:
				if locked {
					w.WriteString("  call @mutex_unlock(@mu)\n")
				} else {
					w.WriteString("  call @mutex_lock(@mu)\n")
				}
				locked = !locked
			case 3:
				fmt.Fprintf(&w, "  %%%s%d = load @g%d\n  store %%%s%d, @g%d\n",
					tag, reg, g, tag, reg, r.Intn(nGlobals))
				reg++
			case 4:
				w.WriteString("  call @yield()\n")
			case 5:
				fmt.Fprintf(&w, "  call @io_delay(%d)\n", 1+r.Intn(4))
			case 6:
				fmt.Fprintf(&w, "  %%%s%d = call @input()\n  store %%%s%d, @g%d\n",
					tag, reg, tag, reg, g)
				reg++
			case 7:
				fmt.Fprintf(&w, "  %%%s%d = call @rand(10)\n  call @print(%%%s%d)\n",
					tag, reg, tag, reg)
				reg++
			case 8:
				fmt.Fprintf(&w, "  call @exec(\"op-%s%d\")\n", tag, i)
			case 9:
				fmt.Fprintf(&w, "  call @print_str(\"msg-%s%d\")\n", tag, i)
			}
		}
		if locked {
			w.WriteString("  call @mutex_unlock(@mu)\n")
		}
		return w.String()
	}

	for wi := 0; wi < nWorkers; wi++ {
		tag := fmt.Sprintf("w%d_", wi)
		fmt.Fprintf(&b, "func @worker%d() {\nentry:\n", wi)
		fmt.Fprintf(&b, "  %%p = call @malloc(4)\n  store %d, %%p\n", 10+wi)
		b.WriteString(ops(tag, 4+r.Intn(8)))
		fmt.Fprintf(&b, "  %%fd = call @open(\"log%d\")\n", wi)
		b.WriteString("  %wr = call @write(%fd, %p, 2)\n")
		if r.Intn(2) == 0 {
			b.WriteString("  call @close(%fd)\n")
		}
		b.WriteString("  call @free(%p)\n")
		if r.Intn(3) == 0 {
			// Use-after-free: this thread faults and dies here.
			b.WriteString("  %uaf = load %p\n")
		}
		b.WriteString("  ret 0\n}\n")
	}
	b.WriteString("func @main() {\nentry:\n  call @exec(\"boot\")\n")
	for wi := 0; wi < nWorkers; wi++ {
		fmt.Fprintf(&b, "  %%t%d = call @spawn(@worker%d)\n", wi, wi)
	}
	b.WriteString(ops("m", 4+r.Intn(8)))
	for wi := 0; wi < nWorkers; wi++ {
		fmt.Fprintf(&b, "  %%j%d = call @join(%%t%d)\n", wi, wi)
	}
	for g := 0; g < nGlobals; g++ {
		fmt.Fprintf(&b, "  %%f%d = load @g%d\n  call @print(%%f%d)\n", g, g, g)
	}
	b.WriteString("  ret 0\n}\n")

	inputs := make([]int64, 4+r.Intn(8))
	for i := range inputs {
		inputs[i] = int64(r.Intn(50))
	}
	return b.String(), inputs
}

// machineState renders everything observable about a finished machine.
func machineState(m *Machine) string {
	res := m.Result()
	var b strings.Builder
	fmt.Fprintf(&b, "exit=%d steps=%d uid=%d stall=%s maxhit=%v\n",
		res.ExitCode, res.Steps, res.UID, res.Stall, res.MaxStepsHit)
	fmt.Fprintf(&b, "sched=%v\n", res.Schedule)
	fmt.Fprintf(&b, "output=%q\n", res.Output)
	for _, f := range res.Faults {
		fmt.Fprintf(&b, "fault=%s @step %d\n", f.Error(), f.Step)
	}
	fmt.Fprintf(&b, "arena=%#x\n", m.Mem().Fingerprint())
	for _, name := range m.FS().Names() {
		file := m.FS().Lookup(name)
		fmt.Fprintf(&b, "file %s ro=%v data=%v\n", name, file.ReadOnly, file.Data)
	}
	fmt.Fprintf(&b, "execlog=%q\n", m.ExecLog())
	for _, t := range m.Threads() {
		fmt.Fprintf(&b, "thread %d status=%s result=%d\n", t.ID, t.Status, t.Result)
	}
	return b.String()
}

func mustMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

// TestSnapshotFidelityRandomized checks, over randomized programs and
// schedules, that (a) restoring a snapshot and running the recorded
// suffix reproduces the reference run exactly, state-equal down to the
// arena hash, and (b) the snapshotted machine itself — whose pages went
// copy-on-write — also still finishes identically. Pause points sweep
// the whole run, so restores land mid-Pending access and after faults.
func TestSnapshotFidelityRandomized(t *testing.T) {
	for progSeed := int64(1); progSeed <= 8; progSeed++ {
		src, inputs := genSnapProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("snap_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: generated program does not parse: %v\n%s", progSeed, err, src)
		}
		base := Config{Module: mod, Inputs: inputs, MaxSteps: 20000}
		for schedSeed := uint64(1); schedSeed <= 3; schedSeed++ {
			cfg := base
			cfg.Sched = &snapRand{state: schedSeed}
			ref := mustMachine(t, cfg)
			refRes := ref.Run()
			want := machineState(ref)
			tape := refRes.Schedule

			stride := 1
			if len(tape) > 300 {
				stride = len(tape) / 100
			}
			sawFault, sawPending := false, false
			for k := 1; k < len(tape); k += stride {
				cfg.Sched = &snapReplay{tape: tape}
				mb := mustMachine(t, cfg)
				for i := 0; i < k; i++ {
					if !mb.Step() {
						t.Fatalf("prog %d sched %d: replay ended early at %d/%d", progSeed, schedSeed, i, k)
					}
				}
				if len(mb.Faults()) > 0 {
					sawFault = true
				}
				for _, th := range mb.Threads() {
					if _, ok := mb.Pending(th.ID); ok {
						sawPending = true
					}
				}
				snap := mb.Snapshot()
				mc, err := Restore(snap, Config{Sched: &snapReplay{tape: tape, pos: k}})
				if err != nil {
					t.Fatalf("prog %d sched %d k=%d: restore: %v", progSeed, schedSeed, k, err)
				}
				mc.Run()
				if got := machineState(mc); got != want {
					t.Fatalf("prog %d sched %d: restored run from step %d diverges\n--- want\n%s\n--- got\n%s\nprogram:\n%s",
						progSeed, schedSeed, k, want, got, src)
				}
				// The paused original keeps running on its cow'd pages.
				mb.Run()
				if got := machineState(mb); got != want {
					t.Fatalf("prog %d sched %d: snapshotted original diverges after pause at %d\n--- want\n%s\n--- got\n%s\nprogram:\n%s",
						progSeed, schedSeed, k, want, got, src)
				}
			}
			if !sawPending {
				t.Errorf("prog %d sched %d: no pause point landed mid-Pending access", progSeed, schedSeed)
			}
			_ = sawFault // not every program variant faults; asserted in aggregate below
		}
	}
}

// TestSnapshotCrossEngine pins the snapshot image as the engine-neutral
// interchange format: a run paused under one engine must restore and
// finish under the other, byte-identical to the all-tree reference.
// This is what forces snapshotThread to fold compiled-frame state
// (FPC, prevEdge, slot files) back into the canonical Block/PC/Regs
// image, and Restore to rebuild either frame representation from it.
func TestSnapshotCrossEngine(t *testing.T) {
	for progSeed := int64(1); progSeed <= 6; progSeed++ {
		src, inputs := genSnapProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("snap_xengine_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: generated program does not parse: %v\n%s", progSeed, err, src)
		}
		base := Config{Module: mod, Inputs: inputs, MaxSteps: 20000}
		cfg := base
		cfg.Sched = &snapRand{state: uint64(progSeed)}
		ref := mustMachine(t, cfg)
		ref.Run()
		want := machineState(ref)
		tape := ref.Result().Schedule

		for _, dir := range []struct{ from, to Engine }{
			{EngineTree, EngineBytecode},
			{EngineBytecode, EngineTree},
		} {
			for _, frac := range []int{3, 2} {
				k := len(tape) / frac
				if k == 0 {
					continue
				}
				pauseCfg := base
				pauseCfg.Sched = &snapReplay{tape: tape}
				pauseCfg.Engine = dir.from
				mb := mustMachine(t, pauseCfg)
				for i := 0; i < k; i++ {
					if !mb.Step() {
						t.Fatalf("prog %d %s->%s: replay ended early at %d/%d", progSeed, dir.from, dir.to, i, k)
					}
				}
				mc, err := Restore(mb.Snapshot(), Config{Sched: &snapReplay{tape: tape, pos: k}, Engine: dir.to})
				if err != nil {
					t.Fatalf("prog %d %s->%s k=%d: restore: %v", progSeed, dir.from, dir.to, k, err)
				}
				if mc.Engine() != dir.to {
					t.Fatalf("prog %d: restored engine = %s, want %s", progSeed, mc.Engine(), dir.to)
				}
				mc.Run()
				if got := machineState(mc); got != want {
					t.Fatalf("prog %d: %s->%s restore from step %d diverges\n--- want\n%s\n--- got\n%s\nprogram:\n%s",
						progSeed, dir.from, dir.to, k, want, got, src)
				}
			}
		}
	}
}

// TestSnapshotAfterFault pins the post-fault restore case explicitly: a
// worker dies of use-after-free, the machine is snapshotted after the
// fault, and the restored run must carry the fault record, the dead
// thread, and the joiner wake-up exactly.
func TestSnapshotAfterFault(t *testing.T) {
	const src = `
global @sink = 0

func @victim() {
entry:
  %p = call @malloc(2)
  store 42, %p
  call @free(%p)
  %v = load %p
  store %v, @sink
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@victim)
  call @io_delay(3)
  %j = call @join(%t)
  %s = load @sink
  call @print(%s)
  ret 0
}
`
	mod, err := ir.Parse("fault_snap.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := Config{Module: mod, Sched: &snapRand{state: 7}, MaxSteps: 10000}
	ref := mustMachine(t, cfg)
	refRes := ref.Run()
	if len(refRes.Faults) != 1 || refRes.Faults[0].Kind != FaultUseAfterFree {
		t.Fatalf("reference run faults = %v, want one use-after-free", refRes.Faults)
	}
	want := machineState(ref)
	tape := refRes.Schedule
	faultStep := refRes.Faults[0].Step

	// Pause strictly after the fault landed.
	k := faultStep + 1
	cfg.Sched = &snapReplay{tape: tape}
	mb := mustMachine(t, cfg)
	for i := 0; i < k; i++ {
		if !mb.Step() {
			t.Fatalf("replay ended early at %d/%d", i, k)
		}
	}
	if len(mb.Faults()) == 0 {
		t.Fatal("pause point did not capture the fault")
	}
	mc, err := Restore(mb.Snapshot(), Config{Sched: &snapReplay{tape: tape, pos: k}})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	mc.Run()
	if got := machineState(mc); got != want {
		t.Fatalf("post-fault restore diverges\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestSnapshotIsOlderThanDirtyWrites pins the O(dirty) property: after a
// first snapshot, writes copy only the touched blocks, and a second
// snapshot re-images only those.
func TestSnapshotIsOlderThanDirtyWrites(t *testing.T) {
	const src = `
global @a = 1
global @b = 2

func @main() {
entry:
  store 10, @a
  store 20, @a
  store 30, @b
  ret 0
}
`
	mod, err := ir.Parse("dirty.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m := mustMachine(t, Config{Module: mod, Sched: &rr{last: -1}})
	s1 := m.Snapshot()
	if !m.Step() { // store 10, @a — copies @a's page once
		t.Fatal("step 1 failed")
	}
	if got := m.Mem().CowPagesCopied(); got != 1 {
		t.Fatalf("after first store: %d pages copied, want 1", got)
	}
	if !m.Step() { // store 20, @a — same page, already private
		t.Fatal("step 2 failed")
	}
	if got := m.Mem().CowPagesCopied(); got != 1 {
		t.Fatalf("after second store to same page: %d pages copied, want 1", got)
	}
	s2 := m.Snapshot()
	if !m.Step() { // store 30, @b — @b shared with s2 now
		t.Fatal("step 3 failed")
	}
	if got := m.Mem().CowPagesCopied(); got != 2 {
		t.Fatalf("after store to second page: %d pages copied, want 2", got)
	}
	// s1 must still see the pristine values, s2 the mid-run ones.
	m1, err := Restore(s1, Config{Sched: &rr{last: -1}})
	if err != nil {
		t.Fatalf("restore s1: %v", err)
	}
	if a := m1.Mem().Peek(m1.GlobalAddr("a")); a != 1 {
		t.Fatalf("s1 sees @a=%d, want 1", a)
	}
	m2, err := Restore(s2, Config{Sched: &rr{last: -1}})
	if err != nil {
		t.Fatalf("restore s2: %v", err)
	}
	if a, b := m2.Mem().Peek(m2.GlobalAddr("a")), m2.Mem().Peek(m2.GlobalAddr("b")); a != 20 || b != 2 {
		t.Fatalf("s2 sees @a=%d @b=%d, want 20 2", a, b)
	}
}
