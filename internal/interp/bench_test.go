package interp

import (
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

const spinBenchSrc = `
global @x = 0
func @main() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 1000000000
  br %c, body, done
body:
  %v = load @x
  %v2 = add %v, 1
  store %v2, @x
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}
`

// BenchmarkStepThroughput measures raw interpreter speed (instructions per
// second) on a tight load/store loop.
func BenchmarkStepThroughput(b *testing.B) {
	mod := ir.MustParse("bench.oir", spinBenchSrc)
	m, err := New(Config{Module: mod, Sched: firstSched{}, MaxSteps: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step() {
			b.Fatal("machine stopped early")
		}
	}
}

const contendedBenchSrc = `
global @x = 0
func @worker() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 200
  br %c, body, done
body:
  %v = load @x
  %v2 = add %v, 1
  store %v2, @x
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker)
  %t2 = call @spawn(@worker)
  %t3 = call @spawn(@worker)
  %t4 = call @spawn(@worker)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %r3 = call @join(%t3)
  %r4 = call @join(%t4)
  ret 0
}
`

// BenchmarkContendedRun measures a full multithreaded run including spawn,
// join, and scheduler churn.
func BenchmarkContendedRun(b *testing.B) {
	mod := ir.MustParse("bench.oir", contendedBenchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(Config{Module: mod, Sched: &rr{last: -1}, MaxSteps: 100000})
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		if res.MaxStepsHit {
			b.Fatal("hit step bound")
		}
	}
}
