package interp

import (
	"fmt"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// EventKind classifies runtime events delivered to observers (race
// detectors, tracers, verifiers).
type EventKind int

// Event kinds. Read/Write are plain shared-memory accesses; Acquire and
// Release are lock operations (and, after OWL's ad-hoc sync annotation,
// also annotated loads/stores — the annotation happens in the detector,
// not here); Spawn/Join create happens-before edges; Branch reports a
// conditional branch outcome (consumed by the vulnerability verifier's
// divergence analysis).
const (
	EvRead EventKind = iota + 1
	EvWrite
	EvAcquire
	EvRelease
	EvSpawn
	EvJoin
	EvAlloc
	EvFree
	EvBranch
	EvCall
	EvRet
)

var eventNames = map[EventKind]string{
	EvRead: "read", EvWrite: "write", EvAcquire: "acquire",
	EvRelease: "release", EvSpawn: "spawn", EvJoin: "join",
	EvAlloc: "alloc", EvFree: "free", EvBranch: "branch",
	EvCall: "call", EvRet: "ret",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one runtime event.
type Event struct {
	Kind  EventKind
	TID   ThreadID
	Addr  int64 // accessed address / lock address
	Val   int64 // value read or written; branch: 1=then 0=else
	Aux   int64 // spawn/join: peer thread id; alloc: size
	Instr *ir.Instr
	// Stack is a fresh snapshot built for this event; observers may retain
	// it without copying.
	Stack callstack.Stack
	Step  int
}

// IsAccess reports whether the event is a plain memory access.
func (e Event) IsAccess() bool { return e.Kind == EvRead || e.Kind == EvWrite }

func (e Event) String() string {
	loc := "?"
	if e.Instr != nil {
		loc = e.Instr.Loc()
	}
	return fmt.Sprintf("[step %d] t%d %s addr=0x%x val=%d %s", e.Step, e.TID, e.Kind, e.Addr, e.Val, loc)
}

// Observer consumes runtime events. Observers run synchronously inside the
// interpreter step, so they see a totally ordered event stream.
type Observer interface {
	OnEvent(m *Machine, e Event)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(m *Machine, e Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(m *Machine, e Event) { f(m, e) }
