package interp

import (
	"fmt"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// EventKind classifies runtime events delivered to observers (race
// detectors, tracers, verifiers).
type EventKind int

// Event kinds. Read/Write are plain shared-memory accesses; Acquire and
// Release are lock operations (and, after OWL's ad-hoc sync annotation,
// also annotated loads/stores — the annotation happens in the detector,
// not here); Spawn/Join create happens-before edges; Branch reports a
// conditional branch outcome (consumed by the vulnerability verifier's
// divergence analysis).
const (
	EvRead EventKind = iota + 1
	EvWrite
	EvAcquire
	EvRelease
	EvSpawn
	EvJoin
	EvAlloc
	EvFree
	EvBranch
	EvCall
	EvRet

	evKindCount // array bound for per-kind tables
)

var eventNames = map[EventKind]string{
	EvRead: "read", EvWrite: "write", EvAcquire: "acquire",
	EvRelease: "release", EvSpawn: "spawn", EvJoin: "join",
	EvAlloc: "alloc", EvFree: "free", EvBranch: "branch",
	EvCall: "call", EvRet: "ret",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// StackRef is a zero-allocation handle on a thread's call stack at one
// instruction: the immutable caller chain (shared with the thread's
// frames) plus the innermost function and position. Capturing one is a
// few word copies, so the machine attaches a ref to every event that
// any observer declared interest in; materializing the full
// callstack.Stack is deferred to the rare consumer that actually prints
// or analyzes it (a race report, a watched read).
type StackRef struct {
	chain *callstack.Node
	fn    string
	pos   ir.Pos
}

// IsZero reports whether the ref captures nothing (no stack was
// requested for the event, or the thread had no frames).
func (r StackRef) IsZero() bool { return r.fn == "" && r.chain == nil }

// Depth returns the number of frames the materialized stack would have.
func (r StackRef) Depth() int {
	if r.IsZero() {
		return 0
	}
	return r.chain.Depth() + 1
}

// Materialize builds the callstack.Stack the ref denotes. The result is
// freshly allocated (outer entries may share the chain's cached prefix
// backing) and must be treated as read-only, like every stack the
// interpreter hands out.
func (r StackRef) Materialize() callstack.Stack {
	if r.IsZero() {
		return nil
	}
	return r.chain.Materialize(callstack.Entry{Fn: r.fn, Pos: r.pos})
}

// Event is one runtime event.
type Event struct {
	Kind  EventKind
	TID   ThreadID
	Addr  int64 // accessed address / lock address
	Val   int64 // value read or written; branch: 1=then 0=else
	Aux   int64 // spawn/join: peer thread id; alloc: size
	Instr *ir.Instr
	Step  int

	// sref is the lazily materializable call-stack handle. It is only
	// populated when some observer declared (via StackPolicy) that it
	// needs stacks for this event kind; capture is O(1) and
	// allocation-free either way.
	sref StackRef
}

// StackRef returns the event's call-stack handle. It is the zero ref
// when no attached observer declared a need for stacks of this kind.
// Observers may retain it; materialize with StackRef.Materialize or,
// memoized per step, with Machine.EventStack.
func (e Event) StackRef() StackRef { return e.sref }

// IsAccess reports whether the event is a plain memory access.
func (e Event) IsAccess() bool { return e.Kind == EvRead || e.Kind == EvWrite }

func (e Event) String() string {
	loc := "?"
	if e.Instr != nil {
		loc = e.Instr.Loc()
	}
	return fmt.Sprintf("[step %d] t%d %s addr=0x%x val=%d %s", e.Step, e.TID, e.Kind, e.Addr, e.Val, loc)
}

// Observer consumes runtime events. Observers run synchronously inside the
// interpreter step, so they see a totally ordered event stream.
type Observer interface {
	OnEvent(m *Machine, e Event)
}

// StackPolicy is an optional refinement of Observer: implementations
// declare which event kinds they need call stacks for, and the machine
// skips stack capture entirely for kinds no observer wants. Observers
// that do not implement it are conservatively assumed to need stacks
// for every kind. An observer that returned false for a kind must not
// materialize that event's stack.
type StackPolicy interface {
	NeedsStack(k EventKind) bool
}

// SwitchObserver is notified at every context switch the scheduler
// performs: fromInstr is the last instruction the outgoing thread
// executed, toInstr the instruction the incoming thread is about to
// execute. Unlike Observer it fires at instruction granularity (not just
// at event-emitting instructions) and costs nothing when no switch
// observer is attached, so it is the feed for lightweight schedule
// instrumentation such as the interleaving-coverage map behind
// coverage-guided exploration. Switch observers attach via
// Config.SwitchObservers and run synchronously inside Step, before the
// incoming instruction executes.
type SwitchObserver interface {
	OnSwitch(m *Machine, from, to ThreadID, fromInstr, toInstr *ir.Instr)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(m *Machine, e Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(m *Machine, e Event) { f(m, e) }
