package interp

import (
	"testing"
	"testing/quick"
)

func TestArenaAllocLoadStore(t *testing.T) {
	a := NewArena()
	b := a.Alloc(4, BlockHeap, "blk", nil)
	if b.Base == 0 {
		t.Fatal("NULL base allocated")
	}
	if f := a.Store(b.Base+2, 42); f != nil {
		t.Fatalf("store: %v", f)
	}
	v, f := a.Load(b.Base + 2)
	if f != nil || v != 42 {
		t.Fatalf("load = %d, %v", v, f)
	}
}

func TestArenaGapsBetweenBlocks(t *testing.T) {
	a := NewArena()
	b1 := a.Alloc(2, BlockHeap, "b1", nil)
	b2 := a.Alloc(2, BlockHeap, "b2", nil)
	// One-word unaddressable gap: off-by-one overflow faults rather than
	// silently landing in the next block.
	if _, f := a.Load(b1.Base + 2); f == nil || f.Kind != FaultOOB {
		t.Errorf("gap access fault = %v, want OOB", f)
	}
	if b2.Base != b1.Base+3 {
		t.Errorf("b2 base = %d, want %d", b2.Base, b1.Base+3)
	}
}

func TestArenaFaultTaxonomy(t *testing.T) {
	a := NewArena()
	b := a.Alloc(2, BlockHeap, "b", nil)
	g := a.Alloc(1, BlockGlobal, "@g", nil)

	if _, f := a.Load(0); f == nil || f.Kind != FaultNilDeref {
		t.Errorf("NULL load = %v", f)
	}
	if f := a.Free(0, nil); f == nil || f.Kind != FaultNilDeref {
		t.Errorf("free(NULL) = %v", f)
	}
	if f := a.Free(b.Base+1, nil); f == nil || f.Kind != FaultBadFree {
		t.Errorf("interior free = %v", f)
	}
	if f := a.Free(g.Base, nil); f == nil || f.Kind != FaultBadFree {
		t.Errorf("free of global = %v", f)
	}
	if f := a.Free(b.Base, nil); f != nil {
		t.Errorf("valid free = %v", f)
	}
	if f := a.Free(b.Base, nil); f == nil || f.Kind != FaultDoubleFree {
		t.Errorf("double free = %v", f)
	}
	if _, f := a.Load(b.Base); f == nil || f.Kind != FaultUseAfterFree {
		t.Errorf("UAF load = %v", f)
	}
	if f := a.Store(b.Base, 1); f == nil || f.Kind != FaultUseAfterFree {
		t.Errorf("UAF store = %v", f)
	}
}

func TestArenaPeekPoke(t *testing.T) {
	a := NewArena()
	b := a.Alloc(2, BlockHeap, "b", nil)
	if !a.Poke(b.Base, 9) {
		t.Error("poke failed")
	}
	if a.Peek(b.Base) != 9 {
		t.Error("peek mismatch")
	}
	if a.Poke(0xdeadbeef, 1) {
		t.Error("poke of unmapped address succeeded")
	}
	if a.Peek(0xdeadbeef) != 0 {
		t.Error("peek of unmapped address non-zero")
	}
	// Peek still reads freed blocks (stale values for UAF reports).
	a.Free(b.Base, nil)
	if a.Peek(b.Base) != 9 {
		t.Error("peek lost stale value after free")
	}
}

// Property: Find is exact — every address inside an allocated block maps
// to that block, every gap address maps to nothing.
func TestArenaFindProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewArena()
		var blocks []*MemBlock
		for _, s := range sizes {
			if len(blocks) >= 24 {
				break
			}
			blocks = append(blocks, a.Alloc(int64(s%7)+1, BlockHeap, "b", nil))
		}
		for _, b := range blocks {
			for off := int64(0); off < b.Size; off++ {
				if a.Find(b.Base+off) != b {
					return false
				}
			}
			if got := a.Find(b.Base + b.Size); got == b {
				return false // gap word must not resolve to the block
			}
			if a.Find(b.Base-1) == b {
				return false
			}
		}
		return a.Find(0) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Load after Store round-trips for arbitrary in-bounds offsets.
func TestArenaStoreLoadProperty(t *testing.T) {
	f := func(size uint8, off uint8, val int64) bool {
		n := int64(size%16) + 1
		a := NewArena()
		b := a.Alloc(n, BlockHeap, "b", nil)
		o := int64(off) % n
		if fault := a.Store(b.Base+o, val); fault != nil {
			return false
		}
		v, fault := a.Load(b.Base + o)
		return fault == nil && v == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArenaNameForOffsets(t *testing.T) {
	a := NewArena()
	b := a.Alloc(4, BlockGlobal, "@buf", nil)
	if got := a.NameFor(b.Base); got != "@buf" {
		t.Errorf("base name = %q", got)
	}
	if got := a.NameFor(b.Base + 3); got != "@buf+3" {
		t.Errorf("offset name = %q", got)
	}
}
