// Package interp executes OWL IR deterministically. Threads are explicit
// state machines; a pluggable scheduler chooses which thread executes the
// next instruction, so a recorded schedule replays exactly — the property
// that OWL's dynamic race verifier (§5.2) and vulnerability verifier
// (§6.2) rely on, standing in for LLDB's thread-specific breakpoints on
// native code.
//
// Memory is a bounds- and lifetime-checked arena (see Arena) so that the
// consequences the paper's attacks produce — buffer overflows, NULL
// pointer and NULL function-pointer dereferences, use-after-free, double
// free — surface as typed faults the attack oracles can observe.
package interp

import (
	"errors"
	"fmt"

	"github.com/conanalysis/owl/internal/bytecode"
	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// Engine selects how a machine executes instructions. Both engines are
// observationally identical — same events, faults, output, schedule
// traces, and step counts for the same scheduler decisions — so the
// tree walker doubles as the differential oracle for the compiled
// engine (see internal/race's engine-differential tests).
type Engine string

// Engines.
const (
	// EngineTree (also selected by the empty string) walks the ir tree
	// directly: simple, obviously correct, the reference semantics.
	EngineTree Engine = "tree"
	// EngineBytecode executes the flat bytecode lowered once per module
	// by internal/bytecode: pre-resolved operands, per-edge phi move
	// lists, superinstruction batching — several times faster.
	EngineBytecode Engine = "bytecode"
)

// Scheduler picks the next thread to run. Implementations live in
// internal/sched; the interface is defined here so the machine does not
// depend on concrete strategies.
type Scheduler interface {
	// Next returns one element of runnable (which is non-empty and sorted
	// ascending). step is the machine's global step counter.
	Next(runnable []ThreadID, step int) ThreadID
}

// PlanningScheduler is an optional Scheduler extension that lets the
// compiled engine batch its per-step consultations. Plan writes the
// choices the next len(buf) Next calls would make — assuming the
// runnable set stays exactly `runnable` and step increments by one per
// call — into buf WITHOUT advancing scheduler state, returning how
// many entries it planned (0 disables the fast path for this window).
// Advance then applies the state change of the first k of those calls.
// The engine commits exactly the prefix it executed, so a batch cut
// short by a status transition (block, wake, spawn, exit, fault)
// leaves the scheduler in precisely the state per-step Next calls
// would have produced: Plan + Advance(k) must be observably identical
// to k Next calls for every k ≤ the planned count.
type PlanningScheduler interface {
	Scheduler
	Plan(runnable []ThreadID, step int, buf []ThreadID) int
	Advance(runnable []ThreadID, step, k int)
}

// BPAction is a breakpoint handler's decision.
type BPAction int

// Breakpoint actions.
const (
	BPContinue BPAction = iota + 1
	BPSuspend
)

// BreakpointFunc inspects the instruction a thread is about to execute and
// may suspend just that thread ("thread-specific breakpoints", §5.2).
type BreakpointFunc func(m *Machine, t *Thread, in *ir.Instr) BPAction

// Config configures a machine run.
type Config struct {
	Module *ir.Module
	// Entry is the entry function name (default "main").
	Entry string
	// Args are passed to the entry function's parameters.
	Args []int64
	// Inputs is the program-input tape consumed by the input() intrinsic;
	// this is how OWL's "subtle program inputs" reach a workload.
	Inputs []int64
	Sched  Scheduler
	// MaxSteps bounds execution (default 1_000_000).
	MaxSteps  int
	Observers []Observer
	// SwitchObservers are notified at every context switch (see
	// SwitchObserver); kept separate from Observers so attaching one does
	// not put a per-event callback on the hot path.
	SwitchObservers []SwitchObserver
	// Breakpoint, when set, is consulted before each instruction.
	Breakpoint BreakpointFunc
	// HaltOnFault stops the whole machine at the first fault (default:
	// only the faulting thread halts, as with a per-thread crash handler).
	HaltOnFault bool
	// Engine selects the execution engine ("" means EngineTree).
	Engine Engine
}

// StallReason says why Step could make no progress.
type StallReason int

// Stall reasons.
const (
	StallNone      StallReason = iota // machine progressed or finished
	StallDone                         // all threads done/faulted
	StallDeadlock                     // live threads, all blocked on sync
	StallSuspended                    // progress blocked only by suspended threads
)

func (s StallReason) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallDone:
		return "done"
	case StallDeadlock:
		return "deadlock"
	case StallSuspended:
		return "suspended"
	default:
		return fmt.Sprintf("StallReason(%d)", int(s))
	}
}

// Result summarizes a run.
type Result struct {
	ExitCode int
	Steps    int
	Faults   []*Fault
	Output   []string
	// Schedule is the sequence of thread choices taken; replaying it with
	// sched.NewReplay reproduces the run exactly.
	Schedule []ThreadID
	// Stall records why the run ended.
	Stall StallReason
	// UID is the process uid at end of run (0 = root); attack oracles use
	// it to detect privilege escalation.
	UID int64
	// MaxStepsHit reports the run was truncated.
	MaxStepsHit bool
}

// ErrNoScheduler is returned by New when cfg.Sched is nil.
var ErrNoScheduler = errors.New("interp: config has no scheduler")

// DefaultMaxSteps is the execution bound applied when Config.MaxSteps
// is zero. Exported so layers that reason about the bound without
// building a machine (sched.SnapCache's resume-depth check) agree with
// the interpreter.
const DefaultMaxSteps = 1_000_000

// funcRefBase aliases the bytecode package's constant so compile-time
// folded function references agree with the ones eval hands out.
const funcRefBase = bytecode.FuncRefBase

// Machine executes one program instance.
type Machine struct {
	cfg  Config
	mod  *ir.Module
	mem  *Arena
	fs   *FS
	step int

	threads     []*Thread
	live        []*Thread // threads not yet done/faulted (lazily compacted)
	trace       []ThreadID
	runnableBuf []ThreadID

	globals map[string]int64 // global name -> base address
	funcIDs map[string]int64 // function name -> func ref value
	funcs   []*ir.Func       // index -> function
	interns map[string]int64 // string literal -> address

	// locks is the held-mutex table. Programs hold a handful of locks at
	// a time, so a linear-scan slice beats a map on the lock/unlock hot
	// path (no hashing, no tombstones; release swaps with the last entry).
	locks          []lockEntry
	intrinsicByRef map[int64]string // synthetic func-ref id -> intrinsic name

	inputPos  int
	uid       int64
	output    []string
	faults    []*Fault
	execLog   []string
	forkCount int
	exited    bool
	exitCode  int

	rngState uint64 // deterministic per-machine PRNG for rand intrinsic
	hasObs   bool   // skip event construction entirely when nobody listens

	// hasSwitch gates the context-switch bookkeeping below so the hot
	// path pays nothing when no SwitchObserver is attached.
	hasSwitch bool
	prevTID   ThreadID
	prevInstr *ir.Instr

	// needStack[k] records whether any observer declared (via the
	// StackPolicy interface) that it needs call stacks for event kind k;
	// emit only captures a StackRef for kinds somebody wants.
	needStack [evKindCount]bool

	// phiBuf and argBuf are reused scratch buffers for block-entry phi
	// evaluation and call-argument evaluation, keeping the interpreter
	// hot path allocation-free.
	phiBuf []phiUpdate
	argBuf []int64

	// Compiled-engine state (nil/unused under EngineTree). globalBase
	// and globalBlock are indexed by module global ordinal so RefGlobal
	// operands and loadg/storeg words skip the name map and the arena's
	// address search; the block pointers are stable for the machine's
	// lifetime (globals are never freed). moveBuf is the edge-move
	// scratch buffer (the compiled twin of phiBuf). superinstrHits
	// counts fully-batched superinstructions.
	prog           *bytecode.Program
	globalBase     []int64
	globalBlock    []*MemBlock
	moveBuf        []int64
	superinstrHits int64

	// planBuf holds scheduler choices pre-planned by a
	// PlanningScheduler; planSize adapts the window to how much of the
	// last plan survived before a status transition cut it short.
	planBuf  []ThreadID
	planSize int

	// schedDirty/anySleeping let the batched dispatch loop reuse
	// runnableBuf across steps: every status transition marks the set
	// dirty, and any sleeping thread forces recomputation because the
	// mere advance of the clock can wake it.
	schedDirty  bool
	anySleeping bool

	// stackMemo caches the last materialized event stack per (step,
	// thread) so several observers of one event share one allocation.
	stackMemoStep int
	stackMemoTID  ThreadID
	stackMemo     callstack.Stack
}

type phiUpdate struct {
	dst string
	val int64
}

// lockEntry is one held mutex in the machine's lock table.
type lockEntry struct {
	addr  int64
	owner ThreadID
}

// lockOwner reports the holder of the mutex at addr, if held.
func (m *Machine) lockOwner(addr int64) (ThreadID, bool) {
	for i := range m.locks {
		if m.locks[i].addr == addr {
			return m.locks[i].owner, true
		}
	}
	return 0, false
}

// lockAcquire records tid as the holder of the mutex at addr.
func (m *Machine) lockAcquire(addr int64, tid ThreadID) {
	m.locks = append(m.locks, lockEntry{addr: addr, owner: tid})
}

// lockRelease drops the mutex at addr from the table.
func (m *Machine) lockRelease(addr int64) {
	for i := range m.locks {
		if m.locks[i].addr == addr {
			last := len(m.locks) - 1
			m.locks[i] = m.locks[last]
			m.locks = m.locks[:last]
			return
		}
	}
}

// New builds a machine for the given configuration. The module must be
// frozen.
func New(cfg Config) (*Machine, error) {
	if cfg.Module == nil || !cfg.Module.Frozen() {
		return nil, errors.New("interp: module missing or not frozen")
	}
	if cfg.Sched == nil {
		return nil, ErrNoScheduler
	}
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	entry := cfg.Module.Func(cfg.Entry)
	if entry == nil {
		return nil, fmt.Errorf("interp: entry function @%s not found", cfg.Entry)
	}
	var prog *bytecode.Program
	switch cfg.Engine {
	case "", EngineTree:
	case EngineBytecode:
		var err error
		if prog, err = bytecode.Compile(cfg.Module); err != nil {
			return nil, fmt.Errorf("interp: %w", err)
		}
	default:
		return nil, fmt.Errorf("interp: unknown engine %q", cfg.Engine)
	}
	m := &Machine{
		prog:          prog,
		schedDirty:    true,
		cfg:           cfg,
		mod:           cfg.Module,
		mem:           NewArena(),
		fs:            NewFS(),
		globals:       make(map[string]int64),
		funcIDs:       make(map[string]int64),
		interns:       make(map[string]int64),
		hasObs:        len(cfg.Observers) > 0,
		hasSwitch:     len(cfg.SwitchObservers) > 0,
		prevTID:       -1,
		uid:           1000, // unprivileged by default; setuid(0) is the attack
		rngState:      0x9e3779b97f4a7c15,
		stackMemoStep: -1,
		trace:         make([]ThreadID, 0, traceCap(cfg.MaxSteps)),
	}
	for _, o := range cfg.Observers {
		sp, declared := o.(StackPolicy)
		for k := EvRead; k < evKindCount; k++ {
			if !declared || sp.NeedsStack(k) {
				m.needStack[k] = true
			}
		}
	}
	for _, g := range cfg.Module.Globals {
		b := m.mem.Alloc(int64(g.Size), BlockGlobal, "@"+g.Name, nil)
		if len(g.InitWords) > 0 {
			copy(b.Words, g.InitWords)
		} else {
			b.Words[0] = g.Init
		}
		m.globals[g.Name] = b.Base
	}
	for i, f := range cfg.Module.Funcs {
		m.funcIDs[f.Name] = funcRefBase + int64(i)
		m.funcs = append(m.funcs, f)
	}
	if m.prog != nil {
		m.initGlobalTables()
	}
	main := m.newThread(entry, cfg.Args, nil)
	_ = main
	return m, nil
}

// initGlobalTables builds the compiled engine's ordinal-indexed global
// address and block tables (after the arena holds every global).
func (m *Machine) initGlobalTables() {
	gs := m.mod.Globals
	m.globalBase = make([]int64, len(gs))
	m.globalBlock = make([]*MemBlock, len(gs))
	for i, g := range gs {
		addr := m.globals[g.Name]
		m.globalBase[i] = addr
		m.globalBlock[i] = m.mem.Find(addr)
	}
}

// Engine returns the engine the machine executes with.
func (m *Machine) Engine() Engine {
	if m.prog != nil {
		return EngineBytecode
	}
	return EngineTree
}

// SuperinstrHits returns how many superinstructions the compiled
// engine completed as a single batch (0 under EngineTree). The count
// is a dispatch statistic, not part of the captured execution state:
// it is not carried across Snapshot/Restore, so resumed runs only
// count their own suffix.
func (m *Machine) SuperinstrHits() int64 { return m.superinstrHits }

// CompileNS returns the module-lowering wall-clock nanoseconds when
// running compiled (0 under EngineTree). The lowering is memoized per
// module, so concurrent machines report the same one-time cost.
func (m *Machine) CompileNS() int64 {
	if m.prog == nil {
		return 0
	}
	return m.prog.CompileNS
}

// Mod returns the module under execution.
func (m *Machine) Mod() *ir.Module { return m.mod }

// Mem returns the machine's arena (verifier/oracle introspection).
func (m *Machine) Mem() *Arena { return m.mem }

// FS returns the machine's file system model.
func (m *Machine) FS() *FS { return m.fs }

// UID returns the current process uid.
func (m *Machine) UID() int64 { return m.uid }

// StepCount returns the number of executed steps so far.
func (m *Machine) StepCount() int { return m.step }

// Output returns the lines printed so far.
func (m *Machine) Output() []string { return m.output }

// Faults returns the faults recorded so far.
func (m *Machine) Faults() []*Fault { return m.faults }

// Threads returns the machine's threads (do not mutate).
func (m *Machine) Threads() []*Thread { return m.threads }

// Thread returns the thread with the given id, or nil.
func (m *Machine) Thread(id ThreadID) *Thread {
	if int(id) < 0 || int(id) >= len(m.threads) {
		return nil
	}
	return m.threads[id]
}

// GlobalAddr returns the address of a global, or 0.
func (m *Machine) GlobalAddr(name string) int64 { return m.globals[name] }

// FuncForRef resolves a function-reference value, or nil.
func (m *Machine) FuncForRef(v int64) *ir.Func {
	idx := v - funcRefBase
	if idx < 0 || idx >= int64(len(m.funcs)) {
		return nil
	}
	return m.funcs[idx]
}

// FuncRef returns the function-reference value for a named module function
// (0 if absent) — used by tests and workload setup.
func (m *Machine) FuncRef(name string) int64 { return m.funcIDs[name] }

func (m *Machine) newThread(fn *ir.Func, args []int64, spawn *ir.Instr) *Thread {
	var fr *Frame
	if m.prog != nil {
		fc := m.prog.Funcs[fn]
		fr = &Frame{Fn: fn, Block: fn.Entry(), BC: fc, code: fc.Code,
			FPC: fc.EntryPC, Slots: make([]int64, fc.NumSlots), prevEdge: -1}
		for i, s := range fc.ParamSlots {
			if i < len(args) {
				fr.Slots[s] = args[i]
			}
		}
	} else {
		fr = &Frame{Fn: fn, Block: fn.Entry(), Regs: make(map[string]int64, 8)}
		for i, p := range fn.Params {
			if i < len(args) {
				fr.Regs[p] = args[i]
			} else {
				fr.Regs[p] = 0
			}
		}
	}
	t := &Thread{ID: ThreadID(len(m.threads)), Status: StatusRunnable,
		Frames: []*Frame{fr}, top: fr, SpawnInstr: spawn}
	m.threads = append(m.threads, t)
	m.live = append(m.live, t)
	m.schedDirty = true
	if fr.BC == nil {
		// Entry-block phis read the zeroed register state; compiled frames
		// start with zeroed slots, so their entry edge needs no moves.
		m.enterBlock(t, fn.Entry(), "")
	}
	return t
}

// enterBlock transfers control to blk, evaluating its leading phi nodes
// atomically (all reads against the pre-transfer register state).
func (m *Machine) enterBlock(t *Thread, blk *ir.Block, from string) {
	fr := t.Top()
	fr.PrevBlock = from
	fr.Block = blk
	fr.PC = 0
	// Evaluate leading phis against a snapshot (scratch buffer reused
	// across calls — block entry is on the interpreter hot path).
	updates := m.phiBuf[:0]
	for _, in := range blk.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		v := int64(0)
		found := false
		for _, pe := range in.Phis {
			if pe.Block == from {
				v, _ = m.eval(t, pe.Val)
				found = true
				break
			}
		}
		if !found && from != "" {
			// No matching edge: LLVM would call this malformed; we use 0.
			v = 0
		}
		updates = append(updates, phiUpdate{in.Dst, v})
		fr.PC++
	}
	for _, u := range updates {
		fr.Regs[u.dst] = u.val
	}
	m.phiBuf = updates[:0]
}

func (m *Machine) emit(e Event) {
	e.Step = m.step
	if m.needStack[e.Kind] {
		// Capture is a handle copy, not a snapshot: the caller chain is
		// immutable and the innermost position is the emitting
		// instruction (every emit site runs before the PC advances).
		e.sref = m.threads[e.TID].stackRef()
	}
	for _, o := range m.cfg.Observers {
		o.OnEvent(m, e)
	}
}

// EventStack materializes the event's call stack, memoized per (step,
// thread) so several observers of the same event share one allocation.
// It returns nil when no observer declared a need for stacks of the
// event's kind (see StackPolicy). The result must be treated as
// read-only.
func (m *Machine) EventStack(e Event) callstack.Stack {
	if e.sref.IsZero() {
		return nil
	}
	if m.stackMemoStep == e.Step && m.stackMemoTID == e.TID && m.stackMemo != nil {
		return m.stackMemo
	}
	st := e.sref.Materialize()
	m.stackMemoStep, m.stackMemoTID, m.stackMemo = e.Step, e.TID, st
	return st
}

func (m *Machine) fault(t *Thread, in *ir.Instr, f *Fault) {
	f.TID = t.ID
	f.Instr = in
	f.Stack = t.Stack()
	f.Step = m.step
	m.faults = append(m.faults, f)
	t.Status = StatusFaulted
	m.schedDirty = true
	m.wakeJoiners(t)
	if m.cfg.HaltOnFault {
		m.exited = true
		m.exitCode = 139
	}
}

// eval evaluates a non-label operand in the thread's top frame.
func (m *Machine) eval(t *Thread, o ir.Operand) (int64, *Fault) {
	switch o.Kind {
	case ir.OperandConst:
		return o.Imm, nil
	case ir.OperandReg:
		fr := t.Top()
		if fr.Slots != nil {
			if s, ok := fr.BC.SlotOf[o.Name]; ok {
				return fr.Slots[s], nil
			}
			return 0, nil // a name the tree walker would read as a missing map entry
		}
		return fr.Regs[o.Name], nil
	case ir.OperandGlobal:
		if a, ok := m.globals[o.Name]; ok {
			return a, nil
		}
		// "@name" in an argument position may also denote a function
		// reference (e.g. call @spawn(@worker)): resolve like OperandFunc.
		return m.eval(t, ir.FuncOp(o.Name))
	case ir.OperandFunc:
		if v, ok := m.funcIDs[o.Name]; ok {
			return v, nil
		}
		// Intrinsic reference: give it a synthetic id above all module
		// functions so indirect calls to intrinsics also work.
		if isIntrinsic(o.Name) {
			id := funcRefBase + int64(len(m.funcs))
			m.funcs = append(m.funcs, nil) // placeholder
			m.funcIDs[o.Name] = id
			m.intrinsicRefs(id, o.Name)
			return id, nil
		}
		return 0, &Fault{Kind: FaultUnknownIntrinsic, Msg: "@" + o.Name}
	case ir.OperandString:
		return m.intern(o.Str), nil
	default:
		return 0, &Fault{Kind: FaultBadCall, Msg: fmt.Sprintf("cannot evaluate operand %s", o)}
	}
}

func (m *Machine) intrinsicRefs(id int64, name string) {
	if m.intrinsicByRef == nil {
		m.intrinsicByRef = make(map[int64]string)
	}
	m.intrinsicByRef[id] = name
}

// intern returns the address of a global block holding the string.
func (m *Machine) intern(s string) int64 {
	if a, ok := m.interns[s]; ok {
		return a
	}
	words := ir.StringToWords(s)
	b := m.mem.Alloc(int64(len(words)), BlockGlobal, fmt.Sprintf("str%q", s), nil)
	copy(b.Words, words)
	m.interns[s] = b.Base
	return b.Base
}

// runnableIDs returns the ids of threads the scheduler may pick, ascending
// (m.threads is already ID-ordered). The returned slice is a reused buffer
// valid until the next call.
func (m *Machine) runnableIDs() []ThreadID {
	ids := m.runnableBuf[:0]
	live := m.live[:0]
	sleeping := false
	for _, t := range m.live {
		switch t.Status {
		case StatusDone, StatusFaulted:
			continue // drop from the live list
		case StatusSleeping:
			sleeping = true
		}
		live = append(live, t)
		if t.Runnable(m.step) {
			ids = append(ids, t.ID)
		}
	}
	m.live = live
	m.runnableBuf = ids
	m.schedDirty = false
	m.anySleeping = sleeping
	return ids
}

// runnableCached returns the runnable set, recomputing only when a
// status transition happened since the last scan or a sleeping thread
// could be woken by the clock alone.
func (m *Machine) runnableCached() []ThreadID {
	if m.schedDirty || m.anySleeping {
		return m.runnableIDs()
	}
	return m.runnableBuf
}

// LastScheduled returns the id of the thread that executed the most recent
// step, if any.
func (m *Machine) LastScheduled() (ThreadID, bool) {
	if len(m.trace) == 0 {
		return 0, false
	}
	return m.trace[len(m.trace)-1], true
}

// Stall reports the current stall state without executing anything.
func (m *Machine) Stall() StallReason {
	if m.exited {
		return StallDone
	}
	if len(m.runnableIDs()) > 0 {
		return StallNone
	}
	anyLive, anySuspended := false, false
	for _, t := range m.threads {
		switch t.Status {
		case StatusDone, StatusFaulted:
			continue
		}
		if t.Status == StatusSleeping && !t.Suspended {
			return StallNone // clock can still advance
		}
		anyLive = true
		if t.Suspended {
			anySuspended = true
		}
	}
	switch {
	case !anyLive:
		return StallDone
	case anySuspended:
		return StallSuspended
	default:
		return StallDeadlock
	}
}

// Step executes one instruction (or suspends a thread at a breakpoint).
// It returns false when no thread is runnable; call Stall for the reason.
func (m *Machine) Step() bool {
	if m.exited || m.step >= m.cfg.MaxSteps {
		return false
	}
	runnable := m.runnableIDs()
	if len(runnable) == 0 {
		// If every live thread is merely sleeping (io_delay), advance the
		// clock to the earliest wake-up instead of declaring a stall.
		wake := -1
		for _, t := range m.threads {
			if t.Status == StatusSleeping && !t.Suspended {
				if wake < 0 || t.SleepUntil < wake {
					wake = t.SleepUntil
				}
			}
		}
		if wake < 0 || wake > m.cfg.MaxSteps {
			return false
		}
		m.step = wake
		runnable = m.runnableIDs()
		if len(runnable) == 0 {
			return false
		}
	}
	tid := m.cfg.Sched.Next(runnable, m.step)
	t := m.Thread(tid)
	if t == nil || !t.Runnable(m.step) {
		// Defensive: a misbehaving scheduler choice falls back to the
		// first runnable thread to preserve determinism.
		t = m.Thread(runnable[0])
	}
	if t.Status == StatusSleeping {
		t.Status = StatusRunnable
	}
	m.traceAppend(t.ID)
	in := t.Cur()
	if in == nil {
		m.fault(t, nil, &Fault{Kind: FaultBadCall, Msg: "fell off end of block"})
		return true
	}
	if m.cfg.Breakpoint != nil {
		if m.cfg.Breakpoint(m, t, in) == BPSuspend {
			t.Suspended = true
			// The suspension consumed the scheduling slot but not the
			// instruction; undo the trace entry so replays stay aligned
			// with executed instructions.
			m.trace = m.trace[:len(m.trace)-1]
			return true
		}
	}
	if m.hasSwitch {
		if m.prevTID >= 0 && m.prevTID != t.ID {
			for _, so := range m.cfg.SwitchObservers {
				so.OnSwitch(m, m.prevTID, t.ID, m.prevInstr, in)
			}
		}
		m.prevTID, m.prevInstr = t.ID, in
	}
	if fr := t.Top(); fr.BC != nil {
		m.execWord(t, fr, in, fr.BC.Code[fr.FPC])
	} else {
		m.exec(t, in)
	}
	m.step++
	return true
}

// traceCap picks the schedule trace's initial capacity: enough that
// short runs never regrow, bounded so machines with a huge step budget
// don't pre-commit memory they won't use.
func traceCap(maxSteps int) int {
	const presize = 8192
	if maxSteps < presize {
		return maxSteps
	}
	return presize
}

// traceAppend grows the schedule trace by doubling. The runtime's
// append tapers its growth factor for large slices, which is the right
// call for long-lived data but re-copies the (per-step, run-long) trace
// so often that its cumulative allocation dominates a no-observer run;
// doubling caps the cumulative cost at ~2x the final size.
func (m *Machine) traceAppend(id ThreadID) {
	if len(m.trace) == cap(m.trace) {
		grown := make([]ThreadID, len(m.trace), 2*cap(m.trace)+64)
		copy(grown, m.trace)
		m.trace = grown
	}
	m.trace = append(m.trace, id)
}

// Run steps the machine until completion, deadlock, fault-halt, or the
// step bound, and returns the result.
func (m *Machine) Run() *Result {
	m.RunLoop()
	return m.Result()
}

// RunLoop steps the machine until it can make no more progress,
// without building a Result. Under the compiled engine it uses the
// batched dispatch loop (unless a breakpoint is attached, which needs
// Step's per-instruction hook); under the tree engine it is exactly
// `for m.Step() {}`. The two are interchangeable: callers may hand-step
// a machine and then let RunLoop finish it.
func (m *Machine) RunLoop() {
	if m.prog != nil && m.cfg.Breakpoint == nil {
		m.runBytecode()
		return
	}
	for m.Step() {
	}
}

// Result snapshots the run outcome so far. The Faults, Output, and
// Schedule slices are read-only views sharing the machine's append-only
// buffers: the machine never rewrites delivered entries and any append
// past a view's clipped capacity reallocates, so the views stay stable
// even if the machine keeps stepping — without re-copying buffers that
// can dwarf the rest of the per-run allocation. The one path that does
// rewrite trace history is the breakpoint suspension undo, so machines
// with a breakpoint get a defensive schedule copy instead.
func (m *Machine) Result() *Result {
	schedule := m.trace[:len(m.trace):len(m.trace)]
	if m.cfg.Breakpoint != nil {
		schedule = append([]ThreadID(nil), m.trace...)
	}
	r := &Result{
		ExitCode:    m.exitCode,
		Steps:       m.step,
		Faults:      m.faults[:len(m.faults):len(m.faults)],
		Output:      m.output[:len(m.output):len(m.output)],
		Schedule:    schedule,
		UID:         m.uid,
		Stall:       m.Stall(),
		MaxStepsHit: m.step >= m.cfg.MaxSteps,
	}
	return r
}

// Resume clears the suspension flag of a thread (breakpoint release).
func (m *Machine) Resume(tid ThreadID) {
	if t := m.Thread(tid); t != nil {
		t.Suspended = false
		m.schedDirty = true
	}
}

// Suspend suspends a thread (verifier control).
func (m *Machine) Suspend(tid ThreadID) {
	if t := m.Thread(tid); t != nil {
		t.Suspended = true
		m.schedDirty = true
	}
}

// PendingAccess describes the memory access a thread is about to perform.
type PendingAccess struct {
	IsWrite bool
	Addr    int64
	// Val is the value about to be written (writes) or currently in
	// memory (reads) — the "value they're about to read and write"
	// security hint from §5.2.
	Val   int64
	Instr *ir.Instr
}

// Pending returns the access the thread's next instruction would perform,
// if that instruction is a plain load or store.
func (m *Machine) Pending(tid ThreadID) (PendingAccess, bool) {
	t := m.Thread(tid)
	if t == nil {
		return PendingAccess{}, false
	}
	in := t.Cur()
	if in == nil {
		return PendingAccess{}, false
	}
	switch in.Op {
	case ir.OpLoad:
		addr, f := m.eval(t, in.Args[0])
		if f != nil {
			return PendingAccess{}, false
		}
		return PendingAccess{Addr: addr, Val: m.mem.Peek(addr), Instr: in}, true
	case ir.OpStore:
		val, f1 := m.eval(t, in.Args[0])
		addr, f2 := m.eval(t, in.Args[1])
		if f1 != nil || f2 != nil {
			return PendingAccess{}, false
		}
		return PendingAccess{IsWrite: true, Addr: addr, Val: val, Instr: in}, true
	default:
		return PendingAccess{}, false
	}
}

func (m *Machine) exec(t *Thread, in *ir.Instr) {
	fr := t.Top()
	advance := func() { fr.PC++ }

	switch in.Op {
	case ir.OpConst:
		fr.Regs[in.Dst] = in.Args[0].Imm
		advance()

	case ir.OpLoad:
		addr, f := m.eval(t, in.Args[0])
		if f == nil {
			var v int64
			v, f = m.mem.Load(addr)
			if f == nil {
				fr.Regs[in.Dst] = v
				if m.hasObs {
					m.emit(Event{Kind: EvRead, TID: t.ID, Addr: addr, Val: v, Instr: in})
				}
				advance()
				return
			}
			f.Addr = addr
		}
		m.fault(t, in, f)

	case ir.OpStore:
		val, f := m.eval(t, in.Args[0])
		if f == nil {
			var addr int64
			addr, f = m.eval(t, in.Args[1])
			if f == nil {
				if f = m.mem.Store(addr, val); f == nil {
					if m.hasObs {
						m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: addr, Val: val, Instr: in})
					}
					advance()
					return
				}
				f.Addr = addr
			}
		}
		m.fault(t, in, f)

	case ir.OpBin:
		a, f := m.eval(t, in.Args[0])
		if f != nil {
			m.fault(t, in, f)
			return
		}
		b, f := m.eval(t, in.Args[1])
		if f != nil {
			m.fault(t, in, f)
			return
		}
		v, f := binOp(in.Bin, a, b)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		fr.Regs[in.Dst] = v
		advance()

	case ir.OpCmp:
		a, _ := m.eval(t, in.Args[0])
		b, _ := m.eval(t, in.Args[1])
		if cmpOp(in.Pred, a, b) {
			fr.Regs[in.Dst] = 1
		} else {
			fr.Regs[in.Dst] = 0
		}
		advance()

	case ir.OpBr:
		c, _ := m.eval(t, in.Args[0])
		taken := c != 0
		if m.hasObs {
			m.emit(Event{Kind: EvBranch, TID: t.ID, Val: boolToInt(taken), Instr: in})
		}
		target := in.Args[2].Name
		if taken {
			target = in.Args[1].Name
		}
		m.enterBlock(t, fr.Fn.Block(target), fr.Block.Name)

	case ir.OpJmp:
		m.enterBlock(t, fr.Fn.Block(in.Args[0].Name), fr.Block.Name)

	case ir.OpPhi:
		// Phis are consumed by enterBlock; reaching one here means control
		// entered mid-block, which the verifier prevents.
		m.fault(t, in, &Fault{Kind: FaultBadCall, Msg: "phi executed outside block entry"})

	case ir.OpRet:
		var v int64
		if len(in.Args) == 1 {
			v, _ = m.eval(t, in.Args[0])
		}
		m.ret(t, v)

	case ir.OpAlloca:
		n, _ := m.eval(t, in.Args[0])
		b := m.mem.Alloc(n, BlockStack, fmt.Sprintf("alloca@%s:%d", fr.Fn.Name, in.Pos.Line), t.Stack())
		fr.Allocas = append(fr.Allocas, b)
		fr.Regs[in.Dst] = b.Base
		if m.hasObs {
			m.emit(Event{Kind: EvAlloc, TID: t.ID, Addr: b.Base, Aux: n, Instr: in})
		}
		advance()

	case ir.OpGep:
		base, f := m.eval(t, in.Args[0])
		if f != nil {
			m.fault(t, in, f)
			return
		}
		off, _ := m.eval(t, in.Args[1])
		fr.Regs[in.Dst] = base + off
		advance()

	case ir.OpAddrOf:
		fr.Regs[in.Dst] = m.globals[in.Args[0].Name]
		advance()

	case ir.OpFunc:
		v, f := m.eval(t, in.Args[0])
		if f != nil {
			m.fault(t, in, f)
			return
		}
		fr.Regs[in.Dst] = v
		advance()

	case ir.OpCall:
		m.execCall(t, in)

	default:
		m.fault(t, in, &Fault{Kind: FaultBadCall, Msg: fmt.Sprintf("unknown op %s", in.Op)})
	}
}

// ret pops the thread's top frame, delivering v to the caller.
func (m *Machine) ret(t *Thread, v int64) {
	fr := t.Top()
	if len(fr.Allocas) > 0 {
		st := t.Stack()
		for _, b := range fr.Allocas {
			m.mem.Release(b, st)
		}
	}
	t.Frames = t.Frames[:len(t.Frames)-1]
	if len(t.Frames) == 0 {
		t.top = nil
		t.Status = StatusDone
		t.Result = v
		m.schedDirty = true
		m.wakeJoiners(t)
		return
	}
	caller := t.Frames[len(t.Frames)-1]
	t.top = caller
	if ci := fr.CallInstr; ci != nil && ci.Dst != "" {
		if caller.Slots != nil {
			caller.Slots[caller.BC.SlotOf[ci.Dst]] = v
		} else {
			caller.Regs[ci.Dst] = v
		}
	}
	if caller.BC != nil {
		caller.FPC++
	} else {
		caller.PC++
	}
}

func (m *Machine) wakeJoiners(done *Thread) {
	for _, t := range m.threads {
		if t.Status == StatusBlockedJoin && t.JoinTarget == done.ID {
			t.Status = StatusRunnable
			m.schedDirty = true
		}
	}
}

func (m *Machine) execCall(t *Thread, in *ir.Instr) {
	callee := in.Callee()
	switch callee.Kind {
	case ir.OperandFunc:
		if fn := m.mod.Func(callee.Name); fn != nil {
			m.callFunc(t, in, fn)
			return
		}
		m.callIntrinsic(t, in, callee.Name)
	case ir.OperandReg:
		v := t.Top().Regs[callee.Name]
		if v == 0 {
			m.fault(t, in, &Fault{Kind: FaultNullFuncPtr, Addr: 0,
				Msg: fmt.Sprintf("indirect call through %%%s == NULL", callee.Name)})
			return
		}
		if name, ok := m.intrinsicByRef[v]; ok {
			m.callIntrinsic(t, in, name)
			return
		}
		fn := m.FuncForRef(v)
		if fn == nil {
			m.fault(t, in, &Fault{Kind: FaultBadCall, Addr: v,
				Msg: fmt.Sprintf("indirect call through %%%s = %d is not a function", callee.Name, v)})
			return
		}
		m.callFunc(t, in, fn)
	default:
		m.fault(t, in, &Fault{Kind: FaultBadCall, Msg: "bad callee operand"})
	}
}

func (m *Machine) callFunc(t *Thread, in *ir.Instr, fn *ir.Func) {
	args := m.argBuf[:0]
	for _, a := range in.CallArgs() {
		v, f := m.eval(t, a)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		args = append(args, v)
	}
	if m.hasObs {
		m.emit(Event{Kind: EvCall, TID: t.ID, Instr: in})
	}
	caller := t.Top()
	fr := &Frame{
		Fn: fn, Regs: make(map[string]int64, 8), CallInstr: in,
		chain: callstack.PushNode(caller.chain, callstack.Entry{Fn: caller.Fn.Name, Pos: in.Pos}),
	}
	for i, p := range fn.Params {
		if i < len(args) {
			fr.Regs[p] = args[i]
		}
	}
	m.argBuf = args[:0]
	t.Frames = append(t.Frames, fr)
	t.top = fr
	m.enterBlock(t, fn.Entry(), "")
}

func binOp(k ir.BinKind, a, b int64) (int64, *Fault) {
	switch k {
	case ir.BinAdd:
		return a + b, nil
	case ir.BinSub:
		return a - b, nil
	case ir.BinMul:
		return a * b, nil
	case ir.BinDiv:
		if b == 0 {
			return 0, &Fault{Kind: FaultDivZero}
		}
		return a / b, nil
	case ir.BinRem:
		if b == 0 {
			return 0, &Fault{Kind: FaultDivZero}
		}
		return a % b, nil
	case ir.BinAnd:
		return a & b, nil
	case ir.BinOr:
		return a | b, nil
	case ir.BinXor:
		return a ^ b, nil
	case ir.BinShl:
		return a << (uint64(b) & 63), nil
	case ir.BinShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	default:
		return 0, &Fault{Kind: FaultBadCall, Msg: fmt.Sprintf("bad binop %d", int(k))}
	}
}

func cmpOp(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	case ir.CmpGE:
		return a >= b
	case ir.CmpULT:
		return uint64(a) < uint64(b)
	case ir.CmpULE:
		return uint64(a) <= uint64(b)
	case ir.CmpUGT:
		return uint64(a) > uint64(b)
	case ir.CmpUGE:
		return uint64(a) >= uint64(b)
	default:
		return false
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
