package interp

import (
	"fmt"

	"github.com/conanalysis/owl/internal/ir"
)

// intrinsics is the runtime's "libc": thread and lock primitives, heap and
// string memory operations, the privilege / file / process operations that
// form the paper's five vulnerable-site categories (§3.2), program input,
// and IO timing. Workload models call these exactly where the modelled C
// programs called their counterparts.
var intrinsics = map[string]bool{
	"spawn": true, "join": true, "thread_id": true, "yield": true,
	"io_delay": true, "sleep": true,
	"mutex_lock": true, "mutex_unlock": true,
	"malloc": true, "free": true, "memcpy": true, "memset": true,
	"strcpy": true, "strlen": true,
	"setuid": true, "getuid": true,
	"open": true, "close": true, "write": true, "access": true,
	"exec": true, "fork": true,
	"print": true, "print_str": true,
	"input": true, "input_avail": true, "rand": true,
	"exit": true, "abort": true, "assert": true,
}

// isIntrinsic reports whether name is a runtime intrinsic.
func isIntrinsic(name string) bool { return intrinsics[name] }

// IsIntrinsic exposes the intrinsic table to analyses (the vulnerability
// analyzer must know which callees are "external" — paper §6.1 only
// recurses into internal functions).
func IsIntrinsic(name string) bool { return isIntrinsic(name) }

// callIntrinsic executes an intrinsic call for thread t. On success it
// stores the result (if the call has a destination) and advances the PC;
// blocking intrinsics (mutex_lock, join) leave the PC so the call retries
// when the thread wakes.
func (m *Machine) callIntrinsic(t *Thread, in *ir.Instr, name string) {
	// Reuse the machine's scratch buffer: no intrinsic re-enters argument
	// evaluation, and the only consumer that outlives this call (spawn's
	// newThread) copies the values out immediately.
	args := m.argBuf[:0]
	for _, a := range in.CallArgs() {
		v, f := m.eval(t, a)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		args = append(args, v)
	}
	m.argBuf = args[:0]
	m.intrinsic(t, in, name, args, -1)
}

// intrinsic is the engine-shared intrinsic body: args are already
// evaluated, and dstSlot is the compiled frame's destination slot (-1
// for none; ignored by tree frames, which use in.Dst).
func (m *Machine) intrinsic(t *Thread, in *ir.Instr, name string, args []int64, dstSlot int) {
	fr := t.Top()
	arg := func(i int) int64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	done := func(ret int64) {
		if fr.Slots != nil {
			if dstSlot >= 0 {
				fr.Slots[dstSlot] = ret
			}
			fr.FPC++
		} else {
			if in.Dst != "" {
				fr.Regs[in.Dst] = ret
			}
			fr.PC++
		}
	}

	switch name {
	case "spawn":
		fn := m.FuncForRef(arg(0))
		if fn == nil {
			m.fault(t, in, &Fault{Kind: FaultBadCall, Addr: arg(0),
				Msg: "spawn: first argument is not a function reference"})
			return
		}
		child := m.newThread(fn, args[1:], in)
		if m.hasObs {
			m.emit(Event{Kind: EvSpawn, TID: t.ID, Aux: int64(child.ID), Instr: in})
		}
		done(int64(child.ID))

	case "join":
		target := m.Thread(ThreadID(arg(0)))
		if target == nil {
			m.fault(t, in, &Fault{Kind: FaultBadCall,
				Msg: fmt.Sprintf("join: no thread %d", arg(0))})
			return
		}
		switch target.Status {
		case StatusDone, StatusFaulted:
			if m.hasObs {
				m.emit(Event{Kind: EvJoin, TID: t.ID, Aux: int64(target.ID), Instr: in})
			}
			done(target.Result)
		default:
			t.Status = StatusBlockedJoin
			t.JoinTarget = target.ID
			m.schedDirty = true
		}

	case "thread_id":
		done(int64(t.ID))

	case "yield":
		done(0)

	case "io_delay", "sleep":
		// Models input-controllable IO timing (§3.1, Finding III: crafted
		// input timings widen the vulnerable window).
		n := arg(0)
		if n < 0 {
			n = 0
		}
		t.Status = StatusSleeping
		t.SleepUntil = m.step + 1 + int(n)
		m.schedDirty = true
		m.anySleeping = true
		done(0)

	case "mutex_lock":
		addr := arg(0)
		if owner, held := m.lockOwner(addr); held {
			if owner == t.ID {
				m.fault(t, in, &Fault{Kind: FaultAbort, Addr: addr,
					Msg: "recursive lock of non-recursive mutex (self deadlock)"})
				return
			}
			t.Status = StatusBlockedMutex
			t.WaitAddr = addr
			m.schedDirty = true
			return // retry when woken
		}
		m.lockAcquire(addr, t.ID)
		if m.hasObs {
			m.emit(Event{Kind: EvAcquire, TID: t.ID, Addr: addr, Instr: in})
		}
		done(0)

	case "mutex_unlock":
		addr := arg(0)
		if owner, held := m.lockOwner(addr); held && owner == t.ID {
			m.lockRelease(addr)
			if m.hasObs {
				m.emit(Event{Kind: EvRelease, TID: t.ID, Addr: addr, Instr: in})
			}
			for _, w := range m.threads {
				if w.Status == StatusBlockedMutex && w.WaitAddr == addr {
					w.Status = StatusRunnable
					m.schedDirty = true
				}
			}
		}
		done(0)

	case "malloc":
		b := m.mem.Alloc(arg(0), BlockHeap,
			fmt.Sprintf("malloc@%s:%d", fr.Fn.Name, in.Pos.Line), t.Stack())
		if m.hasObs {
			m.emit(Event{Kind: EvAlloc, TID: t.ID, Addr: b.Base, Aux: arg(0), Instr: in})
		}
		done(b.Base)

	case "free":
		if f := m.mem.Free(arg(0), t.Stack()); f != nil {
			f.Addr = arg(0)
			m.fault(t, in, f)
			return
		}
		if m.hasObs {
			m.emit(Event{Kind: EvFree, TID: t.ID, Addr: arg(0), Instr: in})
		}
		done(0)

	case "memcpy":
		dst, src, n := arg(0), arg(1), arg(2)
		for i := int64(0); i < n; i++ {
			v, f := m.mem.Load(src + i)
			if f != nil {
				f.Addr = src + i
				m.fault(t, in, f)
				return
			}
			if m.hasObs {
				m.emit(Event{Kind: EvRead, TID: t.ID, Addr: src + i, Val: v, Instr: in})
			}
			if f := m.mem.Store(dst+i, v); f != nil {
				f.Addr = dst + i
				m.fault(t, in, f)
				return
			}
			if m.hasObs {
				m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: dst + i, Val: v, Instr: in})
			}
		}
		done(dst)

	case "memset":
		p, v, n := arg(0), arg(1), arg(2)
		for i := int64(0); i < n; i++ {
			if f := m.mem.Store(p+i, v); f != nil {
				f.Addr = p + i
				m.fault(t, in, f)
				return
			}
			if m.hasObs {
				m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: p + i, Val: v, Instr: in})
			}
		}
		done(p)

	case "strcpy":
		dst, src := arg(0), arg(1)
		for i := int64(0); ; i++ {
			v, f := m.mem.Load(src + i)
			if f != nil {
				f.Addr = src + i
				m.fault(t, in, f)
				return
			}
			if f := m.mem.Store(dst+i, v); f != nil {
				f.Addr = dst + i
				m.fault(t, in, f)
				return
			}
			if m.hasObs {
				m.emit(Event{Kind: EvWrite, TID: t.ID, Addr: dst + i, Val: v, Instr: in})
			}
			if v == 0 {
				break
			}
		}
		done(dst)

	case "strlen":
		p := arg(0)
		n := int64(0)
		for {
			v, f := m.mem.Load(p + n)
			if f != nil {
				f.Addr = p + n
				m.fault(t, in, f)
				return
			}
			if v == 0 {
				break
			}
			n++
		}
		done(n)

	case "setuid":
		m.uid = arg(0)
		done(0)

	case "getuid":
		done(m.uid)

	case "open":
		s, f := m.readString(arg(0))
		if f != nil {
			m.fault(t, in, f)
			return
		}
		done(m.fs.Open(s))

	case "close":
		m.fs.Close(arg(0))
		done(0)

	case "write":
		fd, p, n := arg(0), arg(1), arg(2)
		words, f := m.readWords(p, n)
		if f != nil {
			m.fault(t, in, f)
			return
		}
		done(m.fs.Write(fd, words))

	case "access":
		s, f := m.readString(arg(0))
		if f != nil {
			m.fault(t, in, f)
			return
		}
		done(m.fs.Access(s))

	case "exec":
		s, f := m.readString(arg(0))
		if f != nil {
			m.fault(t, in, f)
			return
		}
		m.execLog = append(m.execLog, s)
		done(0)

	case "fork":
		m.forkCount++
		done(int64(1000 + m.forkCount))

	case "print":
		m.output = append(m.output, fmt.Sprintf("%d", arg(0)))
		done(0)

	case "print_str":
		s, f := m.readString(arg(0))
		if f != nil {
			m.fault(t, in, f)
			return
		}
		m.output = append(m.output, s)
		done(0)

	case "input":
		v := int64(0)
		if m.inputPos < len(m.cfg.Inputs) {
			v = m.cfg.Inputs[m.inputPos]
			m.inputPos++
		}
		done(v)

	case "input_avail":
		done(int64(len(m.cfg.Inputs) - m.inputPos))

	case "rand":
		// xorshift64*: deterministic per machine, independent of schedule
		// only if call order is fixed; workloads use it for benign noise.
		m.rngState ^= m.rngState >> 12
		m.rngState ^= m.rngState << 25
		m.rngState ^= m.rngState >> 27
		v := int64(m.rngState * 0x2545f4914f6cdd1d >> 1)
		if n := arg(0); n > 0 {
			v %= n
		}
		done(v)

	case "exit":
		m.exited = true
		m.exitCode = int(arg(0))
		m.schedDirty = true
		for _, th := range m.threads {
			if th.Status != StatusFaulted {
				th.Status = StatusDone
			}
		}

	case "abort":
		m.fault(t, in, &Fault{Kind: FaultAbort})

	case "assert":
		if arg(0) == 0 {
			m.fault(t, in, &Fault{Kind: FaultAssert})
			return
		}
		done(0)

	default:
		m.fault(t, in, &Fault{Kind: FaultUnknownIntrinsic, Msg: "@" + name})
	}
}

// readWords reads n words starting at p with bounds checking but without
// emitting access events (used by write()/print-style intrinsics whose
// reads are not interesting to the race detector).
func (m *Machine) readWords(p, n int64) ([]int64, *Fault) {
	out := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		v, f := m.mem.Load(p + i)
		if f != nil {
			f.Addr = p + i
			return nil, f
		}
		out = append(out, v)
	}
	return out, nil
}

// readString reads a NUL-terminated string at p (no events).
func (m *Machine) readString(p int64) (string, *Fault) {
	var words []int64
	for i := int64(0); ; i++ {
		v, f := m.mem.Load(p + i)
		if f != nil {
			f.Addr = p + i
			return "", f
		}
		words = append(words, v)
		if v == 0 {
			break
		}
	}
	return ir.WordsToString(words), nil
}

// ExecLog returns the paths passed to exec() during the run — the
// process-forking vulnerable-site consequence.
func (m *Machine) ExecLog() []string { return m.execLog }
