package interp

import (
	"fmt"
	"sort"
)

// FS is a minimal in-machine file system. It exists because two of the
// paper's attack consequences are file-level: the Apache #25520 attack
// corrupts a log file descriptor and makes HTTP request logs land inside a
// user's HTML file (an HTML integrity violation), and the five
// vulnerable-site types include file operations (access()/open()).
type FS struct {
	files map[string]*File
	fds   []*fd
}

// File is one file: contents as words (one per byte) plus a permission bit.
type File struct {
	Name     string
	Data     []int64
	ReadOnly bool
}

type fd struct {
	file   *File
	closed bool
}

// NewFS returns an empty file system.
func NewFS() *FS {
	f := &FS{files: make(map[string]*File)}
	// fd 0/1/2 reserved like POSIX so workload fds start at 3, making
	// "small integer that is a valid fd" corruption scenarios realistic.
	for i := 0; i < 3; i++ {
		f.fds = append(f.fds, &fd{file: &File{Name: fmt.Sprintf("<std%d>", i)}})
	}
	return f
}

// Create makes (or truncates) a file and returns it.
func (f *FS) Create(name string) *File {
	file := &File{Name: name}
	f.files[name] = file
	return file
}

// Lookup returns the named file, or nil.
func (f *FS) Lookup(name string) *File { return f.files[name] }

// Names returns all file names, sorted.
func (f *FS) Names() []string {
	out := make([]string, 0, len(f.files))
	for n := range f.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Open returns a descriptor for the named file, creating it if needed.
func (f *FS) Open(name string) int64 {
	file := f.files[name]
	if file == nil {
		file = f.Create(name)
	}
	f.fds = append(f.fds, &fd{file: file})
	return int64(len(f.fds) - 1)
}

// Close closes a descriptor; returns false for bad fds.
func (f *FS) Close(n int64) bool {
	d := f.fd(n)
	if d == nil || d.closed {
		return false
	}
	d.closed = true
	return true
}

func (f *FS) fd(n int64) *fd {
	if n < 0 || n >= int64(len(f.fds)) {
		return nil
	}
	return f.fds[n]
}

// FileForFD returns the file behind a descriptor, or nil.
func (f *FS) FileForFD(n int64) *File {
	d := f.fd(n)
	if d == nil || d.closed {
		return nil
	}
	return d.file
}

// Write appends words to the file behind fd. It returns the number of
// words written (0 for bad fds — like POSIX write failing with EBADF).
func (f *FS) Write(n int64, words []int64) int64 {
	file := f.FileForFD(n)
	if file == nil || file.ReadOnly {
		return 0
	}
	file.Data = append(file.Data, words...)
	return int64(len(words))
}

// Access reports (1/0) whether the named file exists — the TOCTOU-style
// check the paper lists among the vulnerable site types.
func (f *FS) Access(name string) int64 {
	if f.files[name] != nil {
		return 1
	}
	return 0
}
