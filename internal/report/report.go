// Package report renders OWL's analysis artifacts for humans: race
// reports, security hints, vulnerable-input hints in the paper's Figure-5
// format, pipeline summaries, and the evaluation tables. Everything is
// plain text; the cmd binaries print these.
package report

import (
	"fmt"
	"strings"

	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/raceverify"
	"github.com/conanalysis/owl/internal/supervise"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/vulnverify"
)

// Quarantined / Degradation are the supervisor's structured records of
// isolated worker runs and degraded stages (aliased from
// internal/supervise, the leaf package the supervisor lives in, so both
// this package and owl can name them without an import cycle).
type (
	Quarantined = supervise.Quarantined
	Degradation = supervise.Degradation
)

// Robustness renders a pipeline result's quarantine and degradation
// records; it returns "" for a clean run so callers can print it
// unconditionally.
func Robustness(res *owl.Result) string {
	if len(res.Quarantined) == 0 && len(res.Degraded) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("== pipeline degradation ==\n")
	for _, d := range res.Degraded {
		fmt.Fprintf(&b, "%s\n", d.String())
	}
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "%s\n", q.String())
	}
	return b.String()
}

// Race renders one race report.
func Race(r *race.Report) string { return r.String() }

// Hint renders a race verifier hint block.
func Hint(h *raceverify.Hint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== dynamic race verification ==\n")
	fmt.Fprintf(&b, "report: %s\n", h.Report.ID())
	if !h.Verified {
		fmt.Fprintf(&b, "NOT verified after %d attempts (eliminated)\n", h.Attempts)
		return b.String()
	}
	fmt.Fprintf(&b, "verified in the racing moment (attempt %d)\n", h.Attempts)
	fmt.Fprintf(&b, "  variable:        %s\n", h.VarName)
	fmt.Fprintf(&b, "  about to read:   %d\n", h.ReadVal)
	fmt.Fprintf(&b, "  about to write:  %d\n", h.WriteVal)
	if h.WritesNull {
		fmt.Fprintf(&b, "  hint: a NULL pointer dereference can be triggered\n")
	}
	if h.ReadsUninitialized {
		fmt.Fprintf(&b, "  hint: uninitialized data can be read\n")
	}
	return b.String()
}

// Finding renders a vulnerable-input hint the way the paper's Figure 5
// prints OWL's Libsafe report:
//
//	---- Ctrl Dependent Vulnerability----
//	[ 632 ]
//	%632: br %631 if.end13 if.then11 (intercept.c:164)
//	Vulnerable Site Location: (intercept.c:165)
func Finding(f *vuln.Finding) string {
	var b strings.Builder
	switch f.Dep {
	case vuln.DepCtrl:
		b.WriteString("---- Ctrl Dependent Vulnerability----\n")
	default:
		b.WriteString("---- Data Dependent Vulnerability----\n")
	}
	for _, br := range f.Branches {
		fmt.Fprintf(&b, "[ %d ]\n", br.Index)
		fmt.Fprintf(&b, "%s %s\n", br.String(), br.Loc())
	}
	fmt.Fprintf(&b, "Vulnerable Site Location: %s\n", f.Site.Loc())
	fmt.Fprintf(&b, "Vulnerable Site Kind: %s (%s)\n", f.Kind, f.Dep)
	if len(f.FnPath) > 0 {
		fmt.Fprintf(&b, "Propagation path: %s\n", strings.Join(f.FnPath, " -> "))
	}
	return b.String()
}

// Outcome renders a dynamic vulnerability verification outcome.
func Outcome(o *vulnverify.Outcome) string { return o.String() }

// Summary renders a pipeline result overview.
func Summary(name string, res *owl.Result) string {
	var b strings.Builder
	s := res.Stats
	fmt.Fprintf(&b, "== OWL pipeline summary: %s ==\n", name)
	fmt.Fprintf(&b, "raw race reports:            %d\n", s.RawReports)
	fmt.Fprintf(&b, "adhoc syncs annotated:       %d\n", s.AdhocSyncs)
	fmt.Fprintf(&b, "reports after annotation:    %d\n", s.AfterAnnotation)
	fmt.Fprintf(&b, "eliminated by race verifier: %d\n", s.VerifierEliminated)
	fmt.Fprintf(&b, "remaining reports:           %d\n", s.Remaining)
	fmt.Fprintf(&b, "vulnerability findings:      %d\n", s.Findings)
	fmt.Fprintf(&b, "dynamically confirmed:       %d\n", s.VerifiedAttacks)
	fmt.Fprintf(&b, "report reduction:            %.1f%%\n", 100*s.ReductionRatio())
	fmt.Fprintf(&b, "static analysis time:        %s\n", s.AnalysisTime)
	for _, atk := range res.Attacks {
		fmt.Fprintf(&b, "CONFIRMED ATTACK: %s\n", atk)
	}
	return b.String()
}

// Text renders the canonical non-verbose pipeline report: the summary,
// the robustness block (empty on a clean run), and the
// predicted-confirmations line. cmd/owl prints exactly this, and the
// analysis service returns exactly this as a job's summary text — one
// renderer is what makes the serve-vs-CLI byte-parity gate structural
// rather than a test that chases two format strings.
func Text(name string, res *owl.Result) string {
	var b strings.Builder
	b.WriteString(Summary(name, res))
	b.WriteString(Robustness(res))
	if len(res.PredictedConfirmed) > 0 {
		fmt.Fprintf(&b, "predicted races confirmed by steered replay: %d\n", len(res.PredictedConfirmed))
	}
	return b.String()
}

// Table renders rows as a fixed-width text table; the first row is the
// header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
