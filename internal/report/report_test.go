package report

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/raceverify"
	"github.com/conanalysis/owl/internal/vuln"
)

const miniSrc = `
global @g = 0
func @main() {
entry:
  %v = load @g
  %c = icmp ne %v, 0
  br %c, hit, out
hit:
  %p = call @malloc(2)
  %r = call @memcpy(%p, %p, %v)
  ret 0
out:
  ret 0
}
`

func miniFinding(t *testing.T) *vuln.Finding {
	t.Helper()
	mod := ir.MustParse("mini.oir", miniSrc)
	var load *ir.Instr
	for _, in := range mod.Func("main").Instrs() {
		if in.Op == ir.OpLoad {
			load = in
			break
		}
	}
	a := vuln.NewAnalyzer(mod)
	findings := a.Analyze(load, nil)
	for _, f := range findings {
		if f.Site.IsCall() && f.Site.Callee().Name == "memcpy" {
			return f
		}
	}
	t.Fatal("no memcpy finding")
	return nil
}

func TestFindingFormatMatchesFigure5(t *testing.T) {
	out := Finding(miniFinding(t))
	for _, want := range []string{
		"Dependent Vulnerability----",
		"Vulnerable Site Location: (mini.oir:",
		"memory operation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("finding output missing %q:\n%s", want, out)
		}
	}
}

func TestHintRendering(t *testing.T) {
	h := &raceverify.Hint{
		Report:   fakeReport(t),
		Verified: true, Attempts: 2,
		ReadVal: 0, WriteVal: 0, VarName: "@fptr", WritesNull: true,
	}
	out := Hint(h)
	if !strings.Contains(out, "NULL pointer dereference") {
		t.Errorf("missing NULL hint:\n%s", out)
	}
	h.Verified = false
	if out := Hint(h); !strings.Contains(out, "NOT verified") {
		t.Errorf("missing elimination notice:\n%s", out)
	}
}

func fakeReport(t *testing.T) *race.Report {
	t.Helper()
	mod := ir.MustParse("mini.oir", miniSrc)
	in := mod.Func("main").Instrs()[0]
	return &race.Report{
		Prev:     race.Access{Instr: in, IsWrite: true},
		Cur:      race.Access{Instr: in},
		AddrName: "@g",
	}
}

func TestSummaryRendering(t *testing.T) {
	res := &owl.Result{}
	res.Stats = owl.Stats{RawReports: 100, AdhocSyncs: 5, AfterAnnotation: 60,
		VerifierEliminated: 50, Remaining: 10, Findings: 3, VerifiedAttacks: 1}
	out := Summary("demo", res)
	for _, want := range []string{"raw race reports:            100",
		"report reduction:            90.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([][]string{
		{"Name", "N"},
		{"apache", "715"},
		{"x", "3"},
	})
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header + rule + 2 rows)", len(lines))
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("missing header rule: %q", lines[1])
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}
