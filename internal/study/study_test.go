package study

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/workloads"
)

func runStudy(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Config{Noise: workloads.NoiseLight, MaxRuns: 100, DetectRuns: 6})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelStudyMatchesSequential: fanning the per-workload studies
// over a pool must not change the result — rows merge in registry order.
func TestParallelStudyMatchesSequential(t *testing.T) {
	seq := runStudy(t)
	par, err := Run(Config{Noise: workloads.NoiseLight, MaxRuns: 100, DetectRuns: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalPrograms != seq.TotalPrograms ||
		par.ProgramsWithAttacks != seq.ProgramsWithAttacks {
		t.Errorf("program counts differ: %d/%d vs %d/%d",
			par.TotalPrograms, par.ProgramsWithAttacks,
			seq.TotalPrograms, seq.ProgramsWithAttacks)
	}
	if len(par.Rows) != len(seq.Rows) {
		t.Fatalf("rows = %d, want %d", len(par.Rows), len(seq.Rows))
	}
	for i := range seq.Rows {
		if par.Rows[i] != seq.Rows[i] {
			t.Errorf("row %d differs:\nseq: %+v\npar: %+v", i, seq.Rows[i], par.Rows[i])
		}
	}
}

func TestFindingIEveryProgramHasAttacks(t *testing.T) {
	res := runStudy(t)
	if res.TotalPrograms != 7 {
		t.Errorf("programs = %d, want 7", res.TotalPrograms)
	}
	// Memcached is the deliberate no-attack control; all six studied
	// programs have attacks.
	if res.ProgramsWithAttacks != 6 {
		t.Errorf("programs with attacks = %d, want 6", res.ProgramsWithAttacks)
	}
	if len(res.Rows) != 10 {
		t.Errorf("attacks = %d, want 10 (the paper's reproduced set)", len(res.Rows))
	}
}

func TestFindingIIISubtleInputsFewRepetitions(t *testing.T) {
	res := runStudy(t)
	exploited := 0
	for _, row := range res.Rows {
		if row.Exploited {
			exploited++
		}
	}
	if exploited != len(res.Rows) {
		t.Errorf("exploited %d/%d attacks", exploited, len(res.Rows))
	}
	// Paper: 8 of 10 within 20 repetitions.
	if w := res.Within20(); w < 8 {
		t.Errorf("within-20 = %d, want >= 8", w)
	}
}

func TestFindingIICrossFunctionSpread(t *testing.T) {
	res := runStudy(t)
	// Paper: 7 of the 10 reproduced attacks have bug and vulnerability
	// site in different functions.
	if c := res.CrossFunctionCount(); c < 5 {
		t.Errorf("cross-function attacks = %d, want >= 5", c)
	}
	have, checked := res.PrefixCount()
	if checked == 0 {
		t.Fatal("prefix property never measured")
	}
	if have*10 < checked*7 {
		t.Errorf("prefix property %d/%d, want >= 70%%", have, checked)
	}
}

func TestFindingIVRacesDetectable(t *testing.T) {
	res := runStudy(t)
	// Paper: all studied bugs were data races readily detected by TSAN or
	// SKI.
	if d := res.DetectedCount(); d != len(res.Rows) {
		for _, row := range res.Rows {
			if !row.RaceDetected {
				t.Logf("undetected: %s/%s", row.Workload, row.Spec.ID)
			}
		}
		t.Errorf("detected %d/%d races", d, len(res.Rows))
	}
}

func TestFindingVBurial(t *testing.T) {
	res := runStudy(t)
	// Every attack's race shares the detector output with other reports
	// ("finding needles in a haystack").
	for _, row := range res.Rows {
		if row.BuriedAmong < 2 {
			t.Errorf("%s/%s: buried among %d reports, want >= 2",
				row.Workload, row.Spec.ID, row.BuriedAmong)
		}
	}
}

func TestResultString(t *testing.T) {
	res := runStudy(t)
	s := res.String()
	for _, want := range []string{"Finding I", "Finding II", "Finding III", "Finding IV"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
