// Package study reproduces the paper's quantitative study (§3) on the
// workload models: the five findings about concurrency attacks and their
// implications for detection tools.
//
//	I.   Concurrency attacks are much more severe than concurrency bugs
//	     (every program has them; consequences include privilege
//	     escalation, code injection, UAF, DoS).
//	II.  Bugs and their attacks are widely spread in program code (many
//	     cross function boundaries), yet share call-stack prefixes.
//	III. Bugs and attacks trigger under separate, subtle inputs with few
//	     repetitions (8/10 under 20 in the paper).
//	IV.  The underlying bugs are data races detectable by race detectors.
//	V.   Attacks are overlooked because the vulnerable races are buried in
//	     excessive benign reports (202:2 for the MySQL query).
package study

import (
	"fmt"
	"strings"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/workloads"
)

// AttackRow is the per-attack study record.
type AttackRow struct {
	Workload string
	Spec     workloads.AttackSpec

	// Exploited + Repetitions: Finding III (the exploit campaign).
	Exploited   bool
	Repetitions int

	// CrossFunction: Finding II (bug and site in different functions,
	// from the model's ground truth).
	CrossFunction bool
	// PrefixStacks: Finding II's optimistic half — at runtime the bug's
	// call stack is a prefix of the site's call stack (or within two
	// levels), measured on a witnessed attack run.
	PrefixStacks  bool
	PrefixChecked bool

	// RaceDetected: Finding IV — the underlying race appears in a plain
	// race detector's reports.
	RaceDetected bool

	// BuriedAmong: Finding V — total raw reports the vulnerable race
	// shares the detector output with.
	BuriedAmong int
}

// Result aggregates the study.
type Result struct {
	Rows []AttackRow
	// TotalPrograms / ProgramsWithAttacks: Finding I.
	TotalPrograms       int
	ProgramsWithAttacks int
}

// Within20 counts attacks exploited within 20 repetitions (Finding III's
// "8 out of 10").
func (r *Result) Within20() int {
	n := 0
	for _, row := range r.Rows {
		if row.Exploited && row.Repetitions <= 20 {
			n++
		}
	}
	return n
}

// CrossFunctionCount counts attacks whose bug and site live in different
// functions (Finding II: 7 of the paper's 10 reproduced attacks).
func (r *Result) CrossFunctionCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.CrossFunction {
			n++
		}
	}
	return n
}

// PrefixCount counts attacks whose runtime stacks exhibit the prefix
// property among those where it could be measured.
func (r *Result) PrefixCount() (have, checked int) {
	for _, row := range r.Rows {
		if !row.PrefixChecked {
			continue
		}
		checked++
		if row.PrefixStacks {
			have++
		}
	}
	return have, checked
}

// DetectedCount counts attacks whose race a detector reported (Finding IV:
// all of them).
func (r *Result) DetectedCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.RaceDetected {
			n++
		}
	}
	return n
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs studied: %d, with concurrency attacks: %d (Finding I)\n",
		r.TotalPrograms, r.ProgramsWithAttacks)
	fmt.Fprintf(&b, "attacks exploited within 20 repetitions: %d/%d (Finding III)\n",
		r.Within20(), len(r.Rows))
	fmt.Fprintf(&b, "bug and site in different functions: %d/%d (Finding II)\n",
		r.CrossFunctionCount(), len(r.Rows))
	have, checked := r.PrefixCount()
	fmt.Fprintf(&b, "runtime call-stack prefix property: %d/%d measured (Finding II)\n",
		have, checked)
	fmt.Fprintf(&b, "underlying races detectable: %d/%d (Finding IV)\n",
		r.DetectedCount(), len(r.Rows))
	return b.String()
}

// Config tunes the study run.
type Config struct {
	Noise      workloads.NoiseLevel
	MaxRuns    int // exploit campaign budget per attack (default 100)
	DetectRuns int // detection seeds for findings IV/V (default 8)
	// Workers bounds the pool the per-workload studies fan out over
	// (default 1 = sequential). Each workload is studied entirely by one
	// worker against its own freshly built modules and machines; rows
	// merge in registry order, so the Result is identical for any width.
	Workers int
	// Metrics, when non-nil, receives study-stage instrumentation.
	Metrics *metrics.Collector
}

// Run executes the study over all workloads.
func Run(cfg Config) (*Result, error) {
	if cfg.Noise == 0 {
		cfg.Noise = workloads.NoiseLight
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 100
	}
	if cfg.DetectRuns <= 0 {
		cfg.DetectRuns = 8
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	defer cfg.Metrics.Stage("study.total")()

	all := workloads.All(cfg.Noise)
	outs := make([]workloadStudy, len(all))
	metrics.ForEach(cfg.Metrics, "study.workloads", len(all), workers, func(i int) {
		outs[i] = studyWorkload(all[i], cfg)
	})

	res := &Result{}
	for i, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		res.TotalPrograms++
		if out.hasAttacks {
			res.ProgramsWithAttacks++
		}
		res.Rows = append(res.Rows, outs[i].rows...)
	}
	cfg.Metrics.Count("study.rows", int64(len(res.Rows)))
	return res, nil
}

// workloadStudy is one workload's share of the study.
type workloadStudy struct {
	hasAttacks bool
	rows       []AttackRow
	err        error
}

// studyWorkload runs the §3 measurements for one workload. It touches only
// the workload instance it is handed, so distinct workloads study safely
// in parallel.
func studyWorkload(w *workloads.Workload, cfg Config) (out workloadStudy) {
	out.hasAttacks = len(w.Attacks) > 0
	reports := detectRaw(w, cfg.DetectRuns)
	for _, spec := range w.Attacks {
		row := AttackRow{
			Workload:      w.Name,
			Spec:          spec,
			CrossFunction: spec.CrossFunction,
			BuriedAmong:   len(reports),
		}
		d := attack.NewDriver(w)
		d.MaxRuns = cfg.MaxRuns
		ex, err := d.Exploit(spec)
		if err != nil {
			out.err = fmt.Errorf("study %s/%s: %w", w.Name, spec.ID, err)
			return out
		}
		row.Exploited = ex.Succeeded
		row.Repetitions = ex.Runs

		row.RaceDetected = raceForAttack(w, spec, reports)
		row.PrefixStacks, row.PrefixChecked = prefixProperty(w, spec)
		out.rows = append(out.rows, row)
	}
	return out
}

// detectRaw runs the plain race detector over the workload's attack
// recipes (or first recipe) and returns deduplicated reports.
func detectRaw(w *workloads.Workload, runs int) []*race.Report {
	recipes := map[string]bool{}
	var inputsList [][]int64
	for _, a := range w.Attacks {
		if !recipes[a.InputRecipe] {
			recipes[a.InputRecipe] = true
			inputsList = append(inputsList, w.Recipe(a.InputRecipe).Inputs)
		}
	}
	if len(inputsList) == 0 && len(w.Recipes) > 0 {
		inputsList = append(inputsList, w.Recipes[0].Inputs)
	}
	merged := map[string]*race.Report{}
	var order []*race.Report
	for _, inputs := range inputsList {
		for seed := uint64(1); seed <= uint64(runs); seed++ {
			d := race.NewDetector()
			m, err := interp.New(interp.Config{
				Module: w.Module, Entry: w.Entry, Inputs: inputs,
				MaxSteps: w.MaxSteps, Sched: sched.NewRandom(seed),
				Observers: []interp.Observer{d},
			})
			if err != nil {
				continue
			}
			m.Run()
			for _, r := range d.Reports() {
				if _, ok := merged[r.ID()]; !ok {
					merged[r.ID()] = r
					order = append(order, r)
				}
			}
		}
	}
	return order
}

// raceForAttack reports whether any detector report plausibly corresponds
// to the attack's underlying race: it races on the spec's RacyVar, or one
// of its sides sits in the spec's site function or the functions the
// attack recipe exercises.
func raceForAttack(w *workloads.Workload, spec workloads.AttackSpec, reports []*race.Report) bool {
	for _, r := range reports {
		if spec.RacyVar != "" && strings.HasPrefix(r.AddrName, spec.RacyVar) {
			return true
		}
		if spec.RacyVar == "" {
			// Heap-based races: match by function of either side being
			// the site function or its callers in the model.
			for _, acc := range []race.Access{r.Prev, r.Cur} {
				if acc.Instr != nil && acc.Instr.Fn != nil &&
					acc.Instr.Fn.Name == spec.SiteFunc {
					return true
				}
			}
		}
	}
	return false
}

// prefixProperty witnesses an attack run and checks that the racy access's
// stack shares its prefix with the vulnerable site's stack (§3.2). It
// returns (property, measured); measured is false when no run reached both
// probes.
func prefixProperty(w *workloads.Workload, spec workloads.AttackSpec) (bool, bool) {
	siteFn := w.Module.Func(spec.SiteFunc)
	if siteFn == nil {
		return false, false
	}
	// The site instruction: first instruction in SiteFunc matching the
	// callee (or the first pointer-deref-ish instruction).
	var site *ir.Instr
	for _, in := range siteFn.Instrs() {
		if spec.SiteCallee != "" {
			if in.IsCall() && in.Callee().Kind == ir.OperandFunc && in.Callee().Name == spec.SiteCallee {
				site = in
				break
			}
		} else if in.Op == ir.OpLoad && in.Args[0].Kind == ir.OperandReg {
			site = in
			break
		} else if in.IsCall() && in.Callee().Kind == ir.OperandReg {
			site = in
			break
		}
	}
	if site == nil {
		return false, false
	}
	inputs := w.Recipe(spec.InputRecipe).Inputs
	for seed := uint64(1); seed <= 20; seed++ {
		var bugStack, siteStack callstack.Stack
		bp := func(m *interp.Machine, t *interp.Thread, in *ir.Instr) interp.BPAction {
			if in == site && siteStack == nil {
				siteStack = t.Stack().Clone()
			}
			if bugStack == nil && in.Op == ir.OpLoad && racyAccess(in, spec) {
				bugStack = t.Stack().Clone()
			}
			return interp.BPContinue
		}
		m, err := interp.New(interp.Config{
			Module: w.Module, Entry: w.Entry, Inputs: inputs,
			MaxSteps: w.MaxSteps, Sched: sched.NewRandom(seed), Breakpoint: bp,
		})
		if err != nil {
			return false, false
		}
		m.Run()
		if bugStack != nil && siteStack != nil {
			// Prefix property (bug stack is a prefix of site stack), or
			// the site is at most two frames above the shared prefix.
			if siteStack.HasPrefix(bugStack[:len(bugStack)-1]) {
				return true, true
			}
			shared := bugStack.SharedPrefixLen(siteStack)
			return len(bugStack)-shared <= 2, true
		}
	}
	return false, false
}

// racyAccess reports whether the load reads the attack's racy variable.
func racyAccess(in *ir.Instr, spec workloads.AttackSpec) bool {
	if spec.RacyVar != "" {
		return in.Args[0].Kind == ir.OperandGlobal && "@"+in.Args[0].Name == spec.RacyVar
	}
	// Heap-based racy variables: use any reg-addressed load inside the
	// site function as the bug witness.
	return in.Fn != nil && in.Fn.Name == spec.SiteFunc && in.Args[0].Kind == ir.OperandReg
}
