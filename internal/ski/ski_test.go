package ski

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

// uselibSrc is a miniature of the paper's Figure 2: one "syscall" thread
// NULLs a function pointer while another checks and calls through it.
// After the race on @f_op, the read in @msync_interval is the watched read
// whose stack Algorithm 1 needs.
const uselibSrc = `
global @f_op = 0

func @fsync_impl() {
entry:
  ret 0
}
func @msync_interval() {
entry:
  %f = load @f_op
  %c = icmp ne %f, 0
  br %c, callit, out
callit:
  %f2 = load @f_op
  %r = call %f2()
  ret 0
out:
  ret 0
}
func @do_munmap() {
entry:
  store 0, @f_op
  ret 0
}
func @main() {
entry:
  %h = func @fsync_impl
  store %h, @f_op
  %t1 = call @spawn(@msync_interval)
  %t2 = call @spawn(@do_munmap)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  ret 0
}
`

func TestDetectFindsKernelRaceWithWatchedReads(t *testing.T) {
	mod := ir.MustParse("uselib.oir", uselibSrc)
	d := New()
	reports, runs, err := d.Detect(interp.Config{Module: mod, MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if runs < 2 {
		t.Errorf("exploration used %d runs, want several", runs)
	}
	var target *Report
	for _, r := range reports {
		if r.Race.AddrName == "@f_op" {
			target = r
			break
		}
	}
	if target == nil {
		t.Fatalf("no race on @f_op among %d reports", len(reports))
	}
	in, stack, ok := target.BestRead()
	if !ok {
		t.Fatal("no read start point for Algorithm 1")
	}
	if in.Op != ir.OpLoad {
		t.Errorf("best read is %s, want a load", in.Op)
	}
	if len(stack) == 0 || stack.Innermost().Fn != "msync_interval" {
		t.Errorf("watched-read stack = %v, want innermost msync_interval", stack.Funcs())
	}
}

func TestSteeredScheduleTriggersNullFuncPtr(t *testing.T) {
	// Steer do_munmap's store between msync_interval's check and its
	// indirect call: the machine must fault with a null function pointer,
	// the Figure 2 consequence.
	mod := ir.MustParse("uselib.oir", uselibSrc)
	m, err := interp.New(interp.Config{Module: mod, Sched: &listSched{
		// main: func, store, spawn, spawn; t1: load, icmp, br; t2: store;
		// t1: load, call -> fault.
		order: []interp.ThreadID{0, 0, 0, 0, 1, 1, 1, 2, 1, 1},
	}, MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	saw := false
	for _, f := range res.Faults {
		if f.Kind == interp.FaultNullFuncPtr {
			saw = true
		}
	}
	if !saw {
		t.Errorf("steered schedule did not produce the null-func-ptr fault: %v", res.Faults)
	}
}

func TestExplorationObservesFaultingSchedule(t *testing.T) {
	// Bounded exhaustive exploration must encounter at least one schedule
	// where the null-func-ptr fault fires.
	mod := ir.MustParse("uselib.oir", uselibSrc)
	ex := &sched.Explorer{MaxRuns: 512, MaxDecisions: 14}
	sawFault := false
	_, err := ex.Explore(func(s interp.Scheduler) error {
		m, err := interp.New(interp.Config{Module: mod, Sched: s, MaxSteps: 10000})
		if err != nil {
			return err
		}
		res := m.Run()
		for _, f := range res.Faults {
			if f.Kind == interp.FaultNullFuncPtr {
				sawFault = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFault {
		t.Error("exploration never triggered the null-func-ptr schedule")
	}
}

// listSched consumes a fixed thread order, then prefers the lowest id.
type listSched struct {
	order []interp.ThreadID
	pos   int
}

func (s *listSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if s.pos < len(s.order) {
		want := s.order[s.pos]
		s.pos++
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
	}
	return runnable[0]
}
