// Package ski is the kernel-side detector OWL integrates (§6.3), standing
// in for SKI's systematic schedule exploration over OS-kernel code. It
// drives the interpreter through a bounded exhaustive exploration of
// scheduling decisions (internal/sched.Explorer) and applies the paper's
// *modified* detection policy:
//
// SKI's default policy only reports the instruction pair at the racing
// moment, which is inadequate for OWL (write-write pairs have no read for
// Algorithm 1 to start from, and no corrupted-read call stacks). The
// modification: when a race is detected, the racy variable's address is
// added to a watch list, marking it corrupted; the call stacks of every
// subsequent read of a watched variable are collected; a later write
// sanitizes the variable and removes it from the list. The collected read
// stacks give Algorithm 1 its (load instruction, call stack) starting
// points — the paper obtained the stacks by walking frame pointers with
// CONFIG_FRAME_POINTER; here the interpreter provides them directly.
package ski

import (
	"fmt"
	"sort"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// WatchedRead is one read of a corrupted (watched) variable, with the
// call-stack context Algorithm 1 consumes.
type WatchedRead struct {
	Instr *ir.Instr
	Stack callstack.Stack
	Val   int64
}

// Report is a kernel race report: the underlying race plus all watched
// reads collected before a sanitizing write.
type Report struct {
	Race  *race.Report
	Reads []WatchedRead
}

// BestRead returns the deepest-stack watched read whose instruction is a
// plain load (Algorithm 1's required input shape); when no watched read
// exists it falls back to the race's own read side.
func (r *Report) BestRead() (*ir.Instr, callstack.Stack, bool) {
	var best *WatchedRead
	for i := range r.Reads {
		wr := &r.Reads[i]
		if wr.Instr == nil || wr.Instr.Op != ir.OpLoad {
			continue
		}
		if best == nil || len(wr.Stack) > len(best.Stack) {
			best = wr
		}
	}
	if best != nil {
		return best.Instr, best.Stack, true
	}
	if acc, ok := r.Race.ReadSide(); ok && acc.Instr != nil {
		return acc.Instr, acc.Stack, true
	}
	return nil, nil, false
}

func (r *Report) String() string {
	return fmt.Sprintf("kernel race %s with %d watched reads", r.Race.ID(), len(r.Reads))
}

// watcher implements the §6.3 watch-list policy as an interpreter
// observer layered over a race detector.
type watcher struct {
	det     *race.Detector
	seen    int // reports consumed from det so far
	watched map[int64]*Report
	done    []*Report
}

func newWatcher(det *race.Detector) *watcher {
	return &watcher{det: det, watched: make(map[int64]*Report)}
}

// NeedsStack implements interp.StackPolicy: the wrapped race detector
// needs access stacks, and the watch policy itself collects a stack per
// watched read.
func (w *watcher) NeedsStack(k interp.EventKind) bool {
	return k == interp.EvRead || k == interp.EvWrite
}

// OnEvent feeds the race detector first, then applies the watch policy.
func (w *watcher) OnEvent(m *interp.Machine, e interp.Event) {
	w.det.OnEvent(m, e)
	// Newly detected races put their address on the watch list.
	reports := w.det.Reports()
	for ; w.seen < len(reports); w.seen++ {
		rep := reports[w.seen]
		addr := rep.Cur.Addr
		if _, ok := w.watched[addr]; !ok {
			w.watched[addr] = &Report{Race: rep}
		}
	}
	switch e.Kind {
	case interp.EvRead:
		if r, ok := w.watched[e.Addr]; ok {
			r.Reads = append(r.Reads, WatchedRead{Instr: e.Instr, Stack: m.EventStack(e), Val: e.Val})
		}
	case interp.EvWrite:
		if r, ok := w.watched[e.Addr]; ok {
			// A write sanitizes the corrupted value (§6.3) — unless the
			// write is one side of the watched race occurring again, in
			// which case the variable stays corrupted.
			if e.Instr != r.Race.Cur.Instr && e.Instr != r.Race.Prev.Instr {
				w.done = append(w.done, r)
				delete(w.watched, e.Addr)
			}
		}
	}
}

// reports returns all watch records (finished and still-watched), ordered
// deterministically.
func (w *watcher) reports() []*Report {
	out := append([]*Report(nil), w.done...)
	addrs := make([]int64, 0, len(w.watched))
	for a := range w.watched {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		out = append(out, w.watched[a])
	}
	return out
}

// Detector explores schedules and reports races with watched-read stacks.
type Detector struct {
	// MaxRuns / MaxDecisions bound the exploration (see sched.Explorer).
	MaxRuns      int
	MaxDecisions int
	// Benign, when non-nil, suppresses annotated races (OWL's §5.1
	// re-run after ad-hoc synchronization annotation).
	Benign *race.Annotations
}

// New returns a detector with moderate exploration bounds.
func New() *Detector { return &Detector{MaxRuns: 128, MaxDecisions: 10} }

// Detect explores schedules of the configured program and returns merged,
// deduplicated kernel reports plus the number of runs used. cfg's Sched
// and Observers fields are overridden per run.
func (d *Detector) Detect(cfg interp.Config) ([]*Report, int, error) {
	merged := map[string]*Report{}
	var order []string

	ex := &sched.Explorer{MaxRuns: d.MaxRuns, MaxDecisions: d.MaxDecisions}
	res, err := ex.Explore(func(s interp.Scheduler) error {
		det := race.NewDetector()
		det.Benign = d.Benign
		w := newWatcher(det)
		runCfg := cfg
		runCfg.Sched = s
		runCfg.Observers = []interp.Observer{w}
		m, err := interp.New(runCfg)
		if err != nil {
			return err
		}
		m.Run()
		for _, r := range w.reports() {
			id := r.Race.ID()
			if existing, ok := merged[id]; ok {
				existing.Reads = append(existing.Reads, r.Reads...)
				continue
			}
			merged[id] = r
			order = append(order, id)
		}
		return nil
	})
	if err != nil {
		return nil, res.Runs, fmt.Errorf("ski explore: %w", err)
	}
	out := make([]*Report, 0, len(order))
	for _, id := range order {
		out = append(out, merged[id])
	}
	return out, res.Runs, nil
}
