package workloads

// mysqlBody models the two studied MySQL attacks:
//
// MySQL bug #24988 (MySQL-5.0.27, Table 4 "Access Permission / FLUSH
// PRIVILEGES"): acl_reload rebuilds the in-memory privilege table without
// excluding concurrent permission checks. The rebuild transiently leaves a
// default-allow entry for every user; a connection authenticating inside
// that window reads the stale "allow" and is granted an administrative
// session — the paper triggered the corruption within 18 repetitions of
// "flush privileges;". The model's ACL is a heap table of per-user
// privilege words; acl_reload writes the default 1 (allow), delays
// (input-controlled IO), then writes the real 0 (deny) for the attacker.
//
// MySQL bug #59464-style (MySQL-5.1.35, Table 4 "Double Free / SET
// PASSWORD"): two session threads processing SET PASSWORD race on the
// freed-flag of the shared password scramble buffer and free it twice.
//
// Inputs:
//
//	input[0] = run the FLUSH PRIVILEGES scenario (0/1)
//	input[1] = run the SET PASSWORD scenario (0/1)
//	input[2] = io delay widening the racy windows
//	input[3] = number of benign SELECT queries served
const mysqlBody = `
global @acl_ptr = 0
global @acl_version = 0
global @pwd_buf = 0
global @pwd_freed = 0
global @queries_served = 0
global @in_delay = 0
global @attacker_uid = 7

func @acl_check_access(%user) {
entry:
  %tbl = load @acl_ptr
  %c = icmp ne %tbl, 0
  br %c, check, deny
check:
  %slot = gep %tbl, %user
  %p = load %slot
  %allow = icmp ne %p, 0
  br %allow, grant, deny
grant:
  call @setuid(0)
  ret 1
deny:
  ret 0
}

func @acl_reload() {
entry:
  %v = load @acl_version
  %v2 = add %v, 1
  store %v2, @acl_version
  %new = call @malloc(8)
  ; Transient default-allow init for all users...
  jmp fill
fill:
  %i = phi [entry: 0], [fill2: %i2]
  %c = icmp lt %i, 8
  br %c, fill2, swap
fill2:
  %slot = gep %new, %i
  store 1, %slot
  %i2 = add %i, 1
  jmp fill
swap:
  %old = load @acl_ptr
  store %new, @acl_ptr
  ; ...the vulnerable window: the real grants arrive only after IO.
  %d = load @in_delay
  call @io_delay(%d)
  %u = load @attacker_uid
  %aslot = gep %new, %u
  store 0, %aslot
  %oc = icmp ne %old, 0
  br %oc, freeold, done
freeold:
  call @free(%old)
  jmp done
done:
  ret 0
}

func @flush_privileges_session() {
entry:
  %r = call @acl_reload()
  ret 0
}

func @attacker_session() {
entry:
  %u = load @attacker_uid
  jmp head
head:
  %i = phi [entry: 0], [again: %i2]
  %c = icmp lt %i, 16
  br %c, try, giveup
try:
  %ok = call @acl_check_access(%u)
  %won = icmp ne %ok, 0
  br %won, done, again
again:
  call @io_delay(2)
  %i2 = add %i, 1
  jmp head
done:
  ret 1
giveup:
  ret 0
}

func @set_password_session() {
entry:
  %f = load @pwd_freed
  %c = icmp ne %f, 0
  br %c, skip, dofree
dofree:
  %d = load @in_delay
  call @io_delay(%d)
  store 1, @pwd_freed
  %buf = load @pwd_buf
  call @free(%buf)
  ret 1
skip:
  ret 0
}

func @select_session(%n) {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, %n
  br %c, body, done
body:
  %q = load @queries_served
  %q2 = add %q, 1
  store %q2, @queries_served
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @main() {
entry:
  %flush = call @input()
  %setpwd = call @input()
  %delay = call @input()
  %selects = call @input()
  store %delay, @in_delay
  %nz = call @noise_run()

  ; Boot: initial ACL denies the attacker.
  %tbl = call @malloc(8)
  %u = load @attacker_uid
  %slot = gep %tbl, %u
  store 0, %slot
  store %tbl, @acl_ptr

  %sel = call @spawn(@select_session, %selects)

  %doflush = icmp ne %flush, 0
  br %doflush, flushpart, pwdgate
flushpart:
  %t1 = call @spawn(@flush_privileges_session)
  %t2 = call @spawn(@attacker_session)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  jmp pwdgate
pwdgate:
  %dopwd = icmp ne %setpwd, 0
  br %dopwd, pwdpart, finish
pwdpart:
  %buf = call @malloc(4)
  store %buf, @pwd_buf
  store 0, @pwd_freed
  %p1 = call @spawn(@set_password_session)
  %p2 = call @spawn(@set_password_session)
  %r3 = call @join(%p1)
  %r4 = call @join(%p2)
  jmp finish
finish:
  %r5 = call @join(%sel)
  %nw = call @noise_wait()
  ret 0
}
`

// newMySQL builds the MySQL workload (bugs #24988 and the SET PASSWORD
// double free).
func newMySQL(lvl NoiseLevel) *Workload {
	spec := noiseSpec{adhoc: 1, solid: 2, gated: 4, flaky: 2, flakySpread: 16}.
		scale(lvl, noiseSpec{adhoc: 6, solid: 6, gated: 60, flaky: 10, flakySpread: 24})
	src := mysqlBody + genNoise(spec)
	return &Workload{
		Name:     "mysql",
		RealName: "MySQL-5.0.27/5.1.35",
		Module:   build("mysql", src),
		MaxSteps: 150000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{0, 0, 0, 4},
				Note: "plain SELECT traffic"},
			{Name: "flush-attack", Inputs: []int64{1, 0, 6, 2},
				Note: "FLUSH PRIVILEGES racing an authenticating connection (bug #24988)"},
			{Name: "setpwd-attack", Inputs: []int64{0, 1, 4, 2},
				Note: "two concurrent SET PASSWORD sessions (double free)"},
		},
		Attacks: []AttackSpec{
			{
				ID:            "MySQL-24988",
				VulnType:      "Access Permission",
				SubtleInput:   "FLUSH PRIVILEGES",
				InputRecipe:   "flush-attack",
				Consequence:   ConsequencePrivEscalation,
				SiteCallee:    "setuid",
				SiteFunc:      "acl_check_access",
				RacyVar:       "", // heap: acl table slot
				CrossFunction: true,
			},
			{
				ID:            "MySQL-SETPASSWORD",
				VulnType:      "Double Free",
				SubtleInput:   "SET PASSWORD",
				InputRecipe:   "setpwd-attack",
				Consequence:   ConsequenceDoubleFree,
				SiteCallee:    "free",
				SiteFunc:      "set_password_session",
				RacyVar:       "@pwd_freed",
				CrossFunction: false,
			},
		},
		PaperRaceReports: 1123,
		PaperAttacks:     2,
		PaperLoC:         "1.5M",
	}
}

func init() { register("mysql", newMySQL) }
