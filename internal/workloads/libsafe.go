package workloads

// libsafeSrc models the paper's Figure 1 attack on the Libsafe security
// library. Libsafe intercepts libc memory functions and checks for stack
// overflows; when it detects one it sets the global flag `dying` and kills
// the process shortly after (libsafe_die). Reads of `dying` in
// stack_check are not protected by any mutex, so between the store at
// line 1640 and the process exit, another thread's stack_check can read
// dying==1, return 0 ("don't check"), and libsafe_strcpy falls through to
// the raw strcpy — a stack overflow past the checks, i.e. code injection.
//
// Inputs:
//
//	input[0] = attacker payload length (words) for the second strcpy
//	input[1] = io delay between `dying = 1` and the kill — the paper's
//	           input-controlled timing that widens the vulnerable window
//	input[2] = delay before the victim thread attempts its copy
//
// The dst buffer holds 8 words, so payload length > 7 overflows iff the
// check is bypassed.
const libsafeBody = `
global @dying = 0
global @stat_checks = 0
global @log_idx = 0
global @log_buf [32]
global @attack_payload [64]

func @stack_check(%dst) {
entry:
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, do_check
bypass:
  ret 0
do_check:
  %s = load @stat_checks
  %s2 = add %s, 1
  store %s2, @stat_checks
  %n = call @strlen(%dst)
  ret 1
}

func @log_event(%what) {
entry:
  %i = load @log_idx
  %p = addr @log_buf
  %q = gep %p, %i
  store %what, %q
  %i2 = add %i, 1
  %c = icmp lt %i2, 32
  br %c, ok, wrap
ok:
  store %i2, @log_idx
  ret 0
wrap:
  store 0, @log_idx
  ret 0
}

func @libsafe_strcpy(%dst, %src) {
entry:
  %r = call @log_event(1)
  %ok = call @stack_check(%dst)
  %c = icmp eq %ok, 0
  br %c, raw_copy, checked_copy
raw_copy:
  %v = call @strcpy(%dst, %src)
  ret %v
checked_copy:
  %n = call @strlen(%src)
  %fits = icmp lt %n, 8
  br %fits, safe, blocked
safe:
  %v2 = call @strcpy(%dst, %src)
  ret %v2
blocked:
  %r2 = call @log_event(2)
  ret 0
}

func @libsafe_die(%window) {
entry:
  %r = call @log_event(3)
  store 1, @dying
  call @io_delay(%window)
  call @exit(1)
  ret 0
}

func @overflow_detector() {
entry:
  call @io_delay(4)
  %window = load @in_window
  %r = call @libsafe_die(%window)
  ret 0
}

func @victim(%len) {
entry:
  %delay = load @in_victim_delay
  call @io_delay(%delay)
  %buf = alloca 8
  %p = addr @attack_payload
  %r = call @libsafe_strcpy(%buf, %p)
  ret %r
}

global @in_window = 0
global @in_victim_delay = 0

func @main() {
entry:
  %len = call @input()
  %window = call @input()
  %vdelay = call @input()
  store %window, @in_window
  store %vdelay, @in_victim_delay
  %nz = call @noise_run()
  ; Build the attacker payload: len words of 'A' then NUL.
  %p = addr @attack_payload
  jmp fill
fill:
  %i = phi [entry: 0], [fill2: %i2]
  %c = icmp lt %i, %len
  br %c, fill2, filled
fill2:
  %q = gep %p, %i
  store 65, %q
  %i2 = add %i, 1
  jmp fill
filled:
  %qz = gep %p, %len
  store 0, %qz
  %t1 = call @spawn(@victim, %len)
  %t2 = call @spawn(@overflow_detector)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %nw = call @noise_wait()
  ret 0
}
`

// newLibsafe builds the Libsafe-2.0-16 workload.
func newLibsafe(lvl NoiseLevel) *Workload {
	spec := noiseSpec{solid: 1}.
		scale(lvl, noiseSpec{solid: 1})
	src := libsafeBody + genNoise(spec)
	w := &Workload{
		Name:     "libsafe",
		RealName: "Libsafe-2.0-16",
		Module:   build("libsafe", src),
		MaxSteps: 60000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{4, 0, 0},
				Note: "short copy, no timing manipulation"},
			{Name: "attack", Inputs: []int64{20, 40, 6},
				Note: "long payload + widened dying->exit window (loops with strcpy)"},
		},
		Attacks: []AttackSpec{{
			ID:            "Libsafe-dying",
			VulnType:      "Buffer Overflow",
			SubtleInput:   "Loops with strcpy()",
			InputRecipe:   "attack",
			Consequence:   ConsequenceCodeInjection,
			SiteCallee:    "strcpy",
			SiteFunc:      "libsafe_strcpy",
			RacyVar:       "@dying",
			CrossFunction: true,
		}},
		PaperRaceReports: 3,
		PaperAttacks:     1,
		PaperLoC:         "3.4K",
	}
	return w
}

func init() { register("libsafe", newLibsafe) }
