package workloads

// ssdbSrc models the previously unknown SSDB-1.9.2 use-after-free the
// paper detected (Figure 6, confirmed as CVE-2016-1000324). During server
// shutdown, SSDB synchronizes its binlog cleaner thread with the ad-hoc
// flag `thread_quit`; the destructor ~BinlogQueue also NULLs and frees the
// shared `db` handle. The race: log_clean_thread_func checks `logs->db`
// (line 359) to break out of its while loop, but the destructor can set
// `db = NULL` and free it *after* the check. The cleaner then calls
// del_range, which dereferences `db->Write` — a function-pointer
// dereference on freed memory: use-after-free plus potential crash.
//
// The model keeps the exact structure: the BinlogQueue object is a heap
// block [0]=db pointer, [1]=thread_quit flag, [2]=write count; the db
// object is a heap block whose word 0 holds the Write function pointer.
//
// Inputs:
//
//	input[0] = number of del_range batches per cleaner iteration
//	input[1] = shutdown delay (io_delay before ~BinlogQueue runs)
//	input[2] = cleaner IO delay inside the loop (widens the check-to-use
//	           window, the attack's subtle timing)
const ssdbBody = `
global @logs_ptr = 0
global @served = 0
global @in_batches = 0
global @in_cleaner_delay = 0

func @db_write_impl(%db) {
entry:
  %v = load %db
  ret 0
}

func @del_range(%logs, %start, %end) {
entry:
  %db = load %logs
  %c = icmp ne %db, 0
  br %c, doit, out
doit:
  %delay = load @in_cleaner_delay
  call @io_delay(%delay)
  %fp_addr = gep %db, 0
  %fp = load %fp_addr
  %r = call %fp(%db)
  %cnt_addr = gep %logs, 2
  %cnt = load %cnt_addr
  %cnt2 = add %cnt, 1
  store %cnt2, %cnt_addr
  ret 1
out:
  ret 0
}

func @log_clean_thread_func(%logs) {
entry:
  jmp loop
loop:
  %quit_addr = gep %logs, 1
  %quit = load %quit_addr
  %qc = icmp ne %quit, 0
  br %qc, done, check_db
check_db:
  %db = load %logs
  %dc = icmp eq %db, 0
  br %dc, done, work
work:
  %delay = load @in_cleaner_delay
  call @io_delay(%delay)
  %batches = load @in_batches
  jmp batch
batch:
  %i = phi [work: 0], [batch2: %i2]
  %bc = icmp lt %i, %batches
  br %bc, batch2, loop_back
batch2:
  %r = call @del_range(%logs, %i, %i)
  %i2 = add %i, 1
  jmp batch
loop_back:
  jmp loop
done:
  ret 0
}

func @binlog_queue_dtor(%logs) {
entry:
  %quit_addr = gep %logs, 1
  store 1, %quit_addr
  %db = load %logs
  store 0, %logs
  call @free(%db)
  ret 0
}

func @serve_requests(%logs) {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 3
  br %c, body, done
body:
  %s = load @served
  %s2 = add %s, 1
  store %s2, @served
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @main() {
entry:
  %batches = call @input()
  %shutdown_delay = call @input()
  %cleaner_delay = call @input()
  store %batches, @in_batches
  store %cleaner_delay, @in_cleaner_delay
  %nz = call @noise_run()

  ; Construct the db object (word 0 = Write fn ptr) and the BinlogQueue.
  %db = call @malloc(2)
  %w = func @db_write_impl
  store %w, %db
  %logs = call @malloc(3)
  store %db, %logs

  %t1 = call @spawn(@log_clean_thread_func, %logs)
  %t2 = call @spawn(@serve_requests, %logs)
  %r2 = call @join(%t2)
  call @io_delay(%shutdown_delay)
  %r = call @binlog_queue_dtor(%logs)
  %r1 = call @join(%t1)
  %nw = call @noise_wait()
  ret 0
}
`

// newSSDB builds the SSDB-1.9.2 workload.
func newSSDB(lvl NoiseLevel) *Workload {
	spec := noiseSpec{solid: 1, gated: 2, flaky: 1, flakySpread: 12}.
		scale(lvl, noiseSpec{solid: 1, gated: 4, flaky: 1, flakySpread: 16})
	src := ssdbBody + genNoise(spec)
	return &Workload{
		Name:     "ssdb",
		RealName: "SSDB-1.9.2",
		Module:   build("ssdb", src),
		MaxSteps: 80000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{1, 12, 0},
				Note: "single batch, shutdown long after cleaner finishes a pass"},
			{Name: "attack", Inputs: []int64{3, 2, 5},
				Note: "shutdown racing the cleaner; cleaner IO widens check-to-use window"},
		},
		Attacks: []AttackSpec{{
			ID:            "CVE-2016-1000324",
			VulnType:      "Use after free",
			SubtleInput:   "compact during shutdown",
			InputRecipe:   "attack",
			Consequence:   ConsequenceUseAfterFree,
			SiteCallee:    "", // the site is the fp load/indirect call in del_range
			SiteFunc:      "del_range",
			RacyVar:       "", // heap block: logs[0]
			CrossFunction: true,
		}},
		PaperRaceReports: 12,
		PaperAttacks:     1,
		PaperLoC:         "67K",
	}
}

func init() { register("ssdb", newSSDB) }
