package workloads

// apacheBody models three studied Apache attacks in one server:
//
// 1. Apache bug #25520 (Figure 7) — ap_buffered_log_writer: `buf->outcnt`
// is shared without synchronization. The LOG_BUFSIZE check at line 1342
// reads outcnt once; line 1358 re-reads it to compute the copy target. A
// racing writer can advance outcnt between the two reads, so the memcpy
// lands past the end of outbuf and corrupts the file descriptor Apache
// stores right next to the buffer. An attacker who controls log content
// (their own HTTP request line) chooses the overflowing byte = the fd of a
// victim's HTML file; the next flush then writes Apache's request log into
// that HTML file — the paper's previously unknown HTML integrity
// violation. Layout here: log object = heap block [0..7] outbuf,
// [8] fd, with outcnt in word [9] (adjacent, like the C struct).
//
// 2. Apache bug #46215 (Figure 8) — the load balancer's busy counters:
// `if (worker->s->busy) worker->s->busy--` re-reads the counter after the
// check, so two finishing requests can drive an unsigned counter below
// zero, to 2^64-1-ish (the paper observed 18,446,744,073,709,551,614).
// find_best_bybusyness compares unsigned, so the underflowed worker looks
// "busiest" forever and is never assigned again: a DoS on that worker.
//
// 3. Apache-2.0.48 double free — two request-cleanup threads race on the
// `cleanup_done` flag guarding the request pool's free (the "PhP queries"
// double free of Table 4).
//
// Inputs:
//
//	input[0] = log writes per logger thread
//	input[1] = attacker log byte (the fd value to smash into the struct)
//	input[2] = log payload length in words
//	input[3] = balancer assignments to make after the workers race
//	input[4] = run the PHP cleanup pair (0/1)
//	input[5] = io delay widening the racy windows
const apacheBody = `
global @log_obj = 0
global @outcnt_gate = 0
global @busy [2]
global @served [2]
global @cleanup_done = 0
global @pool_ptr = 0
global @in_log_writes = 0
global @in_log_byte = 0
global @in_log_len = 0
global @in_delay = 0
global @html_marker = 7777

func @flush_log(%buf) {
entry:
  %cnt_addr = gep %buf, 9
  %cnt = load %cnt_addr
  %fd_addr = gep %buf, 8
  %fd = load %fd_addr
  %n = call @write(%fd, %buf, %cnt)
  store 0, %cnt_addr
  ret %n
}

func @ap_buffered_log_writer(%buf, %data, %len) {
entry:
  %cnt_addr = gep %buf, 9
  %cnt1 = load %cnt_addr
  %sum = add %cnt1, %len
  %over = icmp gt %sum, 8
  br %over, do_flush, append
do_flush:
  %r = call @flush_log(%buf)
  jmp append
append:
  %d = load @in_delay
  call @io_delay(%d)
  %cnt2 = load %cnt_addr
  %s = gep %buf, %cnt2
  %n = call @memcpy(%s, %data, %len)
  %cnt3 = add %cnt2, %len
  store %cnt3, %cnt_addr
  ret 0
}

func @logger_thread(%data) {
entry:
  %buf = load @log_obj
  %len = load @in_log_len
  %writes = load @in_log_writes
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, %writes
  br %c, body, done
body:
  %r = call @ap_buffered_log_writer(%buf, %data, %len)
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @proxy_worker_finish(%w) {
entry:
  %p = addr @busy
  %q = gep %p, %w
  %b = load %q
  %c = icmp ne %b, 0
  br %c, dec, out
dec:
  %d = load @in_delay
  call @io_delay(%d)
  %b2 = load %q
  %b3 = sub %b2, 1
  store %b3, %q
  ret 0
out:
  ret 0
}

func @proxy_worker_start(%w) {
entry:
  %p = addr @busy
  %q = gep %p, %w
  %b = load %q
  %b2 = add %b, 1
  store %b2, %q
  ret 0
}

func @find_best_bybusyness() {
entry:
  %p = addr @busy
  %b0 = load %p
  %q1 = gep %p, 1
  %b1 = load %q1
  %c = icmp ule %b0, %b1
  br %c, pick0, pick1
pick0:
  %sp0 = addr @served
  %s0 = load %sp0
  %s0b = add %s0, 1
  store %s0b, %sp0
  ret 0
pick1:
  %sp = addr @served
  %sq = gep %sp, 1
  %s1 = load %sq
  %s1b = add %s1, 1
  store %s1b, %sq
  ret 1
}

func @balancer(%k) {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, %k
  br %c, body, done
body:
  %w = call @find_best_bybusyness()
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @balancer_thread(%k) {
entry:
  call @io_delay(1)
  %r = call @balancer(%k)
  ret 0
}

func @php_cleanup() {
entry:
  %pool = load @pool_ptr
  %done = load @cleanup_done
  %c = icmp ne %done, 0
  br %c, skip, dofree
dofree:
  %d = load @in_delay
  call @io_delay(%d)
  store 1, @cleanup_done
  call @free(%pool)
  ret 1
skip:
  ret 0
}

func @main() {
entry:
  %writes = call @input()
  %logbyte = call @input()
  %loglen = call @input()
  %k = call @input()
  %php = call @input()
  %delay = call @input()
  store %writes, @in_log_writes
  store %logbyte, @in_log_byte
  store %loglen, @in_log_len
  store %delay, @in_delay
  %nz = call @noise_run()

  ; Victim HTML file is opened first (fd 3), the request log second (fd 4).
  %hfd = call @open("user/index.html")
  %m = load @html_marker
  %mbuf = alloca 1
  store %m, %mbuf
  %n0 = call @write(%hfd, %mbuf, 1)

  %buf = call @malloc(10)
  %lfd = call @open("logs/access_log")
  %fd_addr = gep %buf, 8
  store %lfd, %fd_addr
  store %buf, @log_obj

  ; Attacker-controlled log payload: loglen words of the attacker byte.
  %data = alloca 4
  jmp fill
fill:
  %i = phi [entry: 0], [fill2: %i2]
  %c = icmp lt %i, %loglen
  br %c, fill2, filled
fill2:
  %q = gep %data, %i
  %b = load @in_log_byte
  store %b, %q
  %i2 = add %i, 1
  jmp fill
filled:
  %haveLogs = icmp gt %writes, 0
  br %haveLogs, dologs, balpart
dologs:
  %t1 = call @spawn(@logger_thread, %data)
  %t2 = call @spawn(@logger_thread, %data)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %buf2 = load @log_obj
  %fl = call @flush_log(%buf2)
  jmp balpart
balpart:
  %haveBal = icmp gt %k, 0
  br %haveBal, dobal, phppart
dobal:
  %s1 = call @spawn(@proxy_worker_start, 0)
  %r3 = call @join(%s1)
  ; The balancer runs concurrently with the finishing requests — the
  ; paper's race is between the busy-- at line 617 and the comparison
  ; read at line 1192.
  %f1 = call @spawn(@proxy_worker_finish, 0)
  %f2 = call @spawn(@proxy_worker_finish, 0)
  %bt = call @spawn(@balancer_thread, %k)
  %r4 = call @join(%f1)
  %r5 = call @join(%f2)
  %r6 = call @join(%bt)
  ; Post-phase for the DoS oracle: fresh assignment counts after the
  ; underflow (if any) has landed.
  %sp = addr @served
  store 0, %sp
  %sq = gep %sp, 1
  store 0, %sq
  %bal = call @balancer(%k)
  jmp phppart
phppart:
  %havePhp = icmp ne %php, 0
  br %havePhp, dophp, done
dophp:
  %pool = call @malloc(4)
  store %pool, @pool_ptr
  store 0, @cleanup_done
  %p1 = call @spawn(@php_cleanup)
  %p2 = call @spawn(@php_cleanup)
  %r8 = call @join(%p1)
  %r9 = call @join(%p2)
  jmp done
done:
  %nw = call @noise_wait()
  ret 0
}
`

// newApache builds the Apache workload (bugs #25520, #46215, and the
// 2.0.48 double free in one server model).
func newApache(lvl NoiseLevel) *Workload {
	spec := noiseSpec{adhoc: 2, solid: 2, gated: 4, flaky: 2, flakySpread: 16}.
		scale(lvl, noiseSpec{adhoc: 7, solid: 3, gated: 45, flaky: 8, flakySpread: 24})
	src := apacheBody + genNoise(spec)
	return &Workload{
		Name:     "apache",
		RealName: "Apache-2.0.48/2.2 (bugs 25520, 46215)",
		Module:   build("apache", src),
		MaxSteps: 150000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{2, 65, 1, 0, 0, 0},
				Note: "two loggers, 1-word entries, no balancer or PHP"},
			{Name: "log-attack", Inputs: []int64{4, 3, 2, 0, 0, 4},
				Note: "attacker request byte 3 (= victim HTML fd), 2-word entries, widened window"},
			{Name: "dos-attack", Inputs: []int64{0, 0, 0, 6, 0, 4},
				Note: "start/finish request pair racing the busy-- decrement, then balance 6 requests"},
			{Name: "dfree-attack", Inputs: []int64{0, 0, 0, 0, 1, 4},
				Note: "PhP queries: two cleanup threads race on cleanup_done"},
		},
		Attacks: []AttackSpec{
			{
				ID:            "Apache-25520",
				VulnType:      "HTML Integrity / Buffer Overflow",
				SubtleInput:   "log entries sized to straddle LOG_BUFSIZE",
				InputRecipe:   "log-attack",
				Consequence:   ConsequenceHTMLIntegrity,
				SiteCallee:    "memcpy",
				SiteFunc:      "ap_buffered_log_writer",
				RacyVar:       "", // heap: log_obj word 9
				CrossFunction: false,
			},
			{
				ID:            "Apache-46215",
				VulnType:      "Integer Overflow DoS",
				SubtleInput:   "concurrent request finishes on one worker",
				InputRecipe:   "dos-attack",
				Consequence:   ConsequenceDoS,
				SiteCallee:    "",
				SiteFunc:      "find_best_bybusyness",
				RacyVar:       "@busy",
				CrossFunction: true,
			},
			{
				ID:            "Apache-2.0.48-dfree",
				VulnType:      "Double Free",
				SubtleInput:   "PhP queries",
				InputRecipe:   "dfree-attack",
				Consequence:   ConsequenceDoubleFree,
				SiteCallee:    "free",
				SiteFunc:      "php_cleanup",
				RacyVar:       "@cleanup_done",
				CrossFunction: false,
			},
		},
		PaperRaceReports: 715,
		PaperAttacks:     4,
		PaperLoC:         "290K",
	}
}

func init() { register("apache", newApache) }
