package workloads

// linuxBody models the two studied Linux kernel attacks as a "kernel"
// workload, detected with the SKI-style schedule explorer instead of the
// TSAN-style detector (the paper runs SKI on kernels, §6.3).
//
// Linux-2.6.10 uselib()/msync() (Figure 2): do_munmap NULLs the shared
// `file->f_op` while msync_interval is between its `if (file->f_op &&
// file->f_op->fsync)` check and the `file->f_op->fsync(...)` call; the
// kernel dereferences a NULL function pointer, and attackers mapped the
// zero page to run arbitrary code. The paper notes the check and the call
// have an IO operation between them whose timing attacker inputs control —
// modelled by the input-driven io_delay between check and use.
//
// Linux-2.6.29-style privilege escalation (Table 4 "Syscall parameters"):
// a credentials-swap window. sys_switch_creds transiently publishes the
// root cred struct before installing the caller's real cred; a concurrent
// getuid-check against the stale cred lets the attacker thread setuid(0)
// and exec a shell — the paper's uselib exploit similarly needed extra
// syscalls beyond the race to actually get the root shell.
//
// Inputs:
//
//	input[0] = run the uselib/msync scenario (0/1)
//	input[1] = run the cred-swap scenario (0/1)
//	input[2] = io delay between check and use (syscall-parameter timing)
const linuxBody = `
global @file_f_op = 0
global @cred_ptr = 0
global @init_cred [1]
global @user_cred [1]
global @in_delay = 0
global @syscalls = 0

func @fsync_impl() {
entry:
  %s = load @syscalls
  %s2 = add %s, 1
  store %s2, @syscalls
  ret 0
}

func @msync_interval() {
entry:
  %f = load @file_f_op
  %c = icmp ne %f, 0
  br %c, has_op, out
has_op:
  ; The paper: "the if statement and the file->f_op->fsync() statement
  ; have an IO operation (not shown) in between".
  %d = load @in_delay
  call @io_delay(%d)
  %f2 = load @file_f_op
  %r = call %f2()
  ret 0
out:
  ret 0
}

func @do_munmap() {
entry:
  store 0, @file_f_op
  ret 0
}

func @sys_switch_creds() {
entry:
  ; Transiently publish init (root) creds...
  %root = addr @init_cred
  store %root, @cred_ptr
  %d = load @in_delay
  call @io_delay(%d)
  ; ...before installing the caller's own.
  %user = addr @user_cred
  store %user, @cred_ptr
  ret 0
}

func @attacker_syscall() {
entry:
  call @io_delay(1)
  %cred = load @cred_ptr
  %c = icmp ne %cred, 0
  br %c, check, out
check:
  %uid = load %cred
  %isroot = icmp eq %uid, 0
  br %isroot, escalate, out
escalate:
  call @setuid(0)
  call @exec("/bin/sh")
  ret 1
out:
  ret 0
}

func @main() {
entry:
  %uselib = call @input()
  %creds = call @input()
  %delay = call @input()
  store %delay, @in_delay
  store 1000, @user_cred
  store 0, @init_cred
  %nz = call @noise_run()

  %douselib = icmp ne %uselib, 0
  br %douselib, uselibpart, credgate
uselibpart:
  %h = func @fsync_impl
  store %h, @file_f_op
  %t1 = call @spawn(@msync_interval)
  %t2 = call @spawn(@do_munmap)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  jmp credgate
credgate:
  %docreds = icmp ne %creds, 0
  br %docreds, credpart, finish
credpart:
  %user = addr @user_cred
  store %user, @cred_ptr
  %t3 = call @spawn(@sys_switch_creds)
  %t4 = call @spawn(@attacker_syscall)
  %r3 = call @join(%t3)
  %r4 = call @join(%t4)
  jmp finish
finish:
  %nw = call @noise_wait()
  ret 0
}
`

// newLinux builds the Linux kernel workload (uselib NULL-func-ptr deref
// and the cred-swap privilege escalation).
func newLinux(lvl NoiseLevel) *Workload {
	spec := noiseSpec{adhoc: 1, solid: 2, flaky: 2, flakySpread: 12}.
		scale(lvl, noiseSpec{adhoc: 4, solid: 6, flaky: 6, flakySpread: 16})
	src := linuxBody + genNoise(spec)
	return &Workload{
		Name:     "linux",
		RealName: "Linux-2.6.10/2.6.29",
		Module:   build("linux", src),
		Kernel:   true,
		MaxSteps: 150000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{0, 0, 0},
				Note: "no racing syscalls"},
			{Name: "uselib-attack", Inputs: []int64{1, 0, 5},
				Note: "uselib()+msync() with swap-IO timing (syscall parameters)"},
			{Name: "cred-attack", Inputs: []int64{0, 1, 5},
				Note: "cred swap racing a uid check; extra syscalls fetch the root shell"},
		},
		Attacks: []AttackSpec{
			{
				ID:            "Linux-2.6.10-uselib",
				VulnType:      "Null Func Ptr Deref",
				SubtleInput:   "Syscall parameters",
				InputRecipe:   "uselib-attack",
				Consequence:   ConsequenceNullDeref,
				SiteCallee:    "", // indirect call in msync_interval
				SiteFunc:      "msync_interval",
				RacyVar:       "@file_f_op",
				CrossFunction: true,
			},
			{
				ID:            "Linux-2.6.29-cred",
				VulnType:      "Privilege Escalation",
				SubtleInput:   "Syscall parameters",
				InputRecipe:   "cred-attack",
				Consequence:   ConsequencePrivEscalation,
				SiteCallee:    "setuid",
				SiteFunc:      "attacker_syscall",
				RacyVar:       "@cred_ptr",
				CrossFunction: false,
			},
		},
		PaperRaceReports: 24641,
		PaperAttacks:     8,
		PaperLoC:         "2.8M",
	}
}

func init() { register("linux", newLinux) }
