package workloads

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/sched"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"apache", "chrome", "libsafe", "linux", "memcached", "mysql", "ssdb"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered workloads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("workload %d = %s, want %s", i, got[i], want[i])
		}
	}
	if Get("nope", NoiseLight) != nil {
		t.Error("unknown workload should be nil")
	}
}

func TestAllWorkloadsBuildAtBothNoiseLevels(t *testing.T) {
	for _, lvl := range []NoiseLevel{NoiseLight, NoiseFull} {
		for _, w := range All(lvl) {
			if w.Module == nil || !w.Module.Frozen() {
				t.Errorf("%s: module not built/frozen", w.Name)
			}
			if len(w.Recipes) == 0 {
				t.Errorf("%s: no input recipes", w.Name)
			}
			if w.MaxSteps <= 0 {
				t.Errorf("%s: no step bound", w.Name)
			}
		}
	}
}

// TestAllRecipesTerminate runs every workload under every recipe and many
// seeds: no deadlock, no step-bound truncation. Faults are allowed (the
// attack paths fault by design).
func TestAllRecipesTerminate(t *testing.T) {
	for _, w := range All(NoiseLight) {
		for _, rec := range w.Recipes {
			for seed := uint64(1); seed <= 10; seed++ {
				m, err := interp.New(interp.Config{
					Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs,
					MaxSteps: w.MaxSteps, Sched: sched.NewRandom(seed),
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, rec.Name, err)
				}
				res := m.Run()
				if res.MaxStepsHit {
					t.Errorf("%s/%s seed %d: hit step bound (%d steps)",
						w.Name, rec.Name, seed, res.Steps)
				}
				if res.Stall == interp.StallDeadlock {
					// Deadlock is only acceptable when a fault killed a
					// thread others join on.
					if len(res.Faults) == 0 {
						t.Errorf("%s/%s seed %d: deadlock without fault",
							w.Name, rec.Name, seed)
					}
				}
			}
		}
	}
}

func TestRecipeLookup(t *testing.T) {
	w := Get("libsafe", NoiseLight)
	if r := w.Recipe("attack"); r.Name != "attack" {
		t.Errorf("recipe lookup failed: %+v", r)
	}
	if r := w.Recipe("no-such"); r.Name != w.Recipes[0].Name {
		t.Errorf("fallback recipe = %+v", r)
	}
}

func TestAttackSpecsWellFormed(t *testing.T) {
	total := 0
	for _, w := range All(NoiseLight) {
		for _, a := range w.Attacks {
			total++
			if a.ID == "" || a.VulnType == "" || a.SubtleInput == "" {
				t.Errorf("%s: incomplete attack spec %+v", w.Name, a)
			}
			if a.Consequence == 0 {
				t.Errorf("%s/%s: no consequence", w.Name, a.ID)
			}
			if a.SiteFunc == "" {
				t.Errorf("%s/%s: no site function", w.Name, a.ID)
			}
			if w.Module.Func(a.SiteFunc) == nil {
				t.Errorf("%s/%s: site function @%s not in module", w.Name, a.ID, a.SiteFunc)
			}
			found := false
			for _, r := range w.Recipes {
				if r.Name == a.InputRecipe {
					found = true
				}
			}
			if !found {
				t.Errorf("%s/%s: recipe %q missing", w.Name, a.ID, a.InputRecipe)
			}
		}
	}
	// The paper reproduces 10 attacks; we model the 10 across 6 programs
	// (4 Apache/MySQL server attacks, Libsafe, SSDB, Chrome, 2 Linux,
	// Apache DoS) — at least 9 distinct AttackSpecs here.
	if total < 9 {
		t.Errorf("modelled attacks = %d, want >= 9", total)
	}
}

func TestNoiseGeneratorShapes(t *testing.T) {
	src := "global @unused = 0\nfunc @main() {\nentry:\n  %r = call @noise_run()\n  %w = call @noise_wait()\n  ret 0\n}\n" +
		genNoise(noiseSpec{adhoc: 2, solid: 3, flaky: 4, flakySpread: 8})
	mod := build("noise", src)
	for seed := uint64(1); seed <= 5; seed++ {
		m, err := interp.New(interp.Config{Module: mod, Sched: sched.NewRandom(seed), MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.MaxStepsHit || len(res.Faults) > 0 {
			t.Fatalf("noise-only run misbehaved: steps=%d faults=%v", res.Steps, res.Faults)
		}
	}
}

func TestKernelFlag(t *testing.T) {
	if !Get("linux", NoiseLight).Kernel {
		t.Error("linux workload must be kernel-flagged (SKI detector)")
	}
	for _, n := range []string{"apache", "mysql", "ssdb", "chrome", "libsafe", "memcached"} {
		if Get(n, NoiseLight).Kernel {
			t.Errorf("%s wrongly kernel-flagged", n)
		}
	}
}

func TestPaperNumbersRecorded(t *testing.T) {
	// Table 1 comparison data must be present for EXPERIMENTS.md.
	for _, w := range All(NoiseLight) {
		if w.Name == "memcached" {
			continue // Table 3 only
		}
		if w.PaperRaceReports == 0 {
			t.Errorf("%s: missing paper race-report count", w.Name)
		}
	}
}
