package workloads

// memcachedBody models Memcached as the paper's Table 3 uses it: a program
// whose detector reports are almost entirely benign (5376 raw reports,
// 5372 eliminated by the race verifier, 4 remaining, zero attacks). The
// model therefore has no attack path at all — just the server's benign
// shared-statistics races plus generated noise, so the reduction pipeline
// has a pure-noise row to prove it does not fabricate attacks.
//
// Inputs:
//
//	input[0] = get/set operations per client thread
const memcachedBody = `
global @stats_gets = 0
global @stats_sets = 0
global @slab [16]

func @client(%ops) {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, %ops
  br %c, body, done
body:
  %g = load @stats_gets
  %g2 = add %g, 1
  store %g2, @stats_gets
  %k = call @rand(16)
  %p = addr @slab
  %q = gep %p, %k
  %v = load %q
  %v2 = add %v, 1
  store %v2, %q
  %s = load @stats_sets
  %s2 = add %s, 1
  store %s2, @stats_sets
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @main() {
entry:
  %ops = call @input()
  %nz = call @noise_run()
  %t1 = call @spawn(@client, %ops)
  %t2 = call @spawn(@client, %ops)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %nw = call @noise_wait()
  ret 0
}
`

// newMemcached builds the Memcached workload (benign-only row of Table 3).
func newMemcached(lvl NoiseLevel) *Workload {
	spec := noiseSpec{solid: 1, gated: 3, flaky: 1, flakySpread: 16}.
		scale(lvl, noiseSpec{solid: 1, gated: 50, flaky: 2, flakySpread: 32})
	src := memcachedBody + genNoise(spec)
	return &Workload{
		Name:     "memcached",
		RealName: "Memcached",
		Module:   build("memcached", src),
		MaxSteps: 150000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{3}, Note: "mixed get/set traffic"},
		},
		PaperRaceReports: 5376,
		PaperAttacks:     0,
		PaperLoC:         "—",
	}
}

func init() { register("memcached", newMemcached) }
