// Package workloads provides faithful IR models of the programs the paper
// studies (§3, §8): Libsafe, the Linux kernel's uselib/msync races, MySQL,
// SSDB, Apache (both the #25520 buffered-log attack and the #46215
// balancer DoS), Chrome, and Memcached. Each model preserves the studied
// bug's structure — the racing accesses, the bug-to-attack propagation
// (data vs control dependence, cross-function spread, shared call-stack
// prefixes), and the vulnerable-site type — plus a configurable amount of
// benign-race noise so that the report-reduction dynamics of Table 3
// reproduce in shape.
//
// Each workload carries named input recipes ("benign", "attack", ...): the
// paper's Finding III is that concurrency bugs and their attacks trigger
// under separate, subtle inputs, so the recipes differ in payload sizes,
// query sequences, and IO timings (io_delay), and the attack drivers in
// internal/attack measure how many repetitions each recipe needs.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"github.com/conanalysis/owl/internal/ir"
)

// Consequence classifies what a successful attack does — the oracle
// dimension used by internal/attack.
type Consequence int

// Attack consequences observed in the study.
const (
	ConsequencePrivEscalation Consequence = iota + 1
	ConsequenceCodeInjection
	ConsequenceUseAfterFree
	ConsequenceDoubleFree
	ConsequenceNullDeref
	ConsequenceHTMLIntegrity
	ConsequenceDoS
	ConsequenceBufferOverflow
)

func (c Consequence) String() string {
	switch c {
	case ConsequencePrivEscalation:
		return "privilege escalation"
	case ConsequenceCodeInjection:
		return "malicious code injection"
	case ConsequenceUseAfterFree:
		return "use after free"
	case ConsequenceDoubleFree:
		return "double free"
	case ConsequenceNullDeref:
		return "null pointer dereference"
	case ConsequenceHTMLIntegrity:
		return "HTML integrity violation"
	case ConsequenceDoS:
		return "denial of service"
	case ConsequenceBufferOverflow:
		return "buffer overflow"
	default:
		return fmt.Sprintf("Consequence(%d)", int(c))
	}
}

// AttackSpec describes one known concurrency attack the model reproduces.
type AttackSpec struct {
	// ID names the attack like the paper does ("CVE-2016-1000324",
	// "Apache-25520", "Linux-2.6.10 uselib").
	ID string
	// VulnType is the Table-4 vulnerability-type string.
	VulnType string
	// SubtleInput is the Table-4 "subtle inputs" description.
	SubtleInput string
	// InputRecipe is the name of the workload input recipe that exploits
	// the attack.
	InputRecipe string
	// Consequence is what the oracle checks after a successful run.
	Consequence Consequence
	// SiteCallee / SiteFunc locate the vulnerable site for matching
	// Algorithm-1 findings: the callee name of a call site ("" for
	// non-call sites) and the containing function.
	SiteCallee string
	SiteFunc   string
	// RacyVar is the racing variable's memory name ("@dying").
	RacyVar string
	// CrossFunction records whether bug and site live in different
	// functions (study Finding II).
	CrossFunction bool
}

// Recipe is one named input configuration.
type Recipe struct {
	Name   string
	Inputs []int64
	// Note documents what the inputs mean.
	Note string
}

// Workload is one modelled program.
type Workload struct {
	// Name is the short registry key ("apache-log"); RealName the paper's
	// program/version ("Apache-2.0.48").
	Name     string
	RealName string
	Module   *ir.Module
	Entry    string
	// Kernel marks workloads detected with the SKI-style explorer rather
	// than the TSAN-style detector.
	Kernel   bool
	MaxSteps int
	Recipes  []Recipe
	Attacks  []AttackSpec
	// PaperRaceReports / PaperAttacks record the Table-1 numbers for
	// EXPERIMENTS.md comparisons.
	PaperRaceReports int
	PaperAttacks     int
	// PaperLoC is the studied program's size (Table 1).
	PaperLoC string
}

// Recipe returns the named input recipe (or the first one).
func (w *Workload) Recipe(name string) Recipe {
	for _, r := range w.Recipes {
		if r.Name == name {
			return r
		}
	}
	if len(w.Recipes) > 0 {
		return w.Recipes[0]
	}
	return Recipe{Name: "default"}
}

// registry holds the built-in workloads, constructed lazily because module
// building is non-trivial.
var builders = map[string]func(NoiseLevel) *Workload{}

// NoiseLevel scales how much benign-race noise a workload model carries.
// Tests use NoiseLight to stay fast; the table harness uses NoiseFull to
// approximate the paper's report-count shape (scaled ~1/10).
type NoiseLevel int

// Noise levels.
const (
	NoiseLight NoiseLevel = iota + 1
	NoiseFull
)

func register(name string, b func(NoiseLevel) *Workload) {
	builders[name] = b
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get builds the named workload at the given noise level; nil if unknown.
func Get(name string, lvl NoiseLevel) *Workload {
	b := builders[name]
	if b == nil {
		return nil
	}
	return b(lvl)
}

// All builds every registered workload.
func All(lvl NoiseLevel) []*Workload {
	var out []*Workload
	for _, n := range Names() {
		out = append(out, Get(n, lvl))
	}
	return out
}

// noiseSpec configures the benign-race generator.
type noiseSpec struct {
	// adhoc: busy-wait flag syncs (annotated away by §5.1).
	adhoc int
	// solid: verifiable benign counter races (survive to analysis, no
	// findings).
	solid int
	// flaky: index-collision races over a small array; the detector's
	// happens-before check flags them, but the racing moment re-collides
	// rarely, so the dynamic verifier eliminates most (Table 3's R.V.E.).
	flaky int
	// flakySpread is the array size K; larger K = more elimination.
	flakySpread int
	// gated: ordered-in-practice data publications behind a spin-wait
	// flag. Happens-before detectors see no edge through the plain
	// flag loads/stores and report the data race, but the racing moment
	// can never be produced (the reader cannot reach its access until the
	// writer has passed its own), so the dynamic race verifier eliminates
	// every one — the dominant population of the paper's R.V.E. column
	// (e.g. Memcached: 5372 of 5376 reports eliminated). The flag itself
	// is a textbook ad-hoc sync mined by §5.1.
	gated int
}

func (n noiseSpec) scale(lvl NoiseLevel, full noiseSpec) noiseSpec {
	if lvl == NoiseFull {
		return full
	}
	return n
}

// genNoise emits .oir source for the noise units plus a @noise_run
// function that main should call (it spawns the noise workers and a
// @noise_join(%h) to join them; handle is returned in a global).
func genNoise(spec noiseSpec) string {
	var b strings.Builder
	if spec.flakySpread <= 0 {
		spec.flakySpread = 16
	}
	total := spec.adhoc + spec.solid + spec.flaky + spec.gated
	fmt.Fprintf(&b, "global @noise_tids [%d]\n", maxInt(total, 1))

	for i := 0; i < spec.adhoc; i++ {
		fmt.Fprintf(&b, `
global @nz_adhoc_%[1]d = 0
func @nz_adhoc_worker_%[1]d() {
entry:
  jmp wait
wait:
  %%f = load @nz_adhoc_%[1]d
  %%c = icmp ne %%f, 0
  br %%c, go, wait
go:
  ret 0
}
`, i)
	}
	for i := 0; i < spec.solid; i++ {
		fmt.Fprintf(&b, `
global @nz_cnt_%[1]d = 0
func @nz_cnt_worker_%[1]d() {
entry:
  %%v = load @nz_cnt_%[1]d
  %%v2 = add %%v, 1
  store %%v2, @nz_cnt_%[1]d
  ret 0
}
`, i)
	}
	for i := 0; i < spec.flaky; i++ {
		fmt.Fprintf(&b, `
global @nz_flk_%[1]d [%[2]d]
func @nz_flk_worker_%[1]d() {
entry:
  %%i = call @rand(%[2]d)
  %%p = addr @nz_flk_%[1]d
  %%q = gep %%p, %%i
  store 1, %%q
  ret 0
}
`, i, spec.flakySpread)
	}

	// Gated units share one gate flag per group of gateGroup, so the
	// number of distinct ad-hoc synchronizations stays small (the paper
	// found 22 unique static ad-hoc syncs) while each unit contributes an
	// ordered-in-practice data race for the verifier to eliminate.
	const gateGroup = 8
	for g := 0; g < (spec.gated+gateGroup-1)/gateGroup; g++ {
		fmt.Fprintf(&b, "\nglobal @nz_ggate_%d = 0\n", g)
	}
	for i := 0; i < spec.gated; i++ {
		fmt.Fprintf(&b, `
global @nz_gdata_%[1]d = 0
func @nz_gated_worker_%[1]d() {
entry:
  jmp wait
wait:
  call @io_delay(7)
  %%g = load @nz_ggate_%[2]d
  %%c = icmp ne %%g, 0
  br %%c, go, wait
go:
  %%v = load @nz_gdata_%[1]d
  ret %%v
}
`, i, i/gateGroup)
	}

	// noise_run: spawn all workers, poke each unit from this thread (the
	// racing side), and record tids for noise_wait.
	b.WriteString("\nfunc @noise_run() {\nentry:\n")
	idx := 0
	spawnAndRecord := func(fn string) {
		fmt.Fprintf(&b, "  %%t%d = call @spawn(@%s)\n", idx, fn)
		fmt.Fprintf(&b, "  %%p%d = addr @noise_tids\n", idx)
		fmt.Fprintf(&b, "  %%q%d = gep %%p%d, %d\n", idx, idx, idx)
		fmt.Fprintf(&b, "  store %%t%d, %%q%d\n", idx, idx)
		idx++
	}
	for i := 0; i < spec.adhoc; i++ {
		spawnAndRecord(fmt.Sprintf("nz_adhoc_worker_%d", i))
	}
	for i := 0; i < spec.solid; i++ {
		spawnAndRecord(fmt.Sprintf("nz_cnt_worker_%d", i))
	}
	for i := 0; i < spec.flaky; i++ {
		spawnAndRecord(fmt.Sprintf("nz_flk_worker_%d", i))
	}
	for i := 0; i < spec.gated; i++ {
		spawnAndRecord(fmt.Sprintf("nz_gated_worker_%d", i))
	}
	// Racing main-side accesses. Each gated unit publishes its data, and
	// only after a group's publications does its gate open; every data
	// race is therefore ordered in practice.
	for i := 0; i < spec.gated; i++ {
		fmt.Fprintf(&b, "  %%gv%d = call @rand(100)\n", i)
		fmt.Fprintf(&b, "  store %%gv%d, @nz_gdata_%d\n", i, i)
		if (i+1)%gateGroup == 0 || i == spec.gated-1 {
			fmt.Fprintf(&b, "  store 1, @nz_ggate_%d\n", i/gateGroup)
		}
	}
	for i := 0; i < spec.solid; i++ {
		fmt.Fprintf(&b, "  %%mv%d = load @nz_cnt_%d\n", i, i)
		fmt.Fprintf(&b, "  %%mw%d = add %%mv%d, 1\n", i, i)
		fmt.Fprintf(&b, "  store %%mw%d, @nz_cnt_%d\n", i, i)
	}
	for i := 0; i < spec.flaky; i++ {
		fmt.Fprintf(&b, "  %%fi%d = call @rand(%d)\n", i, spec.flakySpread)
		fmt.Fprintf(&b, "  %%fp%d = addr @nz_flk_%d\n", i, i)
		fmt.Fprintf(&b, "  %%fq%d = gep %%fp%d, %%fi%d\n", i, i, i)
		fmt.Fprintf(&b, "  %%fv%d = load %%fq%d\n", i, i)
	}
	// Release the adhoc waiters last so they spin a little.
	for i := 0; i < spec.adhoc; i++ {
		fmt.Fprintf(&b, "  store 1, @nz_adhoc_%d\n", i)
	}
	b.WriteString("  ret 0\n}\n")

	// noise_wait: join every recorded tid.
	fmt.Fprintf(&b, `
func @noise_wait() {
entry:
  jmp head
head:
  %%i = phi [entry: 0], [body: %%i2]
  %%c = icmp lt %%i, %d
  br %%c, body, done
body:
  %%p = addr @noise_tids
  %%q = gep %%p, %%i
  %%t = load %%q
  %%r = call @join(%%t)
  %%i2 = add %%i, 1
  jmp head
done:
  ret 0
}
`, total)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// build parses the workload source (attack model + generated noise) into a
// frozen module, panicking on error: workload sources are static program
// data, so a parse failure is a bug.
func build(name, src string) *ir.Module {
	return ir.MustParse(name+".oir", src)
}
