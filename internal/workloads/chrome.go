package workloads

// chromeBody models the Chrome-6.0.472.58 use-after-free of Table 4
// ("Use after free / Js console.profile"): the DevTools profiler object is
// owned by the inspected page; a navigation destroys it while the
// profiling thread, started by the JavaScript console.profile() call, is
// still sampling through it. The model keeps the shape: the profiler is a
// heap object ([0] = sample-callback function pointer, [1] = sample
// count); navigation frees it behind a racy `profiling` flag check.
//
// Inputs:
//
//	input[0] = samples the profiler thread takes
//	input[1] = delay before navigation destroys the profiler
//	input[2] = per-sample IO delay (console.profile JS controls pacing)
const chromeBody = `
global @profiler_ptr = 0
global @profiling = 0
global @frames_rendered = 0
global @in_samples = 0
global @in_sample_delay = 0

func @sample_cb(%prof) {
entry:
  %cnt_addr = gep %prof, 1
  %cnt = load %cnt_addr
  %cnt2 = add %cnt, 1
  store %cnt2, %cnt_addr
  ret 0
}

func @profiler_thread() {
entry:
  %n = load @in_samples
  jmp head
head:
  %i = phi [entry: 0], [tick: %i2]
  %c = icmp lt %i, %n
  br %c, sample, done
sample:
  %on = load @profiling
  %oc = icmp ne %on, 0
  br %oc, take, done
take:
  %d = load @in_sample_delay
  call @io_delay(%d)
  %prof = load @profiler_ptr
  %pc = icmp ne %prof, 0
  br %pc, deref, done
deref:
  %d2 = load @in_sample_delay
  call @io_delay(%d2)
  %cb = load %prof
  %r = call %cb(%prof)
  jmp tick
tick:
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @navigate_away(%delay) {
entry:
  call @io_delay(%delay)
  store 0, @profiling
  %prof = load @profiler_ptr
  store 0, @profiler_ptr
  %c = icmp ne %prof, 0
  br %c, destroy, out
destroy:
  call @free(%prof)
  ret 0
out:
  ret 0
}

func @render_thread() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 4
  br %c, body, done
body:
  %f = load @frames_rendered
  %f2 = add %f, 1
  store %f2, @frames_rendered
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}

func @main() {
entry:
  %samples = call @input()
  %navdelay = call @input()
  %sampledelay = call @input()
  store %samples, @in_samples
  store %sampledelay, @in_sample_delay
  %nz = call @noise_run()

  %prof = call @malloc(2)
  %cb = func @sample_cb
  store %cb, %prof
  store %prof, @profiler_ptr
  store 1, @profiling

  %t1 = call @spawn(@profiler_thread)
  %t2 = call @spawn(@navigate_away, %navdelay)
  %t3 = call @spawn(@render_thread)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %r3 = call @join(%t3)
  %nw = call @noise_wait()
  ret 0
}
`

// newChrome builds the Chrome workload (console.profile UAF).
func newChrome(lvl NoiseLevel) *Workload {
	spec := noiseSpec{adhoc: 1, solid: 2, gated: 4, flaky: 2, flakySpread: 16}.
		scale(lvl, noiseSpec{adhoc: 1, solid: 12, gated: 70, flaky: 10, flakySpread: 24})
	src := chromeBody + genNoise(spec)
	return &Workload{
		Name:     "chrome",
		RealName: "Chrome-6.0.472.58",
		Module:   build("chrome", src),
		MaxSteps: 200000,
		Recipes: []Recipe{
			{Name: "benign", Inputs: []int64{2, 80, 0},
				Note: "short profile, navigation long after it finishes"},
			{Name: "attack", Inputs: []int64{6, 25, 2},
				Note: "Js console.profile paced to overlap the navigation teardown"},
		},
		Attacks: []AttackSpec{{
			ID:            "Chrome-consoleprofile",
			VulnType:      "Use after free",
			SubtleInput:   "Js console.profile",
			InputRecipe:   "attack",
			Consequence:   ConsequenceUseAfterFree,
			SiteCallee:    "",
			SiteFunc:      "profiler_thread",
			RacyVar:       "@profiler_ptr",
			CrossFunction: true,
		}},
		PaperRaceReports: 1715,
		PaperAttacks:     3,
		PaperLoC:         "3.4M",
	}
}

func init() { register("chrome", newChrome) }
