// Package metrics provides lightweight per-stage instrumentation for the
// OWL pipeline: wall-clock timers, busy-time (CPU) accumulators for worker
// pools, monotonic counters, and gauges, plus a deterministic JSON
// emitter. The paper's Table 3 reports analysis cost per program; this
// package generalizes that accounting to every stage of the pipeline so
// `-metrics` on the command line (or a Collector threaded through
// owl.Run / eval.BuildTables / study.Run) shows exactly where the time
// goes and how well a worker pool is utilized.
//
// All methods are safe for concurrent use and are no-ops on a nil
// *Collector, so call sites thread an optional collector without guards.
// That includes Snapshot/WriteJSON racing against recording: a live
// scrape (the serve layer's /metrics endpoint) may run while pipeline
// stages are still counting, and sees a consistent point-in-time view.
// Everything hangs off one short-critical-section mutex — the
// single-writer batch path pays one uncontended lock per record, which
// the detector-step benchmarks show is noise; TestCollectorConcurrentScrape
// is the -race regression gate for the scrape-while-recording contract.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// stage accumulates the timing of one named pipeline stage.
type stage struct {
	wall    time.Duration // accumulated wall-clock time across invocations
	busy    time.Duration // accumulated per-worker busy time (>= wall when parallel)
	count   int64         // invocations of the stage timer
	workers int           // largest worker-pool width observed
}

// Collector accumulates stage timings, counters, and gauges.
type Collector struct {
	mu       sync.Mutex
	stages   map[string]*stage
	counters map[string]int64
	gauges   map[string]float64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		stages:   make(map[string]*stage),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

func (c *Collector) stageFor(name string) *stage {
	s := c.stages[name]
	if s == nil {
		s = &stage{}
		c.stages[name] = s
	}
	return s
}

// Stage starts a wall-clock timer for the named stage and returns the
// function that stops it. Usage: defer c.Stage("detect")().
func (c *Collector) Stage(name string) func() {
	if c == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		c.mu.Lock()
		s := c.stageFor(name)
		s.wall += d
		s.count++
		c.mu.Unlock()
	}
}

// AddBusy records per-worker busy time for the named stage. Worker pools
// call it once per completed job; the ratio busy/(wall*workers) is the
// pool's utilization.
func (c *Collector) AddBusy(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stageFor(name).busy += d
	c.mu.Unlock()
}

// SetWorkers records the worker-pool width used for the named stage (the
// maximum observed width is kept).
func (c *Collector) SetWorkers(name string, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.stageFor(name)
	if n > s.workers {
		s.workers = n
	}
	c.mu.Unlock()
}

// Count adds n to the named counter.
func (c *Collector) Count(name string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += n
	c.mu.Unlock()
}

// Flag sets the named gauge to 1 or 0 — the idiom for boolean run facts
// (e.g. sched.early_stop) that should survive into the deterministic
// snapshot alongside the numeric gauges.
func (c *Collector) Flag(name string, v bool) {
	if v {
		c.Gauge(name, 1)
	} else {
		c.Gauge(name, 0)
	}
}

// Gauge sets the named gauge to v (last write wins).
func (c *Collector) Gauge(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Merge folds another collector's current state into c: stage wall/busy
// times and invocation counts add, pool widths take the max, counters
// add, and gauges take o's value (last write wins, matching Gauge). The
// analysis service uses this to fold each finished job's private
// collector into the live server collector that /metrics scrapes, so
// per-job accounting composes without sharing one collector across
// concurrently running pipelines. o is snapshotted first (under its own
// lock), so merging a collector that is still being written to is safe —
// the merge sees a consistent point-in-time view. Merging c into itself
// is not supported. Nil receiver or argument is a no-op.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	rep := o.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sr := range rep.Stages {
		s := c.stageFor(sr.Name)
		s.wall += sr.Wall
		s.busy += sr.Busy
		s.count += sr.Count
		if sr.Workers > s.workers {
			s.workers = sr.Workers
		}
	}
	for _, cr := range rep.Counters {
		c.counters[cr.Name] += cr.Value
	}
	for _, gr := range rep.Gauges {
		c.gauges[gr.Name] = gr.Value
	}
}

// StageReport is one stage's snapshot in a Report.
type StageReport struct {
	Name  string        `json:"name"`
	Wall  time.Duration `json:"wall_ns"`
	Busy  time.Duration `json:"busy_ns,omitempty"`
	Count int64         `json:"count"`
	// Workers is the pool width; 0 for sequential stages.
	Workers int `json:"workers,omitempty"`
	// Utilization is busy/(wall*workers), in [0,1]; 0 when not pooled.
	Utilization float64 `json:"utilization,omitempty"`
}

// CounterReport is one counter's snapshot.
type CounterReport struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeReport is one gauge's snapshot.
type GaugeReport struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Report is a point-in-time snapshot of a Collector, ordered by name so
// the JSON output is deterministic.
type Report struct {
	Stages   []StageReport   `json:"stages"`
	Counters []CounterReport `json:"counters"`
	Gauges   []GaugeReport   `json:"gauges"`
}

// Snapshot captures the collector's current state. Snapshot on a nil
// collector returns an empty report.
func (c *Collector) Snapshot() *Report {
	r := &Report{}
	if c == nil {
		return r
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, s := range c.stages {
		sr := StageReport{
			Name: name, Wall: s.wall, Busy: s.busy,
			Count: s.count, Workers: s.workers,
		}
		if s.workers > 0 && s.wall > 0 {
			sr.Utilization = float64(s.busy) / (float64(s.wall) * float64(s.workers))
			if sr.Utilization > 1 {
				sr.Utilization = 1
			}
		}
		r.Stages = append(r.Stages, sr)
	}
	for name, v := range c.counters {
		r.Counters = append(r.Counters, CounterReport{Name: name, Value: v})
	}
	for name, v := range c.gauges {
		r.Gauges = append(r.Gauges, GaugeReport{Name: name, Value: v})
	}
	sort.Slice(r.Stages, func(i, j int) bool { return r.Stages[i].Name < r.Stages[j].Name })
	sort.Slice(r.Counters, func(i, j int) bool { return r.Counters[i].Name < r.Counters[j].Name })
	sort.Slice(r.Gauges, func(i, j int) bool { return r.Gauges[i].Name < r.Gauges[j].Name })
	return r
}

// WriteJSON writes the indented JSON snapshot of the collector to w.
func (c *Collector) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encode: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

func (r *Report) String() string {
	data, _ := json.MarshalIndent(r, "", "  ")
	return string(data)
}
