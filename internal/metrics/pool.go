package metrics

import (
	"sync"
	"time"
)

// ForEach runs fn(i) for every i in [0,n) over a bounded pool of workers,
// recording per-job busy time and the pool width for the named stage in c
// (which may be nil). With workers <= 1 (or n <= 1) the jobs run inline on
// the calling goroutine, so a sequential pipeline stays goroutine-free.
// ForEach blocks until every job has finished; job order across workers is
// unspecified, so fn must write only to per-index state.
func ForEach(c *Collector, name string, n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		c.SetWorkers(name, 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			fn(i)
			c.AddBusy(name, time.Since(start))
		}
		return
	}
	c.SetWorkers(name, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				fn(i)
				c.AddBusy(name, time.Since(start))
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
