package metrics

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestCollectorConcurrentScrape is the -race regression gate for live
// scraping: Snapshot/WriteJSON must be safe while counters, gauges,
// stage timers, and pool busy-time are being recorded from many
// goroutines — the exact shape the serve layer's /metrics endpoint
// creates when it scrapes the server collector mid-pipeline.
func TestCollectorConcurrentScrape(t *testing.T) {
	c := New()
	const writers = 8
	const iters = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				done := c.Stage("scrape.stage")
				c.Count("scrape.counter", 1)
				c.Gauge("scrape.gauge", float64(i))
				c.Flag("scrape.flag", i%2 == 0)
				c.AddBusy("scrape.stage", time.Microsecond)
				c.SetWorkers("scrape.stage", w+1)
				done()
			}
		}(w)
	}

	// Scrapers: repeated snapshots and JSON emission while writers run.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := c.Snapshot()
				// The writers record scrape.counter and the concurrent
				// merger folds in scrape.merged; anything else is a
				// collector bug surfacing mid-scrape.
				for _, cr := range rep.Counters {
					if cr.Name != "scrape.counter" && cr.Name != "scrape.merged" {
						t.Errorf("unexpected counter %q in scrape", cr.Name)
						return
					}
				}
				if err := c.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON during recording: %v", err)
					return
				}
			}
		}()
	}

	// A merger folding job-local collectors in while scrapes run, the
	// serve layer's end-of-job path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			jc := New()
			jc.Count("scrape.merged", 2)
			jc.Stage("scrape.mergedstage")()
			c.Merge(jc)
		}
	}()

	// Writers + merger finish first, then release the scrapers.
	waitWriters := make(chan struct{})
	go func() {
		defer close(waitWriters)
		wg.Wait()
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-waitWriters

	rep := c.Snapshot()
	var total int64
	for _, cr := range rep.Counters {
		switch cr.Name {
		case "scrape.counter":
			total = cr.Value
		case "scrape.merged":
			if cr.Value != 100 {
				t.Errorf("merged counter = %d, want 100", cr.Value)
			}
		}
	}
	if total != writers*iters {
		t.Errorf("counter = %d, want %d (lost updates)", total, writers*iters)
	}
}

// TestCollectorMerge pins the fold semantics: stages add (workers max),
// counters add, gauges last-write-win, and nil endpoints are no-ops.
func TestCollectorMerge(t *testing.T) {
	a, b := New(), New()
	a.Count("jobs", 3)
	a.Gauge("depth", 1)
	aDone := a.Stage("detect")
	time.Sleep(time.Millisecond)
	aDone()
	a.SetWorkers("detect", 2)
	a.AddBusy("detect", 5*time.Millisecond)

	b.Count("jobs", 4)
	b.Count("extra", 1)
	b.Gauge("depth", 9)
	bDone := b.Stage("detect")
	time.Sleep(time.Millisecond)
	bDone()
	b.SetWorkers("detect", 8)
	b.AddBusy("detect", 7*time.Millisecond)

	a.Merge(b)
	rep := a.Snapshot()
	counters := map[string]int64{}
	for _, c := range rep.Counters {
		counters[c.Name] = c.Value
	}
	if counters["jobs"] != 7 || counters["extra"] != 1 {
		t.Errorf("counters = %v, want jobs=7 extra=1", counters)
	}
	for _, g := range rep.Gauges {
		if g.Name == "depth" && g.Value != 9 {
			t.Errorf("gauge depth = %v, want 9 (last write wins)", g.Value)
		}
	}
	if len(rep.Stages) != 1 {
		t.Fatalf("stages = %+v, want one merged stage", rep.Stages)
	}
	st := rep.Stages[0]
	if st.Count != 2 {
		t.Errorf("stage count = %d, want 2", st.Count)
	}
	if st.Workers != 8 {
		t.Errorf("stage workers = %d, want max(2,8)", st.Workers)
	}
	if st.Busy < 12*time.Millisecond {
		t.Errorf("stage busy = %v, want >= 12ms (sums)", st.Busy)
	}

	// Nil safety both ways.
	var nilC *Collector
	nilC.Merge(a)
	a.Merge(nil)
}
