package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageTimerAccumulates(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		stop := c.Stage("detect")
		time.Sleep(time.Millisecond)
		stop()
	}
	rep := c.Snapshot()
	if len(rep.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(rep.Stages))
	}
	s := rep.Stages[0]
	if s.Name != "detect" || s.Count != 3 {
		t.Errorf("stage = %+v, want name=detect count=3", s)
	}
	if s.Wall < 3*time.Millisecond {
		t.Errorf("wall = %v, want >= 3ms", s.Wall)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := New()
	c.Count("reports", 5)
	c.Count("reports", 2)
	c.Gauge("workers", 4)
	c.Gauge("workers", 8) // last write wins
	rep := c.Snapshot()
	if len(rep.Counters) != 1 || rep.Counters[0].Value != 7 {
		t.Errorf("counters = %+v, want reports=7", rep.Counters)
	}
	if len(rep.Gauges) != 1 || rep.Gauges[0].Value != 8 {
		t.Errorf("gauges = %+v, want workers=8", rep.Gauges)
	}
}

func TestFlagIsABinaryGauge(t *testing.T) {
	c := New()
	c.Flag("sched.early_stop", true)
	rep := c.Snapshot()
	if len(rep.Gauges) != 1 || rep.Gauges[0].Value != 1 {
		t.Errorf("gauges = %+v, want early_stop=1", rep.Gauges)
	}
	c.Flag("sched.early_stop", false) // last write wins, like Gauge
	rep = c.Snapshot()
	if rep.Gauges[0].Value != 0 {
		t.Errorf("gauges = %+v, want early_stop=0", rep.Gauges)
	}
	var nilC *Collector
	nilC.Flag("x", true) // nil-safe like the rest of the collector
}

func TestUtilizationFromBusyTime(t *testing.T) {
	c := New()
	stop := c.Stage("pool")
	time.Sleep(2 * time.Millisecond)
	stop()
	c.SetWorkers("pool", 2)
	rep := c.Snapshot()
	wall := rep.Stages[0].Wall
	c.AddBusy("pool", wall) // one of two workers fully busy
	rep = c.Snapshot()
	u := rep.Stages[0].Utilization
	if u < 0.4 || u > 0.6 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Stage("x")()
	c.AddBusy("x", time.Second)
	c.SetWorkers("x", 4)
	c.Count("x", 1)
	c.Gauge("x", 1)
	if rep := c.Snapshot(); len(rep.Stages) != 0 {
		t.Errorf("nil snapshot not empty: %+v", rep)
	}
	ForEach(c, "x", 4, 2, func(int) {})
}

func TestConcurrentUse(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Stage("s")()
				c.Count("n", 1)
				c.AddBusy("s", time.Microsecond)
				c.Gauge("g", float64(j))
			}
		}()
	}
	wg.Wait()
	rep := c.Snapshot()
	if rep.Stages[0].Count != 800 {
		t.Errorf("count = %d, want 800", rep.Stages[0].Count)
	}
	if rep.Counters[0].Value != 800 {
		t.Errorf("counter = %d, want 800", rep.Counters[0].Value)
	}
}

func TestJSONEmitterDeterministicOrder(t *testing.T) {
	c := New()
	c.Count("zeta", 1)
	c.Count("alpha", 2)
	c.Stage("b")()
	c.Stage("a")()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if rep.Counters[0].Name != "alpha" || rep.Counters[1].Name != "zeta" {
		t.Errorf("counters not sorted: %+v", rep.Counters)
	}
	if rep.Stages[0].Name != "a" || rep.Stages[1].Name != "b" {
		t.Errorf("stages not sorted: %+v", rep.Stages)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("emitter should end with a newline")
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		c := New()
		hits := make([]int, 50)
		ForEach(c, "pool", len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
		rep := c.Snapshot()
		if len(rep.Stages) != 1 || rep.Stages[0].Busy <= 0 {
			t.Errorf("workers=%d: busy time not recorded: %+v", workers, rep.Stages)
		}
	}
	// n = 0 must be a no-op.
	ForEach(New(), "empty", 0, 4, func(int) { t.Fatal("fn called for n=0") })
}
