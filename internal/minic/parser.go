package minic

import (
	"fmt"
)

// parser is a recursive-descent parser with precedence climbing for
// expressions.
type parser struct {
	file string
	toks []token
	pos  int
}

type parseError struct {
	File string
	Line int
	Msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &parseError{File: p.file, Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.Kind == tokPunct || t.Kind == tokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, int, error) {
	t := p.cur()
	if t.Kind != tokIdent {
		return "", 0, p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, t.Line, nil
}

// parse parses the whole file.
func (p *parser) parse() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != tokEOF {
		switch {
		case p.is("int") || p.is("void"):
			isVoid := p.cur().Text == "void"
			p.pos++
			name, line, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.is("(") {
				fn, err := p.funcRest(name, line, isVoid)
				if err != nil {
					return nil, err
				}
				f.Funcs = append(f.Funcs, fn)
				continue
			}
			if isVoid {
				return nil, p.errf("void is only valid for functions")
			}
			g, err := p.globalRest(name, line)
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case p.is("string"):
			p.pos++
			name, line, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			t := p.cur()
			if t.Kind != tokString {
				return nil, p.errf("string global needs a string literal")
			}
			p.pos++
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, &GlobalDecl{
				Name: name, StrInit: t.Text, IsStr: true, Line: line,
			})
		default:
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
	}
	return f, nil
}

// globalRest parses the remainder of `int name ...;`.
func (p *parser) globalRest(name string, line int) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name, Size: 1, Line: line}
	switch {
	case p.accept("["):
		t := p.cur()
		if t.Kind != tokNum || t.Num <= 0 {
			return nil, p.errf("array size must be a positive integer")
		}
		p.pos++
		g.Size = int(t.Num)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	case p.accept("="):
		neg := p.accept("-")
		t := p.cur()
		if t.Kind != tokNum {
			return nil, p.errf("global initializer must be an integer literal")
		}
		p.pos++
		g.Init = t.Num
		if neg {
			g.Init = -g.Init
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

// funcRest parses the remainder of `int|void name(...) { ... }`.
func (p *parser) funcRest(name string, line int, isVoid bool) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, ReturnsVoid: isVoid, Line: line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.is(")") {
		if len(fn.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if err := p.expect("int"); err != nil {
			return nil, err
		}
		pn, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, pn)
	}
	p.pos++ // ")"
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	line := p.cur().Line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: line}
	for !p.is("}") {
		if p.cur().Kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // "}"
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.is("{"):
		return p.block()
	case p.is("int"):
		p.pos++
		name, line, err := p.ident()
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name, Line: line}
		switch {
		case p.accept("["):
			t := p.cur()
			if t.Kind != tokNum || t.Num <= 0 {
				return nil, p.errf("local array size must be a positive integer")
			}
			p.pos++
			d.Size = int(t.Num)
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		case p.accept("="):
			d.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return d, p.expect(";")
	case p.is("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Line: t.Line}
		if p.accept("else") {
			if p.is("if") {
				s.Else, err = p.stmt()
			} else {
				s.Else, err = p.block()
			}
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.is("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case p.is("return"):
		p.pos++
		s := &ReturnStmt{Line: t.Line}
		if !p.is(";") {
			var err error
			s.Value, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expect(";")
	case p.is("break"):
		p.pos++
		return &BreakStmt{Line: t.Line}, p.expect(";")
	case p.is("continue"):
		p.pos++
		return &ContinueStmt{Line: t.Line}, p.expect(";")
	default:
		// Assignment or expression statement. Parse an expression; if "="
		// follows, the expression must be an lvalue.
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept("=") {
			if !isLvalue(x) {
				return nil, p.errf("left side of assignment is not assignable")
			}
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{LHS: x, RHS: rhs, Line: t.Line}, p.expect(";")
		}
		return &ExprStmt{X: x, Line: t.Line}, p.expect(";")
	}
}

func isLvalue(x Expr) bool {
	switch v := x.(type) {
	case *Ident:
		return true
	case *Index:
		return true
	case *Unary:
		return v.Op == "*"
	default:
		return false
	}
}

// binary operator precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == tokPunct {
		switch t.Text {
		case "-", "!", "*":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
		case "&":
			p.pos++
			name, line, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: "&", X: &Ident{Name: name, Line: line}, Line: t.Line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == tokNum:
		p.pos++
		return &NumLit{Value: t.Num, Line: t.Line}, nil
	case t.Kind == tokString:
		p.pos++
		return &StrLit{Value: t.Text, Line: t.Line}, nil
	case p.is("spawn"):
		p.pos++
		name, line, err := p.ident()
		if err != nil {
			return nil, err
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &Spawn{Name: name, Args: args, Line: line}, nil
	case p.is("("):
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	case t.Kind == tokIdent:
		p.pos++
		id := &Ident{Name: t.Text, Line: t.Line}
		switch {
		case p.is("("):
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &Call{Name: id.Name, Args: args, Line: id.Line}, nil
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &Index{Base: id, Idx: idx, Line: id.Line}, nil
		default:
			return id, nil
		}
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}

func (p *parser) args() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.is(")") {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.pos++ // ")"
	return args, nil
}
