package minic

// The AST. Nodes carry the source line for diagnostics and for IR
// positions (so OWL reports on minic programs point at minic lines).

// File is a parsed compilation unit.
type File struct {
	Name    string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar, array, or string.
type GlobalDecl struct {
	Name string
	// Size > 1 for arrays.
	Size int
	// Init for scalars; StrInit for string globals.
	Init    int64
	StrInit string
	IsStr   bool
	Line    int
}

// FuncDecl declares a function. ReturnsVoid is cosmetic (everything is a
// word); it suppresses the "missing return" check.
type FuncDecl struct {
	Name        string
	Params      []string
	Body        *BlockStmt
	ReturnsVoid bool
	Line        int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// VarDecl declares a local: int x; int x = expr; or int buf[N];
type VarDecl struct {
	Name string
	Init Expr // nil when absent
	// Size > 0 declares a local array of Size words (no initializer).
	Size int
	Line int
}

// AssignStmt is lvalue = expr;
type AssignStmt struct {
	LHS  Expr // Ident, Index, or Deref
	RHS  Expr
	Line int
}

// IfStmt is if (cond) block [else block|if].
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Line int
}

// WhileStmt is while (cond) block.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ReturnStmt is return [expr];
type ReturnStmt struct {
	Value Expr // nil for bare return
	Line  int
}

// BreakStmt / ContinueStmt control the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the loop head.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is an integer literal.
type NumLit struct {
	Value int64
	Line  int
}

// StrLit is a string literal (call arguments only).
type StrLit struct {
	Value string
	Line  int
}

// Ident references a local, parameter, or global.
type Ident struct {
	Name string
	Line int
}

// Index is base[idx]: base names a global array or a pointer variable.
type Index struct {
	Base *Ident
	Idx  Expr
	Line int
}

// Unary is -x, !x, *p, or &x.
type Unary struct {
	Op   string // "-", "!", "*", "&"
	X    Expr
	Line int
}

// Binary is x op y. && and || short-circuit.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Call is f(args) — a module function or a runtime intrinsic.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Spawn is spawn f(args), returning the new thread id.
type Spawn struct {
	Name string
	Args []Expr
	Line int
}

func (*NumLit) exprNode() {}
func (*StrLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Index) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Call) exprNode()   {}
func (*Spawn) exprNode()  {}
