// Package minic is a compiler front end for a small concurrent C-like
// language targeting OWL IR — the "Source Code → clang → LLVM" edge of the
// paper's Figure 3. It exists so workloads and user programs can be
// written the way the studied C code reads:
//
//	int dying = 0;
//
//	int stack_check(int dst) {
//	    if (dying != 0) { return 0; }
//	    return 1;
//	}
//
//	void main() {
//	    int t = spawn attacker();
//	    ...
//	    join(t);
//	}
//
// The language has int-typed values (64-bit words, like the IR), global
// scalars/arrays/strings, functions, locals (compiled to alloca slots,
// clang -O0 style), pointers (&x, *p, p[i]), if/else, while with
// break/continue, short-circuit && and ||, and direct calls to the
// runtime intrinsics (spawn/join/mutex_lock/strcpy/...). String literals
// are allowed as call arguments and global initializers.
package minic

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNum
	tokString
	tokPunct // operators and punctuation, Text holds the spelling
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "void": true, "string": true,
	"if": true, "else": true, "while": true,
	"return": true, "break": true, "continue": true,
	"spawn": true,
}

// token is one lexeme.
type token struct {
	Kind tokKind
	Text string
	Num  int64
	Line int
}

func (t token) String() string {
	switch t.Kind {
	case tokEOF:
		return "end of file"
	case tokNum:
		return fmt.Sprintf("%d", t.Num)
	case tokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// punctuation, longest first so the lexer can match greedily.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";",
}

type lexError struct {
	File string
	Line int
	Msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// lex tokenizes src. Comments: // to end of line, /* ... */.
func lex(file, src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	errf := func(format string, args ...interface{}) error {
		return &lexError{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, errf("unterminated block comment")
			}
			i += 2
		case c >= '0' && c <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			var v int64
			for _, d := range src[start:i] {
				v = v*10 + int64(d-'0')
			}
			toks = append(toks, token{Kind: tokNum, Num: v, Line: line, Text: src[start:i]})
		case c == '"':
			i++
			var b strings.Builder
			for i < n && src[i] != '"' {
				ch := src[i]
				if ch == '\n' {
					return nil, errf("newline in string literal")
				}
				if ch == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						ch = '\n'
					case 't':
						ch = '\t'
					case '\\':
						ch = '\\'
					case '"':
						ch = '"'
					default:
						return nil, errf("unknown escape \\%c", src[i])
					}
				}
				b.WriteByte(ch)
				i++
			}
			if i >= n {
				return nil, errf("unterminated string literal")
			}
			i++
			toks = append(toks, token{Kind: tokString, Text: b.String(), Line: line})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{Kind: kind, Text: word, Line: line})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{Kind: tokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf("unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{Kind: tokEOF, Line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
