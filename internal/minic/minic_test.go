package minic

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
)

// runMC compiles and executes a minic program, returning the result.
func runMC(t *testing.T, src string, inputs ...int64) *interp.Result {
	t.Helper()
	mod, err := Compile("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := interp.New(interp.Config{
		Module: mod, Sched: sched.NewRoundRobin(1), Inputs: inputs, MaxSteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func wantOutput(t *testing.T, res *interp.Result, want ...string) {
	t.Helper()
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v", res.Faults)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", res.Output, want)
		}
	}
}

func TestArithmeticAndLocals(t *testing.T) {
	res := runMC(t, `
void main() {
    int a = 6;
    int b = a * 7;
    b = b + 1 - 1;
    print(b);
    print(-b);
    print(b % 5);
    print(b / 6);
    print(1 << 4);
    print(255 >> 4);
    print(6 & 3);
    print(6 | 3);
    print(6 ^ 3);
}
`)
	wantOutput(t, res, "42", "-42", "2", "7", "16", "15", "2", "7", "5")
}

func TestControlFlow(t *testing.T) {
	res := runMC(t, `
void main() {
    int i = 0;
    int sum = 0;
    while (i < 10) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i > 8) { break; }
        sum = sum + i;
    }
    print(sum);
    if (sum > 100) { print(1); } else { print(0); }
}
`)
	// 1+2+4+5+6+7+8 = 33
	wantOutput(t, res, "33", "0")
}

func TestGlobalsArraysPointers(t *testing.T) {
	res := runMC(t, `
int counter = 5;
int table[4];

void main() {
    counter = counter + 1;
    print(counter);
    int i = 0;
    while (i < 4) {
        table[i] = i * i;
        i = i + 1;
    }
    print(table[3]);
    int p = &counter;
    *p = 99;
    print(counter);
    int q = table;
    print(q[2]);
}
`)
	wantOutput(t, res, "6", "9", "99", "4")
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := runMC(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    print(fib(10));
}
`)
	wantOutput(t, res, "55")
}

func TestShortCircuit(t *testing.T) {
	res := runMC(t, `
int calls = 0;

int bump() {
    calls = calls + 1;
    return 1;
}
void main() {
    if (0 && bump()) { print(777); }
    print(calls);
    if (1 || bump()) { print(1); }
    print(calls);
    if (1 && bump()) { print(2); }
    print(calls);
}
`)
	wantOutput(t, res, "0", "1", "0", "2", "1")
}

func TestThreadsAndIntrinsics(t *testing.T) {
	res := runMC(t, `
int total = 0;
int mu = 0;

void worker(int n) {
    mutex_lock(&mu);
    total = total + n;
    mutex_unlock(&mu);
}
void main() {
    int t1 = spawn worker(10);
    int t2 = spawn worker(20);
    join(t1);
    join(t2);
    print(total);
}
`)
	wantOutput(t, res, "30")
}

func TestStringsAndInput(t *testing.T) {
	res := runMC(t, `
string greeting = "hi there";

void main() {
    print_str(greeting);
    print_str("inline literal");
    print(strlen(greeting));
    int a = input();
    int b = input();
    print(a + b);
}
`, 30, 12)
	wantOutput(t, res, "hi there", "inline literal", "8", "42")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", "void main() { x = 1; }", "undeclared"},
		{"undeclared call", "void main() { frob(); }", "undeclared function"},
		{"dup local", "void main() { int a; int a; }", "redeclared"},
		{"dup global", "int g; int g;", "redeclared"},
		{"break outside", "void main() { break; }", "outside a loop"},
		{"bad lvalue", "void main() { 3 = 4; }", "not assignable"},
		{"void global", "void g;", "only valid for functions"},
		{"lex", "void main() { int a = 1 $ 2; }", "unexpected character"},
		{"unterminated string", "string s = \"abc", "unterminated string"},
		{"spawn unknown", "void main() { int t = spawn nope(); }", "undeclared"},
		{"array assign", "int a[4];\nvoid main() { a = 3; }", "whole array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("e.mc", c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestPositionsPointAtSource(t *testing.T) {
	mod, err := Compile("pos.mc", `int g = 0;

void main() {
    g = 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range mod.Func("main").Instrs() {
		if in.Op != 0 && in.Pos.File == "pos.mc" && in.Pos.Line == 4 {
			found = true
		}
	}
	if !found {
		t.Error("no instruction carries the minic source position")
	}
}

// TestPipelineOnMinicProgram: the whole point — write the Figure-1 pattern
// in minic, and OWL finds the attack, reporting against minic lines. The
// corrupted value passes through a local slot (`int d = dying;`), which
// exercises the analyzer's taint-through-locals support.
func TestPipelineOnMinicProgram(t *testing.T) {
	src := `int dying = 0;
string payload = "AAAAAAAAAAAAAAAA";

int stack_check(int dst) {
    int d = dying;
    if (d != 0) { return 0; }
    return 1;
}

int guarded_copy(int dst, int src) {
    int ok = stack_check(dst);
    if (ok == 0) {
        return strcpy(dst, src);
    }
    if (strlen(src) < 8) {
        return strcpy(dst, src);
    }
    return 0;
}

void attacker() {
    io_delay(3);
    dying = 1;
}

void main() {
    int t = spawn attacker();
    io_delay(3);
    int buf = malloc(8);
    guarded_copy(buf, payload);
    join(t);
}
`
	mod, err := Compile("libsafe.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := owl.Run(owl.Program{Module: mod, MaxSteps: 100000},
		owl.Options{DetectRuns: 16})
	if err != nil {
		t.Fatal(err)
	}
	var hit *vuln.Finding
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if f.Site.IsCall() && f.Site.Callee().Name == "strcpy" &&
				f.Dep == vuln.DepCtrl && f.Site.Pos.Line == 13 {
				hit = f
			}
		}
	}
	if hit == nil {
		t.Fatalf("the unchecked strcpy (libsafe.mc:13) was not flagged; stats: %+v", res.Stats)
	}
	if hit.Site.Pos.File != "libsafe.mc" {
		t.Errorf("finding reported against %s, want libsafe.mc", hit.Site.Pos.File)
	}
	confirmed := false
	for _, atk := range res.Attacks {
		if atk.Finding == hit {
			confirmed = true
		}
	}
	if !confirmed {
		t.Error("minic attack not dynamically confirmed")
	}
}

func TestLocalArrays(t *testing.T) {
	res := runMC(t, `
void main() {
    int buf[4];
    int i = 0;
    while (i < 4) {
        buf[i] = i * 10;
        i = i + 1;
    }
    print(buf[0] + buf[3]);
    int p = buf;
    print(p[2]);
    memset(buf, 7, 4);
    print(buf[1]);
}
`)
	wantOutput(t, res, "30", "20", "7")
}

func TestLocalArrayBoundsFault(t *testing.T) {
	mod, err := Compile("oob.mc", `
void main() {
    int buf[2];
    buf[5] = 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.New(interp.Config{Module: mod, Sched: sched.NewRoundRobin(1), MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Faults) != 1 || res.Faults[0].Kind != interp.FaultOOB {
		t.Errorf("faults = %v, want OOB", res.Faults)
	}
}

func TestLocalArrayAssignWholeRejected(t *testing.T) {
	_, err := Compile("e.mc", "void main() { int a[2]; a = 3; }")
	if err == nil || !strings.Contains(err.Error(), "whole array") {
		t.Errorf("err = %v", err)
	}
}
