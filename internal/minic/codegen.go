package minic

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
)

// Compile compiles minic source to a frozen OWL IR module. Instruction
// positions point at the minic source lines, so the whole OWL pipeline —
// race reports, Figure-5 hints, verification outcomes — reports against
// the program the user wrote.
func Compile(filename, src string) (*ir.Module, error) {
	toks, err := lex(filename, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: filename, toks: toks}
	file, err := p.parse()
	if err != nil {
		return nil, err
	}
	return (&codegen{file: file, src: filename}).gen()
}

// MustCompile is Compile but panics on error (static test programs).
func MustCompile(filename, src string) *ir.Module {
	m, err := Compile(filename, src)
	if err != nil {
		panic(fmt.Sprintf("minic: %v", err))
	}
	return m
}

type genError struct {
	File string
	Line int
	Msg  string
}

func (e *genError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type codegen struct {
	file *File
	src  string
	b    *ir.Builder

	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	// per-function state
	fb         *ir.FuncBuilder
	locals     map[string]localInfo // name -> alloca slot
	params     map[string]bool
	terminated bool
	blockSeq   int
	loopStack  []loopLabels
}

type loopLabels struct{ head, end string }

// localInfo describes one local: the alloca operand, and whether it is an
// array (referenced by address, like C array decay) or a scalar slot
// (referenced by load).
type localInfo struct {
	slot    ir.Operand
	isArray bool
}

func (g *codegen) errf(line int, format string, args ...interface{}) error {
	return &genError{File: g.src, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) gen() (*ir.Module, error) {
	g.b = ir.NewBuilder(moduleName(g.src))
	g.globals = make(map[string]*GlobalDecl)
	g.funcs = make(map[string]*FuncDecl)

	for _, gd := range g.file.Globals {
		if g.globals[gd.Name] != nil {
			return nil, g.errf(gd.Line, "global %q redeclared", gd.Name)
		}
		g.globals[gd.Name] = gd
		if gd.IsStr {
			g.b.GlobalWords(gd.Name, ir.StringToWords(gd.StrInit))
		} else {
			g.b.Global(gd.Name, gd.Size, gd.Init)
		}
	}
	for _, fd := range g.file.Funcs {
		if g.funcs[fd.Name] != nil {
			return nil, g.errf(fd.Line, "function %q redeclared", fd.Name)
		}
		if g.globals[fd.Name] != nil {
			return nil, g.errf(fd.Line, "%q already declared as a global", fd.Name)
		}
		g.funcs[fd.Name] = fd
	}
	for _, fd := range g.file.Funcs {
		if err := g.genFunc(fd); err != nil {
			return nil, err
		}
	}
	mod, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("minic: internal codegen error: %w", err)
	}
	return mod, nil
}

func moduleName(src string) string {
	name := src
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			name = name[i+1:]
			break
		}
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

func (g *codegen) at(line int) { g.b.SetPos(g.src, line) }

func (g *codegen) newBlock(prefix string) string {
	g.blockSeq++
	return fmt.Sprintf("%s.%d", prefix, g.blockSeq)
}

// startBlock switches emission to a (new) block and clears terminated.
func (g *codegen) startBlock(name string) {
	g.fb.Block(name)
	g.terminated = false
}

func (g *codegen) genFunc(fd *FuncDecl) error {
	g.fb = g.b.Func(fd.Name, fd.Params...)
	g.locals = make(map[string]localInfo)
	g.params = make(map[string]bool)
	g.terminated = false
	g.loopStack = nil
	g.startBlock("entry")
	g.at(fd.Line)

	// Parameters become mutable slots (clang -O0 style) so they behave
	// like locals under assignment.
	for _, pn := range fd.Params {
		if _, dup := g.locals[pn]; dup {
			return g.errf(fd.Line, "parameter %q repeated", pn)
		}
		slot := g.fb.Alloca(1)
		g.fb.Store(ir.RegOp(pn), slot)
		g.locals[pn] = localInfo{slot: slot}
		g.params[pn] = true
	}

	if err := g.genBlock(fd.Body); err != nil {
		return err
	}
	if !g.terminated {
		g.at(fd.Line)
		g.fb.Ret(ir.ConstOp(0))
		g.terminated = true
	}
	return nil
}

func (g *codegen) genBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if g.terminated {
			// Unreachable code after return/break: give it its own block
			// so the IR stays well formed.
			g.startBlock(g.newBlock("dead"))
		}
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return g.genBlock(st)

	case *VarDecl:
		g.at(st.Line)
		if _, dup := g.locals[st.Name]; dup {
			return g.errf(st.Line, "local %q redeclared", st.Name)
		}
		size := int64(1)
		if st.Size > 0 {
			size = int64(st.Size)
		}
		slot := g.fb.Alloca(size)
		g.locals[st.Name] = localInfo{slot: slot, isArray: st.Size > 0}
		if st.Init != nil {
			v, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			g.at(st.Line)
			g.fb.Store(v, slot)
		}
		return nil

	case *AssignStmt:
		v, err := g.genExpr(st.RHS)
		if err != nil {
			return err
		}
		return g.genStore(st.LHS, v, st.Line)

	case *IfStmt:
		cond, err := g.genExpr(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.newBlock("if.then")
		elseB := g.newBlock("if.else")
		endB := g.newBlock("if.end")
		g.at(st.Line)
		if st.Else != nil {
			g.fb.Br(cond, thenB, elseB)
		} else {
			g.fb.Br(cond, thenB, endB)
		}
		g.startBlock(thenB)
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		thenDone := g.terminated
		if !thenDone {
			g.at(st.Line)
			g.fb.Jmp(endB)
		}
		elseDone := true
		if st.Else != nil {
			g.startBlock(elseB)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
			elseDone = g.terminated
			if !elseDone {
				g.at(st.Line)
				g.fb.Jmp(endB)
			}
		} else {
			elseDone = false
		}
		if thenDone && elseDone {
			// Both arms left; the end block is never entered, but later
			// statements still need somewhere well-formed to land.
			g.startBlock(endB)
			g.terminated = false
			return nil
		}
		g.startBlock(endB)
		return nil

	case *WhileStmt:
		headB := g.newBlock("while.head")
		bodyB := g.newBlock("while.body")
		endB := g.newBlock("while.end")
		g.at(st.Line)
		g.fb.Jmp(headB)
		g.startBlock(headB)
		cond, err := g.genExpr(st.Cond)
		if err != nil {
			return err
		}
		g.at(st.Line)
		g.fb.Br(cond, bodyB, endB)
		g.startBlock(bodyB)
		g.loopStack = append(g.loopStack, loopLabels{head: headB, end: endB})
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.loopStack = g.loopStack[:len(g.loopStack)-1]
		if !g.terminated {
			g.at(st.Line)
			g.fb.Jmp(headB)
		}
		g.startBlock(endB)
		return nil

	case *ReturnStmt:
		val := ir.ConstOp(0)
		if st.Value != nil {
			v, err := g.genExpr(st.Value)
			if err != nil {
				return err
			}
			val = v
		}
		g.at(st.Line)
		g.fb.Ret(val)
		g.terminated = true
		return nil

	case *BreakStmt:
		if len(g.loopStack) == 0 {
			return g.errf(st.Line, "break outside a loop")
		}
		g.at(st.Line)
		g.fb.Jmp(g.loopStack[len(g.loopStack)-1].end)
		g.terminated = true
		return nil

	case *ContinueStmt:
		if len(g.loopStack) == 0 {
			return g.errf(st.Line, "continue outside a loop")
		}
		g.at(st.Line)
		g.fb.Jmp(g.loopStack[len(g.loopStack)-1].head)
		g.terminated = true
		return nil

	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err

	default:
		return g.errf(0, "unknown statement %T", s)
	}
}

// genStore assigns v to the lvalue.
func (g *codegen) genStore(lhs Expr, v ir.Operand, line int) error {
	switch lv := lhs.(type) {
	case *Ident:
		if li, ok := g.locals[lv.Name]; ok {
			if li.isArray {
				return g.errf(line, "cannot assign whole array %q", lv.Name)
			}
			g.at(line)
			g.fb.Store(v, li.slot)
			return nil
		}
		if gd, ok := g.globals[lv.Name]; ok {
			if gd.Size > 1 || gd.IsStr {
				return g.errf(line, "cannot assign whole array %q", lv.Name)
			}
			g.at(line)
			g.fb.Store(v, ir.GlobalOp(lv.Name))
			return nil
		}
		return g.errf(line, "assignment to undeclared %q", lv.Name)
	case *Index:
		addr, err := g.genElemAddr(lv)
		if err != nil {
			return err
		}
		g.at(line)
		g.fb.Store(v, addr)
		return nil
	case *Unary:
		if lv.Op != "*" {
			return g.errf(line, "cannot assign to %s-expression", lv.Op)
		}
		addr, err := g.genExpr(lv.X)
		if err != nil {
			return err
		}
		g.at(line)
		g.fb.Store(v, addr)
		return nil
	default:
		return g.errf(line, "not an lvalue")
	}
}

// genElemAddr computes &base[idx].
func (g *codegen) genElemAddr(ix *Index) (ir.Operand, error) {
	base, err := g.genBase(ix.Base)
	if err != nil {
		return ir.Operand{}, err
	}
	idx, err := g.genExpr(ix.Idx)
	if err != nil {
		return ir.Operand{}, err
	}
	g.at(ix.Line)
	return g.fb.Gep(base, idx), nil
}

// genBase resolves an identifier used as a pointer base: global arrays
// decay to their address, everything else evaluates to its (pointer)
// value.
func (g *codegen) genBase(id *Ident) (ir.Operand, error) {
	if li, ok := g.locals[id.Name]; ok && li.isArray {
		return li.slot, nil
	}
	if gd, ok := g.globals[id.Name]; ok && (gd.Size > 1 || gd.IsStr) {
		g.at(id.Line)
		return g.fb.AddrOf(id.Name), nil
	}
	return g.genExpr(id)
}

var cmpPreds = map[string]ir.CmpPred{
	"==": ir.CmpEQ, "!=": ir.CmpNE,
	"<": ir.CmpLT, "<=": ir.CmpLE, ">": ir.CmpGT, ">=": ir.CmpGE,
}

var binOps = map[string]ir.BinKind{
	"+": ir.BinAdd, "-": ir.BinSub, "*": ir.BinMul, "/": ir.BinDiv,
	"%": ir.BinRem, "&": ir.BinAnd, "|": ir.BinOr, "^": ir.BinXor,
	"<<": ir.BinShl, ">>": ir.BinShr,
}

func (g *codegen) genExpr(e Expr) (ir.Operand, error) {
	switch ex := e.(type) {
	case *NumLit:
		return ir.ConstOp(ex.Value), nil

	case *StrLit:
		// String literals are materialized by the runtime when used as
		// call arguments; anywhere else is a compile error caught by the
		// consumer contexts. Here we just pass the operand through.
		return ir.StringOp(ex.Value), nil

	case *Ident:
		g.at(ex.Line)
		if li, ok := g.locals[ex.Name]; ok {
			if li.isArray {
				return li.slot, nil // arrays decay to pointers
			}
			return g.fb.Load(li.slot), nil
		}
		if gd, ok := g.globals[ex.Name]; ok {
			if gd.Size > 1 || gd.IsStr {
				return g.fb.AddrOf(ex.Name), nil // arrays decay to pointers
			}
			return g.fb.Load(ir.GlobalOp(ex.Name)), nil
		}
		if _, ok := g.funcs[ex.Name]; ok {
			return g.fb.FuncRef(ex.Name), nil
		}
		if interp.IsIntrinsic(ex.Name) {
			return g.fb.FuncRef(ex.Name), nil
		}
		return ir.Operand{}, g.errf(ex.Line, "undeclared identifier %q", ex.Name)

	case *Index:
		addr, err := g.genElemAddr(ex)
		if err != nil {
			return ir.Operand{}, err
		}
		g.at(ex.Line)
		return g.fb.Load(addr), nil

	case *Unary:
		switch ex.Op {
		case "-":
			v, err := g.genExpr(ex.X)
			if err != nil {
				return ir.Operand{}, err
			}
			g.at(ex.Line)
			return g.fb.Sub(ir.ConstOp(0), v), nil
		case "!":
			v, err := g.genExpr(ex.X)
			if err != nil {
				return ir.Operand{}, err
			}
			g.at(ex.Line)
			return g.fb.Cmp(ir.CmpEQ, v, ir.ConstOp(0)), nil
		case "*":
			v, err := g.genExpr(ex.X)
			if err != nil {
				return ir.Operand{}, err
			}
			g.at(ex.Line)
			return g.fb.Load(v), nil
		case "&":
			id, ok := ex.X.(*Ident)
			if !ok {
				return ir.Operand{}, g.errf(ex.Line, "& needs an identifier")
			}
			g.at(ex.Line)
			if li, ok := g.locals[id.Name]; ok {
				return li.slot, nil
			}
			if _, ok := g.globals[id.Name]; ok {
				return g.fb.AddrOf(id.Name), nil
			}
			if _, ok := g.funcs[id.Name]; ok {
				return g.fb.FuncRef(id.Name), nil
			}
			return ir.Operand{}, g.errf(ex.Line, "cannot take address of %q", id.Name)
		default:
			return ir.Operand{}, g.errf(ex.Line, "unknown unary %q", ex.Op)
		}

	case *Binary:
		if ex.Op == "&&" || ex.Op == "||" {
			return g.genShortCircuit(ex)
		}
		x, err := g.genExpr(ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		y, err := g.genExpr(ex.Y)
		if err != nil {
			return ir.Operand{}, err
		}
		g.at(ex.Line)
		if pred, ok := cmpPreds[ex.Op]; ok {
			return g.fb.Cmp(pred, x, y), nil
		}
		if op, ok := binOps[ex.Op]; ok {
			return g.fb.Bin(op, x, y), nil
		}
		return ir.Operand{}, g.errf(ex.Line, "unknown operator %q", ex.Op)

	case *Call:
		return g.genCall(ex.Name, ex.Args, ex.Line, false)

	case *Spawn:
		if _, ok := g.funcs[ex.Name]; !ok {
			return ir.Operand{}, g.errf(ex.Line, "spawn of undeclared function %q", ex.Name)
		}
		return g.genCall(ex.Name, ex.Args, ex.Line, true)

	default:
		return ir.Operand{}, g.errf(0, "unknown expression %T", e)
	}
}

func (g *codegen) genCall(name string, argExprs []Expr, line int, isSpawn bool) (ir.Operand, error) {
	if !isSpawn {
		_, isFunc := g.funcs[name]
		if !isFunc && !interp.IsIntrinsic(name) {
			return ir.Operand{}, g.errf(line, "call to undeclared function %q", name)
		}
	}
	args := make([]ir.Operand, 0, len(argExprs)+1)
	if isSpawn {
		args = append(args, ir.FuncOp(name))
	}
	for _, a := range argExprs {
		v, err := g.genExpr(a)
		if err != nil {
			return ir.Operand{}, err
		}
		args = append(args, v)
	}
	g.at(line)
	callee := name
	if isSpawn {
		callee = "spawn"
	}
	return g.fb.Call(ir.FuncOp(callee), args...), nil
}

// genShortCircuit lowers && and || with control flow and a result slot.
func (g *codegen) genShortCircuit(ex *Binary) (ir.Operand, error) {
	g.at(ex.Line)
	slot := g.fb.Alloca(1)
	rhsB := g.newBlock("sc.rhs")
	shortB := g.newBlock("sc.short")
	endB := g.newBlock("sc.end")

	x, err := g.genExpr(ex.X)
	if err != nil {
		return ir.Operand{}, err
	}
	g.at(ex.Line)
	xb := g.fb.Cmp(ir.CmpNE, x, ir.ConstOp(0))
	if ex.Op == "&&" {
		g.fb.Br(xb, rhsB, shortB)
	} else {
		g.fb.Br(xb, shortB, rhsB)
	}

	g.startBlock(rhsB)
	y, err := g.genExpr(ex.Y)
	if err != nil {
		return ir.Operand{}, err
	}
	g.at(ex.Line)
	yb := g.fb.Cmp(ir.CmpNE, y, ir.ConstOp(0))
	g.fb.Store(yb, slot)
	g.fb.Jmp(endB)

	g.startBlock(shortB)
	g.at(ex.Line)
	if ex.Op == "&&" {
		g.fb.Store(ir.ConstOp(0), slot)
	} else {
		g.fb.Store(ir.ConstOp(1), slot)
	}
	g.fb.Jmp(endB)

	g.startBlock(endB)
	g.at(ex.Line)
	return g.fb.Load(slot), nil
}
