package minic

import (
	"testing"
	"testing/quick"

	"github.com/conanalysis/owl/internal/ir"
)

// TestCompileNeverPanics: arbitrary byte soup must produce an error, never
// a panic — the compiler is exposed through cmd/minic on user files.
func TestCompileNeverPanics(t *testing.T) {
	f := func(src []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Compile("fuzz.mc", string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCompileMutatedValidPrograms: mutations of a valid program parse or
// fail cleanly, and whatever compiles also passes the IR verifier (it
// does: Compile freezes) and executes without interpreter panics.
func TestCompileMutatedValidPrograms(t *testing.T) {
	base := `int g = 0;
void worker(int n) {
    int i = 0;
    while (i < n) {
        g = g + 1;
        i = i + 1;
    }
}
void main() {
    int t = spawn worker(3);
    join(t);
    print(g);
}
`
	f := func(pos uint16, repl byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		b := []byte(base)
		b[int(pos)%len(b)] = repl
		mod, err := Compile("mut.mc", string(b))
		if err != nil {
			return true // clean rejection is fine
		}
		_ = mod.Format() // printable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestIRParseNeverPanics does the same for the .oir parser.
func TestIRParseNeverPanics(t *testing.T) {
	f := func(src []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = ir.Parse("fuzz.oir", string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
