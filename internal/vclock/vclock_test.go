package vclock

import (
	"testing"
	"testing/quick"
)

func fromSlice(ticks []uint64) *VC {
	v := New()
	for i, t := range ticks {
		v.Set(i, t)
	}
	return v
}

func TestBasics(t *testing.T) {
	v := New()
	if v.Get(3) != 0 {
		t.Errorf("fresh clock should be zero")
	}
	if got := v.Tick(2); got != 1 {
		t.Errorf("tick = %d, want 1", got)
	}
	v.Tick(2)
	if v.Get(2) != 2 {
		t.Errorf("get = %d, want 2", v.Get(2))
	}
	v.Set(0, 7)
	if v.String() != "<7,0,2>" {
		t.Errorf("string = %s", v.String())
	}
}

func TestJoinIsComponentwiseMax(t *testing.T) {
	a := fromSlice([]uint64{1, 5, 0})
	b := fromSlice([]uint64{3, 2, 0, 9})
	a.Join(b)
	want := []uint64{3, 5, 0, 9}
	for i, w := range want {
		if a.Get(i) != w {
			t.Errorf("joined[%d] = %d, want %d", i, a.Get(i), w)
		}
	}
	a.Join(nil) // must not panic
}

func TestHappensBefore(t *testing.T) {
	v := fromSlice([]uint64{4, 1})
	if !v.HappensBefore(0, 4) {
		t.Error("tick 4 of t0 should be ordered before clock with v[0]=4")
	}
	if v.HappensBefore(0, 5) {
		t.Error("tick 5 of t0 must not be ordered before clock with v[0]=4")
	}
	if v.HappensBefore(7, 1) {
		t.Error("unseen thread tick must not be ordered")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := fromSlice([]uint64{1, 2})
	b := a.Copy()
	b.Tick(0)
	if a.Get(0) != 1 {
		t.Error("copy aliases original")
	}
}

// Lattice laws, property-based.

func clamp(raw []uint64) []uint64 {
	if len(raw) > 8 {
		raw = raw[:8]
	}
	out := make([]uint64, len(raw))
	for i, v := range raw {
		out[i] = v % 1000
	}
	return out
}

func TestJoinCommutative(t *testing.T) {
	f := func(x, y []uint64) bool {
		a1, b1 := fromSlice(clamp(x)), fromSlice(clamp(y))
		a2, b2 := fromSlice(clamp(x)), fromSlice(clamp(y))
		a1.Join(b1)
		b2.Join(a2)
		return a1.LeqAll(b2) && b2.LeqAll(a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	f := func(x []uint64) bool {
		a := fromSlice(clamp(x))
		b := a.Copy()
		a.Join(b)
		return a.LeqAll(b) && b.LeqAll(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinUpperBound(t *testing.T) {
	f := func(x, y []uint64) bool {
		a, b := fromSlice(clamp(x)), fromSlice(clamp(y))
		j := a.Copy()
		j.Join(b)
		return a.LeqAll(j) && b.LeqAll(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinAssociative(t *testing.T) {
	f := func(x, y, z []uint64) bool {
		a1, b1, c1 := fromSlice(clamp(x)), fromSlice(clamp(y)), fromSlice(clamp(z))
		a1.Join(b1)
		a1.Join(c1)

		b2, c2 := fromSlice(clamp(y)), fromSlice(clamp(z))
		b2.Join(c2)
		a2 := fromSlice(clamp(x))
		a2.Join(b2)
		return a1.LeqAll(a2) && a2.LeqAll(a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeqAllReflexiveAndAntisymmetric(t *testing.T) {
	f := func(x []uint64) bool {
		a := fromSlice(clamp(x))
		return a.LeqAll(a.Copy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
