// Package vclock implements vector clocks for happens-before race
// detection (the TSAN stand-in in internal/race).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock: tick counts indexed by thread id. The zero value
// is a usable all-zero clock.
type VC struct {
	ticks []uint64
}

// New returns an empty clock.
func New() *VC { return &VC{} }

func (v *VC) grow(n int) {
	for len(v.ticks) <= n {
		v.ticks = append(v.ticks, 0)
	}
}

// Get returns the tick for thread tid.
func (v *VC) Get(tid int) uint64 {
	if tid < 0 || tid >= len(v.ticks) {
		return 0
	}
	return v.ticks[tid]
}

// Set sets the tick for thread tid.
func (v *VC) Set(tid int, tick uint64) {
	if tid < 0 {
		return
	}
	v.grow(tid)
	v.ticks[tid] = tick
}

// Tick increments thread tid's component and returns the new value.
func (v *VC) Tick(tid int) uint64 {
	v.grow(tid)
	v.ticks[tid]++
	return v.ticks[tid]
}

// Join sets v to the component-wise maximum of v and o.
func (v *VC) Join(o *VC) {
	if o == nil {
		return
	}
	v.grow(len(o.ticks) - 1)
	for i, t := range o.ticks {
		if t > v.ticks[i] {
			v.ticks[i] = t
		}
	}
}

// Copy returns an independent copy.
func (v *VC) Copy() *VC {
	return &VC{ticks: append([]uint64(nil), v.ticks...)}
}

// LeqAll reports whether v <= o component-wise (v happened before or
// equals o).
func (v *VC) LeqAll(o *VC) bool {
	for i, t := range v.ticks {
		if t > o.Get(i) {
			return false
		}
	}
	return true
}

// HappensBefore reports whether an event at (tid, tick) is ordered before
// everything this clock has seen — the epoch test FastTrack uses:
// tick <= v[tid].
func (v *VC) HappensBefore(tid int, tick uint64) bool {
	return tick <= v.Get(tid)
}

func (v *VC) String() string {
	parts := make([]string, len(v.ticks))
	for i, t := range v.ticks {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return "<" + strings.Join(parts, ",") + ">"
}
