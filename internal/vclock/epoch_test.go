package vclock

import (
	"strings"
	"testing"
)

func TestEpochRoundTrip(t *testing.T) {
	cases := []struct {
		tid  int
		tick uint64
	}{
		{0, 1},
		{1, 42},
		{EpochMaxTID, 1},
		{0, EpochMaxTick},
		{EpochMaxTID, EpochMaxTick},
	}
	for _, c := range cases {
		e := MakeEpoch(c.tid, c.tick)
		if e.TID() != c.tid || e.Tick() != c.tick {
			t.Errorf("MakeEpoch(%d, %d) round-trips to (%d, %d)",
				c.tid, c.tick, e.TID(), e.Tick())
		}
	}
}

// mustPanicRange asserts fn panics with an *EpochRangeError carrying the
// offending pair.
func mustPanicRange(t *testing.T, tid int, tick uint64) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("MakeEpoch(%d, %d) did not panic", tid, tick)
			return
		}
		err, ok := r.(*EpochRangeError)
		if !ok {
			t.Errorf("MakeEpoch(%d, %d) panicked with %T, want *EpochRangeError", tid, tick, r)
			return
		}
		if err.TID != tid || err.Tick != tick {
			t.Errorf("error carries (%d, %d), want (%d, %d)", err.TID, err.Tick, tid, tick)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("error text %q should mention the range violation", err.Error())
		}
	}()
	MakeEpoch(tid, tick)
}

func TestMakeEpochRejectsOutOfRange(t *testing.T) {
	// One past each boundary, plus a negative tid: before the guards, a
	// tid of EpochMaxTID+1 silently wrapped to thread 0's id field and an
	// oversized tick was masked into the past — both corrupt the
	// happens-before test without any visible failure.
	mustPanicRange(t, EpochMaxTID+1, 1)
	mustPanicRange(t, -1, 1)
	mustPanicRange(t, 0, EpochMaxTick+1)
	mustPanicRange(t, EpochMaxTID+1, EpochMaxTick+1)
}

func TestMakeEpochBoundaryDoesNotCollide(t *testing.T) {
	// The exact bug shape the guard prevents: shifting tid 2^16 into the
	// 16-bit id field produces the same packed word as tid 0 at the same
	// tick, so the old MakeEpoch attributed the access to thread 0.
	tid := EpochMaxTID + 1
	wrapped := Epoch(uint64(tid) << (64 - epochTIDBits))
	plain := MakeEpoch(0, 0x5)
	if wrapped|plain != plain {
		t.Fatalf("test premise broken: tid %d no longer wraps to 0", tid)
	}
	// Documents the collision MakeEpoch now refuses to construct.
	mustPanicRange(t, tid, 0x5)
}

func TestEpochOfStaysInRange(t *testing.T) {
	v := New()
	v.Set(3, 99)
	if e := v.EpochOf(3); e.TID() != 3 || e.Tick() != 99 {
		t.Errorf("EpochOf = %v", e)
	}
	// A tid beyond the packable range must be refused even via the VC
	// accessor path the detector uses per access.
	defer func() {
		if recover() == nil {
			t.Error("EpochOf(EpochMaxTID+1) did not panic")
		}
	}()
	v.EpochOf(EpochMaxTID + 1)
}
