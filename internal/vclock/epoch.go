package vclock

import "fmt"

// Epoch is FastTrack's shadow-word unit: a (thread, tick) pair packed
// into one machine word. Where a full vector clock records one tick per
// thread, an epoch records the single access that matters for the common
// case — the last write, or the last read while reads stay
// thread-exclusive — so the detector's per-access state fits in a word
// and the happens-before test is one comparison (§2 of the FastTrack
// paper; TSAN's shadow cells use the same trick).
//
// The zero Epoch means "no access recorded": valid epochs always carry a
// tick >= 1 because a thread's own clock component is ticked at creation
// before any access is attributed to it.
type Epoch uint64

// epochTIDBits is the width of the thread-id field. 16 bits bounds a run
// at 65535 threads, far above what the interpreter's explicit thread
// machines reach; 48 tick bits overflow only after 2^48 release/spawn
// operations by one thread, which a bounded run cannot produce.
const (
	epochTIDBits = 16
	epochTickMax = uint64(1)<<(64-epochTIDBits) - 1
)

// EpochMaxTID and EpochMaxTick are the inclusive packing bounds of
// MakeEpoch. A (tid, tick) outside them cannot be represented in one
// shadow word.
const (
	EpochMaxTID  = 1<<epochTIDBits - 1
	EpochMaxTick = epochTickMax
)

// EpochRangeError reports a (tid, tick) pair outside the epoch packing
// bounds. MakeEpoch panics with it: silently wrapping the tid would
// attribute the access to another thread's id field, and masking the
// tick would travel the epoch back in time — both corrupt every
// happens-before test downstream, so the detector must stop, not guess.
type EpochRangeError struct {
	TID  int
	Tick uint64
}

func (e *EpochRangeError) Error() string {
	return fmt.Sprintf("vclock: epoch out of range: tid=%d (max %d), tick=%d (max %d)",
		e.TID, EpochMaxTID, e.Tick, uint64(EpochMaxTick))
}

// MakeEpoch packs (tid, tick) into an epoch. It panics with an
// *EpochRangeError when tid or tick does not fit its field; the guards
// are two predictable comparisons, so the hot path stays branch-cheap.
func MakeEpoch(tid int, tick uint64) Epoch {
	if uint(tid) > EpochMaxTID || tick > epochTickMax {
		panic(&EpochRangeError{TID: tid, Tick: tick})
	}
	return Epoch(uint64(tid)<<(64-epochTIDBits) | tick)
}

// TID unpacks the thread id.
func (e Epoch) TID() int { return int(uint64(e) >> (64 - epochTIDBits)) }

// Tick unpacks the tick.
func (e Epoch) Tick() uint64 { return uint64(e) & epochTickMax }

// IsZero reports whether the epoch records no access.
func (e Epoch) IsZero() bool { return e == 0 }

func (e Epoch) String() string {
	return fmt.Sprintf("%d@%d", e.Tick(), e.TID())
}

// Observes reports whether the access at epoch e happened before
// everything this clock has seen — FastTrack's e ⊑ v test
// (e.tick <= v[e.tid]) — without allocating.
func (v *VC) Observes(e Epoch) bool {
	return e.Tick() <= v.Get(e.TID())
}

// EpochOf returns the clock's current epoch for thread tid.
func (v *VC) EpochOf(tid int) Epoch {
	return MakeEpoch(tid, v.Get(tid))
}

// CopyFrom makes v an exact copy of o, reusing v's backing storage when
// it is large enough — the non-allocating counterpart of Copy for
// release-clock updates on a hot path.
func (v *VC) CopyFrom(o *VC) {
	if o == nil {
		v.ticks = v.ticks[:0]
		return
	}
	if cap(v.ticks) < len(o.ticks) {
		v.ticks = make([]uint64, len(o.ticks))
	} else {
		v.ticks = v.ticks[:len(o.ticks)]
	}
	copy(v.ticks, o.ticks)
}
