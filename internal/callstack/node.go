package callstack

// Node is one link of an immutable call chain: the Entry for a caller
// frame plus the chain of its own callers. The interpreter threads a
// node through every activation record, so "capture the call stack" on
// the event hot path is copying a pointer instead of materializing a
// Stack — the outer frames of a stack are fixed the moment the call
// executes, only the innermost position keeps moving.
//
// Nodes are built once per call and never mutated afterwards; a machine
// runs on a single goroutine, so the lazily built prefix cache needs no
// synchronization.
type Node struct {
	entry  Entry
	parent *Node
	depth  int // number of entries in the chain, this node included

	// prefix caches the materialized chain (outermost first). It is
	// built on first use and shared by every retainer, so repeated
	// materializations of the same chain cost one copy, not a walk.
	prefix Stack
}

// PushNode extends parent with one caller entry, returning the new
// chain. A nil parent is the empty chain (bottom frame).
func PushNode(parent *Node, e Entry) *Node {
	depth := 1
	if parent != nil {
		depth = parent.depth + 1
	}
	return &Node{entry: e, parent: parent, depth: depth}
}

// Depth returns the number of entries in the chain (0 for nil).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	return n.depth
}

// Prefix materializes the chain as a Stack, outermost first. The result
// is cached and shared: callers must treat it as read-only.
func (n *Node) Prefix() Stack {
	if n == nil {
		return nil
	}
	if n.prefix == nil {
		p := make(Stack, n.depth)
		for c := n; c != nil; c = c.parent {
			p[c.depth-1] = c.entry
		}
		n.prefix = p
	}
	return n.prefix
}

// Materialize builds a fresh Stack of the chain plus one innermost
// entry (the currently executing position). The returned slice is newly
// allocated and safe for callers to retain or mutate.
func (n *Node) Materialize(top Entry) Stack {
	d := n.Depth()
	st := make(Stack, d+1)
	copy(st, n.Prefix())
	st[d] = top
	return st
}
