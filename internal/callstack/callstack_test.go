package callstack

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/conanalysis/owl/internal/ir"
)

func stack(fns ...string) Stack {
	s := make(Stack, len(fns))
	for i, fn := range fns {
		s[i] = Entry{Fn: fn, Pos: ir.Pos{File: "f.oir", Line: i + 1}}
	}
	return s
}

func TestHasPrefix(t *testing.T) {
	bug := stack("main", "libsafe_strcpy", "stack_check")
	site := stack("main", "libsafe_strcpy", "stack_check", "strcpy")
	if !site.HasPrefix(bug) {
		t.Error("bug stack should be a prefix of site stack (Figure 4)")
	}
	if bug.HasPrefix(site) {
		t.Error("longer stack cannot be a prefix of a shorter one")
	}
	other := stack("main", "other_fn", "stack_check")
	if site.HasPrefix(other) {
		t.Error("mismatched middle frame accepted")
	}
	if !site.HasPrefix(Stack{}) {
		t.Error("empty stack is a prefix of everything")
	}
}

func TestSharedPrefixLenAndLevels(t *testing.T) {
	a := stack("main", "f", "g")
	b := stack("main", "f", "h", "i")
	if got := a.SharedPrefixLen(b); got != 2 {
		t.Errorf("shared = %d, want 2", got)
	}
	// a is 1 level above the shared prefix — the paper's "one or two
	// levels up" pattern.
	if got := a.LevelsAbove(b); got != 1 {
		t.Errorf("levels = %d, want 1", got)
	}
}

func TestInnermostAndFuncs(t *testing.T) {
	s := stack("main", "worker")
	if s.Innermost().Fn != "worker" {
		t.Errorf("innermost = %v", s.Innermost())
	}
	if (Stack{}).Innermost().Fn != "" {
		t.Error("empty innermost should be zero")
	}
	fns := s.Funcs()
	if len(fns) != 2 || fns[0] != "main" || fns[1] != "worker" {
		t.Errorf("funcs = %v", fns)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := stack("a", "b")
	c := s.Clone()
	c[0].Fn = "mutated"
	if s[0].Fn != "a" {
		t.Error("clone aliases original")
	}
}

func TestStringInnermostFirst(t *testing.T) {
	s := stack("libsafe_strcpy", "stack_check")
	str := s.String()
	lines := strings.Split(str, "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "stack_check") {
		t.Errorf("stack should print innermost first:\n%s", str)
	}
	if (Stack{}).String() != "<empty stack>" {
		t.Errorf("empty stack string = %q", (Stack{}).String())
	}
}

// Property: HasPrefix agrees with SharedPrefixLen.
func TestPrefixProperties(t *testing.T) {
	mk := func(names []byte) Stack {
		s := make(Stack, 0, len(names)%6)
		for i := 0; i < len(names)%6; i++ {
			s = append(s, Entry{Fn: string('a' + names[i]%3)})
		}
		return s
	}
	f := func(x, y []byte) bool {
		a, b := mk(x), mk(y)
		if b.HasPrefix(a) != (a.SharedPrefixLen(b) == len(a)) {
			return false
		}
		// Reflexivity: every stack is a prefix of itself.
		return a.HasPrefix(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
