// Package callstack models runtime call stacks and the prefix relations
// OWL's study relies on: §3.2 of the paper observes that a concurrency
// bug's call stack is usually a prefix of its vulnerability site's call
// stack, which is what lets Algorithm 1 direct its traversal.
package callstack

import (
	"fmt"
	"strings"

	"github.com/conanalysis/owl/internal/ir"
)

// Entry is one call-stack frame: the function plus the position of the
// instruction currently executing (for the innermost frame) or the call
// site (for outer frames).
type Entry struct {
	Fn  string
	Pos ir.Pos
}

func (e Entry) String() string {
	return fmt.Sprintf("%s (%s:%d)", e.Fn, e.Pos.File, e.Pos.Line)
}

// Stack is a call stack ordered from outermost (index 0) to innermost
// (last index), matching how the paper prints stacks (Figure 4).
type Stack []Entry

// Clone returns a copy of the stack.
func (s Stack) Clone() Stack {
	return append(Stack(nil), s...)
}

// Innermost returns the top (deepest) frame, or a zero Entry when empty.
func (s Stack) Innermost() Entry {
	if len(s) == 0 {
		return Entry{}
	}
	return s[len(s)-1]
}

// Funcs returns the function names from outermost to innermost.
func (s Stack) Funcs() []string {
	out := make([]string, len(s))
	for i, e := range s {
		out[i] = e.Fn
	}
	return out
}

// HasPrefix reports whether p's frames (by function name) form a prefix of
// s when both are read from the outermost frame — the paper's "similar
// call stack prefixes" pattern.
func (s Stack) HasPrefix(p Stack) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i].Fn != p[i].Fn {
			return false
		}
	}
	return true
}

// SharedPrefixLen returns the number of leading frames (outermost-first)
// whose function names agree between the two stacks.
func (s Stack) SharedPrefixLen(o Stack) int {
	n := 0
	for n < len(s) && n < len(o) && s[n].Fn == o[n].Fn {
		n++
	}
	return n
}

// LevelsAbove returns how many frames the vulnerability stack v sits above
// the bug stack s beyond the shared prefix; the paper notes sites are
// usually in callees (prefix) or "one or two levels up".
func (s Stack) LevelsAbove(v Stack) int {
	n := s.SharedPrefixLen(v)
	return len(s) - n
}

func (s Stack) String() string {
	if len(s) == 0 {
		return "<empty stack>"
	}
	lines := make([]string, 0, len(s))
	// Print innermost first, like a debugger backtrace and Figure 4.
	for i := len(s) - 1; i >= 0; i-- {
		lines = append(lines, s[i].String())
	}
	return strings.Join(lines, "\n")
}
