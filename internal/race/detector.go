package race

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/vclock"
)

// accessMeta is the per-access bookkeeping the detector must retain to
// build a Report later: who accessed, what value, where, and a
// zero-allocation handle on the call stack. Stacks are only materialized
// when an access actually ends up in a report.
type accessMeta struct {
	tid   interp.ThreadID
	val   int64
	step  int
	instr *ir.Instr
	sref  interp.StackRef
}

// readEntry is one thread's last read in read-shared mode.
type readEntry struct {
	tid  interp.ThreadID
	tick uint64
	meta accessMeta
}

// shadowSlot is the FastTrack shadow word for one address. The common
// case keeps the whole read history in a single epoch (read): reads stay
// thread-exclusive, so "last read" is one (tid, tick) pair. Only when a
// second distinct thread reads the address does the slot promote to
// read-shared mode (shared, tid-sorted), the moral equivalent of the old
// per-thread read map — and a write that supersedes every stored read
// demotes it back.
type shadowSlot struct {
	write vclock.Epoch
	read  vclock.Epoch // exclusive-reader epoch; zero when none or shared
	wMeta accessMeta
	rMeta accessMeta
	// shared holds per-thread reads in read-shared mode, sorted by tid so
	// multi-read race reporting is deterministic. len(shared) > 0 is the
	// mode flag; capacity is kept across demotions.
	shared []readEntry
}

// Stats are the detector's hot-path counters. They are plain ints bumped
// inline (the detector runs synchronously on the machine's goroutine) and
// flushed to a metrics.Collector once per run via FlushMetrics, keeping
// the per-event path free of mutexes.
type Stats struct {
	// Events counts every event the detector consumed.
	Events int64
	// FastpathHits counts reads and writes fully handled by the
	// same-epoch O(1) comparison, skipping all vector-clock work.
	FastpathHits int64
	// EpochPromotions counts exclusive-read epochs promoted to
	// read-shared vector state by a second distinct reading thread.
	EpochPromotions int64
	// StackCaptures counts call-stack materializations — one per access
	// that made it into a new report, rather than one per event.
	StackCaptures int64
}

// Detector is the race detector; attach it as an interpreter observer.
// It is FastTrack-shaped: per-address state is an epoch shadow word in a
// flat table indexed by arena offset, and the per-event hot path is
// allocation-free once thread clocks and the shadow table are warm.
type Detector struct {
	// Benign, when non-nil, suppresses annotated races.
	Benign *Annotations

	vcs   []*vclock.VC // indexed by thread id (dense from 0)
	locks map[int64]*vclock.VC

	slots []shadowSlot // indexed by addr - interp.ArenaBase
	low   map[int64]*shadowSlot

	byPair map[[2]*ir.Instr]*Report
	order  []*Report

	stats Stats
}

var _ interp.Observer = (*Detector)(nil)
var _ interp.StackPolicy = (*Detector)(nil)

// NewDetector returns a fresh detector.
func NewDetector() *Detector {
	return &Detector{
		locks:  make(map[int64]*vclock.VC),
		byPair: make(map[[2]*ir.Instr]*Report),
	}
}

// NeedsStack implements interp.StackPolicy: only memory accesses can end
// up in a report, so only they need a stack handle attached.
func (d *Detector) NeedsStack(k interp.EventKind) bool {
	return k == interp.EvRead || k == interp.EvWrite
}

// Reports returns the deduplicated race reports in first-seen order.
func (d *Detector) Reports() []*Report { return d.order }

// Stats returns a snapshot of the detector's hot-path counters.
func (d *Detector) Stats() Stats { return d.stats }

// FlushMetrics adds the detector's counters to c (nil-safe, like all
// Collector methods). Call it once after the run; counters accumulate
// across detectors flushed into the same collector.
func (d *Detector) FlushMetrics(c *metrics.Collector) {
	c.Count("race.events", d.stats.Events)
	c.Count("race.fastpath_hits", d.stats.FastpathHits)
	c.Count("race.epoch_promotions", d.stats.EpochPromotions)
	c.Count("race.stack_captures", d.stats.StackCaptures)
}

func (d *Detector) vc(tid interp.ThreadID) *vclock.VC {
	for int(tid) >= len(d.vcs) {
		d.vcs = append(d.vcs, nil)
	}
	v := d.vcs[tid]
	if v == nil {
		v = vclock.New()
		v.Tick(int(tid))
		d.vcs[tid] = v
	}
	return v
}

func (d *Detector) setVC(tid interp.ThreadID, v *vclock.VC) {
	for int(tid) >= len(d.vcs) {
		d.vcs = append(d.vcs, nil)
	}
	d.vcs[tid] = v
}

// slot returns the shadow word for addr. Arena addresses are dense above
// interp.ArenaBase, so the table is flat and the lookup one subtraction;
// addresses below the base (never produced by the arena, but observers
// must not crash on hostile events) fall back to a map.
func (d *Detector) slot(addr int64) *shadowSlot {
	i := addr - interp.ArenaBase
	if i < 0 {
		if d.low == nil {
			d.low = make(map[int64]*shadowSlot)
		}
		s := d.low[addr]
		if s == nil {
			s = &shadowSlot{}
			d.low[addr] = s
		}
		return s
	}
	if int64(len(d.slots)) <= i {
		if int64(cap(d.slots)) > i {
			d.slots = d.slots[:i+1]
		} else {
			n := int64(cap(d.slots)) * 2
			if n <= i {
				n = i + 1
			}
			if n < 1024 {
				n = 1024
			}
			grown := make([]shadowSlot, i+1, n)
			copy(grown, d.slots)
			d.slots = grown
		}
	}
	return &d.slots[i]
}

func metaOf(e interp.Event) accessMeta {
	return accessMeta{tid: e.TID, val: e.Val, step: e.Step, instr: e.Instr, sref: e.StackRef()}
}

// OnEvent implements interp.Observer.
func (d *Detector) OnEvent(m *interp.Machine, e interp.Event) {
	d.stats.Events++
	switch e.Kind {
	case interp.EvAcquire:
		if l := d.locks[e.Addr]; l != nil {
			d.vc(e.TID).Join(l)
		}
	case interp.EvRelease:
		me := d.vc(e.TID)
		l := d.locks[e.Addr]
		if l == nil {
			l = vclock.New()
			d.locks[e.Addr] = l
		}
		l.CopyFrom(me)
		me.Tick(int(e.TID))
	case interp.EvSpawn:
		parent := d.vc(e.TID)
		child := parent.Copy()
		child.Tick(int(e.Aux))
		d.setVC(interp.ThreadID(e.Aux), child)
		parent.Tick(int(e.TID))
	case interp.EvJoin:
		if cv := d.vcOf(interp.ThreadID(e.Aux)); cv != nil {
			d.vc(e.TID).Join(cv)
		}
	case interp.EvRead:
		d.onRead(m, e)
	case interp.EvWrite:
		d.onWrite(m, e)
	}
}

func (d *Detector) vcOf(tid interp.ThreadID) *vclock.VC {
	if int(tid) < len(d.vcs) {
		return d.vcs[tid]
	}
	return nil
}

func (d *Detector) onRead(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.slot(e.Addr)
	// Unlike classic FastTrack, a same-epoch read cannot skip the write
	// check: lock acquisition joins clocks without ticking the reader's
	// own component, so the verdict (and the report's dynamic count) can
	// change between two reads at one epoch.
	if !s.write.IsZero() && s.write.TID() != int(e.TID) && !me.Observes(s.write) {
		d.report(m, s.wMeta, true, metaOf(e), false, e.Addr)
	}
	cur := me.EpochOf(int(e.TID))
	if len(s.shared) == 0 {
		if s.read == cur {
			// Same-epoch read: only the report metadata moves (the last
			// read at an address wins, and is what a later racing write
			// reports against).
			d.stats.FastpathHits++
			s.rMeta = metaOf(e)
			return
		}
		if s.read.IsZero() || s.read.TID() == int(e.TID) {
			s.read = cur
			s.rMeta = metaOf(e)
			return
		}
		// Second distinct reading thread: promote to read-shared. Any
		// second reader promotes (not just an unordered one) — the
		// write pass is what prunes ordered reads, exactly as the
		// per-thread read map did.
		d.stats.EpochPromotions++
		s.shared = append(s.shared[:0], readEntry{
			tid: interp.ThreadID(s.read.TID()), tick: s.read.Tick(), meta: s.rMeta,
		})
		s.read = 0
		s.rMeta = accessMeta{}
		s.insertShared(readEntry{tid: e.TID, tick: cur.Tick(), meta: metaOf(e)})
		return
	}
	s.insertShared(readEntry{tid: e.TID, tick: cur.Tick(), meta: metaOf(e)})
}

// insertShared upserts one thread's read keeping shared sorted by tid.
// Thread counts are small (the interpreter models a handful of explicit
// threads), so the scan is linear.
func (s *shadowSlot) insertShared(re readEntry) {
	i := 0
	for i < len(s.shared) && s.shared[i].tid < re.tid {
		i++
	}
	if i < len(s.shared) && s.shared[i].tid == re.tid {
		s.shared[i] = re
		return
	}
	s.shared = append(s.shared, readEntry{})
	copy(s.shared[i+1:], s.shared[i:])
	s.shared[i] = re
}

func (d *Detector) onWrite(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.slot(e.Addr)
	cur := me.EpochOf(int(e.TID))
	if s.write == cur && s.read.IsZero() && len(s.shared) == 0 {
		// Same-epoch write with no stored reads: the previous write was
		// ours at this very epoch, so there is nothing to race with and
		// nothing to prune; only the last-write metadata moves.
		d.stats.FastpathHits++
		s.wMeta = metaOf(e)
		return
	}
	if !s.write.IsZero() && s.write.TID() != int(e.TID) && !me.Observes(s.write) {
		d.report(m, s.wMeta, true, metaOf(e), true, e.Addr)
	}
	if len(s.shared) > 0 {
		// One pass over the stored reads: a read ordered before this
		// write is superseded (pruned, to bound state growth); an
		// unordered read from another thread races and stays stored.
		kept := s.shared[:0]
		for i := range s.shared {
			rd := s.shared[i]
			if me.HappensBefore(int(rd.tid), rd.tick) {
				continue
			}
			if rd.tid != e.TID {
				d.report(m, rd.meta, false, metaOf(e), true, e.Addr)
			}
			kept = append(kept, rd)
		}
		s.shared = kept // len 0 demotes the slot back to epoch mode
	} else if !s.read.IsZero() {
		if me.Observes(s.read) {
			s.read = 0
			s.rMeta = accessMeta{}
		} else if s.read.TID() != int(e.TID) {
			d.report(m, s.rMeta, false, metaOf(e), true, e.Addr)
		}
	}
	s.write = cur
	s.wMeta = metaOf(e)
}

// mkAccess turns retained access metadata into a report-side Access,
// materializing the call stack — the only place stacks are built.
func (d *Detector) mkAccess(meta accessMeta, isWrite bool, addr int64) Access {
	d.stats.StackCaptures++
	return Access{
		TID: meta.tid, IsWrite: isWrite, Addr: addr, Val: meta.val,
		Instr: meta.instr, Stack: meta.sref.Materialize(), Step: meta.step,
	}
}

// report deduplicates by the unordered instruction pair. The string ID is
// never computed here; both orderings of the pointer pair index the same
// Report. On a dedup hit only variable-name suppressions can change the
// outcome (pair and instruction suppressions are constant per pair and
// already decided the first occurrence), so the address label is only
// resolved when such annotations exist.
func (d *Detector) report(m *interp.Machine, prev accessMeta, prevW bool, cur accessMeta, curW bool, addr int64) {
	key := [2]*ir.Instr{prev.instr, cur.instr}
	if r := d.byPair[key]; r != nil {
		if d.Benign.hasVars() && d.Benign.suppressesAddr(m.Mem().NameFor(addr)) {
			return
		}
		r.Count++
		return
	}
	addrName := m.Mem().NameFor(addr)
	if d.Benign.suppresses(addrName, prev.instr, cur.instr) {
		return
	}
	r := &Report{
		Prev:     d.mkAccess(prev, prevW, addr),
		Cur:      d.mkAccess(cur, curW, addr),
		AddrName: addrName,
		Count:    1,
	}
	d.byPair[key] = r
	d.byPair[[2]*ir.Instr{cur.instr, prev.instr}] = r
	d.order = append(d.order, r)
}
