package race

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

const benchSrc = `
global @a = 0
global @b = 0
global @m = 0

func @worker() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 300
  br %c, body, done
body:
  %v = load @a
  %v2 = add %v, 1
  store %v2, @a
  call @mutex_lock(@m)
  %w = load @b
  %w2 = add %w, 1
  store %w2, @b
  call @mutex_unlock(@m)
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker)
  %t2 = call @spawn(@worker)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  ret 0
}
`

// benchRun executes one full benchSrc run with the given observer
// attached, asserting races were found when a detector is present.
func benchRun(b *testing.B, mod *ir.Module, obs ...interp.Observer) {
	b.Helper()
	benchRunEngine(b, mod, interp.EngineTree, obs...)
}

// benchRunEngine is benchRun parameterized over the execution engine.
func benchRunEngine(b *testing.B, mod *ir.Module, engine interp.Engine, obs ...interp.Observer) {
	b.Helper()
	m, err := interp.New(interp.Config{
		Module: mod, Sched: sched.NewRoundRobin(1),
		Observers: obs, MaxSteps: 100000, Engine: engine,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Run()
}

// BenchmarkDetectorOverhead measures a full run with the epoch-based
// happens-before detector attached (mixed racy and lock-protected
// traffic): FastTrack shadow words, lazy stack capture.
func BenchmarkDetectorOverhead(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDetector()
		benchRun(b, mod, d)
		if len(d.Reports()) == 0 {
			b.Fatal("expected races")
		}
	}
}

// BenchmarkDetectorFullVC is the ablation arm for the epoch shadow
// memory: the reference detector keeps full per-address vector-clock
// read maps and materializes a call stack on every access (the pre-epoch
// implementation, byte-identical reports).
func BenchmarkDetectorFullVC(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewReferenceDetector()
		benchRun(b, mod, d)
		if len(d.Reports()) == 0 {
			b.Fatal("expected races")
		}
	}
}

// eagerStackObserver forces eager stack materialization on every access
// while delegating detection to the epoch detector. It deliberately does
// not implement interp.StackPolicy, so the machine also captures stack
// refs for every event kind — together the pre-PR emit-site behavior.
type eagerStackObserver struct{ d *Detector }

func (o eagerStackObserver) OnEvent(m *interp.Machine, e interp.Event) {
	if e.Kind == interp.EvRead || e.Kind == interp.EvWrite {
		_ = e.StackRef().Materialize()
	}
	o.d.OnEvent(m, e)
}

// BenchmarkDetectorEagerStacks is the ablation arm for lazy stack
// capture: epoch shadow memory, but a stack is materialized for every
// access event instead of only for reported races.
func BenchmarkDetectorEagerStacks(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDetector()
		benchRun(b, mod, eagerStackObserver{d})
		if len(d.Reports()) == 0 {
			b.Fatal("expected races")
		}
	}
}

// BenchmarkBaselineNoDetector is the same run without the detector, for
// overhead comparison.
func BenchmarkBaselineNoDetector(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchRun(b, mod)
	}
}

// BenchmarkBaselineNoDetectorBytecode is the compiled-engine arm of the
// baseline: same program, same schedule, flat bytecode with
// superinstructions and the batched no-observer run loop. (The one-time
// module lowering is memoized, so it amortizes to zero across
// iterations — exactly how owl's explorers reuse a module.)
func BenchmarkBaselineNoDetectorBytecode(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchRunEngine(b, mod, interp.EngineBytecode)
	}
}

// BenchmarkDetectorOverheadBytecode measures the epoch detector on the
// compiled engine — the observer path disables step batching's
// zero-interface-call property but keeps slot-file and dispatch wins.
func BenchmarkDetectorOverheadBytecode(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDetector()
		benchRunEngine(b, mod, interp.EngineBytecode, d)
		if len(d.Reports()) == 0 {
			b.Fatal("expected races")
		}
	}
}
