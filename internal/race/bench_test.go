package race

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

const benchSrc = `
global @a = 0
global @b = 0
global @m = 0

func @worker() {
entry:
  jmp head
head:
  %i = phi [entry: 0], [body: %i2]
  %c = icmp lt %i, 300
  br %c, body, done
body:
  %v = load @a
  %v2 = add %v, 1
  store %v2, @a
  call @mutex_lock(@m)
  %w = load @b
  %w2 = add %w, 1
  store %w2, @b
  call @mutex_unlock(@m)
  %i2 = add %i, 1
  jmp head
done:
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker)
  %t2 = call @spawn(@worker)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  ret 0
}
`

// BenchmarkDetectorOverhead measures a full run with the happens-before
// detector attached (mixed racy and lock-protected traffic).
func BenchmarkDetectorOverhead(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	for i := 0; i < b.N; i++ {
		d := NewDetector()
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRoundRobin(1),
			Observers: []interp.Observer{d}, MaxSteps: 100000,
		})
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
		if len(d.Reports()) == 0 {
			b.Fatal("expected races")
		}
	}
}

// BenchmarkBaselineNoDetector is the same run without the detector, for
// overhead comparison.
func BenchmarkBaselineNoDetector(b *testing.B) {
	mod := ir.MustParse("bench.oir", benchSrc)
	for i := 0; i < b.N; i++ {
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRoundRobin(1), MaxSteps: 100000,
		})
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
	}
}
