package race

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

// eventRecorder records every event as a flat descriptor string so two
// runs can be compared event-by-event. It deliberately declares no
// stack need (no StackPolicy refinement here) so the recorder itself
// does not change which events carry stacks.
type eventRecorder struct {
	events []string
}

func (r *eventRecorder) OnEvent(m *interp.Machine, e interp.Event) {
	loc := "?"
	if e.Instr != nil {
		loc = fmt.Sprintf("%s#%d@%s", e.Instr.Fn.Name, e.Instr.Index, e.Instr.Loc())
	}
	r.events = append(r.events, fmt.Sprintf("step=%d kind=%s tid=%d addr=%d val=%d aux=%d in=%s",
		e.Step, e.Kind, e.TID, e.Addr, e.Val, e.Aux, loc))
}

// stackRecorder additionally materializes call stacks for accesses,
// exercising the StackRef capture path under both engines.
type stackRecorder struct {
	eventRecorder
	m *interp.Machine
}

func (r *stackRecorder) NeedsStack(k interp.EventKind) bool {
	return k == interp.EvRead || k == interp.EvWrite
}

func (r *stackRecorder) OnEvent(m *interp.Machine, e interp.Event) {
	r.eventRecorder.OnEvent(m, e)
	if e.IsAccess() {
		r.events = append(r.events, "stack:\n"+m.EventStack(e).String())
	}
}

// runFingerprint renders everything observable about a finished run:
// result summary, faults (with stacks), output, schedule trace, and
// the arena fingerprint.
func runFingerprint(res *interp.Result, m *interp.Machine) string {
	s := fmt.Sprintf("exit=%d steps=%d stall=%s uid=%d truncated=%v\n",
		res.ExitCode, res.Steps, res.Stall, res.UID, res.MaxStepsHit)
	s += fmt.Sprintf("schedule=%v\n", res.Schedule)
	for _, f := range res.Faults {
		s += fmt.Sprintf("fault: %s addr=%d step=%d\nstack:\n%s\n", f.Error(), f.Addr, f.Step, f.Stack)
	}
	s += fmt.Sprintf("output=%q\n", res.Output)
	s += fmt.Sprintf("exec=%q\n", m.ExecLog())
	s += fmt.Sprintf("arena=%#x\n", m.Mem().Fingerprint())
	return s
}

// diffEngines runs mod under both engines with identical scheduler
// seeds and returns the two full observable transcripts.
func diffEngines(t *testing.T, mod *ir.Module, schedSeed uint64, stacks bool) (tree, bc string) {
	t.Helper()
	run := func(engine interp.Engine) string {
		var rec interface {
			interp.Observer
		}
		var events *[]string
		if stacks {
			sr := &stackRecorder{}
			rec, events = sr, &sr.events
		} else {
			er := &eventRecorder{}
			rec, events = er, &er.events
		}
		d := NewDetector()
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRandom(schedSeed),
			Engine:    engine,
			Observers: []interp.Observer{d, rec},
		})
		if err != nil {
			t.Fatalf("engine %s: new machine: %v", engine, err)
		}
		res := m.Run()
		s := runFingerprint(res, m)
		s += fmt.Sprintf("reports=%v\n", reportSet(d.Reports()))
		for _, e := range *events {
			s += e + "\n"
		}
		return s
	}
	return run(interp.EngineTree), run(interp.EngineBytecode)
}

// TestDifferentialEngines is the compiled engine's semantic gate: a
// grid of generated concurrent programs × seeded random schedules must
// produce byte-identical transcripts (events, faults, output, schedule
// trace, arena fingerprint, race reports) under the tree-walking and
// bytecode engines. The scheduler is consulted identically step by
// step, so any divergence is an engine bug, not schedule noise.
func TestDifferentialEngines(t *testing.T) {
	for progSeed := int64(1); progSeed <= 25; progSeed++ {
		src := genProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("enginediff_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: generated program does not parse: %v\n%s", progSeed, err, src)
		}
		for schedSeed := uint64(1); schedSeed <= 4; schedSeed++ {
			tree, bc := diffEngines(t, mod, schedSeed, false)
			if tree != bc {
				t.Fatalf("prog %d sched %d: engines diverge\nprogram:\n%s\n--- tree ---\n%s\n--- bytecode ---\n%s",
					progSeed, schedSeed, src, tree, bc)
			}
		}
	}
}

// TestDifferentialEngineStacks re-runs a slice of the grid with an
// observer that demands materialized call stacks for every access,
// pinning StackRef capture and EventStack rendering to byte equality
// across engines (compiled frames must report the same function,
// position, and caller chain as tree frames).
func TestDifferentialEngineStacks(t *testing.T) {
	for progSeed := int64(1); progSeed <= 8; progSeed++ {
		src := genProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("enginediff_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: parse: %v", progSeed, err)
		}
		tree, bc := diffEngines(t, mod, 3, true)
		if tree != bc {
			t.Fatalf("prog %d: stack transcripts diverge\nprogram:\n%s\n--- tree ---\n%s\n--- bytecode ---\n%s",
				progSeed, src, tree, bc)
		}
	}
}

// TestNoObserverBytecodeStepIsAllocationFree extends the per-step
// allocation pin to the compiled engine: the no-observer bytecode step
// must not touch the heap either.
func TestNoObserverBytecodeStepIsAllocationFree(t *testing.T) {
	m := stepLoopEngine(t, interp.EngineBytecode)
	for i := 0; i < 50_000; i++ {
		if !m.Step() {
			t.Fatal("program ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(20_000, func() {
		if !m.Step() {
			t.Fatal("program ended during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("no-observer bytecode step allocates %.2f allocs/op, want 0", avg)
	}
}

// TestSameEpochDetectorBytecodeStepIsAllocationFree pins the
// detector-attached same-epoch fast path at zero allocations under the
// compiled engine too.
func TestSameEpochDetectorBytecodeStepIsAllocationFree(t *testing.T) {
	d := NewDetector()
	m := stepLoopEngine(t, interp.EngineBytecode, d)
	for i := 0; i < 50_000; i++ {
		if !m.Step() {
			t.Fatal("program ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(20_000, func() {
		if !m.Step() {
			t.Fatal("program ended during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("same-epoch bytecode step allocates %.2f allocs/op, want 0", avg)
	}
}
