package race

import (
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vclock"
)

// Snapshot is an immutable copy of a detector's dynamic state: thread
// and lock clocks, the shadow table (including read-shared vectors),
// deduplicated reports with their dynamic counts, and the hot-path
// counters. Benign annotations are run configuration, not state, and
// are not captured. A snapshot can be restored any number of times;
// paired with interp.Snapshot it lets schedule exploration fork a run —
// detector included — at a decision point instead of replaying from
// step 0.
type Snapshot struct {
	vcs     []*vclock.VC
	locks   map[int64]*vclock.VC
	slots   []shadowSlot
	low     map[int64]shadowSlot
	reports []Report
	stats   Stats
}

func copyVC(v *vclock.VC) *vclock.VC {
	if v == nil {
		return nil
	}
	return v.Copy()
}

func copySlots(src []shadowSlot) []shadowSlot {
	dst := append([]shadowSlot(nil), src...)
	for i := range dst {
		if len(dst[i].shared) > 0 {
			dst[i].shared = append([]readEntry(nil), dst[i].shared...)
		}
	}
	return dst
}

// SnapshotState captures the detector's state; the return value
// satisfies the any-typed contract of sched.StateForker without this
// package importing sched.
func (d *Detector) SnapshotState() any {
	s := &Snapshot{
		vcs:     make([]*vclock.VC, len(d.vcs)),
		locks:   make(map[int64]*vclock.VC, len(d.locks)),
		slots:   copySlots(d.slots),
		reports: make([]Report, len(d.order)),
		stats:   d.stats,
	}
	for i, v := range d.vcs {
		s.vcs[i] = copyVC(v)
	}
	for a, v := range d.locks {
		s.locks[a] = copyVC(v)
	}
	if d.low != nil {
		s.low = make(map[int64]shadowSlot, len(d.low))
		for a, sl := range d.low {
			c := *sl
			if len(c.shared) > 0 {
				c.shared = append([]readEntry(nil), c.shared...)
			}
			s.low[a] = c
		}
	}
	for i, r := range d.order {
		s.reports[i] = *r
	}
	return s
}

// RestoreState replaces the detector's dynamic state with the
// snapshot's (Benign is left as configured). It reports false when the
// value is not a race snapshot.
func (d *Detector) RestoreState(state any) bool {
	s, ok := state.(*Snapshot)
	if !ok {
		return false
	}
	d.vcs = make([]*vclock.VC, len(s.vcs))
	for i, v := range s.vcs {
		d.vcs[i] = copyVC(v)
	}
	d.locks = make(map[int64]*vclock.VC, len(s.locks))
	for a, v := range s.locks {
		d.locks[a] = copyVC(v)
	}
	d.slots = copySlots(s.slots)
	d.low = nil
	if s.low != nil {
		d.low = make(map[int64]*shadowSlot, len(s.low))
		for a, sl := range s.low {
			c := sl
			if len(c.shared) > 0 {
				c.shared = append([]readEntry(nil), c.shared...)
			}
			d.low[a] = &c
		}
	}
	// Reports are mutable (Count grows on dedup hits), so each restore
	// materializes fresh Report values and rebuilds both pair-key
	// orderings exactly as report() installed them.
	d.order = make([]*Report, len(s.reports))
	d.byPair = make(map[[2]*ir.Instr]*Report, 2*len(s.reports))
	for i := range s.reports {
		r := s.reports[i]
		d.order[i] = &r
		d.byPair[[2]*ir.Instr{r.Prev.Instr, r.Cur.Instr}] = &r
		d.byPair[[2]*ir.Instr{r.Cur.Instr, r.Prev.Instr}] = &r
	}
	d.stats = s.stats
	return true
}
