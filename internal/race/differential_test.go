package race

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

// genProgram emits a random OIR program: a handful of globals, workers
// doing random sequences of loads/stores (some under a mutex), and a main
// that spawns the workers, does its own accesses, and joins. The shapes
// exercise every detector transition: write-write and read-write races,
// lock-ordered accesses, exclusive reads, read-shared promotion (several
// threads reading one global), and pruning writes.
func genProgram(r *rand.Rand) string {
	nWorkers := 1 + r.Intn(3)
	nGlobals := 1 + r.Intn(3)

	var b strings.Builder
	for g := 0; g < nGlobals; g++ {
		fmt.Fprintf(&b, "global @g%d = 0\n", g)
	}
	b.WriteString("global @mu = 0\n\n")

	body := func(tag string, n int) string {
		var w strings.Builder
		reg := 0
		locked := false
		for i := 0; i < n; i++ {
			g := r.Intn(nGlobals)
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&w, "  %%%s%d = load @g%d\n", tag, reg, g)
				reg++
			case 1:
				fmt.Fprintf(&w, "  store %d, @g%d\n", r.Intn(100), g)
			case 2:
				if locked {
					w.WriteString("  call @mutex_unlock(@mu)\n")
				} else {
					w.WriteString("  call @mutex_lock(@mu)\n")
				}
				locked = !locked
			case 3:
				fmt.Fprintf(&w, "  %%%s%d = load @g%d\n  store %%%s%d, @g%d\n",
					tag, reg, g, tag, reg, r.Intn(nGlobals))
				reg++
			case 4:
				fmt.Fprintf(&w, "  call @yield()\n")
			}
		}
		if locked {
			w.WriteString("  call @mutex_unlock(@mu)\n")
		}
		return w.String()
	}

	for wi := 0; wi < nWorkers; wi++ {
		fmt.Fprintf(&b, "func @worker%d() {\nentry:\n%s  ret 0\n}\n", wi, body(fmt.Sprintf("w%d_", wi), 3+r.Intn(6)))
	}
	b.WriteString("func @main() {\nentry:\n")
	for wi := 0; wi < nWorkers; wi++ {
		fmt.Fprintf(&b, "  %%t%d = call @spawn(@worker%d)\n", wi, wi)
	}
	b.WriteString(body("m", 3+r.Intn(6)))
	for wi := 0; wi < nWorkers; wi++ {
		fmt.Fprintf(&b, "  %%j%d = call @join(%%t%d)\n", wi, wi)
	}
	b.WriteString("  ret 0\n}\n")
	return b.String()
}

// reportSet renders reports order-independently: the pre-epoch detector's
// map-iterated read set could surface multiple new pairs from one write
// in any order, so only the set (IDs with counts, address names, and full
// rendered reports including stacks and values) is the contract.
func reportSet(reports []*Report) []string {
	out := make([]string, 0, len(reports))
	for _, r := range reports {
		out = append(out, fmt.Sprintf("%s x%d @%s\n%s", r.ID(), r.Count, r.AddrName, r.String()))
	}
	sort.Strings(out)
	return out
}

// TestDifferentialEpochVsReference attaches the epoch detector and the
// reference full-vector-clock detector to the same machine run — both see
// the identical event stream — across randomized programs and seeded
// random schedules, and requires identical report sets.
func TestDifferentialEpochVsReference(t *testing.T) {
	for progSeed := int64(1); progSeed <= 25; progSeed++ {
		src := genProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("diff_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: generated program does not parse: %v\n%s", progSeed, err, src)
		}
		for schedSeed := uint64(1); schedSeed <= 4; schedSeed++ {
			d := NewDetector()
			ref := NewReferenceDetector()
			m, err := interp.New(interp.Config{
				Module: mod, Sched: sched.NewRandom(schedSeed),
				Observers: []interp.Observer{d, ref},
			})
			if err != nil {
				t.Fatalf("prog %d: new machine: %v", progSeed, err)
			}
			m.Run()
			got, want := reportSet(d.Reports()), reportSet(ref.Reports())
			if len(got) != len(want) {
				t.Fatalf("prog %d sched %d: epoch detector found %d reports, reference %d\nprogram:\n%s\nepoch: %v\nreference: %v",
					progSeed, schedSeed, len(got), len(want), src, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("prog %d sched %d: report %d differs\nepoch:\n%s\nreference:\n%s\nprogram:\n%s",
						progSeed, schedSeed, i, got[i], want[i], src)
				}
			}
		}
	}
}

// TestDifferentialWithAnnotations re-runs the differential check with a
// variable suppression active, exercising the dedup-hit suppression path
// that only resolves address names when variable annotations exist.
func TestDifferentialWithAnnotations(t *testing.T) {
	for progSeed := int64(1); progSeed <= 10; progSeed++ {
		src := genProgram(rand.New(rand.NewSource(progSeed)))
		mod, err := ir.Parse("diff_test.oir", src)
		if err != nil {
			t.Fatalf("prog %d: parse: %v", progSeed, err)
		}
		ann := NewAnnotations()
		ann.AddVar("@g0")
		d := NewDetector()
		d.Benign = ann
		ref := NewReferenceDetector()
		ref.Benign = ann
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRandom(3),
			Observers: []interp.Observer{d, ref},
		})
		if err != nil {
			t.Fatalf("prog %d: new machine: %v", progSeed, err)
		}
		m.Run()
		got, want := reportSet(d.Reports()), reportSet(ref.Reports())
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("prog %d: annotated runs diverge\nepoch: %v\nreference: %v\nprogram:\n%s",
				progSeed, got, want, src)
		}
		for _, r := range d.Reports() {
			if r.AddrName == "@g0" {
				t.Fatalf("prog %d: suppressed variable @g0 reported", progSeed)
			}
		}
	}
}

// stepLoop builds a machine executing a long single-threaded loop that
// re-reads and re-writes one global, with the given observers attached.
func stepLoop(t testing.TB, observers ...interp.Observer) *interp.Machine {
	t.Helper()
	return stepLoopEngine(t, interp.EngineTree, observers...)
}

// stepLoopEngine is stepLoop parameterized over the execution engine,
// so the allocation pins apply to the compiled engine too.
func stepLoopEngine(t testing.TB, engine interp.Engine, observers ...interp.Observer) *interp.Machine {
	t.Helper()
	const src = `
global @x = 0

func @main() {
entry:
  jmp loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %v = load @x
  %w = load @x
  store %v, @x
  store %w, @x
  %i2 = add %i, 1
  %c = icmp lt %i2, 2000000
  br %c, loop, done
done:
  ret 0
}
`
	mod, err := ir.Parse("alloc_test.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := interp.New(interp.Config{
		Module: mod, Sched: sched.NewRoundRobin(1),
		MaxSteps: 100_000_000, Observers: observers,
		Engine: engine,
	})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

// TestNoObserverStepIsAllocationFree pins the interpreter's per-step
// heap cost at zero when nobody observes: the event hot path must not
// build stacks, events, or scratch slices. (The schedule trace append is
// amortized O(1) over the warmed capacity.)
func TestNoObserverStepIsAllocationFree(t *testing.T) {
	m := stepLoop(t)
	for i := 0; i < 50_000; i++ { // warm trace capacity, regs, scratch
		if !m.Step() {
			t.Fatal("program ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(20_000, func() {
		if !m.Step() {
			t.Fatal("program ended during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("no-observer step allocates %.2f allocs/op, want 0", avg)
	}
}

// TestSameEpochDetectorStepIsAllocationFree pins the detector-attached
// per-step heap cost at zero on the same-epoch fast path: a single
// thread re-accessing one address keeps the shadow word in epoch mode,
// so neither vector-clock work nor stack capture may allocate.
func TestSameEpochDetectorStepIsAllocationFree(t *testing.T) {
	d := NewDetector()
	m := stepLoop(t, d)
	for i := 0; i < 50_000; i++ {
		if !m.Step() {
			t.Fatal("program ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(20_000, func() {
		if !m.Step() {
			t.Fatal("program ended during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("same-epoch detector step allocates %.2f allocs/op, want 0", avg)
	}
	st := d.Stats()
	if st.FastpathHits == 0 {
		t.Fatal("loop did not exercise the same-epoch fast path")
	}
	if st.EpochPromotions != 0 {
		t.Fatalf("single-threaded loop promoted %d slots to read-shared", st.EpochPromotions)
	}
	if st.StackCaptures != 0 {
		t.Fatalf("race-free run materialized %d stacks", st.StackCaptures)
	}
	if len(d.Reports()) != 0 {
		t.Fatalf("race-free run produced %d reports", len(d.Reports()))
	}
}
