package race

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/vclock"
)

// lastAccess is the reference detector's stored access: a full Access
// (stack already materialized) plus the clock component needed for the
// happens-before test.
type lastAccess struct {
	tid   interp.ThreadID
	tick  uint64
	acc   Access
	valid bool
}

// varState is the reference detector's per-address state: last write plus
// a per-thread map of last reads.
type varState struct {
	write lastAccess
	reads map[interp.ThreadID]lastAccess
}

// ReferenceDetector is the pre-epoch implementation of the race
// detector: map-keyed per-address state, a per-thread read map for every
// address, and eagerly materialized call stacks on every access. It is
// kept verbatim as the oracle for differential testing of Detector and
// as the "full vector clock / eager stacks" arm of the ablation
// benchmarks (DESIGN.md §5). Its reports are byte-identical to
// Detector's for the same event stream.
type ReferenceDetector struct {
	// Benign, when non-nil, suppresses annotated races.
	Benign *Annotations

	vcs   map[interp.ThreadID]*vclock.VC
	locks map[int64]*vclock.VC
	vars  map[int64]*varState
	byID  map[string]*Report
	order []*Report
}

var _ interp.Observer = (*ReferenceDetector)(nil)
var _ interp.StackPolicy = (*ReferenceDetector)(nil)

// NewReferenceDetector returns a fresh reference detector.
func NewReferenceDetector() *ReferenceDetector {
	return &ReferenceDetector{
		vcs:   make(map[interp.ThreadID]*vclock.VC),
		locks: make(map[int64]*vclock.VC),
		vars:  make(map[int64]*varState),
		byID:  make(map[string]*Report),
	}
}

// NeedsStack implements interp.StackPolicy: the reference detector
// stores a materialized stack with every access it retains.
func (d *ReferenceDetector) NeedsStack(k interp.EventKind) bool {
	return k == interp.EvRead || k == interp.EvWrite
}

// Reports returns the deduplicated race reports in first-seen order.
func (d *ReferenceDetector) Reports() []*Report { return d.order }

func (d *ReferenceDetector) vc(tid interp.ThreadID) *vclock.VC {
	v := d.vcs[tid]
	if v == nil {
		v = vclock.New()
		v.Tick(int(tid))
		d.vcs[tid] = v
	}
	return v
}

func (d *ReferenceDetector) state(addr int64) *varState {
	s := d.vars[addr]
	if s == nil {
		s = &varState{reads: make(map[interp.ThreadID]lastAccess)}
		d.vars[addr] = s
	}
	return s
}

// OnEvent implements interp.Observer.
func (d *ReferenceDetector) OnEvent(m *interp.Machine, e interp.Event) {
	switch e.Kind {
	case interp.EvAcquire:
		if l := d.locks[e.Addr]; l != nil {
			d.vc(e.TID).Join(l)
		}
	case interp.EvRelease:
		me := d.vc(e.TID)
		d.locks[e.Addr] = me.Copy()
		me.Tick(int(e.TID))
	case interp.EvSpawn:
		parent := d.vc(e.TID)
		child := parent.Copy()
		child.Tick(int(e.Aux))
		d.vcs[interp.ThreadID(e.Aux)] = child
		parent.Tick(int(e.TID))
	case interp.EvJoin:
		if cv := d.vcs[interp.ThreadID(e.Aux)]; cv != nil {
			d.vc(e.TID).Join(cv)
		}
	case interp.EvRead:
		d.onRead(m, e)
	case interp.EvWrite:
		d.onWrite(m, e)
	}
}

// access builds a report-side Access, eagerly materializing the stack —
// the cost the epoch detector's lazy StackRef path avoids.
func (d *ReferenceDetector) access(e interp.Event, isWrite bool) Access {
	return Access{
		TID: e.TID, IsWrite: isWrite, Addr: e.Addr, Val: e.Val,
		Instr: e.Instr, Stack: e.StackRef().Materialize(), Step: e.Step,
	}
}

func (d *ReferenceDetector) onRead(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.state(e.Addr)
	if s.write.valid && s.write.tid != e.TID &&
		!me.HappensBefore(int(s.write.tid), s.write.tick) {
		d.report(m, s.write.acc, d.access(e, false))
	}
	s.reads[e.TID] = lastAccess{
		tid: e.TID, tick: me.Get(int(e.TID)), acc: d.access(e, false), valid: true,
	}
}

func (d *ReferenceDetector) onWrite(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.state(e.Addr)
	if s.write.valid && s.write.tid != e.TID &&
		!me.HappensBefore(int(s.write.tid), s.write.tick) {
		d.report(m, s.write.acc, d.access(e, true))
	}
	// One pass over the stored reads: a read ordered before this write is
	// superseded (cleared, to bound state growth); an unordered read from
	// another thread races and stays stored.
	for tid, rd := range s.reads {
		if me.HappensBefore(int(tid), rd.tick) {
			delete(s.reads, tid)
			continue
		}
		if rd.valid && tid != e.TID {
			d.report(m, rd.acc, d.access(e, true))
		}
	}
	s.write = lastAccess{
		tid: e.TID, tick: me.Get(int(e.TID)), acc: d.access(e, true), valid: true,
	}
}

func (d *ReferenceDetector) report(m *interp.Machine, prev, cur Access) {
	addrName := m.Mem().NameFor(cur.Addr)
	if d.Benign.suppresses(addrName, prev.Instr, cur.Instr) {
		return
	}
	r := &Report{Prev: prev, Cur: cur, AddrName: addrName, Count: 1}
	if existing, ok := d.byID[r.ID()]; ok {
		existing.Count++
		return
	}
	d.byID[r.ID()] = r
	d.order = append(d.order, r)
}
