package race

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

// detect runs src under the given scheduler with a fresh detector attached
// and returns the detector.
func detect(t *testing.T, src string, s interp.Scheduler, benign *Annotations) *Detector {
	t.Helper()
	mod, err := ir.Parse("race_test.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d := NewDetector()
	d.Benign = benign
	m, err := interp.New(interp.Config{
		Module: mod, Sched: s, Observers: []interp.Observer{d},
	})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	m.Run()
	return d
}

const racySrc = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`

func TestDetectsSimpleRace(t *testing.T) {
	// Interleave so the load and store are unordered.
	d := detect(t, racySrc, sched.NewRoundRobin(1), nil)
	if len(d.Reports()) != 1 {
		t.Fatalf("got %d reports, want 1:\n%v", len(d.Reports()), d.Reports())
	}
	r := d.Reports()[0]
	if r.AddrName != "@x" {
		t.Errorf("addr name = %q, want @x", r.AddrName)
	}
	if _, ok := r.ReadSide(); !ok {
		t.Errorf("race should have a read side")
	}
	if !r.WriteSide().IsWrite {
		t.Errorf("WriteSide is not a write")
	}
}

const lockedSrc = `
global @m = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@m)
  store 1, @x
  call @mutex_unlock(@m)
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  call @mutex_lock(@m)
  %v = load @x
  call @mutex_unlock(@m)
  %r = call @join(%t)
  ret 0
}
`

func TestLockOrderedAccessesAreNotRaces(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		d := detect(t, lockedSrc, sched.NewRandom(seed), nil)
		if n := len(d.Reports()); n != 0 {
			t.Fatalf("seed %d: got %d reports, want 0:\n%s", seed, n, d.Reports()[0])
		}
	}
}

const spawnJoinSrc = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  store 5, @x
  %t = call @spawn(@worker)
  %r = call @join(%t)
  %v = load @x
  call @print(%v)
  ret 0
}
`

func TestSpawnJoinEdgesOrderAccesses(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		d := detect(t, spawnJoinSrc, sched.NewRandom(seed), nil)
		if n := len(d.Reports()); n != 0 {
			t.Fatalf("seed %d: got %d reports, want 0:\n%s", seed, n, d.Reports()[0])
		}
	}
}

const wwSrc = `
global @x = 0

func @worker() {
entry:
  store 2, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @x
  %r = call @join(%t)
  ret 0
}
`

func TestWriteWriteRace(t *testing.T) {
	d := detect(t, wwSrc, sched.NewRoundRobin(1), nil)
	if len(d.Reports()) != 1 {
		t.Fatalf("got %d reports, want 1", len(d.Reports()))
	}
	r := d.Reports()[0]
	if _, ok := r.ReadSide(); ok {
		t.Errorf("write-write race must have no read side")
	}
}

const loopRaceSrc = `
global @x = 0

func @worker() {
entry:
  jmp loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  store %i, @x
  %i2 = add %i, 1
  %c = icmp lt %i2, 10
  br %c, loop, done
done:
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  jmp loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %v = load @x
  %i2 = add %i, 1
  %c = icmp lt %i2, 10
  br %c, loop, done
done:
  %r = call @join(%t)
  ret 0
}
`

func TestDynamicOccurrencesDeduplicate(t *testing.T) {
	d := detect(t, loopRaceSrc, sched.NewRoundRobin(1), nil)
	if len(d.Reports()) != 1 {
		t.Fatalf("got %d reports, want 1 deduplicated", len(d.Reports()))
	}
	if d.Reports()[0].Count < 2 {
		t.Errorf("count = %d, want >= 2 dynamic occurrences", d.Reports()[0].Count)
	}
}

func TestBenignAnnotationSuppressesByVar(t *testing.T) {
	ann := NewAnnotations()
	ann.AddVar("@x")
	d := detect(t, racySrc, sched.NewRoundRobin(1), ann)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("got %d reports, want 0 after annotation", n)
	}
}

func TestBenignAnnotationSuppressesByInstr(t *testing.T) {
	mod := ir.MustParse("race_test.oir", racySrc)
	ann := NewAnnotations()
	for _, in := range mod.Func("worker").Instrs() {
		if in.Op == ir.OpStore {
			ann.AddInstr(in)
		}
	}
	d := NewDetector()
	d.Benign = ann
	m, err := interp.New(interp.Config{
		Module: mod, Sched: sched.NewRoundRobin(1), Observers: []interp.Observer{d},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("got %d reports, want 0 after instr annotation", n)
	}
}

func TestReportStacksAndValues(t *testing.T) {
	d := detect(t, racySrc, sched.NewRoundRobin(1), nil)
	r := d.Reports()[0]
	w := r.WriteSide()
	if w.Val != 1 {
		t.Errorf("write value = %d, want 1", w.Val)
	}
	if len(w.Stack) == 0 || w.Stack.Innermost().Fn != "worker" {
		t.Errorf("write stack = %v, want innermost worker", w.Stack)
	}
	rd, _ := r.ReadSide()
	if len(rd.Stack) == 0 || rd.Stack.Innermost().Fn != "main" {
		t.Errorf("read stack = %v, want innermost main", rd.Stack)
	}
}

func TestRaceOnHeapBlockNamedByAllocation(t *testing.T) {
	src := `
global @ptr = 0

func @worker() {
entry:
  %p = load @ptr
  store 9, %p
  ret 0
}
func @main() {
entry:
  %p = call @malloc(2)
  store %p, @ptr
  %t = call @spawn(@worker)
  %v = load %p
  %r = call @join(%t)
  ret 0
}
`
	d := detect(t, src, sched.NewRoundRobin(1), nil)
	var heapRace *Report
	for _, r := range d.Reports() {
		if r.AddrName != "@ptr" {
			heapRace = r
		}
	}
	if heapRace == nil {
		t.Fatalf("no heap race found in %d reports", len(d.Reports()))
	}
	if heapRace.AddrName == "" {
		t.Errorf("heap race has empty addr name")
	}
}
