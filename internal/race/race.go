// Package race implements a happens-before data-race detector in the style
// of ThreadSanitizer, the application-level detector OWL integrates (§6.3).
// It consumes the interpreter's event stream: plain reads/writes are
// checked against FastTrack-style epoch shadow words (falling back to full
// vector-clock read sets only where reads are concurrently shared); lock
// acquire/release and thread spawn/join install happens-before edges.
//
// Reports are deduplicated by the unordered pair of racing instructions,
// like TSAN's per-code-location suppression, and carry both call stacks,
// the racing values, and the name of the racing memory ("@global+off"),
// which is what OWL's downstream analyses consume.
//
// The detector honours benign annotations (Annotations): after OWL's
// ad-hoc synchronization detector identifies a sync variable, the
// corresponding accesses are suppressed on re-run — the paper's TSAN
// markup step (§5.1). Annotations must not be mutated while a run is in
// progress.
//
// Two implementations share this contract: Detector (the epoch-based
// production detector) and ReferenceDetector (the original full
// vector-clock implementation, kept as the differential-testing oracle
// and the eager arm of the ablation benchmarks). Both produce identical
// report streams for identical event streams.
package race

import (
	"fmt"
	"sort"
	"strings"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
)

// Access is one side of a race.
type Access struct {
	TID     interp.ThreadID
	IsWrite bool
	Addr    int64
	Val     int64
	Instr   *ir.Instr
	Stack   callstack.Stack
	Step    int
}

func (a Access) String() string {
	kind := "read"
	if a.IsWrite {
		kind = "write"
	}
	loc := "?"
	if a.Instr != nil {
		loc = a.Instr.Loc()
	}
	return fmt.Sprintf("%s of value %d by thread %d at %s", kind, a.Val, a.TID, loc)
}

// Report is a deduplicated data-race report. Prev is the access observed
// first in the run; Cur the conflicting one. Count tallies dynamic
// occurrences of the same static pair.
type Report struct {
	Prev, Cur Access
	// AddrName is a human label for the racing memory ("@dying").
	AddrName string
	Count    int
}

// ID returns a stable identity for the static race (unordered instruction
// pair). It is built on demand — display and cross-run merging use it;
// the detectors' in-run dedup keys on the instruction pointers instead.
func (r *Report) ID() string {
	a, b := r.Prev.Instr.FullName(), r.Cur.Instr.FullName()
	if a > b {
		a, b = b, a
	}
	return a + " <-> " + b
}

// ReadSide returns the racing access that is a read, preferring Cur; the
// vulnerability analyzer starts from the read side (§6.1). For write-write
// races it returns false.
func (r *Report) ReadSide() (Access, bool) {
	if !r.Cur.IsWrite {
		return r.Cur, true
	}
	if !r.Prev.IsWrite {
		return r.Prev, true
	}
	return Access{}, false
}

// WriteSide returns a racing write access (there is always at least one).
func (r *Report) WriteSide() Access {
	if r.Cur.IsWrite {
		return r.Cur
	}
	return r.Prev
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data race on %s (x%d)\n", r.AddrName, r.Count)
	fmt.Fprintf(&b, "  %s\n", r.Cur)
	for _, line := range strings.Split(r.Cur.Stack.String(), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	fmt.Fprintf(&b, "  previous %s\n", r.Prev)
	for _, line := range strings.Split(r.Prev.Stack.String(), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	return b.String()
}

// Annotations suppress benign races: by racing instruction pair (how
// OWL's §5.1 pass annotates ad-hoc synchronizations — the TSAN-markup
// analogue), by individual instruction, or by global/arena block name
// (coarse, for manual suppressions). Pair suppression is the default the
// pipeline uses: other racy accesses to the same variable keep being
// reported, which is what lets OWL still find the SSDB attack behind an
// ad-hoc-sync-shaped variable.
type Annotations struct {
	addrNames map[string]bool
	instrs    map[*ir.Instr]bool
	pairs     map[[2]*ir.Instr]bool
}

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations {
	return &Annotations{
		addrNames: make(map[string]bool),
		instrs:    make(map[*ir.Instr]bool),
		pairs:     make(map[[2]*ir.Instr]bool),
	}
}

// AddPair suppresses the specific unordered racing pair (a, b).
func (a *Annotations) AddPair(x, y *ir.Instr) {
	a.pairs[[2]*ir.Instr{x, y}] = true
	a.pairs[[2]*ir.Instr{y, x}] = true
}

// AddVar suppresses races on the named memory block (e.g. "@dying").
func (a *Annotations) AddVar(name string) { a.addrNames[name] = true }

// AddInstr suppresses races where either endpoint is the instruction.
func (a *Annotations) AddInstr(in *ir.Instr) { a.instrs[in] = true }

// Vars returns the annotated variable names, sorted.
func (a *Annotations) Vars() []string {
	out := make([]string, 0, len(a.addrNames))
	for n := range a.addrNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of suppression entries (variables plus pairs).
func (a *Annotations) Len() int { return len(a.addrNames) + len(a.pairs)/2 }

func (a *Annotations) suppresses(addrName string, i1, i2 *ir.Instr) bool {
	if a == nil {
		return false
	}
	if a.suppressesAddr(addrName) {
		return true
	}
	if a.pairs[[2]*ir.Instr{i1, i2}] {
		return true
	}
	return a.instrs[i1] || a.instrs[i2]
}

// hasVars reports whether any variable-name suppressions exist. Unlike
// pair and instruction suppressions (which are constant for a given
// static race), variable suppressions can differ between dynamic
// occurrences of one pair — "@a+1" vs "@a+2" — so only they force the
// detectors to resolve the address name on the dedup hit path.
func (a *Annotations) hasVars() bool { return a != nil && len(a.addrNames) > 0 }

// suppressesAddr reports whether the address label (or its base block
// name, with any "+off" suffix stripped) is annotated benign.
func (a *Annotations) suppressesAddr(addrName string) bool {
	if a == nil {
		return false
	}
	base := addrName
	if i := strings.IndexByte(base, '+'); i >= 0 {
		base = base[:i]
	}
	return a.addrNames[base] || a.addrNames[addrName]
}
