// Package race implements a happens-before data-race detector in the style
// of ThreadSanitizer, the application-level detector OWL integrates (§6.3).
// It consumes the interpreter's event stream: plain reads/writes are
// checked against vector clocks; lock acquire/release and thread
// spawn/join install happens-before edges.
//
// Reports are deduplicated by the unordered pair of racing instructions,
// like TSAN's per-code-location suppression, and carry both call stacks,
// the racing values, and the name of the racing memory ("@global+off"),
// which is what OWL's downstream analyses consume.
//
// The detector honours benign annotations (Annotations): after OWL's
// ad-hoc synchronization detector identifies a sync variable, the
// corresponding accesses are suppressed on re-run — the paper's TSAN
// markup step (§5.1).
package race

import (
	"fmt"
	"sort"
	"strings"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vclock"
)

// Access is one side of a race.
type Access struct {
	TID     interp.ThreadID
	IsWrite bool
	Addr    int64
	Val     int64
	Instr   *ir.Instr
	Stack   callstack.Stack
	Step    int
}

func (a Access) String() string {
	kind := "read"
	if a.IsWrite {
		kind = "write"
	}
	loc := "?"
	if a.Instr != nil {
		loc = a.Instr.Loc()
	}
	return fmt.Sprintf("%s of value %d by thread %d at %s", kind, a.Val, a.TID, loc)
}

// Report is a deduplicated data-race report. Prev is the access observed
// first in the run; Cur the conflicting one. Count tallies dynamic
// occurrences of the same static pair.
type Report struct {
	Prev, Cur Access
	// AddrName is a human label for the racing memory ("@dying").
	AddrName string
	Count    int
}

// ID returns a stable identity for the static race (unordered instruction
// pair + address label).
func (r *Report) ID() string {
	a, b := r.Prev.Instr.FullName(), r.Cur.Instr.FullName()
	if a > b {
		a, b = b, a
	}
	return a + " <-> " + b
}

// ReadSide returns the racing access that is a read, preferring Cur; the
// vulnerability analyzer starts from the read side (§6.1). For write-write
// races it returns false.
func (r *Report) ReadSide() (Access, bool) {
	if !r.Cur.IsWrite {
		return r.Cur, true
	}
	if !r.Prev.IsWrite {
		return r.Prev, true
	}
	return Access{}, false
}

// WriteSide returns a racing write access (there is always at least one).
func (r *Report) WriteSide() Access {
	if r.Cur.IsWrite {
		return r.Cur
	}
	return r.Prev
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data race on %s (x%d)\n", r.AddrName, r.Count)
	fmt.Fprintf(&b, "  %s\n", r.Cur)
	for _, line := range strings.Split(r.Cur.Stack.String(), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	fmt.Fprintf(&b, "  previous %s\n", r.Prev)
	for _, line := range strings.Split(r.Prev.Stack.String(), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	return b.String()
}

// Annotations suppress benign races: by racing instruction pair (how
// OWL's §5.1 pass annotates ad-hoc synchronizations — the TSAN-markup
// analogue), by individual instruction, or by global/arena block name
// (coarse, for manual suppressions). Pair suppression is the default the
// pipeline uses: other racy accesses to the same variable keep being
// reported, which is what lets OWL still find the SSDB attack behind an
// ad-hoc-sync-shaped variable.
type Annotations struct {
	addrNames map[string]bool
	instrs    map[*ir.Instr]bool
	pairs     map[[2]*ir.Instr]bool
}

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations {
	return &Annotations{
		addrNames: make(map[string]bool),
		instrs:    make(map[*ir.Instr]bool),
		pairs:     make(map[[2]*ir.Instr]bool),
	}
}

// AddPair suppresses the specific unordered racing pair (a, b).
func (a *Annotations) AddPair(x, y *ir.Instr) {
	a.pairs[[2]*ir.Instr{x, y}] = true
	a.pairs[[2]*ir.Instr{y, x}] = true
}

// AddVar suppresses races on the named memory block (e.g. "@dying").
func (a *Annotations) AddVar(name string) { a.addrNames[name] = true }

// AddInstr suppresses races where either endpoint is the instruction.
func (a *Annotations) AddInstr(in *ir.Instr) { a.instrs[in] = true }

// Vars returns the annotated variable names, sorted.
func (a *Annotations) Vars() []string {
	out := make([]string, 0, len(a.addrNames))
	for n := range a.addrNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of suppression entries (variables plus pairs).
func (a *Annotations) Len() int { return len(a.addrNames) + len(a.pairs)/2 }

func (a *Annotations) suppresses(addrName string, i1, i2 *ir.Instr) bool {
	if a == nil {
		return false
	}
	base := addrName
	if i := strings.IndexByte(base, '+'); i >= 0 {
		base = base[:i]
	}
	if a.addrNames[base] || a.addrNames[addrName] {
		return true
	}
	if a.pairs[[2]*ir.Instr{i1, i2}] {
		return true
	}
	return a.instrs[i1] || a.instrs[i2]
}

type lastAccess struct {
	tid   interp.ThreadID
	tick  uint64
	acc   Access
	valid bool
}

type varState struct {
	write lastAccess
	reads map[interp.ThreadID]lastAccess
}

// Detector is the race detector; attach it as an interpreter observer.
type Detector struct {
	// Benign, when non-nil, suppresses annotated races.
	Benign *Annotations

	vcs   map[interp.ThreadID]*vclock.VC
	locks map[int64]*vclock.VC
	vars  map[int64]*varState
	byID  map[string]*Report
	order []*Report
}

var _ interp.Observer = (*Detector)(nil)

// NewDetector returns a fresh detector.
func NewDetector() *Detector {
	return &Detector{
		vcs:   make(map[interp.ThreadID]*vclock.VC),
		locks: make(map[int64]*vclock.VC),
		vars:  make(map[int64]*varState),
		byID:  make(map[string]*Report),
	}
}

// Reports returns the deduplicated race reports in first-seen order.
func (d *Detector) Reports() []*Report { return d.order }

func (d *Detector) vc(tid interp.ThreadID) *vclock.VC {
	v := d.vcs[tid]
	if v == nil {
		v = vclock.New()
		v.Tick(int(tid))
		d.vcs[tid] = v
	}
	return v
}

func (d *Detector) state(addr int64) *varState {
	s := d.vars[addr]
	if s == nil {
		s = &varState{reads: make(map[interp.ThreadID]lastAccess)}
		d.vars[addr] = s
	}
	return s
}

// OnEvent implements interp.Observer.
func (d *Detector) OnEvent(m *interp.Machine, e interp.Event) {
	switch e.Kind {
	case interp.EvAcquire:
		if l := d.locks[e.Addr]; l != nil {
			d.vc(e.TID).Join(l)
		}
	case interp.EvRelease:
		me := d.vc(e.TID)
		d.locks[e.Addr] = me.Copy()
		me.Tick(int(e.TID))
	case interp.EvSpawn:
		parent := d.vc(e.TID)
		child := parent.Copy()
		child.Tick(int(e.Aux))
		d.vcs[interp.ThreadID(e.Aux)] = child
		parent.Tick(int(e.TID))
	case interp.EvJoin:
		if cv := d.vcs[interp.ThreadID(e.Aux)]; cv != nil {
			d.vc(e.TID).Join(cv)
		}
	case interp.EvRead:
		d.onRead(m, e)
	case interp.EvWrite:
		d.onWrite(m, e)
	}
}

func (d *Detector) access(e interp.Event, isWrite bool) Access {
	return Access{
		TID: e.TID, IsWrite: isWrite, Addr: e.Addr, Val: e.Val,
		Instr: e.Instr, Stack: e.Stack, Step: e.Step,
	}
}

func (d *Detector) onRead(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.state(e.Addr)
	if s.write.valid && s.write.tid != e.TID &&
		!me.HappensBefore(int(s.write.tid), s.write.tick) {
		d.report(m, s.write.acc, d.access(e, false))
	}
	s.reads[e.TID] = lastAccess{
		tid: e.TID, tick: me.Get(int(e.TID)), acc: d.access(e, false), valid: true,
	}
}

func (d *Detector) onWrite(m *interp.Machine, e interp.Event) {
	me := d.vc(e.TID)
	s := d.state(e.Addr)
	if s.write.valid && s.write.tid != e.TID &&
		!me.HappensBefore(int(s.write.tid), s.write.tick) {
		d.report(m, s.write.acc, d.access(e, true))
	}
	// One pass over the stored reads: a read ordered before this write is
	// superseded (cleared, to bound state growth); an unordered read from
	// another thread races and stays stored.
	for tid, rd := range s.reads {
		if me.HappensBefore(int(tid), rd.tick) {
			delete(s.reads, tid)
			continue
		}
		if rd.valid && tid != e.TID {
			d.report(m, rd.acc, d.access(e, true))
		}
	}
	s.write = lastAccess{
		tid: e.TID, tick: me.Get(int(e.TID)), acc: d.access(e, true), valid: true,
	}
}

func (d *Detector) report(m *interp.Machine, prev, cur Access) {
	addrName := m.Mem().NameFor(cur.Addr)
	if d.Benign.suppresses(addrName, prev.Instr, cur.Instr) {
		return
	}
	r := &Report{Prev: prev, Cur: cur, AddrName: addrName, Count: 1}
	if existing, ok := d.byID[r.ID()]; ok {
		existing.Count++
		return
	}
	d.byID[r.ID()] = r
	d.order = append(d.order, r)
}
