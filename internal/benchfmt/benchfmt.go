// Package benchfmt distills `go test -json` streams into the compact
// benchmark summary the repo tracks across PRs: one row per benchmark
// with ns/op and (when -benchmem was on) B/op and allocs/op. The
// Makefile's bench targets leave raw test2json streams in BENCH_*.json;
// `make bench-summary` folds them into BENCH_summary.json so the perf
// trajectory is machine-readable without re-parsing test2json.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Row is one benchmark result. Source is the stream it came from (the
// BENCH_*.json basename), so the same benchmark appearing in several
// ablation files keeps one row per file. HasMem reports whether the
// B/op and allocs/op columns were present (-benchmem).
type Row struct {
	Source      string  `json:"source"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem"`
}

// testEvent is the subset of test2json's event schema we consume.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// ParseStream extracts benchmark result rows from one newline-delimited
// test2json stream. Benchmark output can be split across events, so
// output is reassembled into lines first. A benchmark run with -count>1
// keeps its last result (the convention benchstat-style tools use for
// "the stream's final word"). Non-JSON lines are ignored so plain
// `go test -bench` output also parses.
func ParseStream(source string, r io.Reader) ([]Row, error) {
	rows, _, err := parseStream(source, r)
	return rows, err
}

// ParseStreamStats is ParseStream plus an account of malformed lines: how
// many lines looked like test2json events (leading '{') but failed to
// decode — the shape a truncated or interleaved stream leaves behind. On
// a scan error the rows parsed so far are still returned, so a lenient
// caller can keep the salvageable prefix of a truncated stream.
func ParseStreamStats(source string, r io.Reader) (rows []Row, badLines int, err error) {
	return parseStream(source, r)
}

func parseStream(source string, r io.Reader) ([]Row, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pending strings.Builder
	byName := map[string]Row{}
	var order []string
	bad := 0
	addLine := func(line string) {
		row, ok := parseResultLine(source, line)
		if !ok {
			return
		}
		if _, seen := byName[row.Name]; !seen {
			order = append(order, row.Name)
		}
		byName[row.Name] = row
	}
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) > 0 && raw[0] == '{' {
			var ev testEvent
			if json.Unmarshal(raw, &ev) != nil {
				bad++
				continue
			}
			if ev.Action != "output" {
				continue
			}
			pending.WriteString(ev.Output)
			for {
				s := pending.String()
				nl := strings.IndexByte(s, '\n')
				if nl < 0 {
					break
				}
				addLine(s[:nl])
				pending.Reset()
				pending.WriteString(s[nl+1:])
			}
			continue
		}
		addLine(string(raw))
	}
	scanErr := sc.Err()
	addLine(pending.String())
	rows := make([]Row, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	if scanErr != nil {
		return rows, bad, fmt.Errorf("benchfmt: scan %s: %w", source, scanErr)
	}
	return rows, bad, nil
}

// parseResultLine parses one `BenchmarkName-8   100   123 ns/op ...`
// result line (the format of testing.BenchmarkResult.String).
func parseResultLine(source, line string) (Row, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Row{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return Row{}, false // second field must be the iteration count
	}
	row := Row{Source: source, Name: fields[0]}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Row{}, false
			}
			row.NsPerOp = f
			sawNs = true
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Row{}, false
			}
			row.BytesPerOp = n
			row.HasMem = true
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Row{}, false
			}
			row.AllocsPerOp = n
			row.HasMem = true
		}
	}
	if !sawNs {
		return Row{}, false
	}
	return row, true
}

// Summarize parses every given BENCH_*.json stream into rows, ordered
// by (source, appearance). Sources are keyed by basename so the summary
// is path-independent.
func Summarize(paths []string) ([]Row, error) {
	sort.Strings(paths)
	var rows []Row
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: %w", err)
		}
		base := p
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		got, err := ParseStream(base, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, got...)
	}
	return rows, nil
}

// Skipped accounts for what SummarizeLenient dropped: whole inputs that
// could not be opened (a bench target that never ran leaves its
// BENCH_*.json missing) and individual malformed or truncated test2json
// lines (an interrupted bench run leaves a half-written tail).
type Skipped struct {
	Files int // inputs missing or unreadable
	Lines int // malformed test2json lines across all read inputs
}

// Any reports whether anything was skipped.
func (s Skipped) Any() bool { return s.Files > 0 || s.Lines > 0 }

// String renders the skip account for operator output.
func (s Skipped) String() string {
	return fmt.Sprintf("%d unreadable input(s), %d malformed line(s)", s.Files, s.Lines)
}

// SummarizeLenient is Summarize for dirty inputs: a missing or unreadable
// path is counted and skipped instead of failing the whole summary, a
// malformed line is counted and skipped, and a stream that dies mid-scan
// contributes the rows parsed before the damage. `make bench-summary`
// uses this so one interrupted ablation cannot zero out the perf record.
func SummarizeLenient(paths []string) ([]Row, Skipped) {
	sort.Strings(paths)
	var rows []Row
	var sk Skipped
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			sk.Files++
			continue
		}
		base := p
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		got, bad, err := ParseStreamStats(base, f)
		f.Close()
		sk.Lines += bad
		if err != nil {
			// Scan-level damage (e.g. an absurdly long line): keep the
			// salvageable prefix but account for the broken input.
			sk.Files++
		}
		rows = append(rows, got...)
	}
	return rows, sk
}

// WriteSummary emits the rows as indented JSON (stable order, trailing
// newline) — the BENCH_summary.json format.
func WriteSummary(w io.Writer, rows []Row) error {
	if rows == nil {
		rows = []Row{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
