package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseStreamTest2JSON(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		`{"Action":"output","Package":"p","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkAlpha-8 \t"}`,
		`{"Action":"output","Package":"p","Output":"    1809\t    735508 ns/op\t  328970 B/op\t      84 allocs/op\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkBeta \t 10 \t 123.5 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"--- PASS: TestUnrelated\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	rows, err := ParseStream("BENCH_x.json", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{Source: "BENCH_x.json", Name: "BenchmarkAlpha-8", NsPerOp: 735508, BytesPerOp: 328970, AllocsPerOp: 84, HasMem: true},
		{Source: "BENCH_x.json", Name: "BenchmarkBeta", NsPerOp: 123.5},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %d rows", rows, len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestParseStreamKeepsLastOfRepeatedRuns(t *testing.T) {
	stream := "BenchmarkX 10 100 ns/op\nBenchmarkX 20 90 ns/op\n"
	rows, err := ParseStream("s", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].NsPerOp != 90 {
		t.Fatalf("rows = %+v, want one row at 90 ns/op", rows)
	}
}

func TestParseStreamIgnoresNonResults(t *testing.T) {
	stream := strings.Join([]string{
		"BenchmarkNotAResult",           // no fields
		"BenchmarkAlso x 1 ns/op",       // bad iteration count
		"Benchmark_ok 5 2 widgets/op",   // no ns/op pair
		"ok  \tgithub.com/x\t0.5s",      // summary line
		"Benchmark_real 5 2.5 ns/op ok", // trailing junk is fine
	}, "\n")
	rows, err := ParseStream("s", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "Benchmark_real" || rows[0].NsPerOp != 2.5 {
		t.Fatalf("rows = %+v, want only Benchmark_real", rows)
	}
}

// TestParseStreamStatsCountsMalformed: a '{'-prefixed line that is not a
// decodable test2json event (the tail of an interrupted run) is counted
// and skipped while every intact result around it still parses.
func TestParseStreamStatsCountsMalformed(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"p","Output":"BenchmarkOK 10 5 ns/op\n"}`,
		`{"Action":"output","Package":"p","Out`, // truncated mid-event
		`{not json at all`,
		`{"Action":"output","Package":"p","Output":"BenchmarkAfter 10 6 ns/op\n"}`,
	}, "\n")
	rows, bad, err := ParseStreamStats("s", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 2 {
		t.Errorf("bad lines = %d, want 2", bad)
	}
	if len(rows) != 2 || rows[0].Name != "BenchmarkOK" || rows[1].Name != "BenchmarkAfter" {
		t.Errorf("rows = %+v, want the two intact results", rows)
	}
}

// TestSummarizeLenientFixtures: the committed fixtures exercise both skip
// cases — a truncated stream keeps its salvageable rows with the damage
// counted, and a missing input is counted instead of failing.
func TestSummarizeLenientFixtures(t *testing.T) {
	rows, sk := SummarizeLenient([]string{
		"testdata/BENCH_truncated.json",
		"testdata/BENCH_clean.json",
		"testdata/BENCH_does_not_exist.json",
	})
	if sk.Files != 1 {
		t.Errorf("skipped files = %d, want 1 (the missing input)", sk.Files)
	}
	if sk.Lines != 2 {
		t.Errorf("skipped lines = %d, want 2 (the truncated events)", sk.Lines)
	}
	if !sk.Any() {
		t.Error("Skipped.Any() = false with skips recorded")
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Name] = r.Source
	}
	for name, src := range map[string]string{
		"BenchmarkClean-8":     "BENCH_clean.json",
		"BenchmarkSalvaged-8":  "BENCH_truncated.json",
		"BenchmarkAfterDamage": "BENCH_truncated.json",
	} {
		if got[name] != src {
			t.Errorf("row %s: source = %q, want %q (rows: %+v)", name, got[name], src, rows)
		}
	}
	if len(rows) != 3 {
		t.Errorf("rows = %+v, want exactly 3", rows)
	}
}

// TestSummarizeStrictStillFails pins the strict API: a missing input is
// still an error there, so existing callers keep their contract.
func TestSummarizeStrictStillFails(t *testing.T) {
	if _, err := Summarize([]string{"testdata/BENCH_does_not_exist.json"}); err == nil {
		t.Error("Summarize accepted a missing input")
	}
}

func TestWriteSummaryRoundTrips(t *testing.T) {
	in := []Row{
		{Source: "BENCH_a.json", Name: "BenchmarkA", NsPerOp: 1.5, BytesPerOp: 2, AllocsPerOp: 3, HasMem: true},
		{Source: "BENCH_b.json", Name: "BenchmarkB", NsPerOp: 7},
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("summary does not end with a newline")
	}
	var out []Row
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows: %+v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("row %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	buf.Reset()
	if err := WriteSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty summary = %q, want []", got)
	}
}
