package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseStreamTest2JSON(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		`{"Action":"output","Package":"p","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkAlpha-8 \t"}`,
		`{"Action":"output","Package":"p","Output":"    1809\t    735508 ns/op\t  328970 B/op\t      84 allocs/op\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkBeta \t 10 \t 123.5 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"--- PASS: TestUnrelated\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	rows, err := ParseStream("BENCH_x.json", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{Source: "BENCH_x.json", Name: "BenchmarkAlpha-8", NsPerOp: 735508, BytesPerOp: 328970, AllocsPerOp: 84, HasMem: true},
		{Source: "BENCH_x.json", Name: "BenchmarkBeta", NsPerOp: 123.5},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %d rows", rows, len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestParseStreamKeepsLastOfRepeatedRuns(t *testing.T) {
	stream := "BenchmarkX 10 100 ns/op\nBenchmarkX 20 90 ns/op\n"
	rows, err := ParseStream("s", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].NsPerOp != 90 {
		t.Fatalf("rows = %+v, want one row at 90 ns/op", rows)
	}
}

func TestParseStreamIgnoresNonResults(t *testing.T) {
	stream := strings.Join([]string{
		"BenchmarkNotAResult",           // no fields
		"BenchmarkAlso x 1 ns/op",       // bad iteration count
		"Benchmark_ok 5 2 widgets/op",   // no ns/op pair
		"ok  \tgithub.com/x\t0.5s",      // summary line
		"Benchmark_real 5 2.5 ns/op ok", // trailing junk is fine
	}, "\n")
	rows, err := ParseStream("s", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "Benchmark_real" || rows[0].NsPerOp != 2.5 {
		t.Fatalf("rows = %+v, want only Benchmark_real", rows)
	}
}

func TestWriteSummaryRoundTrips(t *testing.T) {
	in := []Row{
		{Source: "BENCH_a.json", Name: "BenchmarkA", NsPerOp: 1.5, BytesPerOp: 2, AllocsPerOp: 3, HasMem: true},
		{Source: "BENCH_b.json", Name: "BenchmarkB", NsPerOp: 7},
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("summary does not end with a newline")
	}
	var out []Row
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows: %+v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("row %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	buf.Reset()
	if err := WriteSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty summary = %q, want []", got)
	}
}
