// Package supervise is the pipeline supervisor: it makes worker-pool
// stages crash-safe, cancelable, and degradable. OWL's dynamic stages
// run programs whose crashes are evidence (§6.2 re-executes the target
// to confirm an attack), so a panicking or diverging run must be
// contained — quarantined into a structured record — instead of killing
// the process or silently truncating the result.
//
// A Supervisor scopes one pipeline execution: it carries the root
// context, the per-stage deadline, the retry policy, and the metrics
// collector, and accumulates Quarantined and Degradation records as
// stages close. A StageRun scopes one stage: its ForEach fans jobs over
// a bounded pool where every worker is wrapped in recover(), failed jobs
// retry with exponential backoff, and jobs that cannot start before the
// stage deadline are counted as lost rather than hanging the pipeline.
//
// Determinism contract: quarantine records are collected in run-index
// order and appended stage by stage, retries are keyed per run index,
// and nothing the supervisor records depends on worker count or
// scheduling — so a faulted pipeline under a deterministic fault plan
// (internal/faultinject) produces byte-identical records at any
// -workers value. Wall-clock deadlines are the one nondeterministic
// input; fault-plan tests drive them with context-aware delays that
// lose every run of a stage, which is again deterministic.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
)

// Quarantined records one worker run that faulted (panic or error) and
// exhausted its retry budget. The run's partial output is discarded; the
// rest of the stage proceeds.
type Quarantined struct {
	Stage    string `json:"stage"`
	Run      int    `json:"run"`
	Reason   string `json:"reason"`
	Attempts int    `json:"attempts"`
}

func (q Quarantined) String() string {
	return fmt.Sprintf("quarantined %s run %d after %d attempt(s): %s",
		q.Stage, q.Run, q.Attempts, q.Reason)
}

// Degradation records one stage that lost work: which stage, why, and
// how many runs were lost (quarantined plus skipped/canceled). Later
// stages consume whatever partial results the degraded stage produced.
type Degradation struct {
	Stage    string `json:"stage"`
	Reason   string `json:"reason"` // "timeout", "canceled", or "quarantine"
	RunsLost int    `json:"runs_lost"`
	Detail   string `json:"detail,omitempty"`
}

func (d Degradation) String() string {
	s := fmt.Sprintf("stage %s degraded (%s): %d run(s) lost", d.Stage, d.Reason, d.RunsLost)
	if d.Detail != "" {
		s += " — " + d.Detail
	}
	return s
}

// Config tunes a Supervisor. The zero value supervises with no deadline,
// no retries, and no fault plan.
type Config struct {
	// Ctx is the root context; canceling it stops every stage at the
	// next job boundary (default context.Background()).
	Ctx context.Context
	// StageTimeout is the per-stage deadline (0 = none). Each StageRun
	// derives its context with this timeout from the root.
	StageTimeout time.Duration
	// Retries is the number of extra attempts a faulted run gets before
	// being quarantined (0 = quarantine on first fault).
	Retries int
	// Backoff is the base delay between retry attempts, doubling per
	// attempt (default 1ms). Sleeps are context-aware.
	Backoff time.Duration
	// Faults is the optional deterministic fault plan; workers reach it
	// via StageRun.Inject and StageRun.StepBudget.
	Faults *faultinject.Plan
	// Metrics receives pool instrumentation plus the supervisor counters
	// <prefix>.quarantined / .retries / .timeouts / .degraded_stages.
	Metrics *metrics.Collector
	// MetricsPrefix namespaces the supervisor counters (default "owl").
	MetricsPrefix string
	// CancelOnFault cancels a stage's context as soon as one of its runs
	// is quarantined — the fail-everything-fast pool policy
	// eval.BuildTablesParallel uses so a failed workload releases every
	// worker slot promptly.
	CancelOnFault bool
}

// Supervisor scopes one pipeline execution.
type Supervisor struct {
	cfg Config

	mu          sync.Mutex
	quarantined []Quarantined
	degraded    []Degradation
	retries     int
	timeouts    int
}

// New returns a Supervisor for one pipeline execution.
func New(cfg Config) *Supervisor {
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = time.Millisecond
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "owl"
	}
	return &Supervisor{cfg: cfg}
}

// Ctx returns the root context.
func (s *Supervisor) Ctx() context.Context { return s.cfg.Ctx }

// Err returns the root context's error, if any.
func (s *Supervisor) Err() error { return s.cfg.Ctx.Err() }

// Quarantined returns the quarantine records accumulated so far, in
// stage-then-run order.
func (s *Supervisor) Quarantined() []Quarantined {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantined(nil), s.quarantined...)
}

// Degraded returns the degradation records accumulated so far, one per
// degraded stage, in stage order.
func (s *Supervisor) Degraded() []Degradation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Degradation(nil), s.degraded...)
}

// Counts returns the aggregate quarantine/retry/timeout tallies.
func (s *Supervisor) Counts() (quarantined, retries, timeouts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quarantined), s.retries, s.timeouts
}

// StageRun scopes one stage of the pipeline: a deadline-bounded context,
// a wall timer, and the stage's share of quarantine/loss accounting.
// Obtain with Supervisor.Stage; finish with Close.
type StageRun struct {
	sup    *Supervisor
	name   string
	ctx    context.Context
	cancel context.CancelFunc
	stop   func() // wall timer

	mu          sync.Mutex
	quarantined []Quarantined
	retries     int
	lost        int // runs skipped or canceled before completing
	completed   int
}

// Stage opens a stage: starts its wall timer and derives its context
// (with the per-stage deadline, when configured) from the root.
func (s *Supervisor) Stage(name string) *StageRun {
	st := &StageRun{sup: s, name: name, stop: s.cfg.Metrics.Stage(name)}
	if s.cfg.StageTimeout > 0 {
		st.ctx, st.cancel = context.WithTimeout(s.cfg.Ctx, s.cfg.StageTimeout)
	} else {
		st.ctx, st.cancel = context.WithCancel(s.cfg.Ctx)
	}
	return st
}

// Ctx returns the stage context. Workers pass it to cancellation-aware
// work between interpreter runs.
func (st *StageRun) Ctx() context.Context { return st.ctx }

// Inject is the stage's fault-injection point for the given run index;
// see faultinject.Plan.Point.
func (st *StageRun) Inject(run int) error {
	return st.sup.cfg.Faults.Point(st.ctx, st.name, run)
}

// StepBudget returns the interpreter step budget for the run: the fault
// plan's override, or def.
func (st *StageRun) StepBudget(run int, def int) int {
	return st.sup.cfg.Faults.StepBudget(st.name, run, def)
}

// isCancel reports whether the error is context cancellation — a lost
// run, not a fault, so it is never retried or quarantined.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// panicReason renders a recovered panic value for a quarantine record.
func panicReason(r interface{}) string {
	switch v := r.(type) {
	case *faultinject.Panic:
		return "panic: " + v.String()
	case error:
		return "panic: " + v.Error()
	default:
		return fmt.Sprintf("panic: %v", v)
	}
}

// guarded runs fn for run index idx with recover().
func guarded(ctx context.Context, fn func(ctx context.Context, i int) error, idx int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New(panicReason(r))
		}
	}()
	if e := fn(ctx, idx); e != nil {
		if isCancel(e) {
			return e
		}
		return fmt.Errorf("error: %w", e)
	}
	return nil
}

// runJob executes one job with the retry policy, returning its
// quarantine record (nil on success) and whether it was lost to
// cancellation. retried counts the extra attempts spent.
func (st *StageRun) runJob(idx int, fn func(ctx context.Context, i int) error) (q *Quarantined, lost bool, retried int) {
	cfg := &st.sup.cfg
	attempts := 0
	for {
		if st.ctx.Err() != nil {
			return nil, true, retried
		}
		attempts++
		err := guarded(st.ctx, fn, idx)
		if err == nil {
			return nil, false, retried
		}
		if isCancel(err) {
			return nil, true, retried
		}
		if attempts <= cfg.Retries {
			retried++
			// Exponential backoff before the next attempt, context-aware
			// so a dying stage does not hold its worker slot.
			d := cfg.Backoff << (attempts - 1)
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-st.ctx.Done():
				t.Stop()
				return nil, true, retried
			}
			t.Stop()
			continue
		}
		return &Quarantined{Stage: st.name, Run: idx, Reason: err.Error(), Attempts: attempts}, false, retried
	}
}

// ForEach runs fn(ctx, base+i) for every i in [0,n) over a bounded pool
// of workers, each wrapped in recover() with the retry policy. Jobs that
// cannot start (or are cut short) after the stage context ends are
// counted as lost. Per-run outcomes land in run-index order regardless
// of worker interleaving. It returns the number of jobs that completed.
func (st *StageRun) ForEach(base, n, workers int, fn func(ctx context.Context, i int) error) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	mc := st.sup.cfg.Metrics
	mc.SetWorkers(st.name, workers)

	quar := make([]*Quarantined, n)
	lostFlags := make([]bool, n)
	retriedBy := make([]int, n)
	one := func(i int) {
		start := time.Now()
		q, lost, retried := st.runJob(base+i, fn)
		mc.AddBusy(st.name, time.Since(start))
		quar[i], lostFlags[i], retriedBy[i] = q, lost, retried
		if q != nil && st.sup.cfg.CancelOnFault {
			st.cancel()
		}
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			one(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					one(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	completed := 0
	st.mu.Lock()
	for i := 0; i < n; i++ {
		st.retries += retriedBy[i]
		switch {
		case quar[i] != nil:
			st.quarantined = append(st.quarantined, *quar[i])
		case lostFlags[i]:
			st.lost++
		default:
			completed++
		}
	}
	st.completed += completed
	st.mu.Unlock()
	return completed
}

// Guard runs one inline section under the stage's recover/retry policy
// (run index idx keys fault injection). It reports whether the section
// completed.
func (st *StageRun) Guard(idx int, fn func(ctx context.Context) error) bool {
	return st.ForEach(idx, 1, 1, func(ctx context.Context, _ int) error {
		return fn(ctx)
	}) == 1
}

// Faulted reports whether the stage lost any work so far — quarantined
// runs, or runs lost to cancellation or the stage deadline.
func (st *StageRun) Faulted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.quarantined) > 0 || st.lost > 0
}

// FirstQuarantine returns the earliest quarantine record by run index,
// or nil — the deterministic "first failure" CancelOnFault pools report.
func (st *StageRun) FirstQuarantine() *Quarantined {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first *Quarantined
	for i := range st.quarantined {
		q := &st.quarantined[i]
		if first == nil || q.Run < first.Run {
			first = q
		}
	}
	if first == nil {
		return nil
	}
	cp := *first
	return &cp
}

// Close finishes the stage: stops the wall timer, folds the stage's
// records into the supervisor, bumps the supervisor counters, and
// returns the stage's Degradation record (nil when the stage lost
// nothing). Close must be called exactly once.
func (st *StageRun) Close() *Degradation {
	timedOut := errors.Is(st.ctx.Err(), context.DeadlineExceeded) && st.sup.cfg.Ctx.Err() == nil
	canceled := st.sup.cfg.Ctx.Err() != nil
	st.cancel()
	st.stop()

	st.mu.Lock()
	nq, lost, retries := len(st.quarantined), st.lost, st.retries
	quar := st.quarantined
	st.mu.Unlock()

	var deg *Degradation
	if nq > 0 || lost > 0 {
		deg = &Degradation{Stage: st.name, RunsLost: nq + lost}
		switch {
		case timedOut:
			deg.Reason = "timeout"
			deg.Detail = fmt.Sprintf("stage deadline %s exceeded", st.sup.cfg.StageTimeout)
		case canceled:
			deg.Reason = "canceled"
		default:
			deg.Reason = "quarantine"
		}
		if deg.Detail == "" && nq > 0 {
			deg.Detail = quar[0].Reason
		}
	}

	s := st.sup
	s.mu.Lock()
	s.quarantined = append(s.quarantined, quar...)
	s.retries += retries
	if timedOut {
		s.timeouts++
	}
	if deg != nil {
		s.degraded = append(s.degraded, *deg)
	}
	s.mu.Unlock()

	mc := s.cfg.Metrics
	pfx := s.cfg.MetricsPrefix
	if nq > 0 {
		mc.Count(pfx+".quarantined", int64(nq))
	}
	if retries > 0 {
		mc.Count(pfx+".retries", int64(retries))
	}
	if timedOut {
		mc.Count(pfx+".timeouts", 1)
	}
	if deg != nil {
		mc.Count(pfx+".degraded_stages", 1)
	}
	return deg
}

// FaultErr renders the stage's failure as an error naming the stage —
// what fail-fast pipelines return instead of degrading.
func (st *StageRun) FaultErr() error {
	st.mu.Lock()
	nq, lost := len(st.quarantined), st.lost
	var first string
	if nq > 0 {
		first = st.quarantined[0].Reason
	}
	st.mu.Unlock()
	// Wrap the context error where one is the cause, so callers can
	// errors.Is-distinguish a sibling's cancellation from a real fault.
	switch {
	case errors.Is(st.ctx.Err(), context.DeadlineExceeded):
		return fmt.Errorf("stage %s timed out, %d run(s) lost: %w", st.name, nq+lost, st.ctx.Err())
	case nq > 0:
		return fmt.Errorf("stage %s faulted: %d run(s) quarantined (first: %s)", st.name, nq, first)
	case st.ctx.Err() != nil && lost > 0:
		return fmt.Errorf("stage %s canceled, %d run(s) lost: %w", st.name, lost, st.ctx.Err())
	case lost > 0:
		return fmt.Errorf("stage %s lost %d run(s)", st.name, lost)
	default:
		return nil
	}
}
