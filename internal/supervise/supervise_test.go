package supervise

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
)

// TestForEachQuarantinesPanicsDeterministically runs the same panicking
// job set under several worker counts and checks the quarantine records
// come out byte-identical and in run-index order.
func TestForEachQuarantinesPanicsDeterministically(t *testing.T) {
	render := func(workers int) string {
		sup := New(Config{})
		st := sup.Stage("stage")
		st.ForEach(0, 10, workers, func(_ context.Context, i int) error {
			if i == 2 || i == 7 {
				panic(fmt.Sprintf("boom %d", i))
			}
			if i == 4 {
				return errors.New("spurious")
			}
			return nil
		})
		deg := st.Close()
		var b strings.Builder
		for _, q := range sup.Quarantined() {
			fmt.Fprintf(&b, "%s\n", q)
		}
		if deg != nil {
			fmt.Fprintf(&b, "%s\n", deg)
		}
		return b.String()
	}
	base := render(1)
	if !strings.Contains(base, "boom 2") || !strings.Contains(base, "spurious") {
		t.Fatalf("missing quarantine records:\n%s", base)
	}
	for _, w := range []int{2, 4, 8} {
		if got := render(w); got != base {
			t.Errorf("workers=%d records differ:\n%s\nvs baseline\n%s", w, got, base)
		}
	}
}

// TestRetryRecoversTransientFault checks a Times-bounded fault is
// retried into success and counted, not quarantined.
func TestRetryRecoversTransientFault(t *testing.T) {
	mc := metrics.New()
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: "stage", Run: 3, Kind: faultinject.KindError, Times: 1},
	}}
	sup := New(Config{Retries: 1, Faults: plan, Metrics: mc})
	st := sup.Stage("stage")
	completed := st.ForEach(0, 5, 2, func(_ context.Context, i int) error {
		return st.Inject(i)
	})
	if deg := st.Close(); deg != nil {
		t.Fatalf("degraded despite retry: %s", deg)
	}
	if completed != 5 {
		t.Fatalf("completed = %d, want 5", completed)
	}
	q, retries, timeouts := sup.Counts()
	if q != 0 || retries != 1 || timeouts != 0 {
		t.Fatalf("counts = (%d quarantined, %d retries, %d timeouts), want (0, 1, 0)", q, retries, timeouts)
	}
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "owl.quarantined" {
			t.Fatalf("owl.quarantined emitted on a fully retried run")
		}
	}
}

// TestRetriesExhaustedQuarantines checks a persistent fault survives the
// retry budget and records the attempt count.
func TestRetriesExhaustedQuarantines(t *testing.T) {
	sup := New(Config{Retries: 2, Backoff: time.Microsecond})
	st := sup.Stage("stage")
	var calls atomic.Int32
	st.ForEach(0, 1, 1, func(context.Context, int) error {
		calls.Add(1)
		return errors.New("always")
	})
	st.Close()
	qs := sup.Quarantined()
	if len(qs) != 1 || qs[0].Attempts != 3 {
		t.Fatalf("quarantined = %+v, want one record with 3 attempts", qs)
	}
	if calls.Load() != 3 {
		t.Fatalf("fn called %d times, want 3", calls.Load())
	}
}

// TestStageTimeoutLosesUnstartedRuns drives a stage past its deadline
// with context-aware blocking jobs and checks the loss accounting.
func TestStageTimeoutLosesUnstartedRuns(t *testing.T) {
	mc := metrics.New()
	sup := New(Config{StageTimeout: 30 * time.Millisecond, Metrics: mc})
	st := sup.Stage("stage")
	st.ForEach(0, 4, 2, func(ctx context.Context, i int) error {
		if i < 2 {
			return nil // fast jobs beat the deadline
		}
		<-ctx.Done()
		return ctx.Err()
	})
	deg := st.Close()
	if deg == nil || deg.Reason != "timeout" || deg.RunsLost != 2 {
		t.Fatalf("degradation = %+v, want timeout with 2 runs lost", deg)
	}
	_, _, timeouts := sup.Counts()
	if timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", timeouts)
	}
	found := map[string]int64{}
	for _, c := range mc.Snapshot().Counters {
		found[c.Name] = c.Value
	}
	if found["owl.timeouts"] != 1 || found["owl.degraded_stages"] != 1 {
		t.Fatalf("counters = %v, want owl.timeouts=1 owl.degraded_stages=1", found)
	}
}

// TestCancelOnFaultStopsSiblings checks the eval-pool policy: the first
// failure cancels the stage context so blocked siblings exit promptly.
func TestCancelOnFaultStopsSiblings(t *testing.T) {
	sup := New(Config{CancelOnFault: true})
	st := sup.Stage("stage")
	start := time.Now()
	st.ForEach(0, 3, 3, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("first failure")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return nil
		}
	})
	st.Close()
	if time.Since(start) > 10*time.Second {
		t.Fatal("siblings did not observe the fault cancellation")
	}
	fq := st.FirstQuarantine()
	if fq == nil || fq.Run != 0 || !strings.Contains(fq.Reason, "first failure") {
		t.Fatalf("FirstQuarantine = %+v", fq)
	}
}

// TestFaultErrNamesStage pins the fail-fast error text.
func TestFaultErrNamesStage(t *testing.T) {
	sup := New(Config{})
	st := sup.Stage("owl.detect")
	st.ForEach(0, 2, 1, func(_ context.Context, i int) error {
		if i == 1 {
			panic("kaboom")
		}
		return nil
	})
	st.Close()
	err := st.FaultErr()
	if err == nil || !strings.Contains(err.Error(), "owl.detect") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("FaultErr = %v, want stage name and reason", err)
	}
}

// TestGuardRecovers checks the inline-section guard.
func TestGuardRecovers(t *testing.T) {
	sup := New(Config{})
	st := sup.Stage("stage")
	if ok := st.Guard(5, func(context.Context) error { panic("inline") }); ok {
		t.Fatal("Guard reported success for a panicking section")
	}
	if ok := st.Guard(6, func(context.Context) error { return nil }); !ok {
		t.Fatal("Guard reported failure for a clean section")
	}
	st.Close()
	qs := sup.Quarantined()
	if len(qs) != 1 || qs[0].Run != 5 {
		t.Fatalf("quarantined = %+v, want one record at run 5", qs)
	}
}

// TestRootCancelMarksRunsLost checks cooperative whole-pipeline
// cancellation: a canceled root loses the stage's unstarted runs and
// degrades with reason "canceled".
func TestRootCancelMarksRunsLost(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := New(Config{Ctx: ctx})
	st := sup.Stage("stage")
	ran := 0
	st.ForEach(0, 3, 1, func(context.Context, int) error {
		ran++
		return nil
	})
	deg := st.Close()
	if ran != 0 {
		t.Fatalf("%d runs started under a canceled root", ran)
	}
	if deg == nil || deg.Reason != "canceled" || deg.RunsLost != 3 {
		t.Fatalf("degradation = %+v, want canceled with 3 runs lost", deg)
	}
}
