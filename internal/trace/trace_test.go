package trace

import (
	"path/filepath"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

const racySrc = `
module racy

global @x = 0

func @worker(%v) {
entry:
  store %v, @x
  ret 0
}
func @main() {
entry:
  %t1 = call @spawn(@worker, 1)
  %t2 = call @spawn(@worker, 2)
  %r1 = call @join(%t1)
  %r2 = call @join(%t2)
  %v = load @x
  call @print(%v)
  ret 0
}
`

func TestRoundTripReplayReproducesRun(t *testing.T) {
	mod := ir.MustParse("racy.oir", racySrc)
	cfg := interp.Config{Module: mod, Sched: sched.NewRandom(42), MaxSteps: 10000}
	m, err := interp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Run()

	rec := FromRun(cfg, orig, "seed 42 run")
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Note != "seed 42 run" || rec2.ModuleName != "racy" {
		t.Errorf("metadata lost: %+v", rec2)
	}

	replayCfg, replay, err := rec2.Config(mod)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := interp.New(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m2.Run()
	if replay.Diverged {
		t.Error("replay diverged")
	}
	if len(res.Output) != 1 || res.Output[0] != orig.Output[0] {
		t.Errorf("replay output %v != original %v", res.Output, orig.Output)
	}
	if len(res.Schedule) != len(orig.Schedule) {
		t.Errorf("replay schedule length %d != %d", len(res.Schedule), len(orig.Schedule))
	}
}

func TestSaveLoad(t *testing.T) {
	mod := ir.MustParse("racy.oir", racySrc)
	cfg := interp.Config{Module: mod, Sched: sched.NewRandom(7), MaxSteps: 10000,
		Inputs: []int64{3, 4}}
	m, err := interp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()

	path := filepath.Join(t.TempDir(), "run.json")
	if err := FromRun(cfg, res, "").Save(path); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Schedule) != len(res.Schedule) {
		t.Errorf("schedule not preserved")
	}
	if len(rec.Inputs) != 2 || rec.Inputs[0] != 3 {
		t.Errorf("inputs not preserved: %v", rec.Inputs)
	}
}

func TestReplayRejectsWrongModule(t *testing.T) {
	mod := ir.MustParse("racy.oir", racySrc)
	rec := &Recording{ModuleName: "other"}
	if _, _, err := rec.Config(mod); err == nil {
		t.Error("want module-name mismatch error")
	}
	if _, _, err := rec.Config(nil); err == nil {
		t.Error("want nil-module error")
	}
}

// Regression: a hand-edited or corrupted recording (negative or absurd
// thread IDs in the schedule) must replay without panicking — the replay
// scheduler falls back and flags the divergence instead.
func TestCorruptedScheduleReplaysWithoutPanic(t *testing.T) {
	mod := ir.MustParse("racy.oir", racySrc)
	rec, err := Unmarshal([]byte(
		`{"module":"racy","schedule":[-1,-99,0,42,0,-7,1,2,0,0]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, replay, err := rec.Config(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSteps = 10000
	m, err := interp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if !replay.Diverged {
		t.Error("corrupted schedule should be flagged as diverged")
	}
	if len(res.Output) != 1 {
		t.Errorf("program did not complete under corrupted replay: %v", res.Output)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/no/such/file.json"); err == nil {
		t.Error("want read error")
	}
	if _, err := Unmarshal([]byte("{broken")); err == nil {
		t.Error("want decode error")
	}
}
