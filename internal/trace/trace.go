// Package trace serializes witness schedules. OWL's value to a developer
// is not just "there is a race" but a reproducible demonstration; a
// Recording captures everything a deterministic re-execution needs — the
// module identity, the inputs, and the exact thread schedule — as JSON, so
// a racy run found on one machine replays bit-for-bit on another.
package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
)

// Recording is a replayable run description.
type Recording struct {
	// ModuleName identifies the module (sanity check on replay).
	ModuleName string `json:"module"`
	// Entry is the entry function.
	Entry string `json:"entry"`
	// Args and Inputs reproduce the program configuration.
	Args   []int64 `json:"args,omitempty"`
	Inputs []int64 `json:"inputs,omitempty"`
	// Schedule is the exact thread-choice sequence.
	Schedule []interp.ThreadID `json:"schedule"`
	// MaxSteps bounds the replay.
	MaxSteps int `json:"maxSteps,omitempty"`
	// Note is free-form provenance ("race verified on @dying, seed 3").
	Note string `json:"note,omitempty"`
}

// FromRun builds a recording from a finished machine's result.
func FromRun(cfg interp.Config, res *interp.Result, note string) *Recording {
	name := ""
	if cfg.Module != nil {
		name = cfg.Module.Name
	}
	return &Recording{
		ModuleName: name,
		Entry:      cfg.Entry,
		Args:       append([]int64(nil), cfg.Args...),
		Inputs:     append([]int64(nil), cfg.Inputs...),
		Schedule:   append([]interp.ThreadID(nil), res.Schedule...),
		MaxSteps:   cfg.MaxSteps,
		Note:       note,
	}
}

// Marshal renders the recording as indented JSON.
func (r *Recording) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Unmarshal parses a recording.
func Unmarshal(data []byte) (*Recording, error) {
	var r Recording
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("trace: decode recording: %w", err)
	}
	return &r, nil
}

// Save writes the recording to a file.
func (r *Recording) Save(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: save %s: %w", path, err)
	}
	return nil
}

// Load reads a recording from a file.
func Load(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return Unmarshal(data)
}

// Config builds the interp configuration replaying this recording against
// the given (already parsed and frozen) module. The returned *sched.Replay
// exposes Diverged after the run; the caller may attach observers or
// breakpoints before running.
func (r *Recording) Config(mod *ir.Module) (interp.Config, *sched.Replay, error) {
	if mod == nil || !mod.Frozen() {
		return interp.Config{}, nil, fmt.Errorf("trace: replay needs a frozen module")
	}
	if r.ModuleName != "" && mod.Name != r.ModuleName {
		return interp.Config{}, nil, fmt.Errorf(
			"trace: recording is for module %q, got %q", r.ModuleName, mod.Name)
	}
	replay := sched.NewReplay(r.Schedule)
	return interp.Config{
		Module:   mod,
		Entry:    r.Entry,
		Args:     append([]int64(nil), r.Args...),
		Inputs:   append([]int64(nil), r.Inputs...),
		MaxSteps: r.MaxSteps,
		Sched:    replay,
	}, replay, nil
}
