// Package audit implements the paper's first envisioned application of
// OWL (§7.2): runtime intrusion/anomaly detection restricted to the
// vulnerable program paths OWL identified. A full monitor audits every
// event a program produces; a Scope built from OWL findings audits only
// the functions on the bug-to-attack propagation paths, the corrupted
// branches, and the vulnerable sites — the paper's "greatly reduce the
// amount of program paths that need to be audited and improve
// performance".
package audit

import (
	"fmt"
	"sort"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vuln"
)

// Scope is the set of program locations worth auditing.
type Scope struct {
	funcs map[string]bool
	// sites and branches are audited at instruction granularity.
	sites    map[*ir.Instr]bool
	branches map[*ir.Instr]bool
}

// NewScope builds an audit scope from OWL findings: every function on a
// propagation path, every hint branch, and every vulnerable site.
func NewScope(findings []*vuln.Finding) *Scope {
	s := &Scope{
		funcs:    make(map[string]bool),
		sites:    make(map[*ir.Instr]bool),
		branches: make(map[*ir.Instr]bool),
	}
	for _, f := range findings {
		for _, fn := range f.FnPath {
			s.funcs[fn] = true
		}
		if f.Site != nil {
			s.sites[f.Site] = true
			if f.Site.Fn != nil {
				s.funcs[f.Site.Fn.Name] = true
			}
		}
		for _, br := range f.Branches {
			s.branches[br] = true
			if br.Fn != nil {
				s.funcs[br.Fn.Name] = true
			}
		}
	}
	return s
}

// Funcs returns the audited function names, sorted.
func (s *Scope) Funcs() []string {
	out := make([]string, 0, len(s.funcs))
	for fn := range s.funcs {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether the instruction falls inside the scope.
func (s *Scope) Covers(in *ir.Instr) bool {
	if in == nil {
		return false
	}
	if s.sites[in] || s.branches[in] {
		return true
	}
	return in.Fn != nil && s.funcs[in.Fn.Name]
}

// Record is one audited event.
type Record struct {
	Kind  interp.EventKind
	Instr *ir.Instr
	TID   interp.ThreadID
	Val   int64
	// SiteHit marks the event as executing a vulnerable site — the alarm
	// an intrusion detector would raise on.
	SiteHit bool
}

// Monitor is an interpreter observer auditing events. With a nil Scope it
// audits everything (the baseline the paper's comparison needs); with an
// OWL-derived Scope it audits only the vulnerable paths.
type Monitor struct {
	Scope *Scope

	// Seen counts every event offered; Audited counts those recorded.
	Seen    int
	Audited int
	Records []Record
	// KeepRecords controls whether audited events are stored (benchmarks
	// only need the counters).
	KeepRecords bool
}

var _ interp.Observer = (*Monitor)(nil)
var _ interp.StackPolicy = (*Monitor)(nil)

// NeedsStack implements interp.StackPolicy: the monitor records
// instructions and values, never call stacks, so the machine can skip
// stack capture entirely when only a monitor is attached.
func (m *Monitor) NeedsStack(interp.EventKind) bool { return false }

// NewMonitor returns a monitor over the given scope (nil = audit all).
func NewMonitor(scope *Scope) *Monitor {
	return &Monitor{Scope: scope, KeepRecords: true}
}

// OnEvent implements interp.Observer.
func (m *Monitor) OnEvent(_ *interp.Machine, e interp.Event) {
	switch e.Kind {
	case interp.EvRead, interp.EvWrite, interp.EvBranch, interp.EvCall, interp.EvFree:
	default:
		return
	}
	m.Seen++
	if m.Scope != nil && !m.Scope.Covers(e.Instr) {
		return
	}
	m.Audited++
	if m.KeepRecords {
		m.Records = append(m.Records, Record{
			Kind: e.Kind, Instr: e.Instr, TID: e.TID, Val: e.Val,
			SiteHit: m.Scope != nil && m.Scope.sites[e.Instr],
		})
	}
}

// SiteHits returns the audited events that executed a vulnerable site.
func (m *Monitor) SiteHits() []Record {
	var out []Record
	for _, r := range m.Records {
		if r.SiteHit {
			out = append(out, r)
		}
	}
	return out
}

// Reduction returns the fraction of events the scope filtered out.
func (m *Monitor) Reduction() float64 {
	if m.Seen == 0 {
		return 0
	}
	return 1 - float64(m.Audited)/float64(m.Seen)
}

func (m *Monitor) String() string {
	return fmt.Sprintf("audited %d of %d events (%.1f%% reduction), %d site hits",
		m.Audited, m.Seen, 100*m.Reduction(), len(m.SiteHits()))
}
