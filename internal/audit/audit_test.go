package audit

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/workloads"
)

// buildScope runs the pipeline on the libsafe workload and builds a scope
// from its findings.
func buildScope(t *testing.T) (*workloads.Workload, *Scope, []int64) {
	t.Helper()
	w := workloads.Get("libsafe", workloads.NoiseLight)
	rec := w.Recipe("attack")
	res, err := owl.Run(owl.Program{
		Module: w.Module, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, owl.Options{DisableVulnVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	var findings []*vuln.Finding
	for _, fs := range res.FindingsByReport {
		findings = append(findings, fs...)
	}
	if len(findings) == 0 {
		t.Fatal("no findings to scope")
	}
	return w, NewScope(findings), rec.Inputs
}

func runMonitored(t *testing.T, w *workloads.Workload, inputs []int64, mon *Monitor) {
	t.Helper()
	m, err := interp.New(interp.Config{
		Module: w.Module, Inputs: inputs, MaxSteps: w.MaxSteps,
		Sched: sched.NewRandom(3), Observers: []interp.Observer{mon},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
}

func TestScopedAuditReducesEvents(t *testing.T) {
	w, scope, inputs := buildScope(t)

	full := NewMonitor(nil)
	full.KeepRecords = false
	runMonitored(t, w, inputs, full)

	scoped := NewMonitor(scope)
	runMonitored(t, w, inputs, scoped)

	if full.Audited != full.Seen {
		t.Errorf("baseline monitor filtered events: %d/%d", full.Audited, full.Seen)
	}
	if scoped.Audited >= scoped.Seen {
		t.Fatalf("scoped monitor audited everything (%d/%d)", scoped.Audited, scoped.Seen)
	}
	if scoped.Reduction() < 0.3 {
		t.Errorf("reduction = %.2f, want >= 0.3 (scope: %v)", scoped.Reduction(), scope.Funcs())
	}
	t.Logf("%s", scoped)
}

func TestScopedAuditStillSeesTheAttackSite(t *testing.T) {
	w, scope, inputs := buildScope(t)
	// Hunt a seed where the bypassed strcpy executes; the scoped monitor
	// must raise a site hit on it.
	for seed := uint64(1); seed <= 40; seed++ {
		mon := NewMonitor(scope)
		m, err := interp.New(interp.Config{
			Module: w.Module, Inputs: inputs, MaxSteps: w.MaxSteps,
			Sched: sched.NewRandom(seed), Observers: []interp.Observer{mon},
		})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if len(res.Faults) > 0 { // the overflow fired on this schedule
			if len(mon.SiteHits()) == 0 {
				t.Fatalf("attack executed but the scoped audit missed the site")
			}
			return
		}
	}
	t.Skip("no seed triggered the attack under monitoring")
}

func TestScopeCovers(t *testing.T) {
	w, scope, _ := buildScope(t)
	var inStackCheck, inNoise bool
	for _, fn := range scope.Funcs() {
		if fn == "stack_check" || fn == "libsafe_strcpy" {
			inStackCheck = true
		}
		if fn == "nz_cnt_worker_0" {
			inNoise = true
		}
	}
	if !inStackCheck {
		t.Errorf("scope %v misses the propagation path", scope.Funcs())
	}
	_ = inNoise // noise workers may appear if their races produced findings
	if scope.Covers(nil) {
		t.Error("nil instruction covered")
	}
	for _, in := range w.Module.Func("noise_wait").Instrs() {
		if scope.Covers(in) {
			t.Errorf("noise_wait should not be in scope")
		}
		break
	}
}
