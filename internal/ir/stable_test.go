package ir

import "testing"

const stableSrc = `
module m

global @x = 0

func @worker(%n) {
entry:
  %v = load @x
  %v2 = add %v, %n
  store %v2, @x
  ret 0
}

func @main() {
entry:
  %t = call @spawn(@worker, 1)
  %r = call @join(%t)
  ret 0
}
`

// TestInstrPosRoundTrip pins the stable-position contract: PosOf on any
// instruction resolves back to the same instruction via InstrAtPos, and
// resolves to the structurally identical instruction in an independent
// re-parse of the same source.
func TestInstrPosRoundTrip(t *testing.T) {
	m1, err := Parse("stable.oir", stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse("stable.oir", stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m1.Funcs {
		for _, in := range f.Instrs() {
			p, ok := PosOf(in)
			if !ok {
				t.Fatalf("PosOf(%s) not ok", in.FullName())
			}
			if got := m1.InstrAtPos(p); got != in {
				t.Fatalf("InstrAtPos(%v) = %v, want identity of %v", p, got, in)
			}
			other := m2.InstrAtPos(p)
			if other == nil || other.String() != in.String() {
				t.Fatalf("re-parse resolve of %v = %v, want structural match of %q", p, other, in.String())
			}
		}
	}
}

// TestInstrPosUnresolvable: a position from a different module resolves
// to nil rather than a wrong instruction.
func TestInstrPosUnresolvable(t *testing.T) {
	m, err := Parse("stable.oir", stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.InstrAtPos(InstrPos{Func: "nope", Index: 0}); got != nil {
		t.Errorf("unknown func resolved to %v", got)
	}
	if got := m.InstrAtPos(InstrPos{Func: "worker", Index: 99}); got != nil {
		t.Errorf("out-of-range index resolved to %v", got)
	}
	if _, ok := PosOf(nil); ok {
		t.Error("PosOf(nil) ok")
	}
}

// TestFingerprintStability: identical source fingerprints identically;
// any textual change moves the fingerprint; unfrozen modules have none.
func TestFingerprintStability(t *testing.T) {
	m1, err := Parse("stable.oir", stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse("stable.oir", stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() == "" || m1.Fingerprint() != m2.Fingerprint() {
		t.Errorf("fingerprints of identical parses differ: %q vs %q", m1.Fingerprint(), m2.Fingerprint())
	}
	if m1.Fingerprint() != m1.Fingerprint() {
		t.Error("fingerprint is not stable across calls")
	}
	m3, err := Parse("stable.oir", stableSrc+"\nglobal @extra = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Fingerprint() == m1.Fingerprint() {
		t.Error("structurally different modules share a fingerprint")
	}
	if NewModule("fresh").Fingerprint() != "" {
		t.Error("unfrozen module has a fingerprint")
	}
}
