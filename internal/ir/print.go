package ir

import (
	"fmt"
	"strings"
)

// Format renders the module in .oir syntax. The output parses back (Parse)
// into a structurally identical module, which the round-trip property test
// exercises.
func (m *Module) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n\n", m.Name)
	for _, g := range m.Globals {
		switch {
		case len(g.InitWords) > 0 && looksLikeString(g.InitWords):
			fmt.Fprintf(&b, "global @%s = %q\n", g.Name, WordsToString(g.InitWords))
		case g.Size > 1:
			fmt.Fprintf(&b, "global @%s [%d]\n", g.Name, g.Size)
		case g.Init != 0:
			fmt.Fprintf(&b, "global @%s = %d\n", g.Name, g.Init)
		default:
			fmt.Fprintf(&b, "global @%s\n", g.Name)
		}
	}
	if len(m.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		params := make([]string, len(f.Params))
		for j, p := range f.Params {
			params[j] = "%" + p
		}
		fmt.Fprintf(&b, "func @%s(%s) {\n", f.Name, strings.Join(params, ", "))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in.String())
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// looksLikeString reports whether the word initializer is a plausible
// NUL-terminated printable string, so Format can emit it as a literal.
func looksLikeString(words []int64) bool {
	if len(words) < 2 || words[len(words)-1] != 0 {
		return false
	}
	for _, w := range words[:len(words)-1] {
		if w < 32 || w > 126 {
			return false
		}
	}
	return true
}

// Loc renders an instruction's report location the way the paper's
// Figure 5 does: "(file:line)".
func (in *Instr) Loc() string {
	return fmt.Sprintf("(%s:%d)", in.Pos.File, in.Pos.Line)
}

// FullName renders "@fn#idx op" for debugging and report chains.
func (in *Instr) FullName() string {
	fn := "?"
	if in.Fn != nil {
		fn = in.Fn.Name
	}
	return fmt.Sprintf("@%s#%d: %s %s", fn, in.Index, in.String(), in.Loc())
}
