// Package ir defines OWL's SSA-form intermediate representation.
//
// The representation mirrors the LLVM subset that the paper's analyses
// consume: loads and stores against an addressable arena, integer
// arithmetic and comparisons, conditional and unconditional branches,
// direct and indirect calls, phi nodes, and pointer arithmetic. Every
// instruction carries a source position so that reports can point at
// "file:line" the way OWL's Figure 5 report does.
//
// Modules can be constructed programmatically with Builder or parsed from
// the textual ".oir" format (see Parse). The textual format round-trips
// through Format.
package ir

import (
	"fmt"
	"strings"
	"sync"
)

// Type is the (deliberately small) type system of the IR. The vulnerability
// verifier reports the type of racing variables (§5.2 of the paper), which
// is the only consumer beyond basic well-formedness checking.
type Type int

// Supported types. TypeInt is a 64-bit integer word; TypePtr is a word
// interpreted as an arena address; TypeFunc is a word holding a function
// reference (used by indirect calls, e.g. the Linux f_op attack).
const (
	TypeVoid Type = iota + 1
	TypeInt
	TypePtr
	TypeFunc
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypePtr:
		return "ptr"
	case TypeFunc:
		return "func"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	OpConst  Op = iota + 1 // %r = const <imm>
	OpLoad                 // %r = load <ptr> — ptr is a register or global
	OpStore                // store <val>, <ptr>
	OpBin                  // %r = <binop> <a>, <b>
	OpCmp                  // %r = icmp <pred> <a>, <b>
	OpBr                   // br <cond>, <then>, <else>
	OpJmp                  // jmp <target>
	OpPhi                  // %r = phi [bb1: a, bb2: b, ...]
	OpCall                 // [%r =] call <callee>(<args...>)
	OpRet                  // ret [<val>]
	OpAlloca               // %r = alloca <n>  — n words, function lifetime
	OpGep                  // %r = gep <base>, <off> — pointer + word offset
	OpAddrOf               // %r = addr @global — address of a global
	OpFunc                 // %r = func @f — function reference value
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBin:
		return "bin"
	case OpCmp:
		return "icmp"
	case OpBr:
		return "br"
	case OpJmp:
		return "jmp"
	case OpPhi:
		return "phi"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	case OpAlloca:
		return "alloca"
	case OpGep:
		return "gep"
	case OpAddrOf:
		return "addr"
	case OpFunc:
		return "func"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// BinKind enumerates binary arithmetic operators.
type BinKind int

// Binary operators. Division by zero is a runtime fault.
const (
	BinAdd BinKind = iota + 1
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
)

var binNames = map[BinKind]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinRem: "rem", BinAnd: "and", BinOr: "or", BinXor: "xor",
	BinShl: "shl", BinShr: "shr",
}

func (b BinKind) String() string {
	if s, ok := binNames[b]; ok {
		return s
	}
	return fmt.Sprintf("BinKind(%d)", int(b))
}

// BinKindFromString parses a binary operator mnemonic.
func BinKindFromString(s string) (BinKind, bool) {
	for k, n := range binNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// CmpPred enumerates comparison predicates. The *U variants compare
// operands as unsigned 64-bit values — the Apache busy-counter attack
// (Figure 8) hinges on an unsigned comparison of an underflowed counter.
type CmpPred int

// Comparison predicates.
const (
	CmpEQ CmpPred = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
)

var predNames = map[CmpPred]string{
	CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le",
	CmpGT: "gt", CmpGE: "ge", CmpULT: "ult", CmpULE: "ule",
	CmpUGT: "ugt", CmpUGE: "uge",
}

func (p CmpPred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("CmpPred(%d)", int(p))
}

// CmpPredFromString parses a comparison predicate mnemonic.
func CmpPredFromString(s string) (CmpPred, bool) {
	for k, n := range predNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	OperandConst  OperandKind = iota + 1 // immediate integer
	OperandReg                           // SSA virtual register, e.g. %x
	OperandGlobal                        // global variable, e.g. @dying
	OperandFunc                          // function reference, e.g. @strcpy
	OperandLabel                         // basic-block label (branch targets)
	OperandString                        // string literal (lowered to a global)
)

// Operand is a use of a value (or a label) inside an instruction.
type Operand struct {
	Kind OperandKind
	Imm  int64  // OperandConst
	Name string // register/global/function/label name (no sigil)
	Str  string // OperandString payload
}

// ConstOp returns an immediate operand.
func ConstOp(v int64) Operand { return Operand{Kind: OperandConst, Imm: v} }

// RegOp returns a virtual-register operand.
func RegOp(name string) Operand { return Operand{Kind: OperandReg, Name: name} }

// GlobalOp returns a global-variable operand.
func GlobalOp(name string) Operand { return Operand{Kind: OperandGlobal, Name: name} }

// FuncOp returns a function-reference operand.
func FuncOp(name string) Operand { return Operand{Kind: OperandFunc, Name: name} }

// LabelOp returns a basic-block label operand.
func LabelOp(name string) Operand { return Operand{Kind: OperandLabel, Name: name} }

// StringOp returns a string-literal operand.
func StringOp(s string) Operand { return Operand{Kind: OperandString, Str: s} }

// IsReg reports whether the operand is the named virtual register.
func (o Operand) IsReg(name string) bool { return o.Kind == OperandReg && o.Name == name }

func (o Operand) String() string {
	switch o.Kind {
	case OperandConst:
		return fmt.Sprintf("%d", o.Imm)
	case OperandReg:
		return "%" + o.Name
	case OperandGlobal:
		return "@" + o.Name
	case OperandFunc:
		return "@" + o.Name
	case OperandLabel:
		return o.Name
	case OperandString:
		return fmt.Sprintf("%q", o.Str)
	default:
		return "<bad-operand>"
	}
}

// Pos is a source position. Modules built with Builder get synthetic
// positions (File = module name, increasing Line per instruction) so every
// instruction is addressable in reports either way.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("line %d", p.Line)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// PhiEdge is one incoming edge of a phi node.
type PhiEdge struct {
	Block string
	Val   Operand
}

// Instr is a single IR instruction. Dst is the defined virtual register
// ("" when the instruction defines nothing). The meaning of Args depends
// on Op; accessor helpers below document the common shapes.
type Instr struct {
	Op   Op
	Dst  string // defined register, "" if none
	Bin  BinKind
	Pred CmpPred
	Args []Operand
	Phis []PhiEdge
	Pos  Pos

	// Index is the instruction's position within its function's flattened
	// instruction list; filled in by Module.Freeze. It uniquely identifies
	// the instruction within the function and is the unit of breakpoints.
	Index int
	// Block and Fn are back-references filled in by Module.Freeze.
	Block *Block
	Fn    *Func
}

// Callee returns the callee operand of a call instruction.
func (in *Instr) Callee() Operand { return in.Args[0] }

// CallArgs returns the argument operands of a call instruction.
func (in *Instr) CallArgs() []Operand { return in.Args[1:] }

// IsCall reports whether the instruction is a call.
func (in *Instr) IsCall() bool { return in.Op == OpCall }

// IsBranch reports whether the instruction is a conditional branch.
func (in *Instr) IsBranch() bool { return in.Op == OpBr }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpJmp || in.Op == OpRet
}

// Uses returns the non-label operands the instruction reads.
func (in *Instr) Uses() []Operand {
	var uses []Operand
	for _, a := range in.Args {
		if a.Kind != OperandLabel {
			uses = append(uses, a)
		}
	}
	for _, pe := range in.Phis {
		uses = append(uses, pe.Val)
	}
	return uses
}

// UsesReg reports whether the instruction reads the given virtual register.
func (in *Instr) UsesReg(name string) bool {
	for _, u := range in.Uses() {
		if u.IsReg(name) {
			return true
		}
	}
	return false
}

// String renders the instruction in .oir syntax (without position).
func (in *Instr) String() string {
	var b strings.Builder
	if in.Dst != "" {
		fmt.Fprintf(&b, "%%%s = ", in.Dst)
	}
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "const %s", in.Args[0])
	case OpLoad:
		fmt.Fprintf(&b, "load %s", in.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", in.Args[0], in.Args[1])
	case OpBin:
		fmt.Fprintf(&b, "%s %s, %s", in.Bin, in.Args[0], in.Args[1])
	case OpCmp:
		fmt.Fprintf(&b, "icmp %s %s, %s", in.Pred, in.Args[0], in.Args[1])
	case OpBr:
		fmt.Fprintf(&b, "br %s, %s, %s", in.Args[0], in.Args[1], in.Args[2])
	case OpJmp:
		fmt.Fprintf(&b, "jmp %s", in.Args[0])
	case OpPhi:
		b.WriteString("phi ")
		for i, pe := range in.Phis {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[%s: %s]", pe.Block, pe.Val)
		}
	case OpCall:
		fmt.Fprintf(&b, "call %s(", in.Args[0])
		for i, a := range in.CallArgs() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case OpRet:
		if len(in.Args) == 0 {
			b.WriteString("ret")
		} else {
			fmt.Fprintf(&b, "ret %s", in.Args[0])
		}
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.Args[0])
	case OpGep:
		fmt.Fprintf(&b, "gep %s, %s", in.Args[0], in.Args[1])
	case OpAddrOf:
		fmt.Fprintf(&b, "addr %s", in.Args[0])
	case OpFunc:
		fmt.Fprintf(&b, "func %s", in.Args[0])
	default:
		fmt.Fprintf(&b, "<bad op %d>", int(in.Op))
	}
	return b.String()
}

// Block is a basic block: a label plus a straight-line instruction list
// ending in a terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Func
}

// Terminator returns the block's final instruction, or nil when the block
// is (still) empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the names of the block's successor blocks.
func (b *Block) Succs() []string {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []string{t.Args[1].Name, t.Args[2].Name}
	case OpJmp:
		return []string{t.Args[0].Name}
	default:
		return nil
	}
}

// Func is an IR function.
type Func struct {
	Name   string
	Params []string // parameter register names (without %)
	Blocks []*Block

	blockIdx map[string]*Block
	flat     []*Instr // all instructions in block order; built by freeze
	Mod      *Module
}

// Block returns the named basic block, or nil.
func (f *Func) Block(name string) *Block {
	return f.blockIdx[name]
}

// Entry returns the function's entry block (the first one).
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Instrs returns all instructions in block order. Only valid after the
// containing module has been frozen.
func (f *Func) Instrs() []*Instr { return f.flat }

// InstrAt returns the instruction with the given flat index, or nil.
func (f *Func) InstrAt(idx int) *Instr {
	if idx < 0 || idx >= len(f.flat) {
		return nil
	}
	return f.flat[idx]
}

// NumInstrs returns the number of instructions in the function.
func (f *Func) NumInstrs() int { return len(f.flat) }

// Global is a module-level variable: Size words of mutable storage,
// optionally initialized (Init applies to word 0 for scalars, or the whole
// array when len(InitWords) > 0).
type Global struct {
	Name      string
	Size      int // words; >= 1
	Init      int64
	InitWords []int64 // optional full initializer
	// ElemType records the declared element type; defaults to TypeInt.
	ElemType Type
}

// Module is a compilation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func

	funcIdx   map[string]*Func
	globalIdx map[string]*Global
	frozen    bool

	lowerMu sync.Mutex
	lowered map[any]any
	fp      string // memoized Fingerprint; guarded by lowerMu
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		funcIdx:   make(map[string]*Func),
		globalIdx: make(map[string]*Global),
	}
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func { return m.funcIdx[name] }

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global { return m.globalIdx[name] }

// AddGlobal appends a global to the module.
func (m *Module) AddGlobal(g *Global) error {
	if m.frozen {
		return fmt.Errorf("module %s: add global %s: module is frozen", m.Name, g.Name)
	}
	if _, dup := m.globalIdx[g.Name]; dup {
		return fmt.Errorf("module %s: duplicate global @%s", m.Name, g.Name)
	}
	if g.Size <= 0 {
		g.Size = 1
	}
	if g.ElemType == 0 {
		g.ElemType = TypeInt
	}
	m.Globals = append(m.Globals, g)
	m.globalIdx[g.Name] = g
	return nil
}

// AddFunc appends a function to the module.
func (m *Module) AddFunc(f *Func) error {
	if m.frozen {
		return fmt.Errorf("module %s: add func %s: module is frozen", m.Name, f.Name)
	}
	if _, dup := m.funcIdx[f.Name]; dup {
		return fmt.Errorf("module %s: duplicate function @%s", m.Name, f.Name)
	}
	m.Funcs = append(m.Funcs, f)
	m.funcIdx[f.Name] = f
	return nil
}

// Frozen reports whether Freeze has completed on this module.
func (m *Module) Frozen() bool { return m.frozen }

// LowerOnce memoizes a lowered form of the module under key: the first
// call per key runs build and caches its result; later calls return the
// cached value. It is the hook back-end compilers (internal/bytecode)
// use to lower a frozen module exactly once no matter how many machines
// run it, and it is safe for concurrent use. A build error is not
// cached, so a failed lowering is retried on the next call.
func (m *Module) LowerOnce(key any, build func() (any, error)) (any, error) {
	if !m.frozen {
		return nil, fmt.Errorf("module %s: lower before freeze", m.Name)
	}
	m.lowerMu.Lock()
	defer m.lowerMu.Unlock()
	if v, ok := m.lowered[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	if m.lowered == nil {
		m.lowered = make(map[any]any)
	}
	m.lowered[key] = v
	return v, nil
}

// Freeze finalizes the module: it indexes blocks, assigns flat instruction
// indices and back-references, and verifies well-formedness. Modules must
// be frozen before they are interpreted or analyzed.
func (m *Module) Freeze() error {
	if m.frozen {
		return nil
	}
	for _, f := range m.Funcs {
		f.Mod = m
		f.blockIdx = make(map[string]*Block, len(f.Blocks))
		f.flat = f.flat[:0]
		for _, b := range f.Blocks {
			if _, dup := f.blockIdx[b.Name]; dup {
				return fmt.Errorf("func @%s: duplicate block %s", f.Name, b.Name)
			}
			f.blockIdx[b.Name] = b
			b.Fn = f
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.Index = len(f.flat)
				in.Block = b
				in.Fn = f
				f.flat = append(f.flat, in)
			}
		}
	}
	if err := m.verify(); err != nil {
		return err
	}
	m.frozen = true
	return nil
}

// MustFreeze is Freeze but panics on error; intended for statically known
// modules (workload models, tests) where a malformed module is a bug.
// The panic value is a typed *Error, so Try (or any recover boundary)
// can turn it back into a returned error.
func (m *Module) MustFreeze() *Module {
	if err := m.Freeze(); err != nil {
		panic(&Error{Op: "freeze", Name: m.Name, Err: err})
	}
	return m
}
