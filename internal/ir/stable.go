// Stable instruction positions. Coverage maps and other analysis state
// key on *Instr identities, which die with the process; persisting such
// state requires re-keying it by positions that survive a round trip
// through disk and a re-parse of the same module. An InstrPos is that
// key: the containing function's name plus the instruction's flat index
// within it, both assigned deterministically by Freeze — two parses of
// identical source yield identical positions.
//
// Positions are only meaningful against the exact module they were
// taken from. Fingerprint gives callers the guard: a content hash of
// the frozen module's canonical text form, cheap to compare before
// re-binding persisted positions against a re-resolved module.
package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// InstrPos is the stable, serializable position of an instruction:
// module-relative function name plus the function-relative flat
// instruction index Freeze assigned. The zero value (empty Func,
// index 0) is not a valid position; use PosOf.
type InstrPos struct {
	Func  string `json:"fn"`
	Index int    `json:"ix"`
}

func (p InstrPos) String() string { return fmt.Sprintf("@%s#%d", p.Func, p.Index) }

// PosOf returns the stable position of an instruction. It reports false
// for a nil instruction or one whose module has not been frozen (no
// back-references yet).
func PosOf(in *Instr) (InstrPos, bool) {
	if in == nil || in.Fn == nil {
		return InstrPos{}, false
	}
	return InstrPos{Func: in.Fn.Name, Index: in.Index}, true
}

// InstrAtPos resolves a stable position against the module, or nil when
// the function is unknown or the index out of range — the signal that
// persisted state was taken from a different module and must be
// discarded rather than silently mis-bound.
func (m *Module) InstrAtPos(p InstrPos) *Instr {
	f := m.Func(p.Func)
	if f == nil {
		return nil
	}
	return f.InstrAt(p.Index)
}

// Fingerprint returns a hex content hash of the frozen module's
// canonical textual form (Format round-trips, so structurally identical
// modules — same functions, blocks, instructions, globals — share a
// fingerprint regardless of how they were constructed). It is the
// cheap precondition for re-binding persisted InstrPos keys: different
// fingerprints mean the positions describe a different program.
// Fingerprint of an unfrozen module returns "" — positions are not
// assigned yet, so there is nothing meaningful to guard.
func (m *Module) Fingerprint() string {
	if !m.frozen {
		return ""
	}
	m.lowerMu.Lock()
	defer m.lowerMu.Unlock()
	if m.fp == "" {
		sum := sha256.Sum256([]byte(m.Format()))
		m.fp = hex.EncodeToString(sum[:])
	}
	return m.fp
}
