package ir

import "testing"

// BenchmarkParse measures .oir parsing throughput on a workload-sized
// module built from repeated function templates.
func BenchmarkParse(b *testing.B) {
	src := "module bench\nglobal @g = 0\n"
	for i := 0; i < 60; i++ {
		src += `
func @fn` + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + `(%x) {
entry:
  %v = load @g
  %c = icmp lt %v, %x
  br %c, yes, no
yes:
  %v2 = add %v, 1
  store %v2, @g
  ret %v2
no:
  ret 0
}
`
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench.oir", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCFG measures dominator/loop/control-dependence analysis.
func BenchmarkBuildCFG(b *testing.B) {
	m := MustParse("bench.oir", `
func @f(%n) {
entry:
  jmp h1
h1:
  %i = phi [entry: 0], [l1: %i2]
  %c1 = icmp lt %i, %n
  br %c1, b1, exit
b1:
  %c2 = icmp eq %i, 7
  br %c2, early, h2
early:
  ret %i
h2:
  %j = phi [b1: 0], [l2: %j2]
  %c3 = icmp lt %j, %n
  br %c3, b2, l1
b2:
  %j2 = add %j, 1
  jmp l2
l2:
  jmp h2
l1:
  %i2 = add %i, 1
  jmp h1
exit:
  ret 0
}
`)
	f := m.Func("f")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCFG(f)
	}
}
