package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `
module sample

global @dying = 0
global @buf [16]
global @msg = "hi"

func @main() {
entry:
  %x = const 41
  %y = add %x, 1
  %c = icmp eq %y, 42
  br %c, yes, no
yes:
  %p = addr @buf
  store %y, %p
  %v = load %p
  call @print(%v)
  ret %v
no:
  jmp done
done:
  %z = phi [yes: %y], [no: 0]
  ret %z
}
`

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse("test.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestParseSample(t *testing.T) {
	m := mustParse(t, sampleSrc)
	if m.Name != "sample" {
		t.Errorf("module name = %q, want sample", m.Name)
	}
	if len(m.Globals) != 3 {
		t.Fatalf("got %d globals, want 3", len(m.Globals))
	}
	if g := m.Global("buf"); g == nil || g.Size != 16 {
		t.Errorf("global buf = %+v, want size 16", g)
	}
	if g := m.Global("msg"); g == nil || WordsToString(g.InitWords) != "hi" {
		t.Errorf("global msg = %+v, want string \"hi\"", g)
	}
	f := m.Func("main")
	if f == nil {
		t.Fatal("missing func main")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(f.Blocks))
	}
	if n := f.NumInstrs(); n != 12 {
		t.Errorf("got %d instrs, want 12", n)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unknown op", "func @f() {\nentry:\n  bogus 1\n  ret\n}", "unknown opcode"},
		{"undefined reg", "func @f() {\nentry:\n  ret %nope\n}", "undefined register"},
		{"undeclared global", "func @f() {\nentry:\n  %x = load @nope\n  ret\n}", "undeclared global"},
		{"bad branch target", "func @f() {\nentry:\n  %c = const 1\n  br %c, a, b\n}", "unknown block"},
		{"terminator mid-block", "func @f() {\nentry:\n  ret\n  ret\n}", "mid-block"},
		{"no terminator", "func @f() {\nentry:\n  %x = const 1\n}", "terminator"},
		{"double def", "func @f() {\nentry:\n  %x = const 1\n  %x = const 2\n  ret\n}", "defined twice"},
		{"missing brace", "func @f() {\nentry:\n  ret\n", "missing closing"},
		{"empty func", "func @f() {\n}", "no blocks"},
		{"dup global", "global @g\nglobal @g", "duplicate global"},
		{"phi bad block", "func @f() {\nentry:\n  %x = phi [zzz: 1]\n  ret\n}", "unknown block"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse("t.oir", tt.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m := mustParse(t, sampleSrc)
	text := m.Format()
	m2, err := Parse("test.oir", text)
	if err != nil {
		t.Fatalf("reparse formatted output: %v\n%s", err, text)
	}
	if m2.Format() != text {
		t.Errorf("format not stable:\nfirst:\n%s\nsecond:\n%s", text, m2.Format())
	}
	if len(m2.Funcs) != len(m.Funcs) || len(m2.Globals) != len(m.Globals) {
		t.Errorf("round trip changed structure")
	}
}

func TestBuilderEquivalence(t *testing.T) {
	b := NewBuilder("built")
	b.Global("g", 1, 7)
	f := b.Func("main")
	f.Block("entry")
	x := f.Load(GlobalOp("g"))
	y := f.Add(x, ConstOp(1))
	f.Store(y, GlobalOp("g"))
	f.Ret(y)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	fn := m.Func("main")
	if fn.NumInstrs() != 4 {
		t.Fatalf("got %d instrs, want 4", fn.NumInstrs())
	}
	for i, in := range fn.Instrs() {
		if in.Index != i {
			t.Errorf("instr %d has Index %d", i, in.Index)
		}
		if in.Pos.Line == 0 {
			t.Errorf("instr %d missing synthetic position", i)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("f")
	f.Ret() // emit outside a block
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "outside a block") {
		t.Errorf("expected outside-a-block error, got %v", err)
	}
}

const loopSrc = `
func @f(%n) {
entry:
  jmp head
head:
  %i = phi [entry: 0], [latch: %i2]
  %c = icmp lt %i, %n
  br %c, body, exit
body:
  %q = icmp eq %i, 3
  br %q, early, latch
early:
  ret %i
latch:
  %i2 = add %i, 1
  jmp head
exit:
  ret 0
}
`

func TestCFGLoops(t *testing.T) {
	m := mustParse(t, loopSrc)
	f := m.Func("f")
	c := BuildCFG(f)
	if len(c.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(c.Loops))
	}
	l := c.Loops[0]
	if l.Header != "head" {
		t.Errorf("loop header = %s, want head", l.Header)
	}
	for _, blk := range []string{"head", "body", "latch"} {
		if !l.Contains(blk) {
			t.Errorf("loop should contain %s", blk)
		}
	}
	if l.Contains("exit") || l.Contains("entry") || l.Contains("early") {
		t.Errorf("loop contains non-body block: %v", l.Blocks)
	}
	exits := l.ExitBranches(f)
	if len(exits) != 2 {
		t.Fatalf("got %d exit branches, want 2 (head and body)", len(exits))
	}
}

func TestCFGDominators(t *testing.T) {
	m := mustParse(t, loopSrc)
	c := BuildCFG(m.Func("f"))
	wants := map[string]string{
		"entry": "",
		"head":  "entry",
		"body":  "head",
		"early": "body",
		"latch": "body",
		"exit":  "head",
	}
	for blk, want := range wants {
		if got := c.Idom[blk]; got != want {
			t.Errorf("idom[%s] = %q, want %q", blk, got, want)
		}
	}
}

func TestCFGCtrlDeps(t *testing.T) {
	m := mustParse(t, loopSrc)
	f := m.Func("f")
	c := BuildCFG(f)

	findBr := func(block string) *Instr {
		t.Helper()
		in := f.Block(block).Terminator()
		if in == nil || in.Op != OpBr {
			t.Fatalf("block %s has no conditional branch", block)
		}
		return in
	}
	headBr := findBr("head")
	bodyBr := findBr("body")
	earlyRet := f.Block("early").Instrs[0]
	latchAdd := f.Block("latch").Instrs[0]

	if !c.IsCtrlDependent(earlyRet, bodyBr) {
		t.Errorf("early ret should be control dependent on body branch")
	}
	if !c.IsCtrlDependent(latchAdd, bodyBr) {
		t.Errorf("latch add should be control dependent on body branch")
	}
	if !c.IsCtrlDependent(bodyBr, headBr) {
		t.Errorf("body branch should be control dependent on head branch")
	}
	// Transitivity: early depends on head through body.
	if !c.IsCtrlDependent(earlyRet, headBr) {
		t.Errorf("early ret should be transitively control dependent on head branch")
	}
	entryJmp := f.Block("entry").Instrs[0]
	if c.IsCtrlDependent(entryJmp, headBr) {
		t.Errorf("entry jmp must not be control dependent on head branch")
	}
}

func TestStringWordsRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "FLUSH PRIVILEGES;"} {
		w := StringToWords(s)
		if got := WordsToString(w); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if w[len(w)-1] != 0 {
			t.Errorf("missing NUL terminator for %q", s)
		}
	}
}

func TestInstrHelpers(t *testing.T) {
	m := mustParse(t, sampleSrc)
	f := m.Func("main")
	var call *Instr
	for _, in := range f.Instrs() {
		if in.IsCall() {
			call = in
		}
	}
	if call == nil {
		t.Fatal("no call found")
	}
	if call.Callee().Name != "print" {
		t.Errorf("callee = %s, want print", call.Callee().Name)
	}
	if len(call.CallArgs()) != 1 {
		t.Errorf("got %d call args, want 1", len(call.CallArgs()))
	}
	if !call.UsesReg("v") {
		t.Errorf("call should use %%v")
	}
}

func TestFrozenModuleRejectsAdds(t *testing.T) {
	m := mustParse(t, sampleSrc)
	if err := m.AddGlobal(&Global{Name: "late", Size: 1}); err == nil {
		t.Error("AddGlobal after freeze should fail")
	}
	if err := m.AddFunc(&Func{Name: "late"}); err == nil {
		t.Error("AddFunc after freeze should fail")
	}
}
