package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a module from its textual ".oir" representation. filename is
// used for positions and error messages.
//
// The grammar, line oriented (";" starts a comment anywhere):
//
//	module <name>
//	global @name [= <int>] | global @name [<size>] | global @name = "str"
//	func @name(%p1, %p2, ...) {
//	label:
//	  %r = const <int>
//	  %r = load <ptr>            ; ptr: %reg or @global
//	  store <val>, <ptr>
//	  %r = add|sub|mul|div|rem|and|or|xor|shl|shr <a>, <b>
//	  %r = icmp eq|ne|lt|le|gt|ge|ult|ule|ugt|uge <a>, <b>
//	  br <cond>, <then>, <else>
//	  jmp <label>
//	  %r = phi [label: val], [label: val], ...
//	  [%r =] call <callee>(<args...>)   ; callee: @name or %reg
//	  ret [<val>]
//	  %r = alloca <n>
//	  %r = gep <base>, <off>
//	  %r = addr @global
//	  %r = func @name
//	}
func Parse(filename, src string) (*Module, error) {
	p := &parser{file: filename, lines: strings.Split(src, "\n")}
	m, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := m.Freeze(); err != nil {
		return nil, fmt.Errorf("%s: %w", filename, err)
	}
	return m, nil
}

// MustParse is Parse but panics on error; for embedded workload sources.
// The panic value is a typed *Error, so Try (or any recover boundary)
// can turn it back into a returned error.
func MustParse(filename, src string) *Module {
	m, err := Parse(filename, src)
	if err != nil {
		panic(&Error{Op: "parse", Name: filename, Err: err})
	}
	return m
}

type parser struct {
	file  string
	lines []string
	ln    int // 0-based index of current line
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.ln+1, fmt.Sprintf(format, args...))
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (p *parser) parse() (*Module, error) {
	m := NewModule(strings.TrimSuffix(p.file, ".oir"))
	for p.ln = 0; p.ln < len(p.lines); p.ln++ {
		line := strings.TrimSpace(stripComment(p.lines[p.ln]))
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "module "):
			m.Name = strings.TrimSpace(strings.TrimPrefix(line, "module "))
		case strings.HasPrefix(line, "global "):
			g, err := p.parseGlobal(strings.TrimPrefix(line, "global "))
			if err != nil {
				return nil, err
			}
			if err := m.AddGlobal(g); err != nil {
				return nil, p.errf("%v", err)
			}
		case strings.HasPrefix(line, "func "):
			f, err := p.parseFunc(line)
			if err != nil {
				return nil, err
			}
			if err := m.AddFunc(f); err != nil {
				return nil, p.errf("%v", err)
			}
		default:
			return nil, p.errf("unexpected top-level line %q", line)
		}
	}
	return m, nil
}

func (p *parser) parseGlobal(rest string) (*Global, error) {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return nil, p.errf("global name must start with @: %q", rest)
	}
	rest = rest[1:]
	// Forms: "name", "name = 42", "name [64]", `name = "str"`.
	if i := strings.IndexAny(rest, " \t=["); i < 0 {
		return &Global{Name: rest, Size: 1}, nil
	}
	var name string
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' || rest[i] == '\t' || rest[i] == '=' || rest[i] == '[' {
			name = rest[:i]
			rest = strings.TrimSpace(rest[i:])
			break
		}
	}
	if name == "" {
		name = rest
		rest = ""
	}
	g := &Global{Name: name, Size: 1}
	switch {
	case rest == "":
		return g, nil
	case strings.HasPrefix(rest, "["):
		end := strings.Index(rest, "]")
		if end < 0 {
			return nil, p.errf("global @%s: unterminated array size", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(rest[1:end]))
		if err != nil || n <= 0 {
			return nil, p.errf("global @%s: bad array size %q", name, rest[1:end])
		}
		g.Size = n
		return g, nil
	case strings.HasPrefix(rest, "="):
		val := strings.TrimSpace(rest[1:])
		if strings.HasPrefix(val, `"`) {
			s, err := strconv.Unquote(val)
			if err != nil {
				return nil, p.errf("global @%s: bad string literal: %v", name, err)
			}
			g.InitWords = StringToWords(s)
			g.Size = len(g.InitWords)
			if g.Size > 0 {
				g.Init = g.InitWords[0]
			}
			return g, nil
		}
		v, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return nil, p.errf("global @%s: bad initializer %q", name, val)
		}
		g.Init = v
		return g, nil
	default:
		return nil, p.errf("global @%s: unexpected trailing %q", name, rest)
	}
}

// StringToWords converts a Go string into one word per byte plus a NUL
// terminator — the memory representation string intrinsics (strcpy, print)
// operate on.
func StringToWords(s string) []int64 {
	w := make([]int64, 0, len(s)+1)
	for i := 0; i < len(s); i++ {
		w = append(w, int64(s[i]))
	}
	return append(w, 0)
}

// WordsToString converts a NUL-terminated word sequence back to a string.
func WordsToString(w []int64) string {
	var b strings.Builder
	for _, c := range w {
		if c == 0 {
			break
		}
		b.WriteByte(byte(c))
	}
	return b.String()
}

func (p *parser) parseFunc(line string) (*Func, error) {
	// func @name(%a, %b) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "func "))
	if !strings.HasSuffix(rest, "{") {
		return nil, p.errf("func header must end with '{': %q", line)
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	open := strings.Index(rest, "(")
	closeP := strings.LastIndex(rest, ")")
	if !strings.HasPrefix(rest, "@") || open < 0 || closeP < open {
		return nil, p.errf("bad func header %q", line)
	}
	f := &Func{Name: rest[1:open]}
	for _, prm := range splitArgs(rest[open+1 : closeP]) {
		prm = strings.TrimSpace(prm)
		if prm == "" {
			continue
		}
		if !strings.HasPrefix(prm, "%") {
			return nil, p.errf("func @%s: parameter %q must start with %%", f.Name, prm)
		}
		f.Params = append(f.Params, prm[1:])
	}

	var cur *Block
	for p.ln++; p.ln < len(p.lines); p.ln++ {
		l := strings.TrimSpace(stripComment(p.lines[p.ln]))
		if l == "" {
			continue
		}
		if l == "}" {
			if len(f.Blocks) == 0 {
				return nil, p.errf("func @%s: no blocks", f.Name)
			}
			return f, nil
		}
		if strings.HasSuffix(l, ":") && !strings.Contains(l, " ") {
			cur = &Block{Name: strings.TrimSuffix(l, ":")}
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			return nil, p.errf("func @%s: instruction before first block label", f.Name)
		}
		in, err := p.parseInstr(l)
		if err != nil {
			return nil, err
		}
		in.Pos = Pos{File: p.file, Line: p.ln + 1}
		cur.Instrs = append(cur.Instrs, in)
	}
	return nil, p.errf("func @%s: missing closing '}'", f.Name)
}

// splitArgs splits a comma-separated list, respecting string literals and
// brackets (for phi edges).
func splitArgs(s string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[', '(':
			if !inStr {
				depth++
			}
		case ']', ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" || len(out) > 0 {
		out = append(out, s[start:])
	}
	return out
}

func (p *parser) parseOperand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	switch {
	case tok == "":
		return Operand{}, p.errf("empty operand")
	case strings.HasPrefix(tok, "%"):
		return RegOp(tok[1:]), nil
	case strings.HasPrefix(tok, "@"):
		return GlobalOp(tok[1:]), nil
	case strings.HasPrefix(tok, `"`):
		s, err := strconv.Unquote(tok)
		if err != nil {
			return Operand{}, p.errf("bad string literal %s: %v", tok, err)
		}
		return StringOp(s), nil
	default:
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return Operand{}, p.errf("bad operand %q", tok)
		}
		return ConstOp(v), nil
	}
}

func (p *parser) parseInstr(l string) (*Instr, error) {
	dst := ""
	if strings.HasPrefix(l, "%") {
		eq := strings.Index(l, "=")
		if eq < 0 {
			return nil, p.errf("expected '=' after destination register in %q", l)
		}
		d := strings.TrimSpace(l[:eq])
		dst = strings.TrimPrefix(d, "%")
		l = strings.TrimSpace(l[eq+1:])
	}
	op, rest, _ := strings.Cut(l, " ")
	rest = strings.TrimSpace(rest)

	mk := func(o Op, args ...Operand) *Instr {
		return &Instr{Op: o, Dst: dst, Args: args}
	}
	one := func() (Operand, error) { return p.parseOperand(rest) }
	two := func() (Operand, Operand, error) {
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return Operand{}, Operand{}, p.errf("%s expects 2 operands: %q", op, l)
		}
		a, err := p.parseOperand(parts[0])
		if err != nil {
			return Operand{}, Operand{}, err
		}
		b, err := p.parseOperand(parts[1])
		return a, b, err
	}

	if bk, ok := BinKindFromString(op); ok {
		a, b, err := two()
		if err != nil {
			return nil, err
		}
		in := mk(OpBin, a, b)
		in.Bin = bk
		return in, nil
	}

	switch op {
	case "const":
		a, err := one()
		if err != nil {
			return nil, err
		}
		return mk(OpConst, a), nil
	case "load":
		a, err := one()
		if err != nil {
			return nil, err
		}
		return mk(OpLoad, a), nil
	case "store":
		a, b, err := two()
		if err != nil {
			return nil, err
		}
		return mk(OpStore, a, b), nil
	case "icmp":
		predTok, args, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, p.errf("icmp needs predicate and operands: %q", l)
		}
		pred, okP := CmpPredFromString(strings.TrimSpace(predTok))
		if !okP {
			return nil, p.errf("unknown icmp predicate %q", predTok)
		}
		parts := splitArgs(args)
		if len(parts) != 2 {
			return nil, p.errf("icmp expects 2 operands: %q", l)
		}
		a, err := p.parseOperand(parts[0])
		if err != nil {
			return nil, err
		}
		b, err := p.parseOperand(parts[1])
		if err != nil {
			return nil, err
		}
		in := mk(OpCmp, a, b)
		in.Pred = pred
		return in, nil
	case "br":
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return nil, p.errf("br expects cond, then, else: %q", l)
		}
		c, err := p.parseOperand(parts[0])
		if err != nil {
			return nil, err
		}
		return mk(OpBr, c,
			LabelOp(strings.TrimSpace(parts[1])),
			LabelOp(strings.TrimSpace(parts[2]))), nil
	case "jmp":
		return mk(OpJmp, LabelOp(strings.TrimSpace(rest))), nil
	case "phi":
		in := &Instr{Op: OpPhi, Dst: dst}
		for _, edge := range splitArgs(rest) {
			edge = strings.TrimSpace(edge)
			if !strings.HasPrefix(edge, "[") || !strings.HasSuffix(edge, "]") {
				return nil, p.errf("phi edge must be [label: val]: %q", edge)
			}
			body := edge[1 : len(edge)-1]
			lbl, val, ok := strings.Cut(body, ":")
			if !ok {
				return nil, p.errf("phi edge must be [label: val]: %q", edge)
			}
			v, err := p.parseOperand(val)
			if err != nil {
				return nil, err
			}
			in.Phis = append(in.Phis, PhiEdge{Block: strings.TrimSpace(lbl), Val: v})
		}
		if len(in.Phis) == 0 {
			return nil, p.errf("phi with no edges: %q", l)
		}
		return in, nil
	case "call":
		open := strings.Index(rest, "(")
		if open < 0 || !strings.HasSuffix(rest, ")") {
			return nil, p.errf("call needs (args): %q", l)
		}
		calleeTok := strings.TrimSpace(rest[:open])
		var callee Operand
		switch {
		case strings.HasPrefix(calleeTok, "@"):
			callee = FuncOp(calleeTok[1:])
		case strings.HasPrefix(calleeTok, "%"):
			callee = RegOp(calleeTok[1:])
		default:
			return nil, p.errf("call callee must be @name or %%reg: %q", calleeTok)
		}
		args := []Operand{callee}
		for _, a := range splitArgs(rest[open+1 : len(rest)-1]) {
			if strings.TrimSpace(a) == "" {
				continue
			}
			o, err := p.parseOperand(a)
			if err != nil {
				return nil, err
			}
			args = append(args, o)
		}
		return &Instr{Op: OpCall, Dst: dst, Args: args}, nil
	case "ret":
		if rest == "" {
			return mk(OpRet), nil
		}
		a, err := one()
		if err != nil {
			return nil, err
		}
		return mk(OpRet, a), nil
	case "alloca":
		a, err := one()
		if err != nil {
			return nil, err
		}
		return mk(OpAlloca, a), nil
	case "gep":
		a, b, err := two()
		if err != nil {
			return nil, err
		}
		return mk(OpGep, a, b), nil
	case "addr":
		a, err := one()
		if err != nil {
			return nil, err
		}
		if a.Kind != OperandGlobal {
			return nil, p.errf("addr expects a global: %q", l)
		}
		return mk(OpAddrOf, a), nil
	case "func":
		a, err := one()
		if err != nil {
			return nil, err
		}
		if a.Kind != OperandGlobal {
			return nil, p.errf("func expects @name: %q", l)
		}
		return mk(OpFunc, FuncOp(a.Name)), nil
	default:
		return nil, p.errf("unknown opcode %q", op)
	}
}
