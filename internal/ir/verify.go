package ir

import (
	"fmt"
)

// verify checks structural well-formedness of the module. It is invoked by
// Freeze; the checks mirror what LLVM's verifier would reject for the
// subset of IR we model:
//
//   - every block ends with exactly one terminator, with none mid-block
//   - branch targets name existing blocks
//   - register operands are defined somewhere in the function (the IR is
//     SSA at the function level: a register is defined at most once)
//   - global and function operands refer to declared globals/functions or
//     to known intrinsics (intrinsics are resolved by the interpreter, so
//     unknown names are only rejected when they are clearly not intrinsic
//     style — the verifier accepts any @name callee to keep the module
//     layer independent of the runtime's intrinsic table)
//   - phi nodes reference existing predecessor blocks
func (m *Module) verify() error {
	for _, f := range m.Funcs {
		if err := m.verifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func @%s: no blocks", f.Name)
	}
	defs := make(map[string]bool, len(f.flat))
	for _, p := range f.Params {
		if defs[p] {
			return fmt.Errorf("func @%s: duplicate parameter %%%s", f.Name, p)
		}
		defs[p] = true
	}
	for _, in := range f.flat {
		if in.Dst == "" {
			continue
		}
		if defs[in.Dst] {
			return fmt.Errorf("func @%s: %s: register %%%s defined twice (not SSA)",
				f.Name, in.Pos, in.Dst)
		}
		defs[in.Dst] = true
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("func @%s: block %s is empty", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("func @%s: block %s does not end with a terminator", f.Name, b.Name)
				}
				return fmt.Errorf("func @%s: block %s: terminator %q mid-block at %s",
					f.Name, b.Name, in.String(), in.Pos)
			}
			if err := m.verifyInstr(f, b, in, defs); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Module) verifyInstr(f *Func, b *Block, in *Instr, defs map[string]bool) error {
	badArity := func(want int) error {
		return fmt.Errorf("func @%s: %s: %s expects %d operands, got %d",
			f.Name, in.Pos, in.Op, want, len(in.Args))
	}
	switch in.Op {
	case OpConst, OpLoad, OpJmp, OpAlloca, OpAddrOf, OpFunc:
		if len(in.Args) != 1 {
			return badArity(1)
		}
	case OpStore, OpBin, OpCmp, OpGep:
		if len(in.Args) != 2 {
			return badArity(2)
		}
	case OpBr:
		if len(in.Args) != 3 {
			return badArity(3)
		}
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("func @%s: %s: ret takes at most one operand", f.Name, in.Pos)
		}
	case OpCall:
		if len(in.Args) < 1 {
			return badArity(1)
		}
	case OpPhi:
		if len(in.Phis) == 0 {
			return fmt.Errorf("func @%s: %s: phi with no edges", f.Name, in.Pos)
		}
	default:
		return fmt.Errorf("func @%s: %s: unknown opcode %d", f.Name, in.Pos, int(in.Op))
	}

	for _, a := range in.Args {
		if err := m.verifyOperand(f, in, a, defs); err != nil {
			return err
		}
	}
	for _, pe := range in.Phis {
		if f.Block(pe.Block) == nil {
			return fmt.Errorf("func @%s: %s: phi references unknown block %s", f.Name, in.Pos, pe.Block)
		}
		if err := m.verifyOperand(f, in, pe.Val, defs); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) verifyOperand(f *Func, in *Instr, a Operand, defs map[string]bool) error {
	switch a.Kind {
	case OperandReg:
		if !defs[a.Name] {
			return fmt.Errorf("func @%s: %s: use of undefined register %%%s", f.Name, in.Pos, a.Name)
		}
	case OperandGlobal:
		// "@name" may denote a global or (in argument positions, e.g.
		// call @spawn(@worker)) a function reference. Reject only names
		// that are neither declared globals nor module functions nor
		// plausibly runtime intrinsics (lowercase identifiers are allowed
		// through so the module layer stays independent of the runtime's
		// intrinsic table; the interpreter faults on unknown names).
		if m.globalIdx[a.Name] == nil && m.funcIdx[a.Name] == nil && !in.IsCall() {
			return fmt.Errorf("func @%s: %s: use of undeclared global @%s", f.Name, in.Pos, a.Name)
		}
	case OperandLabel:
		if f.blockIdx[a.Name] == nil {
			return fmt.Errorf("func @%s: %s: branch to unknown block %s", f.Name, in.Pos, a.Name)
		}
	case OperandFunc:
		// Callee names may resolve to module functions or to runtime
		// intrinsics; the module layer accepts both. OpFunc references,
		// however, must name a module function or intrinsic-style name.
	case OperandConst, OperandString:
		// Always fine.
	default:
		return fmt.Errorf("func @%s: %s: bad operand kind %d", f.Name, in.Pos, int(a.Kind))
	}
	return nil
}
