package ir

import (
	"fmt"
	"testing"
	"testing/quick"
)

// genModule builds a random-but-valid module from a byte script: every
// byte drives one construction decision. This keeps generation total (no
// rejected candidates) so quick.Check explores real variety.
func genModule(script []byte) *Module {
	b := NewBuilder("gen")
	next := func(i int) byte {
		if len(script) == 0 {
			return 0
		}
		return script[i%len(script)]
	}
	nGlobals := int(next(0))%4 + 1
	for g := 0; g < nGlobals; g++ {
		b.Global(fmt.Sprintf("g%d", g), int(next(g+1))%8+1, int64(next(g+2)))
	}
	nFuncs := int(next(5))%3 + 1
	for fi := 0; fi < nFuncs; fi++ {
		f := b.Func(fmt.Sprintf("f%d", fi), "p0")
		f.Block("entry")
		var last Operand = RegOp("p0")
		nInstr := int(next(6+fi))%6 + 1
		for k := 0; k < nInstr; k++ {
			switch next(7+fi*7+k) % 5 {
			case 0:
				last = f.Const(int64(next(8 + k)))
			case 1:
				last = f.Load(GlobalOp(fmt.Sprintf("g%d", int(next(9+k))%nGlobals)))
			case 2:
				f.Store(last, GlobalOp(fmt.Sprintf("g%d", int(next(10+k))%nGlobals)))
			case 3:
				last = f.Add(last, ConstOp(int64(next(11+k))%16))
			case 4:
				last = f.Cmp(CmpLT, last, ConstOp(int64(next(12+k))%16))
			}
		}
		f.Ret(last)
	}
	// main ties the functions together so every function is referenced.
	m := b.Func("main")
	m.Block("entry")
	for fi := 0; fi < nFuncs; fi++ {
		m.CallVoid(FuncOp(fmt.Sprintf("f%d", fi)), ConstOp(int64(fi)))
	}
	m.Ret()
	return b.MustBuild()
}

// TestFormatParseRoundTripProperty: Format -> Parse -> Format is a fixed
// point for arbitrary generated modules.
func TestFormatParseRoundTripProperty(t *testing.T) {
	f := func(script []byte) bool {
		mod := genModule(script)
		text := mod.Format()
		re, err := Parse("gen.oir", text)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, text)
			return false
		}
		return re.Format() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPreservesStructure: function/block/instruction counts
// survive the round trip.
func TestRoundTripPreservesStructure(t *testing.T) {
	f := func(script []byte) bool {
		mod := genModule(script)
		re, err := Parse("gen.oir", mod.Format())
		if err != nil {
			return false
		}
		if len(re.Funcs) != len(mod.Funcs) || len(re.Globals) != len(mod.Globals) {
			return false
		}
		for i, fn := range mod.Funcs {
			if re.Funcs[i].NumInstrs() != fn.NumInstrs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
