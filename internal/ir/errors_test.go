package ir

import (
	"errors"
	"strings"
	"testing"
)

// TestTryConvertsMustParsePanic feeds MustParse malformed source and
// checks the panic surfaces as a typed, unwrappable error.
func TestTryConvertsMustParsePanic(t *testing.T) {
	m, err := Try(func() *Module {
		return MustParse("bad.ir", "func @f {\n  this is not ir\n")
	})
	if m != nil || err == nil {
		t.Fatalf("Try = (%v, %v), want (nil, error)", m, err)
	}
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *ir.Error", err)
	}
	if ie.Op != "parse" || ie.Name != "bad.ir" {
		t.Fatalf("Error = %+v, want Op=parse Name=bad.ir", ie)
	}
	if !strings.HasPrefix(err.Error(), "ir: parse bad.ir:") {
		t.Fatalf("message %q lacks the ir: parse prefix", err)
	}
}

// TestTryConvertsMustBuildPanic checks a builder error (duplicate
// global) raised through MustBuild is recoverable.
func TestTryConvertsMustBuildPanic(t *testing.T) {
	m, err := Try(func() *Module {
		b := NewBuilder("dup")
		b.Global("g", 1, 0)
		b.Global("g", 1, 0)
		return b.MustBuild()
	})
	if m != nil || err == nil {
		t.Fatalf("Try = (%v, %v), want (nil, error)", m, err)
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Op != "build" || ie.Name != "dup" {
		t.Fatalf("error = %v, want *ir.Error with Op=build Name=dup", err)
	}
	if !strings.Contains(err.Error(), "duplicate global") {
		t.Fatalf("message %q does not carry the underlying cause", err)
	}
}

// TestTryConvertsMustFreezePanic checks a structurally malformed module
// (duplicate block) raised through MustFreeze is recoverable.
func TestTryConvertsMustFreezePanic(t *testing.T) {
	m := NewModule("malformed")
	f := &Func{Name: "f", Blocks: []*Block{{Name: "entry"}, {Name: "entry"}}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	got, err := Try(func() *Module { return m.MustFreeze() })
	if got != nil || err == nil {
		t.Fatalf("Try = (%v, %v), want (nil, error)", got, err)
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Op != "freeze" || ie.Name != "malformed" {
		t.Fatalf("error = %v, want *ir.Error with Op=freeze Name=malformed", err)
	}
}

// TestTryPassesCleanModuleThrough checks the happy path is untouched.
func TestTryPassesCleanModuleThrough(t *testing.T) {
	m, err := Try(func() *Module {
		b := NewBuilder("ok")
		fb := b.Func("main")
		fb.Block("entry")
		fb.Ret(fb.Const(0))
		return b.MustBuild()
	})
	if err != nil {
		t.Fatalf("Try on a clean module: %v", err)
	}
	if m == nil || !m.Frozen() {
		t.Fatal("Try did not return the frozen module")
	}
}

// TestTryRepanicsForeignValues checks non-ir panics are not swallowed.
func TestTryRepanicsForeignValues(t *testing.T) {
	defer func() {
		if r := recover(); r != "not an ir error" {
			t.Fatalf("recovered %v, want the foreign panic value", r)
		}
	}()
	Try(func() *Module { panic("not an ir error") })
	t.Fatal("foreign panic was swallowed")
}

// TestErrorUnwrap checks the cause chain survives for errors.Is/As users.
func TestErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	e := &Error{Op: "build", Name: "m", Err: cause}
	if !errors.Is(e, cause) {
		t.Fatal("errors.Is cannot reach the wrapped cause")
	}
}
