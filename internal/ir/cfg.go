package ir

import (
	"sort"
)

// CFG holds per-function control-flow analyses: predecessor/successor maps,
// dominators, post-dominators, block-level control dependence, and natural
// loops. The ad-hoc synchronization detector (§5.1) uses loops and
// loop-exit edges; the vulnerability analyzer (Algorithm 1, §6.1) uses
// control dependence to track bug-to-attack propagation through branches
// (the Libsafe attack is a pure control dependence).
type CFG struct {
	Fn    *Func
	Preds map[string][]string
	Succs map[string][]string

	// Idom maps a block to its immediate dominator ("" for entry).
	Idom map[string]string
	// Ipdom maps a block to its immediate post-dominator ("" for virtual exit).
	Ipdom map[string]string

	// CtrlDeps maps a block B to the conditional-branch blocks that B is
	// control dependent on (classic Ferrante et al. definition computed via
	// the post-dominance frontier).
	CtrlDeps map[string][]string

	Loops []*Loop

	loopOf map[string][]*Loop
}

// Loop is a natural loop: Header plus the body block set.
type Loop struct {
	Header string
	Blocks map[string]bool
	// Latches are the blocks with back edges to Header.
	Latches []string
}

// Contains reports whether the block is inside the loop.
func (l *Loop) Contains(block string) bool { return l.Blocks[block] }

// ExitBranches returns the conditional branch instructions inside the loop
// with at least one successor outside the loop (i.e. branches that can
// break out of the loop).
func (l *Loop) ExitBranches(f *Func) []*Instr {
	var out []*Instr
	for name := range l.Blocks {
		b := f.Block(name)
		t := b.Terminator()
		if t == nil || t.Op != OpBr {
			continue
		}
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				out = append(out, t)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// BuildCFG computes the analyses for one function. The module must be
// frozen.
func BuildCFG(f *Func) *CFG {
	c := &CFG{
		Fn:     f,
		Preds:  make(map[string][]string),
		Succs:  make(map[string][]string),
		loopOf: make(map[string][]*Loop),
	}
	for _, b := range f.Blocks {
		succs := b.Succs()
		c.Succs[b.Name] = succs
		for _, s := range succs {
			c.Preds[s] = append(c.Preds[s], b.Name)
		}
	}
	c.Idom = c.dominators(f.Entry().Name, c.Preds, c.Succs, c.rpo(f.Entry().Name, c.Succs))
	c.computePostDom()
	c.computeCtrlDeps()
	c.computeLoops()
	return c
}

// rpo returns reverse postorder over the given successor map from root.
func (c *CFG) rpo(root string, succs map[string][]string) []string {
	var order []string
	seen := map[string]bool{}
	var dfs func(string)
	dfs = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range succs[n] {
			dfs(s)
		}
		order = append(order, n)
	}
	dfs(root)
	// reverse
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// dominators runs the classic iterative dominator algorithm (Cooper,
// Harvey, Kennedy) over the graph described by preds, with blocks visited
// in the supplied reverse postorder.
func (c *CFG) dominators(entry string, preds, succs map[string][]string, order []string) map[string]string {
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	idom := map[string]string{entry: entry}
	intersect := func(a, b string) string {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n == entry {
				continue
			}
			var newIdom string
			for _, p := range preds[n] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == "" {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == "" {
				continue // unreachable from entry
			}
			if idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = "" // conventional: entry has no idom
	return idom
}

const virtualExit = "<exit>"

// computePostDom computes immediate post-dominators using a virtual exit
// node joined to every ret block (and to every block with no successors,
// so infinite loops don't break the analysis).
func (c *CFG) computePostDom() {
	rsuccs := make(map[string][]string) // reversed edges: block -> preds in reversed graph = succs in original... we build reversed explicitly
	rpreds := make(map[string][]string)
	addEdge := func(from, to string) {
		// edge in reversed graph
		rsuccs[from] = append(rsuccs[from], to)
		rpreds[to] = append(rpreds[to], from)
	}
	for _, b := range c.Fn.Blocks {
		succs := c.Succs[b.Name]
		if len(succs) == 0 {
			addEdge(virtualExit, b.Name)
		}
		for _, s := range succs {
			addEdge(s, b.Name)
		}
	}
	// Blocks unreachable backwards from exit (infinite loops): connect them
	// so every block is post-dominated by the virtual exit.
	order := c.rpo(virtualExit, rsuccs)
	reached := make(map[string]bool, len(order))
	for _, n := range order {
		reached[n] = true
	}
	for _, b := range c.Fn.Blocks {
		if !reached[b.Name] {
			addEdge(virtualExit, b.Name)
		}
	}
	order = c.rpo(virtualExit, rsuccs)
	ipdom := c.dominators(virtualExit, rpreds, rsuccs, order)
	delete(ipdom, virtualExit)
	c.Ipdom = ipdom
}

// pdomSet returns the chain of post-dominators of n (excluding n itself).
func (c *CFG) pdomChain(n string) map[string]bool {
	out := map[string]bool{}
	for cur := c.Ipdom[n]; cur != "" && cur != virtualExit; cur = c.Ipdom[cur] {
		if out[cur] {
			break
		}
		out[cur] = true
	}
	return out
}

// computeCtrlDeps computes block-level control dependence: block B is
// control dependent on branch block A iff A has successors S1 where B
// post-dominates the path from S1 but B does not post-dominate A.
func (c *CFG) computeCtrlDeps() {
	c.CtrlDeps = make(map[string][]string)
	seen := make(map[[2]string]bool)
	for _, a := range c.Fn.Blocks {
		succs := c.Succs[a.Name]
		if len(succs) < 2 {
			continue
		}
		for _, s := range succs {
			// Walk the post-dominator chain from s up to (but excluding)
			// the post-dominator of a; every node on it is control
			// dependent on a.
			stopAt := c.Ipdom[a.Name]
			for cur := s; cur != "" && cur != virtualExit && cur != stopAt; cur = c.Ipdom[cur] {
				key := [2]string{cur, a.Name}
				if !seen[key] {
					seen[key] = true
					c.CtrlDeps[cur] = append(c.CtrlDeps[cur], a.Name)
				}
			}
		}
	}
}

// computeLoops finds natural loops from back edges (edge u->h where h
// dominates u) and merges loops sharing a header.
func (c *CFG) computeLoops() {
	dominates := func(a, b string) bool {
		if a == b {
			return true
		}
		for cur := c.Idom[b]; cur != ""; cur = c.Idom[cur] {
			if cur == a {
				return true
			}
		}
		return false
	}
	byHeader := map[string]*Loop{}
	for _, b := range c.Fn.Blocks {
		for _, s := range c.Succs[b.Name] {
			if !dominates(s, b.Name) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[string]bool{s: true}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b.Name)
			// Natural loop body: nodes reaching the latch without passing
			// through the header.
			stack := []string{b.Name}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				stack = append(stack, c.Preds[n]...)
			}
		}
	}
	var headers []string
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Strings(headers)
	for _, h := range headers {
		l := byHeader[h]
		c.Loops = append(c.Loops, l)
		for blk := range l.Blocks {
			c.loopOf[blk] = append(c.loopOf[blk], l)
		}
	}
}

// LoopsContaining returns the loops whose body includes the block.
func (c *CFG) LoopsContaining(block string) []*Loop { return c.loopOf[block] }

// InLoop reports whether the instruction sits inside any natural loop.
func (c *CFG) InLoop(in *Instr) bool {
	return in.Block != nil && len(c.loopOf[in.Block.Name]) > 0
}

// IsCtrlDependent reports whether instruction i is (transitively at block
// level) control dependent on the conditional branch br.
func (c *CFG) IsCtrlDependent(i, br *Instr) bool {
	if br.Op != OpBr || i.Block == nil || br.Block == nil {
		return false
	}
	// Direct block-level control dependence, transitively.
	seen := map[string]bool{}
	var walk func(blk string) bool
	walk = func(blk string) bool {
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, dep := range c.CtrlDeps[blk] {
			if dep == br.Block.Name {
				return true
			}
			if walk(dep) {
				return true
			}
		}
		return false
	}
	if walk(i.Block.Name) {
		return true
	}
	// Same-block case: instructions after a branch in the same block can't
	// exist (branch terminates the block), so nothing more to check.
	return false
}
