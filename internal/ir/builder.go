package ir

import (
	"fmt"
)

// Builder constructs IR modules programmatically. It assigns synthetic,
// strictly increasing line numbers so that every instruction has a stable
// position for reports even without a source file.
//
// Usage:
//
//	b := ir.NewBuilder("libsafe")
//	b.Global("dying", 1, 0)
//	f := b.Func("stack_check", "dst")
//	f.Block("entry")
//	d := f.Load(ir.GlobalOp("dying"))
//	...
type Builder struct {
	mod  *Module
	line int
	err  error

	// posFile/posLine, when set via SetPos, override the synthetic
	// positions — front ends (internal/minic) use this so OWL reports on
	// compiled programs point at the original source lines.
	posFile string
	posLine int
}

// SetPos makes subsequently emitted instructions carry the given source
// position instead of a synthetic one; SetPos("", 0) reverts.
func (b *Builder) SetPos(file string, line int) {
	b.posFile, b.posLine = file, line
}

// NewBuilder returns a Builder for a new module.
func NewBuilder(name string) *Builder {
	return &Builder{mod: NewModule(name), line: 1}
}

// Err returns the first error encountered while building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Global declares a scalar or array global initialized to init (word 0).
func (b *Builder) Global(name string, size int, init int64) {
	if err := b.mod.AddGlobal(&Global{Name: name, Size: size, Init: init}); err != nil {
		b.fail(err)
	}
}

// GlobalWords declares a global initialized with the given words.
func (b *Builder) GlobalWords(name string, words []int64) {
	g := &Global{Name: name, Size: len(words), InitWords: append([]int64(nil), words...)}
	if len(words) > 0 {
		g.Init = words[0]
	}
	if err := b.mod.AddGlobal(g); err != nil {
		b.fail(err)
	}
}

// Func starts a new function with the given parameter names and returns a
// FuncBuilder positioned at no block (call Block first).
func (b *Builder) Func(name string, params ...string) *FuncBuilder {
	f := &Func{Name: name, Params: params}
	if err := b.mod.AddFunc(f); err != nil {
		b.fail(err)
	}
	return &FuncBuilder{b: b, fn: f, regSeq: 0}
}

// Build freezes and returns the module.
func (b *Builder) Build() (*Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.mod.Freeze(); err != nil {
		return nil, err
	}
	return b.mod, nil
}

// MustBuild is Build but panics on error; for statically known modules.
// The panic value is a typed *Error, so Try (or any recover boundary)
// can turn it back into a returned error.
func (b *Builder) MustBuild() *Module {
	m, err := b.Build()
	if err != nil {
		panic(&Error{Op: "build", Name: b.mod.Name, Err: err})
	}
	return m
}

// FuncBuilder emits instructions into one function.
type FuncBuilder struct {
	b      *Builder
	fn     *Func
	cur    *Block
	regSeq int
}

// Name returns the function's name.
func (fb *FuncBuilder) Name() string { return fb.fn.Name }

// Block starts (or switches to) a basic block with the given label.
func (fb *FuncBuilder) Block(name string) {
	for _, blk := range fb.fn.Blocks {
		if blk.Name == name {
			fb.cur = blk
			return
		}
	}
	blk := &Block{Name: name}
	fb.fn.Blocks = append(fb.fn.Blocks, blk)
	fb.cur = blk
}

func (fb *FuncBuilder) emit(in *Instr) *Instr {
	if fb.cur == nil {
		fb.b.fail(fmt.Errorf("func @%s: emit %s outside a block", fb.fn.Name, in.Op))
		return in
	}
	if fb.b.posLine > 0 {
		in.Pos = Pos{File: fb.b.posFile, Line: fb.b.posLine}
	} else {
		in.Pos = Pos{File: fb.b.mod.Name + ".oir", Line: fb.b.line}
		fb.b.line++
	}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

func (fb *FuncBuilder) newReg() string {
	fb.regSeq++
	return fmt.Sprintf("t%d", fb.regSeq)
}

// Const emits %r = const v and returns the register operand.
func (fb *FuncBuilder) Const(v int64) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpConst, Dst: r, Args: []Operand{ConstOp(v)}})
	return RegOp(r)
}

// Load emits %r = load ptr.
func (fb *FuncBuilder) Load(ptr Operand) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpLoad, Dst: r, Args: []Operand{ptr}})
	return RegOp(r)
}

// LoadNamed is Load but with a caller-chosen destination register name,
// which makes reports and tests easier to read.
func (fb *FuncBuilder) LoadNamed(dst string, ptr Operand) Operand {
	fb.emit(&Instr{Op: OpLoad, Dst: dst, Args: []Operand{ptr}})
	return RegOp(dst)
}

// Store emits store val, ptr.
func (fb *FuncBuilder) Store(val, ptr Operand) {
	fb.emit(&Instr{Op: OpStore, Args: []Operand{val, ptr}})
}

// Bin emits %r = op a, b.
func (fb *FuncBuilder) Bin(op BinKind, a, b Operand) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpBin, Dst: r, Bin: op, Args: []Operand{a, b}})
	return RegOp(r)
}

// Add emits an addition.
func (fb *FuncBuilder) Add(a, b Operand) Operand { return fb.Bin(BinAdd, a, b) }

// Sub emits a subtraction.
func (fb *FuncBuilder) Sub(a, b Operand) Operand { return fb.Bin(BinSub, a, b) }

// Cmp emits %r = icmp pred a, b.
func (fb *FuncBuilder) Cmp(pred CmpPred, a, b Operand) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpCmp, Dst: r, Pred: pred, Args: []Operand{a, b}})
	return RegOp(r)
}

// Br emits a conditional branch.
func (fb *FuncBuilder) Br(cond Operand, then, els string) {
	fb.emit(&Instr{Op: OpBr, Args: []Operand{cond, LabelOp(then), LabelOp(els)}})
}

// Jmp emits an unconditional branch.
func (fb *FuncBuilder) Jmp(target string) {
	fb.emit(&Instr{Op: OpJmp, Args: []Operand{LabelOp(target)}})
}

// Phi emits a phi node.
func (fb *FuncBuilder) Phi(edges ...PhiEdge) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpPhi, Dst: r, Phis: edges})
	return RegOp(r)
}

// Call emits a call with a result register.
func (fb *FuncBuilder) Call(callee Operand, args ...Operand) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpCall, Dst: r, Args: append([]Operand{callee}, args...)})
	return RegOp(r)
}

// CallVoid emits a call discarding the result.
func (fb *FuncBuilder) CallVoid(callee Operand, args ...Operand) {
	fb.emit(&Instr{Op: OpCall, Args: append([]Operand{callee}, args...)})
}

// Ret emits ret [val].
func (fb *FuncBuilder) Ret(val ...Operand) {
	if len(val) > 0 {
		fb.emit(&Instr{Op: OpRet, Args: []Operand{val[0]}})
		return
	}
	fb.emit(&Instr{Op: OpRet})
}

// Alloca emits %r = alloca n (n words with function lifetime).
func (fb *FuncBuilder) Alloca(n int64) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpAlloca, Dst: r, Args: []Operand{ConstOp(n)}})
	return RegOp(r)
}

// Gep emits %r = gep base, off (word-scaled pointer arithmetic).
func (fb *FuncBuilder) Gep(base, off Operand) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpGep, Dst: r, Args: []Operand{base, off}})
	return RegOp(r)
}

// AddrOf emits %r = addr @g.
func (fb *FuncBuilder) AddrOf(global string) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpAddrOf, Dst: r, Args: []Operand{GlobalOp(global)}})
	return RegOp(r)
}

// FuncRef emits %r = func @f (a first-class function reference).
func (fb *FuncBuilder) FuncRef(fn string) Operand {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpFunc, Dst: r, Args: []Operand{FuncOp(fn)}})
	return RegOp(r)
}
