package ir

import "fmt"

// Error is the typed value the Must* helpers panic with, so a malformed
// module raised through a convenience constructor can be recovered at
// the package boundary (Try) — or by the pipeline supervisor — and
// handled as an ordinary returned error instead of a process-killing
// string panic.
type Error struct {
	// Op names the failing operation: "build", "parse", or "freeze".
	Op string
	// Name is the module or file the operation was applied to.
	Name string
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("ir: %s %s: %v", e.Op, e.Name, e.Err)
	}
	return fmt.Sprintf("ir: %s: %v", e.Op, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Try runs a module constructor that may use the Must* helpers
// (MustBuild, MustParse, MustFreeze) and converts their panics back into
// returned errors at the package boundary. Panics that are not *ir.Error
// are genuine bugs and propagate unchanged.
func Try(fn func() *Module) (m *Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(*Error)
			if !ok {
				panic(r)
			}
			err = e
		}
	}()
	return fn(), nil
}
