package sched

import (
	"fmt"
	"testing"
)

// scriptedCoverage deterministically fabricates per-job coverage from the
// job's identity (strategy + seed or decision vector), so replaying the
// same schedule "observes" the same pairs — the property resume leans on.
func scriptedCoverage(pt *pairTable, j *Job) {
	switch j.Strategy {
	case StrategyDFS:
		ds := j.Sched.(*DecisionSched)
		pt.observe(j, fmt.Sprintf("dfs-%v", ds.Decisions))
	default:
		pt.observe(j, fmt.Sprintf("%s-%d", j.Strategy, j.Seed))
	}
}

// TestExploreStateResumeEarlyStops is the resume contract: a second
// exploration of an already-absorbed program sees nothing new, trips the
// saturation early stop, and spends strictly fewer runs than the first.
func TestExploreStateResumeEarlyStops(t *testing.T) {
	pt := newPairTable()
	state := NewExploreState(0)
	runner := func(jobs []*Job) error {
		for _, j := range jobs {
			scriptedCoverage(pt, j)
			j.ReportIDs = []string{"race-shared"}
		}
		return nil
	}

	first := NewEngine(EngineConfig{Budget: 24, RoundRuns: 6, Saturation: 2})
	fres, err := first.Explore(runner)
	if err != nil {
		t.Fatal(err)
	}
	state.Absorb(first)
	if !state.Warm() || state.Explorations() != 1 {
		t.Fatalf("state not warm after absorb: explorations=%d", state.Explorations())
	}
	if state.Pairs() != fres.CoveragePairs {
		t.Errorf("state pairs = %d, want the first run's %d", state.Pairs(), fres.CoveragePairs)
	}
	if state.SeenReports() != 1 {
		t.Errorf("seen reports = %d, want 1", state.SeenReports())
	}

	second := NewEngine(EngineConfig{Budget: 24, RoundRuns: 6, Saturation: 2, Resume: state})
	sres, err := second.Explore(runner)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.EarlyStop {
		t.Error("resumed exploration did not early-stop on saturation")
	}
	if sres.Runs >= fres.Runs {
		t.Errorf("resumed runs = %d, want strictly fewer than first (%d)", sres.Runs, fres.Runs)
	}
	// Saturation 2 at RoundRuns 6: a fully dry resume spends exactly 12.
	if sres.Runs != 12 {
		t.Errorf("resumed runs = %d, want 12 (two dry rounds)", sres.Runs)
	}
	state.Absorb(second)
	if state.Pairs() != fres.CoveragePairs {
		t.Errorf("absorbing a dry resume grew the state: %d -> %d pairs",
			fres.CoveragePairs, state.Pairs())
	}
	if state.Explorations() != 2 {
		t.Errorf("explorations = %d, want 2", state.Explorations())
	}
}

// TestExploreStateResumeIsDeterministic pins that two resumes from the
// same state spend identical budgets — the cross-submission determinism
// the serve gate asserts end to end.
func TestExploreStateResumeIsDeterministic(t *testing.T) {
	pt := newPairTable()
	state := NewExploreState(0)
	runner := func(jobs []*Job) error {
		for _, j := range jobs {
			scriptedCoverage(pt, j)
		}
		return nil
	}
	first := NewEngine(EngineConfig{Budget: 30, RoundRuns: 6})
	if _, err := first.Explore(runner); err != nil {
		t.Fatal(err)
	}
	state.Absorb(first)

	var runs [2]int
	for i := range runs {
		e := NewEngine(EngineConfig{Budget: 30, RoundRuns: 6, Resume: state})
		res, err := e.Explore(runner)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = res.Runs
		state.Absorb(e)
	}
	if runs[0] != runs[1] {
		t.Errorf("resume runs differ across repeats: %d vs %d", runs[0], runs[1])
	}
}

// TestEngineResumeAttachesStateSnapCache pins that a resumed engine picks
// up the state's persistent snapshot cache when the caller supplies none,
// and that an explicit Snap wins.
func TestEngineResumeAttachesStateSnapCache(t *testing.T) {
	state := NewExploreState(8)
	if state.SnapCache() == nil {
		t.Fatal("state built with entries has no snap cache")
	}
	e := NewEngine(EngineConfig{Budget: 6, Resume: state})
	if e.cfg.Snap != state.SnapCache() {
		t.Error("resumed engine did not attach the state's snap cache")
	}
	own := NewSnapCache(4)
	e2 := NewEngine(EngineConfig{Budget: 6, Resume: state, Snap: own})
	if e2.cfg.Snap != own {
		t.Error("explicit Snap lost to the state's cache")
	}
	if NewExploreState(0).SnapCache() != nil {
		t.Error("snapEntries<=0 still built a cache")
	}
}

// TestCoverageMergeCoverage pins the map-to-map merge used by seeding
// and absorbing.
func TestCoverageMergeCoverage(t *testing.T) {
	pt := newPairTable()
	a, b := NewCoverage(), NewCoverage()
	a.pairs[pt.key("x")] = struct{}{}
	a.pairs[pt.key("y")] = struct{}{}
	b.pairs[pt.key("y")] = struct{}{}
	b.pairs[pt.key("z")] = struct{}{}
	if fresh := a.MergeCoverage(b); fresh != 1 {
		t.Errorf("fresh = %d, want 1 (only z is new)", fresh)
	}
	if a.Pairs() != 3 {
		t.Errorf("pairs = %d, want 3", a.Pairs())
	}
	if fresh := a.MergeCoverage(b); fresh != 0 {
		t.Errorf("re-merge fresh = %d, want 0", fresh)
	}
}

// TestExploreStateNilSafety: a nil state is inert everywhere it can
// appear.
func TestExploreStateNilSafety(t *testing.T) {
	var s *ExploreState
	if s.Warm() || s.Pairs() != 0 || s.SeenReports() != 0 || s.Explorations() != 0 {
		t.Error("nil state not inert")
	}
	if s.SnapCache() != nil {
		t.Error("nil state returned a snap cache")
	}
	s.Absorb(nil) // must not panic
}
