package sched

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
)

func ids(ns ...int) []interp.ThreadID {
	out := make([]interp.ThreadID, len(ns))
	for i, n := range ns {
		out[i] = interp.ThreadID(n)
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin(1)
	runnable := ids(0, 1, 2)
	var got []interp.ThreadID
	for i := 0; i < 6; i++ {
		got = append(got, s.Next(runnable, i))
	}
	want := ids(0, 1, 2, 0, 1, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinQuantum(t *testing.T) {
	s := NewRoundRobin(2)
	runnable := ids(0, 1)
	var got []interp.ThreadID
	for i := 0; i < 6; i++ {
		got = append(got, s.Next(runnable, i))
	}
	want := ids(0, 0, 1, 1, 0, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsBlocked(t *testing.T) {
	s := NewRoundRobin(1)
	if got := s.Next(ids(2), 0); got != 2 {
		t.Errorf("got %d", got)
	}
	// Thread 2 ran; next pick from {0, 1} wraps to 0.
	if got := s.Next(ids(0, 1), 1); got != 0 {
		t.Errorf("got %d, want wrap to 0", got)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	runnable := ids(0, 1, 2, 3)
	a, b := NewRandom(7), NewRandom(7)
	for i := 0; i < 100; i++ {
		if a.Next(runnable, i) != b.Next(runnable, i) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRandom(8)
	same := true
	a2 := NewRandom(7)
	for i := 0; i < 100; i++ {
		if a2.Next(runnable, i) != c.Next(runnable, i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRandomCoversAllThreads(t *testing.T) {
	s := NewRandom(3)
	runnable := ids(0, 1, 2)
	seen := map[interp.ThreadID]bool{}
	for i := 0; i < 200; i++ {
		seen[s.Next(runnable, i)] = true
	}
	if len(seen) != 3 {
		t.Errorf("coverage = %v", seen)
	}
}

func TestPCTPrefersOneThreadBetweenDemotions(t *testing.T) {
	s := NewPCT(1, 3, 1000)
	runnable := ids(0, 1, 2)
	first := s.Next(runnable, 0)
	stable := true
	for i := 1; i < 5; i++ {
		if s.Next(runnable, i) != first {
			stable = false
		}
	}
	_ = stable // priorities may demote at random points; just ensure progress
	seen := map[interp.ThreadID]bool{}
	for i := 0; i < 2000; i++ {
		seen[s.Next(runnable, i)] = true
	}
	if !seen[first] {
		t.Error("pct never ran its top thread")
	}
}

func TestReplayFollowsTraceAndFallsBack(t *testing.T) {
	r := NewReplay(ids(2, 0, 1))
	if got := r.Next(ids(0, 1, 2), 0); got != 2 {
		t.Errorf("step0 = %d", got)
	}
	if got := r.Next(ids(0, 1, 2), 1); got != 0 {
		t.Errorf("step1 = %d", got)
	}
	// Recorded thread 1 is not runnable: divergence + fallback.
	if got := r.Next(ids(0, 2), 2); got != 0 {
		t.Errorf("step2 fallback = %d", got)
	}
	if !r.Diverged {
		t.Error("divergence not flagged")
	}
	// Trace exhausted: fallback continues.
	_ = r.Next(ids(0, 2), 3)
}

func TestFixedPrefersListedOrder(t *testing.T) {
	s := &Fixed{Order: ids(3, 1)}
	if got := s.Next(ids(0, 1, 3), 0); got != 3 {
		t.Errorf("got %d, want 3", got)
	}
	if got := s.Next(ids(0, 1), 1); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
	if got := s.Next(ids(0, 2), 2); got != 0 {
		t.Errorf("got %d, want first runnable", got)
	}
}

func TestDecisionSchedRecordsTrace(t *testing.T) {
	s := &DecisionSched{Decisions: []int{1, 0}}
	if got := s.Next(ids(5), 0); got != 5 {
		t.Errorf("single runnable must not consume a decision")
	}
	if got := s.Next(ids(0, 1, 2), 1); got != 1 {
		t.Errorf("decision 1 -> got %d", got)
	}
	if got := s.Next(ids(0, 1), 2); got != 0 {
		t.Errorf("decision 0 -> got %d", got)
	}
	// Past the vector: default to 0.
	if got := s.Next(ids(3, 4), 3); got != 3 {
		t.Errorf("default -> got %d", got)
	}
	if len(s.Trace) != 3 {
		t.Fatalf("trace = %v, want 3 decision points", s.Trace)
	}
	if s.Trace[0].Choices != 3 || s.Trace[0].Chosen != 1 {
		t.Errorf("trace[0] = %+v", s.Trace[0])
	}
}

func TestDecisionSchedClampsOutOfRange(t *testing.T) {
	s := &DecisionSched{Decisions: []int{9}}
	if got := s.Next(ids(0, 1), 0); got != 1 {
		t.Errorf("out-of-range decision should clamp to last, got %d", got)
	}
}

// Regression: negative decisions (a hand-edited or corrupted replay
// vector) used to panic with index-out-of-range; they must clamp to 0.
func TestDecisionSchedClampsNegative(t *testing.T) {
	s := &DecisionSched{Decisions: []int{-1, -99, 1}}
	if got := s.Next(ids(4, 7), 0); got != 4 {
		t.Errorf("negative decision should clamp to first runnable, got %d", got)
	}
	if got := s.Next(ids(2, 3, 5), 1); got != 2 {
		t.Errorf("large negative decision should clamp to first runnable, got %d", got)
	}
	if got := s.Next(ids(0, 1), 2); got != 1 {
		t.Errorf("valid decision after negatives must still apply, got %d", got)
	}
	for i, d := range s.Trace {
		if d.Chosen < 0 || d.Chosen >= d.Choices {
			t.Errorf("trace[%d] records out-of-range choice %+v", i, d)
		}
	}
}

func TestExplorerCoversSmallTree(t *testing.T) {
	// A synthetic 2-level binary decision tree: 2 choices then 2 choices
	// = 4 leaves. The explorer must run each exactly once.
	var seen []string
	ex := &Explorer{MaxRuns: 64, MaxDecisions: 8}
	res, err := ex.Explore(func(s interp.Scheduler) error {
		path := ""
		for i := 0; i < 2; i++ {
			id := s.Next(ids(0, 1), i)
			if id == 0 {
				path += "a"
			} else {
				path += "b"
			}
		}
		seen = append(seen, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("small tree not exhausted")
	}
	if res.Runs != 4 {
		t.Errorf("runs = %d, want 4", res.Runs)
	}
	uniq := map[string]bool{}
	for _, p := range seen {
		uniq[p] = true
	}
	for _, want := range []string{"aa", "ab", "ba", "bb"} {
		if !uniq[want] {
			t.Errorf("path %q never explored (seen %v)", want, seen)
		}
	}
}

func TestExplorerHonoursMaxRuns(t *testing.T) {
	ex := &Explorer{MaxRuns: 3, MaxDecisions: 10}
	runs := 0
	res, err := ex.Explore(func(s interp.Scheduler) error {
		runs++
		for i := 0; i < 5; i++ {
			s.Next(ids(0, 1, 2), i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || runs != 3 {
		t.Errorf("runs = %d/%d, want 3", res.Runs, runs)
	}
	if res.Exhausted {
		t.Error("truncated exploration reported exhausted")
	}
}

func TestExplorerPropagatesError(t *testing.T) {
	ex := &Explorer{MaxRuns: 10}
	_, err := ex.Explore(func(s interp.Scheduler) error {
		return errTest
	})
	if err == nil {
		t.Error("want error")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

// TestPlanAdvanceMatchesNext is the PlanningScheduler contract property:
// for every planner, runnable set, and consumed prefix length k, calling
// Plan then Advance(k) must leave the scheduler in exactly the state k
// plain Next calls would, and the planned entries must be the picks Next
// would have made. The interpreter's batched dispatch loop relies on
// this being exact — any divergence would silently change schedules.
func TestPlanAdvanceMatchesNext(t *testing.T) {
	sets := [][]interp.ThreadID{
		ids(0),
		ids(0, 1),
		ids(0, 1, 2),
		ids(1, 3, 7),
		ids(0, 2, 4, 5, 9),
	}
	type mk struct {
		name string
		new  func() interp.Scheduler
	}
	var makers []mk
	for q := 1; q <= 4; q++ {
		q := q
		makers = append(makers, mk{
			name: "rr-q" + string(rune('0'+q)),
			new:  func() interp.Scheduler { return NewRoundRobin(q) },
		})
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		makers = append(makers, mk{
			name: "random",
			new:  func() interp.Scheduler { return NewRandom(seed) },
		})
	}
	for _, m := range makers {
		for _, runnable := range sets {
			for window := 1; window <= 9; window += 2 {
				for k := 0; k <= window; k++ {
					// Oracle: a fresh scheduler driven warm (a few Next calls
					// first, so mid-run state like last/used is exercised),
					// then k more Next picks.
					warm := 3
					oracle := m.new().(interp.PlanningScheduler)
					subject := m.new().(interp.PlanningScheduler)
					for w := 0; w < warm; w++ {
						oracle.(interp.Scheduler).Next(runnable, w)
						subject.(interp.Scheduler).Next(runnable, w)
					}
					var wantPicks []interp.ThreadID
					for i := 0; i < k; i++ {
						wantPicks = append(wantPicks, oracle.(interp.Scheduler).Next(runnable, warm+i))
					}
					buf := make([]interp.ThreadID, window)
					n := subject.Plan(runnable, warm, buf)
					if n != window {
						t.Fatalf("%s runnable=%v: Plan filled %d of %d", m.name, runnable, n, window)
					}
					for i := 0; i < k; i++ {
						if buf[i] != wantPicks[i] {
							t.Fatalf("%s runnable=%v window=%d: plan[%d]=%d, Next would pick %d",
								m.name, runnable, window, i, buf[i], wantPicks[i])
						}
					}
					subject.Advance(runnable, warm, k)
					// The states must now agree: every future pick matches.
					for i := 0; i < 2*len(runnable)+3; i++ {
						w := oracle.(interp.Scheduler).Next(runnable, warm+k+i)
						g := subject.(interp.Scheduler).Next(runnable, warm+k+i)
						if g != w {
							t.Fatalf("%s runnable=%v window=%d k=%d: post-Advance pick %d = %d, want %d",
								m.name, runnable, window, k, i, g, w)
						}
					}
				}
			}
		}
	}
}
