// Stable serialization of ExploreState. The in-memory state keys
// coverage by *ir.Instr identity, which is meaningless across process
// boundaries; Export re-keys every pair by ir.InstrPos (function name +
// flat instruction index — deterministic products of Module.Freeze) and
// Import re-binds them against a re-resolved module, refusing to guess
// when a position no longer resolves. The serve persistence layer
// (internal/serve/persist) stores Export's snapshot in checkpoints and
// the per-job journal deltas in its WAL.
package sched

import (
	"fmt"
	"sort"

	"github.com/conanalysis/owl/internal/ir"
)

// StablePair is one interleaving-coverage pair re-keyed by stable
// instruction positions. An absent end (never produced by the current
// recorder, but tolerated for forward compatibility) is encoded as an
// empty function name with index -1.
type StablePair struct {
	FromFn string `json:"ff,omitempty"`
	FromIx int    `json:"fi"`
	ToFn   string `json:"tf,omitempty"`
	ToIx   int    `json:"ti"`
}

func stablePairOf(k covKey) StablePair {
	p := StablePair{FromIx: -1, ToIx: -1}
	if pos, ok := ir.PosOf(k.from); ok {
		p.FromFn, p.FromIx = pos.Func, pos.Index
	}
	if pos, ok := ir.PosOf(k.to); ok {
		p.ToFn, p.ToIx = pos.Func, pos.Index
	}
	return p
}

// resolve re-binds the pair against m. ok is false when either end
// names a position the module does not have — persisted state from a
// different program, which the caller must discard wholesale.
func (p StablePair) resolve(m *ir.Module) (covKey, bool) {
	var k covKey
	if p.FromFn != "" || p.FromIx >= 0 {
		if k.from = m.InstrAtPos(ir.InstrPos{Func: p.FromFn, Index: p.FromIx}); k.from == nil {
			return covKey{}, false
		}
	}
	if p.ToFn != "" || p.ToIx >= 0 {
		if k.to = m.InstrAtPos(ir.InstrPos{Func: p.ToFn, Index: p.ToIx}); k.to == nil {
			return covKey{}, false
		}
	}
	return k, true
}

func sortPairs(ps []StablePair) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.FromFn != b.FromFn {
			return a.FromFn < b.FromFn
		}
		if a.FromIx != b.FromIx {
			return a.FromIx < b.FromIx
		}
		if a.ToFn != b.ToFn {
			return a.ToFn < b.ToFn
		}
		return a.ToIx < b.ToIx
	})
}

// StateSnapshot is the full serializable form of an ExploreState:
// coverage pairs and seen-report IDs in sorted order (so identical
// states marshal to identical bytes) plus the absorbed-exploration
// count. The snapshot cache is deliberately absent — machine snapshots
// are in-memory page images and are rebuilt from scratch after a
// restart.
type StateSnapshot struct {
	Pairs        []StablePair `json:"pairs,omitempty"`
	Seen         []string     `json:"seen,omitempty"`
	Explorations int          `json:"explorations"`
}

// StateDelta is the journaled growth of an ExploreState since the last
// TakeDelta: the newly covered pairs and newly seen report IDs (sorted,
// set semantics — replaying a delta twice is harmless) plus the
// absolute exploration count after the delta. Absolute, not an
// increment, so that replaying any suffix of deltas on top of any
// checkpoint converges to the same counters.
type StateDelta struct {
	Pairs        []StablePair `json:"pairs,omitempty"`
	Seen         []string     `json:"seen,omitempty"`
	Explorations int          `json:"explorations"`
}

// Empty reports whether the delta carries nothing.
func (d *StateDelta) Empty() bool {
	return d == nil || (len(d.Pairs) == 0 && len(d.Seen) == 0 && d.Explorations == 0)
}

// Export snapshots the state in stable form. Safe to call concurrently
// with Absorb; the snapshot is a consistent point-in-time view.
func (s *ExploreState) Export() StateSnapshot {
	if s == nil {
		return StateSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StateSnapshot{Explorations: s.explorations}
	for k := range s.cov.pairs {
		snap.Pairs = append(snap.Pairs, stablePairOf(k))
	}
	sortPairs(snap.Pairs)
	snap.Seen = make([]string, 0, len(s.seen))
	for id := range s.seen {
		snap.Seen = append(snap.Seen, id)
	}
	sort.Strings(snap.Seen)
	return snap
}

// Import re-binds a snapshot against the given frozen module and loads
// it into the state. It refuses to guess: any pair that does not
// resolve fails the whole import (the state was taken from a different
// program — callers discard it and count the loss rather than serve
// silently-wrong coverage). Import is only valid on a cold state; a
// warm one already carries live pairs the load would silently merge
// with. Imported data never lands in the journal — it is already
// durable wherever it came from.
func (s *ExploreState) Import(m *ir.Module, snap StateSnapshot) error {
	if s == nil {
		return fmt.Errorf("sched: import into nil ExploreState")
	}
	if m == nil || !m.Frozen() {
		return fmt.Errorf("sched: import needs a frozen module")
	}
	resolved := make([]covKey, len(snap.Pairs))
	for i, p := range snap.Pairs {
		k, ok := p.resolve(m)
		if !ok {
			return fmt.Errorf("sched: import: pair %d (@%s#%d -> @%s#%d) does not resolve in module %s",
				i, p.FromFn, p.FromIx, p.ToFn, p.ToIx, m.Name)
		}
		resolved[i] = k
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.explorations > 0 || len(s.cov.pairs) > 0 || len(s.seen) > 0 {
		return fmt.Errorf("sched: import into warm ExploreState")
	}
	for _, k := range resolved {
		s.cov.pairs[k] = struct{}{}
	}
	for _, id := range snap.Seen {
		s.seen[id] = true
	}
	s.explorations = snap.Explorations
	return nil
}

// SetJournal switches per-absorb delta journaling on or off. With the
// journal on, every Absorb records which pairs and report IDs were new;
// TakeDelta drains them. Off (the default) keeps Absorb allocation-free
// for callers that never persist.
func (s *ExploreState) SetJournal(on bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if on && s.journal == nil {
		s.journal = &StateDelta{}
	} else if !on {
		s.journal = nil
	}
}

// TakeDelta drains the journal: everything absorbed since the previous
// TakeDelta (or SetJournal), in sorted order, with the absolute
// exploration count stamped in. Returns nil when journaling is off or
// nothing accumulated.
func (s *ExploreState) TakeDelta() *StateDelta {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || (len(s.journal.Pairs) == 0 && len(s.journal.Seen) == 0 && s.journal.Explorations == 0) {
		return nil
	}
	d := s.journal
	s.journal = &StateDelta{}
	sortPairs(d.Pairs)
	sort.Strings(d.Seen)
	d.Explorations = s.explorations
	return d
}

// Merge folds a full snapshot from another replica into the state —
// the warm-state counterpart of Import. Pairs and seen IDs union in
// (set semantics), Explorations takes the max (both sides count real
// absorbed explorations; max keeps the counter monotonic without
// double-counting shared history). The same refuse-to-guess contract
// as Import applies: any unresolvable pair fails the whole merge with
// the state untouched. Unlike Import, merged knowledge DOES land in
// the journal when journaling is on — it is durable on the peer it
// came from, not here, and the next WAL record must carry it.
//
// The returned bool reports whether anything new landed; false means
// the snapshot was stale (already a subset of this state).
func (s *ExploreState) Merge(m *ir.Module, snap StateSnapshot) (bool, error) {
	if s == nil {
		return false, fmt.Errorf("sched: merge into nil ExploreState")
	}
	if m == nil || !m.Frozen() {
		return false, fmt.Errorf("sched: merge needs a frozen module")
	}
	resolved := make([]covKey, len(snap.Pairs))
	for i, p := range snap.Pairs {
		k, ok := p.resolve(m)
		if !ok {
			return false, fmt.Errorf("sched: merge: pair %d (@%s#%d -> @%s#%d) does not resolve in module %s",
				i, p.FromFn, p.FromIx, p.ToFn, p.ToIx, m.Name)
		}
		resolved[i] = k
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for i, k := range resolved {
		if _, ok := s.cov.pairs[k]; ok {
			continue
		}
		s.cov.pairs[k] = struct{}{}
		changed = true
		if s.journal != nil {
			s.journal.Pairs = append(s.journal.Pairs, snap.Pairs[i])
		}
	}
	for _, id := range snap.Seen {
		if s.seen[id] {
			continue
		}
		s.seen[id] = true
		changed = true
		if s.journal != nil {
			s.journal.Seen = append(s.journal.Seen, id)
		}
	}
	if snap.Explorations > s.explorations {
		s.explorations = snap.Explorations
		changed = true
		if s.journal != nil {
			s.journal.Explorations = s.explorations
		}
	}
	return changed, nil
}

// ApplyDelta folds a journaled delta into the state (WAL replay during
// recovery), re-binding its pairs against m under the same
// refuse-to-guess contract as Import. Set semantics plus the absolute
// exploration counter make replay idempotent: applying the same delta
// twice, or a delta already folded into an imported snapshot, changes
// nothing.
func (s *ExploreState) ApplyDelta(m *ir.Module, d *StateDelta) error {
	if d.Empty() {
		return nil
	}
	if s == nil {
		return fmt.Errorf("sched: apply delta to nil ExploreState")
	}
	if m == nil || !m.Frozen() {
		return fmt.Errorf("sched: apply delta needs a frozen module")
	}
	resolved := make([]covKey, len(d.Pairs))
	for i, p := range d.Pairs {
		k, ok := p.resolve(m)
		if !ok {
			return fmt.Errorf("sched: delta pair %d (@%s#%d -> @%s#%d) does not resolve in module %s",
				i, p.FromFn, p.FromIx, p.ToFn, p.ToIx, m.Name)
		}
		resolved[i] = k
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range resolved {
		s.cov.pairs[k] = struct{}{}
	}
	for _, id := range d.Seen {
		s.seen[id] = true
	}
	if d.Explorations > s.explorations {
		s.explorations = d.Explorations
	}
	return nil
}
