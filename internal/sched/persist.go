// Cross-exploration persistence. One Engine drives one exploration and
// then dies with everything it learned: the interleaving-coverage map,
// the set of report IDs it has already credited, and (via the snapshot
// cache) the machine states of every shared schedule prefix. A
// long-running service that analyzes the same program over and over
// should not pay for rediscovering all of that on every submission.
//
// ExploreState is that knowledge, lifted out of the Engine: a
// concurrency-safe bundle of coverage + seen-report IDs + snapshot cache
// that outlives any single exploration. An Engine constructed with
// EngineConfig.Resume starts pre-seeded from the state — so a re-run of
// an already-explored program produces no new coverage and no new
// reports, trips the saturation early stop, and spends a fraction of its
// budget — and Absorb folds what the exploration did learn back in.
//
// Coverage keys are instruction identities (*ir.Instr), so an
// ExploreState is only meaningful across explorations of the same frozen
// module value. The serve layer guarantees this by keying states by
// program content hash and pinning the parsed module alongside the
// state; anything else would silently fragment the coverage map.
package sched

import "sync"

// ExploreState accumulates exploration knowledge across runs of one
// program. All methods are safe for concurrent use; the zero value is
// not usable — construct with NewExploreState.
type ExploreState struct {
	mu           sync.Mutex
	cov          *Coverage
	seen         map[string]bool
	snap         *SnapCache
	explorations int
	// journal, when non-nil, accumulates what each Absorb newly learned
	// in stable form until TakeDelta drains it (see stable.go). Nil by
	// default: journaling is opt-in via SetJournal.
	journal *StateDelta
}

// NewExploreState returns an empty state. snapEntries > 0 additionally
// attaches a persistent prefix-sharing snapshot cache of that many
// entries, shared by every exploration resumed from the state (the
// cross-run analogue of owl's per-stage -snap-cache); snapEntries <= 0
// leaves snapshotting to the per-exploration configuration.
func NewExploreState(snapEntries int) *ExploreState {
	s := &ExploreState{
		cov:  NewCoverage(),
		seen: make(map[string]bool),
	}
	if snapEntries > 0 {
		s.snap = NewSnapCache(snapEntries)
	}
	return s
}

// SnapCache returns the persistent snapshot cache (nil when the state
// was built without one).
func (s *ExploreState) SnapCache() *SnapCache {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Warm reports whether at least one exploration has been absorbed — the
// signal a service counts as a resume hit.
func (s *ExploreState) Warm() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.explorations > 0
}

// Explorations returns the number of absorbed explorations.
func (s *ExploreState) Explorations() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.explorations
}

// Pairs returns the accumulated coverage-map size.
func (s *ExploreState) Pairs() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cov.Pairs()
}

// SeenReports returns the number of distinct report IDs absorbed.
func (s *ExploreState) SeenReports() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// seed copies the state into a fresh engine's coverage map and seen set
// (called by NewEngine under the state lock; the engine is not yet
// shared, so its side needs no locking).
func (s *ExploreState) seed(e *Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.cov.MergeCoverage(s.cov)
	for id := range s.seen {
		e.seen[id] = true
	}
}

// Absorb folds a finished exploration's coverage and report IDs back
// into the state and bumps the exploration count. The engine must be
// quiescent (ExploreCtx returned); absorbing the same engine twice is
// harmless (set semantics) but counts two explorations.
func (s *ExploreState) Absorb(e *Engine) {
	if s == nil || e == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range e.cov.pairs {
		if _, ok := s.cov.pairs[k]; ok {
			continue
		}
		s.cov.pairs[k] = struct{}{}
		if s.journal != nil {
			s.journal.Pairs = append(s.journal.Pairs, stablePairOf(k))
		}
	}
	for id := range e.seen {
		if s.seen[id] {
			continue
		}
		s.seen[id] = true
		if s.journal != nil {
			s.journal.Seen = append(s.journal.Seen, id)
		}
	}
	s.explorations++
	if s.journal != nil {
		s.journal.Explorations = s.explorations
	}
}
