package sched

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
)

// Decision is one scheduling decision point: how many threads were
// runnable and which index was chosen. SameIdx is the runnable index of
// the thread that executed the previous step (-1 when it was blocked or
// done), so a consumer can tell which choices would have been
// preemptions: any Chosen != SameIdx with SameIdx >= 0 switched away from
// a thread that could have kept running. Step is the machine step at
// which the decision was taken, letting a consumer cut a replayable
// prefix at any event of the run (predictive confirmation replays every
// decision taken strictly before a racing access).
type Decision struct {
	Choices int
	Chosen  int
	SameIdx int
	Step    int
}

// DecisionSched drives the machine from an explicit decision vector: at
// each point where more than one thread is runnable it consumes one
// decision and records what it did. Past the end of the vector it takes
// the non-preemptive default: keep running the previous thread while it
// stays runnable, else fall back to index 0. The non-preemptive tail is
// what makes preemption bounding meaningful — a schedule's executed
// Preemptions equals the preemptions of its decided prefix, because the
// default completion never adds any. It is the building block of
// systematic exploration.
type DecisionSched struct {
	Decisions []int
	pos       int
	Trace     []Decision
	// Preemptions counts decisions that switched away from a thread that
	// was still runnable (the bounding quantity of CHESS-style iterative
	// preemption bounding).
	Preemptions int

	lastTID interp.ThreadID
	hasLast bool
}

// DecisionState is the resumable state of a DecisionSched at a decision
// boundary. It pairs with an interp.Snapshot taken at the same step so
// prefix-sharing exploration (SnapCache) can resume a sibling schedule
// from the deepest cached ancestor instead of replaying from step 0.
type DecisionState struct {
	Trace       []Decision
	Preemptions int
	LastTID     interp.ThreadID
	HasLast     bool
}

// State captures the scheduler's position. The Trace slice is clipped,
// so later appends by either side don't alias.
func (s *DecisionSched) State() DecisionState {
	return DecisionState{
		Trace:       s.Trace[:len(s.Trace):len(s.Trace)],
		Preemptions: s.Preemptions,
		LastTID:     s.lastTID,
		HasLast:     s.hasLast,
	}
}

// SetState positions the scheduler at a captured decision boundary,
// keeping its Decisions vector: the next decision point consumed is the
// one at depth len(st.Trace). The captured state must come from an
// execution whose Chosen prefix matches this scheduler's Decisions
// (which is exactly what SnapCache's prefix keying guarantees).
func (s *DecisionSched) SetState(st DecisionState) {
	s.Trace = st.Trace
	s.pos = len(st.Trace)
	s.Preemptions = st.Preemptions
	s.lastTID, s.hasLast = st.LastTID, st.HasLast
}

// Next implements interp.Scheduler.
func (s *DecisionSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if len(runnable) == 1 {
		s.lastTID, s.hasLast = runnable[0], true
		return runnable[0]
	}
	sameIdx := -1
	if s.hasLast {
		for i, id := range runnable {
			if id == s.lastTID {
				sameIdx = i
				break
			}
		}
	}
	choice := 0
	if s.pos < len(s.Decisions) {
		choice = s.Decisions[s.pos]
	} else if sameIdx >= 0 {
		choice = sameIdx // non-preemptive default
	}
	s.pos++
	if choice >= len(runnable) {
		choice = len(runnable) - 1
	}
	if choice < 0 {
		// Hand-edited or corrupted decision vectors (e.g. a replayed JSON
		// trace) may carry negative entries; without this clamp the
		// runnable[choice] below panics with index-out-of-range.
		choice = 0
	}
	if sameIdx >= 0 && choice != sameIdx {
		s.Preemptions++
	}
	s.Trace = append(s.Trace, Decision{Choices: len(runnable), Chosen: choice, SameIdx: sameIdx, Step: step})
	s.lastTID, s.hasLast = runnable[choice], true
	return runnable[choice]
}

// Explorer performs bounded systematic schedule exploration (the SKI-style
// substrate): depth-first search over the tree of scheduling decisions,
// bounded by MaxRuns total executions and MaxDecisions branch points per
// execution (decision points beyond the bound always take choice 0).
type Explorer struct {
	// MaxRuns bounds the number of executions (default 256).
	MaxRuns int
	// MaxDecisions bounds the branching depth explored (default 12).
	MaxDecisions int
	// Snap, when non-nil, lets ExploreIPBRun resume each schedule from
	// the deepest snapshotted ancestor prefix instead of replaying it
	// from step 0. Exploration order and results are unaffected (see
	// SnapCache); only the work per run shrinks.
	Snap *SnapCache
}

// DefaultMaxDecisions is the branching-depth bound used when a caller
// leaves MaxDecisions at zero (Explorer, EngineConfig, ipbFrontier, and
// SnapCache all share it so prefix keys and frontier depths agree).
const DefaultMaxDecisions = 12

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Runs      int
	Exhausted bool // true if the full bounded tree was covered
}

// Explore runs mkRun once per schedule in the bounded tree. mkRun must
// construct a fresh machine wired to the provided scheduler, run it, and
// may inspect it (typically: attach a race detector). Exploration is
// deterministic.
func (e *Explorer) Explore(mkRun func(s interp.Scheduler) error) (ExploreResult, error) {
	maxRuns := e.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	maxDec := e.MaxDecisions
	if maxDec <= 0 {
		maxDec = DefaultMaxDecisions
	}

	stack := [][]int{{}}
	res := ExploreResult{}
	for len(stack) > 0 {
		if res.Runs >= maxRuns {
			return res, nil
		}
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		s := &DecisionSched{Decisions: d}
		if err := mkRun(s); err != nil {
			return res, fmt.Errorf("exploration run %d: %w", res.Runs, err)
		}
		res.Runs++

		// Schedule the unexplored siblings of every decision point at or
		// beyond this vector's frontier, within the depth bound. Positions
		// between the vector and the branch point pin the defaults this run
		// actually took, so the child replays the same prefix.
		limit := len(s.Trace)
		if limit > maxDec {
			limit = maxDec
		}
		for p := limit - 1; p >= len(d); p-- {
			for c := s.Trace[p].Choices - 1; c >= 0; c-- {
				if c == s.Trace[p].Chosen {
					continue
				}
				next := make([]int, p+1)
				copy(next, d)
				for q := len(d); q < p; q++ {
					next[q] = s.Trace[q].Chosen
				}
				next[p] = c
				stack = append(stack, next)
			}
		}
	}
	res.Exhausted = true
	return res, nil
}

// ExploreIPB explores the same bounded tree as Explore, but in iterative
// preemption-bounding order (CHESS): every reachable 0-preemption
// schedule runs before any 1-preemption schedule, which runs before any
// 2-preemption schedule, and so on. Most concurrency bugs trigger with
// very few preemptions, so under a tight run budget this ordering spends
// it where the payoff density is highest. The preemption count of a
// schedule is the number of decided points that switched away from a
// still-runnable thread; decision points past the decided prefix take the
// non-preemptive default, so the executed preemption count equals the
// prefix count and the run order genuinely ascends by preemptions.
// Exploration order is deterministic.
func (e *Explorer) ExploreIPB(mkRun func(s interp.Scheduler) error) (ExploreResult, error) {
	maxRuns := e.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	f := newIPBFrontier(e.MaxDecisions)
	res := ExploreResult{}
	for f.size > 0 {
		if res.Runs >= maxRuns {
			return res, nil
		}
		node, _ := f.pop()
		s := &DecisionSched{Decisions: node.vec}
		if err := mkRun(s); err != nil {
			return res, fmt.Errorf("exploration run %d: %w", res.Runs, err)
		}
		res.Runs++
		f.expand(node, s.Trace)
	}
	res.Exhausted = true
	return res, nil
}

// ipbNode is one pending schedule of a preemption-ordered exploration:
// the decision prefix and the number of preemptions that prefix performs.
type ipbNode struct {
	vec []int
	pre int
}

// ipbFrontier is a deterministic bucket priority queue over pending
// decision vectors, keyed by preemption count. Within a bucket, vectors
// pop in LIFO order, preserving the depth-first character of Explore. It
// is shared between ExploreIPB and the Engine's DFS strategy (which pops
// nodes round by round instead of in one loop).
type ipbFrontier struct {
	maxDec  int
	buckets map[int][]ipbNode
	minPre  int
	size    int
}

func newIPBFrontier(maxDec int) *ipbFrontier {
	if maxDec <= 0 {
		maxDec = DefaultMaxDecisions
	}
	f := &ipbFrontier{maxDec: maxDec, buckets: map[int][]ipbNode{}}
	f.push(ipbNode{})
	return f
}

func (f *ipbFrontier) push(n ipbNode) {
	if f.size == 0 || n.pre < f.minPre {
		f.minPre = n.pre
	}
	f.buckets[n.pre] = append(f.buckets[n.pre], n)
	f.size++
}

// pop removes and returns a pending node with the lowest preemption
// count.
func (f *ipbFrontier) pop() (ipbNode, bool) {
	if f.size == 0 {
		return ipbNode{}, false
	}
	for len(f.buckets[f.minPre]) == 0 {
		f.minPre++
	}
	b := f.buckets[f.minPre]
	n := b[len(b)-1]
	f.buckets[f.minPre] = b[:len(b)-1]
	f.size--
	return n, true
}

// expand generates the unexplored siblings of every decision point at or
// beyond the executed node's frontier (exactly as Explore does), tagging
// each child with the preemption count of its decided prefix.
func (f *ipbFrontier) expand(node ipbNode, trace []Decision) {
	limit := len(trace)
	if limit > f.maxDec {
		limit = f.maxDec
	}
	if limit <= len(node.vec) {
		return
	}
	// preAt[p] = preemptions performed by the first p executed decisions.
	preAt := make([]int, limit+1)
	for p := 0; p < limit; p++ {
		preAt[p+1] = preAt[p]
		if d := trace[p]; d.SameIdx >= 0 && d.Chosen != d.SameIdx {
			preAt[p+1]++
		}
	}
	for p := limit - 1; p >= len(node.vec); p-- {
		for c := trace[p].Choices - 1; c >= 0; c-- {
			if c == trace[p].Chosen {
				continue
			}
			next := make([]int, p+1)
			copy(next, node.vec)
			for q := len(node.vec); q < p; q++ {
				next[q] = trace[q].Chosen
			}
			next[p] = c
			pre := preAt[p]
			if trace[p].SameIdx >= 0 && c != trace[p].SameIdx {
				pre++
			}
			f.push(ipbNode{vec: next, pre: pre})
		}
	}
}
