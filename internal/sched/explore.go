package sched

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
)

// Decision is one scheduling decision point: how many threads were
// runnable and which index was chosen.
type Decision struct {
	Choices int
	Chosen  int
}

// DecisionSched drives the machine from an explicit decision vector: at
// each point where more than one thread is runnable it consumes one
// decision (defaulting to index 0 past the end of the vector) and records
// what it did. It is the building block of systematic exploration.
type DecisionSched struct {
	Decisions []int
	pos       int
	Trace     []Decision
}

// Next implements interp.Scheduler.
func (s *DecisionSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if len(runnable) == 1 {
		return runnable[0]
	}
	choice := 0
	if s.pos < len(s.Decisions) {
		choice = s.Decisions[s.pos]
	}
	s.pos++
	if choice >= len(runnable) {
		choice = len(runnable) - 1
	}
	if choice < 0 {
		// Hand-edited or corrupted decision vectors (e.g. a replayed JSON
		// trace) may carry negative entries; without this clamp the
		// runnable[choice] below panics with index-out-of-range.
		choice = 0
	}
	s.Trace = append(s.Trace, Decision{Choices: len(runnable), Chosen: choice})
	return runnable[choice]
}

// Explorer performs bounded systematic schedule exploration (the SKI-style
// substrate): depth-first search over the tree of scheduling decisions,
// bounded by MaxRuns total executions and MaxDecisions branch points per
// execution (decision points beyond the bound always take choice 0).
type Explorer struct {
	// MaxRuns bounds the number of executions (default 256).
	MaxRuns int
	// MaxDecisions bounds the branching depth explored (default 12).
	MaxDecisions int
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Runs      int
	Exhausted bool // true if the full bounded tree was covered
}

// Explore runs mkRun once per schedule in the bounded tree. mkRun must
// construct a fresh machine wired to the provided scheduler, run it, and
// may inspect it (typically: attach a race detector). Exploration is
// deterministic.
func (e *Explorer) Explore(mkRun func(s interp.Scheduler) error) (ExploreResult, error) {
	maxRuns := e.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	maxDec := e.MaxDecisions
	if maxDec <= 0 {
		maxDec = 12
	}

	stack := [][]int{{}}
	res := ExploreResult{}
	for len(stack) > 0 {
		if res.Runs >= maxRuns {
			return res, nil
		}
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		s := &DecisionSched{Decisions: d}
		if err := mkRun(s); err != nil {
			return res, fmt.Errorf("exploration run %d: %w", res.Runs, err)
		}
		res.Runs++

		// Schedule the unexplored siblings of every decision point at or
		// beyond this vector's frontier, within the depth bound.
		limit := len(s.Trace)
		if limit > maxDec {
			limit = maxDec
		}
		for p := limit - 1; p >= len(d); p-- {
			for c := s.Trace[p].Choices - 1; c >= 1; c-- {
				next := make([]int, p+1)
				copy(next, d)
				for q := len(d); q < p; q++ {
					next[q] = 0
				}
				next[p] = c
				stack = append(stack, next)
			}
		}
	}
	res.Exhausted = true
	return res, nil
}
