package sched

import "github.com/conanalysis/owl/internal/interp"

// SteerSched drives a machine toward a predicted racing pair: it first
// replays a decided prefix through the embedded DecisionSched, then
// switches to hold/prefer steering — keep one thread parked just before
// its access while driving the other to its side of the race, then
// release. It is the scheduler behind predictive confirmation
// (internal/predict): the prefix re-establishes the state in which the
// pair was predicted, and the steering phase tries to make the two
// accesses adjacent. Steering is deterministic, so a confirmation run is
// replayable like any other schedule.
type SteerSched struct {
	// DS supplies the decided prefix (its Decisions vector) and records
	// the decisions actually taken, prefix and steering phases alike.
	DS *DecisionSched

	hold      interp.ThreadID
	prefer    interp.ThreadID
	hasHold   bool
	hasPrefer bool
}

// Steer sets the steering targets used once the decided prefix is
// consumed: runnable threads other than hold are preferred, and among
// them prefer wins when runnable. Call it again to flip the roles
// between confirmation phases.
func (s *SteerSched) Steer(hold, prefer interp.ThreadID) {
	s.hold, s.hasHold = hold, true
	s.prefer, s.hasPrefer = prefer, true
}

// Next implements interp.Scheduler.
func (s *SteerSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if len(s.DS.Trace) < len(s.DS.Decisions) || !s.hasHold {
		return s.DS.Next(runnable, step)
	}
	choice := -1
	if s.hasPrefer {
		for i, id := range runnable {
			if id == s.prefer {
				choice = i
				break
			}
		}
	}
	if choice < 0 {
		for i, id := range runnable {
			if id != s.hold {
				choice = i
				break
			}
		}
	}
	if choice < 0 {
		// Only the held thread is runnable: it must run or the machine
		// stalls. The confirmation driver notices the overrun via its
		// event scan and gives up on the pair.
		choice = 0
	}
	return s.steered(runnable, choice, step)
}

// steered routes a steering choice through the DecisionSched so the
// decision trace, preemption count, and last-thread tracking stay
// exactly as if the choice had come from a decision vector.
func (s *SteerSched) steered(runnable []interp.ThreadID, choice int, step int) interp.ThreadID {
	ds := s.DS
	if len(runnable) == 1 {
		ds.lastTID, ds.hasLast = runnable[0], true
		return runnable[0]
	}
	sameIdx := -1
	if ds.hasLast {
		for i, id := range runnable {
			if id == ds.lastTID {
				sameIdx = i
				break
			}
		}
	}
	if sameIdx >= 0 && choice != sameIdx {
		ds.Preemptions++
	}
	ds.pos++
	ds.Trace = append(ds.Trace, Decision{Choices: len(runnable), Chosen: choice, SameIdx: sameIdx, Step: step})
	ds.lastTID, ds.hasLast = runnable[choice], true
	return runnable[choice]
}

// TraceSched wraps any scheduler and records the decisions it takes in
// the same format DecisionSched produces — one Decision per
// multi-runnable point, single-runnable steps unrecorded — so schedules
// driven by non-vector strategies (random, PCT) also yield a decided
// prefix that DecisionSched or SteerSched can replay exactly.
type TraceSched struct {
	Inner interp.Scheduler
	Trace []Decision

	lastTID interp.ThreadID
	hasLast bool
}

// Next implements interp.Scheduler.
func (s *TraceSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	id := s.Inner.Next(runnable, step)
	if len(runnable) > 1 {
		chosen, sameIdx := 0, -1
		for i, r := range runnable {
			if r == id {
				chosen = i
			}
			if s.hasLast && r == s.lastTID {
				sameIdx = i
			}
		}
		s.Trace = append(s.Trace, Decision{Choices: len(runnable), Chosen: chosen, SameIdx: sameIdx, Step: step})
	}
	s.lastTID, s.hasLast = id, true
	return id
}
