package sched

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/atomicity"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
)

// snapCacheProgram has racy globals, a mutex, io_delay windows (so
// runnable sets shrink and grow, exercising both dense and sparse
// decision regions), and output — everything a resumed run must get
// byte-identical to a replayed one.
const snapCacheProgram = `
global @a = 0
global @b = 0
global @mu = 0

func @worker(%d) {
entry:
  call @io_delay(%d)
  %x = load @a
  store %x, @b
  call @mutex_lock(@mu)
  %y = load @b
  store %y, @a
  call @mutex_unlock(@mu)
  call @print(%y)
  store 7, @a
  ret %x
}

func @main() {
entry:
  store 1, @a
  %t1 = call @spawn(@worker, 1)
  %t2 = call @spawn(@worker, 3)
  %m0 = load @a
  store %m0, @b
  call @yield()
  %m1 = load @b
  call @print(%m1)
  %j1 = call @join(%t1)
  %j2 = call @join(%t2)
  %s = load @a
  call @print(%s)
  ret 0
}
`

func snapCacheModule(t *testing.T) *ir.Module {
	t.Helper()
	mod, err := ir.Parse("snapcache_test.oir", snapCacheProgram)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// runSignature renders everything observable about one completed run:
// machine outcome, race and atomicity reports (with dynamic counts and
// stats), the run's coverage pair count, and the executed decision
// trace. Two explorations are equivalent iff their run-signature
// sequences match.
func runSignature(m *interp.Machine, ds *DecisionSched, rd *race.Detector, ad *atomicity.Detector, cov *RunCoverage) string {
	res := m.Result()
	var b strings.Builder
	fmt.Fprintf(&b, "exit=%d steps=%d stall=%d out=%q faults=%d",
		res.ExitCode, res.Steps, res.Stall, strings.Join(res.Output, "|"), len(res.Faults))
	var ids []string
	for _, r := range rd.Reports() {
		ids = append(ids, fmt.Sprintf("%s x%d", r.ID(), r.Count))
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, " races=[%s] rstats=%+v", strings.Join(ids, ","), rd.Stats())
	ids = ids[:0]
	for _, r := range ad.Reports() {
		ids = append(ids, fmt.Sprintf("%s x%d", r.ID(), r.Count))
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, " atom=[%s] cov=%d pre=%d trace=", strings.Join(ids, ","), cov.Len(), ds.Preemptions)
	for _, d := range ds.Trace {
		fmt.Fprintf(&b, "%d/%d;", d.Chosen, d.Choices)
	}
	return b.String()
}

// exploreSignatures runs the bounded IPB exploration over the test
// program with fresh detectors per run, optionally through a snapshot
// cache, and returns the ordered run signatures.
func exploreSignatures(t *testing.T, mod *ir.Module, snap *SnapCache, maxRuns, maxDec int) []string {
	t.Helper()
	var sigs []string
	var rd *race.Detector
	var ad *atomicity.Detector
	var cov *RunCoverage
	gc := NewCoverage()
	ex := &Explorer{MaxRuns: maxRuns, MaxDecisions: maxDec, Snap: snap}
	res, err := ex.ExploreIPBRun(
		func() interp.Config {
			rd, ad, cov = race.NewDetector(), atomicity.NewDetector(), gc.NewRun()
			return interp.Config{
				Module: mod, MaxSteps: 4096,
				Observers:       []interp.Observer{rd, ad},
				SwitchObservers: []interp.SwitchObserver{cov},
			}
		},
		func(m *interp.Machine, ds *DecisionSched) error {
			sigs = append(sigs, runSignature(m, ds, rd, ad, cov))
			gc.Merge(cov)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != len(sigs) {
		t.Fatalf("res.Runs=%d, signatures=%d", res.Runs, len(sigs))
	}
	sigs = append(sigs, fmt.Sprintf("total: runs=%d exhausted=%v pairs=%d", res.Runs, res.Exhausted, gc.Pairs()))
	return sigs
}

// TestExploreIPBRunSnapshotsPreserveResults is the sched-layer half of
// the determinism gate: with the snapshot cache on, every run resumed
// from a cached ancestor must be byte-identical — outcome, race and
// atomicity reports with counts and hot-path stats, coverage, executed
// trace — to the same run replayed from step 0.
func TestExploreIPBRunSnapshotsPreserveResults(t *testing.T) {
	mod := snapCacheModule(t)
	base := exploreSignatures(t, mod, nil, 64, 6)

	snap := NewSnapCache(256)
	got := exploreSignatures(t, mod, snap, 64, 6)

	if len(base) != len(got) {
		t.Fatalf("run counts differ: off=%d on=%d", len(base), len(got))
	}
	for i := range base {
		if base[i] != got[i] {
			t.Errorf("run %d diverged with snapshots on:\noff: %s\non:  %s", i, base[i], got[i])
		}
	}
	st := snap.Stats()
	if st.Hits == 0 {
		t.Error("snapshot cache was never hit; prefix sharing is inert")
	}
	if st.StepsSaved == 0 {
		t.Error("no steps saved despite cache hits")
	}
	if st.Stores == 0 {
		t.Error("no snapshots stored")
	}
	t.Logf("snap stats: %+v", st)
}

// TestExploreIPBRunMatchesExploreIPB checks the driver refactor itself:
// the cache-aware entry point must pop and expand exactly the schedules
// ExploreIPB does.
func TestExploreIPBRunMatchesExploreIPB(t *testing.T) {
	mod := snapCacheModule(t)
	var ipbTraces []string
	ex := &Explorer{MaxRuns: 64, MaxDecisions: 6}
	ipbRes, err := ex.ExploreIPB(func(s interp.Scheduler) error {
		m, err := interp.New(interp.Config{Module: mod, MaxSteps: 4096, Sched: s})
		if err != nil {
			return err
		}
		m.Run()
		ds := s.(*DecisionSched)
		ipbTraces = append(ipbTraces, fmt.Sprintf("%v->%d", ds.Decisions, len(ds.Trace)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var runTraces []string
	ex2 := &Explorer{MaxRuns: 64, MaxDecisions: 6, Snap: NewSnapCache(64)}
	runRes, err := ex2.ExploreIPBRun(
		func() interp.Config { return interp.Config{Module: mod, MaxSteps: 4096} },
		func(m *interp.Machine, ds *DecisionSched) error {
			runTraces = append(runTraces, fmt.Sprintf("%v->%d", ds.Decisions, len(ds.Trace)))
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ipbRes != runRes {
		t.Errorf("results differ: ipb=%+v run=%+v", ipbRes, runRes)
	}
	if len(ipbTraces) != len(runTraces) {
		t.Fatalf("run counts differ: %d vs %d", len(ipbTraces), len(runTraces))
	}
	for i := range ipbTraces {
		if ipbTraces[i] != runTraces[i] {
			t.Errorf("run %d: ipb %s, cache-aware %s", i, ipbTraces[i], runTraces[i])
		}
	}
}

// TestSnapCacheEvictsLRUWithinBudget pins the -snap-cache budget
// semantics: the entry count never exceeds the budget, overflow evicts,
// and a tiny cache still preserves results (it just shares less).
func TestSnapCacheEvictsLRUWithinBudget(t *testing.T) {
	mod := snapCacheModule(t)
	base := exploreSignatures(t, mod, nil, 64, 6)
	snap := NewSnapCache(3)
	got := exploreSignatures(t, mod, snap, 64, 6)
	for i := range base {
		if base[i] != got[i] {
			t.Fatalf("run %d diverged under a size-3 cache:\noff: %s\non:  %s", i, base[i], got[i])
		}
	}
	if n := snap.Len(); n > 3 {
		t.Errorf("cache holds %d entries, budget is 3", n)
	}
	st := snap.Stats()
	if st.Evictions == 0 {
		t.Errorf("expected evictions from a size-3 cache, stats %+v", st)
	}
}

// TestRunMachineFallsBackWithoutDecisionSched: non-systematic schedulers
// (random, PCT) can't be keyed by decision prefixes; RunMachine must run
// them from scratch and store nothing.
func TestRunMachineFallsBackWithoutDecisionSched(t *testing.T) {
	mod := snapCacheModule(t)
	snap := NewSnapCache(16)
	m, err := snap.RunMachine(interp.Config{Module: mod, MaxSteps: 4096, Sched: NewRandom(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Result(); res.Stall != interp.StallDone {
		t.Fatalf("random run did not finish: %+v", res)
	}
	if st := snap.Stats(); st.Stores != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("fallback run touched the cache: %+v", st)
	}
	// A nil cache is the disabled configuration and must also run fine.
	var off *SnapCache
	m, err = off.RunMachine(interp.Config{Module: mod, MaxSteps: 4096, Sched: &DecisionSched{}})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Result(); res.Stall != interp.StallDone {
		t.Fatalf("nil-cache run did not finish: %+v", res)
	}
}

// TestRunMachineRejectsObserverMismatch: sharing one cache across runs
// with different observer compositions would silently corrupt state;
// RunMachine must surface it instead.
func TestRunMachineRejectsObserverMismatch(t *testing.T) {
	mod := snapCacheModule(t)
	snap := NewSnapCache(16)
	run := func(obs []interp.Observer, dec []int) error {
		_, err := snap.RunMachine(interp.Config{
			Module: mod, MaxSteps: 4096,
			Sched: &DecisionSched{Decisions: dec}, Observers: obs,
		})
		return err
	}
	// The seed run decides 0 at its first decision point, so its first
	// stored boundary is keyed "0." — which the second run's vector
	// extends, guaranteeing a cache hit for the mismatch to surface on.
	if err := run([]interp.Observer{race.NewDetector()}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if snap.Stats().Stores == 0 {
		t.Fatal("seed run stored nothing; mismatch case not reachable")
	}
	err := run([]interp.Observer{race.NewDetector(), atomicity.NewDetector()}, []int{0, 1})
	if err != ErrSnapObserverMismatch {
		t.Fatalf("mismatched observers: err=%v, want ErrSnapObserverMismatch", err)
	}
}
