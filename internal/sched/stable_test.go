package sched

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

const stableTestSrc = `
module m

global @x = 0

func @worker(%n) {
entry:
  %v = load @x
  %v2 = add %v, %n
  store %v2, @x
  ret 0
}

func @main() {
entry:
  %t = call @spawn(@worker, 1)
  %r = call @join(%t)
  ret 0
}
`

func stableTestModule(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse("stable.oir", stableTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// warmState builds a state carrying a few coverage pairs and report IDs
// keyed against m, the way an absorbed exploration would have left it.
func warmState(t *testing.T, m *ir.Module) *ExploreState {
	t.Helper()
	s := NewExploreState(0)
	w, mn := m.Func("worker"), m.Func("main")
	s.mu.Lock()
	s.cov.pairs[covKey{from: w.InstrAt(0), to: mn.InstrAt(1)}] = struct{}{}
	s.cov.pairs[covKey{from: mn.InstrAt(0), to: w.InstrAt(2)}] = struct{}{}
	s.cov.pairs[covKey{from: w.InstrAt(3), to: w.InstrAt(0)}] = struct{}{}
	s.seen["race-b"] = true
	s.seen["race-a"] = true
	s.explorations = 2
	s.mu.Unlock()
	return s
}

// TestExportImportRoundTrip: Export against one parse of a module,
// Import against an independent re-parse — the restart path — must
// reproduce pair count, seen set, exploration count, and an identical
// re-export.
func TestExportImportRoundTrip(t *testing.T) {
	m1 := stableTestModule(t)
	s1 := warmState(t, m1)

	snap := s1.Export()
	if len(snap.Pairs) != 3 || len(snap.Seen) != 2 || snap.Explorations != 2 {
		t.Fatalf("export = %+v", snap)
	}
	if snap.Seen[0] != "race-a" || snap.Seen[1] != "race-b" {
		t.Errorf("seen not sorted: %v", snap.Seen)
	}

	m2 := stableTestModule(t)
	s2 := NewExploreState(0)
	if err := s2.Import(m2, snap); err != nil {
		t.Fatalf("import: %v", err)
	}
	if s2.Pairs() != 3 || s2.SeenReports() != 2 || s2.Explorations() != 2 {
		t.Fatalf("imported state: pairs=%d seen=%d expl=%d", s2.Pairs(), s2.SeenReports(), s2.Explorations())
	}
	if !s2.Warm() {
		t.Error("imported state is not warm")
	}
	if got := s2.Export(); !reflect.DeepEqual(got, snap) {
		t.Errorf("re-export diverged:\n got %+v\nwant %+v", got, snap)
	}
}

// TestExportDeterministicBytes: two identical states marshal to
// identical JSON — the property the persistence layer's checksummed
// blobs lean on.
func TestExportDeterministicBytes(t *testing.T) {
	m := stableTestModule(t)
	a, _ := json.Marshal(warmState(t, m).Export())
	b, _ := json.Marshal(warmState(t, m).Export())
	if string(a) != string(b) {
		t.Errorf("exports differ:\n%s\n%s", a, b)
	}
}

// TestImportRefusesToGuess: positions that do not resolve against the
// module fail the whole import; importing into a warm state fails too.
func TestImportRefusesToGuess(t *testing.T) {
	m := stableTestModule(t)
	bad := StateSnapshot{Pairs: []StablePair{{FromFn: "worker", FromIx: 0, ToFn: "gone", ToIx: 1}}}
	if err := NewExploreState(0).Import(m, bad); err == nil {
		t.Error("unresolvable pair imported silently")
	}
	outOfRange := StateSnapshot{Pairs: []StablePair{{FromFn: "worker", FromIx: 99, ToFn: "main", ToIx: 0}}}
	if err := NewExploreState(0).Import(m, outOfRange); err == nil {
		t.Error("out-of-range pair imported silently")
	}
	warm := warmState(t, m)
	if err := warm.Import(m, StateSnapshot{Explorations: 1}); err == nil {
		t.Error("import into warm state succeeded")
	}
	if err := NewExploreState(0).Import(ir.NewModule("cold"), StateSnapshot{}); err == nil {
		t.Error("import against unfrozen module succeeded")
	}
}

// TestJournalCapturesAbsorbDelta: with the journal on, Absorb records
// exactly what was new, TakeDelta drains it (sorted, absolute
// exploration count), and a second TakeDelta returns nil.
func TestJournalCapturesAbsorbDelta(t *testing.T) {
	m := stableTestModule(t)
	w := m.Func("worker")
	s := NewExploreState(0)
	s.SetJournal(true)

	e1 := NewEngine(EngineConfig{Budget: 6})
	e1.cov.pairs[covKey{from: w.InstrAt(0), to: w.InstrAt(1)}] = struct{}{}
	e1.cov.pairs[covKey{from: w.InstrAt(1), to: w.InstrAt(2)}] = struct{}{}
	e1.seen["r1"] = true
	s.Absorb(e1)

	d := s.TakeDelta()
	if d == nil || len(d.Pairs) != 2 || len(d.Seen) != 1 || d.Explorations != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Pairs[0].FromIx > d.Pairs[1].FromIx {
		t.Errorf("delta pairs not sorted: %+v", d.Pairs)
	}
	if s.TakeDelta() != nil {
		t.Error("drained journal yielded a second delta")
	}

	// A saturated re-absorb (nothing new) still journals the exploration
	// count, so the persistence layer records the submission.
	e2 := NewEngine(EngineConfig{Budget: 6})
	e2.cov.pairs[covKey{from: w.InstrAt(0), to: w.InstrAt(1)}] = struct{}{}
	e2.seen["r1"] = true
	s.Absorb(e2)
	d = s.TakeDelta()
	if d == nil || len(d.Pairs) != 0 || len(d.Seen) != 0 || d.Explorations != 2 {
		t.Fatalf("saturated delta = %+v", d)
	}
}

// TestApplyDeltaIdempotent: replaying a delta that is already folded in
// (checkpoint-then-crash-before-WAL-reset) changes nothing, and
// replaying on a cold state converges to the same counters.
func TestApplyDeltaIdempotent(t *testing.T) {
	m := stableTestModule(t)
	d := &StateDelta{
		Pairs:        []StablePair{{FromFn: "worker", FromIx: 0, ToFn: "worker", ToIx: 1}},
		Seen:         []string{"r1"},
		Explorations: 3,
	}
	s := NewExploreState(0)
	for i := 0; i < 3; i++ {
		if err := s.ApplyDelta(m, d); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if s.Pairs() != 1 || s.SeenReports() != 1 || s.Explorations() != 3 {
		t.Fatalf("after 3 replays: pairs=%d seen=%d expl=%d", s.Pairs(), s.SeenReports(), s.Explorations())
	}
	// A stale delta (lower absolute count) never regresses the counter.
	stale := &StateDelta{Explorations: 1, Seen: []string{"r0"}}
	if err := s.ApplyDelta(m, stale); err != nil {
		t.Fatal(err)
	}
	if s.Explorations() != 3 || s.SeenReports() != 2 {
		t.Fatalf("stale replay regressed state: expl=%d seen=%d", s.Explorations(), s.SeenReports())
	}
	bad := &StateDelta{Pairs: []StablePair{{FromFn: "gone", FromIx: 0, ToFn: "worker", ToIx: 0}}}
	if err := s.ApplyDelta(m, bad); err == nil {
		t.Error("unresolvable delta applied silently")
	}
}

// TestImportedStateResumes is the end-to-end contract: an engine resumed
// from an imported state behaves exactly like one resumed from the
// original — saturation early-stop and all (the scripted-coverage
// analogue of the serve restart-resume parity gate).
func TestImportedStateResumes(t *testing.T) {
	m := stableTestModule(t)
	w := m.Func("worker")
	pairFor := func(j *Job) covKey {
		// Fabricate a deterministic per-job pair from the job's seed so
		// replays re-observe the same pairs.
		i := int(j.Seed) % 3
		return covKey{from: w.InstrAt(i), to: w.InstrAt((i + 1) % 4)}
	}
	runner := func(jobs []*Job) error {
		for _, j := range jobs {
			j.Cov.pairs[pairFor(j)] = struct{}{}
			j.ReportIDs = []string{"race-shared"}
		}
		return nil
	}

	orig := NewExploreState(0)
	first := NewEngine(EngineConfig{Budget: 24, RoundRuns: 6, Saturation: 2})
	if _, err := first.Explore(runner); err != nil {
		t.Fatal(err)
	}
	orig.Absorb(first)

	imported := NewExploreState(0)
	if err := imported.Import(stableTestModule(t), orig.Export()); err != nil {
		t.Fatal(err)
	}
	// The imported state was bound against a re-parse; resume the engine
	// against the ORIGINAL module's instructions (the serve layer always
	// re-resolves module and state together, so bind against m here).
	imported2 := NewExploreState(0)
	if err := imported2.Import(m, orig.Export()); err != nil {
		t.Fatal(err)
	}

	run := func(state *ExploreState) *EngineResult {
		e := NewEngine(EngineConfig{Budget: 24, RoundRuns: 6, Saturation: 2, Resume: state})
		res, err := e.Explore(runner)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fromOrig, fromImported := run(orig), run(imported2)
	if fromOrig.Runs != fromImported.Runs || fromOrig.EarlyStop != fromImported.EarlyStop {
		t.Errorf("imported resume diverged: orig runs=%d early=%v, imported runs=%d early=%v",
			fromOrig.Runs, fromOrig.EarlyStop, fromImported.Runs, fromImported.EarlyStop)
	}
	if !fromImported.EarlyStop {
		t.Error("imported resume did not early-stop")
	}
}
