// The exploration Engine is the budgeted, coverage-guided replacement for
// a fixed-seed detection loop: it spends a run budget across a portfolio
// of schedule strategies in rounds, scores each round by the new
// interleaving coverage and new deduplicated reports it produced, steers
// the remaining budget toward the productive strategies, and stops early
// once the search saturates. Everything the Engine decides — job order,
// seeds, allocation, early stop — is a pure function of (Seed, Budget,
// round/saturation configuration) plus the deterministic run outcomes, so
// an exploration is reproducible and independent of how many workers the
// caller uses to execute each round's jobs.
package sched

import (
	"context"
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
)

// Strategy identifies one member of the exploration portfolio.
type Strategy int

// The portfolio. Random replays the classic seeded-random detection
// schedules; PCT runs priority schedules with random priority-change
// points (Burckhardt et al.); DFS runs the systematic Explorer in
// iterative preemption-bounding order (0-preemption schedules first).
const (
	StrategyRandom Strategy = iota
	StrategyPCT
	StrategyDFS

	numStrategies
)

func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyPCT:
		return "pct"
	case StrategyDFS:
		return "dfs"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists the portfolio in allocation order.
func Strategies() []Strategy {
	return []Strategy{StrategyRandom, StrategyPCT, StrategyDFS}
}

// Job is one execution the Engine hands to the runner: a scheduler to
// drive the machine and a per-run coverage recorder to attach to it. The
// runner must fill ReportIDs with the stable IDs of the (per-run
// deduplicated) reports the run produced; the Engine uses them to score
// rounds and the caller typically also merges the report objects itself,
// in job order.
type Job struct {
	Strategy Strategy
	// Seed is the seed behind Sched for the random/PCT strategies (0 for
	// DFS jobs, which are driven by a decision vector instead).
	Seed  uint64
	Sched interp.Scheduler
	Cov   *RunCoverage
	// ReportIDs is filled by the runner.
	ReportIDs []string

	node ipbNode    // DFS jobs: the decision prefix this job executes
	snap *SnapCache // DFS jobs: prefix-sharing resume cache (nil: replay)
}

// Run executes the job's schedule to completion and returns the
// machine. cfg must carry the job's Sched (plus the run's observers and
// coverage recorder); DFS jobs attached to a snapshot cache resume from
// the deepest cached decision-prefix ancestor, everything else runs
// from step 0. Runners that need finer control may keep driving
// machines themselves — Run is the cache-aware convenience path.
func (j *Job) Run(cfg interp.Config) (*interp.Machine, error) {
	return j.snap.RunMachine(cfg)
}

// EngineConfig tunes an exploration. The zero value of every field gets a
// sensible default except Budget, which is required.
type EngineConfig struct {
	// Budget is the total number of runs the engine may spend.
	Budget int
	// Seed is the base seed every strategy's per-run seeds derive from.
	Seed uint64
	// RoundRuns is the number of runs per allocation round (default 6).
	RoundRuns int
	// Saturation is the number of consecutive rounds with zero new
	// coverage and zero new reports after which the engine stops early
	// (default 2).
	Saturation int
	// MaxDecisions bounds the DFS strategy's branching depth (default 12).
	MaxDecisions int
	// PCTDepth is the PCT bug depth d (default 3).
	PCTDepth int
	// PCTSteps is the step horizon PCT scatters its d-1 priority-change
	// points over (default 4096; callers pass the program's MaxSteps).
	PCTSteps int
	// Snap, when non-nil, attaches a prefix-sharing snapshot cache to the
	// DFS strategy's jobs: runners using Job.Run resume each systematic
	// schedule from the deepest cached ancestor instead of replaying its
	// prefix. Exploration decisions and results are unaffected (snapshot
	// fidelity makes a resumed run byte-identical to a from-scratch run);
	// only wall-clock work shrinks.
	Snap *SnapCache
	// Resume, when non-nil, pre-seeds the engine from a persistent
	// ExploreState: the coverage map and seen-report set start at the
	// state's accumulated values, so schedules the state has already
	// covered score zero and the saturation early stop fires as soon as
	// the program has nothing new to show. When Snap is nil the state's
	// snapshot cache (if any) is attached too. The engine never writes
	// the state — callers fold results back with ExploreState.Absorb.
	Resume *ExploreState
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.RoundRuns <= 0 {
		c.RoundRuns = 6
	}
	if c.Saturation <= 0 {
		c.Saturation = 2
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = DefaultMaxDecisions
	}
	if c.PCTDepth <= 0 {
		c.PCTDepth = 3
	}
	if c.PCTSteps <= 0 {
		c.PCTSteps = 4096
	}
	return c
}

// StrategyStats accumulates one strategy's contribution.
type StrategyStats struct {
	Runs        int // executions spent on the strategy
	NewCoverage int // coverage pairs it observed first
	NewReports  int // deduped reports it observed first
}

// RoundStats is the engine's log of one allocation round.
type RoundStats struct {
	Round       int
	Alloc       [numStrategies]int
	NewCoverage int
	NewReports  int
}

// EngineResult summarizes an exploration.
type EngineResult struct {
	Runs          int
	Rounds        int
	EarlyStop     bool // stopped on saturation with budget left
	DFSExhausted  bool // the bounded DFS tree was fully covered
	Interrupted   bool // the caller's context ended with budget left
	CoveragePairs int
	Strategies    [numStrategies]StrategyStats
	RoundLog      []RoundStats
}

// Engine runs the portfolio. Construct with NewEngine; one Engine drives
// one exploration.
type Engine struct {
	cfg      EngineConfig
	cov      *Coverage
	seen     map[string]bool // report IDs already observed
	frontier *ipbFrontier
	nRandom  uint64 // runs spent per seeded strategy (drives seed derivation)
	nPCT     uint64
	res      EngineResult
}

// NewEngine returns an engine for one exploration.
func NewEngine(cfg EngineConfig) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Resume != nil && cfg.Snap == nil {
		cfg.Snap = cfg.Resume.SnapCache()
	}
	cfg.Snap.EnsureDepth(cfg.MaxDecisions)
	e := &Engine{
		cfg:      cfg,
		cov:      NewCoverage(),
		seen:     make(map[string]bool),
		frontier: newIPBFrontier(cfg.MaxDecisions),
	}
	if cfg.Resume != nil {
		cfg.Resume.seed(e)
	}
	return e
}

// Coverage exposes the engine's global coverage map (read-only for
// callers; useful in tests and metrics).
func (e *Engine) Coverage() *Coverage { return e.cov }

// Explore spends the budget. runner executes one round's jobs — it may
// run them concurrently, but must have filled every job's ReportIDs (and
// let the machines feed the jobs' Cov recorders) by the time it returns.
// The engine itself touches shared state only between runner calls, in
// job order, so the outcome is independent of the runner's parallelism.
func (e *Engine) Explore(runner func(jobs []*Job) error) (*EngineResult, error) {
	return e.ExploreCtx(context.Background(), runner)
}

// ExploreCtx is Explore with cooperative cancellation: the context is
// checked between rounds (never mid-round, so a round's jobs always
// merge atomically and the outcome stays deterministic for the rounds
// that did run). A canceled exploration returns the partial result with
// Interrupted set rather than an error — the supervisor layer decides
// whether losing the remaining budget degrades or fails the stage.
func (e *Engine) ExploreCtx(ctx context.Context, runner func(jobs []*Job) error) (*EngineResult, error) {
	if e.cfg.Budget <= 0 {
		return &e.res, nil
	}
	remaining := e.cfg.Budget
	dry := 0
	for remaining > 0 && dry < e.cfg.Saturation {
		if ctx.Err() != nil {
			e.res.Interrupted = true
			break
		}
		roundRuns := e.cfg.RoundRuns
		if roundRuns > remaining {
			roundRuns = remaining
		}
		jobs := e.buildJobs(e.allocate(roundRuns))
		if len(jobs) == 0 {
			break
		}
		if err := runner(jobs); err != nil {
			return &e.res, fmt.Errorf("exploration round %d: %w", e.res.Rounds+1, err)
		}
		remaining -= len(jobs)
		rs := e.merge(jobs)
		e.res.Rounds++
		rs.Round = e.res.Rounds
		e.res.RoundLog = append(e.res.RoundLog, rs)
		if rs.NewCoverage == 0 && rs.NewReports == 0 {
			dry++
		} else {
			dry = 0
		}
	}
	e.res.EarlyStop = dry >= e.cfg.Saturation && remaining > 0
	e.res.DFSExhausted = e.frontier.size == 0
	e.res.CoveragePairs = e.cov.Pairs()
	return &e.res, nil
}

// allocate splits a round's runs across the portfolio. The weight of a
// strategy is its smoothed productivity so far (new coverage plus
// new reports, per run); an untried strategy weighs as much as a
// perfectly productive one so every strategy gets probed early. The
// split is integer largest-remainder with ties broken by strategy order,
// so it is deterministic.
func (e *Engine) allocate(runs int) [numStrategies]int {
	const scale = 100
	var w [numStrategies]int64
	var total int64
	for s := Strategy(0); s < numStrategies; s++ {
		st := e.res.Strategies[s]
		if st.Runs == 0 {
			w[s] = scale
		} else {
			// +1 keeps a saturated strategy in the rotation at low rate:
			// coverage can plateau and then break open at a deeper round.
			w[s] = 1 + scale*int64(st.NewCoverage+4*st.NewReports)/int64(st.Runs)
		}
		if s == StrategyDFS && e.frontier.size == 0 {
			w[s] = 0 // nothing left to pop
		}
		total += w[s]
	}
	var alloc [numStrategies]int
	if total == 0 {
		alloc[StrategyRandom] = runs
		return alloc
	}
	assigned := 0
	var rem [numStrategies]int64
	for s := Strategy(0); s < numStrategies; s++ {
		share := int64(runs) * w[s]
		alloc[s] = int(share / total)
		rem[s] = share % total
		assigned += alloc[s]
	}
	for assigned < runs {
		best := Strategy(-1)
		for s := Strategy(0); s < numStrategies; s++ {
			if w[s] == 0 {
				continue
			}
			if best < 0 || rem[s] > rem[best] {
				best = s
			}
		}
		alloc[best]++
		rem[best] = -1
		assigned++
	}
	// DFS can only use as many runs as its frontier holds; hand the rest
	// to the random strategy, which never exhausts.
	if over := alloc[StrategyDFS] - e.frontier.size; over > 0 {
		alloc[StrategyDFS] -= over
		alloc[StrategyRandom] += over
	}
	return alloc
}

// buildJobs materializes one round's jobs in strategy order, with each
// strategy's jobs in seed (or frontier) order — the fixed merge order the
// determinism contract promises.
func (e *Engine) buildJobs(alloc [numStrategies]int) []*Job {
	var jobs []*Job
	for i := 0; i < alloc[StrategyRandom]; i++ {
		e.nRandom++
		// Seeds 1,2,3,... offset by the base seed: with Seed 0 the random
		// strategy replays exactly the fixed-mode seed sequence.
		seed := e.cfg.Seed + e.nRandom
		jobs = append(jobs, &Job{
			Strategy: StrategyRandom, Seed: seed,
			Sched: NewRandom(seed), Cov: e.cov.NewRun(),
		})
	}
	for i := 0; i < alloc[StrategyPCT]; i++ {
		e.nPCT++
		seed := splitmix64((e.cfg.Seed ^ 0xa02d2c58f1a7690d) + e.nPCT)
		jobs = append(jobs, &Job{
			Strategy: StrategyPCT, Seed: seed,
			Sched: NewPCT(seed, e.cfg.PCTDepth, e.cfg.PCTSteps), Cov: e.cov.NewRun(),
		})
	}
	for i := 0; i < alloc[StrategyDFS]; i++ {
		node, ok := e.frontier.pop()
		if !ok {
			break
		}
		jobs = append(jobs, &Job{
			Strategy: StrategyDFS,
			Sched:    &DecisionSched{Decisions: node.vec},
			Cov:      e.cov.NewRun(),
			node:     node,
			snap:     e.cfg.Snap,
		})
	}
	return jobs
}

// merge folds one executed round into the engine state, in job order:
// coverage pairs and report IDs are credited to the first job that
// observed them, and DFS jobs expand their schedule children into the
// frontier.
func (e *Engine) merge(jobs []*Job) RoundStats {
	var rs RoundStats
	for _, j := range jobs {
		st := &e.res.Strategies[j.Strategy]
		st.Runs++
		rs.Alloc[j.Strategy]++
		e.res.Runs++
		fresh := e.cov.Merge(j.Cov)
		st.NewCoverage += fresh
		rs.NewCoverage += fresh
		for _, id := range j.ReportIDs {
			if e.seen[id] {
				continue
			}
			e.seen[id] = true
			st.NewReports++
			rs.NewReports++
		}
		if j.Strategy == StrategyDFS {
			if ds, ok := j.Sched.(*DecisionSched); ok {
				e.frontier.expand(j.node, ds.Trace)
			}
		}
	}
	return rs
}

// splitmix64 is the standard 64-bit mixer; it decorrelates the PCT seed
// stream from the raw random-strategy seed sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
