// Package sched provides deterministic thread schedulers for the
// interpreter: round-robin, seeded random, PCT-style priority scheduling,
// recorded-schedule replay, and an exhaustive DFS explorer used by the
// SKI-style kernel detector. All schedulers are deterministic functions of
// their construction parameters, which is what makes OWL's replay-based
// verification possible.
package sched

import (
	"github.com/conanalysis/owl/internal/interp"
)

// RoundRobin cycles through runnable threads, switching threads every
// Quantum steps (default 1, i.e. fully interleaved).
type RoundRobin struct {
	Quantum int
	last    interp.ThreadID
	used    int
}

// NewRoundRobin returns a round-robin scheduler with the given quantum.
func NewRoundRobin(quantum int) *RoundRobin {
	if quantum < 1 {
		quantum = 1
	}
	return &RoundRobin{Quantum: quantum, last: -1}
}

// Next implements interp.Scheduler.
func (s *RoundRobin) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if s.last >= 0 && s.used < s.Quantum {
		for _, id := range runnable {
			if id == s.last {
				s.used++
				return id
			}
		}
	}
	// Pick the first runnable id strictly greater than last, wrapping.
	for _, id := range runnable {
		if id > s.last {
			s.last, s.used = id, 1
			return id
		}
	}
	s.last, s.used = runnable[0], 1
	return runnable[0]
}

// rng is a self-contained xorshift64* PRNG; math/rand would also be
// deterministic, but an explicit state keeps the schedule a pure function
// of the seed across Go versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Random picks a uniformly random runnable thread each step, seeded.
type Random struct{ r *rng }

// NewRandom returns a seeded random scheduler.
func NewRandom(seed uint64) *Random { return &Random{r: newRNG(seed)} }

// Next implements interp.Scheduler.
func (s *Random) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	return runnable[s.r.intn(len(runnable))]
}

// PCT approximates the PCT algorithm (Burckhardt et al.): threads get
// random priorities; the highest-priority runnable thread runs, and at d-1
// random step indices the running thread's priority is demoted below all
// others. Small d finds most races with high probability.
type PCT struct {
	r          *rng
	prio       map[interp.ThreadID]int
	nextPrio   int
	demoteAt   map[int]bool
	demoteBase int
}

// NewPCT returns a PCT scheduler with depth d over maxSteps steps.
func NewPCT(seed uint64, d, maxSteps int) *PCT {
	p := &PCT{
		r:        newRNG(seed),
		prio:     make(map[interp.ThreadID]int),
		demoteAt: make(map[int]bool),
		nextPrio: 1 << 20,
	}
	for i := 0; i < d-1; i++ {
		if maxSteps > 0 {
			p.demoteAt[p.r.intn(maxSteps)] = true
		}
	}
	return p
}

// Next implements interp.Scheduler.
func (s *PCT) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	best := runnable[0]
	for _, id := range runnable {
		if _, ok := s.prio[id]; !ok {
			// Random initial priority, high band.
			s.prio[id] = (1 << 20) + s.r.intn(1<<20)
		}
		if s.prio[id] > s.prio[best] {
			best = id
		}
	}
	if s.demoteAt[step] {
		s.demoteBase--
		s.prio[best] = s.demoteBase
		// Re-pick after demotion.
		for _, id := range runnable {
			if s.prio[id] > s.prio[best] {
				best = id
			}
		}
	}
	return best
}

// Replay replays a recorded schedule exactly; once the recording is
// exhausted (or the recorded thread is not runnable — which can happen
// when a verifier perturbs the run), it falls back to the supplied
// scheduler (default: round-robin).
type Replay struct {
	Trace    []interp.ThreadID
	Fallback interp.Scheduler
	pos      int
	// Diverged reports whether the replay ever had to fall back.
	Diverged bool
}

// NewReplay returns a replay scheduler over the recorded trace.
func NewReplay(trace []interp.ThreadID) *Replay {
	return &Replay{Trace: trace, Fallback: NewRoundRobin(1)}
}

// Next implements interp.Scheduler.
func (s *Replay) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if s.pos < len(s.Trace) {
		want := s.Trace[s.pos]
		s.pos++
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
		s.Diverged = true
	}
	if s.Fallback == nil {
		s.Fallback = NewRoundRobin(1)
	}
	return s.Fallback.Next(runnable, step)
}

// Fixed always prefers the lowest-id runnable thread in Order; useful in
// tests to force specific interleavings, and used by the verifiers to
// steer the racing instructions into a requested order.
type Fixed struct {
	// Order is the preference list; threads not listed come after listed
	// ones, lowest id first.
	Order []interp.ThreadID
}

// Next implements interp.Scheduler.
func (s *Fixed) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	for _, want := range s.Order {
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
	}
	return runnable[0]
}
