// Package sched provides deterministic thread schedulers for the
// interpreter: round-robin, seeded random, PCT-style priority scheduling,
// recorded-schedule replay, and an exhaustive DFS explorer used by the
// SKI-style kernel detector. All schedulers are deterministic functions of
// their construction parameters, which is what makes OWL's replay-based
// verification possible.
package sched

import (
	"github.com/conanalysis/owl/internal/interp"
)

// RoundRobin cycles through runnable threads, switching threads every
// Quantum steps (default 1, i.e. fully interleaved).
type RoundRobin struct {
	Quantum int
	last    interp.ThreadID
	used    int
}

// NewRoundRobin returns a round-robin scheduler with the given quantum.
func NewRoundRobin(quantum int) *RoundRobin {
	if quantum < 1 {
		quantum = 1
	}
	return &RoundRobin{Quantum: quantum, last: -1}
}

// Next implements interp.Scheduler.
func (s *RoundRobin) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	id, last, used := rrPick(runnable, s.last, s.used, s.Quantum)
	s.last, s.used = last, used
	return id
}

// rrPick is one rotation decision as a pure function of the scheduler
// state, shared by Next and the batched Plan/Advance so the three are
// equivalent by construction: hold last while the quantum allows,
// otherwise the first runnable id strictly greater than last, wrapping.
func rrPick(runnable []interp.ThreadID, last interp.ThreadID, used, quantum int) (interp.ThreadID, interp.ThreadID, int) {
	if last >= 0 && used < quantum {
		for _, id := range runnable {
			if id == last {
				return id, last, used + 1
			}
		}
	}
	for _, id := range runnable {
		if id > last {
			return id, id, 1
		}
	}
	return runnable[0], runnable[0], 1
}

// Plan implements interp.PlanningScheduler. With a fixed runnable set
// the rotation is fully periodic — finish the current thread's
// quantum, then runs of Quantum picks rotating through the set — so
// the window is filled in whole runs rather than per-entry rrPick
// simulation. Equivalence with Next: rrPick holds `last` while
// used < Quantum and last is still runnable, then rotates and resets
// used to 1; each filled run below reproduces exactly those picks.
func (s *RoundRobin) Plan(runnable []interp.ThreadID, step int, buf []interp.ThreadID) int {
	q := s.Quantum
	if q < 1 {
		q = 1 // Quantum 0 rotates every pick, same as 1 (used<0 never holds)
	}
	if q == 1 {
		// Fully interleaved: the sequence is plain cyclic iteration
		// over the set, starting at last's successor.
		n := len(runnable)
		j := rrSuccIdx(runnable, s.last)
		for i := range buf {
			buf[i] = runnable[j]
			if j++; j == n {
				j = 0
			}
		}
		return len(buf)
	}
	i := 0
	last, used := s.last, s.used
	if last >= 0 && used < q && rrContains(runnable, last) {
		for ; i < len(buf) && used < q; i++ {
			buf[i] = last
			used++
		}
	}
	for i < len(buf) {
		last = rrSucc(runnable, last)
		for j := 0; j < q && i < len(buf); j++ {
			buf[i] = last
			i++
		}
	}
	return len(buf)
}

// Advance implements interp.PlanningScheduler: the state after k picks,
// computed run-by-run like Plan.
func (s *RoundRobin) Advance(runnable []interp.ThreadID, step, k int) {
	q := s.Quantum
	if q < 1 {
		q = 1
	}
	if q == 1 {
		if k > 0 {
			s.last = runnable[(rrSuccIdx(runnable, s.last)+k-1)%len(runnable)]
			s.used = 1
		}
		return
	}
	last, used := s.last, s.used
	if last >= 0 && used < q && rrContains(runnable, last) {
		take := q - used
		if take > k {
			take = k
		}
		used += take
		k -= take
	}
	for k > 0 {
		last = rrSucc(runnable, last)
		take := q
		if take > k {
			take = k
		}
		used = take
		k -= take
	}
	s.last, s.used = last, used
}

func rrContains(runnable []interp.ThreadID, id interp.ThreadID) bool {
	for _, r := range runnable {
		if r == id {
			return true
		}
	}
	return false
}

// rrSucc is rrPick's rotation rule: the first id strictly greater than
// last, wrapping to the front.
func rrSucc(runnable []interp.ThreadID, last interp.ThreadID) interp.ThreadID {
	for _, id := range runnable {
		if id > last {
			return id
		}
	}
	return runnable[0]
}

// rrSuccIdx is rrSucc returning the index instead of the id.
func rrSuccIdx(runnable []interp.ThreadID, last interp.ThreadID) int {
	for i, id := range runnable {
		if id > last {
			return i
		}
	}
	return 0
}

// rng is a self-contained xorshift64* PRNG; math/rand would also be
// deterministic, but an explicit state keeps the schedule a pure function
// of the seed across Go versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Random picks a uniformly random runnable thread each step, seeded.
type Random struct{ r *rng }

// NewRandom returns a seeded random scheduler.
func NewRandom(seed uint64) *Random { return &Random{r: newRNG(seed)} }

// Next implements interp.Scheduler.
func (s *Random) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	return runnable[s.r.intn(len(runnable))]
}

// Plan implements interp.PlanningScheduler: the draws are simulated on
// a copy of the generator state, and Advance replays exactly the
// consumed prefix on the real state. intn draws nothing for a
// single-element set, so replaying k picks consumes the same number of
// generator states as k Next calls.
func (s *Random) Plan(runnable []interp.ThreadID, step int, buf []interp.ThreadID) int {
	r := *s.r
	for i := range buf {
		buf[i] = runnable[r.intn(len(runnable))]
	}
	return len(buf)
}

// Advance implements interp.PlanningScheduler.
func (s *Random) Advance(runnable []interp.ThreadID, step, k int) {
	for ; k > 0; k-- {
		s.r.intn(len(runnable))
	}
}

// PCT approximates the PCT algorithm (Burckhardt et al.): threads get
// random priorities; the highest-priority runnable thread runs, and at d-1
// random step indices the running thread's priority is demoted below all
// others. Small d finds most races with high probability.
type PCT struct {
	r          *rng
	prio       map[interp.ThreadID]int
	nextPrio   int
	demoteAt   map[int]bool
	demoteBase int
}

// NewPCT returns a PCT scheduler with depth d over maxSteps steps.
func NewPCT(seed uint64, d, maxSteps int) *PCT {
	p := &PCT{
		r:        newRNG(seed),
		prio:     make(map[interp.ThreadID]int),
		demoteAt: make(map[int]bool),
		nextPrio: 1 << 20,
	}
	for i := 0; i < d-1; i++ {
		if maxSteps > 0 {
			p.demoteAt[p.r.intn(maxSteps)] = true
		}
	}
	return p
}

// Next implements interp.Scheduler.
func (s *PCT) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	best := runnable[0]
	for _, id := range runnable {
		if _, ok := s.prio[id]; !ok {
			// Random initial priority, high band.
			s.prio[id] = (1 << 20) + s.r.intn(1<<20)
		}
		if s.prio[id] > s.prio[best] {
			best = id
		}
	}
	if s.demoteAt[step] {
		s.demoteBase--
		s.prio[best] = s.demoteBase
		// Re-pick after demotion.
		for _, id := range runnable {
			if s.prio[id] > s.prio[best] {
				best = id
			}
		}
	}
	return best
}

// Replay replays a recorded schedule exactly; once the recording is
// exhausted (or the recorded thread is not runnable — which can happen
// when a verifier perturbs the run), it falls back to the supplied
// scheduler (default: round-robin).
type Replay struct {
	Trace    []interp.ThreadID
	Fallback interp.Scheduler
	pos      int
	// Diverged reports whether the replay ever had to fall back.
	Diverged bool
}

// NewReplay returns a replay scheduler over the recorded trace.
func NewReplay(trace []interp.ThreadID) *Replay {
	return &Replay{Trace: trace, Fallback: NewRoundRobin(1)}
}

// Next implements interp.Scheduler.
func (s *Replay) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if s.pos < len(s.Trace) {
		want := s.Trace[s.pos]
		s.pos++
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
		s.Diverged = true
	}
	if s.Fallback == nil {
		s.Fallback = NewRoundRobin(1)
	}
	return s.Fallback.Next(runnable, step)
}

// Fixed always prefers the lowest-id runnable thread in Order; useful in
// tests to force specific interleavings, and used by the verifiers to
// steer the racing instructions into a requested order.
type Fixed struct {
	// Order is the preference list; threads not listed come after listed
	// ones, lowest id first.
	Order []interp.ThreadID
}

// Next implements interp.Scheduler.
func (s *Fixed) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	for _, want := range s.Order {
		for _, id := range runnable {
			if id == want {
				return id
			}
		}
	}
	return runnable[0]
}
