package sched

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

// pairTable hands out stable covKey identities by name, so a scripted
// runner can fabricate deterministic per-job coverage without running a
// machine.
type pairTable struct {
	keys map[string]covKey
}

func newPairTable() *pairTable { return &pairTable{keys: map[string]covKey{}} }

func (pt *pairTable) key(name string) covKey {
	k, ok := pt.keys[name]
	if !ok {
		k = covKey{from: &ir.Instr{}, to: &ir.Instr{}}
		pt.keys[name] = k
	}
	return k
}

func (pt *pairTable) observe(j *Job, names ...string) {
	for _, n := range names {
		j.Cov.pairs[pt.key(n)] = struct{}{}
	}
}

func TestEngineRespectsBudgetWhenNeverSaturating(t *testing.T) {
	pt := newPairTable()
	n := 0
	eng := NewEngine(EngineConfig{Budget: 20, RoundRuns: 6})
	res, err := eng.Explore(func(jobs []*Job) error {
		for _, j := range jobs {
			n++
			pt.observe(j, fmt.Sprintf("fresh-%d", n)) // every run finds something new
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 20 || n != 20 {
		t.Errorf("runs = %d/%d, want exactly the budget (20)", res.Runs, n)
	}
	if res.EarlyStop {
		t.Error("EarlyStop with a never-saturating runner")
	}
	if res.Rounds != 4 { // 6+6+6+2
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if res.CoveragePairs != 20 {
		t.Errorf("coverage = %d, want 20", res.CoveragePairs)
	}
}

func TestEngineEarlyStopsAfterSaturationRounds(t *testing.T) {
	eng := NewEngine(EngineConfig{Budget: 60, RoundRuns: 6, Saturation: 2})
	res, err := eng.Explore(func(jobs []*Job) error { return nil }) // nothing, ever
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStop {
		t.Error("no early stop despite two dry rounds")
	}
	if res.Rounds != 2 || res.Runs != 12 {
		t.Errorf("rounds/runs = %d/%d, want 2/12", res.Rounds, res.Runs)
	}
	if res.CoveragePairs != 0 {
		t.Errorf("coverage = %d, want 0", res.CoveragePairs)
	}
}

func TestEngineReallocatesTowardProductiveStrategy(t *testing.T) {
	pt := newPairTable()
	n := 0
	eng := NewEngine(EngineConfig{Budget: 12, RoundRuns: 6})
	res, err := eng.Explore(func(jobs []*Job) error {
		for _, j := range jobs {
			if j.Strategy == StrategyPCT { // only PCT finds new interleavings
				n++
				pt.observe(j, fmt.Sprintf("pct-%d", n))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundLog) != 2 {
		t.Fatalf("round log = %+v, want 2 rounds", res.RoundLog)
	}
	// Round 1 probes every strategy; round 2 must steer (nearly) everything
	// to the one that produced.
	r2 := res.RoundLog[1]
	if r2.Alloc[StrategyPCT] != 6 {
		t.Errorf("round 2 alloc = %v, want all 6 runs on pct", r2.Alloc)
	}
	if res.Strategies[StrategyPCT].NewCoverage == 0 {
		t.Error("pct credited with no coverage")
	}
	if res.Strategies[StrategyRandom].NewCoverage != 0 {
		t.Errorf("random credited with %d pairs it never observed",
			res.Strategies[StrategyRandom].NewCoverage)
	}
}

func TestEngineCreditsFirstObserverInJobOrder(t *testing.T) {
	pt := newPairTable()
	eng := NewEngine(EngineConfig{Budget: 6, RoundRuns: 6})
	res, err := eng.Explore(func(jobs []*Job) error {
		for _, j := range jobs {
			pt.observe(j, "shared") // every job sees the same pair
			j.ReportIDs = []string{"race-1"}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveragePairs != 1 {
		t.Errorf("coverage = %d, want the single deduped pair", res.CoveragePairs)
	}
	// Jobs are built random-first, so the first random job gets the credit.
	if got := res.Strategies[StrategyRandom].NewCoverage; got != 1 {
		t.Errorf("random NewCoverage = %d, want 1", got)
	}
	if got := res.Strategies[StrategyRandom].NewReports; got != 1 {
		t.Errorf("random NewReports = %d, want 1", got)
	}
	for _, s := range []Strategy{StrategyPCT, StrategyDFS} {
		st := res.Strategies[s]
		if st.NewCoverage != 0 || st.NewReports != 0 {
			t.Errorf("%v credited %+v; first-observer credit must go to job order", s, st)
		}
	}
}

// scriptedRunner simulates a workload as a pure function of each job: the
// coverage and reports a job yields depend only on (Strategy, Seed, DFS
// path), never on execution order — exactly the property real machine
// runs have. DFS schedulers are driven through a depth-2 binary tree.
func scriptedRunner(pt *pairTable, reverse bool) func(jobs []*Job) error {
	return func(jobs []*Job) error {
		order := make([]*Job, len(jobs))
		copy(order, jobs)
		if reverse { // simulate an adversarial parallel completion order
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, j := range order {
			switch j.Strategy {
			case StrategyDFS:
				path := driveTree(j.Sched, ids(0, 1), 2)
				pt.observe(j, "dfs-"+path)
				if path == "10" {
					j.ReportIDs = []string{"race-buried"}
				}
			case StrategyRandom:
				pt.observe(j, fmt.Sprintf("rnd-%d", j.Seed%4))
			case StrategyPCT:
				pt.observe(j, fmt.Sprintf("pct-%d", j.Seed%2))
			}
		}
		return nil
	}
}

func TestEngineDeterministicAcrossRunnerExecutionOrder(t *testing.T) {
	pt := newPairTable() // shared table: identical pair identities for both runs
	run := func(reverse bool) (*EngineResult, []string) {
		var seq []string
		eng := NewEngine(EngineConfig{Budget: 24, RoundRuns: 6, Seed: 42})
		inner := scriptedRunner(pt, reverse)
		res, err := eng.Explore(func(jobs []*Job) error {
			for _, j := range jobs {
				seq = append(seq, fmt.Sprintf("%v:%d", j.Strategy, j.Seed))
			}
			return inner(jobs)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, seq
	}
	resA, seqA := run(false)
	resB, seqB := run(true)
	if !reflect.DeepEqual(seqA, seqB) {
		t.Errorf("job sequences diverged:\n fwd: %v\n rev: %v", seqA, seqB)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("results diverged:\n fwd: %+v\n rev: %+v", resA, resB)
	}
}

func TestEngineDFSExhaustsBoundedTree(t *testing.T) {
	pt := newPairTable()
	eng := NewEngine(EngineConfig{Budget: 60, RoundRuns: 6, Saturation: 2})
	res, err := eng.Explore(func(jobs []*Job) error {
		for _, j := range jobs {
			if j.Strategy == StrategyDFS { // only new DFS schedules produce
				pt.observe(j, "dfs-"+driveTree(j.Sched, ids(0, 1), 2))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DFSExhausted {
		t.Error("depth-2 binary tree not exhausted")
	}
	if got := res.Strategies[StrategyDFS].Runs; got != 4 {
		t.Errorf("dfs runs = %d, want exactly the 4 distinct schedules", got)
	}
	if res.Strategies[StrategyDFS].NewCoverage != 4 {
		t.Errorf("dfs coverage = %d, want 4", res.Strategies[StrategyDFS].NewCoverage)
	}
	if !res.EarlyStop {
		t.Error("exploration should saturate and stop early after DFS exhausts")
	}
}

func TestEngineRandomSeedsExtendFixedSequence(t *testing.T) {
	// With base seed 0 the random arm replays the fixed-mode seeds
	// 1,2,3,...: coverage mode at equal budget can only add schedules,
	// never lose the baseline ones.
	var got []uint64
	eng := NewEngine(EngineConfig{Budget: 6, RoundRuns: 6})
	_, err := eng.Explore(func(jobs []*Job) error {
		for _, j := range jobs {
			if j.Strategy == StrategyRandom {
				got = append(got, j.Seed)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("round 1 allocated no random runs")
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("random seeds = %v, want 1,2,3,...", got)
		}
	}
}

func TestEngineZeroBudgetIsANoOp(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	called := false
	res, err := eng.Explore(func(jobs []*Job) error { called = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if called || res.Runs != 0 {
		t.Errorf("zero budget ran jobs: called=%v runs=%d", called, res.Runs)
	}
}

func TestCoverageMergeCountsOnlyFresh(t *testing.T) {
	pt := newPairTable()
	cov := NewCoverage()
	a := cov.NewRun()
	a.pairs[pt.key("x")] = struct{}{}
	a.pairs[pt.key("y")] = struct{}{}
	if got := cov.Merge(a); got != 2 {
		t.Errorf("first merge = %d, want 2", got)
	}
	b := cov.NewRun()
	b.pairs[pt.key("y")] = struct{}{}
	b.pairs[pt.key("z")] = struct{}{}
	if got := cov.Merge(b); got != 1 {
		t.Errorf("overlapping merge = %d, want 1", got)
	}
	if cov.Pairs() != 3 {
		t.Errorf("pairs = %d, want 3", cov.Pairs())
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("run lens = %d/%d, want 2/2", a.Len(), b.Len())
	}
}
