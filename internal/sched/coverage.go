// Interleaving-coverage tracking for coverage-guided schedule
// exploration. The coverage unit is a context-switch point: the ordered
// pair (last instruction the outgoing thread executed, first instruction
// the incoming thread executes) observed at a scheduler-visible thread
// switch. Two executions that switch between the same instruction pairs
// exercise the same interleaving structure, so a run that adds no new
// pairs to the map has (very likely) re-observed schedules the detector
// already saw — the signal the exploration Engine uses to reallocate its
// run budget and to stop early on saturation.
package sched

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
)

// covKey is one coverage map entry: an (instruction, instruction) pair at
// a context-switch point. Keys are instruction identities, so the map is
// meaningful only within one frozen module (which is how the Engine uses
// it: one Coverage per exploration).
type covKey struct {
	from, to *ir.Instr
}

// Coverage is the global interleaving-coverage map of one exploration:
// the set of (instruction-pair, context-switch point) keys observed
// across every run so far. It is not safe for concurrent use; the Engine
// merges per-run maps into it sequentially, in job order, which is what
// keeps coverage scores — and therefore budget allocation — independent
// of the worker count.
type Coverage struct {
	pairs map[covKey]struct{}
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage {
	return &Coverage{pairs: make(map[covKey]struct{})}
}

// Pairs returns the number of distinct context-switch pairs observed.
func (c *Coverage) Pairs() int { return len(c.pairs) }

// NewRun returns an empty per-run recorder to attach to one machine via
// interp.Config.SwitchObservers.
func (c *Coverage) NewRun() *RunCoverage {
	return &RunCoverage{pairs: make(map[covKey]struct{})}
}

// Merge folds one run's pairs into the global map and returns how many of
// them were new.
func (c *Coverage) Merge(rc *RunCoverage) int {
	fresh := 0
	for k := range rc.pairs {
		if _, ok := c.pairs[k]; ok {
			continue
		}
		c.pairs[k] = struct{}{}
		fresh++
	}
	return fresh
}

// MergeCoverage folds another global map's pairs into c and returns how
// many of them were new — the map-to-map analogue of Merge, used when an
// exploration seeds from (or folds back into) a persistent ExploreState.
func (c *Coverage) MergeCoverage(o *Coverage) int {
	fresh := 0
	for k := range o.pairs {
		if _, ok := c.pairs[k]; ok {
			continue
		}
		c.pairs[k] = struct{}{}
		fresh++
	}
	return fresh
}

// RunCoverage records the context-switch pairs of a single execution. It
// implements interp.SwitchObserver; each machine run gets its own
// recorder, so workers share nothing and the Engine can merge results
// deterministically afterwards.
type RunCoverage struct {
	pairs map[covKey]struct{}
}

// OnSwitch implements interp.SwitchObserver.
func (rc *RunCoverage) OnSwitch(m *interp.Machine, from, to interp.ThreadID, fromInstr, toInstr *ir.Instr) {
	rc.pairs[covKey{from: fromInstr, to: toInstr}] = struct{}{}
}

// Len returns the number of distinct pairs this run observed.
func (rc *RunCoverage) Len() int { return len(rc.pairs) }

// covSnap is the captured pair set of a Coverage or RunCoverage.
type covSnap struct {
	pairs map[covKey]struct{}
}

func copyPairs(src map[covKey]struct{}) map[covKey]struct{} {
	dst := make(map[covKey]struct{}, len(src))
	for k := range src {
		dst[k] = struct{}{}
	}
	return dst
}

// SnapshotState implements StateForker: a run resumed from a machine
// snapshot must start with exactly the switch pairs the shared prefix
// observed, or coverage scoring would depend on whether a prefix was
// replayed or restored.
func (rc *RunCoverage) SnapshotState() any {
	return &covSnap{pairs: copyPairs(rc.pairs)}
}

// RestoreState implements StateForker.
func (rc *RunCoverage) RestoreState(state any) bool {
	s, ok := state.(*covSnap)
	if !ok {
		return false
	}
	rc.pairs = copyPairs(s.pairs)
	return true
}

// Snapshot captures the global coverage map (same copy-on-restore
// contract as RunCoverage.SnapshotState; exposed for forked explorations
// and tests).
func (c *Coverage) Snapshot() any {
	return &covSnap{pairs: copyPairs(c.pairs)}
}

// Restore replaces the map with a Snapshot's content.
func (c *Coverage) Restore(state any) bool {
	s, ok := state.(*covSnap)
	if !ok {
		return false
	}
	c.pairs = copyPairs(s.pairs)
	return true
}
