// Prefix-sharing schedule exploration. Systematic exploration replays
// the same decision prefixes over and over: every sibling of a decision
// point re-executes the whole run up to that point before deviating.
// SnapCache removes the replay: after a run passes a decision boundary,
// the machine (copy-on-write arena snapshot), the decision scheduler,
// and every attached observer are snapshotted under the executed Chosen
// prefix; a later schedule whose decision vector extends a cached prefix
// restores from the deepest such ancestor and executes only its suffix.
//
// Correctness rests on the interpreter's determinism: two runs with the
// same Chosen prefix are in byte-identical states at the boundary, and
// snapshot/restore is exact (enforced by the interp and detector
// fidelity tests), so a resumed run produces the same reports, coverage
// pairs, and counters as a from-scratch run. Which worker's snapshot
// lands in the cache is therefore irrelevant, and exploration results
// stay byte-identical with the cache on or off and across worker counts
// — only the snapshot counters themselves differ.
package sched

import (
	"container/list"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"github.com/conanalysis/owl/internal/interp"
)

// StateForker is implemented by observers whose dynamic state can fork
// along with a machine snapshot (race.Detector, atomicity.Detector,
// RunCoverage). SnapshotState returns an opaque immutable copy;
// RestoreState replaces the observer's state with a previously captured
// copy, reporting false if the value is not one of its snapshots. A run
// is only resumed from a snapshot when every attached observer forks.
type StateForker interface {
	SnapshotState() any
	RestoreState(state any) bool
}

// ErrSnapObserverMismatch is returned when a cached entry's observer
// states cannot be applied to the current run's observers — the caller
// attached a different observer composition to runs sharing one cache.
var ErrSnapObserverMismatch = errors.New("sched: snapshot cache observer state mismatch")

// snapEntry is one cached resume point. All fields are immutable after
// insertion; eviction only drops references.
type snapEntry struct {
	key     string
	steps   int // machine steps executed at the boundary
	machine *interp.Snapshot
	sched   DecisionState
	obs     []any // observer states, in Observers-then-SwitchObservers order
	elem    *list.Element
}

// SnapStats is a point-in-time copy of a cache's counters, consumed by
// the metrics layer (sched.snap_* and interp.cow_pages_copied).
type SnapStats struct {
	Hits       int64 // runs resumed from a cached ancestor
	Misses     int64 // snapshot-eligible runs that started from step 0
	Stores     int64 // entries inserted
	Evictions  int64 // entries dropped by the LRU bound
	StepsSaved int64 // machine steps skipped by resuming
	CowPages   int64 // arena pages copied by copy-on-write faults
}

// SnapCache is a bounded, concurrency-safe snapshot cache keyed by
// decision prefixes. Entries are capped at MaxEntries (the -snap-cache
// budget) and evicted least-recently-used; snapshot depth is capped at
// maxDepth decision points, matching the exploration's MaxDecisions —
// deeper boundaries are never looked up, so caching them would only
// burn memory.
type SnapCache struct {
	mu       sync.Mutex
	max      int
	maxDepth int
	entries  map[string]*snapEntry
	lru      *list.List // front = most recently used
	stats    SnapStats
}

// NewSnapCache returns a cache holding at most maxEntries snapshots
// (values below 1 are raised to 1 — use a nil *SnapCache to disable
// snapshotting entirely). Depth defaults to DefaultMaxDecisions; the
// Engine and Explorer raise it to their MaxDecisions via EnsureDepth.
func NewSnapCache(maxEntries int) *SnapCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &SnapCache{
		max:      maxEntries,
		maxDepth: DefaultMaxDecisions,
		entries:  make(map[string]*snapEntry),
		lru:      list.New(),
	}
}

// EnsureDepth raises the snapshot depth bound to at least maxDec, so a
// cache constructed before the exploration config is known still covers
// every decision depth the frontier can branch at.
func (c *SnapCache) EnsureDepth(maxDec int) {
	if c == nil || maxDec <= 0 {
		return
	}
	c.mu.Lock()
	if maxDec > c.maxDepth {
		c.maxDepth = maxDec
	}
	c.mu.Unlock()
}

// Stats returns a copy of the counters.
func (c *SnapCache) Stats() SnapStats {
	if c == nil {
		return SnapStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *SnapCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// lookup finds the entry for the deepest cached prefix of vec (bounded
// by maxDepth) whose boundary lies within the run's step bound — a
// fault-injected run with a truncated MaxSteps must not resume past the
// point where a from-scratch run would have stopped. The hit is marked
// most recently used; the returned entry's fields are immutable, so
// using them after the lock drops is safe even if the entry is
// concurrently evicted.
func (c *SnapCache) lookup(vec []int, maxSteps int) *snapEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := len(vec)
	if depth > c.maxDepth {
		depth = c.maxDepth
	}
	var best *snapEntry
	// Depth 0 — the empty prefix — is a real entry: it holds the state
	// just before the first decision, i.e. the whole deterministic
	// single-threaded run-up that every schedule shares.
	if e, ok := c.entries[""]; ok && e.steps <= maxSteps {
		best = e
	}
	key := make([]byte, 0, 4*depth)
	for d := 0; d < depth; d++ {
		key = strconv.AppendInt(key, int64(vec[d]), 10)
		key = append(key, '.')
		if e, ok := c.entries[string(key)]; ok && e.steps <= maxSteps {
			best = e
		}
	}
	if best != nil {
		c.lru.MoveToFront(best.elem)
		c.stats.Hits++
		c.stats.StepsSaved += int64(best.steps)
	} else {
		c.stats.Misses++
	}
	return best
}

// prefixKey renders the executed Chosen prefix of a trace as a cache
// key. Decisions are keyed by what actually ran, not by the (possibly
// shorter) decided vector: the frontier pins executed defaults into
// children, so their vectors extend executed prefixes.
func prefixKey(trace []Decision, depth int) string {
	key := make([]byte, 0, 4*depth)
	for d := 0; d < depth; d++ {
		key = strconv.AppendInt(key, int64(trace[d].Chosen), 10)
		key = append(key, '.')
	}
	return string(key)
}

// store inserts a boundary snapshot unless the prefix is already cached
// (first writer wins: any two snapshots under one key are equivalent by
// determinism, so keeping the incumbent avoids churn).
func (c *SnapCache) store(key string, steps int, mach *interp.Snapshot, st DecisionState, obs []any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &snapEntry{key: key, steps: steps, machine: mach, sched: st, obs: obs}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.stats.Stores++
	for len(c.entries) > c.max {
		back := c.lru.Back()
		old := back.Value.(*snapEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.stats.Evictions++
	}
}

func (c *SnapCache) addCow(n int64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.stats.CowPages += n
	c.mu.Unlock()
}

// forkers collects the run's observers as StateForkers, in the fixed
// Observers-then-SwitchObservers order used for snapshot entries. It
// returns nil, false if any observer cannot fork — such runs execute
// from scratch and store nothing.
func forkers(cfg interp.Config) ([]StateForker, bool) {
	fs := make([]StateForker, 0, len(cfg.Observers)+len(cfg.SwitchObservers))
	for _, o := range cfg.Observers {
		f, ok := o.(StateForker)
		if !ok {
			return nil, false
		}
		fs = append(fs, f)
	}
	for _, o := range cfg.SwitchObservers {
		f, ok := o.(StateForker)
		if !ok {
			return nil, false
		}
		fs = append(fs, f)
	}
	return fs, true
}

// snapSched wraps a run's DecisionSched to snapshot decision boundaries
// as they are reached. Next runs inside Machine.Step before any of the
// step's mutations (trace append, observer switch, instruction effects),
// so when more than one thread is runnable the machine, the scheduler,
// and every observer are in exactly the boundary state a restored
// sibling needs: d decisions consumed, about to consume decision d.
// Snapshotting here — rather than after the step that consumed the
// decision — also puts the shared run-up *between* decisions (and, for
// depth 0, the whole pre-concurrency setup) inside the cached prefix.
type snapSched struct {
	ds       *DecisionSched
	c        *SnapCache
	fks      []StateForker
	m        *interp.Machine // set after interp.New/Restore, before stepping
	maxDepth int
	stores   int
}

// storeRunBudget caps how many novel boundaries one run snapshots. A
// run crosses up to maxDepth storable boundaries but the frontier pops
// its children shallowest-first, so only the few nearest the decided
// prefix are resumed from before the budget moves on; snapshotting the
// deep tail would deep-copy every observer's state for entries that are
// overwhelmingly never used. Runs resuming past a skipped depth still
// hit the deepest stored ancestor — the cap trades a sliver of saved
// steps for an order of magnitude fewer observer copies.
const storeRunBudget = 2

// Next implements interp.Scheduler.
func (s *snapSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	if len(runnable) > 1 && s.stores < storeRunBudget {
		// Children of the frontier branch at decision depths < maxDepth,
		// so deeper boundaries would never be looked up.
		if d := len(s.ds.Trace); d < s.maxDepth {
			if s.c.storeBoundary(s.ds, s.m, s.fks, d) {
				s.stores++
			}
		}
	}
	return s.ds.Next(runnable, step)
}

// RunMachine executes one schedule to completion and returns the
// machine, resuming from the deepest cached ancestor of the decision
// vector when possible and feeding new decision boundaries back into
// the cache. It is the drop-in replacement for interp.New + Run in
// exploration runners; a nil cache, a non-DecisionSched scheduler, a
// breakpoint, or a non-forkable observer all degrade to exactly that.
func (c *SnapCache) RunMachine(cfg interp.Config) (*interp.Machine, error) {
	ds, isDS := cfg.Sched.(*DecisionSched)
	var fks []StateForker
	snappable := c != nil && isDS && cfg.Breakpoint == nil
	if snappable {
		fks, snappable = forkers(cfg)
	}
	if !snappable {
		m, err := interp.New(cfg)
		if err != nil {
			return nil, err
		}
		m.Run()
		return m, nil
	}

	bound := cfg.MaxSteps
	if bound <= 0 {
		bound = interp.DefaultMaxSteps
	}
	c.mu.Lock()
	maxDepth := c.maxDepth
	c.mu.Unlock()
	ss := &snapSched{ds: ds, c: c, fks: fks, maxDepth: maxDepth}
	cfg.Sched = ss
	var m *interp.Machine
	if e := c.lookup(ds.Decisions, bound); e != nil {
		if len(e.obs) != len(fks) {
			return nil, ErrSnapObserverMismatch
		}
		for i, f := range fks {
			if !f.RestoreState(e.obs[i]) {
				// A partial restore would poison the run; surface it.
				return nil, ErrSnapObserverMismatch
			}
		}
		var err error
		m, err = interp.Restore(e.machine, cfg)
		if err != nil {
			return nil, err
		}
		ds.SetState(e.sched)
	} else {
		var err error
		m, err = interp.New(cfg)
		if err != nil {
			return nil, err
		}
	}
	ss.m = m
	m.RunLoop()
	c.addCow(m.Mem().CowPagesCopied())
	return m, nil
}

// Restore builds a machine for cfg positioned at the deepest cached
// ancestor of ds.Decisions, without running it — the entry point for
// callers that drive stepping themselves (predictive confirmation
// steers the machine after the prefix instead of running a fixed
// vector). cfg.Sched is used as given, so it may wrap ds in a steering
// scheduler; ds itself is positioned at the restored boundary. A nil
// cache, a breakpoint, a missing ancestor, or a non-forkable observer
// composition all degrade to a fresh machine at step 0. Restored-from
// entries are read-only here: driver-stepped runs never store new
// boundaries.
func (c *SnapCache) Restore(cfg interp.Config, ds *DecisionSched) (*interp.Machine, error) {
	fks, forkable := forkers(cfg)
	if c == nil || !forkable || cfg.Breakpoint != nil {
		return interp.New(cfg)
	}
	bound := cfg.MaxSteps
	if bound <= 0 {
		bound = interp.DefaultMaxSteps
	}
	e := c.lookup(ds.Decisions, bound)
	if e == nil {
		return interp.New(cfg)
	}
	if len(e.obs) != len(fks) {
		return nil, ErrSnapObserverMismatch
	}
	for i, f := range fks {
		if !f.RestoreState(e.obs[i]) {
			return nil, ErrSnapObserverMismatch
		}
	}
	m, err := interp.Restore(e.machine, cfg)
	if err != nil {
		return nil, err
	}
	ds.SetState(e.sched)
	return m, nil
}

// storeBoundary snapshots the machine, scheduler, and observers at a
// freshly reached decision boundary, keyed by the executed prefix. The
// snapshot work runs outside the cache lock; an already-present key is
// checked first so replayed prefixes don't pay for snapshots that would
// be discarded. It reports whether a snapshot was actually taken.
func (c *SnapCache) storeBoundary(ds *DecisionSched, m *interp.Machine, fks []StateForker, depth int) bool {
	key := prefixKey(ds.Trace, depth)
	c.mu.Lock()
	_, present := c.entries[key]
	c.mu.Unlock()
	if present {
		return false
	}
	obs := make([]any, len(fks))
	for i, f := range fks {
		obs[i] = f.SnapshotState()
	}
	c.store(key, m.StepCount(), m.Snapshot(), ds.State(), obs)
	return true
}

// ExploreIPBRun is ExploreIPB for callers that let the explorer drive
// the machines: mkCfg returns the run configuration for one schedule
// (its Sched field is overwritten with the decision scheduler), and
// onRun observes each completed machine together with the scheduler
// that drove it. When e.Snap is set, runs resume from cached ancestor
// prefixes; the schedules explored and their outcomes are identical
// either way.
func (e *Explorer) ExploreIPBRun(mkCfg func() interp.Config, onRun func(m *interp.Machine, ds *DecisionSched) error) (ExploreResult, error) {
	maxRuns := e.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	maxDec := e.MaxDecisions
	if maxDec <= 0 {
		maxDec = DefaultMaxDecisions
	}
	e.Snap.EnsureDepth(maxDec)
	f := newIPBFrontier(maxDec)
	res := ExploreResult{}
	for f.size > 0 {
		if res.Runs >= maxRuns {
			return res, nil
		}
		node, _ := f.pop()
		ds := &DecisionSched{Decisions: node.vec}
		cfg := mkCfg()
		cfg.Sched = ds
		m, err := e.Snap.RunMachine(cfg)
		if err != nil {
			return res, fmt.Errorf("exploration run %d: %w", res.Runs, err)
		}
		if onRun != nil {
			if err := onRun(m, ds); err != nil {
				return res, fmt.Errorf("exploration run %d: %w", res.Runs, err)
			}
		}
		res.Runs++
		f.expand(node, ds.Trace)
	}
	res.Exhausted = true
	return res, nil
}
