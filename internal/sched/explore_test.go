package sched

import (
	"fmt"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
)

func TestDecisionSchedCountsPreemptions(t *testing.T) {
	// Thread 0 runs, then while 0 is still runnable the vector picks 1
	// (preemption), keeps 1 (no preemption), then is forced off 1 when it
	// blocks (no preemption).
	s := &DecisionSched{Decisions: []int{1, 1, 0}}
	if got := s.Next(ids(0), 0); got != 0 {
		t.Fatalf("step0 = %d", got)
	}
	if got := s.Next(ids(0, 1), 1); got != 1 {
		t.Fatalf("step1 = %d", got)
	}
	if got := s.Next(ids(0, 1), 2); got != 1 {
		t.Fatalf("step2 = %d", got)
	}
	// Thread 1 blocked: only 0 and 2 runnable; switching is forced.
	if got := s.Next(ids(0, 2), 3); got != 0 {
		t.Fatalf("step3 = %d", got)
	}
	if s.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", s.Preemptions)
	}
	wantSame := []int{0, 1, -1}
	for i, d := range s.Trace {
		if d.SameIdx != wantSame[i] {
			t.Errorf("trace[%d].SameIdx = %d, want %d", i, d.SameIdx, wantSame[i])
		}
	}
}

// driveTree simulates a fixed synthetic decision tree: depth decision
// points, each over the same runnable set.
func driveTree(s interp.Scheduler, runnable []interp.ThreadID, depth int) string {
	path := ""
	for i := 0; i < depth; i++ {
		path += fmt.Sprintf("%d", s.Next(runnable, i))
	}
	return path
}

func TestExploreIPBCoversSameTreeAsExplore(t *testing.T) {
	collect := func(explore func(*Explorer, func(interp.Scheduler) error) (ExploreResult, error)) (map[string]int, ExploreResult) {
		seen := map[string]int{}
		ex := &Explorer{MaxRuns: 256, MaxDecisions: 8}
		res, err := explore(ex, func(s interp.Scheduler) error {
			seen[driveTree(s, ids(0, 1, 2), 3)]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen, res
	}
	dfsSeen, dfsRes := collect((*Explorer).Explore)
	ipbSeen, ipbRes := collect((*Explorer).ExploreIPB)
	if !dfsRes.Exhausted || !ipbRes.Exhausted {
		t.Fatalf("exhausted: dfs=%v ipb=%v", dfsRes.Exhausted, ipbRes.Exhausted)
	}
	if dfsRes.Runs != ipbRes.Runs {
		t.Errorf("runs: dfs=%d ipb=%d", dfsRes.Runs, ipbRes.Runs)
	}
	if len(dfsSeen) != len(ipbSeen) {
		t.Fatalf("distinct schedules: dfs=%d ipb=%d", len(dfsSeen), len(ipbSeen))
	}
	for p, n := range dfsSeen {
		if ipbSeen[p] != n {
			t.Errorf("schedule %q: dfs ran %d, ipb ran %d", p, n, ipbSeen[p])
		}
	}
}

func TestExploreIPBRunsZeroPreemptionSchedulesFirst(t *testing.T) {
	// Two always-runnable threads, three decision points. A schedule's
	// preemptions = switches away from the previously chosen (and still
	// runnable) thread; the first decision is never a preemption. The
	// 0-preemption schedules are exactly 000 and 111.
	var order []string
	var pres []int
	ex := &Explorer{MaxRuns: 64, MaxDecisions: 8}
	res, err := ex.ExploreIPB(func(s interp.Scheduler) error {
		order = append(order, driveTree(s, ids(0, 1), 3))
		pres = append(pres, s.(*DecisionSched).Preemptions)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Runs != 8 {
		t.Fatalf("res = %+v, want 8 exhausted runs", res)
	}
	zeroPre := map[string]bool{"000": true, "111": true}
	for i, p := range order[:2] {
		if !zeroPre[p] {
			t.Errorf("run %d = %q (%d preemptions); 0-preemption schedules must run first (order %v)",
				i, p, pres[i], order)
		}
	}
	// The executed preemption counts must be non-decreasing: the frontier
	// orders by decided-prefix preemptions and every decision point here
	// is decided within the depth bound.
	for i := 1; i < len(pres); i++ {
		if pres[i] < pres[i-1] {
			t.Errorf("preemption order violated at run %d: %v", i, pres)
		}
	}
}

// Satellite regression: a MaxRuns budget smaller than the 0-preemption
// frontier must stop exactly at the budget without claiming exhaustion.
func TestExploreIPBMaxRunsBelowZeroPreemptionFrontier(t *testing.T) {
	// A single 5-way decision point with no prior running thread: all 5
	// schedules carry 0 preemptions.
	runs := 0
	ex := &Explorer{MaxRuns: 3, MaxDecisions: 8}
	res, err := ex.ExploreIPB(func(s interp.Scheduler) error {
		runs++
		s.Next(ids(0, 1, 2, 3, 4), 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || runs != 3 {
		t.Errorf("runs = %d/%d, want 3", res.Runs, runs)
	}
	if res.Exhausted {
		t.Error("truncated exploration reported exhausted")
	}
}

// Satellite regression: tiny programs with no (or trivially few)
// scheduling choices must exhaust, and report having done so, in the
// minimum number of runs.
func TestExploreIPBExhaustedOnTinyPrograms(t *testing.T) {
	t.Run("no-choice", func(t *testing.T) {
		ex := &Explorer{MaxRuns: 64}
		res, err := ex.ExploreIPB(func(s interp.Scheduler) error {
			for i := 0; i < 4; i++ {
				s.Next(ids(7), i) // single-threaded: never a decision point
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exhausted || res.Runs != 1 {
			t.Errorf("res = %+v, want 1 exhausted run", res)
		}
	})
	t.Run("one-binary-choice", func(t *testing.T) {
		ex := &Explorer{MaxRuns: 64}
		res, err := ex.ExploreIPB(func(s interp.Scheduler) error {
			s.Next(ids(0, 1), 0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exhausted || res.Runs != 2 {
			t.Errorf("res = %+v, want 2 exhausted runs", res)
		}
	})
}

func TestExploreIPBPropagatesError(t *testing.T) {
	ex := &Explorer{MaxRuns: 10}
	_, err := ex.ExploreIPB(func(s interp.Scheduler) error { return errTest })
	if err == nil {
		t.Error("want error")
	}
}
