package predict

import (
	"reflect"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// seedRun executes src once under the non-preemptive default schedule
// with a detector and recorder attached — the same observer composition
// the pipeline's seed phase uses.
func seedRun(t *testing.T, src string) (*race.Detector, *Recorder, *sched.DecisionSched, *ir.Module) {
	t.Helper()
	mod, err := ir.Parse("predict_test.oir", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d := race.NewDetector()
	rec := NewRecorder()
	ds := &sched.DecisionSched{}
	m, err := interp.New(interp.Config{
		Module: mod, Sched: ds,
		Observers: []interp.Observer{d, rec},
	})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	m.Run()
	return d, rec, ds, mod
}

// The classic sync-preserving predictable race: the store and load are
// never adjacent under the executed schedule (the empty critical
// sections order them via lock release/acquire), but dropping the
// writer's critical section from the reordering makes them race.
const classicSrc = `
global @l = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@l)
  call @mutex_unlock(@l)
  %v = load @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @x
  call @mutex_lock(@l)
  call @mutex_unlock(@l)
  %r = call @join(%t)
  ret 0
}
`

func TestPredictsRaceHiddenByLockOrder(t *testing.T) {
	d, rec, _, _ := seedRun(t, classicSrc)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("seed schedule should observe no race, got %d:\n%v", n, d.Reports())
	}
	pairs := Pairs(rec.Events(), false)
	if len(pairs) != 1 {
		t.Fatalf("got %d predicted pairs, want 1: %+v", len(pairs), pairs)
	}
	p := pairs[0]
	if p.Reversed {
		t.Errorf("pair should be sync-preserving, not reversal-only")
	}
	if p.A.Kind != interp.EvWrite || p.B.Kind != interp.EvRead {
		t.Errorf("pair kinds = %v/%v, want write/read", p.A.Kind, p.B.Kind)
	}
	if p.A.Addr != p.B.Addr {
		t.Errorf("pair addresses differ: %#x vs %#x", p.A.Addr, p.B.Addr)
	}
	if p.A.Step >= p.B.Step {
		t.Errorf("A must be the earlier trace event (steps %d >= %d)", p.A.Step, p.B.Step)
	}
}

const spawnJoinSrc = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  store 5, @x
  %t = call @spawn(@worker)
  %r = call @join(%t)
  %v = load @x
  ret 0
}
`

func TestSpawnJoinOrderedAccessesNotPredicted(t *testing.T) {
	_, rec, _, _ := seedRun(t, spawnJoinSrc)
	for _, rev := range []bool{false, true} {
		if pairs := Pairs(rec.Events(), rev); len(pairs) != 0 {
			t.Errorf("reversal=%v: fork/join-ordered accesses predicted as races: %+v", rev, pairs)
		}
	}
}

const lockedSrc = `
global @m = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@m)
  store 1, @x
  call @mutex_unlock(@m)
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  call @mutex_lock(@m)
  %v = load @x
  call @mutex_unlock(@m)
  %r = call @join(%t)
  ret 0
}
`

func TestSharedLocksetSuppressesPrediction(t *testing.T) {
	_, rec, _, _ := seedRun(t, lockedSrc)
	for _, rev := range []bool{false, true} {
		if pairs := Pairs(rec.Events(), rev); len(pairs) != 0 {
			t.Errorf("reversal=%v: lock-protected accesses predicted as races: %+v", rev, pairs)
		}
	}
}

// revSrc: the store/load on @y are ordered by the sync-preserving
// closure — the reader's critical section observes the writer's through
// the conflict on @x — but racing them only needs the two critical
// sections to swap, which the optimistic arm permits.
const revSrc = `
global @l = 0
global @x = 0
global @y = 0

func @worker() {
entry:
  call @mutex_lock(@l)
  %v = load @x
  call @mutex_unlock(@l)
  %w = load @y
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @y
  call @mutex_lock(@l)
  store 1, @x
  call @mutex_unlock(@l)
  %r = call @join(%t)
  ret 0
}
`

func TestReversalArmExtendsSyncPreserving(t *testing.T) {
	d, rec, _, _ := seedRun(t, revSrc)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("seed schedule should observe no race, got %d", n)
	}
	sp := Pairs(rec.Events(), false)
	if len(sp) != 0 {
		t.Fatalf("sync-preserving arm predicted %d pairs, want 0: %+v", len(sp), sp)
	}
	rev := Pairs(rec.Events(), true)
	if len(rev) != 1 {
		t.Fatalf("reversal arm predicted %d pairs, want 1: %+v", len(rev), rev)
	}
	if !rev[0].Reversed {
		t.Errorf("pair should be tagged Reversed")
	}
}

func TestPairsDeterministic(t *testing.T) {
	_, rec1, _, _ := seedRun(t, classicSrc)
	_, rec2, _, _ := seedRun(t, classicSrc)
	for _, rev := range []bool{false, true} {
		a, b := Pairs(rec1.Events(), rev), Pairs(rec2.Events(), rev)
		if !reflect.DeepEqual(pairIDs(a), pairIDs(b)) {
			t.Errorf("reversal=%v: identical traces predicted different pairs:\n%v\n%v",
				rev, pairIDs(a), pairIDs(b))
		}
		if again := Pairs(rec1.Events(), rev); !reflect.DeepEqual(pairIDs(a), pairIDs(again)) {
			t.Errorf("reversal=%v: re-running Pairs over one trace diverged", rev)
		}
	}
}

func pairIDs(pairs []Pair) []string {
	ids := make([]string, len(pairs))
	for i, p := range pairs {
		ids[i] = p.ID()
	}
	return ids
}

func TestRecorderForksExactly(t *testing.T) {
	_, rec, _, _ := seedRun(t, classicSrc)
	full := append([]Ev(nil), rec.Events()...)
	if len(full) == 0 {
		t.Fatal("empty trace")
	}

	// Fork at a mid-trace boundary, diverge, restore, and re-append: the
	// restored recorder must not alias the diverged suffix.
	half := &Recorder{events: full[: len(full)/2 : len(full)/2]}
	snap := half.SnapshotState()
	half.OnEvent(nil, interp.Event{Kind: interp.EvAcquire, TID: 9, Addr: 0xdead})
	fresh := NewRecorder()
	if !fresh.RestoreState(snap) {
		t.Fatal("RestoreState rejected its own snapshot")
	}
	if len(fresh.Events()) != len(full)/2 {
		t.Fatalf("restored %d events, want %d", len(fresh.Events()), len(full)/2)
	}
	fresh.OnEvent(nil, interp.Event{Kind: interp.EvRelease, TID: 7, Addr: 0xbeef})
	if half.Events()[len(full)/2].Addr != 0xdead {
		t.Error("restore aliased the diverged writer's suffix")
	}
	if fresh.Events()[len(full)/2].Addr != 0xbeef {
		t.Error("restored recorder's append landed elsewhere")
	}
	if fresh.RestoreState(42) {
		t.Error("RestoreState accepted a foreign value")
	}
}

func TestPrefixFor(t *testing.T) {
	decisions := []sched.Decision{
		{Chosen: 1, Step: 3},
		{Chosen: 0, Step: 7},
		{Chosen: 2, Step: 11},
	}
	p := Pair{A: Ev{Step: 8}}
	if got := PrefixFor(decisions, p); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Errorf("PrefixFor = %v, want [1 0]", got)
	}
	if got := PrefixFor(decisions, Pair{A: Ev{Step: 3}}); got != nil {
		t.Errorf("decision at the access's own step must not replay, got %v", got)
	}
	if got := PrefixFor(decisions, Pair{A: Ev{Step: 100}}); !reflect.DeepEqual(got, []int{1, 0, 2}) {
		t.Errorf("PrefixFor = %v, want full vector", got)
	}
}

// confirmOn predicts pairs from one seed run of src and confirms the
// first one, returning the confirmation verdict.
func confirmOn(t *testing.T, src string, reversal bool, snap *sched.SnapCache) bool {
	t.Helper()
	_, rec, ds, mod := seedRun(t, src)
	pairs := Pairs(rec.Events(), reversal)
	if len(pairs) == 0 {
		t.Fatal("no pairs predicted")
	}
	cand := Candidate{Pair: pairs[0], Prefix: PrefixFor(ds.Trace, pairs[0])}
	cf := &Confirmer{Snap: snap}
	reports, hit, err := cf.Confirm(interp.Config{Module: mod}, nil, cand)
	if err != nil {
		t.Fatalf("confirm: %v", err)
	}
	if hit && !pairIn(reports, cand.Pair) {
		t.Error("hit reported but pair not among reports")
	}
	return hit
}

func TestConfirmRealizesClassicPair(t *testing.T) {
	if !confirmOn(t, classicSrc, false, nil) {
		t.Error("classic sync-preserving pair should confirm")
	}
}

func TestConfirmWithSnapCacheMatchesWithout(t *testing.T) {
	with := confirmOn(t, classicSrc, false, sched.NewSnapCache(8))
	without := confirmOn(t, classicSrc, false, nil)
	if with != without {
		t.Errorf("verdict differs with snap cache: with=%v without=%v", with, without)
	}
}

func TestConfirmRealizesReversalPair(t *testing.T) {
	// The reversal-arm pair is reachable by an actual execution (run the
	// reader's critical section first), so steering must realize it —
	// this is precisely the race the sync-preserving arm cannot see.
	if !confirmOn(t, revSrc, true, nil) {
		t.Error("reversal pair is dynamically reachable and should confirm")
	}
}

func TestConfirmRefutesProtectedPair(t *testing.T) {
	// Fabricate a candidate the predictor would never emit: the two
	// lock-protected accesses of lockedSrc. Steering cannot make them
	// adjacent — the reader's thread blocks on the mutex while the writer
	// is held — so the confirmation must come back refuted, not wedge.
	_, rec, ds, mod := seedRun(t, lockedSrc)
	var acc []Ev
	for _, e := range rec.Events() {
		if e.Kind == interp.EvRead || e.Kind == interp.EvWrite {
			acc = append(acc, e)
		}
	}
	if len(acc) < 2 {
		t.Fatalf("expected two accesses in trace, got %d", len(acc))
	}
	cand := Candidate{
		Pair:   Pair{A: acc[0], B: acc[1]},
		Prefix: PrefixFor(ds.Trace, Pair{A: acc[0], B: acc[1]}),
	}
	cf := &Confirmer{Snap: nil}
	reports, hit, err := cf.Confirm(interp.Config{Module: mod}, nil, cand)
	if err != nil {
		t.Fatalf("confirm: %v", err)
	}
	if hit {
		t.Errorf("lock-protected pair confirmed; reports: %v", reports)
	}
	if len(reports) != 0 {
		t.Errorf("refuting run reported races: %v", reports)
	}
}
