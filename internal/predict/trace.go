// Package predict implements predictive race detection: instead of
// paying one full schedule execution per interleaving inspected, it
// records one synchronization-annotated trace per executed seed
// schedule, predicts which access pairs a *reordering* of that trace
// could make race, and spends further executions only on steered
// replays that confirm or refute each prediction.
//
// The predictor is the sync-preserving closure of Mathur, Pavlogiannis
// and Viswanathan ("Optimal Prediction of Synchronization-Preserving
// Races"), approximated with vector clocks over the captured
// acquire/release/fork/join order; an optimistic sync-reversal arm
// (Shi, Mathur, Pavlogiannis) behind a flag drops the remaining
// critical-section ordering edges for more candidates. Both arms can
// over-approximate, so nothing is reported from a prediction alone —
// every pair is dynamically confirmed by a steered replay whose
// happens-before detector must independently flag it (Confirmer).
package predict

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
)

// Ev is one recorded trace event: the synchronization-relevant subset
// of an interp.Event, small enough to retain per run. Aux carries the
// peer thread id for spawn/join, mirroring interp.Event.
type Ev struct {
	Kind  interp.EventKind
	TID   interp.ThreadID
	Addr  int64
	Aux   int64
	Instr *ir.Instr
	Step  int
}

// Recorder is the trace-capturing observer. It retains reads, writes,
// acquires, releases, spawns and joins in execution order and discards
// everything else. It declares no stack need (StackPolicy), so
// attaching it adds no hot-path cost beyond the append; when
// prediction is off it simply isn't attached.
type Recorder struct {
	events []Ev
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the captured trace in execution order. The slice is
// the recorder's own backing store; callers must not mutate it.
func (r *Recorder) Events() []Ev { return r.events }

// OnEvent implements interp.Observer.
func (r *Recorder) OnEvent(m *interp.Machine, e interp.Event) {
	switch e.Kind {
	case interp.EvRead, interp.EvWrite, interp.EvAcquire, interp.EvRelease,
		interp.EvSpawn, interp.EvJoin:
		r.events = append(r.events, Ev{
			Kind:  e.Kind,
			TID:   e.TID,
			Addr:  e.Addr,
			Aux:   e.Aux,
			Instr: e.Instr,
			Step:  e.Step,
		})
	}
}

// NeedsStack implements interp.StackPolicy: the predictor works on
// instruction identity alone, so no event needs a materialized stack.
func (r *Recorder) NeedsStack(kind interp.EventKind) bool { return false }

// recSnap is an immutable prefix of a recorder's trace, captured at a
// snapshot boundary. The clip makes later appends by any recorder
// holding it reallocate instead of aliasing.
type recSnap struct {
	events []Ev
}

// SnapshotState implements sched.StateForker, so recorded runs stay
// eligible for prefix-sharing snapshot-cache resumption: a restored
// run's trace is exactly the boundary prefix plus its own suffix.
func (r *Recorder) SnapshotState() any {
	return &recSnap{events: r.events[:len(r.events):len(r.events)]}
}

// RestoreState implements sched.StateForker.
func (r *Recorder) RestoreState(state any) bool {
	s, ok := state.(*recSnap)
	if !ok {
		return false
	}
	r.events = s.events
	return true
}
