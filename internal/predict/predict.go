package predict

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vclock"
)

// Pair is one predicted race: two conflicting accesses of a recorded
// trace that some sync-preserving (or, under the optimistic arm,
// sync-reversing) reordering could make adjacent. A is the access that
// occurred earlier in the recorded trace.
type Pair struct {
	A, B Ev
	// Reversed marks pairs only the sync-reversal arm predicts — they
	// were ordered under the sync-preserving closure.
	Reversed bool
}

// ID returns the pair's identity in the exact format race.Report.ID
// uses (sorted instruction FullNames joined by " <-> "), so predicted,
// confirmed, and explored races merge under one key.
func (p Pair) ID() string {
	a, b := p.A.Instr.FullName(), p.B.Instr.FullName()
	if a > b {
		a, b = b, a
	}
	return a + " <-> " + b
}

// accEntry is the last recorded access to one variable by one thread.
type accEntry struct {
	tid   interp.ThreadID
	tick  uint64 // owner's clock component when the access ran
	spTck uint64 // same, under the sync-preserving (non-reversal) order
	locks []int64
	ev    Ev
}

// varState is the predictor's per-variable shadow: last write and last
// read per thread, in slices ordered by first appearance so iteration
// is deterministic.
type varState struct {
	writes []accEntry
	reads  []accEntry
}

// lockFrame tracks one held critical section: which variables it
// accessed (bit 1 = read, bit 2 = written) feed the per-(lock, var)
// release clocks when the lock is released.
type lockFrame struct {
	lock int64
	vars map[int64]uint8
}

// threadState is the predictor's per-thread state. clock orders the
// thread under the optimistic (reversal) relation — fork/join and
// program order only; spClock additionally carries the
// conflict-mediated critical-section edges of the sync-preserving
// closure. Tracking both in one pass lets Pairs tag each prediction
// with whether sync reversal was required.
type threadState struct {
	clock   *vclock.VC
	spClock *vclock.VC
	held    []lockFrame
}

// predictor runs the closure over one trace.
type predictor struct {
	threads map[interp.ThreadID]*threadState
	vars    map[int64]*varState
	// relW/relR: for each (lock, variable), the join of the
	// sync-preserving clocks at every release whose critical section
	// wrote/read the variable. A later access to the variable inside a
	// critical section of the same lock joins them — the
	// conflict-mediated edge that makes the closure sync-preserving.
	relW map[int64]map[int64]*vclock.VC
	relR map[int64]map[int64]*vclock.VC

	reversal bool
	seen     map[[2]*ir.Instr]bool
	pairs    []Pair
}

// Pairs predicts the races reachable by reordering one recorded trace.
// With reversal false it returns sync-preserving predictions only; with
// reversal true it additionally returns pairs that require reversing
// the order of critical sections (tagged Reversed). Output order is
// deterministic: pairs appear in the order their later access appears
// in the trace, deduplicated by unordered instruction pair.
func Pairs(events []Ev, reversal bool) []Pair {
	p := &predictor{
		threads:  map[interp.ThreadID]*threadState{},
		vars:     map[int64]*varState{},
		relW:     map[int64]map[int64]*vclock.VC{},
		relR:     map[int64]map[int64]*vclock.VC{},
		reversal: reversal,
		seen:     map[[2]*ir.Instr]bool{},
	}
	for _, e := range events {
		switch e.Kind {
		case interp.EvRead:
			p.access(e, false)
		case interp.EvWrite:
			p.access(e, true)
		case interp.EvAcquire:
			t := p.thread(e.TID)
			t.held = append(t.held, lockFrame{lock: e.Addr, vars: map[int64]uint8{}})
		case interp.EvRelease:
			p.release(e)
		case interp.EvSpawn:
			parent, child := p.thread(e.TID), p.thread(interp.ThreadID(e.Aux))
			child.clock.Join(parent.clock)
			child.spClock.Join(parent.spClock)
			child.clock.Tick(int(e.Aux))
			child.spClock.Tick(int(e.Aux))
			parent.clock.Tick(int(e.TID))
			parent.spClock.Tick(int(e.TID))
		case interp.EvJoin:
			t, child := p.thread(e.TID), p.thread(interp.ThreadID(e.Aux))
			t.clock.Join(child.clock)
			t.spClock.Join(child.spClock)
		}
	}
	return p.pairs
}

// thread returns (creating on first sight) the per-thread state. The
// clocks tick the thread's own component at creation so a tick of zero
// can never be mistaken for a real access, mirroring the detector's
// valid-epoch invariant.
func (p *predictor) thread(tid interp.ThreadID) *threadState {
	t, ok := p.threads[tid]
	if !ok {
		t = &threadState{clock: vclock.New(), spClock: vclock.New()}
		t.clock.Tick(int(tid))
		t.spClock.Tick(int(tid))
		p.threads[tid] = t
	}
	return t
}

// release pops the frame for the released lock and folds the critical
// section's accesses into the per-(lock, var) release clocks, then
// ticks the thread so post-release accesses are distinguishable from
// in-section ones.
func (p *predictor) release(e Ev) {
	t := p.thread(e.TID)
	for i := len(t.held) - 1; i >= 0; i-- {
		if t.held[i].lock != e.Addr {
			continue
		}
		fr := t.held[i]
		t.held = append(t.held[:i], t.held[i+1:]...)
		for v, bits := range fr.vars {
			if bits&2 != 0 {
				joinRel(p.relW, e.Addr, v, t.spClock)
			}
			if bits&1 != 0 {
				joinRel(p.relR, e.Addr, v, t.spClock)
			}
		}
		break
	}
	t.clock.Tick(int(e.TID))
	t.spClock.Tick(int(e.TID))
}

func joinRel(rel map[int64]map[int64]*vclock.VC, lock, v int64, c *vclock.VC) {
	m, ok := rel[lock]
	if !ok {
		m = map[int64]*vclock.VC{}
		rel[lock] = m
	}
	if cur, ok := m[v]; ok {
		cur.Join(c)
	} else {
		m[v] = c.Copy()
	}
}

// access applies the conflict-mediated edges for the current critical
// sections, tests the access against the other threads' shadow entries,
// and updates this thread's entry.
func (p *predictor) access(e Ev, isWrite bool) {
	t := p.thread(e.TID)
	// Sync-preserving edges: an access to x inside a critical section of
	// l is ordered after every earlier release of l whose section
	// conflicted on x. The optimistic clock skips these — that is
	// exactly the reversal it permits.
	for i := range t.held {
		l := t.held[i].lock
		if m, ok := p.relW[l]; ok {
			t.spClock.Join(m[e.Addr])
		}
		if isWrite {
			if m, ok := p.relR[l]; ok {
				t.spClock.Join(m[e.Addr])
			}
		}
		bit := uint8(1)
		if isWrite {
			bit = 2
		}
		t.held[i].vars[e.Addr] |= bit
	}

	vs, ok := p.vars[e.Addr]
	if !ok {
		vs = &varState{}
		p.vars[e.Addr] = vs
	}
	locks := heldLocks(t)

	// A racing pair needs at least one write: writes race against both
	// shadows, reads only against writes.
	p.check(t, e, locks, vs.writes)
	if isWrite {
		p.check(t, e, locks, vs.reads)
	}

	entries := &vs.reads
	if isWrite {
		entries = &vs.writes
	}
	ent := accEntry{
		tid:   e.TID,
		tick:  t.clock.Get(int(e.TID)),
		spTck: t.spClock.Get(int(e.TID)),
		locks: locks,
		ev:    e,
	}
	for i := range *entries {
		if (*entries)[i].tid == e.TID {
			(*entries)[i] = ent
			return
		}
	}
	*entries = append(*entries, ent)
}

// check tests the current access against each stored entry of other
// threads and records a Pair for every unordered, lock-disjoint one.
func (p *predictor) check(t *threadState, e Ev, locks []int64, entries []accEntry) {
	for i := range entries {
		ent := &entries[i]
		if ent.tid == e.TID {
			continue
		}
		// Ordered under the optimistic relation implies ordered under the
		// sync-preserving one (the latter has strictly more edges).
		optOrdered := ent.tick <= t.clock.Get(int(ent.tid))
		spOrdered := ent.spTck <= t.spClock.Get(int(ent.tid))
		if spOrdered && (optOrdered || !p.reversal) {
			continue
		}
		if !disjoint(ent.locks, locks) {
			continue
		}
		key := [2]*ir.Instr{ent.ev.Instr, e.Instr}
		if key[0] != key[1] && key[1].FullName() < key[0].FullName() {
			key[0], key[1] = key[1], key[0]
		}
		if p.seen[key] {
			continue
		}
		p.seen[key] = true
		p.pairs = append(p.pairs, Pair{A: ent.ev, B: e, Reversed: spOrdered})
	}
}

func heldLocks(t *threadState) []int64 {
	if len(t.held) == 0 {
		return nil
	}
	ls := make([]int64, len(t.held))
	for i := range t.held {
		ls[i] = t.held[i].lock
	}
	return ls
}

func disjoint(a, b []int64) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}
