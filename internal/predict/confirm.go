package predict

import (
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// Candidate is one prediction queued for dynamic confirmation: the pair
// and the decided prefix of the run that predicted it — every
// scheduling decision taken strictly before the pair's earlier access.
// Replaying the prefix re-establishes the machine state in which the
// prediction holds; steering does the rest.
type Candidate struct {
	Pair   Pair
	Prefix []int
}

// PrefixFor cuts the decided prefix for a pair out of the predicting
// run's decision trace. Decisions carry the machine step they were
// taken at, so the cut is exact: everything before the earlier access
// replays, and the first decision at or after it is left to steering.
func PrefixFor(decisions []sched.Decision, p Pair) []int {
	var pre []int
	for _, d := range decisions {
		if d.Step >= p.A.Step {
			break
		}
		pre = append(pre, d.Chosen)
	}
	return pre
}

// DefaultHoldBudget bounds the steps each steering phase of a
// confirmation run may spend before the pair is declared refuted. It
// exists to keep a mispredicted pair from consuming a whole run budget:
// a genuine pair needs only the steps between the prefix end and the
// two accesses.
const DefaultHoldBudget = 20000

// Confirmer replays steered schedules that try to realize predicted
// pairs. A pair is confirmed only when the replay's own happens-before
// detector reports it — prediction never reaches a report directly, so
// the optimistic arm's unsoundness cannot produce false positives.
type Confirmer struct {
	// Snap, when non-nil, resumes each replay from the deepest cached
	// prefix of the predicting run (shared with the seed exploration);
	// nil replays from step 0.
	Snap *sched.SnapCache
	// HoldBudget overrides DefaultHoldBudget when positive.
	HoldBudget int
}

// Confirm runs one steered replay for the candidate. It returns every
// race the replay's detector observed (already deduplicated; races
// beyond the predicted pair are genuine finds and worth merging), and
// whether the predicted pair itself was among them. The replay is
// deterministic, so a confirmed pair is replayable evidence.
//
// cfg supplies the program (Module, Entry, Args, Inputs, MaxSteps);
// Confirm owns Sched and the observer slots. The observer composition
// — detector, recorder, coverage — deliberately matches the seed
// exploration's, so snapshot-cache entries restore cleanly across the
// two phases.
func (c *Confirmer) Confirm(cfg interp.Config, benign *race.Annotations, cand Candidate) ([]*race.Report, bool, error) {
	d := race.NewDetector()
	d.Benign = benign
	rec := NewRecorder()
	cov := sched.NewCoverage().NewRun()
	ds := &sched.DecisionSched{Decisions: cand.Prefix}
	ss := &sched.SteerSched{DS: ds}
	cfg.Sched = ss
	cfg.Observers = []interp.Observer{d, rec}
	cfg.SwitchObservers = []interp.SwitchObserver{cov}

	m, err := c.Snap.Restore(cfg, ds)
	if err != nil {
		return nil, false, err
	}

	// Phase 1: replay the decided prefix (a restored machine starts with
	// part of it already consumed). The prefix comes from a real run, so
	// it can only fall short if the machine halts early — fault-truncated
	// step budgets, typically.
	for len(ds.Trace) < len(ds.Decisions) {
		if !m.Step() {
			return d.Reports(), pairIn(d.Reports(), cand.Pair), nil
		}
	}

	tA, tB := cand.Pair.A.TID, cand.Pair.B.TID
	inA, inB := cand.Pair.A.Instr, cand.Pair.B.Instr
	hb := c.HoldBudget
	if hb <= 0 {
		hb = DefaultHoldBudget
	}
	scanA := &evScan{pos: len(rec.Events())}
	scanB := &evScan{pos: len(rec.Events())}

	// Phase 2: park the earlier access's thread and drive the other
	// until its racing instruction is the next thing it would execute.
	ss.Steer(tA, tB)
	for i := 0; ; i++ {
		if pa, ok := m.Pending(tB); ok && pa.Instr == inB {
			break
		}
		if i >= hb || !m.Step() {
			return d.Reports(), pairIn(d.Reports(), cand.Pair), nil
		}
	}

	// Phase 3: freeze B at its access and let A's thread perform its
	// side of the pair.
	ss.Steer(tB, tA)
	for i := 0; !scanA.hit(rec.Events(), tA, inA); i++ {
		if i >= hb || !m.Step() {
			return d.Reports(), pairIn(d.Reports(), cand.Pair), nil
		}
	}

	// Phase 4: release B. If the prediction is real, its very next
	// access races with the one A just performed and the detector
	// reports the pair.
	ss.Steer(tA, tB)
	for i := 0; !scanB.hit(rec.Events(), tB, inB); i++ {
		if i >= hb || !m.Step() {
			break
		}
	}
	return d.Reports(), pairIn(d.Reports(), cand.Pair), nil
}

// pairIn reports whether the pair's identity appears among the reports.
func pairIn(reports []*race.Report, p Pair) bool {
	id := p.ID()
	for _, r := range reports {
		if r.ID() == id {
			return true
		}
	}
	return false
}

// evScan is an advancing cursor over a recorder's trace, used to detect
// that a specific thread executed a specific access at or after the
// scan's starting point. Each phase owns its own cursor so out-of-order
// executions (a steering phase forced to run the held thread) are still
// seen.
type evScan struct {
	pos int
}

func (s *evScan) hit(events []Ev, tid interp.ThreadID, instr *ir.Instr) bool {
	for ; s.pos < len(events); s.pos++ {
		e := events[s.pos]
		if e.TID == tid && e.Instr == instr && (e.Kind == interp.EvRead || e.Kind == interp.EvWrite) {
			s.pos++
			return true
		}
	}
	return false
}
