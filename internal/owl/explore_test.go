package owl

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/workloads"
)

func coverageProgram(t *testing.T, name string) (Program, *workloads.Workload) {
	t.Helper()
	w := workloads.Get(name, workloads.NoiseLight)
	if w == nil {
		t.Fatalf("unknown workload %q", name)
	}
	rec := w.Recipe(w.Attacks[0].InputRecipe)
	return Program{
		Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, w
}

// countersOf flattens a snapshot's counters (the deterministic part of
// the metrics surface; stage timings legitimately vary).
func countersOf(mc *metrics.Collector) string {
	rep := mc.Snapshot()
	var b strings.Builder
	for _, c := range rep.Counters {
		fmt.Fprintf(&b, "%s=%d\n", c.Name, c.Value)
	}
	for _, g := range rep.Gauges {
		if g.Name == "owl.workers" {
			continue // differs across the compared runs by construction
		}
		fmt.Fprintf(&b, "%s=%v\n", g.Name, g.Value)
	}
	return b.String()
}

// TestCoverageExploreDeterministicAcrossWorkers is the acceptance gate:
// the coverage-guided pipeline must produce byte-identical results and
// counters for workers = 1 and 4 at a fixed (seed, budget).
func TestCoverageExploreDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"libsafe", "ssdb"} {
		t.Run(name, func(t *testing.T) {
			p, _ := coverageProgram(t, name)
			var baseFP, baseCounters string
			for _, workers := range []int{1, 4} {
				mc := metrics.New()
				res, err := Run(p, Options{
					Explore: ExploreCoverage, Budget: 24, Seed: 7,
					Workers: workers, EnableAtomicity: true, Metrics: mc,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				fp, cs := fingerprint(res), countersOf(mc)
				if workers == 1 {
					baseFP, baseCounters = fp, cs
					if baseFP == "" {
						t.Fatal("workers=1 produced an empty result")
					}
					continue
				}
				if fp != baseFP {
					t.Errorf("workers=%d result differs:\n--- workers=1\n%s--- workers=%d\n%s",
						workers, baseFP, workers, fp)
				}
				if cs != baseCounters {
					t.Errorf("workers=%d counters differ:\n--- workers=1\n%s--- workers=%d\n%s",
						workers, baseCounters, workers, cs)
				}
			}
		})
	}
}

func TestCoverageExploreEmitsEngineMetrics(t *testing.T) {
	p, _ := coverageProgram(t, "libsafe")
	mc := metrics.New()
	if _, err := Run(p, Options{Explore: ExploreCoverage, Budget: 24, Metrics: mc}); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, c := range mc.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["sched.rounds"] == 0 {
		t.Error("sched.rounds not emitted")
	}
	if counters["sched.coverage_pairs"] == 0 {
		t.Error("sched.coverage_pairs not emitted")
	}
	var perStrategy int64
	for _, s := range sched.Strategies() {
		perStrategy += counters["sched.runs."+s.String()]
	}
	if perStrategy != counters["owl.detect_runs"] {
		t.Errorf("per-strategy runs sum to %d, owl.detect_runs says %d",
			perStrategy, counters["owl.detect_runs"])
	}
	gauges := map[string]float64{}
	for _, g := range mc.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	if _, ok := gauges["sched.early_stop"]; !ok {
		t.Error("sched.early_stop gauge not emitted")
	}
}

// recordingSched wraps a live scheduler and records the decision vector
// it effectively took (the chosen runnable index at every point with more
// than one runnable thread) — exactly the DecisionSched trace format.
type recordingSched struct {
	inner     interp.Scheduler
	decisions []int
}

func (r *recordingSched) Next(runnable []interp.ThreadID, step int) interp.ThreadID {
	id := r.inner.Next(runnable, step)
	if len(runnable) > 1 {
		idx := 0
		for i, t := range runnable {
			if t == id {
				idx = i
				break
			}
		}
		r.decisions = append(r.decisions, idx)
	}
	return id
}

func raceIDs(p Program, s interp.Scheduler) ([]string, error) {
	d := race.NewDetector()
	m, err := interp.New(interp.Config{
		Module: p.Module, Entry: p.Entry, Inputs: p.Inputs,
		MaxSteps: p.MaxSteps, Sched: s,
		Observers: []interp.Observer{d},
	})
	if err != nil {
		return nil, err
	}
	m.Run()
	var ids []string
	for _, r := range d.Reports() {
		ids = append(ids, r.ID())
	}
	sort.Strings(ids)
	return ids, nil
}

// TestDecisionReplayReproducesCoverageRun is the satellite regression:
// replaying the recorded decision vector of any coverage-guided run
// through a DecisionSched must reproduce that run's exact race report
// set. This is the property the verification stages lean on when they
// re-execute a schedule the explorer found.
func TestDecisionReplayReproducesCoverageRun(t *testing.T) {
	p, _ := coverageProgram(t, "libsafe")
	eng := sched.NewEngine(sched.EngineConfig{Budget: 18, Seed: 3, PCTSteps: p.MaxSteps})
	replayed := 0
	_, err := eng.Explore(func(jobs []*sched.Job) error {
		for _, j := range jobs {
			rec := &recordingSched{inner: j.Sched}
			live, err := raceIDs(p, rec)
			if err != nil {
				return err
			}
			again, err := raceIDs(p, &sched.DecisionSched{Decisions: rec.decisions})
			if err != nil {
				return err
			}
			if strings.Join(live, ",") != strings.Join(again, ",") {
				t.Errorf("%v run: live reports %v, replay reports %v",
					j.Strategy, live, again)
			}
			j.ReportIDs = live
			replayed++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("engine scheduled no runs")
	}
}
