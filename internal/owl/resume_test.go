package owl

import (
	"fmt"
	"testing"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/sched"
)

// resultFingerprint flattens the deterministic parts of a Result for
// equality checks (report IDs in merge order plus the Table-3 stats,
// timings zeroed).
func resultFingerprint(res *Result) string {
	s := res.Stats
	s.AnalysisTime, s.TotalTime = 0, 0
	out := fmt.Sprintf("stats=%+v\nraw=", s)
	for _, r := range res.Raw {
		out += r.ID() + ","
	}
	out += "\nattacks="
	for _, a := range res.Attacks {
		out += a.String() + ";"
	}
	return out
}

// detectRunsOf extracts the owl.detect_runs counter — the executed
// schedule count the resume acceptance gate compares.
func detectRunsOf(t *testing.T, mc *metrics.Collector) int64 {
	t.Helper()
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "owl.detect_runs" {
			return c.Value
		}
	}
	t.Fatal("owl.detect_runs counter missing")
	return 0
}

// TestExploreStateFreshRunIsByteIdentical pins that threading an *empty*
// ExploreState changes nothing: the first submission through the service
// must render byte-for-byte what cmd/owl renders for the same options.
func TestExploreStateFreshRunIsByteIdentical(t *testing.T) {
	p, _ := coverageProgram(t, "libsafe")

	mcPlain := metrics.New()
	plain, err := Run(p, Options{Explore: ExploreCoverage, Budget: 24, Seed: 7, Workers: 2, Metrics: mcPlain})
	if err != nil {
		t.Fatal(err)
	}
	mcState := metrics.New()
	st := sched.NewExploreState(0)
	warmed, err := Run(p, Options{
		Explore: ExploreCoverage, Budget: 24, Seed: 7, Workers: 2,
		Metrics: mcState, ExploreState: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultFingerprint(plain), resultFingerprint(warmed); a != b {
		t.Errorf("empty-state run diverged from stateless run:\n--- plain ---\n%s\n--- with state ---\n%s", a, b)
	}
	if a, b := countersOf(mcPlain), countersOf(mcState); a != b {
		t.Errorf("counters diverged:\n--- plain ---\n%s--- with state ---\n%s", a, b)
	}
	if !st.Warm() {
		t.Error("state not warm after first run")
	}
}

// TestExploreStateResumeExecutesFewerSchedules is the resume acceptance
// gate at the pipeline level: a repeat run of the same program against
// the same state must saturate immediately and execute strictly fewer
// schedules at equal budget, and a third run must repeat the second's
// count exactly (cross-submission determinism).
func TestExploreStateResumeExecutesFewerSchedules(t *testing.T) {
	p, _ := coverageProgram(t, "libsafe")
	st := sched.NewExploreState(64)
	opts := func(mc *metrics.Collector) Options {
		return Options{
			Explore: ExploreCoverage, Budget: 24, Seed: 7, Workers: 2,
			Metrics: mc, ExploreState: st,
		}
	}

	mc1 := metrics.New()
	if _, err := Run(p, opts(mc1)); err != nil {
		t.Fatal(err)
	}
	first := detectRunsOf(t, mc1)

	mc2 := metrics.New()
	if _, err := Run(p, opts(mc2)); err != nil {
		t.Fatal(err)
	}
	second := detectRunsOf(t, mc2)
	if second >= first {
		t.Errorf("resumed run executed %d schedules, want strictly fewer than %d", second, first)
	}

	mc3 := metrics.New()
	if _, err := Run(p, opts(mc3)); err != nil {
		t.Fatal(err)
	}
	if third := detectRunsOf(t, mc3); third != second {
		t.Errorf("third run executed %d schedules, want %d (resume determinism)", third, second)
	}
	if st.Explorations() != 3 {
		t.Errorf("explorations absorbed = %d, want 3", st.Explorations())
	}
}

// TestExploreStateIgnoredOutsideCoverage pins the guard: fixed-mode and
// predict-mode pipelines leave the state untouched.
func TestExploreStateIgnoredOutsideCoverage(t *testing.T) {
	p, _ := coverageProgram(t, "libsafe")
	st := sched.NewExploreState(0)
	if _, err := Run(p, Options{Explore: ExploreFixed, DetectRuns: 4, ExploreState: st}); err != nil {
		t.Fatal(err)
	}
	if st.Warm() {
		t.Error("fixed-mode run absorbed into the explore state")
	}
	if _, err := Run(p, Options{
		Explore: ExploreCoverage, Predict: true, Budget: 8, ExploreState: st,
	}); err != nil {
		t.Fatal(err)
	}
	if st.Warm() {
		t.Error("predict-mode run absorbed into the explore state")
	}
}
