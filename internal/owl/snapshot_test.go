package owl

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/metrics"
)

// dropSnapCounters removes the snapshot-cache accounting lines from a
// countersOf rendering: sched.snap_* and interp.cow_* are the only
// counters allowed to differ between snapshotting on and off (they
// describe the cache itself, which exists only when enabled).
func dropSnapCounters(counters string) string {
	var keep []string
	for _, line := range strings.Split(counters, "\n") {
		if strings.HasPrefix(line, "sched.snap_") || strings.HasPrefix(line, "interp.cow_") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestSnapshotCacheDifferentialGate is the acceptance gate for
// prefix-sharing exploration: the full coverage-guided pipeline must
// produce byte-identical results — reports, findings, coverage, and
// every counter except the snapshot counters themselves — with
// snapshotting off and on, across worker counts 1, 4, and 8.
func TestSnapshotCacheDifferentialGate(t *testing.T) {
	for _, name := range []string{"libsafe", "ssdb"} {
		t.Run(name, func(t *testing.T) {
			p, _ := coverageProgram(t, name)
			var baseFP, baseCounters string
			var sawHit bool
			cases := []struct {
				snap, workers int
			}{
				{0, 1}, // reference: snapshotting off
				{64, 1},
				{64, 4},
				{64, 8},
				{3, 1}, // a tiny cache must also preserve results
			}
			for _, tc := range cases {
				mc := metrics.New()
				res, err := Run(p, Options{
					Explore: ExploreCoverage, Budget: 24, Seed: 7,
					Workers: tc.workers, EnableAtomicity: true,
					SnapCache: tc.snap, Metrics: mc,
				})
				if err != nil {
					t.Fatalf("snap=%d workers=%d: %v", tc.snap, tc.workers, err)
				}
				fp, cs := fingerprint(res), dropSnapCounters(countersOf(mc))
				if tc.snap == 0 {
					baseFP, baseCounters = fp, cs
					if baseFP == "" {
						t.Fatal("reference run produced an empty result")
					}
					continue
				}
				if fp != baseFP {
					t.Errorf("snap=%d workers=%d result differs:\n--- off\n%s--- on\n%s",
						tc.snap, tc.workers, baseFP, fp)
				}
				if cs != baseCounters {
					t.Errorf("snap=%d workers=%d counters differ:\n--- off\n%s\n--- on\n%s",
						tc.snap, tc.workers, baseCounters, cs)
				}
				for _, c := range mc.Snapshot().Counters {
					if c.Name == "sched.snap_hits" && c.Value > 0 {
						sawHit = true
					}
				}
			}
			if !sawHit {
				t.Error("no configuration ever hit the snapshot cache; prefix sharing is inert")
			}
		})
	}
}
