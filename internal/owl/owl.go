// Package owl wires OWL's five components into the Figure-3 pipeline:
//
//  1. a concurrency error detector runs on the program's inputs;
//  2. the static ad-hoc synchronization detector mines the reports,
//     annotates the program, and the detector re-runs (schedule reduction);
//  3. the dynamic race verifier confirms the remaining reports and emits
//     security hints;
//  4. the static vulnerability analyzer (Algorithm 1) computes vulnerable
//     input hints from each verified report;
//  5. the dynamic vulnerability verifier re-runs the program and checks
//     whether each site can actually be reached.
//
// The package also produces the reduction accounting behind the paper's
// Table 3 (raw reports -> ad-hoc annotated -> verifier-eliminated ->
// remaining) and the per-program detection summaries of Table 2.
//
// Every stage runs under a pipeline supervisor (internal/supervise): a
// panicking or erroring run is quarantined instead of killing the
// process, stages respect a per-stage deadline and cooperative
// cancellation, and later stages consume whatever partial results a
// degraded stage produced. Result carries the deterministic Quarantined
// and Degraded records; Options.FailFast opts out of degradation and
// turns the first stage fault into an error.
package owl

import (
	"context"
	"fmt"
	"time"

	"github.com/conanalysis/owl/internal/adhoc"
	"github.com/conanalysis/owl/internal/atomicity"
	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/raceverify"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/supervise"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/vulnverify"
)

// Program is the unit OWL analyzes: a frozen module plus the workload
// configuration (entry, arguments, input tape).
type Program struct {
	Module   *ir.Module
	Entry    string
	Args     []int64
	Inputs   []int64
	MaxSteps int
}

// ExploreMode selects how the detect stage spends its schedule budget.
type ExploreMode string

// Explore modes. Fixed replays DetectRuns fixed random seeds — the
// original blind loop. Coverage runs the adaptive portfolio search
// (seeded random + PCT + preemption-bounded DFS) steered by the
// interleaving-coverage map; see internal/sched and docs/EXPLORATION.md.
const (
	ExploreFixed    ExploreMode = "fixed"
	ExploreCoverage ExploreMode = "coverage"
)

// Options tunes the pipeline. The Disable* switches exist for the
// ablation benchmarks.
type Options struct {
	// Engine selects the interpreter execution engine for every machine
	// the pipeline builds — detection runs, steered replays, and the
	// dynamic verifiers (default interp.EngineTree). The two engines are
	// observably identical (docs/BYTECODE.md); only speed and the
	// bytecode.* / interp.engine metrics differ.
	Engine interp.Engine

	// DetectRuns is the number of seeded detection executions whose
	// deduplicated reports form the raw report set (default 8).
	DetectRuns int

	// Explore selects the detect-stage exploration mode (default
	// ExploreFixed). With ExploreCoverage the detect and atomicity stages
	// run the coverage-guided engine instead of the fixed-seed loop; the
	// result is still deterministic for a fixed (Seed, Budget, Workers).
	Explore ExploreMode

	// Budget is the total run budget of coverage-guided exploration per
	// detect stage (default: DetectRuns). Ignored in fixed mode. The
	// engine may spend less when the search saturates early.
	Budget int

	// Seed is the base seed coverage-guided exploration derives every
	// strategy's per-run seeds from (default 0, which makes the engine's
	// random arm replay the fixed-mode seed sequence 1,2,3,...).
	Seed uint64

	// SnapCache, when > 0, gives each coverage-guided detect stage a
	// bounded copy-on-write snapshot cache of that many entries: the DFS
	// strategy's systematic schedules resume from the deepest cached
	// decision-prefix ancestor instead of replaying it from step 0.
	// Results, reports, coverage, and counters stay byte-identical with
	// the cache on or off (only the sched.snap_* / interp.cow_* counters
	// themselves appear); 0 disables snapshotting. Ignored in fixed mode.
	SnapCache int

	// ExploreState, when non-nil, makes the *initial* coverage-guided
	// detect stage resume from — and fold back into — persistent
	// cross-run exploration state (sched.ExploreState): the engine starts
	// pre-seeded with the state's accumulated coverage and seen-report
	// set (so a repeat run of an already-explored program saturates and
	// early-stops after a fraction of the budget) and, when the state
	// carries one, its persistent snapshot cache. Only consulted when
	// Explore is ExploreCoverage and Predict is off; the ad-hoc re-run
	// and atomicity stages always explore fresh (their detector
	// configuration differs, so mixing their scores into the shared state
	// would poison resume decisions). The state must have been built for
	// this exact Module value — coverage keys are instruction identities.
	ExploreState *sched.ExploreState

	// Predict switches the detect stages to predictive race detection
	// (-predict; docs/PREDICTION.md): roughly half the budget executes
	// coverage-guided seed schedules whose synchronization traces feed a
	// sync-preserving race predictor, and the rest executes only steered
	// replays that confirm or refute the predicted pairs. Confirmed pairs
	// become ordinary reports (and so flow into raceverify); predictions
	// alone are never reported. Deterministic for a fixed (Seed, Budget,
	// Workers), independent of worker count and SnapCache.
	Predict bool

	// PredictReversal additionally enables the optimistic
	// sync-reversal prediction arm (-predict-reversal), which drops the
	// critical-section ordering edges and predicts more pairs. The extra
	// pairs may be infeasible; confirmation filters them, so soundness is
	// unaffected — only confirm-budget spend.
	PredictReversal bool

	// DisableAdhoc skips step 2; DisableRaceVerify skips step 3;
	// DisableVulnVerify skips step 5.
	DisableAdhoc      bool
	DisableRaceVerify bool
	DisableVulnVerify bool

	// TrackCtrl / InterProcedural configure Algorithm 1 (both default on;
	// see the vuln package for what turning them off reproduces).
	DisableCtrlFlow  bool
	DisableInterProc bool

	// RaceVerifier / VulnVerifier override the default verifiers.
	RaceVerifier *raceverify.Verifier
	VulnVerifier *vulnverify.Verifier

	// Sites overrides the vulnerable-site registry.
	Sites *vuln.Registry

	// EnableAtomicity additionally runs the CTrigger-style
	// atomicity-violation detector and feeds each violation's read side to
	// Algorithm 1 — the integration the paper describes as future work
	// (§8.3). Results land in Result.AtomicityReports /
	// Result.AtomicityFindings.
	EnableAtomicity bool

	// Workers bounds the worker pool the pipeline fans its inner loops
	// over: the seeded detection runs, the per-report race verifications,
	// and the per-finding vulnerability verifications. Every run builds
	// its own machine against the frozen (read-only) module, so workers
	// share nothing and results merge deterministically in seed/report
	// order — Result is byte-identical for any worker count. Values <= 1
	// keep the pipeline fully sequential.
	Workers int

	// Metrics, when non-nil, receives per-stage wall/busy timings,
	// report/finding counters, and worker-utilization gauges for the run.
	Metrics *metrics.Collector

	// Ctx cancels the whole pipeline cooperatively: checked between
	// interpreter runs (job boundaries) and between exploration rounds.
	// A canceled pipeline returns the partial Result with the remaining
	// runs recorded as lost (default context.Background()).
	Ctx context.Context

	// StageTimeout is the per-stage deadline (0 = none). A stage that
	// overruns it loses its unfinished runs and degrades; later stages
	// still run on the partial results.
	StageTimeout time.Duration

	// Retries is the number of extra attempts a faulted run gets (with
	// exponential backoff) before it is quarantined (default 0).
	Retries int

	// Faults is the optional deterministic fault-injection plan
	// (-faults on cmd/owl); nil injects nothing.
	Faults *faultinject.Plan

	// FailFast turns graceful degradation off: the first stage that
	// quarantines or loses a run fails the pipeline with an error naming
	// that stage, instead of degrading and continuing.
	FailFast bool
}

// Stats is the Table-3 accounting for one program.
type Stats struct {
	RawReports         int           // R.R.
	AdhocSyncs         int           // A.S.
	AfterAnnotation    int           // reports surviving the §5.1 re-run
	VerifierEliminated int           // R.V.E.
	Remaining          int           // R.
	Findings           int           // OWL vulnerability reports
	VerifiedAttacks    int           // sites dynamically confirmed reachable
	AnalysisTime       time.Duration // static-analysis cost (A.C. analogue)
	TotalTime          time.Duration
}

// ReductionRatio returns the fraction of raw reports eliminated before
// the static analysis stage (the paper's 94.3% headline).
func (s Stats) ReductionRatio() float64 {
	if s.RawReports == 0 {
		return 0
	}
	return 1 - float64(s.Remaining)/float64(s.RawReports)
}

// Attack is a fully confirmed bug-to-attack propagation.
type Attack struct {
	Report  *race.Report
	Hint    *raceverify.Hint
	Finding *vuln.Finding
	Outcome *vulnverify.Outcome
}

func (a *Attack) String() string {
	return fmt.Sprintf("%s at %s via %s race on %s",
		a.Finding.Kind, a.Finding.Site.Loc(), a.Finding.Dep, a.Report.AddrName)
}

// Result is the pipeline output.
type Result struct {
	Raw       []*race.Report
	Syncs     []*adhoc.Sync
	Annotated []*race.Report
	Hints     []*raceverify.Hint
	// FindingsByReport maps race-report IDs to Algorithm-1 findings.
	FindingsByReport map[string][]*vuln.Finding
	Outcomes         []*vulnverify.Outcome
	Attacks          []*Attack
	// AtomicityReports / AtomicityFindings are filled when
	// Options.EnableAtomicity is set.
	AtomicityReports  []*atomicity.Report
	AtomicityFindings []*vuln.Finding
	// PredictedConfirmed lists the predicted race IDs that steered
	// replays dynamically confirmed (Options.Predict), across the detect
	// and ad-hoc re-run stages, in confirmation order without duplicates.
	// Every entry also appears in Raw (or Annotated for the re-run).
	PredictedConfirmed []string
	// Quarantined lists the runs the supervisor isolated (panic or
	// error after retries), in stage-then-run order; Degraded lists the
	// stages that lost work and why. Both are empty on a clean run and
	// deterministic for a fixed fault plan regardless of worker count.
	Quarantined []supervise.Quarantined
	Degraded    []supervise.Degradation
	Stats       Stats
}

// Run executes the pipeline over the program.
func Run(p Program, opts Options) (*Result, error) {
	start := time.Now()
	if p.Module == nil || !p.Module.Frozen() {
		return nil, fmt.Errorf("owl: program module missing or not frozen")
	}
	if p.MaxSteps <= 0 {
		p.MaxSteps = 200000
	}
	detectRuns := opts.DetectRuns
	if detectRuns <= 0 {
		detectRuns = 8
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	mc := opts.Metrics
	mc.Gauge("owl.workers", float64(workers))
	if opts.Engine == interp.EngineBytecode {
		mc.Gauge("interp.engine", 1)
	} else {
		mc.Gauge("interp.engine", 0)
	}
	defer mc.Stage("owl.total")()

	budget := opts.Budget
	if budget <= 0 {
		budget = detectRuns
	}

	sup := supervise.New(supervise.Config{
		Ctx:          opts.Ctx,
		StageTimeout: opts.StageTimeout,
		Retries:      opts.Retries,
		Faults:       opts.Faults,
		Metrics:      mc,
	})

	res := &Result{FindingsByReport: make(map[string][]*vuln.Finding)}
	// finish folds the supervisor's accounting into the Result; every
	// return path (degraded or fail-fast) goes through it so partial
	// results always carry their loss records.
	finish := func() {
		res.Quarantined = sup.Quarantined()
		res.Degraded = sup.Degraded()
		res.Stats.TotalTime = time.Since(start)
	}
	// endStage closes a stage; under FailFast a faulted stage aborts the
	// pipeline with an error naming it.
	endStage := func(st *supervise.StageRun) error {
		faulted := st.Faulted()
		st.Close()
		if opts.FailFast && faulted {
			return st.FaultErr()
		}
		return nil
	}

	// runDetect is one detect stage: the fixed-seed loop or the
	// coverage-guided engine, both merging reports in run order under the
	// given stage's supervision.
	runDetect := func(st *supervise.StageRun, benign *race.Annotations) []*race.Report {
		if opts.Predict {
			reports, confirmed, runs := detectPredict(p, st, budget, workers, benign, opts, mc)
			mc.Count("owl.detect_runs", int64(runs))
			for _, id := range confirmed {
				if !containsID(res.PredictedConfirmed, id) {
					res.PredictedConfirmed = append(res.PredictedConfirmed, id)
				}
			}
			return reports
		}
		if opts.Explore == ExploreCoverage {
			// Persistent state resumes only the initial detect stage: the
			// re-run explores under benign annotations, whose scores must
			// not contaminate the cross-run map.
			var resume *sched.ExploreState
			if benign == nil {
				resume = opts.ExploreState
			}
			reports, runs := detectCoverage(p, st, budget, workers, benign, resume, opts, mc)
			mc.Count("owl.detect_runs", int64(runs))
			return reports
		}
		mc.Count("owl.detect_runs", int64(detectRuns))
		return detect(p, st, detectRuns, workers, benign, opts.Engine, mc)
	}

	// Step 1: detection runs over explored schedules; dedupe across runs.
	st := sup.Stage("owl.detect")
	res.Raw = runDetect(st, nil)
	if err := endStage(st); err != nil {
		finish()
		return nil, fmt.Errorf("owl: %w", err)
	}
	res.Stats.RawReports = len(res.Raw)
	mc.Count("owl.raw_reports", int64(res.Stats.RawReports))

	// Step 2: mine ad-hoc synchronizations, annotate, re-run. Mining is
	// guarded (a panic over partial reports degrades to the unannotated
	// set); the re-run's executions are stage "owl.adhoc" for fault keys,
	// so plans targeting "owl.detect" hit only the initial runs.
	working := res.Raw
	if !opts.DisableAdhoc {
		st = sup.Stage("owl.adhoc")
		mined := st.Guard(0, func(context.Context) error {
			res.Syncs = adhoc.NewDetector().Analyze(res.Raw)
			res.Stats.AdhocSyncs = adhoc.UniqueVars(res.Syncs)
			return nil
		})
		if mined && len(res.Syncs) > 0 {
			ann := adhoc.Annotate(res.Syncs, nil)
			working = runDetect(st, ann)
		}
		if err := endStage(st); err != nil {
			finish()
			return nil, fmt.Errorf("owl: %w", err)
		}
	}
	res.Annotated = working
	res.Stats.AfterAnnotation = len(working)
	mc.Count("owl.adhoc_syncs", int64(res.Stats.AdhocSyncs))
	mc.Count("owl.after_annotation", int64(res.Stats.AfterAnnotation))

	// Step 3: dynamic race verification with security hints. Each report
	// is verified on its own freshly built machines, so the per-report
	// loop fans out; hints are collected in report order. A quarantined
	// verification drops its report from every later stage (neither
	// verified nor eliminated — lost).
	mk := factory(p, opts.Engine)
	rvLost := 0
	if !opts.DisableRaceVerify {
		rv := opts.RaceVerifier
		if rv == nil {
			rv = raceverify.New()
		}
		st = sup.Stage("owl.raceverify")
		hints := make([]*raceverify.Hint, len(working))
		st.ForEach(0, len(working), workers, func(_ context.Context, i int) error {
			if err := st.Inject(i); err != nil {
				return err
			}
			h, err := rv.Verify(mk, working[i])
			if err != nil {
				return fmt.Errorf("race verification of %s: %w", working[i].ID(), err)
			}
			hints[i] = h
			return nil
		})
		if err := endStage(st); err != nil {
			finish()
			return nil, fmt.Errorf("owl: %w", err)
		}
		for _, h := range hints {
			if h == nil {
				rvLost++
				continue
			}
			res.Hints = append(res.Hints, h)
			if !h.Verified {
				res.Stats.VerifierEliminated++
			}
		}
	} else {
		for _, rep := range working {
			res.Hints = append(res.Hints, &raceverify.Hint{Report: rep, Verified: true})
		}
	}
	res.Stats.Remaining = res.Stats.AfterAnnotation - res.Stats.VerifierEliminated - rvLost
	mc.Count("owl.verifier_eliminated", int64(res.Stats.VerifierEliminated))

	// Step 4: Algorithm 1 on each verified report's read side. The loop
	// stays sequential (findings accumulate in hint order); each hint's
	// analysis is guarded so one pathological report degrades alone.
	analysisStart := time.Now()
	st = sup.Stage("owl.analyze")
	analyzer := vuln.NewAnalyzer(p.Module)
	analyzer.TrackCtrl = !opts.DisableCtrlFlow
	analyzer.InterProcedural = !opts.DisableInterProc
	if opts.Sites != nil {
		analyzer.Sites = opts.Sites
	}
	for j, h := range res.Hints {
		if !h.Verified {
			continue
		}
		rd, ok := h.Report.ReadSide()
		if !ok || rd.Instr == nil {
			continue
		}
		st.Guard(j, func(context.Context) error {
			if err := st.Inject(j); err != nil {
				return err
			}
			findings := analyzer.Analyze(rd.Instr, rd.Stack)
			if len(findings) > 0 {
				res.FindingsByReport[h.Report.ID()] = findings
				res.Stats.Findings += len(findings)
			}
			return nil
		})
	}
	if err := endStage(st); err != nil {
		finish()
		return nil, fmt.Errorf("owl: %w", err)
	}
	mc.Count("owl.findings", int64(res.Stats.Findings))
	// Optional CTrigger-style stage: atomicity violations also feed
	// Algorithm 1 (paper §8.3 integration).
	if opts.EnableAtomicity {
		st = sup.Stage("owl.atomicity")
		if opts.Explore == ExploreCoverage {
			res.AtomicityReports = detectAtomicityCoverage(p, st, budget, workers, opts, mc)
		} else {
			res.AtomicityReports = detectAtomicity(p, st, detectRuns, workers, opts.Engine, mc)
		}
		for _, ar := range res.AtomicityReports {
			in, stack, ok := atomicity.ReadSideOf(ar)
			if !ok {
				continue
			}
			res.AtomicityFindings = append(res.AtomicityFindings, analyzer.Analyze(in, stack)...)
		}
		if err := endStage(st); err != nil {
			finish()
			return nil, fmt.Errorf("owl: %w", err)
		}
	}
	res.Stats.AnalysisTime = time.Since(analysisStart)

	// Step 5: dynamic vulnerability verification. The (hint, finding)
	// pairs form an order-stable job list; outcomes land back in job order
	// so the output is independent of worker count. A quarantined or lost
	// verification leaves its slot nil — no outcome, no attack.
	if !opts.DisableVulnVerify {
		vv := opts.VulnVerifier
		if vv == nil {
			vv = vulnverify.New()
		}
		type vvJob struct {
			h *raceverify.Hint
			f *vuln.Finding
		}
		var vvJobs []vvJob
		for _, h := range res.Hints {
			if !h.Verified {
				continue
			}
			for _, f := range res.FindingsByReport[h.Report.ID()] {
				vvJobs = append(vvJobs, vvJob{h: h, f: f})
			}
		}
		st = sup.Stage("owl.vulnverify")
		outs := make([]*vulnverify.Outcome, len(vvJobs))
		st.ForEach(0, len(vvJobs), workers, func(_ context.Context, i int) error {
			if err := st.Inject(i); err != nil {
				return err
			}
			out, err := vv.Verify(mk, vvJobs[i].f)
			if err != nil {
				return fmt.Errorf("vulnerability verification at %s: %w", vvJobs[i].f.Site.Loc(), err)
			}
			outs[i] = out
			return nil
		})
		if err := endStage(st); err != nil {
			finish()
			return nil, fmt.Errorf("owl: %w", err)
		}
		for i, out := range outs {
			if out == nil {
				continue
			}
			res.Outcomes = append(res.Outcomes, out)
			if out.Reached {
				res.Stats.VerifiedAttacks++
				res.Attacks = append(res.Attacks, &Attack{
					Report:  vvJobs[i].h.Report,
					Hint:    vvJobs[i].h,
					Finding: vvJobs[i].f,
					Outcome: out,
				})
			}
		}
	}
	mc.Count("owl.outcomes", int64(len(res.Outcomes)))
	mc.Count("owl.attacks", int64(len(res.Attacks)))
	finish()
	return res, nil
}

// detectAtomicity runs the atomicity detector across seeded schedules,
// fanning the runs over the stage's supervised pool and merging
// violations by ID in seed order (so the output is independent of worker
// count). A quarantined or lost run contributes no reports.
func detectAtomicity(p Program, st *supervise.StageRun, runs, workers int, eng interp.Engine, mc *metrics.Collector) []*atomicity.Report {
	perSeed := make([][]*atomicity.Report, runs)
	st.ForEach(0, runs, workers, func(_ context.Context, i int) error {
		if err := st.Inject(i); err != nil {
			return err
		}
		d := atomicity.NewDetector()
		m, err := interp.New(interp.Config{
			Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
			MaxSteps: st.StepBudget(i, p.MaxSteps), Sched: sched.NewRandom(uint64(i + 1)),
			Observers: []interp.Observer{d}, Engine: eng,
		})
		if err != nil {
			return fmt.Errorf("build machine: %w", err)
		}
		if m.Run().MaxStepsHit {
			mc.Count("interp.max_steps_hit", 1)
		}
		flushMachineMetrics(m, mc)
		perSeed[i] = d.Reports()
		return nil
	})
	merged := map[string]*atomicity.Report{}
	var order []*atomicity.Report
	for _, reports := range perSeed {
		for _, r := range reports {
			if existing, ok := merged[r.ID()]; ok {
				existing.Count += r.Count
				continue
			}
			merged[r.ID()] = r
			order = append(order, r)
		}
	}
	return order
}

// detect runs the race detector across seeded schedules, fanning the runs
// over the stage's supervised pool. Every run builds a private machine
// and detector against the frozen module; only the per-seed report
// slices are shared, each written by exactly one worker. Reports merge by
// ID in seed order, so the result is identical for any worker count; a
// quarantined or lost run leaves its slot empty and the survivors merge.
func detect(p Program, st *supervise.StageRun, runs, workers int, benign *race.Annotations, eng interp.Engine, mc *metrics.Collector) []*race.Report {
	perSeed := make([][]*race.Report, runs)
	st.ForEach(0, runs, workers, func(_ context.Context, i int) error {
		if err := st.Inject(i); err != nil {
			return err
		}
		d := race.NewDetector()
		d.Benign = benign
		m, err := interp.New(interp.Config{
			Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
			MaxSteps: st.StepBudget(i, p.MaxSteps), Sched: sched.NewRandom(uint64(i + 1)),
			Observers: []interp.Observer{d}, Engine: eng,
		})
		if err != nil {
			return fmt.Errorf("build machine: %w", err)
		}
		if m.Run().MaxStepsHit {
			mc.Count("interp.max_steps_hit", 1)
		}
		flushMachineMetrics(m, mc)
		d.FlushMetrics(mc) // Collector.Count is mutex-guarded; safe per worker
		perSeed[i] = d.Reports()
		return nil
	})
	merged := map[string]*race.Report{}
	var order []*race.Report
	for _, reports := range perSeed {
		for _, r := range reports {
			if existing, ok := merged[r.ID()]; ok {
				existing.Count += r.Count
				continue
			}
			merged[r.ID()] = r
			order = append(order, r)
		}
	}
	return order
}

// detectCoverage runs the race detector under the coverage-guided
// exploration engine: a portfolio of schedule strategies spends the run
// budget in rounds, scored by new interleaving coverage and new deduped
// reports, with early stop on saturation. Rounds fan out over the stage's
// supervised pool exactly like the fixed-seed loop; reports merge by ID
// in the engine's job order (strategy/seed order within each round), so
// the result is byte-identical for any worker count. Fault-injection run
// indices count globally across rounds. It returns the merged reports
// and the number of runs actually spent.
func detectCoverage(p Program, st *supervise.StageRun, budget, workers int, benign *race.Annotations, resume *sched.ExploreState, opts Options, mc *metrics.Collector) ([]*race.Report, int) {
	var snap *sched.SnapCache
	if resume != nil && resume.SnapCache() != nil {
		snap = resume.SnapCache()
	} else if opts.SnapCache > 0 {
		snap = sched.NewSnapCache(opts.SnapCache)
	}
	snapBase := snap.Stats()
	eng := sched.NewEngine(sched.EngineConfig{Budget: budget, Seed: opts.Seed, PCTSteps: p.MaxSteps, Snap: snap, Resume: resume})
	merged := map[string]*race.Report{}
	var order []*race.Report
	base := 0
	res, _ := eng.ExploreCtx(st.Ctx(), func(jobs []*sched.Job) error {
		perJob := make([][]*race.Report, len(jobs))
		st.ForEach(base, len(jobs), workers, func(_ context.Context, idx int) error {
			if err := st.Inject(idx); err != nil {
				return err
			}
			i := idx - base
			j := jobs[i]
			d := race.NewDetector()
			d.Benign = benign
			m, err := j.Run(interp.Config{
				Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
				MaxSteps: st.StepBudget(idx, p.MaxSteps), Sched: j.Sched,
				Observers:       []interp.Observer{d},
				SwitchObservers: []interp.SwitchObserver{j.Cov},
				Engine:          opts.Engine,
			})
			if err != nil {
				return fmt.Errorf("run machine: %w", err)
			}
			if m.Result().MaxStepsHit {
				mc.Count("interp.max_steps_hit", 1)
			}
			flushMachineMetrics(m, mc)
			d.FlushMetrics(mc)
			perJob[i] = d.Reports()
			return nil
		})
		base += len(jobs)
		for i, reports := range perJob {
			ids := make([]string, len(reports))
			for k, r := range reports {
				ids[k] = r.ID()
			}
			jobs[i].ReportIDs = ids
			for _, r := range reports {
				if existing, ok := merged[r.ID()]; ok {
					existing.Count += r.Count
					continue
				}
				merged[r.ID()] = r
				order = append(order, r)
			}
		}
		return nil
	})
	resume.Absorb(eng)
	flushEngineMetrics(res, mc)
	flushSnapMetrics(snap, snapBase, mc)
	return order, res.Runs
}

// detectAtomicityCoverage is detectCoverage for the CTrigger-style
// atomicity detector.
func detectAtomicityCoverage(p Program, st *supervise.StageRun, budget, workers int, opts Options, mc *metrics.Collector) []*atomicity.Report {
	var snap *sched.SnapCache
	if opts.SnapCache > 0 {
		snap = sched.NewSnapCache(opts.SnapCache)
	}
	snapBase := snap.Stats()
	eng := sched.NewEngine(sched.EngineConfig{Budget: budget, Seed: opts.Seed, PCTSteps: p.MaxSteps, Snap: snap})
	merged := map[string]*atomicity.Report{}
	var order []*atomicity.Report
	base := 0
	res, _ := eng.ExploreCtx(st.Ctx(), func(jobs []*sched.Job) error {
		perJob := make([][]*atomicity.Report, len(jobs))
		st.ForEach(base, len(jobs), workers, func(_ context.Context, idx int) error {
			if err := st.Inject(idx); err != nil {
				return err
			}
			i := idx - base
			j := jobs[i]
			d := atomicity.NewDetector()
			m, err := j.Run(interp.Config{
				Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
				MaxSteps: st.StepBudget(idx, p.MaxSteps), Sched: j.Sched,
				Observers:       []interp.Observer{d},
				SwitchObservers: []interp.SwitchObserver{j.Cov},
				Engine:          opts.Engine,
			})
			if err != nil {
				return fmt.Errorf("run machine: %w", err)
			}
			if m.Result().MaxStepsHit {
				mc.Count("interp.max_steps_hit", 1)
			}
			flushMachineMetrics(m, mc)
			perJob[i] = d.Reports()
			return nil
		})
		base += len(jobs)
		for i, reports := range perJob {
			ids := make([]string, len(reports))
			for k, r := range reports {
				ids[k] = r.ID()
			}
			jobs[i].ReportIDs = ids
			for _, r := range reports {
				if existing, ok := merged[r.ID()]; ok {
					existing.Count += r.Count
					continue
				}
				merged[r.ID()] = r
				order = append(order, r)
			}
		}
		return nil
	})
	flushEngineMetrics(res, mc)
	flushSnapMetrics(snap, snapBase, mc)
	return order
}

// flushEngineMetrics threads one exploration's accounting into the
// collector: the coverage-map size, round/early-stop facts, and
// per-strategy run/hit counters (hits = deduped reports the strategy
// observed first). Counters accumulate across the initial detect, the
// ad-hoc re-run, and the atomicity stage; the early-stop flag is a gauge,
// so the last exploration of the run wins.
func flushEngineMetrics(res *sched.EngineResult, mc *metrics.Collector) {
	mc.Count("sched.rounds", int64(res.Rounds))
	mc.Count("sched.coverage_pairs", int64(res.CoveragePairs))
	mc.Flag("sched.early_stop", res.EarlyStop)
	for _, s := range sched.Strategies() {
		st := res.Strategies[s]
		mc.Count("sched.runs."+s.String(), int64(st.Runs))
		mc.Count("sched.hits."+s.String(), int64(st.NewReports))
		mc.Count("sched.cov."+s.String(), int64(st.NewCoverage))
	}
}

// flushMachineMetrics threads one detect-run machine's compiled-engine
// accounting into the collector; a no-op under the tree engine. Along
// with the interp.engine gauge, bytecode.compile_ns (a memoized
// per-module constant, so a last-wins gauge) and the
// bytecode.superinstr_hits dispatch statistic are the only metrics
// allowed to differ between engines — everything else the pipeline
// emits is covered by the cross-engine determinism gate.
func flushMachineMetrics(m *interp.Machine, mc *metrics.Collector) {
	if m.Engine() != interp.EngineBytecode {
		return
	}
	mc.Gauge("bytecode.compile_ns", float64(m.CompileNS()))
	mc.Count("bytecode.superinstr_hits", m.SuperinstrHits())
}

// flushSnapMetrics threads one stage's snapshot-cache accounting into
// the collector, as the delta since the stage began — a persistent
// cross-run cache (Options.ExploreState) carries lifetime totals, and a
// per-run collector must report only this run's share. For the fresh
// per-stage caches the base is zero, so nothing changes there. These
// are the only counters allowed to differ between snapshotting on and
// off; everything else the pipeline emits is covered by the
// byte-identical determinism gate.
func flushSnapMetrics(snap *sched.SnapCache, base sched.SnapStats, mc *metrics.Collector) {
	if snap == nil {
		return
	}
	st := snap.Stats()
	mc.Count("sched.snap_hits", st.Hits-base.Hits)
	mc.Count("sched.snap_misses", st.Misses-base.Misses)
	mc.Count("sched.snap_stores", st.Stores-base.Stores)
	mc.Count("sched.snap_evictions", st.Evictions-base.Evictions)
	mc.Count("sched.snap_resume_steps_saved", st.StepsSaved-base.StepsSaved)
	mc.Count("interp.cow_pages_copied", st.CowPages-base.CowPages)
}

func containsID(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// factory builds verification machines for the program.
func factory(p Program, eng interp.Engine) raceverify.MachineFactory {
	return func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
		return interp.New(interp.Config{
			Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
			MaxSteps: p.MaxSteps, Sched: s, Breakpoint: bp, Engine: eng,
		})
	}
}
