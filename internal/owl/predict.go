package owl

import (
	"context"
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/predict"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/supervise"
)

// detectPredict is the predictive detect stage: spend roughly half the
// budget on coverage-guided seed schedules whose traces feed the
// sync-preserving race predictor, then spend executions only on steered
// replays confirming the predicted pairs the seeds did not already
// observe. Each confirmation resumes from the deepest snapshot-cache
// prefix shared with the predicting run, so a confirm run is typically
// a fraction of a full schedule.
//
// Determinism: the seed phase is the engine's (deterministic for a
// fixed seed/budget/fault plan, worker-count independent); predictions
// are a pure function of the seed traces, candidates are confirmed as
// an order-stable job list with per-slot results, and everything merges
// in candidate order. Reports and predict.* counters are therefore
// byte-identical across worker counts and with the snapshot cache on or
// off.
//
// It returns the merged reports (seed races plus every race the confirm
// replays observed — confirmed predictions among them, which is how
// predicted pairs reach raceverify), the confirmed predicted-pair IDs,
// and the executions spent.
func detectPredict(p Program, st *supervise.StageRun, budget, workers int, benign *race.Annotations, opts Options, mc *metrics.Collector) ([]*race.Report, []string, int) {
	var snap *sched.SnapCache
	if opts.SnapCache > 0 {
		snap = sched.NewSnapCache(opts.SnapCache)
	}
	seedBudget := budget / 2
	if seedBudget < 2 {
		seedBudget = budget
	}
	eng := sched.NewEngine(sched.EngineConfig{Budget: seedBudget, Seed: opts.Seed, PCTSteps: p.MaxSteps, Snap: snap})

	// seedRun is what prediction needs from one executed schedule: its
	// synchronization trace and its decided schedule prefix.
	type seedRun struct {
		events    []predict.Ev
		decisions []sched.Decision
	}
	merged := map[string]*race.Report{}
	var order []*race.Report
	var seeds []seedRun
	base := 0
	res, _ := eng.ExploreCtx(st.Ctx(), func(jobs []*sched.Job) error {
		perJob := make([][]*race.Report, len(jobs))
		perSeed := make([]seedRun, len(jobs))
		st.ForEach(base, len(jobs), workers, func(_ context.Context, idx int) error {
			if err := st.Inject(idx); err != nil {
				return err
			}
			i := idx - base
			j := jobs[i]
			d := race.NewDetector()
			d.Benign = benign
			rec := predict.NewRecorder()
			// DFS jobs keep their DecisionSched bare — wrapping it would
			// defeat both snapshot-cache resumption and frontier expansion —
			// and its trace doubles as the decided prefix. Random/PCT jobs
			// get a TraceSched so their schedules are replayable too.
			runSched := j.Sched
			ds, isDS := j.Sched.(*sched.DecisionSched)
			var wrap *sched.TraceSched
			if !isDS {
				wrap = &sched.TraceSched{Inner: j.Sched}
				runSched = wrap
			}
			m, err := j.Run(interp.Config{
				Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
				MaxSteps: st.StepBudget(idx, p.MaxSteps), Sched: runSched,
				Observers:       []interp.Observer{d, rec},
				SwitchObservers: []interp.SwitchObserver{j.Cov},
				Engine:          opts.Engine,
			})
			if err != nil {
				return fmt.Errorf("run machine: %w", err)
			}
			if m.Result().MaxStepsHit {
				mc.Count("interp.max_steps_hit", 1)
			}
			flushMachineMetrics(m, mc)
			d.FlushMetrics(mc)
			perJob[i] = d.Reports()
			if isDS {
				perSeed[i] = seedRun{events: rec.Events(), decisions: ds.Trace}
			} else {
				perSeed[i] = seedRun{events: rec.Events(), decisions: wrap.Trace}
			}
			return nil
		})
		base += len(jobs)
		for i, reports := range perJob {
			ids := make([]string, len(reports))
			for k, r := range reports {
				ids[k] = r.ID()
			}
			jobs[i].ReportIDs = ids
			for _, r := range reports {
				if existing, ok := merged[r.ID()]; ok {
					existing.Count += r.Count
					continue
				}
				merged[r.ID()] = r
				order = append(order, r)
			}
		}
		seeds = append(seeds, perSeed...)
		return nil
	})
	flushEngineMetrics(res, mc)
	runs := res.Runs

	// Predict over every seed trace. Pairs the seeds already observed as
	// races need no confirmation run; the rest become candidates in
	// first-predicted order, deduplicated by race identity across seeds.
	var cands []predict.Candidate
	predicted := map[string]bool{}
	var nEvents, observed int64
	for _, s := range seeds {
		nEvents += int64(len(s.events))
		for _, pr := range predict.Pairs(s.events, opts.PredictReversal) {
			id := pr.ID()
			if predicted[id] {
				continue
			}
			predicted[id] = true
			if _, ok := merged[id]; ok {
				observed++
				continue
			}
			cands = append(cands, predict.Candidate{Pair: pr, Prefix: predict.PrefixFor(s.decisions, pr)})
		}
	}
	mc.Count("predict.traces", int64(len(seeds)))
	mc.Count("predict.events", nEvents)
	mc.Count("predict.pairs_predicted", int64(len(predicted)))
	mc.Count("predict.pairs_observed", observed)

	confirmBudget := budget - runs
	if confirmBudget < 0 {
		confirmBudget = 0
	}
	if len(cands) > confirmBudget {
		mc.Count("predict.pairs_skipped", int64(len(cands)-confirmBudget))
		cands = cands[:confirmBudget]
	}

	// Confirm phase: one steered replay per candidate, fanned over the
	// stage pool with per-slot results. A quarantined or lost replay
	// counts as refuted — never as confirmed.
	cf := &predict.Confirmer{Snap: snap}
	type confirmOut struct {
		reports []*race.Report
		hit     bool
	}
	outs := make([]confirmOut, len(cands))
	st.ForEach(base, len(cands), workers, func(_ context.Context, idx int) error {
		if err := st.Inject(idx); err != nil {
			return err
		}
		i := idx - base
		reports, hit, err := cf.Confirm(interp.Config{
			Module: p.Module, Entry: p.Entry, Args: p.Args, Inputs: p.Inputs,
			MaxSteps: st.StepBudget(idx, p.MaxSteps), Engine: opts.Engine,
		}, benign, cands[i])
		if err != nil {
			return fmt.Errorf("confirm %s: %w", cands[i].Pair.ID(), err)
		}
		outs[i] = confirmOut{reports: reports, hit: hit}
		return nil
	})
	runs += len(cands)

	var confirmed []string
	var refuted int64
	for i, out := range outs {
		if out.hit {
			confirmed = append(confirmed, cands[i].Pair.ID())
		} else {
			refuted++
		}
		for _, r := range out.reports {
			if existing, ok := merged[r.ID()]; ok {
				existing.Count += r.Count
				continue
			}
			merged[r.ID()] = r
			order = append(order, r)
		}
	}
	mc.Count("predict.confirm_runs", int64(len(cands)))
	mc.Count("predict.pairs_confirmed", int64(len(confirmed)))
	mc.Count("predict.pairs_refuted", refuted)
	if saved := int64(budget - runs); saved > 0 {
		mc.Count("predict.schedules_saved", saved)
	}
	// The cache is stage-local here, so the lifetime delta is the total.
	flushSnapMetrics(snap, sched.SnapStats{}, mc)
	return order, confirmed, runs
}
