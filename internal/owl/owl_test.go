package owl

import (
	"testing"

	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vuln"
)

// pipelineSrc combines everything the pipeline must handle: an ad-hoc
// synchronization (benign, must be annotated away), a benign stat-counter
// race (must survive annotation but carry no attack), and the Libsafe-style
// dying race whose control dependence reaches a strcpy overflow.
const pipelineSrc = `
global @dying = 0
global @started = 0
global @stat = 0
global @payload = "AAAAAAAAAAAAAAAA"

func @stack_check(%dst) {
entry:
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, check
bypass:
  ret 0
check:
  ret 1
}

func @libsafe_strcpy(%dst, %src) {
entry:
  %ok = call @stack_check(%dst)
  %c = icmp eq %ok, 0
  br %c, docopy, checked
docopy:
  %r = call @strcpy(%dst, %src)
  ret %r
checked:
  ret 0
}

func @die_thread() {
entry:
  jmp wait
wait:
  %s = load @started
  %c = icmp ne %s, 0
  br %c, go, wait
go:
  %v = load @stat
  %v2 = add %v, 1
  store %v2, @stat
  call @io_delay(2)
  store 1, @dying
  ret 0
}

func @main() {
entry:
  %t = call @spawn(@die_thread)
  store 1, @started
  %v = load @stat
  %v2 = add %v, 1
  store %v2, @stat
  call @io_delay(2)
  %buf = call @malloc(4)
  %src = addr @payload
  %r = call @libsafe_strcpy(%buf, %src)
  %j = call @join(%t)
  ret 0
}
`

func runPipeline(t *testing.T, opts Options) *Result {
	t.Helper()
	mod := ir.MustParse("pipeline.oir", pipelineSrc)
	res, err := Run(Program{Module: mod, MaxSteps: 100000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineEndToEnd(t *testing.T) {
	res := runPipeline(t, Options{DetectRuns: 12})

	if res.Stats.RawReports == 0 {
		t.Fatal("no raw race reports")
	}
	if res.Stats.AdhocSyncs == 0 {
		t.Error("adhoc sync on @started not mined")
	}
	if res.Stats.AfterAnnotation >= res.Stats.RawReports {
		t.Errorf("annotation did not reduce reports: %d -> %d",
			res.Stats.RawReports, res.Stats.AfterAnnotation)
	}
	if res.Stats.Remaining == 0 {
		t.Fatal("race verifier eliminated everything, including the real race")
	}
	// The dying race must survive and produce a strcpy finding.
	foundStrcpy := false
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc &&
				f.Site.Callee().Name == "strcpy" && f.Dep == vuln.DepCtrl {
				foundStrcpy = true
			}
		}
	}
	if !foundStrcpy {
		t.Error("strcpy CTRL_DEP finding missing")
	}
	// And the vulnerability verifier must confirm it reachable.
	confirmed := false
	for _, atk := range res.Attacks {
		if atk.Finding.Site.IsCall() && atk.Finding.Site.Callee().Name == "strcpy" {
			confirmed = true
			if atk.Outcome.Schedule == nil {
				t.Error("confirmed attack lacks witness schedule")
			}
		}
	}
	if !confirmed {
		t.Error("strcpy attack not dynamically confirmed")
	}
	if res.Stats.ReductionRatio() <= 0 {
		t.Errorf("reduction ratio = %v, want > 0", res.Stats.ReductionRatio())
	}
}

func TestPipelineAblationAdhocDisabled(t *testing.T) {
	withA := runPipeline(t, Options{DetectRuns: 12})
	without := runPipeline(t, Options{DetectRuns: 12, DisableAdhoc: true})
	if without.Stats.AdhocSyncs != 0 {
		t.Errorf("adhoc disabled but syncs = %d", without.Stats.AdhocSyncs)
	}
	if without.Stats.AfterAnnotation < withA.Stats.AfterAnnotation {
		t.Errorf("disabling adhoc should not reduce surviving reports (%d vs %d)",
			without.Stats.AfterAnnotation, withA.Stats.AfterAnnotation)
	}
}

func TestPipelineAblationCtrlFlowDisabled(t *testing.T) {
	res := runPipeline(t, Options{DetectRuns: 12, DisableCtrlFlow: true})
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc &&
				f.Site.Callee().Name == "strcpy" {
				t.Error("ctrl-flow-disabled analysis should miss the strcpy site")
			}
		}
	}
}

func TestPipelineRejectsBadProgram(t *testing.T) {
	if _, err := Run(Program{}, Options{}); err == nil {
		t.Error("want error for nil module")
	}
	unfrozen := ir.NewModule("x")
	if _, err := Run(Program{Module: unfrozen}, Options{}); err == nil {
		t.Error("want error for unfrozen module")
	}
}

func TestPipelineAtomicityIntegration(t *testing.T) {
	// A check-then-act pattern: the length is validated, then re-read for
	// the copy; the atomicity stage must surface the violation and feed
	// Algorithm 1 to the memcpy.
	src := `
global @len = 0

func @attacker() {
entry:
  call @io_delay(2)
  store 99, @len
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@attacker)
  %a = load @len
  %ok = icmp lt %a, 8
  br %ok, copy, out
copy:
  call @io_delay(2)
  %b = load @len
  %dst = call @malloc(8)
  %src = call @malloc(128)
  %r = call @memcpy(%dst, %src, %b)
  %j1 = call @join(%t)
  ret 0
out:
  %j2 = call @join(%t)
  ret 0
}
`
	mod := ir.MustParse("atom.oir", src)
	res, err := Run(Program{Module: mod, MaxSteps: 50000},
		Options{DetectRuns: 20, EnableAtomicity: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtomicityReports) == 0 {
		t.Fatal("no atomicity violations reported")
	}
	found := false
	for _, f := range res.AtomicityFindings {
		if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc &&
			f.Site.Callee().Name == "memcpy" {
			found = true
		}
	}
	if !found {
		t.Errorf("atomicity stage produced no memcpy finding (reports: %d, findings: %d)",
			len(res.AtomicityReports), len(res.AtomicityFindings))
	}
	// Without the option the fields stay empty.
	res2, err := Run(Program{Module: mod, MaxSteps: 50000}, Options{DetectRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AtomicityReports) != 0 || len(res2.AtomicityFindings) != 0 {
		t.Error("atomicity stage ran without being enabled")
	}
}

func TestStatsReductionRatio(t *testing.T) {
	s := Stats{RawReports: 100, Remaining: 6}
	if got := s.ReductionRatio(); got < 0.93 || got > 0.95 {
		t.Errorf("ratio = %v, want 0.94", got)
	}
	if (Stats{}).ReductionRatio() != 0 {
		t.Error("zero raw reports should give ratio 0")
	}
}
