package owl

import (
	"testing"

	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
)

// classicPredictSrc carries the canonical sync-preserving predictable
// race: the store and load on @x are ordered by the empty critical
// sections under most schedules, so blind exploration must stumble on
// the one preemption that interleaves them, while prediction reads the
// pair straight out of any seed trace and needs a single steered replay.
const classicPredictSrc = `
global @l = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@l)
  call @mutex_unlock(@l)
  %v = load @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @x
  call @mutex_lock(@l)
  call @mutex_unlock(@l)
  %r = call @join(%t)
  ret 0
}
`

func classicProgram(t *testing.T) Program {
	t.Helper()
	mod, err := ir.Parse("predict_gate.oir", classicPredictSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Program{Module: mod}
}

func counterValue(mc *metrics.Collector, name string) int64 {
	for _, c := range mc.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestPredictConfirmsClassicPair: the pipeline in predict mode must
// surface the hidden pair as a confirmed prediction and an ordinary raw
// report.
func TestPredictConfirmsClassicPair(t *testing.T) {
	// Seed 6 is one where no seed schedule observes the race directly, so
	// the pair must travel the full predict-then-confirm path. (Seeds
	// whose random arm stumbles on the race exercise the observed-filter
	// path instead; TestPredictSeedObservationFilters covers that.)
	mc := metrics.New()
	res, err := Run(classicProgram(t), Options{
		Predict: true, Budget: 8, Seed: 6, Metrics: mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PredictedConfirmed) != 1 {
		t.Fatalf("PredictedConfirmed = %v, want exactly the classic pair", res.PredictedConfirmed)
	}
	found := false
	for _, r := range res.Raw {
		if r.ID() == res.PredictedConfirmed[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("confirmed pair %q missing from Raw %v", res.PredictedConfirmed[0], res.Raw)
	}
	if n := counterValue(mc, "predict.pairs_confirmed"); n < 1 {
		t.Errorf("predict.pairs_confirmed = %d, want >= 1", n)
	}
	if counterValue(mc, "predict.traces") == 0 {
		t.Error("predict.traces = 0; seed traces were not recorded")
	}
}

// TestPredictSeedObservationFilters: when a seed schedule already
// observes the predicted race, no confirmation run is spent on it —
// the prediction is accounted as observed and the budget saved.
func TestPredictSeedObservationFilters(t *testing.T) {
	mc := metrics.New()
	res, err := Run(classicProgram(t), Options{
		Predict: true, Budget: 8, Seed: 7, Metrics: mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := counterValue(mc, "predict.pairs_observed"); n != 1 {
		t.Fatalf("predict.pairs_observed = %d, want 1 (seed 7's random arm sees the race)", n)
	}
	if n := counterValue(mc, "predict.confirm_runs"); n != 0 {
		t.Errorf("predict.confirm_runs = %d, want 0", n)
	}
	if len(res.Raw) != 1 {
		t.Errorf("race missing from Raw: %v", res.Raw)
	}
	if counterValue(mc, "predict.schedules_saved") <= 0 {
		t.Error("observed prediction should save schedules")
	}
}

// TestPredictDeterministicGate: predicted-pair sets, confirmed IDs, and
// every predict.* counter must be byte-identical across worker counts
// {1, 4, 8} and with the snapshot cache on or off — the same contract
// TestSnapshotCacheDifferentialGate enforces for plain exploration.
func TestPredictDeterministicGate(t *testing.T) {
	for _, name := range []string{"libsafe", "ssdb"} {
		t.Run(name, func(t *testing.T) {
			p, _ := coverageProgram(t, name)
			var baseFP, baseCounters string
			cases := []struct {
				snap, workers int
			}{
				{0, 1}, // reference
				{0, 4},
				{0, 8},
				{64, 1},
				{64, 4},
				{64, 8},
			}
			for i, tc := range cases {
				mc := metrics.New()
				res, err := Run(p, Options{
					Predict: true, PredictReversal: true,
					Budget: 24, Seed: 7,
					Workers: tc.workers, SnapCache: tc.snap, Metrics: mc,
				})
				if err != nil {
					t.Fatalf("snap=%d workers=%d: %v", tc.snap, tc.workers, err)
				}
				fp, cs := fingerprint(res), dropSnapCounters(countersOf(mc))
				if i == 0 {
					baseFP, baseCounters = fp, cs
					if baseFP == "" {
						t.Fatal("reference run produced an empty result")
					}
					if counterValue(mc, "predict.pairs_predicted") == 0 {
						t.Error("predictor found no pairs on the seed traces; gate is vacuous")
					}
					continue
				}
				if fp != baseFP {
					t.Errorf("snap=%d workers=%d result differs:\n--- base\n%s--- got\n%s",
						tc.snap, tc.workers, baseFP, fp)
				}
				if cs != baseCounters {
					t.Errorf("snap=%d workers=%d counters differ:\n--- base\n%s\n--- got\n%s",
						tc.snap, tc.workers, baseCounters, cs)
				}
			}
		})
	}
}

// TestPredictConfirmDifferentialGate: zero confirmed-prediction false
// positives — every race the predict-then-confirm pipeline confirms
// must also be reported by plain coverage-guided exploration given
// enough budget, because a confirmed prediction is by construction an
// executed schedule exhibiting the race.
func TestPredictConfirmDifferentialGate(t *testing.T) {
	type cfg struct {
		name string
		p    Program
	}
	cfgs := []cfg{{"classic", classicProgram(t)}}
	for _, name := range []string{"libsafe", "ssdb"} {
		p, _ := coverageProgram(t, name)
		cfgs = append(cfgs, cfg{name, p})
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			pres, err := Run(c.p, Options{
				Predict: true, PredictReversal: true, Budget: 24, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Plain exploration with a much larger budget is the ground
			// truth the confirmations must be contained in.
			plain, err := Run(c.p, Options{
				Explore: ExploreCoverage, Budget: 96, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			reported := map[string]bool{}
			for _, r := range plain.Raw {
				reported[r.ID()] = true
			}
			for _, id := range pres.PredictedConfirmed {
				if !reported[id] {
					t.Errorf("confirmed prediction %q not reported by plain exploration at 4x budget", id)
				}
			}
		})
	}
}
