package owl

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/workloads"
)

// fingerprint renders everything order- and content-sensitive about a
// Result (timings excluded — they legitimately vary run to run) so two
// pipelines can be compared byte for byte.
func fingerprint(res *Result) string {
	var b strings.Builder
	for _, r := range res.Raw {
		fmt.Fprintf(&b, "raw %s x%d\n", r.ID(), r.Count)
	}
	for _, s := range res.Syncs {
		fmt.Fprintf(&b, "sync %s\n", s.Var)
	}
	for _, r := range res.Annotated {
		fmt.Fprintf(&b, "ann %s x%d\n", r.ID(), r.Count)
	}
	for _, h := range res.Hints {
		fmt.Fprintf(&b, "hint %s verified=%v attempts=%d read=%d write=%d var=%q null=%v uninit=%v sched=%v\n",
			h.Report.ID(), h.Verified, h.Attempts, h.ReadVal, h.WriteVal,
			h.VarName, h.WritesNull, h.ReadsUninitialized, h.Schedule)
	}
	ids := make([]string, 0, len(res.FindingsByReport))
	for id := range res.FindingsByReport {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, f := range res.FindingsByReport[id] {
			fmt.Fprintf(&b, "finding %s %s %s %s\n", id, f.Kind, f.Site.Loc(), f.Dep)
		}
	}
	for _, o := range res.Outcomes {
		fmt.Fprintf(&b, "outcome %s reached=%v attempts=%d branches=%d sched=%v\n",
			o.Finding.Site.Loc(), o.Reached, o.Attempts, len(o.Branches), o.Schedule)
	}
	for _, a := range res.Attacks {
		fmt.Fprintf(&b, "attack %s\n", a)
	}
	for _, id := range res.PredictedConfirmed {
		fmt.Fprintf(&b, "predicted %s\n", id)
	}
	for _, r := range res.AtomicityReports {
		fmt.Fprintf(&b, "atom %s x%d\n", r.ID(), r.Count)
	}
	for _, f := range res.AtomicityFindings {
		fmt.Fprintf(&b, "atomfinding %s %s %s\n", f.Kind, f.Site.Loc(), f.Dep)
	}
	s := res.Stats
	s.AnalysisTime, s.TotalTime = 0, 0
	fmt.Fprintf(&b, "stats %+v\n", s)
	return b.String()
}

// TestParallelPipelineDeterminism is the tentpole's regression gate: the
// full pipeline over the libsafe and ssdb workloads must produce
// byte-identical results for workers = 1, 4, and NumCPU.
func TestParallelPipelineDeterminism(t *testing.T) {
	widths := []int{1, 4, runtime.NumCPU()}
	for _, name := range []string{"libsafe", "ssdb"} {
		t.Run(name, func(t *testing.T) {
			w := workloads.Get(name, workloads.NoiseLight)
			rec := w.Recipe(w.Attacks[0].InputRecipe)
			var base string
			for _, workers := range widths {
				res, err := Run(Program{
					Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
				}, Options{Workers: workers, EnableAtomicity: true})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				fp := fingerprint(res)
				if workers == 1 {
					base = fp
					if base == "" {
						t.Fatal("workers=1 produced an empty result")
					}
					continue
				}
				if fp != base {
					t.Errorf("workers=%d result differs from workers=1:\n--- workers=1\n%s--- workers=%d\n%s",
						workers, base, workers, fp)
				}
			}
		})
	}
}

// TestParallelPipelineMetrics checks that a worker-pooled run reports its
// stages, counters, and pool width through the collector.
func TestParallelPipelineMetrics(t *testing.T) {
	mc := metrics.New()
	w := workloads.Get("libsafe", workloads.NoiseLight)
	rec := w.Recipe(w.Attacks[0].InputRecipe)
	res, err := Run(Program{
		Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps,
	}, Options{Workers: 4, Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	rep := mc.Snapshot()
	stages := map[string]metrics.StageReport{}
	for _, s := range rep.Stages {
		stages[s.Name] = s
	}
	for _, want := range []string{"owl.detect", "owl.raceverify", "owl.total"} {
		s, ok := stages[want]
		if !ok {
			t.Errorf("stage %q missing from snapshot", want)
			continue
		}
		if s.Wall <= 0 {
			t.Errorf("stage %q has no wall time", want)
		}
	}
	if s := stages["owl.detect"]; s.Workers != 4 {
		t.Errorf("owl.detect pool width = %d, want 4", s.Workers)
	}
	if s := stages["owl.detect"]; s.Utilization <= 0 || s.Utilization > 1 {
		t.Errorf("owl.detect utilization = %v, want (0,1]", s.Utilization)
	}
	counters := map[string]int64{}
	for _, c := range rep.Counters {
		counters[c.Name] = c.Value
	}
	if counters["owl.raw_reports"] != int64(res.Stats.RawReports) {
		t.Errorf("raw_reports counter = %d, stats say %d",
			counters["owl.raw_reports"], res.Stats.RawReports)
	}
	if counters["owl.findings"] != int64(res.Stats.Findings) {
		t.Errorf("findings counter = %d, stats say %d",
			counters["owl.findings"], res.Stats.Findings)
	}
}
