package owl

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/supervise"
	"github.com/conanalysis/owl/internal/workloads"
)

func libsafeProgram(t *testing.T) Program {
	t.Helper()
	w := workloads.Get("libsafe", workloads.NoiseLight)
	rec := w.Recipe(w.Attacks[0].InputRecipe)
	return Program{Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps}
}

// acceptancePlan is the issue's canned scenario, built fresh per run
// (plans carry per-point fire counts): panic two detect workers, stall
// every vulnverify run past the stage deadline.
func acceptancePlan() *faultinject.Plan {
	return &faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Stage: "owl.detect", Run: 1, Kind: faultinject.KindPanic, Msg: "malformed IR worker"},
		{Stage: "owl.detect", Run: 3, Kind: faultinject.KindPanic, Msg: "malformed IR worker"},
		{Stage: "owl.vulnverify", Run: -1, Kind: faultinject.KindDelay, DelayMS: 60000},
	}}
}

// robustFingerprint renders the supervisor records byte-comparably.
func robustFingerprint(res *Result) string {
	var b strings.Builder
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "quar %s\n", q)
	}
	for _, d := range res.Degraded {
		fmt.Fprintf(&b, "deg %s\n", d)
	}
	return b.String()
}

// counterFingerprint renders the counter section of a metrics snapshot
// (timings and gauges legitimately vary across worker counts; every
// counter must not).
func counterFingerprint(mc *metrics.Collector) string {
	var b strings.Builder
	for _, c := range mc.Snapshot().Counters {
		fmt.Fprintf(&b, "%s=%d\n", c.Name, c.Value)
	}
	return b.String()
}

// TestFaultedPipelineDeterministicAcrossWorkers is the tentpole gate:
// under the acceptance fault plan the pipeline still yields surviving
// races and findings, and the Result, quarantine/degradation records,
// and metrics counters are byte-identical for workers = 1, 4, 8.
func TestFaultedPipelineDeterministicAcrossWorkers(t *testing.T) {
	p := libsafeProgram(t)
	var base string
	for _, workers := range []int{1, 4, 8} {
		mc := metrics.New()
		res, err := Run(p, Options{
			Workers: workers, Metrics: mc,
			Faults: acceptancePlan(), StageTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Raw) == 0 || res.Stats.Findings == 0 {
			t.Fatalf("workers=%d: no surviving races/findings (raw=%d findings=%d)",
				workers, len(res.Raw), res.Stats.Findings)
		}
		if len(res.Quarantined) != 2 {
			t.Fatalf("workers=%d: quarantined = %+v, want the 2 panicked detect runs", workers, res.Quarantined)
		}
		var vvTimeout bool
		for _, d := range res.Degraded {
			if d.Stage == "owl.vulnverify" && d.Reason == "timeout" {
				vvTimeout = true
			}
		}
		if !vvTimeout {
			t.Fatalf("workers=%d: degraded = %+v, want an owl.vulnverify timeout", workers, res.Degraded)
		}
		counters := map[string]int64{}
		for _, c := range mc.Snapshot().Counters {
			counters[c.Name] = c.Value
		}
		if counters["owl.quarantined"] != 2 || counters["owl.degraded_stages"] == 0 || counters["owl.timeouts"] == 0 {
			t.Fatalf("workers=%d: supervisor counters = %v", workers, counters)
		}
		fp := fingerprint(res) + robustFingerprint(res) + counterFingerprint(mc)
		if workers == 1 {
			base = fp
			continue
		}
		if fp != base {
			t.Errorf("workers=%d diverged from workers=1:\n%s", workers, diffLines(base, fp))
		}
	}
}

// diffLines returns the first differing line pair, for readable failures.
func diffLines(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  workers=1: %s\n  other:     %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestFailFastNamesFirstFaultedStage: the same plan under -fail-fast
// aborts with an error naming the first faulted stage.
func TestFailFastNamesFirstFaultedStage(t *testing.T) {
	p := libsafeProgram(t)
	res, err := Run(p, Options{
		Faults: acceptancePlan(), StageTimeout: 2 * time.Second, FailFast: true,
	})
	if err == nil {
		t.Fatal("fail-fast pipeline returned nil error under the fault plan")
	}
	if !strings.Contains(err.Error(), "owl.detect") {
		t.Fatalf("error %q does not name the first faulted stage owl.detect", err)
	}
	if res != nil {
		t.Fatal("fail-fast should not return a result")
	}
}

// TestTimeoutPartialResultsSurviveKilledDetect kills most of the detect
// stage with context-aware stalls and checks the runs that beat the
// deadline still feed the rest of the pipeline — and that the partial
// outcome is itself deterministic across worker counts.
func TestTimeoutPartialResultsSurviveKilledDetect(t *testing.T) {
	plan := func() *faultinject.Plan {
		p := &faultinject.Plan{Seed: 2}
		for run := 2; run < 8; run++ {
			p.Rules = append(p.Rules, faultinject.Rule{
				Stage: "owl.detect", Run: run, Kind: faultinject.KindDelay, DelayMS: 60000,
			})
		}
		return p
	}
	prog := libsafeProgram(t)
	var base string
	for _, workers := range []int{1, 4} {
		mc := metrics.New()
		res, err := Run(prog, Options{
			Workers: workers, Metrics: mc,
			Faults: plan(), StageTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.RawReports == 0 {
			t.Fatalf("workers=%d: the two surviving detect runs produced no reports", workers)
		}
		var detTimeout *supervise.Degradation
		for i := range res.Degraded {
			if res.Degraded[i].Stage == "owl.detect" {
				detTimeout = &res.Degraded[i]
			}
		}
		if detTimeout == nil || detTimeout.Reason != "timeout" || detTimeout.RunsLost != 6 {
			t.Fatalf("workers=%d: degraded = %+v, want owl.detect timeout losing 6 runs", workers, res.Degraded)
		}
		if len(res.Hints) == 0 {
			t.Fatalf("workers=%d: later stages did not run on the partial reports", workers)
		}
		fp := fingerprint(res) + robustFingerprint(res)
		if workers == 1 {
			base = fp
			continue
		}
		if fp != base {
			t.Errorf("workers=%d diverged:\n%s", workers, diffLines(base, fp))
		}
	}
}

// TestTransientFaultRetriesMatchCleanRun: a Times-bounded spurious error
// plus one retry must reproduce the clean-run result exactly, with the
// retries counted and nothing quarantined.
func TestTransientFaultRetriesMatchCleanRun(t *testing.T) {
	prog := libsafeProgram(t)
	clean, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultinject.Plan{Seed: 3, Rules: []faultinject.Rule{
		{Stage: "owl.detect", Run: 2, Kind: faultinject.KindError, Times: 1, Msg: "transient io"},
		{Stage: "owl.raceverify", Run: 0, Kind: faultinject.KindError, Times: 1, Msg: "transient io"},
	}}
	mc := metrics.New()
	res, err := Run(prog, Options{Retries: 1, Faults: plan, Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 || len(res.Degraded) != 0 {
		t.Fatalf("retried run still degraded: quar=%+v deg=%+v", res.Quarantined, res.Degraded)
	}
	if got, want := fingerprint(res), fingerprint(clean); got != want {
		t.Errorf("retried result diverged from clean run:\n%s", diffLines(want, got))
	}
	var retries int64
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "owl.retries" {
			retries = c.Value
		}
	}
	if retries != 2 {
		t.Fatalf("owl.retries = %d, want 2", retries)
	}
}

// TestStepBudgetInjectionSurfacesTruncation: a max-steps squeeze on the
// detect stage must be visible as interp.max_steps_hit instead of
// silently truncating.
func TestStepBudgetInjectionSurfacesTruncation(t *testing.T) {
	prog := libsafeProgram(t)
	plan := &faultinject.Plan{Seed: 4, Rules: []faultinject.Rule{
		{Stage: "owl.detect", Run: -1, Kind: faultinject.KindMaxSteps, MaxSteps: 40},
	}}
	mc := metrics.New()
	if _, err := Run(prog, Options{Faults: plan, Metrics: mc}); err != nil {
		t.Fatal(err)
	}
	var hit int64
	for _, c := range mc.Snapshot().Counters {
		if c.Name == "interp.max_steps_hit" {
			hit = c.Value
		}
	}
	if hit != 8 {
		t.Fatalf("interp.max_steps_hit = %d, want all 8 squeezed detect runs", hit)
	}
}

// TestCannedAcceptancePlanLoads keeps the committed CI plan honest: the
// file must parse and reproduce the acceptance scenario end to end.
func TestCannedAcceptancePlanLoads(t *testing.T) {
	plan, err := faultinject.Load("../../testdata/faults/detect-panic-vulnverify-timeout.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(libsafeProgram(t), Options{Faults: plan, StageTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 2 || len(res.Degraded) == 0 {
		t.Fatalf("canned plan: quar=%+v deg=%+v", res.Quarantined, res.Degraded)
	}
}
