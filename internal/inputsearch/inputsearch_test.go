package inputsearch

import (
	"testing"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/workloads"
)

// gatedSrc reaches its exec() site only when input0 > 40 and input1 == 7 —
// a pure input-reachability problem (no race involved) that the search
// must solve from the branch hints.
const gatedSrc = `
global @limit = 0

func @main() {
entry:
  %a = call @input()
  %b = call @input()
  %l = load @limit
  %c1 = icmp gt %a, 40
  br %c1, stage2, out
stage2:
  %c2 = icmp eq %b, 7
  br %c2, danger, out
danger:
  call @exec("/bin/sh")
  ret 1
out:
  ret 0
}
`

func gatedFinding(t *testing.T, mod *ir.Module) *vuln.Finding {
	t.Helper()
	var load *ir.Instr
	for _, in := range mod.Func("main").Instrs() {
		if in.Op == ir.OpLoad {
			load = in
		}
	}
	// Start Algorithm 1 from the input-derived value instead: use the
	// first input call's result by analyzing from the load and relying on
	// ctrl deps… simplest: build the finding manually from ground truth.
	var site *ir.Instr
	var branches []*ir.Instr
	for _, in := range mod.Func("main").Instrs() {
		if in.IsCall() && in.Callee().Kind == ir.OperandFunc && in.Callee().Name == "exec" {
			site = in
		}
		if in.IsBranch() {
			branches = append(branches, in)
		}
	}
	if site == nil || load == nil {
		t.Fatal("bad test module")
	}
	return &vuln.Finding{
		Site: site, Kind: vuln.SiteFork, Dep: vuln.DepCtrl,
		Branches: branches, Start: load,
	}
}

func TestSearchFindsGatingInputs(t *testing.T) {
	mod := ir.MustParse("gated.oir", gatedSrc)
	s := &Searcher{
		Module: mod,
		Space:  Space{{Min: 0, Max: 100}, {Min: 0, Max: 20}},
		Budget: 400,
		Seeds:  1,
	}
	res, err := s.Search(gatedFinding(t, mod))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("search failed: %s", res)
	}
	if res.Inputs[0] <= 40 || res.Inputs[1] != 7 {
		t.Errorf("inputs %v do not satisfy the gates", res.Inputs)
	}
}

func TestSearchReportsBestScoreOnFailure(t *testing.T) {
	mod := ir.MustParse("gated.oir", gatedSrc)
	s := &Searcher{
		Module: mod,
		// input1 can never be 7 in this space: unreachable.
		Space:  Space{{Min: 0, Max: 100}, {Min: 8, Max: 20}},
		Budget: 60,
		Seeds:  1,
	}
	res, err := s.Search(gatedFinding(t, mod))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("unreachable site reported found")
	}
	if res.BestScore <= 0 {
		t.Errorf("best score = %v, want partial progress via branch hints", res.BestScore)
	}
	if res.Evals != 60 {
		t.Errorf("evals = %d, want full budget", res.Evals)
	}
}

func TestSearchConcretizesLibsafeHint(t *testing.T) {
	// End-to-end with a real pipeline finding: the Libsafe strcpy site is
	// reached when the payload is long and the dying window is open.
	w := workloads.Get("libsafe", workloads.NoiseLight)
	var readIn *ir.Instr
	for _, in := range w.Module.Func("stack_check").Instrs() {
		if in.Op == ir.OpLoad && in.Args[0].Kind == ir.OperandGlobal && in.Args[0].Name == "dying" {
			readIn = in
		}
	}
	var callSC, callLS *ir.Instr
	for _, in := range w.Module.Func("libsafe_strcpy").Instrs() {
		if in.IsCall() && in.Callee().Name == "stack_check" {
			callSC = in
		}
	}
	for _, in := range w.Module.Func("victim").Instrs() {
		if in.IsCall() && in.Callee().Name == "libsafe_strcpy" {
			callLS = in
		}
	}
	stack := callstack.Stack{
		{Fn: "victim", Pos: callLS.Pos},
		{Fn: "libsafe_strcpy", Pos: callSC.Pos},
		{Fn: "stack_check", Pos: readIn.Pos},
	}
	var finding *vuln.Finding
	for _, f := range vuln.NewAnalyzer(w.Module).Analyze(readIn, stack) {
		if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc && f.Site.Callee().Name == "strcpy" {
			finding = f
		}
	}
	if finding == nil {
		t.Fatal("no strcpy finding")
	}
	s := &Searcher{
		Module:   w.Module,
		MaxSteps: w.MaxSteps,
		Space:    Space{{Min: 0, Max: 30}, {Min: 0, Max: 40}, {Min: 0, Max: 10}},
		Budget:   150,
		Seeds:    4,
	}
	res, err := s.Search(finding)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("could not concretize the Libsafe hint: %s", res)
	}
	t.Logf("concretized: %s", res)
}

func TestSearchValidation(t *testing.T) {
	s := &Searcher{}
	if _, err := s.Search(&vuln.Finding{}); err == nil {
		t.Error("want error for missing module")
	}
	mod := ir.MustParse("gated.oir", gatedSrc)
	s = &Searcher{Module: mod}
	if _, err := s.Search(nil); err == nil {
		t.Error("want error for nil finding")
	}
}
