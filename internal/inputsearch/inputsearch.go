// Package inputsearch concretizes OWL's vulnerable input hints: given an
// Algorithm-1 finding (vulnerable site plus the corrupted branches on the
// way) and a description of the program's input space, it searches for a
// concrete input vector that actually drives execution to the site.
//
// The paper stops at hints on purpose — "we did not make this vulnerable
// input hint automatically generate concrete inputs (can be done via
// symbolic execution)" (§1) and lists symbolic execution as an orthogonal
// augmentation (§9). This package implements that augmentation with a
// budgeted guided search instead of an SMT stack: candidates are scored by
// how far along the hint's branch chain execution gets (and whether the
// site is reached under any of a handful of schedules), then refined by
// local mutation. For the input spaces of the modelled workloads this
// concretizes hints in tens of evaluations.
package inputsearch

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
)

// Slot bounds one input word.
type Slot struct {
	Min, Max int64
}

// Space is the program's input space, one Slot per input() word consumed.
type Space []Slot

// Result is the search outcome.
type Result struct {
	Found  bool
	Inputs []int64
	// Evals counts candidate evaluations (each up to Seeds runs).
	Evals int
	// BestScore is the best fitness seen (1.0 = site reached).
	BestScore float64
}

func (r *Result) String() string {
	if r.Found {
		return fmt.Sprintf("inputs %v reach the site (after %d evaluations)", r.Inputs, r.Evals)
	}
	return fmt.Sprintf("no input found in %d evaluations (best score %.2f)", r.Evals, r.BestScore)
}

// Searcher looks for site-reaching inputs.
type Searcher struct {
	// Module/Entry/MaxSteps describe the program (like owl.Program).
	Module   *ir.Module
	Entry    string
	MaxSteps int
	// Space bounds the inputs.
	Space Space
	// Seeds is the number of schedules tried per candidate (default 6):
	// reaching a racy site needs both the right input and a cooperative
	// schedule.
	Seeds int
	// Budget bounds candidate evaluations (default 200).
	Budget int
	// Seed makes the search deterministic (default 1).
	Seed uint64
}

// Search hunts for inputs reaching f.Site.
func (s *Searcher) Search(f *vuln.Finding) (*Result, error) {
	if s.Module == nil || !s.Module.Frozen() {
		return nil, fmt.Errorf("inputsearch: module missing or not frozen")
	}
	if f == nil || f.Site == nil {
		return nil, fmt.Errorf("inputsearch: finding has no site")
	}
	budget := s.Budget
	if budget <= 0 {
		budget = 200
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 6
	}
	rng := newRNG(s.Seed)

	res := &Result{}
	best := make([]int64, len(s.Space))
	for i, slot := range s.Space {
		best[i] = slot.Min
	}
	bestScore := -1.0

	eval := func(cand []int64) (float64, bool, error) {
		res.Evals++
		top := 0.0
		for i := 0; i < seeds; i++ {
			score, reached, err := s.scoreOnce(f, cand, uint64(i+1))
			if err != nil {
				return 0, false, err
			}
			if reached {
				return 1, true, nil
			}
			if score > top {
				top = score
			}
		}
		return top, false, nil
	}

	consider := func(cand []int64) (bool, error) {
		score, reached, err := eval(cand)
		if err != nil {
			return false, err
		}
		if reached {
			res.Found = true
			res.Inputs = append([]int64(nil), cand...)
			res.BestScore = 1
			return true, nil
		}
		if score > bestScore {
			bestScore = score
			copy(best, cand)
			res.BestScore = score
		}
		return false, nil
	}

	// Phase 1: random sampling.
	sampleBudget := budget / 2
	for res.Evals < sampleBudget {
		cand := make([]int64, len(s.Space))
		for i, slot := range s.Space {
			cand[i] = slot.Min + rng.int63n(slot.Max-slot.Min+1)
		}
		done, err := consider(cand)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}

	// Phase 2: hill climbing around the best candidate.
	for res.Evals < budget {
		cand := append([]int64(nil), best...)
		if len(cand) == 0 {
			break
		}
		i := int(rng.int63n(int64(len(cand))))
		slot := s.Space[i]
		span := slot.Max - slot.Min + 1
		cand[i] = slot.Min + (cand[i]-slot.Min+rng.int63n(span/2+1)-span/4+span)%span
		done, err := consider(cand)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}
	return res, nil
}

// scoreOnce runs one schedule with the candidate inputs and scores it:
// 1.0 when the site executes; otherwise the fraction of the finding's
// hint branches that executed (the execution entered the corrupted
// control context even if it diverged before the site).
func (s *Searcher) scoreOnce(f *vuln.Finding, inputs []int64, seed uint64) (float64, bool, error) {
	hintSet := map[*ir.Instr]bool{}
	for _, br := range f.Branches {
		hintSet[br] = true
	}
	executed := map[*ir.Instr]bool{}
	reached := false
	bp := func(m *interp.Machine, t *interp.Thread, in *ir.Instr) interp.BPAction {
		if in == f.Site {
			reached = true
		}
		if hintSet[in] {
			executed[in] = true
		}
		return interp.BPContinue
	}
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	m, err := interp.New(interp.Config{
		Module: s.Module, Entry: s.Entry, Inputs: inputs, MaxSteps: maxSteps,
		Sched: sched.NewRandom(seed), Breakpoint: bp,
	})
	if err != nil {
		return 0, false, fmt.Errorf("inputsearch: %w", err)
	}
	m.Run()
	if reached {
		return 1, true, nil
	}
	if len(hintSet) == 0 {
		return 0, false, nil
	}
	return float64(len(executed)) / float64(len(hintSet)), false, nil
}

// rng is the same xorshift64* used elsewhere, kept local for determinism.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 1
	}
	return &rng{state: seed*0x9e3779b97f4a7c15 + 1}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545f4914f6cdd1d
}

func (r *rng) int63n(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(r.next()>>1) % n
}
