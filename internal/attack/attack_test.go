package attack

import (
	"testing"

	"github.com/conanalysis/owl/internal/workloads"
)

// TestAllModelledAttacksExploitable is the repo's equivalent of the
// paper's exploit scripts: every AttackSpec must actually fire its
// consequence under its recipe within the campaign budget.
func TestAllModelledAttacksExploitable(t *testing.T) {
	for _, w := range workloads.All(workloads.NoiseLight) {
		for _, spec := range w.Attacks {
			spec := spec
			t.Run(spec.ID, func(t *testing.T) {
				d := NewDriver(w)
				res, err := d.Exploit(spec)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Succeeded {
					t.Fatalf("attack not exploitable in %d runs", res.Runs)
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestSubtleInputsMatter reproduces study Finding III: with the crafted
// inputs most attacks trigger within ~20 repetitions; with benign inputs
// they trigger rarely or not at all.
func TestSubtleInputsMatter(t *testing.T) {
	within20 := 0
	total := 0
	for _, w := range workloads.All(workloads.NoiseLight) {
		for _, spec := range w.Attacks {
			total++
			d := NewDriver(w)
			good, err := d.Exploit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if good.Succeeded && good.Runs <= 20 {
				within20++
			}
			// Benign recipe: must not out-exploit the crafted one.
			db := NewDriver(w)
			db.MaxRuns = good.Runs
			bad, err := db.ExploitWithRecipe(spec, "benign")
			if err != nil {
				t.Fatal(err)
			}
			if bad.Succeeded && !good.Succeeded {
				t.Errorf("%s: benign inputs exploit but crafted ones do not", spec.ID)
			}
		}
	}
	// Paper: 8 of the 10 reproduced attacks triggered within 20 reps.
	if within20*10 < total*7 {
		t.Errorf("only %d/%d attacks triggered within 20 repetitions", within20, total)
	}
}

func TestOracleRejectsCleanRuns(t *testing.T) {
	// A benign memcached run must satisfy no consequence oracle.
	w := workloads.Get("memcached", workloads.NoiseLight)
	d := NewDriver(w)
	d.MaxRuns = 5
	for _, kind := range []workloads.Consequence{
		workloads.ConsequencePrivEscalation,
		workloads.ConsequenceUseAfterFree,
		workloads.ConsequenceDoubleFree,
		workloads.ConsequenceNullDeref,
		workloads.ConsequenceHTMLIntegrity,
		workloads.ConsequenceDoS,
	} {
		res, err := d.exploitWith(workloads.AttackSpec{
			ID: "synthetic", Consequence: kind, InputRecipe: "benign",
		}, w.Recipe("benign").Inputs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			t.Errorf("oracle %v fired on clean memcached run", kind)
		}
	}
}

func TestDriverBudget(t *testing.T) {
	w := workloads.Get("libsafe", workloads.NoiseLight)
	d := NewDriver(w)
	d.MaxRuns = 1
	res, err := d.ExploitWithRecipe(w.Attacks[0], "benign")
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Errorf("runs = %d, want 1 (budget)", res.Runs)
	}
}
