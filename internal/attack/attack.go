// Package attack provides the exploit drivers and consequence oracles for
// the workload models — the counterpart of the paper's exploit scripts
// ("we built scripts to successfully exploit 10 attacks"). A Driver runs a
// workload repeatedly with a chosen input recipe and a varying schedule
// seed until the attack's consequence is observed, reporting how many
// repetitions were needed; the study's Finding III is that the right
// subtle inputs get this below ~20 repetitions, while wrong inputs make it
// rare or impossible.
package attack

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/workloads"
)

// Observed checks whether the given consequence occurred in a finished run.
func Observed(kind workloads.Consequence, m *interp.Machine, res *interp.Result) bool {
	switch kind {
	case workloads.ConsequencePrivEscalation:
		return res.UID == 0
	case workloads.ConsequenceCodeInjection, workloads.ConsequenceBufferOverflow:
		return hasFault(res, interp.FaultOOB)
	case workloads.ConsequenceUseAfterFree:
		return hasFault(res, interp.FaultUseAfterFree)
	case workloads.ConsequenceDoubleFree:
		return hasFault(res, interp.FaultDoubleFree)
	case workloads.ConsequenceNullDeref:
		return hasFault(res, interp.FaultNullFuncPtr) || hasFault(res, interp.FaultNilDeref)
	case workloads.ConsequenceHTMLIntegrity:
		return htmlCorrupted(m)
	case workloads.ConsequenceDoS:
		return balancerStarved(m)
	default:
		return false
	}
}

func hasFault(res *interp.Result, kind interp.FaultKind) bool {
	for _, f := range res.Faults {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// htmlCorrupted reports whether any .html file in the machine's file
// system contains more than the single marker word the server wrote — the
// Apache #25520 oracle: request-log bytes landing inside a user's HTML.
func htmlCorrupted(m *interp.Machine) bool {
	for _, name := range m.FS().Names() {
		if len(name) < 5 || name[len(name)-5:] != ".html" {
			continue
		}
		f := m.FS().Lookup(name)
		if f != nil && len(f.Data) > 1 {
			return true
		}
	}
	return false
}

// balancerStarved is the Apache #46215 oracle: a worker whose busy counter
// underflowed to a huge unsigned value receives no assignments while the
// other worker serves everything.
func balancerStarved(m *interp.Machine) bool {
	busy0 := m.Mem().Peek(m.GlobalAddr("busy"))
	served0 := m.Mem().Peek(m.GlobalAddr("served"))
	served1 := m.Mem().Peek(m.GlobalAddr("served") + 1)
	return uint64(busy0) > 1<<62 && served0 == 0 && served1 > 0
}

// Result reports one exploit campaign.
type Result struct {
	Spec workloads.AttackSpec
	// Succeeded is true when the consequence was observed.
	Succeeded bool
	// Runs is the number of repetitions used (Table 4's "within 20
	// repeated queries or loops").
	Runs int
	// Fault carries the witnessing fault when the consequence is a fault.
	Fault *interp.Fault
}

func (r *Result) String() string {
	if r.Succeeded {
		return fmt.Sprintf("%s: exploited in %d repetition(s) [%s]",
			r.Spec.ID, r.Runs, r.Spec.Consequence)
	}
	return fmt.Sprintf("%s: NOT exploited after %d repetitions", r.Spec.ID, r.Runs)
}

// Driver runs exploit campaigns against a workload.
type Driver struct {
	W *workloads.Workload
	// MaxRuns bounds the campaign (default 100).
	MaxRuns int
	// SeedBase offsets schedule seeds so campaigns are reproducible but
	// distinct (default 1).
	SeedBase uint64
}

// NewDriver returns a driver for the workload.
func NewDriver(w *workloads.Workload) *Driver {
	return &Driver{W: w, MaxRuns: 100, SeedBase: 1}
}

// Exploit runs the attack's recipe until its consequence is observed.
func (d *Driver) Exploit(spec workloads.AttackSpec) (*Result, error) {
	return d.exploitWith(spec, d.W.Recipe(spec.InputRecipe).Inputs)
}

// ExploitWithRecipe runs the campaign under a different recipe (used to
// show the wrong inputs fail — the paper's separate-inputs finding).
func (d *Driver) ExploitWithRecipe(spec workloads.AttackSpec, recipe string) (*Result, error) {
	return d.exploitWith(spec, d.W.Recipe(recipe).Inputs)
}

func (d *Driver) exploitWith(spec workloads.AttackSpec, inputs []int64) (*Result, error) {
	maxRuns := d.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 100
	}
	res := &Result{Spec: spec}
	for i := 0; i < maxRuns; i++ {
		res.Runs = i + 1
		m, err := interp.New(interp.Config{
			Module: d.W.Module, Entry: d.W.Entry, Inputs: inputs,
			MaxSteps: d.W.MaxSteps, Sched: sched.NewRandom(d.SeedBase + uint64(i)),
		})
		if err != nil {
			return nil, fmt.Errorf("exploit %s: %w", spec.ID, err)
		}
		run := m.Run()
		if Observed(spec.Consequence, m, run) {
			res.Succeeded = true
			for _, f := range run.Faults {
				res.Fault = f
				break
			}
			return res, nil
		}
	}
	return res, nil
}
