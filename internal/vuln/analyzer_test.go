package vuln

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// libsafeSrc is a miniature of the paper's Figure 1: a racy read of @dying
// in stack_check control-determines whether libsafe_strcpy performs the
// overflow check before calling strcpy.
const libsafeSrc = `
global @dying = 0

func @stack_check(%dst) {
entry:
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, check
bypass:
  ret 0
check:
  ret 1
}

func @libsafe_strcpy(%dst, %src) {
entry:
  %ok = call @stack_check(%dst)
  %c = icmp eq %ok, 0
  br %c, docopy, checked
docopy:
  %r = call @strcpy(%dst, %src)
  ret %r
checked:
  %r2 = call @strcpy(%dst, %src)
  ret %r2
}

func @main() {
entry:
  %buf = call @malloc(4)
  %s = call @malloc(8)
  %r = call @libsafe_strcpy(%buf, %s)
  ret 0
}
`

// loadOf returns the load instruction reading @name in fn.
func loadOf(t *testing.T, mod *ir.Module, fn, name string) *ir.Instr {
	t.Helper()
	for _, in := range mod.Func(fn).Instrs() {
		if in.Op == ir.OpLoad && in.Args[0].Kind == ir.OperandGlobal && in.Args[0].Name == name {
			return in
		}
	}
	t.Fatalf("no load of @%s in @%s", name, fn)
	return nil
}

// callTo returns the first call to callee in fn.
func callTo(t *testing.T, mod *ir.Module, fn, callee string) *ir.Instr {
	t.Helper()
	for _, in := range mod.Func(fn).Instrs() {
		if in.IsCall() && in.Callee().Kind == ir.OperandFunc && in.Callee().Name == callee {
			return in
		}
	}
	t.Fatalf("no call to @%s in @%s", callee, fn)
	return nil
}

// libsafeStack builds the runtime stack of the corrupted read: main ->
// libsafe_strcpy -> stack_check, with call-site positions.
func libsafeStack(t *testing.T, mod *ir.Module) callstack.Stack {
	t.Helper()
	readIn := loadOf(t, mod, "stack_check", "dying")
	callSC := callTo(t, mod, "libsafe_strcpy", "stack_check")
	callLS := callTo(t, mod, "main", "libsafe_strcpy")
	return callstack.Stack{
		{Fn: "main", Pos: callLS.Pos},
		{Fn: "libsafe_strcpy", Pos: callSC.Pos},
		{Fn: "stack_check", Pos: readIn.Pos},
	}
}

func TestLibsafeControlDependentAttackFound(t *testing.T) {
	mod := ir.MustParse("libsafe.oir", libsafeSrc)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "stack_check", "dying")

	findings := a.Analyze(readIn, libsafeStack(t, mod))
	var hit *Finding
	for _, f := range findings {
		if f.Kind == SiteMemory && f.Dep == DepCtrl && f.Site.IsCall() &&
			f.Site.Callee().Name == "strcpy" {
			hit = f
			break
		}
	}
	if hit == nil {
		t.Fatalf("strcpy CTRL_DEP site not found; findings: %v", findingSummaries(findings))
	}
	if len(hit.Branches) == 0 {
		t.Errorf("finding has no branch hints")
	}
	// The branch hint must be the corrupted if in libsafe_strcpy (the
	// paper's intercept.c:164 analogue).
	foundCallerBr := false
	for _, br := range hit.Branches {
		if br.Fn.Name == "libsafe_strcpy" {
			foundCallerBr = true
		}
	}
	if !foundCallerBr {
		t.Errorf("branch hints %v lack the caller's corrupted branch", hit.Branches)
	}
	if got := hit.String(); !strings.Contains(got, "Ctrl Dependent") {
		t.Errorf("report rendering: %q", got)
	}
}

func TestControlTrackingAblationMissesLibsafe(t *testing.T) {
	mod := ir.MustParse("libsafe.oir", libsafeSrc)
	a := NewAnalyzer(mod)
	a.TrackCtrl = false
	readIn := loadOf(t, mod, "stack_check", "dying")
	findings := a.Analyze(readIn, libsafeStack(t, mod))
	for _, f := range findings {
		if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc && f.Site.Callee().Name == "strcpy" {
			t.Fatalf("pure data-flow analysis should miss the control-dependent strcpy site")
		}
	}
}

func TestInterProceduralAblationMissesCrossFunctionSite(t *testing.T) {
	mod := ir.MustParse("libsafe.oir", libsafeSrc)
	a := NewAnalyzer(mod)
	a.InterProcedural = false
	readIn := loadOf(t, mod, "stack_check", "dying")
	findings := a.Analyze(readIn, libsafeStack(t, mod))
	for _, f := range findings {
		if f.Site.Fn.Name != "stack_check" {
			t.Fatalf("intra-procedural analysis must not reach %s in @%s",
				f.Site, f.Site.Fn.Name)
		}
	}
}

const dataDepSrc = `
global @len = 0

func @main() {
entry:
  %n = load @len
  %buf = call @malloc(8)
  %src = call @malloc(8)
  %r = call @memcpy(%buf, %src, %n)
  ret 0
}
`

func TestDataDependentSiteFound(t *testing.T) {
	mod := ir.MustParse("data.oir", dataDepSrc)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "main", "len")
	st := callstack.Stack{{Fn: "main", Pos: readIn.Pos}}
	findings := a.Analyze(readIn, st)
	var hit *Finding
	for _, f := range findings {
		if f.Kind == SiteMemory && f.Dep == DepData && f.Site.IsCall() &&
			f.Site.Callee().Name == "memcpy" {
			hit = f
		}
	}
	if hit == nil {
		t.Fatalf("memcpy DATA_DEP site not found; findings: %v", findingSummaries(findings))
	}
	if len(hit.Chain) < 2 {
		t.Errorf("chain too short: %v", hit.Chain)
	}
}

const indirectSrc = `
global @fptr = 0

func @dispatch() {
entry:
  %f = load @fptr
  %c = icmp ne %f, 0
  br %c, callit, out
callit:
  call %f()
  ret 0
out:
  ret 0
}
`

func TestCorruptedFunctionPointerIsNullDerefSite(t *testing.T) {
	mod := ir.MustParse("ind.oir", indirectSrc)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "dispatch", "fptr")
	st := callstack.Stack{{Fn: "dispatch", Pos: readIn.Pos}}
	findings := a.Analyze(readIn, st)
	found := false
	for _, f := range findings {
		if f.Kind == SiteNullDeref && f.Site.IsCall() {
			found = true
		}
	}
	if !found {
		t.Fatalf("indirect call through corrupted pointer not flagged; findings: %v",
			findingSummaries(findings))
	}
}

const privSrc = `
global @is_admin = 0

func @become(%uid) {
entry:
  call @setuid(%uid)
  ret 0
}
func @main() {
entry:
  %a = load @is_admin
  %c = icmp ne %a, 0
  br %c, admin, user
admin:
  %r = call @become(0)
  ret 0
user:
  ret 0
}
`

func TestPrivilegeSiteInCalleeViaControlDep(t *testing.T) {
	mod := ir.MustParse("priv.oir", privSrc)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "main", "is_admin")
	st := callstack.Stack{{Fn: "main", Pos: readIn.Pos}}
	findings := a.Analyze(readIn, st)
	found := false
	for _, f := range findings {
		if f.Kind == SitePrivilege && f.Dep == DepCtrl {
			found = true
		}
	}
	if !found {
		t.Fatalf("setuid site in callee not flagged via control dep; findings: %v",
			findingSummaries(findings))
	}
}

func TestReturnValuePropagationToCaller(t *testing.T) {
	// The corrupted value leaves the bug function through its return
	// value and reaches a site in the caller (no control flow involved).
	src := `
global @size = 0

func @get_size() {
entry:
  %s = load @size
  ret %s
}
func @main() {
entry:
  %n = call @get_size()
  %dst = call @malloc(8)
  %src = call @malloc(8)
  %r = call @memcpy(%dst, %src, %n)
  ret 0
}
`
	mod := ir.MustParse("retprop.oir", src)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "get_size", "size")
	callGS := callTo(t, mod, "main", "get_size")
	st := callstack.Stack{
		{Fn: "main", Pos: callGS.Pos},
		{Fn: "get_size", Pos: readIn.Pos},
	}
	findings := a.Analyze(readIn, st)
	found := false
	for _, f := range findings {
		if f.Site.IsCall() && f.Site.Callee().Name == "memcpy" && f.Dep == DepData {
			found = true
		}
	}
	if !found {
		t.Fatalf("return-value propagation missed; findings: %v", findingSummaries(findings))
	}
}

func TestDeduplication(t *testing.T) {
	mod := ir.MustParse("libsafe.oir", libsafeSrc)
	a := NewAnalyzer(mod)
	readIn := loadOf(t, mod, "stack_check", "dying")
	findings := a.Analyze(readIn, libsafeStack(t, mod))
	seen := map[string]bool{}
	for _, f := range findings {
		key := f.Site.FullName() + f.Dep.String() + f.Kind.String()
		if seen[key] {
			t.Errorf("duplicate finding: %s", key)
		}
		seen[key] = true
	}
}

func TestRegistryExtensible(t *testing.T) {
	r := DefaultRegistry()
	r.Add("my_custom_sink", SiteFork)
	if k, ok := r.CallKind("my_custom_sink"); !ok || k != SiteFork {
		t.Errorf("custom sink not registered")
	}
	if _, ok := r.CallKind("print"); ok {
		t.Errorf("print should not be a vulnerable site")
	}
}

func findingSummaries(fs []*Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Kind.String() + "/" + f.Dep.String() + " at " + f.Site.String()
	}
	return out
}
