package vuln

import (
	"testing"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/ir"
)

// BenchmarkAnalyze measures Algorithm 1 on the Libsafe-style module (the
// paper's Table 3 A.C. column measures the same stage per report).
func BenchmarkAnalyze(b *testing.B) {
	mod := ir.MustParse("libsafe.oir", libsafeSrc)
	var readIn *ir.Instr
	for _, in := range mod.Func("stack_check").Instrs() {
		if in.Op == ir.OpLoad {
			readIn = in
		}
	}
	var callSC, callLS *ir.Instr
	for _, in := range mod.Func("libsafe_strcpy").Instrs() {
		if in.IsCall() && in.Callee().Name == "stack_check" {
			callSC = in
		}
	}
	for _, in := range mod.Func("main").Instrs() {
		if in.IsCall() && in.Callee().Name == "libsafe_strcpy" {
			callLS = in
		}
	}
	stack := callstack.Stack{
		{Fn: "main", Pos: callLS.Pos},
		{Fn: "libsafe_strcpy", Pos: callSC.Pos},
		{Fn: "stack_check", Pos: readIn.Pos},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer(mod)
		if len(a.Analyze(readIn, stack)) == 0 {
			b.Fatal("no findings")
		}
	}
}
