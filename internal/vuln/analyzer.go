// Package vuln implements OWL's static vulnerability analyzer — Algorithm 1
// of the paper (§6.1). Starting from the load instruction that reads a
// race's corrupted memory, plus that load's runtime call stack, it performs
// an inter-procedural forward data- and control-flow analysis looking for
// the five explicit vulnerable-site types (§3.2). The traversal is
// call-stack directed: it scans the current function and its callees, then
// pops to the caller through the return value — exploiting the study's
// observation that bugs and their attack sites share call-stack prefixes,
// which is what keeps the analysis both accurate and scalable (§4.1).
//
// The output — the vulnerable site, whether it is reached through data or
// control dependence, and the corrupted branch statements on the way — is
// the paper's "vulnerable input hint" (Figure 5).
package vuln

import (
	"fmt"
	"strings"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
)

// DepKind says how corruption reaches the vulnerable site.
type DepKind int

// Dependence kinds.
const (
	DepData DepKind = iota + 1
	DepCtrl
)

func (d DepKind) String() string {
	switch d {
	case DepData:
		return "DATA_DEP"
	case DepCtrl:
		return "CTRL_DEP"
	default:
		return fmt.Sprintf("DepKind(%d)", int(d))
	}
}

// Finding is one potential bug-to-attack propagation: a vulnerable site
// reachable from the corrupted read.
type Finding struct {
	// Site is the vulnerable instruction; Kind its category.
	Site *ir.Instr
	Kind SiteKind
	Dep  DepKind
	// Branches are the corrupted branch instructions controlling the site
	// — the vulnerable input hints a developer (or the dynamic verifier)
	// uses to construct attack inputs.
	Branches []*ir.Instr
	// Chain is the corrupted-instruction propagation chain from the
	// starting read towards the site (bounded).
	Chain []*ir.Instr
	// Start is the corrupted read the analysis started from.
	Start *ir.Instr
	// FnPath is the function chain from the start to the site.
	FnPath []string
}

// String renders the finding in the style of the paper's Figure 5.
func (f *Finding) String() string {
	var b strings.Builder
	switch f.Dep {
	case DepCtrl:
		b.WriteString("---- Ctrl Dependent Vulnerability----\n")
	default:
		b.WriteString("---- Data Dependent Vulnerability----\n")
	}
	for _, br := range f.Branches {
		fmt.Fprintf(&b, "%s %s\n", br.String(), br.Loc())
	}
	fmt.Fprintf(&b, "Vulnerable Site [%s]: %s %s\n", f.Kind, f.Site.String(), f.Site.Loc())
	return b.String()
}

// Analyzer runs Algorithm 1 over a frozen module.
type Analyzer struct {
	Mod   *ir.Module
	Sites *Registry

	// MaxCalleeDepth bounds recursion into internal callees (default 8).
	MaxCalleeDepth int
	// MaxChain bounds the recorded propagation chain (default 64).
	MaxChain int

	// TrackCtrl enables control-dependence tracking (default true; the
	// ablation benchmarks disable it to show the Libsafe/SSDB misses).
	TrackCtrl bool
	// InterProcedural enables descending into callees and popping to
	// callers (default true; disabling reproduces the Conseq/Yamaguchi
	// limitation discussed in §9).
	InterProcedural bool

	cfgs map[*ir.Func]*ir.CFG
	ptrs map[*ir.Func]map[string]bool
}

// NewAnalyzer returns an analyzer with the paper's defaults.
func NewAnalyzer(mod *ir.Module) *Analyzer {
	return &Analyzer{
		Mod:             mod,
		Sites:           DefaultRegistry(),
		MaxCalleeDepth:  8,
		MaxChain:        64,
		TrackCtrl:       true,
		InterProcedural: true,
		cfgs:            make(map[*ir.Func]*ir.CFG),
		ptrs:            make(map[*ir.Func]map[string]bool),
	}
}

// allocaRegs returns the registers of f defined by alloca.
func (a *Analyzer) allocaRegs(f *ir.Func) map[string]bool {
	out := map[string]bool{}
	for _, in := range f.Instrs() {
		if in.Op == ir.OpAlloca && in.Dst != "" {
			out[in.Dst] = true
		}
	}
	return out
}

func (a *Analyzer) cfg(f *ir.Func) *ir.CFG {
	c := a.cfgs[f]
	if c == nil {
		c = ir.BuildCFG(f)
		a.cfgs[f] = c
	}
	return c
}

// ptrRegs computes the registers of f statically known to hold pointers
// (a cheap stand-in for LLVM pointer types; see Registry.TypeOf).
func (a *Analyzer) ptrRegs(f *ir.Func) map[string]bool {
	if p := a.ptrs[f]; p != nil {
		return p
	}
	p := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		mark := func(dst string) {
			if dst != "" && !p[dst] {
				p[dst] = true
				changed = true
			}
		}
		for _, in := range f.Instrs() {
			switch in.Op {
			case ir.OpGep, ir.OpAddrOf, ir.OpAlloca, ir.OpFunc:
				mark(in.Dst)
			case ir.OpCall:
				if c := in.Callee(); c.Kind == ir.OperandFunc && c.Name == "malloc" {
					mark(in.Dst)
				}
			case ir.OpPhi:
				for _, pe := range in.Phis {
					if pe.Val.Kind == ir.OperandReg && p[pe.Val.Name] {
						mark(in.Dst)
					}
				}
			case ir.OpBin:
				if in.Bin == ir.BinAdd || in.Bin == ir.BinSub {
					for _, o := range in.Args {
						if o.Kind == ir.OperandReg && p[o.Name] {
							mark(in.Dst)
						}
					}
				}
			}
		}
	}
	a.ptrs[f] = p
	return p
}

// walk holds one analysis invocation's shared state (the paper's globals:
// corrupted-instruction set, reported-exploit set).
type walk struct {
	a        *Analyzer
	findings []*Finding
	reported map[string]bool
	chain    []*ir.Instr
	start    *ir.Instr
	fnPath   []string
}

// Analyze runs Algorithm 1 from the corrupted read si with its runtime
// call stack (outermost first, innermost = si's function).
func (a *Analyzer) Analyze(si *ir.Instr, stack callstack.Stack) []*Finding {
	if si == nil || si.Fn == nil {
		return nil
	}
	w := &walk{a: a, reported: make(map[string]bool), start: si}
	w.addChain(si)

	corrupt := map[string]bool{}
	if si.Dst != "" {
		corrupt[si.Dst] = true
	}
	w.fnPath = []string{si.Fn.Name}
	retCorrupt := w.doDetect(si.Fn, si.Index+1, corrupt, false, nil, 0)

	if a.InterProcedural {
		// Pop the call stack: continue in each caller from just after the
		// call site, with the call's result corrupted iff the callee's
		// return value was.
		cur := si.Fn
		for i := len(stack) - 2; i >= 0; i-- {
			entry := stack[i]
			caller := a.Mod.Func(entry.Fn)
			if caller == nil {
				break
			}
			callIn := findCallAt(caller, entry.Pos, cur.Name)
			if callIn == nil {
				break
			}
			callerCorrupt := map[string]bool{}
			if retCorrupt && callIn.Dst != "" {
				callerCorrupt[callIn.Dst] = true
				w.addChain(callIn)
			}
			w.fnPath = append(w.fnPath, caller.Name)
			retCorrupt = w.doDetect(caller, callIn.Index+1, callerCorrupt, false, nil, 0)
			cur = caller
		}
	}
	return w.findings
}

// findCallAt locates the call instruction in caller at the given position
// (preferring one that calls callee, to disambiguate multi-call lines).
func findCallAt(caller *ir.Func, pos ir.Pos, callee string) *ir.Instr {
	var fallback *ir.Instr
	for _, in := range caller.Instrs() {
		if !in.IsCall() || in.Pos.Line != pos.Line || in.Pos.File != pos.File {
			continue
		}
		c := in.Callee()
		if c.Kind == ir.OperandFunc && c.Name == callee {
			return in
		}
		fallback = in
	}
	return fallback
}

func (w *walk) addChain(in *ir.Instr) {
	if len(w.chain) < w.a.MaxChain {
		w.chain = append(w.chain, in)
	}
}

func (w *walk) report(site *ir.Instr, kind SiteKind, dep DepKind, branches []*ir.Instr) {
	key := fmt.Sprintf("%s|%d|%d", site.FullName(), kind, dep)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.findings = append(w.findings, &Finding{
		Site:     site,
		Kind:     kind,
		Dep:      dep,
		Branches: append([]*ir.Instr(nil), branches...),
		Chain:    append([]*ir.Instr(nil), w.chain...),
		Start:    w.start,
		FnPath:   append([]string(nil), w.fnPath...),
	})
}

// doDetect is the paper's DoDetect: scan f's instructions from index from,
// propagating the corrupted register set, collecting locally corrupted
// branches, reporting vulnerable sites, and recursing into internal
// callees. It returns whether f's return value is corrupted along the
// scanned path.
func (w *walk) doDetect(f *ir.Func, from int, corrupt map[string]bool, ctrlDep bool, brCtx []*ir.Instr, depth int) bool {
	a := w.a
	cfg := a.cfg(f)
	ptrRegs := a.ptrRegs(f)
	var localBrs []*ir.Instr
	retCorrupt := false

	// corruptSlots tracks function-local alloca slots that received a
	// corrupted value. Front ends like minic compile mutable locals to
	// alloca slots (clang -O0 style), so without this, taint would vanish
	// at the first `int d = racy_global;`. Alloca registers are unique
	// SSA values, so this needs no general pointer analysis — the same
	// reasoning the paper uses to avoid alias analysis (§6.1).
	allocas := a.allocaRegs(f)
	corruptSlots := map[string]bool{}

	isCorrupt := func(o ir.Operand) bool {
		return o.Kind == ir.OperandReg && corrupt[o.Name]
	}

	for _, in := range f.Instrs() {
		if in.Index < from {
			continue
		}
		// Control-dependence on a locally corrupted branch.
		ctrlFlag := false
		var ctrlBrs []*ir.Instr
		if a.TrackCtrl {
			for _, cbr := range localBrs {
				if cfg.IsCtrlDependent(in, cbr) {
					ctrlFlag = true
					ctrlBrs = append(ctrlBrs, cbr)
				}
			}
		}
		inCtrl := (ctrlDep || ctrlFlag) && a.TrackCtrl

		if inCtrl {
			if kind, ok := a.Sites.TypeOf(in, ptrRegs); ok {
				w.report(in, kind, DepCtrl, append(append([]*ir.Instr(nil), brCtx...), ctrlBrs...))
			}
			// A return (or a phi merge) that only executes because a
			// corrupted branch chose it carries the corruption to the
			// caller by control: the Libsafe stack_check "return 0" at
			// line 146 is exactly this.
			if in.Op == ir.OpRet {
				retCorrupt = true
			}
			if in.Op == ir.OpPhi && in.Dst != "" {
				corrupt[in.Dst] = true
				w.addChain(in)
			}
		}

		switch {
		case in.IsCall():
			argCorrupt := false
			for _, arg := range in.CallArgs() {
				if isCorrupt(arg) {
					argCorrupt = true
					break
				}
			}
			calleeCorrupt := isCorrupt(in.Callee())
			if argCorrupt || calleeCorrupt {
				if in.Dst != "" {
					corrupt[in.Dst] = true
				}
				w.addChain(in)
				if kind, ok := a.Sites.TypeOf(in, ptrRegs); ok {
					w.report(in, kind, DepData, append(append([]*ir.Instr(nil), brCtx...), ctrlBrs...))
				}
			}
			if a.InterProcedural && depth < a.MaxCalleeDepth {
				if c := in.Callee(); c.Kind == ir.OperandFunc && !interp.IsIntrinsic(c.Name) {
					if callee := a.Mod.Func(c.Name); callee != nil && callee != f {
						calleeSet := map[string]bool{}
						for i, arg := range in.CallArgs() {
							if isCorrupt(arg) && i < len(callee.Params) {
								calleeSet[callee.Params[i]] = true
							}
						}
						w.fnPath = append(w.fnPath, callee.Name)
						subRet := w.doDetect(callee, 0, calleeSet,
							ctrlDep || ctrlFlag, append(append([]*ir.Instr(nil), brCtx...), ctrlBrs...), depth+1)
						w.fnPath = w.fnPath[:len(w.fnPath)-1]
						if subRet && in.Dst != "" {
							corrupt[in.Dst] = true
							w.addChain(in)
						}
					}
				}
			}

		default:
			// Taint through local slots: a corrupted value stored into an
			// alloca slot (or any store control-dependent on corrupted
			// state, e.g. short-circuit lowering) taints the slot; loads
			// from tainted slots are corrupted.
			if in.Op == ir.OpStore && in.Args[1].Kind == ir.OperandReg &&
				allocas[in.Args[1].Name] &&
				(isCorrupt(in.Args[0]) || inCtrl) {
				corruptSlots[in.Args[1].Name] = true
			}
			if in.Op == ir.OpLoad && in.Args[0].Kind == ir.OperandReg &&
				corruptSlots[in.Args[0].Name] && in.Dst != "" {
				corrupt[in.Dst] = true
				w.addChain(in)
			}
			opCorrupt := false
			for _, o := range in.Uses() {
				if o.Kind == ir.OperandReg && corrupt[o.Name] {
					opCorrupt = true
					break
				}
			}
			if opCorrupt {
				if kind, ok := a.Sites.TypeOf(in, ptrRegs); ok {
					w.report(in, kind, DepData, append(append([]*ir.Instr(nil), brCtx...), ctrlBrs...))
				}
				if in.Dst != "" {
					corrupt[in.Dst] = true
					w.addChain(in)
				}
				if in.IsBranch() {
					localBrs = append(localBrs, in)
					w.addChain(in)
				}
				if in.Op == ir.OpRet {
					retCorrupt = true
				}
			}
		}
	}
	return retCorrupt
}
