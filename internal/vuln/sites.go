package vuln

import (
	"fmt"

	"github.com/conanalysis/owl/internal/ir"
)

// SiteKind is one of the paper's five explicit vulnerable-site categories
// (§3.2): memory operations, NULL pointer dereferences, privilege
// operations, file operations, and process-forking operations. The study
// found these categories have independent consequences, so "more types can
// be easily added" — which Registry supports.
type SiteKind int

// Vulnerable-site kinds.
const (
	SiteMemory SiteKind = iota + 1
	SiteNullDeref
	SitePrivilege
	SiteFile
	SiteFork
)

func (k SiteKind) String() string {
	switch k {
	case SiteMemory:
		return "memory operation"
	case SiteNullDeref:
		return "pointer dereference"
	case SitePrivilege:
		return "privilege operation"
	case SiteFile:
		return "file operation"
	case SiteFork:
		return "process-forking operation"
	default:
		return fmt.Sprintf("SiteKind(%d)", int(k))
	}
}

// Registry maps intrinsic callees to site kinds and classifies
// instructions as vulnerable-site types. Use DefaultRegistry (the paper's
// five types) or extend it with Add.
type Registry struct {
	byName map[string]SiteKind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]SiteKind)}
}

// DefaultRegistry returns the paper's five vulnerable-site types mapped
// onto the runtime's intrinsics.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	// Memory operations (e.g. strcpy() in the Libsafe attack, memcpy() in
	// Apache #25520; free() feeds double-free consequences).
	r.Add("strcpy", SiteMemory)
	r.Add("memcpy", SiteMemory)
	r.Add("memset", SiteMemory)
	r.Add("free", SiteMemory)
	// Privilege operations (e.g. setuid(); MySQL #24988 ACL corruption).
	r.Add("setuid", SitePrivilege)
	// File operations (e.g. access(); TOCTOU-adjacent sites).
	r.Add("access", SiteFile)
	r.Add("open", SiteFile)
	r.Add("write", SiteFile)
	// Process-forking operations (e.g. eval() in shell scripts).
	r.Add("exec", SiteFork)
	r.Add("fork", SiteFork)
	return r
}

// Add registers callee name as a vulnerable site of the given kind.
func (r *Registry) Add(name string, kind SiteKind) { r.byName[name] = kind }

// CallKind returns the site kind for a call to name, if registered.
func (r *Registry) CallKind(name string) (SiteKind, bool) {
	k, ok := r.byName[name]
	return k, ok
}

// TypeOf classifies an instruction as a vulnerable-site *type*,
// independent of corruption — the paper's "i.type() ∈ vuls" test.
// ptrRegs is the set of registers statically known to hold pointers
// (derived from gep/addr/alloca/malloc chains); it distinguishes a
// pointer assignment (the Apache #46215 mycandidate store) from a scalar
// store, standing in for LLVM's type information.
func (r *Registry) TypeOf(in *ir.Instr, ptrRegs map[string]bool) (SiteKind, bool) {
	switch in.Op {
	case ir.OpCall:
		callee := in.Callee()
		if callee.Kind == ir.OperandReg {
			// Indirect call: a function-pointer dereference (the Linux
			// uselib f_op->fsync site).
			return SiteNullDeref, true
		}
		if k, ok := r.CallKind(callee.Name); ok {
			return k, true
		}
		return 0, false
	case ir.OpLoad:
		if in.Args[0].Kind == ir.OperandReg {
			return SiteNullDeref, true
		}
		return 0, false
	case ir.OpStore:
		if in.Args[1].Kind == ir.OperandReg {
			return SiteNullDeref, true
		}
		if v := in.Args[0]; v.Kind == ir.OperandReg && ptrRegs[v.Name] {
			// Pointer assignment (Apache #46215's mycandidate = worker).
			return SiteMemory, true
		}
		return 0, false
	default:
		return 0, false
	}
}
