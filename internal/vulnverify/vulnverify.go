// Package vulnverify implements OWL's dynamic vulnerability verifier
// (§6.2). Given a static finding (vulnerable site plus the corrupted
// branches on the way — the vulnerable input hint), it re-runs the program
// and checks whether the site can actually be reached. When it cannot, the
// branch outcomes observed on the way out are reported as diverged
// branches — further input hints for the developer to refine inputs, which
// is exactly what the paper's verifier prints.
package vulnverify

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/raceverify"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/vuln"
)

// BranchOutcome records how a hint branch resolved at runtime.
type BranchOutcome struct {
	Branch *ir.Instr
	// Taken is true when the branch went to its "then" target on the last
	// dynamic occurrence.
	Taken bool
	// Executions counts dynamic occurrences.
	Executions int
}

// Outcome is the verifier's result for one finding.
type Outcome struct {
	Finding *vuln.Finding
	// Reached reports whether the vulnerable site executed.
	Reached bool
	// Attempts is the number of runs used.
	Attempts int
	// Faults are the runtime faults of the witnessing (or last) run — a
	// buffer-overflow fault at a memory site, a UAF at a pointer site, etc.
	Faults []*interp.Fault
	// UID is the process uid at the end of the witnessing run.
	UID int64
	// ExecLog holds exec() paths from the witnessing run.
	ExecLog []string
	// Branches records hint-branch outcomes of the last run; when the site
	// was not reached these are the diverged branches to refine inputs by.
	Branches []BranchOutcome
	// Schedule is the witnessing run's schedule.
	Schedule []interp.ThreadID
}

func (o *Outcome) String() string {
	if o.Reached {
		s := fmt.Sprintf("vulnerability verified: site %s reached (attempt %d)",
			o.Finding.Site.Loc(), o.Attempts)
		if len(o.Faults) > 0 {
			s += fmt.Sprintf("; consequence: %s", o.Faults[0].Kind)
		}
		return s
	}
	s := fmt.Sprintf("site %s NOT reached after %d attempts", o.Finding.Site.Loc(), o.Attempts)
	for _, b := range o.Branches {
		s += fmt.Sprintf("\n  diverged branch %s taken=%v (x%d)", b.Branch.Loc(), b.Taken, b.Executions)
	}
	return s
}

// Verifier re-runs programs to confirm findings.
type Verifier struct {
	// Attempts is the number of differently seeded schedules tried
	// (default 8).
	Attempts int
	// MaxSteps bounds each run (default 200000).
	MaxSteps int
}

// New returns a verifier with defaults.
func New() *Verifier { return &Verifier{Attempts: 8, MaxSteps: 200000} }

// Verify re-runs the program and reports whether the finding's site is
// reachable, with branch hints otherwise. The factory receives the
// scheduler and an instruction probe (as an interp.BreakpointFunc that
// never suspends).
func (v *Verifier) Verify(mk raceverify.MachineFactory, f *vuln.Finding) (*Outcome, error) {
	attempts := v.Attempts
	if attempts <= 0 {
		attempts = 8
	}
	out := &Outcome{Finding: f}
	hintBranches := map[*ir.Instr]bool{}
	for _, br := range f.Branches {
		hintBranches[br] = true
	}
	for i := 0; i < attempts; i++ {
		out.Attempts = i + 1
		reached := false
		branchStats := map[*ir.Instr]*BranchOutcome{}
		probe := func(m *interp.Machine, t *interp.Thread, in *ir.Instr) interp.BPAction {
			if in == f.Site {
				reached = true
			}
			return interp.BPContinue
		}
		m, err := mk(sched.NewRandom(uint64(i+1)), probe)
		if err != nil {
			return nil, fmt.Errorf("vulnerability verifier: build machine: %w", err)
		}
		// Observe branch events for the hint branches.
		// (Observers cannot be attached post-construction, so the factory
		// is expected to have installed none of its own that conflict; we
		// watch via the probe instead for branches.)
		branchProbe := func(in *ir.Instr, taken bool) {
			if !hintBranches[in] {
				return
			}
			bo := branchStats[in]
			if bo == nil {
				bo = &BranchOutcome{Branch: in}
				branchStats[in] = bo
			}
			bo.Taken = taken
			bo.Executions++
		}
		res := runWithBranchWatch(m, v.maxSteps(), branchProbe)

		if reached {
			out.Reached = true
			out.Faults = res.Faults
			out.UID = res.UID
			out.ExecLog = m.ExecLog()
			out.Schedule = res.Schedule
			out.Branches = collect(branchStats, f.Branches)
			return out, nil
		}
		out.Branches = collect(branchStats, f.Branches)
	}
	return out, nil
}

func (v *Verifier) maxSteps() int {
	if v.MaxSteps > 0 {
		return v.MaxSteps
	}
	return 200000
}

// runWithBranchWatch steps the machine manually, sampling branch outcomes
// by inspecting the executed branch instruction's condition before each
// step.
func runWithBranchWatch(m *interp.Machine, maxSteps int, watch func(*ir.Instr, bool)) *interp.Result {
	for i := 0; i < maxSteps; i++ {
		// Peek at each thread's next instruction: if a watched branch is
		// about to execute we cannot know which thread the scheduler will
		// pick, so sample after the step via schedule tail instead.
		before := map[interp.ThreadID]*ir.Instr{}
		for _, t := range m.Threads() {
			if in := t.Cur(); in != nil && in.Op == ir.OpBr {
				before[t.ID] = in
			}
		}
		if !m.Step() {
			break
		}
		last, ok := m.LastScheduled()
		if !ok {
			continue
		}
		if in, ok := before[last]; ok {
			// The branch executed; its thread has moved to a successor
			// block. Determine which arm by the thread's new block.
			t := m.Thread(last)
			if fr := t.Top(); fr != nil && fr.CurBlock() != nil {
				watch(in, fr.CurBlock().Name == in.Args[1].Name)
			}
		}
	}
	return m.Result()
}

func collect(stats map[*ir.Instr]*BranchOutcome, order []*ir.Instr) []BranchOutcome {
	var out []BranchOutcome
	seen := map[*ir.Instr]bool{}
	for _, br := range order {
		if seen[br] {
			continue
		}
		seen[br] = true
		if bo := stats[br]; bo != nil {
			out = append(out, *bo)
		}
	}
	return out
}
