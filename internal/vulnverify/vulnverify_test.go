package vulnverify

import (
	"testing"

	"github.com/conanalysis/owl/internal/callstack"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/raceverify"
	"github.com/conanalysis/owl/internal/vuln"
)

// reachableSrc has a racy flag that (for some schedules) steers main into
// the strcpy overflow arm.
const reachableSrc = `
global @dying = 0
global @payload = "AAAAAAAAAA"

func @attacker() {
entry:
  call @io_delay(2)
  store 1, @dying
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@attacker)
  call @io_delay(2)
  %d = load @dying
  %c = icmp ne %d, 0
  br %c, bypass, checked
bypass:
  %buf = call @malloc(4)
  %src = addr @payload
  %r = call @strcpy(%buf, %src)
  %j = call @join(%t)
  ret 0
checked:
  %j2 = call @join(%t)
  ret 0
}
`

// unreachableSrc guards the site with a branch on a constant that never
// allows it.
const unreachableSrc = `
global @gate = 0

func @main() {
entry:
  %g = load @gate
  %c = icmp ne %g, 0
  br %c, danger, safe
danger:
  %buf = call @malloc(2)
  %r = call @memset(%buf, 0, 2)
  ret 0
safe:
  ret 0
}
`

func analyze(t *testing.T, src, global string) (*ir.Module, []*vuln.Finding) {
	t.Helper()
	mod := ir.MustParse("vv_test.oir", src)
	var readIn *ir.Instr
	for _, in := range mod.Func("main").Instrs() {
		if in.Op == ir.OpLoad && in.Args[0].Kind == ir.OperandGlobal && in.Args[0].Name == global {
			readIn = in
		}
	}
	if readIn == nil {
		t.Fatalf("no load of @%s", global)
	}
	a := vuln.NewAnalyzer(mod)
	st := callstack.Stack{{Fn: "main", Pos: readIn.Pos}}
	return mod, a.Analyze(readIn, st)
}

func factory(mod *ir.Module) raceverify.MachineFactory {
	return func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
		return interp.New(interp.Config{Module: mod, Sched: s, Breakpoint: bp, MaxSteps: 100000})
	}
}

func findSite(t *testing.T, findings []*vuln.Finding, callee string) *vuln.Finding {
	t.Helper()
	for _, f := range findings {
		if f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc && f.Site.Callee().Name == callee {
			return f
		}
	}
	t.Fatalf("no finding with site @%s among %d findings", callee, len(findings))
	return nil
}

func TestReachableSiteVerified(t *testing.T) {
	mod, findings := analyze(t, reachableSrc, "dying")
	f := findSite(t, findings, "strcpy")
	out, err := New().Verify(factory(mod), f)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reached {
		t.Fatalf("reachable site not verified: %s", out)
	}
	// Reaching strcpy with the long payload overflows the 4-word buffer.
	if len(out.Faults) == 0 || out.Faults[0].Kind != interp.FaultOOB {
		t.Errorf("expected overflow consequence, got %v", out.Faults)
	}
}

func TestUnreachableSiteReportsDivergedBranches(t *testing.T) {
	mod, findings := analyze(t, unreachableSrc, "gate")
	f := findSite(t, findings, "memset")
	v := New()
	v.Attempts = 3
	out, err := v.Verify(factory(mod), f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Reached {
		t.Fatalf("gate==0 site should be unreachable")
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", out.Attempts)
	}
	if len(out.Branches) == 0 {
		t.Fatalf("no diverged-branch hints: %s", out)
	}
	b := out.Branches[0]
	if b.Taken {
		t.Errorf("diverged branch reported taken=then, but the run went to safe")
	}
	if b.Executions == 0 {
		t.Errorf("branch executions not counted")
	}
}

// TestEngineOutcomesIdentical pins the verifier to the cross-engine
// contract: outcomes (reachability, consequences, and every diverged-
// branch hint including the Taken arm) must be byte-identical whether
// the replay machines run the tree walker or the compiled engine. The
// branch watcher reads the executing frame's block after each step, so
// it must go through the engine-neutral Frame.CurBlock — reading the
// Block field directly reports a stale arm on compiled frames.
func TestEngineOutcomesIdentical(t *testing.T) {
	cases := []struct {
		name, src, global, callee string
	}{
		{"reachable", reachableSrc, "dying", "strcpy"},
		{"unreachable", unreachableSrc, "gate", "memset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, findings := analyze(t, tc.src, tc.global)
			f := findSite(t, findings, tc.callee)
			engFactory := func(eng interp.Engine) raceverify.MachineFactory {
				return func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
					return interp.New(interp.Config{
						Module: mod, Sched: s, Breakpoint: bp,
						MaxSteps: 100000, Engine: eng,
					})
				}
			}
			v := New()
			v.Attempts = 3
			tree, err := v.Verify(engFactory(interp.EngineTree), f)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := v.Verify(engFactory(interp.EngineBytecode), f)
			if err != nil {
				t.Fatal(err)
			}
			if tree.String() != comp.String() {
				t.Errorf("engine outcomes diverge:\ntree:     %s\nbytecode: %s", tree, comp)
			}
			if len(tree.Branches) != len(comp.Branches) {
				t.Fatalf("branch hint counts diverge: %d vs %d", len(tree.Branches), len(comp.Branches))
			}
			for i := range tree.Branches {
				if tree.Branches[i] != comp.Branches[i] {
					t.Errorf("branch hint %d diverges: %+v vs %+v", i, tree.Branches[i], comp.Branches[i])
				}
			}
		})
	}
}
