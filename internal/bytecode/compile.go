package bytecode

import (
	"fmt"
	"time"

	"github.com/conanalysis/owl/internal/ir"
)

type lowerKey struct{}

// Compile lowers a frozen module, memoizing the result on the module so
// that every machine executing it (workers, snapshot resumes, confirm
// replays) shares one compiled Program.
func Compile(mod *ir.Module) (*Program, error) {
	v, err := mod.LowerOnce(lowerKey{}, func() (any, error) {
		return compile(mod)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Program), nil
}

func compile(mod *ir.Module) (*Program, error) {
	start := time.Now()
	if len(mod.Globals) > maxPool {
		return nil, fmt.Errorf("bytecode: module %s: %d globals exceeds %d", mod.Name, len(mod.Globals), maxPool)
	}
	gOrd := make(map[string]int, len(mod.Globals))
	for i, g := range mod.Globals {
		gOrd[g.Name] = i
	}
	fnIdx := make(map[string]int, len(mod.Funcs))
	for i, f := range mod.Funcs {
		fnIdx[f.Name] = i
	}
	p := &Program{Mod: mod, Funcs: make(map[*ir.Func]*FuncCode, len(mod.Funcs))}
	for _, f := range mod.Funcs {
		fc, err := compileFunc(f, gOrd, fnIdx)
		if err != nil {
			return nil, fmt.Errorf("bytecode: func @%s: %w", f.Name, err)
		}
		p.Funcs[f] = fc
		p.FusedHeads += fc.FusedHeads
	}
	p.CompileNS = time.Since(start).Nanoseconds()
	return p, nil
}

// fnComp is the per-function compilation state.
type fnComp struct {
	f     *ir.Func
	gOrd  map[string]int // global name -> module ordinal
	fnIdx map[string]int // function name -> module index

	fc       *FuncCode
	constIdx map[int64]int
	otherIdx map[string]int // Operand.String() -> Others index
	blockPC  map[*ir.Block]int
}

func compileFunc(f *ir.Func, gOrd, fnIdx map[string]int) (*FuncCode, error) {
	c := &fnComp{
		f: f, gOrd: gOrd, fnIdx: fnIdx,
		fc: &FuncCode{
			Fn:     f,
			SlotOf: make(map[string]int),
			EndPC:  make(map[*ir.Block]int),
		},
		constIdx: make(map[int64]int),
		otherIdx: make(map[string]int),
		blockPC:  make(map[*ir.Block]int),
	}
	if err := c.assignSlots(); err != nil {
		return nil, err
	}
	c.layoutBlocks()
	for _, b := range f.Blocks {
		if err := c.encodeBlock(b); err != nil {
			return nil, err
		}
		for len(c.fc.BlockOfPC) < len(c.fc.Code) {
			c.fc.BlockOfPC = append(c.fc.BlockOfPC, b)
		}
	}
	c.buildPCofInstr()
	c.fuse()
	return c.fc, nil
}

// assignSlots gives every register name the function defines or reads a
// dense slot index: parameters first (so frames can bind arguments by
// position), then first appearance in flat instruction order.
func (c *fnComp) assignSlots() error {
	for _, p := range c.f.Params {
		s, err := c.slot(p)
		if err != nil {
			return err
		}
		c.fc.ParamSlots = append(c.fc.ParamSlots, s)
	}
	for _, in := range c.f.Instrs() {
		if defines(in) {
			if _, err := c.slot(in.Dst); err != nil {
				return err
			}
		}
		for _, a := range in.Args {
			if a.Kind == ir.OperandReg {
				if _, err := c.slot(a.Name); err != nil {
					return err
				}
			}
		}
		for _, pe := range in.Phis {
			if pe.Val.Kind == ir.OperandReg {
				if _, err := c.slot(pe.Val.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// defines reports whether the tree walker writes Regs[in.Dst] for this
// instruction (unconditionally for value-producing ops — including a
// nameless "" destination, which gets a slot so the behaviors match —
// but only for named destinations on calls).
func defines(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpLoad, ir.OpBin, ir.OpCmp, ir.OpPhi,
		ir.OpAlloca, ir.OpGep, ir.OpAddrOf, ir.OpFunc:
		return true
	case ir.OpCall:
		return in.Dst != ""
	}
	return false
}

func (c *fnComp) slot(name string) (int, error) {
	if s, ok := c.fc.SlotOf[name]; ok {
		return s, nil
	}
	s := c.fc.NumSlots
	if s >= maxPool {
		return 0, fmt.Errorf("more than %d registers", maxPool)
	}
	c.fc.NumSlots++
	c.fc.SlotOf[name] = s
	c.fc.SlotNames = append(c.fc.SlotNames, name)
	return s, nil
}

// layoutBlocks assigns each block's first pc: blocks in ir order, one
// word per non-phi instruction, plus one sentinel word per block.
func (c *fnComp) layoutBlocks() {
	pc := 0
	for _, b := range c.f.Blocks {
		c.blockPC[b] = pc
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				pc++
			}
		}
		c.fc.EndPC[b] = pc
		pc++ // sentinel
	}
	c.fc.Code = make([]uint64, 0, pc)
	c.fc.Instrs = make([]*ir.Instr, 0, pc)
	c.fc.EntryPC = 0
}

func (c *fnComp) constRef(v int64) (uint16, error) {
	if i, ok := c.constIdx[v]; ok {
		return MakeRef(RefConst, i), nil
	}
	i := len(c.fc.Consts)
	if i >= maxPool {
		return 0, fmt.Errorf("more than %d constants", maxPool)
	}
	c.fc.Consts = append(c.fc.Consts, v)
	c.constIdx[v] = i
	return MakeRef(RefConst, i), nil
}

func (c *fnComp) otherRef(o ir.Operand) (uint16, error) {
	key := o.String()
	if i, ok := c.otherIdx[key]; ok {
		return MakeRef(RefOther, i), nil
	}
	i := len(c.fc.Others)
	if i >= maxPool {
		return 0, fmt.Errorf("more than %d unresolved operands", maxPool)
	}
	c.fc.Others = append(c.fc.Others, o)
	c.otherIdx[key] = i
	return MakeRef(RefOther, i), nil
}

// vref resolves a value operand to a 16-bit reference, mirroring
// Machine.eval's resolution rules. Anything eval resolves purely
// (registers, constants, known globals, module function references)
// becomes a fault-free pre-resolved tag; anything with lazy runtime
// side effects or fault behavior (string literals, intrinsic
// references, unknown names, stray labels) stays a RefOther so the
// engine's fallback evaluator reproduces the tree walker exactly.
func (c *fnComp) vref(o ir.Operand) (uint16, error) {
	switch o.Kind {
	case ir.OperandConst:
		return c.constRef(o.Imm)
	case ir.OperandReg:
		s, ok := c.fc.SlotOf[o.Name]
		if !ok {
			// assignSlots walked every operand; unreachable, but fail loud.
			return 0, fmt.Errorf("register %%%s has no slot", o.Name)
		}
		return MakeRef(RefSlot, s), nil
	case ir.OperandGlobal:
		if ord, ok := c.gOrd[o.Name]; ok {
			return MakeRef(RefGlobal, ord), nil
		}
		if fi, ok := c.fnIdx[o.Name]; ok {
			return c.constRef(FuncRefBase + int64(fi))
		}
		return c.otherRef(o)
	case ir.OperandFunc:
		if fi, ok := c.fnIdx[o.Name]; ok {
			return c.constRef(FuncRefBase + int64(fi))
		}
		return c.otherRef(o)
	default:
		return c.otherRef(o)
	}
}

func word(op byte, sub int, dst int, a, b uint16) uint64 {
	return uint64(op) | uint64(sub)<<SubShift |
		uint64(dst)<<DstShift | uint64(a)<<AShift | uint64(b)<<BShift
}

func (c *fnComp) put(in *ir.Instr, w uint64) {
	c.fc.Code = append(c.fc.Code, w)
	c.fc.Instrs = append(c.fc.Instrs, in)
}

// edge precompiles the control transfer from block src to the block
// named target: the target's phi moves for this predecessor plus the
// target's first pc. Returns the edge's index.
func (c *fnComp) edge(src *ir.Block, target string) (int, error) {
	tb := c.f.Block(target)
	if tb == nil {
		return 0, fmt.Errorf("branch to unknown block %s", target)
	}
	e := Edge{Target: tb, Src: src, PC: c.blockPC[tb]}
	for _, in := range tb.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		src16, err := c.phiSrc(in, src.Name)
		if err != nil {
			return 0, err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return 0, err
		}
		e.Moves = append(e.Moves, Move{Dst: uint16(ds), Src: src16})
	}
	idx := len(c.fc.Edges)
	if idx > DstMask {
		return 0, fmt.Errorf("more than %d edges", DstMask+1)
	}
	e.Idx = int32(idx)
	c.fc.Edges = append(c.fc.Edges, e)
	return idx, nil
}

func (c *fnComp) phiSrc(phi *ir.Instr, from string) (uint16, error) {
	for _, pe := range phi.Phis {
		if pe.Block == from {
			return c.vref(pe.Val)
		}
	}
	// No matching edge: the tree walker uses 0 (see enterBlock).
	return c.constRef(0)
}

func (c *fnComp) encodeBlock(b *ir.Block) error {
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			continue // realized by edge move lists
		}
		if err := c.encodeInstr(b, in); err != nil {
			return err
		}
	}
	c.put(nil, word(OpNop, 0, 0, 0, 0)) // sentinel: "fell off end of block"
	return nil
}

func (c *fnComp) encodeInstr(b *ir.Block, in *ir.Instr) error {
	switch in.Op {
	case ir.OpConst:
		a, err := c.constRef(in.Args[0].Imm)
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		c.put(in, word(OpMove, 0, ds, a, 0))

	case ir.OpAddrOf:
		// The tree walker reads m.globals[name] directly: a known global
		// yields its address, an unknown one yields 0 — never a fault.
		var a uint16
		var err error
		if ord, ok := c.gOrd[in.Args[0].Name]; ok {
			a = MakeRef(RefGlobal, ord)
		} else if a, err = c.constRef(0); err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		c.put(in, word(OpMove, 0, ds, a, 0))

	case ir.OpFunc:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		c.put(in, word(OpMove, 0, ds, a, 0))

	case ir.OpLoad:
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		addr := in.Args[0]
		if ord, ok := c.globalOrd(addr); ok {
			// Direct, provably fault-free access to the global's block.
			c.put(in, word(OpLoadG, 0, ds, uint16(ord), 0))
			return nil
		}
		a, err := c.vref(addr)
		if err != nil {
			return err
		}
		c.put(in, word(OpLoad, 0, ds, a, 0))

	case ir.OpStore:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		addr := in.Args[1]
		if ord, ok := c.globalOrd(addr); ok {
			c.put(in, word(OpStoreG, 0, 0, a, uint16(ord)))
			return nil
		}
		bref, err := c.vref(addr)
		if err != nil {
			return err
		}
		c.put(in, word(OpStore, 0, 0, a, bref))

	case ir.OpBin:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		bref, err := c.vref(in.Args[1])
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		if int(in.Bin) > SubMask {
			return fmt.Errorf("binop kind %d exceeds sub field", int(in.Bin))
		}
		c.put(in, word(OpBin, int(in.Bin), ds, a, bref))

	case ir.OpCmp:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		bref, err := c.vref(in.Args[1])
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		if int(in.Pred) > SubMask {
			return fmt.Errorf("cmp pred %d exceeds sub field", int(in.Pred))
		}
		c.put(in, word(OpCmp, int(in.Pred), ds, a, bref))

	case ir.OpBr:
		cond, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		then, err := c.edge(b, in.Args[1].Name)
		if err != nil {
			return err
		}
		els, err := c.edge(b, in.Args[2].Name)
		if err != nil {
			return err
		}
		c.put(in, word(OpBr, 0, then, cond, uint16(els)))

	case ir.OpJmp:
		e, err := c.edge(b, in.Args[0].Name)
		if err != nil {
			return err
		}
		c.put(in, word(OpJmp, 0, e, 0, 0))

	case ir.OpRet:
		if len(in.Args) == 1 {
			a, err := c.vref(in.Args[0])
			if err != nil {
				return err
			}
			c.put(in, word(OpRet, 1, 0, a, 0))
		} else {
			c.put(in, word(OpRet, 0, 0, 0, 0))
		}

	case ir.OpAlloca:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		c.put(in, word(OpAlloca, 0, ds, a, 0))

	case ir.OpGep:
		a, err := c.vref(in.Args[0])
		if err != nil {
			return err
		}
		bref, err := c.vref(in.Args[1])
		if err != nil {
			return err
		}
		ds, err := c.slot(in.Dst)
		if err != nil {
			return err
		}
		c.put(in, word(OpGep, 0, ds, a, bref))

	case ir.OpCall:
		cs, err := c.callSite(in)
		if err != nil {
			return err
		}
		c.put(in, word(OpCall, 0, cs, 0, 0))

	default:
		// Preserved verbatim: the engine faults "unknown op" at dispatch
		// via the OpNop-with-instr default, exactly like exec's default.
		c.put(in, word(OpNop, 0, 0, 0, 0))
	}
	return nil
}

// globalOrd reports whether the operand is a known module global and
// returns its ordinal.
func (c *fnComp) globalOrd(o ir.Operand) (int, bool) {
	if o.Kind != ir.OperandGlobal {
		return 0, false
	}
	ord, ok := c.gOrd[o.Name]
	return ord, ok
}

func (c *fnComp) callSite(in *ir.Instr) (int, error) {
	cs := CallSite{DstSlot: -1}
	if in.Dst != "" {
		ds, err := c.slot(in.Dst)
		if err != nil {
			return 0, err
		}
		cs.DstSlot = ds
	}
	callee := in.Callee()
	switch callee.Kind {
	case ir.OperandFunc:
		if fi, ok := c.fnIdx[callee.Name]; ok {
			cs.Kind = CallFunc
			cs.Fn = c.f.Mod.Funcs[fi]
		} else {
			cs.Kind = CallIntrinsic
			cs.Name = callee.Name
			if len(in.CallArgs()) == 1 {
				switch callee.Name {
				case "mutex_lock":
					cs.Kind = CallLock
				case "mutex_unlock":
					cs.Kind = CallUnlock
				}
			}
		}
	case ir.OperandReg:
		s, err := c.slot(callee.Name)
		if err != nil {
			return 0, err
		}
		cs.Kind = CallIndirect
		cs.Name = callee.Name
		cs.CalleeSlot = s
	default:
		cs.Kind = CallBad
	}
	if cs.Kind != CallBad {
		for _, a := range in.CallArgs() {
			ar, err := c.vref(a)
			if err != nil {
				return 0, err
			}
			cs.Args = append(cs.Args, ar)
		}
	}
	idx := len(c.fc.Calls)
	if idx > DstMask {
		return 0, fmt.Errorf("more than %d call sites", DstMask+1)
	}
	c.fc.Calls = append(c.fc.Calls, cs)
	return idx, nil
}

// buildPCofInstr maps flat instruction indices to word pcs. Phis (which
// have no word) map to their block's first pc: a frame snapshotted at a
// phi is a frame about to enter the block body, and block-entry state
// is exactly pc = first word.
func (c *fnComp) buildPCofInstr() {
	c.fc.PCofInstr = make([]int, c.f.NumInstrs())
	for _, b := range c.f.Blocks {
		pc := c.blockPC[b]
		for _, in := range b.Instrs {
			c.fc.PCofInstr[in.Index] = pc
			if in.Op != ir.OpPhi {
				pc++
			}
		}
	}
}

// fuse marks superinstruction heads: short in-block sequences the
// batched dispatch loop may run back-to-back without re-entering the
// outer scheduling loop, provided the scheduler keeps picking the same
// thread (it is still consulted once per component, so traces and
// events are unchanged). Greedy, non-overlapping, never across a block
// boundary. Patterns: const+bin, cmp+br, load+cmp, and
// mutex_lock/single access/mutex_unlock.
func (c *fnComp) fuse() {
	for _, b := range c.f.Blocks {
		bs := c.blockPC[b]
		be := c.fc.EndPC[b]
		pc := bs
		for pc < be {
			n := c.fuseLenAt(pc, be)
			if n > 0 {
				c.fc.Code[pc] |= uint64(n) << FusedShift
				c.fc.FusedHeads++
				pc += n + 1
				continue
			}
			pc++
		}
	}
}

func (c *fnComp) fuseLenAt(pc, be int) int {
	in := c.fc.Instrs[pc]
	switch in.Op {
	case ir.OpConst:
		if pc+1 < be && c.fc.Instrs[pc+1].Op == ir.OpBin {
			return 1
		}
	case ir.OpCmp:
		if pc+1 < be && c.fc.Instrs[pc+1].Op == ir.OpBr {
			return 1
		}
	case ir.OpLoad:
		if pc+1 < be && c.fc.Instrs[pc+1].Op == ir.OpCmp {
			return 1
		}
	case ir.OpCall:
		if pc+2 < be && isIntrinsicCall(in, "mutex_lock") &&
			isAccess(c.fc.Instrs[pc+1]) &&
			isIntrinsicCall(c.fc.Instrs[pc+2], "mutex_unlock") {
			return 2
		}
	}
	return 0
}

func isIntrinsicCall(in *ir.Instr, name string) bool {
	return in.Op == ir.OpCall && in.Args[0].Kind == ir.OperandFunc && in.Args[0].Name == name
}

func isAccess(in *ir.Instr) bool {
	return in.Op == ir.OpLoad || in.Op == ir.OpStore
}
