package bytecode

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/ir"
)

const src = `
global @g = 7
global @lock = 0

func @add(%a, %b) {
entry:
  %s = add %a, %b
  ret %s
}

func @main() {
entry:
  %x = const 3
  %y = add %x, 4
  %v = load @g
  %c = icmp lt %v, %y
  br %c, then, done
then:
  call @mutex_lock(@lock)
  store %y, @g
  call @mutex_unlock(@lock)
  jmp done
done:
  %p = phi [entry: %x], [then: %y]
  %r = call @add(%p, 1)
  %f = func @add
  %q = call %f(%r, 2)
  ret %q
}
`

func mustCompile(t *testing.T) (*ir.Module, *Program) {
	t.Helper()
	mod := ir.MustParse("bc_test.oir", src)
	p, err := Compile(mod)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod, p
}

func TestCompileMemoized(t *testing.T) {
	mod, p1 := mustCompile(t)
	p2, err := Compile(mod)
	if err != nil {
		t.Fatalf("second Compile: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("Compile not memoized: %p vs %p", p1, p2)
	}
}

func TestCompileRequiresFrozen(t *testing.T) {
	mod := ir.NewModule("m")
	if _, err := Compile(mod); err == nil {
		t.Fatal("Compile of unfrozen module succeeded")
	}
}

func TestCompileShapes(t *testing.T) {
	mod, p := mustCompile(t)
	main := mod.Func("main")
	fc := p.Funcs[main]
	if fc == nil {
		t.Fatal("no FuncCode for @main")
	}
	if len(fc.Code) != len(fc.Instrs) {
		t.Fatalf("Code/Instrs length mismatch: %d vs %d", len(fc.Code), len(fc.Instrs))
	}
	// One sentinel per block, with a nil Instrs entry at each EndPC.
	for _, b := range main.Blocks {
		end := fc.EndPC[b]
		if byte(fc.Code[end]) != OpNop || fc.Instrs[end] != nil {
			t.Fatalf("block %s: EndPC %d is not a sentinel", b.Name, end)
		}
	}
	// Every non-sentinel word maps back to its instruction via PCofInstr.
	for pc, in := range fc.Instrs {
		if in == nil {
			continue
		}
		if got := fc.PCofInstr[in.Index]; got != pc {
			t.Fatalf("PCofInstr[%d] = %d, want %d", in.Index, got, pc)
		}
	}
	// Params get the leading slots.
	add := p.Funcs[mod.Func("add")]
	if len(add.ParamSlots) != 2 || add.ParamSlots[0] != 0 || add.ParamSlots[1] != 1 {
		t.Fatalf("ParamSlots = %v", add.ParamSlots)
	}
	// The direct call resolves, the indirect one carries the callee slot.
	var direct, indirect, intrin int
	for _, cs := range fc.Calls {
		switch cs.Kind {
		case CallFunc:
			direct++
			if cs.Fn != mod.Func("add") {
				t.Fatalf("direct call resolved to %v", cs.Fn)
			}
		case CallIndirect:
			indirect++
			if cs.Name != "f" {
				t.Fatalf("indirect callee name = %q", cs.Name)
			}
		case CallIntrinsic:
			intrin++
		}
	}
	if direct != 1 || indirect != 1 || intrin != 0 {
		t.Fatalf("call kinds: direct=%d indirect=%d intrinsic=%d", direct, indirect, intrin)
	}
	// The single-argument lock calls compile to the specialized kinds.
	var lock, unlock int
	for _, cs := range fc.Calls {
		switch cs.Kind {
		case CallLock:
			lock++
			if len(cs.Args) != 1 {
				t.Fatalf("lock call has %d resolved args", len(cs.Args))
			}
		case CallUnlock:
			unlock++
		}
	}
	if lock != 1 || unlock != 1 {
		t.Fatalf("call kinds: lock=%d unlock=%d", lock, unlock)
	}
}

func TestCompileFusion(t *testing.T) {
	mod, p := mustCompile(t)
	fc := p.Funcs[mod.Func("main")]
	if fc.FusedHeads == 0 {
		t.Fatal("no superinstruction heads found")
	}
	// entry has const+bin and load+cmp... the cmp is consumed by load+cmp,
	// so cmp+br must not double-claim it; then-block has lock/store/unlock.
	var heads []string
	for pc, w := range fc.Code {
		if n := int(w >> FusedShift & FusedMask); n > 0 {
			heads = append(heads, OpName(byte(w)))
			// Components must stay inside the block (never cover a sentinel).
			for k := 1; k <= n; k++ {
				if fc.Instrs[pc+k] == nil {
					t.Fatalf("fused head at %d covers sentinel at %d", pc, pc+k)
				}
			}
		}
	}
	joined := strings.Join(heads, ",")
	if !strings.Contains(joined, "move") { // const+bin head (const lowers to move)
		t.Errorf("missing const+bin head in %v", heads)
	}
	if !strings.Contains(joined, "load") { // load+cmp head
		t.Errorf("missing load+cmp head in %v", heads)
	}
	if !strings.Contains(joined, "call") { // lock/access/unlock head
		t.Errorf("missing lock/access/unlock head in %v", heads)
	}
	if fc.Disasm() == "" {
		t.Fatal("empty disassembly")
	}
}

func TestCompilePhiEdges(t *testing.T) {
	mod, p := mustCompile(t)
	fc := p.Funcs[mod.Func("main")]
	// Both edges into done carry exactly one move targeting %p.
	pSlot := fc.SlotOf["p"]
	var intoDone int
	for _, e := range fc.Edges {
		if e.Target.Name != "done" {
			continue
		}
		intoDone++
		if len(e.Moves) != 1 || int(e.Moves[0].Dst) != pSlot {
			t.Fatalf("edge into done: moves = %+v, want 1 move to slot %d", e.Moves, pSlot)
		}
	}
	if intoDone != 2 {
		t.Fatalf("edges into done = %d, want 2", intoDone)
	}
}
