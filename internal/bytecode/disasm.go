package bytecode

import (
	"fmt"
	"strings"
)

var opNames = [...]string{
	OpNop: "nop", OpMove: "move", OpLoad: "load", OpLoadG: "loadg",
	OpStore: "store", OpStoreG: "storeg", OpBin: "bin", OpCmp: "cmp",
	OpBr: "br", OpJmp: "jmp", OpRet: "ret", OpAlloca: "alloca",
	OpGep: "gep", OpCall: "call",
}

// OpName returns the mnemonic for an opcode.
func OpName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

func (fc *FuncCode) refString(ref uint16) string {
	idx := int(ref & RefIdxMask)
	switch ref >> RefTagShift {
	case RefSlot:
		if idx < len(fc.SlotNames) {
			return "%" + fc.SlotNames[idx]
		}
		return fmt.Sprintf("slot%d", idx)
	case RefConst:
		if idx < len(fc.Consts) {
			return fmt.Sprintf("#%d", fc.Consts[idx])
		}
		return fmt.Sprintf("const%d", idx)
	case RefGlobal:
		return fmt.Sprintf("g%d", idx)
	default:
		if idx < len(fc.Others) {
			return fmt.Sprintf("other(%s)", fc.Others[idx])
		}
		return fmt.Sprintf("other%d", idx)
	}
}

// Disasm renders the function's words one per line — a debugging and
// test aid, not a stable format.
func (fc *FuncCode) Disasm() string {
	var sb strings.Builder
	for pc, w := range fc.Code {
		op := byte(w)
		sub := int(w >> SubShift & SubMask)
		fused := int(w >> FusedShift & FusedMask)
		dst := int(w >> DstShift & DstMask)
		a := uint16(w >> AShift)
		b := uint16(w >> BShift)
		fmt.Fprintf(&sb, "%4d  %-7s", pc, OpName(op))
		switch op {
		case OpNop:
		case OpMove, OpLoad, OpAlloca:
			fmt.Fprintf(&sb, " s%d <- %s", dst, fc.refString(a))
		case OpLoadG:
			fmt.Fprintf(&sb, " s%d <- g%d", dst, a)
		case OpStore:
			fmt.Fprintf(&sb, " [%s] <- %s", fc.refString(b), fc.refString(a))
		case OpStoreG:
			fmt.Fprintf(&sb, " g%d <- %s", b, fc.refString(a))
		case OpBin, OpCmp, OpGep:
			fmt.Fprintf(&sb, ".%d s%d <- %s, %s", sub, dst, fc.refString(a), fc.refString(b))
		case OpBr:
			fmt.Fprintf(&sb, " %s ? e%d : e%d", fc.refString(a), dst, b)
		case OpJmp:
			fmt.Fprintf(&sb, " e%d", dst)
		case OpRet:
			if sub&1 != 0 {
				fmt.Fprintf(&sb, " %s", fc.refString(a))
			}
		case OpCall:
			cs := &fc.Calls[dst]
			fmt.Fprintf(&sb, " site%d kind=%d", dst, cs.Kind)
		}
		if fused > 0 {
			fmt.Fprintf(&sb, "  ; fused+%d", fused)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
