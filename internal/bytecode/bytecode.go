// Package bytecode lowers frozen ir.Modules to a flat, cache-dense
// bytecode that internal/interp's compiled engine executes. The lowering
// happens once per module (memoized through ir.Module.LowerOnce) and
// pre-resolves everything the tree-walking interpreter re-derives per
// step: register names become dense slot indices, operands become 16-bit
// value references into per-function pools, phi nodes become per-edge
// parallel move lists, and common instruction sequences are marked as
// superinstructions the batched dispatch loop can run back-to-back.
//
// The compiled form is purely an acceleration structure: every word
// still corresponds to exactly one ir.Instr (Instrs maps pc -> instr),
// every word is independently executable, and the scheduler is still
// consulted once per instruction, so events, faults, schedule traces,
// and snapshots are byte-identical with the tree-walking oracle. See
// docs/BYTECODE.md for the full design.
package bytecode

import (
	"github.com/conanalysis/owl/internal/ir"
)

// FuncRefBase is the value of the first function reference. It must
// equal the interpreter's funcRefBase (internal/interp aliases its
// constant to this one) so that OpFunc/OperandGlobal operands naming
// module functions can be folded to constants at compile time.
const FuncRefBase = int64(1) << 40

// Instruction word layout (64 bits):
//
//	bits  0..7   opcode (Op* below)
//	bits  8..11  sub: ir.BinKind, ir.CmpPred, or the ret has-value flag
//	bits 12..15  fused: number of additional superinstruction component
//	             words following this one (0 = not a superinstruction head)
//	bits 16..31  dst: destination slot, edge index (OpBr then-edge, OpJmp),
//	             or call-site index (OpCall)
//	bits 32..47  a: value reference (OpLoadG: raw global ordinal)
//	bits 48..63  b: value reference, else-edge index (OpBr), or raw global
//	             ordinal (OpStoreG)
//
// Shift/mask helpers are deliberately just documented constants — the
// interpreter's dispatch loop decodes inline with shifts so the decode
// cost is a handful of register ops.
const (
	SubShift   = 8
	FusedShift = 12
	DstShift   = 16
	AShift     = 32
	BShift     = 48
	SubMask    = 0xf
	FusedMask  = 0xf
	DstMask    = 0xffff
)

// Opcodes. OpNop is the per-block sentinel word: it is never dispatched
// (its Instrs entry is nil, which the engine turns into the tree
// walker's "fell off end of block" fault before decoding).
const (
	OpNop byte = iota
	OpMove
	OpLoad
	OpLoadG
	OpStore
	OpStoreG
	OpBin
	OpCmp
	OpBr
	OpJmp
	OpRet
	OpAlloca
	OpGep
	OpCall
)

// Value references (the 16-bit a/b operand fields): a 2-bit tag and a
// 14-bit pool index. RefSlot and RefConst and RefGlobal never fault and
// never touch a map at runtime; RefOther falls back to the machine's
// operand evaluator, preserving the tree walker's lazy side effects
// (string interning, synthetic intrinsic reference ids) and its exact
// fault behavior for unresolvable operands.
const (
	RefSlot   = 0 // index into Frame.Slots
	RefConst  = 1 // index into FuncCode.Consts
	RefGlobal = 2 // module global ordinal; evaluates to its base address
	RefOther  = 3 // index into FuncCode.Others; evaluated by Machine.eval

	RefTagShift = 14
	RefIdxMask  = 0x3fff
	maxPool     = 1 << 14
)

// MakeRef builds a value reference from tag and pool index.
func MakeRef(tag, idx int) uint16 { return uint16(tag<<RefTagShift | idx) }

// Move is one precompiled phi assignment on a block edge: evaluate Src
// (a value reference) in the pre-transfer frame, store to slot Dst. All
// of an edge's moves are applied as a parallel copy, mirroring the tree
// walker's atomic block-entry phi evaluation.
type Move struct {
	Dst uint16
	Src uint16
}

// Edge is one precompiled control-flow transfer: the moves that realize
// the target block's phis for this particular predecessor, then a jump
// to the target's first word. Src and Idx let a frame record "this was
// the last edge taken" as a single integer store (no pointer write, so
// no GC write barrier on the hot path); the current and previous block
// are then derived on demand from the pc and the edge table.
type Edge struct {
	Target *ir.Block
	Src    *ir.Block
	PC     int
	Idx    int32
	Moves  []Move
}

// CallKind discriminates CallSite.
type CallKind uint8

// Call-site kinds, resolved at compile time from the callee operand.
const (
	CallFunc      CallKind = iota + 1 // direct call of a module function
	CallIntrinsic                     // direct call of an intrinsic (or unknown name)
	CallIndirect                      // call through a register
	CallBad                           // non-func, non-reg callee operand
	// CallLock/CallUnlock are the compile-time specializations of
	// single-argument mutex_lock/mutex_unlock calls: the interpreter
	// inlines the mutex logic, skipping argument-buffer and name
	// dispatch. Lock calls with any other arity compile as the generic
	// CallIntrinsic (the generic path evaluates every argument first,
	// and the specialized path must match that exactly).
	CallLock
	CallUnlock
)

// CallSite is a precompiled call: argument value references, the
// destination slot, and the resolved callee.
type CallSite struct {
	Kind       CallKind
	Fn         *ir.Func // CallFunc
	Name       string   // intrinsic name (CallIntrinsic) or callee register name (CallIndirect)
	CalleeSlot int      // CallIndirect: slot holding the function reference
	Args       []uint16
	DstSlot    int // slot receiving the result, -1 if none
}

// FuncCode is one function's compiled form.
type FuncCode struct {
	Fn *ir.Func

	// Code is the flat word array: all basic blocks in ir order, each
	// followed by one OpNop sentinel. Instrs maps each pc to the ir
	// instruction it executes (nil at sentinels) — the engine needs the
	// instruction anyway for events, faults, and breakpoints, so rare
	// fields (alloca names, positions) are read from it instead of
	// being encoded.
	Code   []uint64
	Instrs []*ir.Instr

	Consts []int64
	Others []ir.Operand
	Edges  []Edge
	Calls  []CallSite

	// Slot table: every register name the function defines or reads,
	// params first. Frames allocate NumSlots zeroed slots; a name the
	// tree walker would read as a missing map entry reads slot zero
	// value 0 identically.
	NumSlots   int
	SlotOf     map[string]int
	SlotNames  []string
	ParamSlots []int

	// EntryPC is the first word of the entry block (always 0, kept for
	// clarity). PCofInstr maps flat instruction indices (ir.Instr.Index)
	// to word pcs for snapshot restore; phis map to their block's first
	// word. EndPC maps each block to its sentinel pc (the compiled
	// equivalent of a tree frame whose PC ran past the block's end).
	EntryPC   int
	PCofInstr []int
	EndPC     map[*ir.Block]int

	// BlockOfPC maps each word pc (sentinels included) to the block it
	// belongs to, so the engine never has to maintain a current-block
	// pointer at control transfers.
	BlockOfPC []*ir.Block

	// FusedHeads counts superinstruction heads emitted for the function.
	FusedHeads int
}

// Program is a module's compiled form.
type Program struct {
	Mod   *ir.Module
	Funcs map[*ir.Func]*FuncCode

	// CompileNS is the wall-clock nanoseconds the (once-per-module)
	// lowering took; exported as the bytecode.compile_ns metric.
	CompileNS int64
	// FusedHeads counts superinstruction heads across all functions.
	FusedHeads int
}
