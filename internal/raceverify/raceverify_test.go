package raceverify

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// harness detects races in src and returns the reports plus a factory for
// verification re-runs.
func harness(t *testing.T, src string) ([]*race.Report, MachineFactory) {
	t.Helper()
	mod := ir.MustParse("rv_test.oir", src)
	var reports []*race.Report
	for seed := uint64(1); seed < 30 && len(reports) == 0; seed++ {
		d := race.NewDetector()
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRandom(seed),
			Observers: []interp.Observer{d}, MaxSteps: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		reports = d.Reports()
	}
	mk := func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
		return interp.New(interp.Config{
			Module: mod, Sched: s, Breakpoint: bp, MaxSteps: 100000,
		})
	}
	return reports, mk
}

const racySrc = `
global @x = 5

func @worker() {
entry:
  call @io_delay(3)
  store 7, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  call @io_delay(3)
  %v = load @x
  call @print(%v)
  %r = call @join(%t)
  ret 0
}
`

func TestVerifiesRealRace(t *testing.T) {
	reports, mk := harness(t, racySrc)
	if len(reports) == 0 {
		t.Fatal("no race reports")
	}
	h, err := New().Verify(mk, reports[0])
	if err != nil {
		t.Fatal(err)
	}
	if !h.Verified {
		t.Fatalf("real race not verified: %s", h)
	}
	if h.VarName != "@x" {
		t.Errorf("var name = %q, want @x", h.VarName)
	}
	if h.WriteVal != 7 {
		t.Errorf("write val = %d, want 7", h.WriteVal)
	}
	if h.ReadVal != 5 {
		t.Errorf("read val = %d, want 5 (about-to-read value)", h.ReadVal)
	}
	if h.WritesNull {
		t.Errorf("non-null write flagged as null hint")
	}
}

const nullWriteSrc = `
global @fptr = 0
global @done = 0

func @handler() {
entry:
  ret 0
}
func @msync() {
entry:
  call @io_delay(2)
  %f = load @fptr
  %c = icmp ne %f, 0
  br %c, callit, out
callit:
  call %f()
  ret 0
out:
  ret 0
}
func @main() {
entry:
  %h = func @handler
  store %h, @fptr
  %t = call @spawn(@msync)
  call @io_delay(2)
  store 0, @fptr
  %r = call @join(%t)
  ret 0
}
`

func TestNullPointerHint(t *testing.T) {
	reports, mk := harness(t, nullWriteSrc)
	var target *race.Report
	for _, r := range reports {
		if r.AddrName == "@fptr" && r.WriteSide().Val == 0 {
			target = r
			break
		}
	}
	if target == nil {
		t.Skip("the NULL-storing race was not observed in detection runs")
	}
	h, err := New().Verify(mk, target)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Verified {
		t.Fatalf("race not verified: %s", h)
	}
	if !h.WritesNull {
		t.Errorf("missing NULL-pointer hint: %s", h)
	}
}

const lockProtectedSrc = `
global @m = 0
global @x = 0

func @worker() {
entry:
  call @mutex_lock(@m)
  store 1, @x
  call @mutex_unlock(@m)
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  call @mutex_lock(@m)
  %v = load @x
  call @mutex_unlock(@m)
  %r = call @join(%t)
  ret 0
}
`

// TestLockProtectedPairNotVerified feeds the verifier a fabricated report
// whose accesses are mutex-ordered; the racing moment can never be caught
// because the lock keeps one thread out while the other holds it, and the
// livelock-release path must terminate the attempt cleanly.
func TestLockProtectedPairNotVerified(t *testing.T) {
	mod := ir.MustParse("rv_test.oir", lockProtectedSrc)
	var loadIn, storeIn *ir.Instr
	for _, in := range mod.Func("main").Instrs() {
		if in.Op == ir.OpLoad {
			loadIn = in
		}
	}
	for _, in := range mod.Func("worker").Instrs() {
		if in.Op == ir.OpStore {
			storeIn = in
		}
	}
	rep := &race.Report{
		Prev:     race.Access{TID: 1, IsWrite: true, Instr: storeIn},
		Cur:      race.Access{TID: 0, Instr: loadIn},
		AddrName: "@x",
	}
	mk := func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
		return interp.New(interp.Config{Module: mod, Sched: s, Breakpoint: bp, MaxSteps: 50000})
	}
	v := New()
	v.Attempts = 4
	h, err := v.Verify(mk, rep)
	if err != nil {
		t.Fatal(err)
	}
	if h.Verified {
		t.Errorf("mutex-ordered pair wrongly verified as a race")
	}
	if h.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", h.Attempts)
	}
}

func TestLivelockRelease(t *testing.T) {
	// Main joins on the worker; suspending the worker at its store would
	// deadlock the run unless the verifier releases the breakpoint. The
	// worker's store is the only write, so after release the verifier
	// cannot catch the moment and must report not-verified without
	// hanging.
	src := `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %r = call @join(%t)
  %v = load @x
  ret 0
}
`
	mod := ir.MustParse("rv_test.oir", src)
	var storeIn, loadIn *ir.Instr
	for _, in := range mod.Func("worker").Instrs() {
		if in.Op == ir.OpStore {
			storeIn = in
		}
	}
	for _, in := range mod.Func("main").Instrs() {
		if in.Op == ir.OpLoad {
			loadIn = in
		}
	}
	rep := &race.Report{
		Prev:     race.Access{TID: 1, IsWrite: true, Instr: storeIn},
		Cur:      race.Access{TID: 0, Instr: loadIn},
		AddrName: "@x",
	}
	mk := func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error) {
		return interp.New(interp.Config{Module: mod, Sched: s, Breakpoint: bp, MaxSteps: 20000})
	}
	v := New()
	v.Attempts = 2
	h, err := v.Verify(mk, rep)
	if err != nil {
		t.Fatal(err)
	}
	// join(t) orders the accesses, so the moment must never be caught —
	// but the run must terminate (livelock release works).
	if h.Verified {
		t.Errorf("join-ordered accesses wrongly verified")
	}
}
