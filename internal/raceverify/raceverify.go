// Package raceverify implements OWL's dynamic race verifier (§5.2). It
// re-runs the program with thread-specific breakpoints at the two racing
// instructions of a report; when two different threads are suspended at
// the pair and their pending accesses target the same address with at
// least one write, the race has been caught "in the racing moment". The
// verifier then emits security hints — the racing values, the variable's
// name, and whether a NULL-pointer dereference or uninitialized read could
// follow — that feed the static vulnerability analyzer.
//
// The paper builds this on LLDB; here the interpreter's deterministic
// thread suspension provides the same semantics. Livelocks (the program
// spinning without the second thread arriving, or all remaining threads
// blocked on a suspended one) are resolved the way the paper describes:
// by temporarily releasing one of the triggered breakpoints.
package raceverify

import (
	"fmt"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// MachineFactory builds a fresh machine for one verification run, wired to
// the given scheduler and breakpoint. The OWL pipeline binds this to the
// workload's module, inputs, and arguments.
type MachineFactory func(s interp.Scheduler, bp interp.BreakpointFunc) (*interp.Machine, error)

// Hint is the verifier's output for one report: verification status plus
// the §5.2 security hints.
type Hint struct {
	Report   *race.Report
	Verified bool
	// Attempts is the number of runs used.
	Attempts int

	// ReadVal is the value the read is about to observe; WriteVal the
	// value the write is about to store.
	ReadVal, WriteVal int64
	// VarName names the racing memory at the racing moment.
	VarName string
	// WritesNull is set when the racing write stores 0 into memory that
	// the reading side dereferences — the "NULL pointer dereference can be
	// triggered" hint.
	WritesNull bool
	// ReadsUninitialized is set when the read observes memory never
	// written on this run (still holding its initial zero).
	ReadsUninitialized bool
	// Schedule is the witness schedule up to the racing moment; replaying
	// it steers later verification runs.
	Schedule []interp.ThreadID
}

func (h *Hint) String() string {
	if !h.Verified {
		return fmt.Sprintf("race NOT verified after %d attempts: %s", h.Attempts, h.Report.ID())
	}
	s := fmt.Sprintf("race verified on %s: about to read %d, about to write %d",
		h.VarName, h.ReadVal, h.WriteVal)
	if h.WritesNull {
		s += " [NULL-pointer hint]"
	}
	if h.ReadsUninitialized {
		s += " [uninitialized-read hint]"
	}
	return s
}

// Verifier verifies race reports dynamically.
type Verifier struct {
	// Attempts is the number of differently seeded runs per report
	// (default 8). Reports the verifier cannot reproduce within the budget
	// are eliminated — the paper's R.V.E. column in Table 3 — accepting
	// that some real-but-fragile races are lost (§5.2 "two cases ... miss
	// real races").
	Attempts int
	// MaxSteps bounds each run (default 200000).
	MaxSteps int
	// HoldBudget bounds how many steps the verifier waits, after one
	// racing instruction is captured, for the partner thread to arrive
	// (default 15000). A pair that cannot co-arrive within the budget is
	// released and the attempt continues hunting; "catching the race in
	// the racing moment" is inherently a co-arrival property.
	HoldBudget int
}

// New returns a verifier with default budgets.
func New() *Verifier { return &Verifier{Attempts: 8, MaxSteps: 200000, HoldBudget: 15000} }

// Verify attempts to catch the report's race in the racing moment.
func (v *Verifier) Verify(mk MachineFactory, rep *race.Report) (*Hint, error) {
	attempts := v.Attempts
	if attempts <= 0 {
		attempts = 8
	}
	hint := &Hint{Report: rep}
	instrA := rep.Prev.Instr
	instrB := rep.Cur.Instr
	if instrA == nil || instrB == nil {
		return hint, nil
	}
	for i := 0; i < attempts; i++ {
		hint.Attempts = i + 1
		caught, err := v.tryOnce(mk, rep, instrA, instrB, uint64(i+1), hint)
		if err != nil {
			return nil, err
		}
		if caught {
			hint.Verified = true
			return hint, nil
		}
	}
	return hint, nil
}

// tryOnce performs one verification run; returns whether the racing moment
// was caught.
func (v *Verifier) tryOnce(mk MachineFactory, rep *race.Report, instrA, instrB *ir.Instr, seed uint64, hint *Hint) (bool, error) {
	var (
		machine   *interp.Machine
		heldA     = interp.ThreadID(-1)
		heldB     = interp.ThreadID(-1)
		passOnce  = map[interp.ThreadID]int{}
		heldSince = -1
	)
	holdBudget := v.HoldBudget
	if holdBudget <= 0 {
		holdBudget = 15000
	}
	bp := func(m *interp.Machine, t *interp.Thread, in *ir.Instr) interp.BPAction {
		if in != instrA && in != instrB {
			return interp.BPContinue
		}
		if passOnce[t.ID] > 0 {
			passOnce[t.ID]--
			return interp.BPContinue
		}
		if in == instrA && heldA < 0 && t.ID != heldB {
			heldA = t.ID
			return interp.BPSuspend
		}
		if in == instrB && heldB < 0 && t.ID != heldA {
			heldB = t.ID
			return interp.BPSuspend
		}
		return interp.BPContinue
	}
	m, err := mk(sched.NewRandom(seed), bp)
	if err != nil {
		return false, fmt.Errorf("race verifier: build machine: %w", err)
	}
	machine = m

	steps := v.MaxSteps
	if steps <= 0 {
		steps = 200000
	}
	for i := 0; i < steps; i++ {
		if heldA >= 0 && heldB >= 0 {
			if v.racingMoment(machine, heldA, heldB, hint) {
				return true, nil
			}
			// Suspended at the pair but not on the same address (e.g. two
			// different array elements): release the earlier capture and
			// keep hunting.
			machine.Resume(heldA)
			passOnce[heldA]++
			heldA = -1
		}
		switch {
		case heldA >= 0 || heldB >= 0:
			if heldSince < 0 {
				heldSince = i
			} else if i-heldSince > holdBudget {
				// The partner is not coming: give up this attempt rather
				// than spin the rest of the step budget away.
				return false, nil
			}
		default:
			heldSince = -1
		}
		if !machine.Step() {
			switch machine.Stall() {
			case interp.StallSuspended:
				// Livelock: the program cannot make progress while a
				// breakpoint holds a thread others wait on. Temporarily
				// release one triggered breakpoint (§5.2).
				released := false
				if heldA >= 0 {
					machine.Resume(heldA)
					passOnce[heldA]++
					heldA = -1
					released = true
				} else if heldB >= 0 {
					machine.Resume(heldB)
					passOnce[heldB]++
					heldB = -1
					released = true
				}
				if !released {
					return false, nil
				}
			default:
				return false, nil
			}
		}
	}
	return false, nil
}

// racingMoment checks that the two suspended threads' pending accesses
// conflict, and if so extracts the security hints.
func (v *Verifier) racingMoment(m *interp.Machine, ta, tb interp.ThreadID, hint *Hint) bool {
	pa, okA := m.Pending(ta)
	pb, okB := m.Pending(tb)
	if !okA || !okB {
		return false
	}
	if pa.Addr != pb.Addr {
		return false
	}
	if !pa.IsWrite && !pb.IsWrite {
		return false
	}
	// Order so that rd is the read side when there is one.
	rd, wr := pa, pb
	if pa.IsWrite && !pb.IsWrite {
		rd, wr = pb, pa
	}
	hint.VarName = m.Mem().NameFor(pa.Addr)
	hint.ReadVal = rd.Val
	hint.WriteVal = wr.Val
	if wr.IsWrite && wr.Val == 0 && pointerUse(rd.Instr) {
		hint.WritesNull = true
	}
	if !rd.IsWrite && rd.Val == 0 && neverWritten(m, pa.Addr) {
		hint.ReadsUninitialized = true
	}
	hint.Schedule = append([]interp.ThreadID(nil), m.Result().Schedule...)
	// Release both threads so the caller can finish the run if desired.
	m.Resume(ta)
	m.Resume(tb)
	return true
}

// pointerUse reports whether the value loaded by in is later used as an
// address (load/store pointer operand or indirect callee) in the same
// function — the static half of the NULL-pointer hint.
func pointerUse(in *ir.Instr) bool {
	if in == nil || in.Op != ir.OpLoad || in.Dst == "" || in.Fn == nil {
		return false
	}
	derived := map[string]bool{in.Dst: true}
	for _, cand := range in.Fn.Instrs() {
		if cand.Index <= in.Index {
			continue
		}
		switch cand.Op {
		case ir.OpLoad:
			if cand.Args[0].Kind == ir.OperandReg && derived[cand.Args[0].Name] {
				return true
			}
		case ir.OpStore:
			if cand.Args[1].Kind == ir.OperandReg && derived[cand.Args[1].Name] {
				return true
			}
		case ir.OpCall:
			if cand.Callee().Kind == ir.OperandReg && derived[cand.Callee().Name] {
				return true
			}
		case ir.OpGep:
			if cand.Args[0].Kind == ir.OperandReg && derived[cand.Args[0].Name] && cand.Dst != "" {
				derived[cand.Dst] = true
			}
		}
	}
	return false
}

// neverWritten reports whether the address still holds its load-time
// initial image (heuristic: value zero and block is heap — globals have
// declared initializers, so zero there is usually intentional).
func neverWritten(m *interp.Machine, addr int64) bool {
	b := m.Mem().Find(addr)
	return b != nil && b.Kind == interp.BlockHeap && m.Mem().Peek(addr) == 0
}
